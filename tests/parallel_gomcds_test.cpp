#include "core/gomcds.hpp"

#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "test_util.hpp"

namespace pimsched {
namespace {

WindowedRefs refsFromTrace(const ReferenceTrace& t, const Grid& g,
                           int windows) {
  return WindowedRefs(t, WindowPartition::evenCount(t.numSteps(), windows),
                      g);
}

TEST(ParallelGomcds, BitIdenticalToSequential) {
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(191);
  for (int trial = 0; trial < 4; ++trial) {
    const ReferenceTrace t = testutil::randomTrace(rng, g, 5, 5, 16, 30);
    const WindowedRefs refs = refsFromTrace(t, g, 8);
    const DataSchedule seq = scheduleGomcds(refs, model);
    for (const unsigned threads : {1u, 2u, 4u, 0u}) {
      const DataSchedule par = scheduleGomcdsParallel(refs, model, threads);
      for (DataId d = 0; d < refs.numData(); ++d) {
        for (WindowId w = 0; w < refs.numWindows(); ++w) {
          ASSERT_EQ(par.center(d, w), seq.center(d, w))
              << "threads=" << threads;
        }
      }
    }
  }
}

TEST(ParallelGomcds, MoreThreadsThanDataIsFine) {
  const Grid g(2, 2);
  const CostModel model(g);
  DataSpace ds;
  ds.addArray("A", 1, 2);
  ReferenceTrace t(ds);
  t.add(0, 0, 0, 1);
  t.add(0, 3, 1, 2);
  t.finalize();
  const WindowedRefs refs(t, WindowPartition::whole(1), g);
  const DataSchedule s = scheduleGomcdsParallel(refs, model, 16);
  EXPECT_TRUE(s.complete());
  EXPECT_EQ(s.center(0, 0), 0);
  EXPECT_EQ(s.center(1, 0), 3);
}

TEST(ParallelGomcds, CostEqualsSequentialOptimal) {
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(192);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 6, 6, 20, 40);
  const WindowedRefs refs = refsFromTrace(t, g, 10);
  const Cost seq =
      evaluateSchedule(scheduleGomcds(refs, model), refs, model)
          .aggregate.total();
  const Cost par =
      evaluateSchedule(scheduleGomcdsParallel(refs, model), refs, model)
          .aggregate.total();
  EXPECT_EQ(seq, par);
}

}  // namespace
}  // namespace pimsched

#include "core/gomcds.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/evaluator.hpp"
#include "test_util.hpp"

namespace pimsched {
namespace {

WindowedRefs refsFromTrace(const ReferenceTrace& t, const Grid& g,
                           int windows) {
  return WindowedRefs(t, WindowPartition::evenCount(t.numSteps(), windows),
                      g);
}

TEST(ParallelGomcds, BitIdenticalToSequential) {
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(191);
  for (int trial = 0; trial < 4; ++trial) {
    const ReferenceTrace t = testutil::randomTrace(rng, g, 5, 5, 16, 30);
    const WindowedRefs refs = refsFromTrace(t, g, 8);
    const DataSchedule seq = scheduleGomcds(refs, model);
    for (const unsigned threads : {1u, 2u, 4u, 0u}) {
      const DataSchedule par = scheduleGomcdsParallel(refs, model, threads);
      for (DataId d = 0; d < refs.numData(); ++d) {
        for (WindowId w = 0; w < refs.numWindows(); ++w) {
          ASSERT_EQ(par.center(d, w), seq.center(d, w))
              << "threads=" << threads;
        }
      }
    }
  }
}

TEST(ParallelGomcds, MoreThreadsThanDataIsFine) {
  const Grid g(2, 2);
  const CostModel model(g);
  DataSpace ds;
  ds.addArray("A", 1, 2);
  ReferenceTrace t(ds);
  t.add(0, 0, 0, 1);
  t.add(0, 3, 1, 2);
  t.finalize();
  const WindowedRefs refs(t, WindowPartition::whole(1), g);
  const DataSchedule s = scheduleGomcdsParallel(refs, model, 16);
  EXPECT_TRUE(s.complete());
  EXPECT_EQ(s.center(0, 0), 0);
  EXPECT_EQ(s.center(1, 0), 3);
}

TEST(ParallelGomcds, BitIdenticalToSequentialWithCapacity) {
  // The plan/commit engine must honor the capacity constraint and still
  // reproduce the sequential schedule exactly, for every thread count and
  // both visit orders.
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(293);
  for (const DataOrder order : {DataOrder::kById, DataOrder::kByWeightDesc}) {
    for (int trial = 0; trial < 3; ++trial) {
      const ReferenceTrace t = testutil::randomTrace(rng, g, 6, 6, 24, 50);
      const WindowedRefs refs = refsFromTrace(t, g, 6);
      // Tight capacity: the minimum slots per processor that can hold all
      // data, which forces real conflicts between optimal paths.
      const std::int64_t tight =
          (refs.numData() + g.size() - 1) / g.size();
      for (const std::int64_t cap : {tight, tight + 1}) {
        const SchedulerOptions opts{cap, order};
        const DataSchedule seq = scheduleGomcds(refs, model, opts);
        for (const unsigned threads : {1u, 2u, 4u, 0u}) {
          const DataSchedule par =
              scheduleGomcdsParallel(refs, model, opts, threads);
          for (DataId d = 0; d < refs.numData(); ++d) {
            for (WindowId w = 0; w < refs.numWindows(); ++w) {
              ASSERT_EQ(par.center(d, w), seq.center(d, w))
                  << "threads=" << threads << " cap=" << cap
                  << " order=" << static_cast<int>(order);
            }
          }
          ASSERT_TRUE(par.respectsCapacity(g, cap));
          ASSERT_EQ(evaluateSchedule(par, refs, model).aggregate.total(),
                    evaluateSchedule(seq, refs, model).aggregate.total());
        }
      }
    }
  }
}

TEST(ParallelGomcds, InfeasibleCapacityThrowsLikeSequential) {
  const Grid g(2, 2);
  const CostModel model(g);
  testutil::Rng rng(77);
  // 9 data on 4 processors with capacity 2: one datum cannot be placed.
  const ReferenceTrace t = testutil::randomTrace(rng, g, 3, 3, 6, 12);
  const WindowedRefs refs = refsFromTrace(t, g, 3);
  ASSERT_EQ(refs.numData(), 9);
  const SchedulerOptions opts{2, DataOrder::kById};
  EXPECT_THROW((void)scheduleGomcds(refs, model, opts), std::runtime_error);
  for (const unsigned threads : {1u, 4u}) {
    EXPECT_THROW((void)scheduleGomcdsParallel(refs, model, opts, threads),
                 std::runtime_error);
  }
}

TEST(ParallelGomcds, CostEqualsSequentialOptimal) {
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(192);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 6, 6, 20, 40);
  const WindowedRefs refs = refsFromTrace(t, g, 10);
  const Cost seq =
      evaluateSchedule(scheduleGomcds(refs, model), refs, model)
          .aggregate.total();
  const Cost par =
      evaluateSchedule(scheduleGomcdsParallel(refs, model), refs, model)
          .aggregate.total();
  EXPECT_EQ(seq, par);
}

}  // namespace
}  // namespace pimsched

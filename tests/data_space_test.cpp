#include "trace/data_space.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pimsched {
namespace {

TEST(DataSpace, SingleArrayIds) {
  const DataSpace ds = DataSpace::singleSquare(4);
  EXPECT_EQ(ds.numArrays(), 1);
  EXPECT_EQ(ds.numData(), 16);
  EXPECT_EQ(ds.id(0, 0, 0), 0);
  EXPECT_EQ(ds.id(0, 1, 0), 4);
  EXPECT_EQ(ds.id(0, 3, 3), 15);
}

TEST(DataSpace, MultiArrayConcatenation) {
  DataSpace ds;
  const int a = ds.addArray("A", 2, 3);
  const int c = ds.addArray("C", 4, 4);
  EXPECT_EQ(ds.numData(), 6 + 16);
  EXPECT_EQ(ds.id(a, 0, 0), 0);
  EXPECT_EQ(ds.id(c, 0, 0), 6);
  EXPECT_EQ(ds.id(c, 3, 3), 21);
}

TEST(DataSpace, ElementRoundTrip) {
  DataSpace ds;
  ds.addArray("A", 3, 5);
  ds.addArray("B", 2, 2);
  for (DataId d = 0; d < ds.numData(); ++d) {
    const ElementRef e = ds.element(d);
    EXPECT_EQ(ds.id(e.array, e.row, e.col), d);
  }
}

TEST(DataSpace, RejectsOutOfRange) {
  const DataSpace ds = DataSpace::singleSquare(2);
  EXPECT_THROW((void)ds.id(0, 2, 0), std::out_of_range);
  EXPECT_THROW((void)ds.id(0, 0, -1), std::out_of_range);
  EXPECT_THROW((void)ds.element(-1), std::out_of_range);
  EXPECT_THROW((void)ds.element(4), std::out_of_range);
}

TEST(DataSpace, RejectsDegenerateArray) {
  DataSpace ds;
  EXPECT_THROW(ds.addArray("X", 0, 3), std::invalid_argument);
}

TEST(DataSpace, ArrayInfoRecordsName) {
  DataSpace ds;
  ds.addArray("payload", 2, 2);
  EXPECT_EQ(ds.arrays()[0].name, "payload");
  EXPECT_EQ(ds.arrays()[0].rows, 2);
  EXPECT_EQ(ds.arrays()[0].baseId, 0);
}

}  // namespace
}  // namespace pimsched

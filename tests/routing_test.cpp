#include "pim/routing.hpp"

#include <gtest/gtest.h>

namespace pimsched {
namespace {

TEST(XyRoute, SelfRouteIsSingleton) {
  const Grid g(4, 4);
  const auto path = xyRoute(g, 5, 5);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 5);
  EXPECT_TRUE(xyLinks(g, 5, 5).empty());
}

TEST(XyRoute, LengthIsManhattanPlusOne) {
  const Grid g(5, 7);
  for (ProcId a = 0; a < g.size(); a += 3) {
    for (ProcId b = 0; b < g.size(); b += 2) {
      const auto path = xyRoute(g, a, b);
      EXPECT_EQ(static_cast<int>(path.size()), g.manhattan(a, b) + 1);
      EXPECT_EQ(path.front(), a);
      EXPECT_EQ(path.back(), b);
    }
  }
}

TEST(XyRoute, ConsecutiveHopsAreAdjacent) {
  const Grid g(4, 6);
  const auto path = xyRoute(g, g.id(0, 0), g.id(3, 5));
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_EQ(g.manhattan(path[i], path[i + 1]), 1);
  }
}

TEST(XyRoute, ColumnAxisFirst) {
  const Grid g(4, 4);
  // From (0,0) to (2,3): expect to traverse columns first along row 0.
  const auto path = xyRoute(g, g.id(0, 0), g.id(2, 3));
  ASSERT_EQ(path.size(), 6u);
  EXPECT_EQ(path[1], g.id(0, 1));
  EXPECT_EQ(path[2], g.id(0, 2));
  EXPECT_EQ(path[3], g.id(0, 3));
  EXPECT_EQ(path[4], g.id(1, 3));
  EXPECT_EQ(path[5], g.id(2, 3));
}

TEST(XyRoute, NegativeDirections) {
  const Grid g(4, 4);
  const auto path = xyRoute(g, g.id(3, 3), g.id(1, 0));
  EXPECT_EQ(static_cast<int>(path.size()), g.manhattan(g.id(3, 3), g.id(1, 0)) + 1);
  EXPECT_EQ(path[1], g.id(3, 2));  // column decreases first
}

TEST(XyLinks, CountEqualsManhattan) {
  const Grid g(6, 6);
  for (ProcId a = 0; a < g.size(); a += 5) {
    for (ProcId b = 0; b < g.size(); b += 4) {
      EXPECT_EQ(static_cast<int>(xyLinks(g, a, b).size()), g.manhattan(a, b));
    }
  }
}

TEST(XyRoute, SingleRowGrid) {
  // 1 x N degenerates to pure column traversal.
  const Grid g(1, 6);
  for (ProcId a = 0; a < g.size(); ++a) {
    for (ProcId b = 0; b < g.size(); ++b) {
      const auto path = xyRoute(g, a, b);
      ASSERT_EQ(static_cast<int>(path.size()), g.manhattan(a, b) + 1);
      EXPECT_EQ(path.front(), a);
      EXPECT_EQ(path.back(), b);
      // Columns change by exactly one per hop, monotonically towards b.
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        EXPECT_EQ(path[i + 1] - path[i], b > a ? 1 : -1);
      }
      EXPECT_EQ(static_cast<int>(xyLinks(g, a, b).size()), g.manhattan(a, b));
    }
  }
}

TEST(XyRoute, SingleColumnGrid) {
  // N x 1 degenerates to pure row traversal.
  const Grid g(6, 1);
  for (ProcId a = 0; a < g.size(); ++a) {
    for (ProcId b = 0; b < g.size(); ++b) {
      const auto path = xyRoute(g, a, b);
      ASSERT_EQ(static_cast<int>(path.size()), g.manhattan(a, b) + 1);
      EXPECT_EQ(path.front(), a);
      EXPECT_EQ(path.back(), b);
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        EXPECT_EQ(path[i + 1] - path[i], b > a ? 1 : -1);
      }
      const auto links = xyLinks(g, a, b);
      ASSERT_EQ(static_cast<int>(links.size()), g.manhattan(a, b));
      for (std::size_t i = 0; i < links.size(); ++i) {
        EXPECT_EQ(links[i].from, path[i]);
        EXPECT_EQ(links[i].to, path[i + 1]);
      }
    }
  }
}

TEST(XyRoute, RouteIsDeterministic) {
  const Grid g(4, 4);
  EXPECT_EQ(xyRoute(g, 1, 14), xyRoute(g, 1, 14));
}

}  // namespace
}  // namespace pimsched

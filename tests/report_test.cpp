#include <gtest/gtest.h>

#include <sstream>

#include "report/csv.hpp"
#include "report/stats.hpp"
#include "report/table.hpp"

namespace pimsched {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "cost"});
  t.addRow({"a", "100"});
  t.addRow({"long-name", "7"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  // Every non-rule line has the same width.
  std::istringstream is(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(TextTable, RejectsWidthMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), std::invalid_argument);
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, RulesSeparateSections) {
  TextTable t({"x"});
  t.addRow({"1"});
  t.addRule();
  t.addRow({"2"});
  std::ostringstream os;
  t.print(os);
  // Header rule + explicit rule.
  int rules = 0;
  std::istringstream is(os.str());
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.find_first_not_of('-') == std::string::npos) {
      ++rules;
    }
  }
  EXPECT_EQ(rules, 2);
}

TEST(FormatFixed, Precision) {
  EXPECT_EQ(formatFixed(12.345, 1), "12.3");
  EXPECT_EQ(formatFixed(12.35, 0), "12");
  EXPECT_EQ(formatFixed(-3.14159, 2), "-3.14");
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csvEscape("plain"), "plain");
  EXPECT_EQ(csvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(csvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"a", "b,c", "d"});
  w.row({"1", "2", "3"});
  EXPECT_EQ(os.str(), "a,\"b,c\",d\n1,2,3\n");
}

TEST(Stats, MeanAndGeomean) {
  const std::vector<double> v = {1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 7.0 / 3.0);
  EXPECT_DOUBLE_EQ(geomean(v), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Stats, GeomeanRejectsNonPositive) {
  const std::vector<double> v = {1.0, 0.0};
  EXPECT_THROW((void)geomean(v), std::invalid_argument);
}

TEST(Stats, MinMax) {
  const std::vector<double> v = {3.0, -1.0, 2.0};
  EXPECT_DOUBLE_EQ(minOf(v), -1.0);
  EXPECT_DOUBLE_EQ(maxOf(v), 3.0);
  EXPECT_THROW((void)minOf({}), std::invalid_argument);
}

}  // namespace
}  // namespace pimsched

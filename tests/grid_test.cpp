#include "pim/grid.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

namespace pimsched {
namespace {

TEST(Grid, DimensionsAndSize) {
  const Grid g(4, 4);
  EXPECT_EQ(g.rows(), 4);
  EXPECT_EQ(g.cols(), 4);
  EXPECT_EQ(g.size(), 16);
}

TEST(Grid, RejectsDegenerateDimensions) {
  EXPECT_THROW(Grid(0, 4), std::invalid_argument);
  EXPECT_THROW(Grid(4, 0), std::invalid_argument);
  EXPECT_THROW(Grid(-1, 3), std::invalid_argument);
}

TEST(Grid, IdCoordRoundTrip) {
  const Grid g(3, 5);
  for (ProcId p = 0; p < g.size(); ++p) {
    EXPECT_EQ(g.id(g.coord(p)), p);
  }
}

TEST(Grid, RowMajorLayout) {
  const Grid g(4, 4);
  EXPECT_EQ(g.id(0, 0), 0);
  EXPECT_EQ(g.id(0, 3), 3);
  EXPECT_EQ(g.id(1, 0), 4);
  EXPECT_EQ(g.id(3, 3), 15);
}

TEST(Grid, ManhattanDistance) {
  const Grid g(4, 4);
  EXPECT_EQ(g.manhattan(g.id(0, 0), g.id(0, 0)), 0);
  EXPECT_EQ(g.manhattan(g.id(0, 0), g.id(3, 3)), 6);
  EXPECT_EQ(g.manhattan(g.id(1, 2), g.id(2, 0)), 3);
  // Symmetry.
  for (ProcId a = 0; a < g.size(); ++a) {
    for (ProcId b = 0; b < g.size(); ++b) {
      EXPECT_EQ(g.manhattan(a, b), g.manhattan(b, a));
    }
  }
}

TEST(Grid, NeighborsCornerEdgeInterior) {
  const Grid g(4, 4);
  EXPECT_EQ(g.neighbors(g.id(0, 0)).size(), 2u);   // corner
  EXPECT_EQ(g.neighbors(g.id(0, 2)).size(), 3u);   // edge
  EXPECT_EQ(g.neighbors(g.id(2, 2)).size(), 4u);   // interior
}

TEST(Grid, NeighborsAreAdjacent) {
  const Grid g(5, 3);
  for (ProcId p = 0; p < g.size(); ++p) {
    for (const ProcId q : g.neighbors(p)) {
      EXPECT_EQ(g.manhattan(p, q), 1);
    }
  }
}

TEST(Grid, SingleProcessorGrid) {
  const Grid g(1, 1);
  EXPECT_EQ(g.size(), 1);
  EXPECT_TRUE(g.neighbors(0).empty());
  EXPECT_EQ(g.manhattan(0, 0), 0);
}

TEST(Grid, OversizedDimensionsThrow) {
  // rows * cols above the processor bound must be rejected before the
  // int32 ProcId space (or an allocation) can overflow.
  EXPECT_THROW(Grid(1 << 13, 1 << 13), std::invalid_argument);   // 2^26
  EXPECT_THROW(Grid(INT32_MAX, INT32_MAX), std::invalid_argument);
  EXPECT_THROW(Grid(1, static_cast<int>(kMaxProcs) + 1),
               std::invalid_argument);
  // The boundary itself is allowed.
  EXPECT_NO_THROW(Grid(1 << 12, 1 << 12));  // 2^24 == kMaxProcs
}

}  // namespace
}  // namespace pimsched

#include "core/adaptive_window.hpp"

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "kernels/benchmarks.hpp"

namespace pimsched {
namespace {

TEST(AdaptiveWindows, StaticPatternYieldsOneWindow) {
  // Identical references every step: the centroid never moves.
  const Grid g(4, 4);
  ReferenceTrace t(DataSpace::singleSquare(2));
  for (StepId s = 0; s < 10; ++s) {
    t.add(s, g.id(1, 1), 0, 3);
    t.add(s, g.id(2, 2), 1, 1);
  }
  t.finalize();
  const WindowPartition wp = adaptiveWindows(t, g);
  EXPECT_EQ(wp.numWindows(), 1);
}

TEST(AdaptiveWindows, CutsAtThePhaseChange) {
  // 5 steps around (0,0), then 5 steps around (3,3): exactly one cut.
  const Grid g(4, 4);
  ReferenceTrace t(DataSpace::singleSquare(1));
  for (StepId s = 0; s < 5; ++s) t.add(s, g.id(0, 0), 0, 4);
  for (StepId s = 5; s < 10; ++s) t.add(s, g.id(3, 3), 0, 4);
  t.finalize();
  const WindowPartition wp = adaptiveWindows(t, g);
  ASSERT_EQ(wp.numWindows(), 2);
  EXPECT_EQ(wp.window(0), (StepRange{0, 5}));
  EXPECT_EQ(wp.window(1), (StepRange{5, 10}));
}

TEST(AdaptiveWindows, ThresholdControlsSensitivity) {
  // A slowly wandering centroid: a loose threshold keeps one window, a
  // tight one cuts several.
  const Grid g(1, 16);
  ReferenceTrace t(DataSpace::singleSquare(1));
  for (StepId s = 0; s < 16; ++s) t.add(s, static_cast<ProcId>(s), 0, 1);
  t.finalize();

  AdaptiveWindowOptions loose;
  loose.driftThreshold = 100.0;
  EXPECT_EQ(adaptiveWindows(t, g, loose).numWindows(), 1);

  AdaptiveWindowOptions tight;
  tight.driftThreshold = 0.5;
  EXPECT_GT(adaptiveWindows(t, g, tight).numWindows(), 4);
}

TEST(AdaptiveWindows, MaxWindowStepsForcesCuts) {
  const Grid g(2, 2);
  ReferenceTrace t(DataSpace::singleSquare(1));
  for (StepId s = 0; s < 9; ++s) t.add(s, 0, 0, 1);
  t.finalize();
  AdaptiveWindowOptions opts;
  opts.maxWindowSteps = 3;
  const WindowPartition wp = adaptiveWindows(t, g, opts);
  EXPECT_EQ(wp.numWindows(), 3);
}

TEST(AdaptiveWindows, EmptyTrace) {
  const Grid g(2, 2);
  ReferenceTrace t(DataSpace::singleSquare(1));
  t.finalize();
  EXPECT_EQ(adaptiveWindows(t, g).numWindows(), 0);
}

TEST(AdaptiveWindows, RejectsBadInput) {
  const Grid g(2, 2);
  ReferenceTrace t(DataSpace::singleSquare(1));
  t.add(0, 0, 0, 1);
  EXPECT_THROW((void)adaptiveWindows(t, g), std::invalid_argument);
  t.finalize();
  AdaptiveWindowOptions opts;
  opts.driftThreshold = -1.0;
  EXPECT_THROW((void)adaptiveWindows(t, g, opts), std::invalid_argument);
}

TEST(AdaptiveWindows, PluggedIntoPipeline) {
  const Grid g(4, 4);
  const ReferenceTrace trace =
      makePaperBenchmark(PaperBenchmark::kCodeRev, g, 8);
  PipelineConfig cfg;
  cfg.explicitWindows = adaptiveWindows(trace, g);
  const Experiment exp(trace, g, cfg);
  EXPECT_EQ(exp.refs().numWindows(), cfg.explicitWindows->numWindows());
  // The full pipeline still works on adaptive boundaries.
  const Cost total = exp.evaluate(Method::kGomcds).aggregate.total();
  EXPECT_GT(total, 0);
  EXPECT_LE(total, exp.evaluate(Method::kRowWise).aggregate.total());
}

TEST(AdaptiveWindows, CompetitiveWithPerStepWindowsOnDriftingTrace) {
  // Adaptive boundaries should capture most of GOMCDS's gain with far
  // fewer windows than per-step partitioning.
  const Grid g(4, 4);
  const ReferenceTrace trace =
      makePaperBenchmark(PaperBenchmark::kLuCode, g, 16);

  PipelineConfig perStep;
  perStep.numWindows = static_cast<int>(trace.numSteps());
  const Experiment fine(trace, g, perStep);

  PipelineConfig adaptive;
  adaptive.explicitWindows = adaptiveWindows(trace, g);
  const Experiment coarse(trace, g, adaptive);

  EXPECT_LT(coarse.refs().numWindows(), fine.refs().numWindows());
  const Cost fineCost = fine.evaluate(Method::kGomcds).aggregate.total();
  const Cost coarseCost =
      coarse.evaluate(Method::kGomcds).aggregate.total();
  // Coarser windows cannot beat finer ones for GOMCDS, but must stay
  // within 25%.
  EXPECT_GE(coarseCost, fineCost);
  EXPECT_LE(coarseCost, fineCost + fineCost / 4);
}

}  // namespace
}  // namespace pimsched

#include "cost/cost_model.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace pimsched {
namespace {

TEST(CostModel, ServeCostHandComputed) {
  const Grid g(4, 4);
  const CostModel model(g);
  const std::vector<ProcWeight> refs = {{g.id(0, 0), 2}, {g.id(3, 3), 1}};
  // From center (1,1): 2*2 + 1*4 = 8.
  EXPECT_EQ(model.serveCost(refs, g.id(1, 1)), 8);
  // From (0,0): 0 + 6.
  EXPECT_EQ(model.serveCost(refs, g.id(0, 0)), 6);
}

TEST(CostModel, SelfReferenceIsFree) {
  const Grid g(2, 2);
  const CostModel model(g);
  const std::vector<ProcWeight> refs = {{1, 100}};
  EXPECT_EQ(model.serveCost(refs, 1), 0);
}

TEST(CostModel, EmptyRefsAreFree) {
  const Grid g(2, 2);
  const CostModel model(g);
  EXPECT_EQ(model.serveCost({}, 0), 0);
}

TEST(CostModel, MoveCostIsVolumeTimesDistance) {
  const Grid g(4, 4);
  const CostModel unit(g);
  EXPECT_EQ(unit.moveCost(g.id(0, 0), g.id(3, 3)), 6);
  EXPECT_EQ(unit.moveCost(5, 5), 0);

  const CostModel bulky(g, CostParams{1, 7});
  EXPECT_EQ(bulky.moveCost(g.id(0, 0), g.id(3, 3)), 42);

  const CostModel pricey(g, CostParams{3, 7});
  EXPECT_EQ(pricey.moveCost(g.id(0, 0), g.id(3, 3)), 126);
}

TEST(CostModel, HopCostScalesServe) {
  const Grid g(3, 3);
  const CostModel unit(g);
  const CostModel triple(g, CostParams{3, 1});
  testutil::Rng rng(211);
  for (int trial = 0; trial < 20; ++trial) {
    const auto refs = testutil::randomRefs(rng, g, 8);
    for (ProcId p = 0; p < g.size(); ++p) {
      EXPECT_EQ(triple.serveCost(refs, p), 3 * unit.serveCost(refs, p));
    }
  }
}

TEST(CostModel, ServeCostIsSymmetricUnderSwap) {
  // Serving refs at {p} from center c == serving refs at {c} from p.
  const Grid g(4, 4);
  const CostModel model(g);
  for (ProcId a = 0; a < g.size(); a += 3) {
    for (ProcId b = 0; b < g.size(); b += 2) {
      const std::vector<ProcWeight> atA = {{a, 5}};
      const std::vector<ProcWeight> atB = {{b, 5}};
      EXPECT_EQ(model.serveCost(atA, b), model.serveCost(atB, a));
    }
  }
}

TEST(CostModel, TriangleInequalityOnMoves) {
  const Grid g(5, 5);
  const CostModel model(g);
  testutil::Rng rng(212);
  for (int trial = 0; trial < 100; ++trial) {
    const auto a = static_cast<ProcId>(rng.below(25));
    const auto b = static_cast<ProcId>(rng.below(25));
    const auto c = static_cast<ProcId>(rng.below(25));
    EXPECT_LE(model.moveCost(a, c),
              model.moveCost(a, b) + model.moveCost(b, c));
  }
}

}  // namespace
}  // namespace pimsched

#include "core/incremental.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "core/gomcds.hpp"
#include "core/gomcds_detail.hpp"
#include "core/pipeline.hpp"
#include "fault/distance_map.hpp"
#include "fault/fault_map.hpp"
#include "fault/fault_trace.hpp"
#include "graph/layered_dag.hpp"
#include "test_util.hpp"

namespace pimsched {
namespace {

// The identity assertions below must hold with the warm path on AND off
// (the CI matrix runs this suite under PIMSCHED_INCREMENTAL=0 and =1);
// warm-expectations are therefore gated on the effective toggle.
bool warmPathOn() { return incrementalEnabled(SchedulerOptions{}); }

void expectSameSchedule(const DataSchedule& a, const DataSchedule& b) {
  ASSERT_EQ(a.numData(), b.numData());
  ASSERT_EQ(a.numWindows(), b.numWindows());
  for (DataId d = 0; d < a.numData(); ++d) {
    for (WindowId w = 0; w < a.numWindows(); ++w) {
      ASSERT_EQ(a.center(d, w), b.center(d, w))
          << "datum " << d << " window " << w;
    }
  }
}

/// One access per (window, ref): steps == windows, so mutating the entry
/// list of step w changes exactly window w's reference strings.
struct StreamWorkload {
  struct Entry {
    ProcId proc;
    DataId data;
    Cost weight;
  };

  StreamWorkload(testutil::Rng& rng, const Grid& grid, DataId numData,
                 int numWindows, int refsPerWindow)
      : numData_(numData), grid_(&grid) {
    steps_.resize(static_cast<std::size_t>(numWindows));
    for (auto& step : steps_) step = randomStep(rng, refsPerWindow);
  }

  std::vector<Entry> randomStep(testutil::Rng& rng, int refsPerWindow) {
    std::vector<Entry> out;
    for (int i = 0; i < refsPerWindow; ++i) {
      out.push_back(Entry{
          static_cast<ProcId>(rng.below(
              static_cast<std::uint64_t>(grid_->size()))),
          static_cast<DataId>(rng.below(static_cast<std::uint64_t>(numData_))),
          static_cast<Cost>(rng.range(1, 5))});
    }
    return out;
  }

  /// Replaces the last `suffix` windows with fresh random references.
  void churnTail(testutil::Rng& rng, int suffix, int refsPerWindow) {
    for (std::size_t w = steps_.size() - static_cast<std::size_t>(suffix);
         w < steps_.size(); ++w) {
      steps_[w] = randomStep(rng, refsPerWindow);
    }
  }

  [[nodiscard]] ReferenceTrace trace() const {
    // numData_ data in one square-ish array (ids just need to cover range).
    int side = 1;
    while (side * side < numData_) ++side;
    ReferenceTrace t(DataSpace::singleSquare(side, "A"));
    for (std::size_t w = 0; w < steps_.size(); ++w) {
      for (const Entry& e : steps_[w]) {
        t.add(static_cast<StepId>(w), e.proc, e.data, e.weight);
      }
    }
    // Touch every datum once so numData is stable across revisions.
    for (DataId d = 0; d < numData_; ++d) t.add(0, 0, d, 1);
    t.finalize();
    return t;
  }

  [[nodiscard]] WindowedRefs refs(const Grid& grid) const {
    const ReferenceTrace t = trace();
    return WindowedRefs(
        t, WindowPartition::evenCount(t.numSteps(),
                                      static_cast<int>(steps_.size())),
        grid);
  }

  DataId numData_;
  const Grid* grid_;
  std::vector<std::vector<Entry>> steps_;
};

TEST(Incremental, BitIdenticalToColdOnEveryPrefixHealthy) {
  const Grid g(6, 6);
  const CostModel model(g);
  testutil::Rng rng(901);
  StreamWorkload work(rng, g, 20, 8, 40);
  IncrementalSolver solver;
  for (int stream = 0; stream < 6; ++stream) {
    const WindowedRefs refs = work.refs(g);
    const DataSchedule warm = solver.solve(refs, model);
    const DataSchedule cold = scheduleGomcds(refs, model);
    expectSameSchedule(warm, cold);
    if (stream > 0 && warmPathOn()) {
      EXPECT_FALSE(solver.lastStats().cold) << "stream step " << stream;
      EXPECT_GT(solver.lastStats().reusedLayers, 0);
    }
    work.churnTail(rng, 2, 40);
  }
}

TEST(Incremental, BitIdenticalWithStableFaults) {
  const Grid g(5, 5);
  FaultMap faults(g);
  faults.killProc(7);
  faults.killProc(12);
  faults.killLink(2, 3);
  const DistanceMap distances(g, faults);
  const CostModel model(g, distances);
  testutil::Rng rng(902);
  StreamWorkload work(rng, g, 12, 6, 30);
  IncrementalSolver solver;
  for (int stream = 0; stream < 5; ++stream) {
    const WindowedRefs refs =
        work.refs(g).withProcsMasked(faults.deadProcMask());
    const DataSchedule warm = solver.solve(refs, model);
    const DataSchedule cold = scheduleGomcds(refs, model);
    expectSameSchedule(warm, cold);
    if (stream > 0 && warmPathOn()) {
      EXPECT_FALSE(solver.lastStats().cold);
    }
    work.churnTail(rng, 1, 30);
  }
}

TEST(Incremental, BitIdenticalWithDedupOffAndWeightOrder) {
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(903);
  StreamWorkload work(rng, g, 10, 5, 25);
  SchedulerOptions options;
  options.dedup = false;
  options.order = DataOrder::kByWeightDesc;
  IncrementalSolver solver;
  for (int stream = 0; stream < 4; ++stream) {
    const WindowedRefs refs = work.refs(g);
    expectSameSchedule(solver.solve(refs, model, options),
                       scheduleGomcds(refs, model, options));
    work.churnTail(rng, 2, 25);
  }
}

TEST(Incremental, CapacityConstrainedColdFallsButMatches) {
  const Grid g(3, 3);
  const CostModel model(g);
  testutil::Rng rng(904);
  StreamWorkload work(rng, g, 12, 4, 30);
  SchedulerOptions options;
  options.capacity = 3;
  IncrementalSolver solver;
  for (int stream = 0; stream < 3; ++stream) {
    const WindowedRefs refs = work.refs(g);
    expectSameSchedule(solver.solve(refs, model, options),
                       scheduleGomcds(refs, model, options));
    EXPECT_TRUE(solver.lastStats().cold);
    work.churnTail(rng, 1, 30);
  }
}

TEST(Incremental, ModelChangeForcesColdAndStaysIdentical) {
  const Grid g(4, 4);
  testutil::Rng rng(905);
  StreamWorkload work(rng, g, 8, 5, 20);
  IncrementalSolver solver;
  const WindowedRefs refs = work.refs(g);
  (void)solver.solve(refs, CostModel(g));
  CostParams heavy;
  heavy.moveVolume = 7;
  const CostModel model2(g, heavy);
  const DataSchedule warm = solver.solve(refs, model2);
  EXPECT_TRUE(solver.lastStats().cold);
  expectSameSchedule(warm, scheduleGomcds(refs, model2));
}

TEST(Incremental, FaultContentChangeIsDetectedWithoutInvalidate) {
  // Same shapes, same object layout — only the fault content differs. The
  // solver's fingerprint must catch it even though invalidate() was never
  // called.
  const Grid g(4, 4);
  testutil::Rng rng(906);
  StreamWorkload work(rng, g, 8, 5, 20);
  FaultMap faults(g);
  const WindowedRefs base = work.refs(g);
  IncrementalSolver solver;
  {
    const DistanceMap d1(g, faults);
    const CostModel m1(g, d1);
    (void)solver.solve(base.withProcsMasked(faults.deadProcMask()), m1);
  }
  faults.killProc(5);
  const DistanceMap d2(g, faults);
  const CostModel m2(g, d2);
  const WindowedRefs masked = base.withProcsMasked(faults.deadProcMask());
  const DataSchedule warm = solver.solve(masked, m2);
  EXPECT_TRUE(solver.lastStats().cold);
  expectSameSchedule(warm, scheduleGomcds(masked, m2));
}

TEST(Incremental, InvalidateDropsRetainedState) {
  const Grid g(3, 3);
  const CostModel model(g);
  testutil::Rng rng(907);
  StreamWorkload work(rng, g, 6, 4, 15);
  IncrementalSolver solver;
  const WindowedRefs refs = work.refs(g);
  (void)solver.solve(refs, model);
  if (warmPathOn()) {
    EXPECT_GT(solver.retainedBytes(), 0u);
  }
  solver.invalidate();
  EXPECT_EQ(solver.retainedBytes(), 0u);
  const DataSchedule after = solver.solve(refs, model);
  EXPECT_TRUE(solver.lastStats().cold);
  expectSameSchedule(after, scheduleGomcds(refs, model));
}

TEST(Incremental, EnvToggleForcesColdPath) {
  const char* prev = std::getenv("PIMSCHED_INCREMENTAL");
  const std::optional<std::string> stash =
      prev ? std::optional<std::string>(prev) : std::nullopt;
  setenv("PIMSCHED_INCREMENTAL", "0", 1);
  const Grid g(3, 3);
  const CostModel model(g);
  testutil::Rng rng(908);
  StreamWorkload work(rng, g, 6, 4, 15);
  IncrementalSolver solver;
  const WindowedRefs refs = work.refs(g);
  (void)solver.solve(refs, model);
  const DataSchedule second = solver.solve(refs, model);
  EXPECT_TRUE(solver.lastStats().cold);
  expectSameSchedule(second, scheduleGomcds(refs, model));
  if (stash.has_value()) {
    setenv("PIMSCHED_INCREMENTAL", stash->c_str(), 1);
  } else {
    unsetenv("PIMSCHED_INCREMENTAL");
  }
}

TEST(Incremental, ClassSplitAndReconvergeStayIdentical) {
  const Grid g(4, 4);
  const CostModel model(g);
  const int W = 4;
  // Data 0 and 1 share identical reference strings; datum 1's tail diverges
  // on step 1 (the retained class must split) and converges back on step 2
  // (warm classing is a refinement — split classes stay split until the
  // next cold solve, and the result must stay bit-identical regardless).
  // Data 2 and 3 are untouched ballast that keeps full-state sharing in play.
  auto makeRefs = [&](Cost datum1TailWeight) {
    ReferenceTrace t(DataSpace::singleSquare(2, "A"));
    for (DataId d : {0, 1}) {
      t.add(0, 3, d, 2);
      t.add(1, 7, d, 1);
      t.add(2, 9, d, 4);
    }
    t.add(3, 12, 0, 2);
    t.add(3, 12, 1, datum1TailWeight);
    t.add(0, 5, 2, 3);
    t.add(2, 6, 3, 2);
    t.add(3, 1, 3, 5);
    t.finalize();
    return WindowedRefs(t, WindowPartition::evenCount(W, W), g);
  };

  IncrementalSolver solver;
  int step = 0;
  for (Cost tail : {2, 6, 2}) {  // identical -> split -> reconverged
    const WindowedRefs refs = makeRefs(tail);
    const DataSchedule warm = solver.solve(refs, model);
    const DataSchedule cold = scheduleGomcds(refs, model);
    expectSameSchedule(warm, cold);
    if (step > 0 && warmPathOn()) {
      EXPECT_FALSE(solver.lastStats().cold) << "step " << step;
      EXPECT_GT(solver.lastStats().reusedLayers, 0) << "step " << step;
    }
    ++step;
  }
}

// --- change detector ------------------------------------------------------

WindowedRefs twoWindowRefs(const Grid& g, Cost w0Weight, Cost w1Weight) {
  ReferenceTrace t(DataSpace::singleSquare(1, "A"));
  t.add(0, 1, 0, w0Weight);
  t.add(1, 2, 0, w1Weight);
  t.finalize();
  return WindowedRefs(t, WindowPartition::evenCount(2, 2), g);
}

TEST(IncrementalChangeDetector, FindsFirstChangedWindow) {
  const Grid g(2, 2);
  const WindowedRefs a = twoWindowRefs(g, 3, 4);
  const WindowedRefs sameAsA = twoWindowRefs(g, 3, 4);
  const WindowedRefs tailChanged = twoWindowRefs(g, 3, 9);
  const WindowedRefs headChanged = twoWindowRefs(g, 8, 4);
  EXPECT_EQ(firstChangedWindow(a, sameAsA, 0), 2);
  EXPECT_EQ(firstChangedWindow(tailChanged, a, 0), 1);
  EXPECT_EQ(firstChangedWindow(headChanged, a, 0), 0);
}

TEST(IncrementalChangeDetector, ShapeMismatchMeansEverythingChanged) {
  const Grid g(2, 2);
  const WindowedRefs a = twoWindowRefs(g, 3, 4);
  ReferenceTrace t(DataSpace::singleSquare(1, "A"));
  t.add(0, 1, 0, 3);
  t.add(1, 2, 0, 4);
  t.add(2, 2, 0, 1);
  t.finalize();
  const WindowedRefs threeWindows(
      t, WindowPartition::evenCount(3, 3), g);
  EXPECT_EQ(firstChangedWindow(a, threeWindows, 0), 0);
}

TEST(IncrementalChangeDetector, SignaturePathAgreesWithDirectComparison) {
  // The solver's internal detection is a direct per-window row comparison;
  // the public firstChangedWindow is the signature-prescreened reference
  // implementation. They must agree on arbitrary streams.
  const Grid g(4, 4);
  testutil::Rng rng(913);
  StreamWorkload work(rng, g, 12, 6, 30);
  const WindowedRefs prev = work.refs(g);
  work.churnTail(rng, 2, 30);
  const WindowedRefs now = work.refs(g);
  for (DataId d = 0; d < now.numData(); ++d) {
    int direct = now.numWindows();
    for (int w = 0; w < now.numWindows(); ++w) {
      if (!now.sameRefsAs(prev, d, w, d, w)) {
        direct = w;
        break;
      }
    }
    EXPECT_EQ(firstChangedWindow(now, prev, d), direct) << "datum " << d;
  }
}

// --- refsSignature collision regressions ----------------------------------
//
// Crafting two genuinely colliding 64-bit FNV-1a inputs is computationally
// infeasible (the byte-wise xor-multiply structure defeats algebraic
// inversion; a meet-in-the-middle search needs ~2^32 work and memory), so
// these tests drive the *production seams* — the exact code paths that run
// after a signature match — with forced-equal signatures and the real full
// comparators. A real collision would take precisely these branches.

TEST(SignatureCollision, EqualSignaturesDifferentRefsDoNotShareDedupClass) {
  const Grid g(2, 2);
  // Two data with different refs in window 1.
  ReferenceTrace t(DataSpace::singleSquare(2, "A"));
  t.add(0, 1, 0, 3);
  t.add(1, 2, 0, 4);
  t.add(0, 1, 1, 3);
  t.add(1, 2, 1, 5);
  t.add(0, 0, 2, 1);  // padding data so numData == 4
  t.add(0, 0, 3, 1);
  t.finalize();
  const WindowedRefs refs(t, WindowPartition::evenCount(2, 2), g);
  ASSERT_FALSE(refs.sameRefs(0, 1));

  // Forced collision: every datum hashes to the same signature. The full
  // comparison must still keep data 0 and 1 apart.
  const detail::DedupClasses classes = detail::buildEquivalenceClasses(
      refs.numData(), [](DataId) { return std::uint64_t{42}; },
      [&](DataId rep, DataId d) { return refs.sameRefs(rep, d); });
  EXPECT_NE(classes.classOf[0], classes.classOf[1]);
  // Sanity: the padding data (identical refs) do merge through the same
  // forced-collision bucket.
  EXPECT_EQ(classes.classOf[2], classes.classOf[3]);
}

TEST(SignatureCollision, ChangeDetectorDetectsChangeOnSignatureMatch) {
  const Grid g(2, 2);
  const WindowedRefs now = twoWindowRefs(g, 3, 9);
  const WindowedRefs prev = twoWindowRefs(g, 3, 4);
  // Forced collision: the signature prescreen claims every window is
  // unchanged. The full compare must still flag window 1.
  const int first = detail::firstChangedWindowImpl(
      now.numWindows(), [](int) { return true; },
      [&](int w) { return now.sameRefsAs(prev, 0, w, 0, w); });
  EXPECT_EQ(first, 1);
}

TEST(SignatureCollision, ProductionSignaturesStillPrescreenCorrectly) {
  const Grid g(2, 2);
  const WindowedRefs a = twoWindowRefs(g, 3, 4);
  const WindowedRefs b = twoWindowRefs(g, 3, 9);
  EXPECT_EQ(a.refsSignature(0, 0), b.refsSignature(0, 0));
  EXPECT_NE(a.refsSignature(0, 1), b.refsSignature(0, 1));
  EXPECT_NE(a.refsSignature(0), b.refsSignature(0));
}

// --- resume-capable flat solvers ------------------------------------------

TEST(ResumeSolver, MatchesFullSolveAfterSuffixChange) {
  const Grid g(3, 4);
  const int W = 6;
  const int P = g.size();
  testutil::Rng rng(909);
  std::vector<Cost> costs(static_cast<std::size_t>(W * P));
  for (Cost& c : costs) c = rng.range(0, 40);
  std::vector<Cost> trans(static_cast<std::size_t>(P * P));
  for (ProcId q = 0; q < P; ++q) {
    for (ProcId p = 0; p < P; ++p) {
      trans[static_cast<std::size_t>(q * P + p)] =
          2 * static_cast<Cost>(g.manhattan(q, p));
    }
  }

  LayeredDagScratch scratch;
  CostBuffer dp;
  LayeredPath path;
  LayeredDagSolver::solveFlatResumeInto(W, P, costs, trans, 0, dp, scratch,
                                        path);
  for (int from : {3, 1, W - 1}) {
    for (std::size_t i = static_cast<std::size_t>(from * P);
         i < costs.size(); ++i) {
      costs[i] = rng.range(0, 40);
    }
    LayeredDagSolver::solveFlatResumeInto(W, P, costs, trans, from, dp,
                                          scratch, path);
    const LayeredPath cold = LayeredDagSolver::solveFlat(W, P, costs, trans);
    ASSERT_EQ(path.total, cold.total);
    ASSERT_EQ(path.nodes, cold.nodes);
  }
}

TEST(ResumeSolver, ManhattanMatchesFullSolveAfterSuffixChange) {
  const Grid g(4, 4);
  const int W = 5;
  const int P = g.size();
  testutil::Rng rng(910);
  std::vector<Cost> costs(static_cast<std::size_t>(W * P));
  for (Cost& c : costs) c = rng.range(0, 30);

  LayeredDagScratch scratch;
  CostBuffer dp;
  LayeredPath path;
  LayeredDagSolver::solveManhattanFlatResumeInto(g, W, costs, 3, 0, dp,
                                                 scratch, path);
  for (int from : {2, 4, 1}) {
    for (std::size_t i = static_cast<std::size_t>(from * P);
         i < costs.size(); ++i) {
      costs[i] = rng.range(0, 30);
    }
    LayeredDagSolver::solveManhattanFlatResumeInto(g, W, costs, 3, from, dp,
                                                   scratch, path);
    const LayeredPath cold =
        LayeredDagSolver::solveManhattanFlat(g, W, costs, 3);
    ASSERT_EQ(path.total, cold.total);
    ASSERT_EQ(path.nodes, cold.nodes);
  }
}

TEST(ResumeSolver, ParentCacheReconstructionIsBitIdentical) {
  const Grid g(4, 4);
  const int W = 6;
  const int P = g.size();
  testutil::Rng rng(912);
  std::vector<Cost> costs(static_cast<std::size_t>(W * P));
  for (Cost& c : costs) c = rng.range(0, 30);

  LayeredDagScratch scratch;
  CostBuffer dp;
  LayeredPath path;
  LayeredParentCache parents;  // starts wrong-sized: wholesale reset path
  LayeredDagSolver::solveManhattanFlatResumeInto(g, W, costs, 3, 0, dp,
                                                 scratch, path, &parents);
  EXPECT_EQ(parents.size(), static_cast<std::size_t>(W * P));
  // from == W re-runs only reconstruction: every step walks cached entries.
  // The smaller fromLayer values invalidate and rebuild suffix entries.
  for (int from : {W, 4, 2, W, 1}) {
    for (std::size_t i = static_cast<std::size_t>(from * P); i < costs.size();
         ++i) {
      costs[i] = rng.range(0, 30);
    }
    LayeredDagSolver::solveManhattanFlatResumeInto(g, W, costs, 3, from, dp,
                                                   scratch, path, &parents);
    const LayeredPath cold = LayeredDagSolver::solveManhattanFlat(g, W, costs, 3);
    ASSERT_EQ(path.total, cold.total) << "fromLayer " << from;
    ASSERT_EQ(path.nodes, cold.nodes) << "fromLayer " << from;
  }
}

// --- StreamSession --------------------------------------------------------

PipelineConfig streamConfig(int windows) {
  PipelineConfig config;
  config.numWindows = windows;
  config.capacity = PipelineConfig::kUnlimited;
  return config;
}

TEST(StreamSession, MatchesFreshExperimentOnEveryStep) {
  const Grid g(5, 5);
  testutil::Rng rng(911);
  StreamWorkload work(rng, g, 15, 6, 35);
  StreamSession session(5, 5, streamConfig(6));
  for (int stream = 0; stream < 5; ++stream) {
    const ReferenceTrace trace = work.trace();
    const StreamStepResult got = session.step(trace);
    const Experiment fresh(trace, session.grid(), streamConfig(6));
    expectSameSchedule(got.schedule, fresh.schedule(Method::kGomcds));
    EXPECT_EQ(got.eval.aggregate.total(),
              fresh.evaluate(Method::kGomcds).aggregate.total());
    if (stream > 0 && warmPathOn()) {
      EXPECT_TRUE(got.incremental) << "stream step " << stream;
    }
    work.churnTail(rng, 2, 35);
  }
}

TEST(StreamSession, FaultedSessionMatchesFaultedExperiment) {
  const Grid g(4, 4);
  testutil::Rng rng(912);
  StreamWorkload work(rng, g, 10, 5, 25);
  const std::vector<std::string> specs{"proc:2", "proc:9"};
  StreamSession session(4, 4, streamConfig(5), Method::kGomcds, specs);
  FaultMap faults(g);
  ASSERT_TRUE(applyFaultSpec(faults, "proc:2"));
  ASSERT_TRUE(applyFaultSpec(faults, "proc:9"));
  for (int stream = 0; stream < 4; ++stream) {
    const ReferenceTrace trace = work.trace();
    const StreamStepResult got = session.step(trace);
    const Experiment fresh(trace, session.grid(), session.faults(),
                           streamConfig(5));
    expectSameSchedule(got.schedule, fresh.schedule(Method::kGomcds));
    work.churnTail(rng, 1, 25);
  }
}

TEST(StreamSession, DriftInvalidatesWarmStateAndStaysIdentical) {
  const Grid g(4, 4);
  testutil::Rng rng(913);
  StreamWorkload work(rng, g, 10, 5, 25);
  StreamSession session(4, 4, streamConfig(5));
  (void)session.step(work.trace());
  EXPECT_EQ(session.driftEpoch(), 0u);
  session.applyDrift({"proc:5"}, false);
  EXPECT_EQ(session.driftEpoch(), 1u);
  EXPECT_TRUE(session.faultAware());

  const ReferenceTrace trace = work.trace();
  const StreamStepResult got = session.step(trace);
  EXPECT_FALSE(got.incremental);  // epoch invalidation: cold under new model
  const Experiment fresh(trace, session.grid(), session.faults(),
                         streamConfig(5));
  expectSameSchedule(got.schedule, fresh.schedule(Method::kGomcds));

  // Second post-drift step goes warm again under the (now stable) faults.
  const StreamStepResult next = session.step(trace);
  if (warmPathOn()) {
    EXPECT_TRUE(next.incremental);
  }
  expectSameSchedule(next.schedule, fresh.schedule(Method::kGomcds));
}

TEST(StreamSession, RepairLastPreservesPrefixAfterDrift) {
  const Grid g(4, 4);
  testutil::Rng rng(914);
  StreamWorkload work(rng, g, 8, 4, 30);
  StreamSession session(4, 4, streamConfig(4));
  const StreamStepResult before = session.step(work.trace());

  // Kill the center most data sit on in the last window to force repairs.
  const ProcId victim = before.schedule.center(0, 3);
  session.applyDrift({"proc:" + std::to_string(victim)}, false);
  const StreamRepairResult repaired = session.repairLast(2);
  for (DataId d = 0; d < before.schedule.numData(); ++d) {
    for (WindowId w = 0; w < 2; ++w) {
      EXPECT_EQ(repaired.repair.schedule.center(d, w),
                before.schedule.center(d, w));
    }
  }
  for (DataId d = 0; d < repaired.repair.schedule.numData(); ++d) {
    for (WindowId w = 2; w < 4; ++w) {
      EXPECT_NE(repaired.repair.schedule.center(d, w), victim);
    }
  }
}

TEST(StreamSession, NonGomcdsMethodsAreSupportedButNeverWarm) {
  const Grid g(3, 3);
  testutil::Rng rng(915);
  StreamWorkload work(rng, g, 6, 4, 20);
  StreamSession session(3, 3, streamConfig(4), Method::kLomcds);
  for (int stream = 0; stream < 2; ++stream) {
    const ReferenceTrace trace = work.trace();
    const StreamStepResult got = session.step(trace);
    EXPECT_FALSE(got.incremental);
    const Experiment fresh(trace, session.grid(), streamConfig(4));
    expectSameSchedule(got.schedule, fresh.schedule(Method::kLomcds));
  }
}

TEST(StreamSession, RepairWithoutScheduleThrows) {
  StreamSession session(3, 3, streamConfig(4));
  EXPECT_THROW((void)session.repairLast(), std::logic_error);
}

}  // namespace
}  // namespace pimsched

#include "fault/fault_map.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "fault/distance_map.hpp"
#include "fault/fault_trace.hpp"
#include "obs/obs.hpp"
#include "pim/memory.hpp"

namespace pimsched {
namespace {

TEST(FaultMap, FreshMapHasNoFaults) {
  const Grid g(4, 4);
  const FaultMap f(g);
  EXPECT_FALSE(f.anyFaults());
  EXPECT_EQ(f.deadProcCount(), 0);
  EXPECT_EQ(f.deadLinkCount(), 0);
  EXPECT_EQ(f.aliveProcCount(), 16);
  for (ProcId p = 0; p < g.size(); ++p) {
    EXPECT_TRUE(f.procAlive(p));
    EXPECT_EQ(f.capacityLimit(p), -1);
  }
}

TEST(FaultMap, KillProcIsIdempotent) {
  const Grid g(4, 4);
  FaultMap f(g);
  f.killProc(5);
  f.killProc(5);
  EXPECT_EQ(f.deadProcCount(), 1);
  EXPECT_TRUE(f.procDead(5));
  EXPECT_EQ(f.aliveProcCount(), 15);
  EXPECT_EQ(f.capacityLimit(5), 0);
}

TEST(FaultMap, DeadEndpointKillsEveryTouchingLink) {
  const Grid g(4, 4);
  FaultMap f(g);
  f.killProc(5);
  // 5's mesh neighbors on a 4x4: 1 (N), 9 (S), 4 (W), 6 (E).
  for (const ProcId n : {1, 9, 4, 6}) {
    EXPECT_TRUE(f.linkDead(5, n));
    EXPECT_TRUE(f.linkDead(n, 5));
  }
  EXPECT_FALSE(f.linkDead(1, 2));
}

TEST(FaultMap, KilledLinkIsDirected) {
  const Grid g(4, 4);
  FaultMap f(g);
  f.killLink(1, 2);
  EXPECT_TRUE(f.linkDead(1, 2));
  EXPECT_FALSE(f.linkDead(2, 1));
  EXPECT_EQ(f.deadLinkCount(), 1);
  EXPECT_TRUE(f.anyFaults());
}

TEST(FaultMap, KillLinkRejectsNonAdjacent) {
  const Grid g(4, 4);
  FaultMap f(g);
  EXPECT_THROW(f.killLink(0, 2), std::invalid_argument);
  EXPECT_THROW(f.killLink(0, 0), std::invalid_argument);
}

TEST(FaultMap, RowColAndRegionKills) {
  const Grid g(4, 4);
  FaultMap rows(g);
  rows.killRow(2);
  EXPECT_EQ(rows.deadProcCount(), 4);
  for (int c = 0; c < 4; ++c) EXPECT_TRUE(rows.procDead(g.id(2, c)));

  FaultMap cols(g);
  cols.killCol(0);
  EXPECT_EQ(cols.deadProcCount(), 4);
  for (int r = 0; r < 4; ++r) EXPECT_TRUE(cols.procDead(g.id(r, 0)));

  FaultMap region(g);
  region.killRegion(1, 1, 2, 2);
  EXPECT_EQ(region.deadProcCount(), 4);
  EXPECT_TRUE(region.procDead(g.id(1, 1)));
  EXPECT_TRUE(region.procDead(g.id(2, 2)));
  EXPECT_FALSE(region.procDead(g.id(0, 0)));
}

TEST(FaultMap, LimitCapacityOnlyTightens) {
  const Grid g(2, 2);
  FaultMap f(g);
  f.limitCapacity(1, 5);
  EXPECT_EQ(f.capacityLimit(1), 5);
  f.limitCapacity(1, 7);  // looser: ignored
  EXPECT_EQ(f.capacityLimit(1), 5);
  f.limitCapacity(1, 2);
  EXPECT_EQ(f.capacityLimit(1), 2);
  EXPECT_TRUE(f.anyFaults());
}

TEST(FaultMap, ClearRemovesEverything) {
  const Grid g(3, 3);
  FaultMap f(g);
  f.killProc(0);
  f.killLink(4, 5);
  f.limitCapacity(8, 1);
  f.clear();
  EXPECT_FALSE(f.anyFaults());
  EXPECT_EQ(f.aliveProcCount(), 9);
  EXPECT_EQ(f.capacityLimit(8), -1);
}

TEST(FaultMap, UniformProcInjectionIsDeterministic) {
  const Grid g(4, 4);
  FaultMap a(g), b(g);
  a.injectUniformProcs(4, 42);
  b.injectUniformProcs(4, 42);
  EXPECT_EQ(a.deadProcCount(), 4);
  for (ProcId p = 0; p < g.size(); ++p) {
    EXPECT_EQ(a.procDead(p), b.procDead(p));
  }
  FaultMap c(g);
  c.injectUniformProcs(4, 43);  // different seed, still exactly 4 dead
  EXPECT_EQ(c.deadProcCount(), 4);
}

TEST(FaultMap, UniformProcInjectionRejectsOverdraw) {
  const Grid g(2, 2);
  FaultMap f(g);
  f.killProc(0);
  EXPECT_THROW(f.injectUniformProcs(4, 1), std::invalid_argument);
}

TEST(FaultMap, UniformLinkInjectionIsDeterministic) {
  const Grid g(4, 4);
  FaultMap a(g), b(g);
  a.injectUniformLinks(5, 7);
  b.injectUniformLinks(5, 7);
  EXPECT_EQ(a.deadLinkCount(), 5);
  EXPECT_EQ(b.deadLinkCount(), 5);
  for (ProcId p = 0; p < g.size(); ++p) {
    for (const ProcId n : g.neighbors(p)) {
      EXPECT_EQ(a.linkDead(p, n), b.linkDead(p, n));
    }
  }
}

TEST(FaultMap, DeadProcMaskMatchesQueries) {
  const Grid g(3, 3);
  FaultMap f(g);
  f.killProc(4);
  f.killProc(8);
  const std::vector<char>& mask = f.deadProcMask();
  ASSERT_EQ(mask.size(), 9u);
  for (ProcId p = 0; p < g.size(); ++p) {
    EXPECT_EQ(mask[static_cast<std::size_t>(p)] != 0, f.procDead(p));
  }
}

TEST(FaultMap, ApplyFaultCapacityZerosDeadAndCapsLimited) {
  const Grid g(2, 2);
  FaultMap f(g);
  f.killProc(0);
  f.limitCapacity(1, 1);
  OccupancyMap occ(g, 3);
  applyFaultCapacity(occ, f);
  EXPECT_FALSE(occ.tryPlace(0));  // dead: capacity 0
  EXPECT_TRUE(occ.tryPlace(1));
  EXPECT_FALSE(occ.tryPlace(1));  // limited to 1
  EXPECT_TRUE(occ.tryPlace(2));
  EXPECT_TRUE(occ.tryPlace(2));
  EXPECT_TRUE(occ.tryPlace(2));
  EXPECT_FALSE(occ.tryPlace(2));  // plain capacity 3 still applies
}

TEST(FaultMap, SummaryCountsEachClass) {
  const Grid g(3, 3);
  FaultMap f(g);
  f.killProc(0);
  f.killProc(1);
  f.killLink(4, 5);
  f.limitCapacity(8, 2);
  EXPECT_EQ(f.summary(), "procs=2 links=1 caps=1");
}

// --- applyFaultSpec grammar -----------------------------------------------

TEST(FaultSpec, EveryFormApplies) {
  const Grid g(4, 4);
  FaultMap f(g);
  applyFaultSpec(f, "proc:5");
  EXPECT_TRUE(f.procDead(5));
  applyFaultSpec(f, "link:1-2");
  EXPECT_TRUE(f.linkDead(1, 2));
  applyFaultSpec(f, "row:3");
  EXPECT_TRUE(f.procDead(g.id(3, 0)));
  applyFaultSpec(f, "col:0");
  EXPECT_TRUE(f.procDead(g.id(0, 0)));
  applyFaultSpec(f, "region:1,1,1,2");
  EXPECT_TRUE(f.procDead(g.id(1, 2)));
  applyFaultSpec(f, "cap:7=2");
  EXPECT_EQ(f.capacityLimit(7), 2);

  FaultMap u(g);
  applyFaultSpec(u, "uniform-procs:3@42");
  EXPECT_EQ(u.deadProcCount(), 3);
  applyFaultSpec(u, "uniform-links:2@7");
  EXPECT_EQ(u.deadLinkCount(), 2);
}

TEST(FaultMap, MutationsBumpOnlyOnEffectiveChanges) {
  const Grid g(4, 4);
  FaultMap f(g);
  EXPECT_EQ(f.mutations(), 0);
  f.killProc(5);
  EXPECT_EQ(f.mutations(), 1);
  f.killProc(5);  // already dead: no state change
  EXPECT_EQ(f.mutations(), 1);
  f.killLink(0, 1);
  EXPECT_EQ(f.mutations(), 2);
  f.killLink(0, 1);
  EXPECT_EQ(f.mutations(), 2);
  f.limitCapacity(7, 3);
  EXPECT_EQ(f.mutations(), 3);
  f.limitCapacity(7, 5);  // looser than the current bound: ignored
  EXPECT_EQ(f.mutations(), 3);
  f.limitCapacity(7, 1);  // tighter: counts
  EXPECT_EQ(f.mutations(), 4);
  f.clear();
  EXPECT_EQ(f.mutations(), 5);
  f.clear();  // nothing left to remove
  EXPECT_EQ(f.mutations(), 5);
}

TEST(FaultSpec, DuplicateSpecsReturnFalseAndAreCounted) {
  const Grid g(4, 4);
  FaultMap f(g);
#ifndef PIMSCHED_NO_OBS
  const std::int64_t before =
      obs::Registry::instance().counterValue("fault.spec.duplicates");
#endif
  EXPECT_TRUE(applyFaultSpec(f, "proc:5"));
  EXPECT_FALSE(applyFaultSpec(f, "proc:5"));  // no-op: proc 5 already dead
  EXPECT_TRUE(applyFaultSpec(f, "row:1"));
  // row:1 killed procs 4..7, so this region adds nothing new.
  EXPECT_FALSE(applyFaultSpec(f, "region:1,0,1,3"));
  EXPECT_TRUE(applyFaultSpec(f, "cap:0=2"));
  EXPECT_FALSE(applyFaultSpec(f, "cap:0=3"));  // looser bound: no-op
  EXPECT_TRUE(applyFaultSpec(f, "cap:0=1"));
#ifndef PIMSCHED_NO_OBS
  const std::int64_t after =
      obs::Registry::instance().counterValue("fault.spec.duplicates");
  EXPECT_EQ(after - before, 3);
#endif
}

TEST(FaultSpec, PartialOverlapStillCountsAsAChange) {
  const Grid g(4, 4);
  FaultMap f(g);
  EXPECT_TRUE(applyFaultSpec(f, "proc:5"));
  // region 1,1..2,2 covers the dead proc 5 plus three live ones: the spec
  // changes the map, so it is not a duplicate.
  EXPECT_TRUE(applyFaultSpec(f, "region:1,1,2,2"));
}

TEST(FaultSpec, MalformedSpecsThrow) {
  const Grid g(4, 4);
  FaultMap f(g);
  EXPECT_THROW(applyFaultSpec(f, ""), std::invalid_argument);
  EXPECT_THROW(applyFaultSpec(f, "proc"), std::invalid_argument);
  EXPECT_THROW(applyFaultSpec(f, "proc:"), std::invalid_argument);
  EXPECT_THROW(applyFaultSpec(f, "proc:99"), std::invalid_argument);
  EXPECT_THROW(applyFaultSpec(f, "link:0-5"), std::invalid_argument);
  EXPECT_THROW(applyFaultSpec(f, "row:9"), std::invalid_argument);
  EXPECT_THROW(applyFaultSpec(f, "cap:1=-2"), std::invalid_argument);
  EXPECT_THROW(applyFaultSpec(f, "banana:1"), std::invalid_argument);
  EXPECT_THROW(applyFaultSpec(f, "uniform-procs:3"), std::invalid_argument);
}

// --- FaultTrace -----------------------------------------------------------

TEST(FaultTrace, ParsesAndReplaysByStep) {
  const Grid g(4, 4);
  const std::string text =
      "# pimfault v1\n"
      "\n"
      "step 0 proc 5   # initial damage\n"
      "step 2 link 1 2\n"
      "step 4 cap 7 1\n";
  const FaultTrace trace = FaultTrace::parse(text);
  ASSERT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.lastStep(), 4);

  const FaultMap at0 = trace.mapAtStep(g, 0);
  EXPECT_TRUE(at0.procDead(5));
  EXPECT_FALSE(at0.linkDead(1, 2));

  const FaultMap at2 = trace.mapAtStep(g, 2);
  EXPECT_TRUE(at2.procDead(5));
  EXPECT_TRUE(at2.linkDead(1, 2));
  EXPECT_EQ(at2.capacityLimit(7), -1);

  const FaultMap at9 = trace.mapAtStep(g, 9);
  EXPECT_EQ(at9.capacityLimit(7), 1);
}

TEST(FaultTrace, RequiresVersionHeader) {
  EXPECT_THROW(FaultTrace::parse("step 0 proc 1\n"), std::invalid_argument);
  EXPECT_THROW(FaultTrace::parse(""), std::invalid_argument);
}

TEST(FaultTrace, RejectsMalformedLines) {
  EXPECT_THROW(FaultTrace::parse("# pimfault v1\nstep x proc 1\n"),
               std::invalid_argument);
  EXPECT_THROW(FaultTrace::parse("# pimfault v1\nstep 0 banana 1\n"),
               std::invalid_argument);
  EXPECT_THROW(FaultTrace::parse("# pimfault v1\nproc 1\n"),
               std::invalid_argument);
}

TEST(FaultTrace, TextRoundTrips) {
  const std::string text =
      "# pimfault v1\n"
      "step 0 proc 5\n"
      "step 1 region 1 1 2 2\n"
      "step 3 uniform-procs 2 99\n";
  const FaultTrace trace = FaultTrace::parse(text);
  const FaultTrace again = FaultTrace::parse(trace.toText());
  ASSERT_EQ(again.events().size(), trace.events().size());
  for (std::size_t i = 0; i < trace.events().size(); ++i) {
    EXPECT_EQ(again.events()[i].step, trace.events()[i].step);
    EXPECT_EQ(again.events()[i].spec, trace.events()[i].spec);
  }
}

TEST(FaultTrace, EventsAreSortedStably) {
  const FaultTrace trace(
      {{3, "proc:1"}, {0, "proc:2"}, {3, "proc:3"}, {1, "proc:4"}});
  ASSERT_EQ(trace.events().size(), 4u);
  EXPECT_EQ(trace.events()[0].spec, "proc:2");
  EXPECT_EQ(trace.events()[1].spec, "proc:4");
  EXPECT_EQ(trace.events()[2].spec, "proc:1");  // step-3 order preserved
  EXPECT_EQ(trace.events()[3].spec, "proc:3");
}

// --- DistanceMap ----------------------------------------------------------

TEST(DistanceMap, FaultFreeEqualsManhattan) {
  const Grid g(4, 5);
  const FaultMap f(g);
  const DistanceMap d(g, f);
  EXPECT_FALSE(d.partitioned());
  for (ProcId a = 0; a < g.size(); ++a) {
    for (ProcId b = 0; b < g.size(); ++b) {
      EXPECT_EQ(d.hopDistance(a, b), g.manhattan(a, b));
    }
  }
}

TEST(DistanceMap, RoutesAroundDeadProcessor) {
  const Grid g(3, 3);
  FaultMap f(g);
  f.killProc(4);  // center of the 3x3
  const DistanceMap d(g, f);
  EXPECT_FALSE(d.partitioned());
  // 1 -> 7 must detour around the dead center: 2 straight, 4 around.
  EXPECT_EQ(d.hopDistance(g.id(0, 1), g.id(2, 1)), 4);
  EXPECT_GE(d.hopDistance(g.id(0, 1), g.id(2, 1)), g.manhattan(1, 7));
}

TEST(DistanceMap, DeadProcessorIsUnreachable) {
  const Grid g(3, 3);
  FaultMap f(g);
  f.killProc(4);
  const DistanceMap d(g, f);
  EXPECT_FALSE(d.alive(4));
  EXPECT_GE(d.hopDistance(0, 4), kInfiniteCost);
  EXPECT_GE(d.hopDistance(4, 0), kInfiniteCost);
}

TEST(DistanceMap, DirectedLinkFaultIsAsymmetric) {
  const Grid g(1, 2);
  FaultMap f(g);
  f.killLink(0, 1);
  const DistanceMap d(g, f);
  EXPECT_GE(d.hopDistance(0, 1), kInfiniteCost);
  EXPECT_EQ(d.hopDistance(1, 0), 1);
  EXPECT_TRUE(d.partitioned());
}

TEST(DistanceMap, RowKillPartitionsTheMesh) {
  const Grid g(4, 4);
  FaultMap f(g);
  f.killRow(1);
  const DistanceMap d(g, f);
  EXPECT_TRUE(d.partitioned());
  EXPECT_GE(d.hopDistance(g.id(0, 0), g.id(2, 0)), kInfiniteCost);
  EXPECT_EQ(d.hopDistance(g.id(2, 0), g.id(3, 0)), 1);
}

}  // namespace
}  // namespace pimsched

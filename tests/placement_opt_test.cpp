#include "core/placement_opt.hpp"

#include "cost/center_costs.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/evaluator.hpp"
#include "core/gomcds.hpp"
#include "kernels/benchmarks.hpp"
#include "test_util.hpp"
#include "trace/remap.hpp"

namespace pimsched {
namespace {

TEST(Remap, IdentityIsNoOp) {
  const Grid g(2, 2);
  testutil::Rng rng(161);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 2, 2, 4, 10);
  std::vector<ProcId> identity(static_cast<std::size_t>(g.size()));
  std::iota(identity.begin(), identity.end(), 0);
  const ReferenceTrace mapped = applyProcPermutation(t, identity);
  ASSERT_EQ(mapped.accesses().size(), t.accesses().size());
  for (std::size_t i = 0; i < t.accesses().size(); ++i) {
    EXPECT_EQ(mapped.accesses()[i], t.accesses()[i]);
  }
}

TEST(Remap, PermutationRelabelsProcs) {
  const Grid g(1, 3);
  DataSpace ds;
  ds.addArray("A", 1, 1);
  ReferenceTrace t(ds);
  t.add(0, 0, 0, 2);
  t.add(0, 2, 0, 1);
  t.finalize();
  const std::vector<ProcId> perm = {2, 0, 1};
  const ReferenceTrace mapped = applyProcPermutation(t, perm);
  ASSERT_EQ(mapped.accesses().size(), 2u);
  EXPECT_EQ(mapped.accesses()[0].proc, 1);  // 2 -> 1
  EXPECT_EQ(mapped.accesses()[1].proc, 2);  // 0 -> 2
  EXPECT_EQ(mapped.totalWeight(), t.totalWeight());
}

TEST(Remap, RejectsNonPermutations) {
  const Grid g(1, 2);
  DataSpace ds;
  ds.addArray("A", 1, 1);
  ReferenceTrace t(ds);
  t.add(0, 0, 0, 1);
  t.finalize();
  EXPECT_THROW((void)applyProcPermutation(t, {0, 0}),
               std::invalid_argument);
  EXPECT_THROW((void)applyProcPermutation(t, {1, 2}),
               std::invalid_argument);
}

TEST(Remap, IsPermutationChecks) {
  EXPECT_TRUE(isPermutation({0}));
  EXPECT_TRUE(isPermutation({2, 0, 1}));
  EXPECT_FALSE(isPermutation({1, 1}));
  EXPECT_FALSE(isPermutation({0, 2}));
  EXPECT_TRUE(isPermutation({}));
}

TEST(PlacementOpt, NeverIncreasesObjective) {
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(162);
  for (int trial = 0; trial < 5; ++trial) {
    const ReferenceTrace t = testutil::randomTrace(rng, g, 4, 4, 12, 40);
    const WindowedRefs refs(
        t, WindowPartition::evenCount(t.numSteps(), 4), g);
    const PlacementOptResult r = optimizeProcPlacement(refs, model);
    EXPECT_LE(r.after, r.before);
    EXPECT_TRUE(isPermutation(r.perm));
  }
}

TEST(PlacementOpt, ObjectiveMatchesRemappedDispersion) {
  // Applying the returned permutation to the trace must produce exactly
  // the reported objective when re-measured from scratch.
  const Grid g(3, 3);
  const CostModel model(g);
  testutil::Rng rng(163);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 3, 3, 9, 25);
  const WindowPartition wp = WindowPartition::evenCount(t.numSteps(), 3);
  const WindowedRefs refs(t, wp, g);
  const PlacementOptResult r = optimizeProcPlacement(refs, model);

  const ReferenceTrace mapped = applyProcPermutation(t, r.perm);
  const WindowedRefs mappedRefs(mapped, wp, g);
  Cost objective = 0;
  for (DataId d = 0; d < mappedRefs.numData(); ++d) {
    for (WindowId w = 0; w < mappedRefs.numWindows(); ++w) {
      const auto rs = mappedRefs.refs(d, w);
      if (!rs.empty()) objective += bestCenter(model, rs).cost;
    }
  }
  EXPECT_EQ(objective, r.after);
}

TEST(PlacementOpt, RecoversAScrambledPartition) {
  // Take a well-laid-out benchmark, scramble the processor labels with a
  // fixed permutation, and check the optimizer wins back most of the
  // scheduled cost.
  const Grid g(4, 4);
  const CostModel model(g);
  const ReferenceTrace good =
      makePaperBenchmark(PaperBenchmark::kMatSquare, g, 8,
                         PartitionKind::kBlock2D);

  // A deliberately bad relabelling: bit-reverse-ish shuffle.
  std::vector<ProcId> scramble(static_cast<std::size_t>(g.size()));
  for (ProcId p = 0; p < g.size(); ++p) {
    scramble[static_cast<std::size_t>(p)] =
        static_cast<ProcId>((p * 7 + 3) % g.size());
  }
  ASSERT_TRUE(isPermutation(scramble));
  const ReferenceTrace bad = applyProcPermutation(good, scramble);

  const WindowPartition wp = WindowPartition::perStep(good.numSteps());
  const WindowedRefs goodRefs(good, wp, g);
  const WindowedRefs badRefs(bad, wp, g);

  const Cost goodCost =
      evaluateSchedule(scheduleGomcds(goodRefs, model), goodRefs, model)
          .aggregate.total();
  const Cost badCost =
      evaluateSchedule(scheduleGomcds(badRefs, model), badRefs, model)
          .aggregate.total();
  ASSERT_GT(badCost, goodCost);  // scrambling hurt

  const PlacementOptResult r = optimizeProcPlacement(badRefs, model);
  const ReferenceTrace repaired = applyProcPermutation(bad, r.perm);
  const WindowedRefs repairedRefs(repaired, wp, g);
  const Cost repairedCost =
      evaluateSchedule(scheduleGomcds(repairedRefs, model), repairedRefs,
                       model)
          .aggregate.total();
  // Recover at least half of the damage.
  EXPECT_LE(repairedCost - goodCost, (badCost - goodCost) / 2);
}

TEST(PlacementOpt, StableOnAlreadyGoodLayout) {
  // A perfectly local workload has objective 0 and must stay untouched.
  const Grid g(2, 2);
  const CostModel model(g);
  ReferenceTrace t(DataSpace::singleSquare(2));
  for (StepId s = 0; s < 3; ++s) {
    for (DataId d = 0; d < 4; ++d) t.add(s, static_cast<ProcId>(d), d, 1);
  }
  t.finalize();
  const WindowedRefs refs(t, WindowPartition::perStep(3), g);
  const PlacementOptResult r = optimizeProcPlacement(refs, model);
  EXPECT_EQ(r.before, 0);
  EXPECT_EQ(r.after, 0);
  EXPECT_EQ(r.swapsApplied, 0);
}

}  // namespace
}  // namespace pimsched

#include "fault/fault_route.hpp"

#include <gtest/gtest.h>

#include "fault/distance_map.hpp"
#include "test_util.hpp"

namespace pimsched {
namespace {

using testutil::Rng;

TEST(FaultRoute, FaultFreeEqualsXyRouteEverywhere) {
  // Property: with no faults, faultRoute is bit-identical to the x-y route
  // (same nodes, same order) on every (grid, src, dst) draw.
  Rng rng(2024);
  for (int trial = 0; trial < 40; ++trial) {
    const Grid g(static_cast<int>(rng.range(1, 6)),
                 static_cast<int>(rng.range(1, 6)));
    const FaultMap f(g);
    const ProcId a =
        static_cast<ProcId>(rng.below(static_cast<std::uint64_t>(g.size())));
    const ProcId b =
        static_cast<ProcId>(rng.below(static_cast<std::uint64_t>(g.size())));
    EXPECT_EQ(faultRoute(g, f, a, b), xyRoute(g, a, b));
    const auto links = faultLinks(g, f, a, b);
    const auto expected = xyLinks(g, a, b);
    ASSERT_EQ(links.size(), expected.size());
    for (std::size_t i = 0; i < links.size(); ++i) {
      EXPECT_EQ(links[i].from, expected[i].from);
      EXPECT_EQ(links[i].to, expected[i].to);
    }
  }
}

TEST(FaultRoute, DetoursAroundDeadProcessor) {
  const Grid g(3, 3);
  FaultMap f(g);
  f.killProc(g.id(0, 1));  // the x-y route 0 -> 2 goes through (0,1)
  const auto path = faultRoute(g, f, g.id(0, 0), g.id(0, 2));
  EXPECT_EQ(path.front(), g.id(0, 0));
  EXPECT_EQ(path.back(), g.id(0, 2));
  for (const ProcId p : path) EXPECT_TRUE(f.procAlive(p));
  // Detour through row 1: 4 hops instead of 2.
  EXPECT_EQ(path.size(), 5u);
}

TEST(FaultRoute, DetourIsShortestAlivePath) {
  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    const Grid g(4, 4);
    FaultMap f(g);
    f.injectUniformProcs(static_cast<int>(rng.range(1, 3)), rng.next());
    f.injectUniformLinks(static_cast<int>(rng.range(0, 2)), rng.next());
    const DistanceMap d(g, f);
    for (ProcId a = 0; a < g.size(); ++a) {
      for (ProcId b = 0; b < g.size(); ++b) {
        if (f.procDead(a) || f.procDead(b)) continue;
        if (d.hopDistance(a, b) >= kInfiniteCost) continue;
        const auto path = faultRoute(g, f, a, b);
        EXPECT_EQ(static_cast<Cost>(path.size()) - 1, d.hopDistance(a, b));
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
          EXPECT_FALSE(f.linkDead(path[i], path[i + 1]));
        }
      }
    }
  }
}

TEST(FaultRoute, AvoidsDeadDirectedLink) {
  const Grid g(1, 3);
  FaultMap f(g);
  f.killLink(0, 1);
  const auto path = faultRoute(g, f, 1, 0);  // reverse direction still fine
  EXPECT_EQ(path.size(), 2u);
  EXPECT_THROW(faultRoute(g, f, 0, 1), UnreachableError);
  EXPECT_THROW(faultRoute(g, f, 0, 2), UnreachableError);
}

TEST(FaultRoute, DeadEndpointThrows) {
  const Grid g(2, 2);
  FaultMap f(g);
  f.killProc(3);
  EXPECT_THROW(faultRoute(g, f, 0, 3), UnreachableError);
  EXPECT_THROW(faultRoute(g, f, 3, 0), UnreachableError);
}

TEST(FaultRoute, PartitionThrows) {
  const Grid g(4, 4);
  FaultMap f(g);
  f.killRow(2);
  EXPECT_THROW(faultRoute(g, f, g.id(0, 0), g.id(3, 0)), UnreachableError);
  // Within one side of the cut routing still works.
  EXPECT_EQ(faultRoute(g, f, g.id(0, 0), g.id(1, 3)).size(), 5u);
}

TEST(FaultRoute, SelfRouteOnAliveProcIsSingleton) {
  const Grid g(3, 3);
  FaultMap f(g);
  f.killProc(0);
  const auto path = faultRoute(g, f, 4, 4);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 4);
  EXPECT_TRUE(faultLinks(g, f, 4, 4).empty());
  EXPECT_THROW(faultRoute(g, f, 0, 0), UnreachableError);
}

TEST(FaultRoute, LinksMatchRouteNodes) {
  const Grid g(3, 4);
  FaultMap f(g);
  f.killProc(g.id(1, 1));
  const auto path = faultRoute(g, f, g.id(0, 0), g.id(2, 3));
  const auto links = faultLinks(g, f, g.id(0, 0), g.id(2, 3));
  ASSERT_EQ(links.size() + 1, path.size());
  for (std::size_t i = 0; i < links.size(); ++i) {
    EXPECT_EQ(links[i].from, path[i]);
    EXPECT_EQ(links[i].to, path[i + 1]);
  }
}

}  // namespace
}  // namespace pimsched

#include "core/schedule_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace pimsched {
namespace {

DataSchedule sample() {
  DataSchedule s(3, 2);
  s.setCenter(0, 0, 5);
  s.setCenter(0, 1, 6);
  s.setCenter(1, 0, 0);
  s.setCenter(1, 1, 0);
  s.setCenter(2, 0, 15);
  s.setCenter(2, 1, 3);
  return s;
}

TEST(ScheduleIo, RoundTrip) {
  const DataSchedule original = sample();
  std::stringstream ss;
  saveSchedule(original, ss);
  const DataSchedule loaded = loadSchedule(ss);
  ASSERT_EQ(loaded.numData(), 3);
  ASSERT_EQ(loaded.numWindows(), 2);
  for (DataId d = 0; d < 3; ++d) {
    for (WindowId w = 0; w < 2; ++w) {
      EXPECT_EQ(loaded.center(d, w), original.center(d, w));
    }
  }
}

TEST(ScheduleIo, IgnoresCommentsAndBlankLines) {
  std::stringstream ss(
      "pimsched v1 1 2\n"
      "# a comment\n"
      "\n"
      "4 7\n");
  const DataSchedule s = loadSchedule(ss);
  EXPECT_EQ(s.center(0, 0), 4);
  EXPECT_EQ(s.center(0, 1), 7);
}

TEST(ScheduleIo, RejectsBadHeader) {
  std::stringstream ss("bogus v1 1 1\n0\n");
  EXPECT_THROW((void)loadSchedule(ss), std::runtime_error);
  std::stringstream empty;
  EXPECT_THROW((void)loadSchedule(empty), std::runtime_error);
}

TEST(ScheduleIo, RejectsRowCountMismatch) {
  std::stringstream tooFew("pimsched v1 2 1\n0\n");
  EXPECT_THROW((void)loadSchedule(tooFew), std::runtime_error);
  std::stringstream tooMany("pimsched v1 1 1\n0\n1\n");
  EXPECT_THROW((void)loadSchedule(tooMany), std::runtime_error);
}

TEST(ScheduleIo, RejectsMalformedRow) {
  std::stringstream tooShort("pimsched v1 1 2\n0\n");
  EXPECT_THROW((void)loadSchedule(tooShort), std::runtime_error);
  std::stringstream tooLong("pimsched v1 1 2\n0 1 2\n");
  EXPECT_THROW((void)loadSchedule(tooLong), std::runtime_error);
  std::stringstream negative("pimsched v1 1 2\n0 -3\n");
  EXPECT_THROW((void)loadSchedule(negative), std::runtime_error);
}

TEST(ScheduleIo, RejectsProcessorOutOfRangeWhenBoundGiven) {
  // Regression: loadSchedule used to accept any non-negative processor id,
  // so a schedule written for a larger grid slid silently into a smaller
  // one. With the grid size supplied, out-of-range rows are rejected.
  std::stringstream tooBig("pimsched v1 1 1\n16\n");
  EXPECT_THROW((void)loadSchedule(tooBig, 16), std::runtime_error);
  std::stringstream fits("pimsched v1 1 1\n16\n");
  EXPECT_EQ(loadSchedule(fits, 17).center(0, 0), 16);
  // Without a bound the old permissive behaviour is preserved.
  std::stringstream unbounded("pimsched v1 1 1\n16\n");
  EXPECT_EQ(loadSchedule(unbounded).center(0, 0), 16);
}

TEST(ScheduleIo, BoundErrorNamesTheOffendingRow) {
  std::stringstream ss("pimsched v1 2 2\n0 1\n2 9\n");
  try {
    (void)loadSchedule(ss, 4);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("processor id 9"), std::string::npos) << what;
    EXPECT_NE(what.find("datum 1"), std::string::npos) << what;
    EXPECT_NE(what.find("window 1"), std::string::npos) << what;
  }
}

TEST(ScheduleIo, FileRoundTripHonoursBound) {
  const std::string path =
      ::testing::TempDir() + "/pimsched_schedule_bound_test.txt";
  saveScheduleFile(sample(), path);  // uses processor ids up to 15
  EXPECT_EQ(loadScheduleFile(path, 16).center(2, 0), 15);
  EXPECT_THROW((void)loadScheduleFile(path, 15), std::runtime_error);
}

TEST(ScheduleIo, FileRoundTrip) {
  const std::string path =
      ::testing::TempDir() + "/pimsched_schedule_test.txt";
  saveScheduleFile(sample(), path);
  const DataSchedule loaded = loadScheduleFile(path);
  EXPECT_EQ(loaded.center(2, 1), 3);
  EXPECT_THROW((void)loadScheduleFile("/no/such/file"),
               std::runtime_error);
}

}  // namespace
}  // namespace pimsched

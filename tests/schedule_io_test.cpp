#include "core/schedule_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace pimsched {
namespace {

DataSchedule sample() {
  DataSchedule s(3, 2);
  s.setCenter(0, 0, 5);
  s.setCenter(0, 1, 6);
  s.setCenter(1, 0, 0);
  s.setCenter(1, 1, 0);
  s.setCenter(2, 0, 15);
  s.setCenter(2, 1, 3);
  return s;
}

TEST(ScheduleIo, RoundTrip) {
  const DataSchedule original = sample();
  std::stringstream ss;
  saveSchedule(original, ss);
  const DataSchedule loaded = loadSchedule(ss);
  ASSERT_EQ(loaded.numData(), 3);
  ASSERT_EQ(loaded.numWindows(), 2);
  for (DataId d = 0; d < 3; ++d) {
    for (WindowId w = 0; w < 2; ++w) {
      EXPECT_EQ(loaded.center(d, w), original.center(d, w));
    }
  }
}

TEST(ScheduleIo, IgnoresCommentsAndBlankLines) {
  std::stringstream ss(
      "pimsched v1 1 2\n"
      "# a comment\n"
      "\n"
      "4 7\n");
  const DataSchedule s = loadSchedule(ss);
  EXPECT_EQ(s.center(0, 0), 4);
  EXPECT_EQ(s.center(0, 1), 7);
}

TEST(ScheduleIo, RejectsBadHeader) {
  std::stringstream ss("bogus v1 1 1\n0\n");
  EXPECT_THROW((void)loadSchedule(ss), std::runtime_error);
  std::stringstream empty;
  EXPECT_THROW((void)loadSchedule(empty), std::runtime_error);
}

TEST(ScheduleIo, RejectsRowCountMismatch) {
  std::stringstream tooFew("pimsched v1 2 1\n0\n");
  EXPECT_THROW((void)loadSchedule(tooFew), std::runtime_error);
  std::stringstream tooMany("pimsched v1 1 1\n0\n1\n");
  EXPECT_THROW((void)loadSchedule(tooMany), std::runtime_error);
}

TEST(ScheduleIo, RejectsMalformedRow) {
  std::stringstream tooShort("pimsched v1 1 2\n0\n");
  EXPECT_THROW((void)loadSchedule(tooShort), std::runtime_error);
  std::stringstream tooLong("pimsched v1 1 2\n0 1 2\n");
  EXPECT_THROW((void)loadSchedule(tooLong), std::runtime_error);
  std::stringstream negative("pimsched v1 1 2\n0 -3\n");
  EXPECT_THROW((void)loadSchedule(negative), std::runtime_error);
}

TEST(ScheduleIo, RejectsProcessorOutOfRangeWhenBoundGiven) {
  // Regression: loadSchedule used to accept any non-negative processor id,
  // so a schedule written for a larger grid slid silently into a smaller
  // one. With the grid size supplied, out-of-range rows are rejected.
  std::stringstream tooBig("pimsched v1 1 1\n16\n");
  EXPECT_THROW((void)loadSchedule(tooBig, 16), std::runtime_error);
  std::stringstream fits("pimsched v1 1 1\n16\n");
  EXPECT_EQ(loadSchedule(fits, 17).center(0, 0), 16);
  // Without a bound the old permissive behaviour is preserved.
  std::stringstream unbounded("pimsched v1 1 1\n16\n");
  EXPECT_EQ(loadSchedule(unbounded).center(0, 0), 16);
}

TEST(ScheduleIo, BoundErrorNamesTheOffendingRow) {
  std::stringstream ss("pimsched v1 2 2\n0 1\n2 9\n");
  try {
    (void)loadSchedule(ss, 4);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("processor id 9"), std::string::npos) << what;
    EXPECT_NE(what.find("datum 1"), std::string::npos) << what;
    EXPECT_NE(what.find("window 1"), std::string::npos) << what;
  }
}

TEST(ScheduleIo, FileRoundTripHonoursBound) {
  const std::string path =
      ::testing::TempDir() + "/pimsched_schedule_bound_test.txt";
  saveScheduleFile(sample(), path);  // uses processor ids up to 15
  EXPECT_EQ(loadScheduleFile(path, 16).center(2, 0), 15);
  EXPECT_THROW((void)loadScheduleFile(path, 15), std::runtime_error);
}

TEST(ScheduleIo, WritesVerifiableIntegrityLine) {
  std::stringstream ss;
  saveSchedule(sample(), ss);
  const std::string text = ss.str();
  const std::string expected =
      "# digest " + scheduleDigest(sample()).hex() + "\n";
  EXPECT_NE(text.find(expected), std::string::npos) << text;
  // And the loader accepts its own output.
  std::stringstream in(text);
  EXPECT_EQ(loadSchedule(in).center(2, 0), 15);
}

TEST(ScheduleIo, DetectsTamperedRowsViaDigest) {
  std::stringstream ss;
  saveSchedule(sample(), ss);
  std::string text = ss.str();
  // Flip one placement (5 -> 9) after the integrity line was written.
  const std::size_t pos = text.find("\n5 6\n");
  ASSERT_NE(pos, std::string::npos) << text;
  text[pos + 1] = '9';
  std::stringstream tampered(text);
  try {
    (void)loadSchedule(tampered);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("digest"), std::string::npos)
        << e.what();
  }
}

TEST(ScheduleIo, RejectsMalformedDigestLine) {
  std::stringstream bad("pimsched v1 1 1\n# digest nothex\n0\n");
  EXPECT_THROW((void)loadSchedule(bad), std::runtime_error);
}

TEST(ScheduleIo, FilesWithoutDigestLineStillLoad) {
  // Pre-digest files (and hand-written ones) carry no integrity line.
  std::stringstream legacy("pimsched v1 1 2\n4 7\n");
  const DataSchedule s = loadSchedule(legacy);
  EXPECT_EQ(s.center(0, 1), 7);
}

TEST(ScheduleIo, ScheduleDigestSeparatesShapeAndContent) {
  const Digest base = scheduleDigest(sample());
  EXPECT_EQ(base, scheduleDigest(sample()));  // deterministic
  DataSchedule changed = sample();
  changed.setCenter(1, 1, 2);
  EXPECT_NE(base, scheduleDigest(changed));
  // Same flat center list, different shape: 3x2 vs 2x3 must not collide.
  DataSchedule reshaped(2, 3);
  const DataSchedule s = sample();
  for (int i = 0; i < 6; ++i) {
    reshaped.setCenter(i / 3, i % 3, s.center(i / 2, i % 2));
  }
  EXPECT_NE(base, scheduleDigest(reshaped));
}

TEST(ScheduleIo, FileRoundTrip) {
  const std::string path =
      ::testing::TempDir() + "/pimsched_schedule_test.txt";
  saveScheduleFile(sample(), path);
  const DataSchedule loaded = loadScheduleFile(path);
  EXPECT_EQ(loaded.center(2, 1), 3);
  EXPECT_THROW((void)loadScheduleFile("/no/such/file"),
               std::runtime_error);
}

}  // namespace
}  // namespace pimsched

#include "core/replication.hpp"

#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "core/scds.hpp"
#include "test_util.hpp"

namespace pimsched {
namespace {

WindowedRefs refsFromTrace(const ReferenceTrace& t, const Grid& g,
                           int windows) {
  return WindowedRefs(t, WindowPartition::evenCount(t.numSteps(), windows),
                      g);
}

TEST(Replication, SingleReplicaEqualsScds) {
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(121);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 4, 4, 12, 20);
  const WindowedRefs refs = refsFromTrace(t, g, 4);

  ReplicationOptions opts;
  opts.maxReplicasPerDatum = 1;
  opts.order = DataOrder::kById;
  const ReplicatedSchedule rs = scheduleReplicated(refs, model, opts);

  SchedulerOptions scdsOpts;
  scdsOpts.order = DataOrder::kById;
  const DataSchedule scds = scheduleScds(refs, model, scdsOpts);

  EXPECT_EQ(evaluateReplicated(rs, refs, model),
            evaluateSchedule(scds, refs, model).aggregate.total());
  for (DataId d = 0; d < refs.numData(); ++d) {
    ASSERT_EQ(rs.replicas(d).size(), 1u);
    EXPECT_EQ(rs.replicas(d)[0], scds.center(d, 0));
  }
}

TEST(Replication, MoreReplicasNeverCostMore) {
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(122);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 4, 4, 12, 30);
  const WindowedRefs refs = refsFromTrace(t, g, 4);
  Cost prev = kInfiniteCost;
  for (int k = 1; k <= 4; ++k) {
    ReplicationOptions opts;
    opts.maxReplicasPerDatum = k;
    const Cost c =
        evaluateReplicated(scheduleReplicated(refs, model, opts), refs,
                           model);
    EXPECT_LE(c, prev);
    prev = c;
  }
}

TEST(Replication, BroadcastDataBenefitMost) {
  // One datum read by every processor: with 4 replicas spread out, the
  // serving cost must drop well below the single-copy optimum.
  const Grid g(4, 4);
  const CostModel model(g);
  ReferenceTrace t(DataSpace::singleSquare(1));
  for (ProcId p = 0; p < g.size(); ++p) t.add(0, p, 0, 10);
  t.finalize();
  const WindowedRefs refs = refsFromTrace(t, g, 1);

  ReplicationOptions one;
  one.maxReplicasPerDatum = 1;
  ReplicationOptions four;
  four.maxReplicasPerDatum = 4;
  const Cost single =
      evaluateReplicated(scheduleReplicated(refs, model, one), refs, model);
  const Cost quad =
      evaluateReplicated(scheduleReplicated(refs, model, four), refs, model);
  EXPECT_LT(quad, single / 2);
}

TEST(Replication, MinGainStopsUselessCopies) {
  // All references on one processor: extra replicas gain nothing, so only
  // the primary copy should be placed.
  const Grid g(4, 4);
  const CostModel model(g);
  ReferenceTrace t(DataSpace::singleSquare(1));
  t.add(0, 5, 0, 100);
  t.finalize();
  const WindowedRefs refs = refsFromTrace(t, g, 1);
  ReplicationOptions opts;
  opts.maxReplicasPerDatum = 4;
  const ReplicatedSchedule rs = scheduleReplicated(refs, model, opts);
  EXPECT_EQ(rs.replicas(0).size(), 1u);
  EXPECT_EQ(rs.replicas(0)[0], 5);
}

TEST(Replication, CapacityBoundsTotalReplicas) {
  const Grid g(2, 2);
  const CostModel model(g);
  testutil::Rng rng(123);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 3, 3, 6, 20);
  const WindowedRefs refs = refsFromTrace(t, g, 2);
  ReplicationOptions opts;
  opts.maxReplicasPerDatum = 4;
  opts.capacity = 3;  // 12 slots for 9 primaries: at most 3 extra copies
  const ReplicatedSchedule rs = scheduleReplicated(refs, model, opts);
  EXPECT_LE(rs.totalReplicas(), 12);
  EXPECT_GE(rs.totalReplicas(), 9);  // every datum has a primary
}

TEST(Replication, EvaluateRejectsShapeMismatch) {
  const Grid g(2, 2);
  const CostModel model(g);
  testutil::Rng rng(124);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 2, 2, 4, 8);
  const WindowedRefs refs = refsFromTrace(t, g, 2);
  const ReplicatedSchedule wrong(refs.numData() + 1);
  EXPECT_THROW((void)evaluateReplicated(wrong, refs, model),
               std::invalid_argument);
}

TEST(Replication, RejectsBadOptions) {
  const Grid g(2, 2);
  const CostModel model(g);
  testutil::Rng rng(125);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 2, 2, 4, 8);
  const WindowedRefs refs = refsFromTrace(t, g, 2);
  ReplicationOptions opts;
  opts.maxReplicasPerDatum = 0;
  EXPECT_THROW((void)scheduleReplicated(refs, model, opts),
               std::invalid_argument);
}

}  // namespace
}  // namespace pimsched

#include "kernels/iteration_map.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pimsched {
namespace {

TEST(IterationMap, Block2DCorners) {
  const Grid g(4, 4);
  const IterationMap map(g, 8, 8, PartitionKind::kBlock2D);
  EXPECT_EQ(map.proc(0, 0), g.id(0, 0));
  EXPECT_EQ(map.proc(7, 7), g.id(3, 3));
  EXPECT_EQ(map.proc(0, 7), g.id(0, 3));
  EXPECT_EQ(map.proc(1, 1), g.id(0, 0));  // within first 2x2 block
  EXPECT_EQ(map.proc(2, 0), g.id(1, 0));
}

TEST(IterationMap, RowBlockIsContiguousInRowMajor) {
  const Grid g(2, 2);
  const IterationMap map(g, 4, 4, PartitionKind::kRowBlock);
  // 16 iterations over 4 procs: chunks of 4 in row-major order.
  EXPECT_EQ(map.proc(0, 0), 0);
  EXPECT_EQ(map.proc(0, 3), 0);
  EXPECT_EQ(map.proc(1, 0), 1);
  EXPECT_EQ(map.proc(3, 3), 3);
}

TEST(IterationMap, ColBlockIsContiguousInColMajor) {
  const Grid g(2, 2);
  const IterationMap map(g, 4, 4, PartitionKind::kColBlock);
  EXPECT_EQ(map.proc(0, 0), 0);
  EXPECT_EQ(map.proc(3, 0), 0);
  EXPECT_EQ(map.proc(0, 1), 1);
  EXPECT_EQ(map.proc(3, 3), 3);
}

TEST(IterationMap, Cyclic2DWrapsBothAxes) {
  const Grid g(2, 3);
  const IterationMap map(g, 6, 6, PartitionKind::kCyclic2D);
  EXPECT_EQ(map.proc(0, 0), g.id(0, 0));
  EXPECT_EQ(map.proc(2, 3), g.id(0, 0));
  EXPECT_EQ(map.proc(1, 4), g.id(1, 1));
  EXPECT_EQ(map.proc(3, 5), g.id(1, 2));
}

class PartitionCoverage : public ::testing::TestWithParam<PartitionKind> {};

TEST_P(PartitionCoverage, EveryIterationMapsToAValidProc) {
  const Grid g(4, 4);
  const IterationMap map(g, 8, 8, GetParam());
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      const ProcId p = map.proc(i, j);
      EXPECT_TRUE(g.contains(p));
    }
  }
}

TEST_P(PartitionCoverage, LoadIsBalanced) {
  // Iteration space divisible by the grid: every processor gets exactly
  // total / procs iterations.
  const Grid g(4, 4);
  const IterationMap map(g, 8, 8, GetParam());
  std::vector<int> count(static_cast<std::size_t>(g.size()), 0);
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      ++count[static_cast<std::size_t>(map.proc(i, j))];
    }
  }
  for (const int c : count) EXPECT_EQ(c, 4);
}

TEST_P(PartitionCoverage, SmallerIterationSpaceThanGridStillValid) {
  const Grid g(4, 4);
  const IterationMap map(g, 2, 2, GetParam());
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      EXPECT_TRUE(g.contains(map.proc(i, j)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, PartitionCoverage,
                         ::testing::Values(PartitionKind::kRowBlock,
                                           PartitionKind::kColBlock,
                                           PartitionKind::kBlock2D,
                                           PartitionKind::kCyclic2D));

TEST(IterationMap, RejectsOutOfRangeIteration) {
  const Grid g(2, 2);
  const IterationMap map(g, 4, 4, PartitionKind::kBlock2D);
  EXPECT_THROW((void)map.proc(4, 0), std::out_of_range);
  EXPECT_THROW((void)map.proc(0, -1), std::out_of_range);
}

TEST(IterationMap, ToStringNames) {
  EXPECT_EQ(toString(PartitionKind::kRowBlock), "row-block");
  EXPECT_EQ(toString(PartitionKind::kBlock2D), "block-2d");
}

}  // namespace
}  // namespace pimsched

#include "kernels/irregular_code.hpp"

#include <gtest/gtest.h>

namespace pimsched {
namespace {

constexpr int kN = 16;

ReferenceTrace buildVariant(const Grid& g,
                            const IrregularCodeOptions& options) {
  TraceBuilder tb;
  const IterationMap map(g, kN, kN, PartitionKind::kBlock2D);
  emitIrregularCodeVariant(tb, map, kN, options);
  return std::move(tb).build();
}

TEST(IrregularCodeVariant, DefaultOptionsMatchLegacyEntryPoint) {
  const Grid g(4, 4);
  TraceBuilder legacy;
  const IterationMap map(g, kN, kN, PartitionKind::kBlock2D);
  emitIrregularCode(legacy, map, kN);
  const ReferenceTrace a = std::move(legacy).build();
  const ReferenceTrace b = buildVariant(g, IrregularCodeOptions{});
  ASSERT_EQ(a.accesses().size(), b.accesses().size());
  for (std::size_t i = 0; i < a.accesses().size(); ++i) {
    ASSERT_EQ(a.accesses()[i], b.accesses()[i]);
  }
}

TEST(IrregularCodeVariant, PathsProduceDistinctTraces) {
  const Grid g(4, 4);
  const HotspotPath paths[] = {
      HotspotPath::kDiagonalSwing, HotspotPath::kRandomWalk,
      HotspotPath::kTwoPhase, HotspotPath::kOrbit};
  std::vector<Cost> signatures;
  for (const HotspotPath p : paths) {
    IrregularCodeOptions opts;
    opts.path = p;
    const ReferenceTrace t = buildVariant(g, opts);
    // Weighted first-moment of the referenced rows is a cheap signature.
    Cost sig = 0;
    for (const Access& a : t.accesses()) {
      sig += a.weight * (t.dataSpace().element(a.data).row + 1) *
             (a.step + 1);
    }
    signatures.push_back(sig);
  }
  for (std::size_t i = 0; i < signatures.size(); ++i) {
    for (std::size_t j = i + 1; j < signatures.size(); ++j) {
      EXPECT_NE(signatures[i], signatures[j]);
    }
  }
}

TEST(IrregularCodeVariant, SpreadDivisorControlsLocality) {
  // Tighter clusters (bigger divisor) give lower dispersion around the
  // per-step hotspot, hence fewer distinct data per step on average.
  const Grid g(4, 4);
  IrregularCodeOptions wide;
  wide.spreadDivisor = 2;
  IrregularCodeOptions tight;
  tight.spreadDivisor = 8;
  const ReferenceTrace a = buildVariant(g, wide);
  const ReferenceTrace b = buildVariant(g, tight);
  // Same volume; fewer merged records means more repeats on the same
  // (step, proc, datum) triple, i.e. tighter clustering.
  EXPECT_EQ(a.totalWeight(), b.totalWeight());
  EXPECT_GT(a.accesses().size(), b.accesses().size());
}

TEST(IrregularCodeVariant, RefsDivisorControlsVolume) {
  const Grid g(4, 4);
  IrregularCodeOptions dense;
  dense.refsDivisor = 2;
  IrregularCodeOptions sparse;
  sparse.refsDivisor = 8;
  EXPECT_EQ(buildVariant(g, dense).totalWeight(),
            4 * buildVariant(g, sparse).totalWeight());
}

TEST(IrregularCodeVariant, TwoPhaseJumpsOnce) {
  const Grid g(4, 4);
  IrregularCodeOptions opts;
  opts.path = HotspotPath::kTwoPhase;
  opts.spreadDivisor = 16;  // essentially a point hotspot
  const ReferenceTrace t = buildVariant(g, opts);
  // Mean referenced row in the first half must be well above (closer to
  // n/4) the second half's (3n/4).
  double first = 0, firstW = 0, second = 0, secondW = 0;
  for (const Access& a : t.accesses()) {
    const double row = t.dataSpace().element(a.data).row;
    if (a.step < kN / 2) {
      first += row * static_cast<double>(a.weight);
      firstW += static_cast<double>(a.weight);
    } else {
      second += row * static_cast<double>(a.weight);
      secondW += static_cast<double>(a.weight);
    }
  }
  EXPECT_LT(first / firstW, kN / 2.0);
  EXPECT_GT(second / secondW, kN / 2.0);
}

TEST(IrregularCodeVariant, RejectsBadDivisors) {
  const Grid g(2, 2);
  TraceBuilder tb;
  const IterationMap map(g, 8, 8, PartitionKind::kBlock2D);
  IrregularCodeOptions opts;
  opts.spreadDivisor = 0;
  EXPECT_THROW(emitIrregularCodeVariant(tb, map, 8, opts),
               std::invalid_argument);
}

}  // namespace
}  // namespace pimsched

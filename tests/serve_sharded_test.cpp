#include "serve/sharded.hpp"

#include <gtest/gtest.h>

#include <future>
#include <set>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "serve/json.hpp"
#include "serve/service.hpp"

namespace pimsched::serve {
namespace {

ReferenceTrace makeTrace(int n, int steps) {
  ReferenceTrace trace(DataSpace::singleSquare(n));
  const int numData = n * n;
  for (int s = 0; s < steps; ++s) {
    for (int d = 0; d < numData; ++d) {
      trace.add(s, (d + s) % 16, d, 1 + (d + s) % 3);
    }
  }
  trace.finalize();
  return trace;
}

JobRequest makeRequest(int n = 4, int steps = 6) {
  JobRequest request;
  request.trace = makeTrace(n, steps);
  request.config.numWindows = 3;
  request.method = Method::kGomcds;
  return request;
}

TEST(ShardRing, RoutingIsDeterministicAndInRange) {
  const ShardRing ring(4);
  const ShardRing again(4);
  for (std::uint64_t i = 0; i < 200; ++i) {
    const Digest d{i * 0x9e3779b97f4a7c15ull, ~i};
    const unsigned shard = ring.shardFor(d);
    EXPECT_LT(shard, 4u);
    EXPECT_EQ(again.shardFor(d), shard);  // same ring, same placement
  }
}

TEST(ShardRing, VirtualNodesSpreadKeysAcrossAllShards) {
  const ShardRing ring(4);
  std::vector<int> perShard(4, 0);
  for (std::uint64_t i = 0; i < 4096; ++i) {
    const Digest d{i * 0x9e3779b97f4a7c15ull, i * 0xbf58476d1ce4e5b9ull};
    ++perShard[ring.shardFor(d)];
  }
  for (int count : perShard) {
    // A uniform split would be 1024 per shard; vnodes keep every shard
    // within a loose factor of that (no empty and no dominant shard).
    EXPECT_GT(count, 1024 / 4) << "starved shard";
    EXPECT_LT(count, 1024 * 3) << "dominant shard";
  }
}

TEST(ShardRing, SingleShardTakesEverything) {
  const ShardRing ring(1);
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(ring.shardFor(Digest{i, ~i}), 0u);
  }
}

TEST(ShardedService, JobIdsRoundTripAcrossShards) {
  ShardedService::Config config;
  config.shards = 3;
  ShardedService service(config);
  // Distinct jobs land wherever the ring says; every returned global id
  // must resolve back to the right job via status/result.
  std::vector<JobId> ids;
  std::set<JobId> unique;
  for (int i = 0; i < 9; ++i) {
    const SubmitOutcome out = service.submit(makeRequest(4, 4 + i));
    ASSERT_TRUE(out.accepted) << out.reason;
    ids.push_back(out.id);
    unique.insert(out.id);
  }
  EXPECT_EQ(unique.size(), ids.size());  // globally unique ids
  for (const JobId id : ids) {
    ASSERT_NE(service.result(id), nullptr) << "id " << id;
    const auto status = service.status(id);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->state, JobState::kDone);
  }
  EXPECT_FALSE(service.status(999983).has_value());  // unknown id
  EXPECT_FALSE(service.cancel(999983));
}

TEST(ShardedService, IdenticalJobsShareOneShardAndItsCache) {
  ShardedService::Config config;
  config.shards = 4;
  ShardedService service(config);
  const JobRequest request = makeRequest();
  EXPECT_EQ(service.shardFor(request), service.shardFor(request));

  const SubmitOutcome first = service.submit(request);
  ASSERT_TRUE(first.accepted);
  ASSERT_NE(service.result(first.id), nullptr);
  const SubmitOutcome second = service.submit(request);
  ASSERT_TRUE(second.accepted);
  EXPECT_TRUE(second.cached);  // same shard, so the cache is effective
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cacheHits, 1);
  EXPECT_EQ(stats.cacheMisses, 1);
}

TEST(ShardedService, StatsAggregateAcrossShardsAndReportPoolSize) {
  ShardedService::Config config;
  config.shards = 4;
  ShardedService service(config);
  std::vector<JobId> ids;
  for (int i = 0; i < 8; ++i) {
    const SubmitOutcome out = service.submit(makeRequest(4, 4 + i));
    ASSERT_TRUE(out.accepted);
    ids.push_back(out.id);
  }
  for (const JobId id : ids) ASSERT_NE(service.result(id), nullptr);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.shards, 4u);
  EXPECT_EQ(stats.accepted, 8);
  EXPECT_EQ(stats.completed, 8);
  EXPECT_EQ(stats.failed, 0);
}

TEST(ShardedService, CoalescingWorksThroughTheShardRouter) {
  // Identical concurrent submits reach the same shard by construction, so
  // sharding must not break in-flight coalescing.
  ShardedService::Config config;
  config.shards = 4;
  ShardedService service(config);

  constexpr int kThreads = 6;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<Cost> totals(kThreads, -1);
  std::vector<std::thread> storm;
  storm.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    storm.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      const SubmitOutcome out = service.submit(makeRequest());
      ASSERT_TRUE(out.accepted);
      const auto result = service.result(out.id);
      ASSERT_NE(result, nullptr);
      totals[static_cast<std::size_t>(t)] = result->eval.aggregate.total();
    });
  }
  while (ready.load() < kThreads) std::this_thread::yield();
  go.store(true, std::memory_order_release);
  for (std::thread& s : storm) s.join();

  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(totals[t], totals[0]);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, kThreads);
  // One leader ran; everyone else coalesced or hit the cache.
  EXPECT_EQ(stats.cacheMisses - stats.coalesced, 1);
  EXPECT_EQ(1 + stats.coalesced + stats.cacheHits, kThreads);
}

TEST(ShardedService, StatsExtraReportsPerShardQueueDepths) {
  // Park the single worker of the single shard so queued depth is exact.
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  ShardedService::Config config;
  config.shards = 1;
  config.shard.concurrency = 1;
  config.shard.onJobAttempt = [released](int) { released.wait(); };
  ShardedService service(config);

#ifndef PIMSCHED_NO_OBS
  const std::int64_t base =
      obs::Registry::instance().counterValue("serve.shard.0.queued");
#endif
  ASSERT_TRUE(service.submit(makeRequest(4, 4)).accepted);  // runs, parked
  ASSERT_TRUE(service.submit(makeRequest(4, 5)).accepted);
  ASSERT_TRUE(service.submit(makeRequest(4, 6)).accepted);

  Json reply = Json(Json::Object{});
  service.statsExtra(reply);
  const Json* detail = reply.find("shard_detail");
  ASSERT_NE(detail, nullptr);
  ASSERT_EQ(detail->asArray().size(), 1u);
  const Json& row = detail->asArray()[0];
  EXPECT_EQ(row.find("shard")->asInt64(), 0);
  EXPECT_EQ(row.find("queued")->asInt64(), 2);
  EXPECT_EQ(row.find("running")->asInt64(), 1);
  EXPECT_EQ(row.find("accepted")->asInt64(), 3);
#ifndef PIMSCHED_NO_OBS
  // The gauge tracks the depth observed by the refresh, as a delta over
  // whatever a previous service instance left behind.
  EXPECT_EQ(obs::Registry::instance().counterValue("serve.shard.0.queued"),
            base + 2);
#endif

  release.set_value();
  service.drain();
  (void)service.stats();  // refresh after drain telescopes the gauge back down
#ifndef PIMSCHED_NO_OBS
  EXPECT_EQ(obs::Registry::instance().counterValue("serve.shard.0.queued"),
            base);
#endif
}

TEST(ShardedService, DrainFinishesEveryShardThenRejects) {
  ShardedService::Config config;
  config.shards = 3;
  ShardedService service(config);
  std::vector<JobId> ids;
  for (int i = 0; i < 6; ++i) {
    const SubmitOutcome out = service.submit(makeRequest(4, 4 + i));
    ASSERT_TRUE(out.accepted);
    ids.push_back(out.id);
  }
  service.drain();
  for (const JobId id : ids) {
    EXPECT_EQ(service.status(id)->state, JobState::kDone) << "id " << id;
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queueDepth, 0u);
  EXPECT_EQ(stats.running, 0u);
  const SubmitOutcome late = service.submit(makeRequest());
  EXPECT_FALSE(late.accepted);
  service.drain();  // idempotent
}

}  // namespace
}  // namespace pimsched::serve

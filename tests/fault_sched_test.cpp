// End-to-end fault-aware scheduling: the Experiment fault constructor
// threaded through SCDS / LOMCDS / GOMCDS, the bit-identity guarantee for
// empty fault maps, the typed failure taxonomy, and the replay invariant
// over faulted topologies.

#include <gtest/gtest.h>

#include "core/gomcds.hpp"
#include "core/pipeline.hpp"
#include "core/verify.hpp"
#include "fault/fault_map.hpp"
#include "sim/replay.hpp"
#include "test_util.hpp"

namespace pimsched {
namespace {

using testutil::Rng;

ReferenceTrace makeTrace(std::uint64_t seed, const Grid& grid) {
  Rng rng(seed);
  return testutil::randomTrace(rng, grid, 6, 6, /*numSteps=*/12,
                               /*refsPerStep=*/10);
}

const std::vector<Method>& faultAwareMethods() {
  static const std::vector<Method> methods = {Method::kScds, Method::kLomcds,
                                              Method::kGomcds};
  return methods;
}

TEST(FaultSched, EmptyFaultMapIsBitIdentical) {
  const Grid grid(4, 4);
  const ReferenceTrace trace = makeTrace(11, grid);
  PipelineConfig cfg;
  cfg.numWindows = 4;
  const Experiment plain(trace, grid, cfg);
  const FaultMap empty(grid);
  const Experiment faulted(trace, grid, empty, cfg);

  EXPECT_EQ(plain.capacity(), faulted.capacity());
  for (const Method m : faultAwareMethods()) {
    const DataSchedule a = plain.schedule(m);
    const DataSchedule b = faulted.schedule(m);
    for (DataId d = 0; d < a.numData(); ++d) {
      for (WindowId w = 0; w < a.numWindows(); ++w) {
        ASSERT_EQ(a.center(d, w), b.center(d, w))
            << toString(m) << " datum " << d << " window " << w;
      }
    }
    EXPECT_EQ(plain.evaluate(m).aggregate.total(),
              faulted.evaluate(m).aggregate.total());
  }
}

TEST(FaultSched, DeadProcessorsAreNeverCenters) {
  const Grid grid(4, 4);
  const ReferenceTrace trace = makeTrace(23, grid);
  PipelineConfig cfg;
  cfg.numWindows = 4;
  FaultMap faults(grid);
  faults.killProc(5);
  faults.killProc(10);
  faults.killLink(0, 1);
  const Experiment exp(trace, grid, faults, cfg);

  for (const Method m : faultAwareMethods()) {
    const DataSchedule schedule = exp.schedule(m);
    for (DataId d = 0; d < schedule.numData(); ++d) {
      for (WindowId w = 0; w < schedule.numWindows(); ++w) {
        EXPECT_NE(schedule.center(d, w), 5) << toString(m);
        EXPECT_NE(schedule.center(d, w), 10) << toString(m);
      }
    }
    const VerifyReport report =
        verifyScheduleFaults(schedule, exp.refs(), exp.costModel());
    EXPECT_TRUE(report.ok())
        << toString(m) << ": " << report.issues.size() << " issues, first: "
        << (report.issues.empty() ? "" : report.issues.front().detail);
  }
}

TEST(FaultSched, MaskedRefsDropDeadProcessors) {
  const Grid grid(4, 4);
  const ReferenceTrace trace = makeTrace(31, grid);
  PipelineConfig cfg;
  cfg.numWindows = 3;
  FaultMap faults(grid);
  faults.killProc(7);
  const Experiment exp(trace, grid, faults, cfg);
  for (DataId d = 0; d < exp.refs().numData(); ++d) {
    for (WindowId w = 0; w < exp.refs().numWindows(); ++w) {
      for (const ProcWeight& pw : exp.refs().refs(d, w)) {
        EXPECT_NE(pw.proc, 7);
      }
    }
  }
}

TEST(FaultSched, PaperCapacityCountsOnlyAliveProcessors) {
  const Grid grid(4, 4);
  const ReferenceTrace trace = makeTrace(47, grid);  // 36 data
  PipelineConfig cfg;
  cfg.numWindows = 2;
  FaultMap faults(grid);
  faults.killRegion(0, 0, 1, 2);  // 6 dead -> 10 alive
  const Experiment exp(trace, grid, faults, cfg);
  const std::int64_t numData = trace.dataSpace().numData();
  const std::int64_t alive = 10;
  EXPECT_EQ(exp.capacity(), 2 * ((numData + alive - 1) / alive));
}

TEST(FaultSched, AllProcessorsDeadThrowsUnreachable) {
  const Grid grid(2, 2);
  const ReferenceTrace trace = makeTrace(5, grid);
  FaultMap faults(grid);
  for (ProcId p = 0; p < grid.size(); ++p) faults.killProc(p);
  EXPECT_THROW(Experiment(trace, grid, faults, PipelineConfig{}),
               UnreachableError);
}

TEST(FaultSched, CrossPartitionReferencesThrowUnreachable) {
  const Grid grid(4, 4);
  // One datum referenced from row 0 and row 3; killing row 1 cuts them
  // apart, so no center can serve both sides.
  ReferenceTrace trace(DataSpace::singleSquare(2, "A"));
  trace.add(0, grid.id(0, 0), 0, 3);
  trace.add(0, grid.id(3, 3), 0, 3);
  trace.finalize();
  FaultMap faults(grid);
  faults.killRow(1);
  PipelineConfig cfg;
  cfg.numWindows = 1;
  const Experiment exp(trace, grid, faults, cfg);
  for (const Method m : faultAwareMethods()) {
    EXPECT_THROW((void)exp.schedule(m), UnreachableError) << toString(m);
  }
}

TEST(FaultSched, FaultObliviousBaselineFailsFaultVerify) {
  const Grid grid(4, 4);
  const ReferenceTrace trace = makeTrace(61, grid);
  PipelineConfig cfg;
  cfg.numWindows = 2;
  cfg.capacity = PipelineConfig::kUnlimited;
  FaultMap faults(grid);
  faults.killProc(0);
  const Experiment exp(trace, grid, faults, cfg);
  // Row-wise places data by index, oblivious to the dead processor: the
  // fault verifier must catch the dead center.
  const DataSchedule schedule = exp.schedule(Method::kRowWise);
  const VerifyReport report =
      verifyScheduleFaults(schedule, exp.refs(), exp.costModel());
  EXPECT_FALSE(report.ok());
  bool sawDeadCenter = false;
  for (const ScheduleIssue& issue : report.issues) {
    if (issue.kind == ScheduleIssue::Kind::kDeadCenter) sawDeadCenter = true;
  }
  EXPECT_TRUE(sawDeadCenter);
}

TEST(FaultSched, ReplayHopVolumeMatchesAnalyticCostUnderFaults) {
  const Grid grid(4, 4);
  const ReferenceTrace trace = makeTrace(83, grid);
  PipelineConfig cfg;
  cfg.numWindows = 4;
  FaultMap faults(grid);
  faults.killProc(6);
  faults.killLink(1, 2);
  const Experiment exp(trace, grid, faults, cfg);
  for (const Method m : faultAwareMethods()) {
    const DataSchedule schedule = exp.schedule(m);
    const EvalResult eval =
        evaluateSchedule(schedule, exp.refs(), exp.costModel());
    const ReplayReport replay =
        replaySchedule(schedule, exp.refs(), exp.costModel());
    // Invariant 10 extended to faulted meshes: simulated hop volume over
    // the detoured routes equals the analytic fault-aware cost.
    EXPECT_EQ(replay.total.totalHopVolume, eval.aggregate.total())
        << toString(m);
  }
}

TEST(FaultSched, GomcdsDedupIdenticalUnderFaults) {
  // Dedup must stay bit-identical on faulted meshes too — both in the
  // static-mask regime (dead processors only: infinite serving cost keeps
  // the forbidden set fixed) and the dynamic one (an alive processor with
  // a reduced capacity limit forces per-datum masked solves).
  const Grid grid(4, 4);
  const ReferenceTrace trace = makeTrace(131, grid);
  PipelineConfig cfg;
  cfg.numWindows = 4;
  FaultMap deadOnly(grid);
  deadOnly.killProc(3);
  deadOnly.killProc(12);
  FaultMap limited(grid);
  limited.killProc(3);
  limited.limitCapacity(7, 2);
  for (const FaultMap* faults : {&deadOnly, &limited}) {
    const Experiment exp(trace, grid, *faults, cfg);
    for (const std::int64_t capacity : {std::int64_t{-1}, exp.capacity()}) {
      SchedulerOptions on{capacity, cfg.order};
      SchedulerOptions off = on;
      off.dedup = false;
      const DataSchedule a = scheduleGomcds(exp.refs(), exp.costModel(), on);
      const DataSchedule b = scheduleGomcds(exp.refs(), exp.costModel(), off);
      const DataSchedule c =
          scheduleGomcdsParallel(exp.refs(), exp.costModel(), on, 4);
      for (DataId d = 0; d < a.numData(); ++d) {
        for (WindowId w = 0; w < a.numWindows(); ++w) {
          ASSERT_EQ(a.center(d, w), b.center(d, w)) << "dedup off diverged";
          ASSERT_EQ(a.center(d, w), c.center(d, w)) << "parallel diverged";
        }
      }
    }
  }
}

TEST(FaultSched, GomcdsEnginesAgreeUnderFaults) {
  const Grid grid(4, 4);
  const ReferenceTrace trace = makeTrace(97, grid);
  PipelineConfig cfg;
  cfg.numWindows = 4;
  FaultMap faults(grid);
  faults.injectUniformProcs(2, 9);
  const Experiment seq(trace, grid, faults, cfg);
  PipelineConfig par = cfg;
  par.threads = 4;
  const Experiment parallel(trace, grid, faults, par);
  const DataSchedule a = seq.schedule(Method::kGomcds);
  const DataSchedule b = parallel.schedule(Method::kGomcds);
  for (DataId d = 0; d < a.numData(); ++d) {
    for (WindowId w = 0; w < a.numWindows(); ++w) {
      ASSERT_EQ(a.center(d, w), b.center(d, w));
    }
  }
}

}  // namespace
}  // namespace pimsched

#include "fleet/health.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fleet/fleet_service.hpp"
#include "fleet/rebalance.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "trace/trace.hpp"

namespace pimsched::fleet {
namespace {

using pimsched::Method;
using serve::JobRequest;
using serve::JobState;
using serve::SubmitOutcome;

constexpr std::int64_t kMs = 1'000'000;
constexpr std::int64_t kSec = 1'000'000'000;

ReferenceTrace makeTrace(int n, int steps, int weightSeed = 1) {
  ReferenceTrace trace(DataSpace::singleSquare(n));
  const int numData = n * n;
  for (int s = 0; s < steps; ++s) {
    for (int d = 0; d < numData; ++d) {
      trace.add(s, (d + s) % (n * n), d, 1 + (d + s * weightSeed) % 3);
    }
  }
  trace.finalize();
  return trace;
}

JobRequest makeRequest(int n = 4, int steps = 6, int weightSeed = 1) {
  JobRequest request;
  request.trace = makeTrace(n, steps, weightSeed);
  request.gridRows = n;
  request.gridCols = n;
  request.config.numWindows = 3;
  request.method = Method::kGomcds;
  return request;
}

// Canned facts for a 16-processor array.
ArrayFacts cleanFacts() { return ArrayFacts{16, 16, false, false}; }
ArrayFacts degradedFacts() { return ArrayFacts{15, 16, false, true}; }
ArrayFacts partitionedFacts() { return ArrayFacts{12, 16, true, true}; }

/// Holds every job run at its start until release() — deterministic queue
/// shaping without timing assumptions (same trick as fleet_service_test).
struct RunGate {
  std::promise<void> promise;
  std::shared_future<void> future{promise.get_future().share()};

  auto hook() {
    auto shared = future;
    return [shared](int) { shared.wait(); };
  }
  void release() { promise.set_value(); }
};

// ---------------------------------------------------------------------------
// HealthMonitor: state transitions under an explicit fake clock.
// ---------------------------------------------------------------------------

TEST(HealthMonitor, BootObservationClassifiesWithoutFlapPenalty) {
  HealthMonitor mon(2, HealthPolicy{});
  mon.observe(0, cleanFacts(), 0);
  mon.observe(1, degradedFacts(), 0);
  EXPECT_EQ(mon.state(0), HealthState::kHealthy);
  EXPECT_EQ(mon.state(1), HealthState::kDegraded);
  // A boot observation is not a drift event: no flap accounting, and both
  // healthy and degraded arrays are admissible immediately.
  EXPECT_EQ(mon.transitions(0), 0);
  EXPECT_TRUE(mon.admissible(0, 0));
  EXPECT_TRUE(mon.admissible(1, 0));
}

TEST(HealthMonitor, DriftDegradesAndHealRestores) {
  HealthMonitor mon(1, HealthPolicy{});
  mon.observe(0, cleanFacts(), 0);
  EXPECT_EQ(mon.onDrift(0, degradedFacts(), 1 * kMs), HealthState::kDegraded);
  EXPECT_TRUE(mon.admissible(0, 1 * kMs));  // degraded still serves
  EXPECT_EQ(mon.onDrift(0, cleanFacts(), 2 * kMs), HealthState::kHealthy);
  EXPECT_EQ(mon.transitions(0), 2);
}

TEST(HealthMonitor, SevereFactsQuarantineImmediately) {
  HealthMonitor mon(3, HealthPolicy{});
  mon.observe(0, cleanFacts(), 0);
  mon.observe(1, cleanFacts(), 0);
  mon.observe(2, cleanFacts(), 0);
  // Partitioned alive sub-mesh.
  EXPECT_EQ(mon.onDrift(0, partitionedFacts(), 0), HealthState::kQuarantined);
  // Alive fraction below the 0.5 threshold.
  EXPECT_EQ(mon.onDrift(1, ArrayFacts{7, 16, false, true}, 0),
            HealthState::kQuarantined);
  // Nothing alive at all.
  EXPECT_EQ(mon.onDrift(2, ArrayFacts{0, 16, false, true}, 0),
            HealthState::kQuarantined);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_FALSE(mon.admissible(i, 0)) << "array " << i;
  }
}

TEST(HealthMonitor, PartitionQuarantineIsPolicyControlled) {
  HealthPolicy policy;
  policy.quarantinePartitioned = false;
  HealthMonitor mon(1, policy);
  mon.observe(0, cleanFacts(), 0);
  // With the knob off a partitioned-but-mostly-alive array only degrades.
  EXPECT_EQ(mon.onDrift(0, partitionedFacts(), 0), HealthState::kDegraded);
}

TEST(HealthMonitor, FlappingDriftQuarantinesEvenWithMildFacts) {
  HealthMonitor mon(1, HealthPolicy{});  // flapLimit 4 in 10s
  mon.observe(0, cleanFacts(), 0);
  for (int i = 1; i <= 4; ++i) {
    EXPECT_EQ(mon.onDrift(0, degradedFacts(), i * kMs),
              HealthState::kDegraded)
        << "drift " << i;
  }
  // The fifth drift inside the window crosses the flap limit.
  EXPECT_EQ(mon.onDrift(0, degradedFacts(), 5 * kMs),
            HealthState::kQuarantined);
  EXPECT_FALSE(mon.admissible(0, 5 * kMs));
}

TEST(HealthMonitor, SlowDriftOutsideTheWindowNeverFlaps) {
  HealthMonitor mon(1, HealthPolicy{});  // flapWindow 10s
  mon.observe(0, cleanFacts(), 0);
  // Drifts 11s apart: old events slide out of the window before the
  // count can cross the limit.
  for (int i = 1; i <= 10; ++i) {
    EXPECT_EQ(mon.onDrift(0, degradedFacts(), i * 11 * kSec),
              HealthState::kDegraded)
        << "drift " << i;
  }
}

TEST(HealthMonitor, FailureStreakQuarantinesAndSuccessResetsIt) {
  HealthMonitor mon(1, HealthPolicy{});  // failureThreshold 3
  mon.observe(0, cleanFacts(), 0);
  EXPECT_EQ(mon.onJobFailure(0, 1 * kMs), HealthState::kHealthy);
  EXPECT_EQ(mon.onJobFailure(0, 2 * kMs), HealthState::kHealthy);
  mon.onJobSuccess(0);  // streak broken
  EXPECT_EQ(mon.onJobFailure(0, 3 * kMs), HealthState::kHealthy);
  EXPECT_EQ(mon.onJobFailure(0, 4 * kMs), HealthState::kHealthy);
  EXPECT_EQ(mon.onJobFailure(0, 5 * kMs), HealthState::kQuarantined);
}

TEST(HealthMonitor, ReadmissionWaitsOutTheCooldown) {
  const HealthPolicy policy;  // cooldown 2s
  HealthMonitor mon(1, policy);
  mon.observe(0, cleanFacts(), 0);
  ASSERT_EQ(mon.onDrift(0, partitionedFacts(), 1 * kMs),
            HealthState::kQuarantined);

  // The facts improve, but re-admission is hysteretic: the state stays
  // quarantined and the cooldown restarts from this drift.
  EXPECT_EQ(mon.onDrift(0, degradedFacts(), 10 * kMs),
            HealthState::kQuarantined);
  EXPECT_FALSE(mon.admissible(0, 10 * kMs));
  EXPECT_FALSE(mon.admissible(0, 10 * kMs + policy.cooldownNs - 1));
  // Const reads never promote, no matter how much time has passed.
  EXPECT_EQ(mon.state(0), HealthState::kQuarantined);

  // Cooldown served quietly: admissible() re-admits at the severity the
  // facts deserve.
  EXPECT_TRUE(mon.admissible(0, 10 * kMs + policy.cooldownNs));
  EXPECT_EQ(mon.state(0), HealthState::kDegraded);
}

TEST(HealthMonitor, NeverReadmitsWhileFactsStillDeserveQuarantine) {
  HealthMonitor mon(1, HealthPolicy{});
  mon.observe(0, cleanFacts(), 0);
  ASSERT_EQ(mon.onDrift(0, partitionedFacts(), 0),
            HealthState::kQuarantined);
  // No amount of elapsed time re-admits an array that is still broken.
  EXPECT_FALSE(mon.admissible(0, 1000 * kSec));
  EXPECT_EQ(mon.state(0), HealthState::kQuarantined);
}

TEST(HealthMonitor, DriftWhileQuarantinedRestartsTheCooldown) {
  const HealthPolicy policy;  // cooldown 2s
  HealthMonitor mon(1, policy);
  mon.observe(0, cleanFacts(), 0);
  ASSERT_EQ(mon.onDrift(0, partitionedFacts(), 0),
            HealthState::kQuarantined);
  // Two improving drifts: each one is activity that restarts the clock.
  mon.onDrift(0, degradedFacts(), 1 * kSec);
  mon.onDrift(0, degradedFacts(), 2 * kSec);
  EXPECT_FALSE(mon.admissible(0, 2 * kSec + policy.cooldownNs - 1));
  EXPECT_TRUE(mon.admissible(0, 2 * kSec + policy.cooldownNs));
}

// ---------------------------------------------------------------------------
// Rebalancer: keep / repair / resolve preference order, and the resolve
// bit-identity guarantee.
// ---------------------------------------------------------------------------

TEST(Rebalancer, KeepsAScheduleTheDriftDidNotBreak) {
  const JobRequest request = makeRequest();
  // Solved healthy; the drift then capped proc 5 at 16 slots — far above
  // anything the schedule actually stores there, and no processor or
  // link died. The schedule still verifies, so only the costs are
  // recomputed.
  auto stale = serve::executeJobRequest(request, {});
  stale->digest = serve::jobDigest(request);

  const ReconcileOutcome out =
      Rebalancer::reconcile(request, *stale, {"cap:5=16"});
  EXPECT_EQ(out.action, ReconcileOutcome::Action::kKept);
  ASSERT_NE(out.result, nullptr);
  EXPECT_EQ(out.result->scheduleText, stale->scheduleText);
  EXPECT_FALSE(out.result->repaired);
  EXPECT_EQ(out.cellsRepaired, 0);
  EXPECT_EQ(out.result->digest.hex(), stale->digest.hex());
  // No dead processors or links: the kept schedule's costs are exactly
  // what they were.
  EXPECT_EQ(out.result->eval.aggregate.total(),
            stale->eval.aggregate.total());
}

TEST(Rebalancer, RepairsBrokenPlacementsInsteadOfResolving) {
  const JobRequest request = makeRequest();
  // Solved on a healthy mesh; the interior 2x2 block then died. Some
  // placements sit on the dead block, so keep fails but repair
  // re-centers exactly those cells.
  auto stale = serve::executeJobRequest(request, {});
  stale->digest = serve::jobDigest(request);

  const std::vector<std::string> drift = {"proc:5", "proc:6", "proc:9",
                                          "proc:10"};
  const ReconcileOutcome out = Rebalancer::reconcile(request, *stale, drift);
  EXPECT_EQ(out.action, ReconcileOutcome::Action::kRepaired);
  ASSERT_NE(out.result, nullptr);
  EXPECT_TRUE(out.result->repaired);
  EXPECT_GT(out.cellsRepaired, 0);
  EXPECT_NE(out.result->scheduleText, stale->scheduleText);
  EXPECT_EQ(out.result->digest.hex(), stale->digest.hex());
}

TEST(Rebalancer, ResolvesUnusableResultsBitIdenticalToAFreshSubmit) {
  const JobRequest request = makeRequest();
  serve::JobResult garbage;
  garbage.scheduleText = "not a schedule";
  garbage.digest = serve::jobDigest(request);

  const std::vector<std::string> drift = {"proc:5"};
  const ReconcileOutcome out =
      Rebalancer::reconcile(request, garbage, drift);
  EXPECT_EQ(out.action, ReconcileOutcome::Action::kResolved);
  ASSERT_NE(out.result, nullptr);

  // The whole point of resolve: the answer is exactly what a fresh
  // submit against the new fault state would produce, so it is safe to
  // cache under the digest|signature key.
  const auto fresh = serve::executeJobRequest(request, drift);
  EXPECT_EQ(out.result->scheduleText, fresh->scheduleText);
  EXPECT_EQ(out.result->eval.aggregate.serve, fresh->eval.aggregate.serve);
  EXPECT_EQ(out.result->eval.aggregate.move, fresh->eval.aggregate.move);
  EXPECT_FALSE(out.result->repaired);
  EXPECT_EQ(out.result->digest.hex(), garbage.digest.hex());
}

TEST(Rebalancer, PropagatesWhenEvenTheResolveIsInfeasible) {
  const JobRequest request = makeRequest();
  serve::JobResult garbage;
  garbage.scheduleText = "not a schedule";
  // row:1 severs row 0 from rows 2-3 of the 4x4 mesh while the trace
  // references every processor — no alive center reaches them all.
  EXPECT_THROW((void)Rebalancer::reconcile(request, garbage, {"row:1"}),
               std::exception);
}

// ---------------------------------------------------------------------------
// FleetService drift reactions: queued-plan migration, mid-run repair
// accounting, and the rebalance-vs-requeue equivalence guarantee.
// ---------------------------------------------------------------------------

TEST(FleetDrift, QueuedPlansMigrateOffAQuarantinedArray) {
  FleetService::Config config;
  config.arrays = parseFleetSpec("a=4x4;b=4x4");
  config.policyFromEnv = false;
  config.policy = FleetPolicy::kLeastLoaded;  // deterministic spreading
  config.concurrencyPerArray = 1;
  RunGate gate;
  config.onJobAttempt = gate.hook();
  FleetService service(config);

  // Fill both run slots with blockers, then queue distinct jobs whose
  // plans spread over the two arrays.
  std::vector<serve::JobId> ids;
  for (int seed = 1; seed <= 8; ++seed) {
    const SubmitOutcome out = service.submit(makeRequest(4, 6, seed));
    ASSERT_TRUE(out.accepted) << out.reason;
    ids.push_back(out.id);
  }
  std::size_t plannedOnB = 0;
  for (const auto& row : service.fleetStats().arrays) {
    if (row.name == "b") plannedOnB = row.planned;
  }
  ASSERT_GT(plannedOnB, 0u);

  // Partitioning b quarantines it; every queued plan migrates to a.
  const serve::DriftOutcome drift = service.applyDrift("b", {"row:1"}, false);
  ASSERT_TRUE(drift.ok) << drift.error;
  EXPECT_EQ(drift.health, "quarantined");
  EXPECT_EQ(drift.requeued, static_cast<std::int64_t>(plannedOnB));
  for (const auto& row : service.fleetStats().arrays) {
    if (row.name == "b") {
      EXPECT_EQ(row.planned, 0u);
      EXPECT_EQ(row.health, "quarantined");
      EXPECT_EQ(row.driftEpoch, 1);
    }
  }
  EXPECT_EQ(service.fleetStats().rebalance.requeued, drift.requeued);

  gate.release();

  // Rebalance-vs-requeue equivalence: every job — migrated plans and the
  // drift-broken blocker that was running on b alike — completes on the
  // healthy array with a result bit-identical to a fresh solve there.
  for (int seed = 1; seed <= 8; ++seed) {
    const auto result = service.result(ids[static_cast<std::size_t>(seed - 1)]);
    ASSERT_NE(result, nullptr) << "job with seed " << seed;
    const auto fresh = serve::executeJobRequest(makeRequest(4, 6, seed));
    EXPECT_EQ(result->scheduleText, fresh->scheduleText);
    EXPECT_EQ(result->eval.aggregate.serve, fresh->eval.aggregate.serve);
    EXPECT_EQ(result->eval.aggregate.move, fresh->eval.aggregate.move);
  }
  EXPECT_EQ(service.fleetStats().rebalance.staleServed, 0);
}

TEST(FleetDrift, MidRunDriftIsRepairedInPreferenceToAResolve) {
  FleetService::Config config;
  config.arrays = parseFleetSpec("only=4x4");
  config.policyFromEnv = false;
  RunGate gate;
  config.onJobAttempt = gate.hook();
  FleetService service(config);

  const SubmitOutcome out = service.submit(makeRequest());
  ASSERT_TRUE(out.accepted) << out.reason;
  // Wait for the run to start (it parks on the gate), then drift the
  // array under it: kill the interior block — degraded, not partitioned.
  while (true) {
    const auto status = service.status(out.id);
    ASSERT_TRUE(status.has_value());
    if (status->state == JobState::kRunning) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const serve::DriftOutcome drift = service.applyDrift(
      "only", {"proc:5", "proc:6", "proc:9", "proc:10"}, false);
  ASSERT_TRUE(drift.ok) << drift.error;
  EXPECT_EQ(drift.health, "degraded");
  EXPECT_EQ(drift.requeued, 0);

  gate.release();
  const auto result = service.result(out.id);
  ASSERT_NE(result, nullptr);
  // The healthy-mesh schedule placed data on the dead block, so the
  // reconcile repaired it in place rather than re-solving from scratch.
  EXPECT_TRUE(result->repaired);
  const FleetService::FleetStats stats = service.fleetStats();
  EXPECT_EQ(stats.rebalance.repaired, 1);
  EXPECT_EQ(stats.rebalance.resolved, 0);
  EXPECT_EQ(stats.rebalance.kept, 0);
  EXPECT_EQ(stats.rebalance.staleServed, 0);
  const auto status = service.status(out.id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kDone);
}

TEST(FleetDrift, NoOpDriftBumpsNothing) {
  FleetService::Config config;
  config.arrays = parseFleetSpec("only=4x4");
  config.policyFromEnv = false;
  FleetService service(config);

  // Healing a healthy array changes nothing.
  serve::DriftOutcome out = service.applyDrift("only", {}, true);
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_EQ(out.requeued, 0);
  EXPECT_EQ(out.cacheInvalidated, 0);
  EXPECT_EQ(service.fleetStats().arrays[0].driftEpoch, 0);

  // A real inject bumps the epoch once...
  out = service.applyDrift("only", {"proc:5"}, false);
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_EQ(service.fleetStats().arrays[0].driftEpoch, 1);
  EXPECT_EQ(out.health, "degraded");
  // ...and an all-duplicate inject is a no-op probe.
  out = service.applyDrift("only", {"proc:5"}, false);
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_EQ(service.fleetStats().arrays[0].driftEpoch, 1);

  // Structured errors for unknown arrays and unparsable specs.
  out = service.applyDrift("ghost", {"proc:0"}, false);
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.error.find("ghost"), std::string::npos);
  out = service.applyDrift("only", {"banana:1"}, false);
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.error.find("banana"), std::string::npos);
  EXPECT_NE(out.error.find("offset"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The fault-inject / heal protocol verbs against a real fleet.
// ---------------------------------------------------------------------------

TEST(FleetDriftProtocol, InjectAndHealRoundTripOverTheWire) {
  FleetService::Config config;
  config.arrays = parseFleetSpec("a=4x4;b=4x4");
  config.policyFromEnv = false;
  FleetService service(config);
  serve::ProtocolHandler handler(service);

  const auto call = [&](const std::string& line) {
    const serve::Json reply = serve::Json::parse(handler.handleLine(line));
    EXPECT_TRUE(reply.isObject());
    return reply;
  };

  serve::Json inject;
  inject.set("verb", "fault-inject")
      .set("array", "b")
      .set("faults", serve::Json(serve::Json::Array{serve::Json("proc:5")}));
  serve::Json reply = call(inject.dump());
  ASSERT_TRUE(reply.find("ok")->asBool()) << reply.dump();
  EXPECT_EQ(reply.find("array")->asString(), "b");
  EXPECT_EQ(reply.find("health")->asString(), "degraded");
  EXPECT_EQ(reply.find("dead_procs")->asInt64(), 1);
  EXPECT_FALSE(reply.find("fault_signature")->asString().empty());

  // The stats verb surfaces the drift in the fleet breakdown.
  serve::Json statsRequest;
  statsRequest.set("verb", "stats");
  reply = call(statsRequest.dump());
  const serve::Json* fleetObj = reply.find("fleet");
  ASSERT_NE(fleetObj, nullptr);
  const serve::Json* rebalance = fleetObj->find("rebalance");
  ASSERT_NE(rebalance, nullptr);
  EXPECT_EQ(rebalance->find("drift_events")->asInt64(), 1);
  EXPECT_EQ(rebalance->find("stale_served")->asInt64(), 0);

  // A bad spec is a structured invalid-request error naming the token.
  serve::Json bad;
  bad.set("verb", "fault-inject")
      .set("array", "b")
      .set("faults",
           serve::Json(serve::Json::Array{serve::Json("region:0,0,x,3")}));
  reply = call(bad.dump());
  EXPECT_FALSE(reply.find("ok")->asBool());
  EXPECT_EQ(reply.find("error_kind")->asString(), "invalid");
  EXPECT_NE(reply.find("error")->asString().find("\"x\""),
            std::string::npos);
  EXPECT_NE(reply.find("error")->asString().find("offset"),
            std::string::npos);

  serve::Json healRequest;
  healRequest.set("verb", "heal").set("array", "b");
  reply = call(healRequest.dump());
  ASSERT_TRUE(reply.find("ok")->asBool()) << reply.dump();
  EXPECT_EQ(reply.find("health")->asString(), "healthy");
  EXPECT_EQ(reply.find("dead_procs")->asInt64(), 0);
  EXPECT_TRUE(reply.find("fault_signature")->asString().empty());
}

}  // namespace
}  // namespace pimsched::fleet

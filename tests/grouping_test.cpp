#include "core/grouping.hpp"

#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "core/gomcds.hpp"
#include "core/lomcds.hpp"
#include "test_util.hpp"

namespace pimsched {
namespace {

WindowedRefs refsFromTrace(const ReferenceTrace& t, const Grid& g,
                           int windows) {
  return WindowedRefs(t, WindowPartition::evenCount(t.numSteps(), windows),
                      g);
}

TEST(WindowCostPrefix, SegmentsMatchMergedRefs) {
  const Grid g(3, 3);
  const CostModel model(g);
  testutil::Rng rng(61);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 3, 3, 12, 15);
  const WindowedRefs refs = refsFromTrace(t, g, 4);
  for (DataId d = 0; d < refs.numData(); ++d) {
    const WindowCostPrefix prefix(refs, d, model);
    for (WindowId b = 0; b < refs.numWindows(); ++b) {
      for (WindowId e = b + 1; e <= refs.numWindows(); ++e) {
        const auto merged = refs.mergedRefs(d, b, e);
        for (ProcId p = 0; p < g.size(); ++p) {
          ASSERT_EQ(prefix.segment(b, e, p), model.serveCost(merged, p));
        }
      }
    }
  }
}

TEST(WindowCostPrefix, BestSegmentCenterIsArgmin) {
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(62);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 4, 4, 8, 20);
  const WindowedRefs refs = refsFromTrace(t, g, 4);
  const WindowCostPrefix prefix(refs, 0, model);
  const BestCenter best = prefix.bestSegmentCenter(0, 4);
  for (ProcId p = 0; p < g.size(); ++p) {
    EXPECT_LE(best.cost, prefix.segment(0, 4, p));
  }
}

TEST(Grouping, SingletonGroupingIsLomcds) {
  const Grid g(3, 3);
  const CostModel model(g);
  testutil::Rng rng(63);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 3, 3, 9, 15);
  const WindowedRefs refs = refsFromTrace(t, g, 3);
  const WindowCostPrefix prefix(refs, 0, model);
  const DataGrouping s = singletonGrouping(prefix);
  EXPECT_EQ(s.numGroups(), 3);
  for (WindowId w = 0; w < 3; ++w) {
    EXPECT_EQ(s.starts[static_cast<std::size_t>(w)], w);
    if (prefix.segmentWeight(w, w + 1) > 0) {
      EXPECT_EQ(s.centers[static_cast<std::size_t>(w)],
                prefix.bestSegmentCenter(w, w + 1).proc);
    }
  }
}

TEST(Grouping, GreedyNeverIncreasesCost) {
  // DESIGN.md invariant 6 (first half): Algorithm 3's output costs no more
  // than the LOMCDS singleton partition it starts from.
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(64);
  for (int trial = 0; trial < 10; ++trial) {
    const ReferenceTrace t = testutil::randomTrace(rng, g, 4, 4, 16, 20);
    const WindowedRefs refs = refsFromTrace(t, g, 8);
    for (DataId d = 0; d < refs.numData(); d += 3) {
      const WindowCostPrefix prefix(refs, d, model);
      const Cost before =
          groupingCost(singletonGrouping(prefix), prefix, model);
      const Cost after =
          groupingCost(greedyGrouping(prefix, model), prefix, model);
      EXPECT_LE(after, before);
    }
  }
}

TEST(Grouping, OptimalNeverWorseThanGreedy) {
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(65);
  for (int trial = 0; trial < 10; ++trial) {
    const ReferenceTrace t = testutil::randomTrace(rng, g, 3, 3, 16, 12);
    const WindowedRefs refs = refsFromTrace(t, g, 8);
    for (DataId d = 0; d < refs.numData(); d += 2) {
      const WindowCostPrefix prefix(refs, d, model);
      const Cost greedy =
          groupingCost(greedyGrouping(prefix, model), prefix, model);
      const Cost optimal =
          groupingCost(optimalGrouping(prefix, model), prefix, model);
      EXPECT_LE(optimal, greedy);
    }
  }
}

TEST(Grouping, OptimalMatchesExhaustivePartitionEnumeration) {
  // Small W: enumerate all 2^(W-1) partitions directly.
  const Grid g(2, 3);
  const CostModel model(g);
  testutil::Rng rng(66);
  const int W = 5;
  for (int trial = 0; trial < 10; ++trial) {
    const ReferenceTrace t = testutil::randomTrace(rng, g, 2, 2, W, 8);
    const WindowedRefs refs = refsFromTrace(t, g, W);
    for (DataId d = 0; d < refs.numData(); ++d) {
      const WindowCostPrefix prefix(refs, d, model);
      Cost best = kInfiniteCost;
      for (int mask = 0; mask < (1 << (W - 1)); ++mask) {
        std::vector<WindowId> starts = {0};
        for (int b = 0; b < W - 1; ++b) {
          if (mask & (1 << b)) starts.push_back(b + 1);
        }
        DataGrouping cand;
        cand.starts = starts;
        for (std::size_t i = 0; i < starts.size(); ++i) {
          const WindowId e = (i + 1 < starts.size())
                                 ? starts[i + 1]
                                 : static_cast<WindowId>(W);
          cand.centers.push_back(
              prefix.bestSegmentCenter(starts[i], e).proc);
        }
        best = std::min(best, groupingCost(cand, prefix, model));
      }
      const Cost viaDp =
          groupingCost(optimalGrouping(prefix, model), prefix, model);
      // The DP also optimises the center jointly with the grouping, so it
      // can only be <= the best-centers-per-segment enumeration.
      EXPECT_LE(viaDp, best);
    }
  }
}

TEST(Grouping, MergesIdenticalWindowsCompletely) {
  // If every window references the same processors, one group is optimal.
  const Grid g(4, 4);
  const CostModel model(g);
  ReferenceTrace t(DataSpace::singleSquare(1));
  for (StepId s = 0; s < 6; ++s) t.add(s, g.id(1, 2), 0, 3);
  t.finalize();
  const WindowedRefs refs = refsFromTrace(t, g, 6);
  const WindowCostPrefix prefix(refs, 0, model);
  const DataGrouping grouped = greedyGrouping(prefix, model);
  EXPECT_EQ(grouped.numGroups(), 1);
  EXPECT_EQ(grouped.centers[0], g.id(1, 2));
}

TEST(Grouping, Theorem3TwoWindowMergeNeverHelps) {
  // Paper Theorem 3: if p1 and p2 are the *closest pair* of local-optimal
  // centers of two consecutive windows, merging the two windows cannot
  // reduce the total communication cost. The premise matters: local optima
  // form plateaus, and the theorem holds for the plateau points closest to
  // each other (and unit movement volume, the paper's model).
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(67);

  const auto argminSet = [](const std::vector<Cost>& costs) {
    const Cost best = *std::min_element(costs.begin(), costs.end());
    std::vector<ProcId> out;
    for (ProcId p = 0; p < static_cast<ProcId>(costs.size()); ++p) {
      if (costs[static_cast<std::size_t>(p)] == best) out.push_back(p);
    }
    return out;
  };

  for (int trial = 0; trial < 200; ++trial) {
    const ReferenceTrace t = testutil::randomTrace(rng, g, 3, 3, 2, 10);
    const WindowedRefs refs =
        WindowedRefs(t, WindowPartition::perStep(2), g);
    for (DataId d = 0; d < refs.numData(); ++d) {
      if (refs.windowWeight(d, 0) == 0 || refs.windowWeight(d, 1) == 0) {
        continue;  // theorem assumes both windows reference the datum
      }
      const WindowCostPrefix prefix(refs, d, model);
      const std::vector<Cost> f0 = centerCosts(model, refs.refs(d, 0));
      const std::vector<Cost> f1 = centerCosts(model, refs.refs(d, 1));
      // Closest pair over the two argmin plateaus.
      int bestDist = INT32_MAX;
      for (const ProcId a : argminSet(f0)) {
        for (const ProcId b : argminSet(f1)) {
          bestDist = std::min(bestDist, g.manhattan(a, b));
        }
      }
      const Cost split = f0[static_cast<std::size_t>(
                              argminSet(f0).front())] +
                         f1[static_cast<std::size_t>(
                             argminSet(f1).front())] +
                         model.params().moveVolume * bestDist;
      const Cost merged = prefix.bestSegmentCenter(0, 2).cost;
      EXPECT_GE(merged, split);
    }
  }
}

TEST(GroupedLomcds, ScheduleMatchesGroupingCost) {
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(68);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 4, 4, 16, 25);
  const WindowedRefs refs = refsFromTrace(t, g, 8);
  const DataSchedule s = scheduleGroupedLomcds(refs, model);
  const EvalResult r = evaluateSchedule(s, refs, model);
  Cost expect = 0;
  for (DataId d = 0; d < refs.numData(); ++d) {
    const WindowCostPrefix prefix(refs, d, model);
    expect += groupingCost(greedyGrouping(prefix, model), prefix, model);
  }
  EXPECT_EQ(r.aggregate.total(), expect);
}

TEST(GroupedLomcds, GomcdsSubsumesGrouping) {
  // DESIGN.md invariant 6 (second half): GOMCDS can always emulate any
  // grouping by holding still, so its cost is <= grouped LOMCDS.
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(69);
  for (int trial = 0; trial < 6; ++trial) {
    const ReferenceTrace t = testutil::randomTrace(rng, g, 4, 4, 16, 25);
    const WindowedRefs refs = refsFromTrace(t, g, 8);
    const Cost grouped =
        evaluateSchedule(scheduleGroupedLomcds(refs, model), refs, model)
            .aggregate.total();
    const Cost gomcds =
        evaluateSchedule(scheduleGomcds(refs, model), refs, model)
            .aggregate.total();
    EXPECT_LE(gomcds, grouped);
  }
}

TEST(GroupedLomcds, NeverWorseThanPlainLomcds) {
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(70);
  for (int trial = 0; trial < 6; ++trial) {
    const ReferenceTrace t = testutil::randomTrace(rng, g, 4, 4, 16, 25);
    const WindowedRefs refs = refsFromTrace(t, g, 8);
    const Cost grouped =
        evaluateSchedule(scheduleGroupedLomcds(refs, model), refs, model)
            .aggregate.total();
    const Cost plain =
        evaluateSchedule(scheduleLomcds(refs, model), refs, model)
            .aggregate.total();
    EXPECT_LE(grouped, plain);
  }
}

TEST(GroupedLomcds, CapacityRespected) {
  const Grid g(2, 2);
  const CostModel model(g);
  testutil::Rng rng(71);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 3, 3, 12, 20);
  const WindowedRefs refs = refsFromTrace(t, g, 4);
  SchedulerOptions opts;
  opts.capacity = 3;
  const DataSchedule s = scheduleGroupedLomcds(refs, model, opts);
  EXPECT_TRUE(s.complete());
  EXPECT_TRUE(s.respectsCapacity(g, 3));
}

TEST(GroupedGomcds, SandwichedBetweenGomcdsAndGroupedLomcds) {
  // Uncapacitated: plain GOMCDS <= GOMCDS-over-groups <= LOMCDS-over-
  // groups (the DP over the same groups includes the greedy center
  // choice as one path).
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(73);
  for (int trial = 0; trial < 6; ++trial) {
    const ReferenceTrace t = testutil::randomTrace(rng, g, 4, 4, 16, 25);
    const WindowedRefs refs = refsFromTrace(t, g, 8);
    const Cost fine =
        evaluateSchedule(scheduleGomcds(refs, model), refs, model)
            .aggregate.total();
    const Cost groupedDp =
        evaluateSchedule(scheduleGroupedGomcds(refs, model), refs, model)
            .aggregate.total();
    const Cost groupedGreedy =
        evaluateSchedule(scheduleGroupedLomcds(refs, model), refs, model)
            .aggregate.total();
    EXPECT_LE(fine, groupedDp);
    EXPECT_LE(groupedDp, groupedGreedy);
  }
}

TEST(GroupedGomcds, CapacityRespected) {
  const Grid g(2, 2);
  const CostModel model(g);
  testutil::Rng rng(74);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 3, 3, 12, 20);
  const WindowedRefs refs = refsFromTrace(t, g, 4);
  SchedulerOptions opts;
  opts.capacity = 3;
  const DataSchedule s = scheduleGroupedGomcds(refs, model, opts);
  EXPECT_TRUE(s.complete());
  EXPECT_TRUE(s.respectsCapacity(g, 3));
}

TEST(GroupedGomcds, ConstantWithinGroups) {
  // The schedule must be piecewise constant: center changes only at group
  // boundaries, i.e. the number of distinct runs per datum is bounded by
  // the grouping's group count.
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(75);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 3, 3, 16, 20);
  const WindowedRefs refs = refsFromTrace(t, g, 8);
  const DataSchedule s = scheduleGroupedGomcds(refs, model);
  for (DataId d = 0; d < refs.numData(); ++d) {
    const WindowCostPrefix prefix(refs, d, model);
    const DataGrouping grouping = greedyGrouping(prefix, model);
    int runs = 1;
    for (WindowId w = 1; w < refs.numWindows(); ++w) {
      if (s.center(d, w) != s.center(d, w - 1)) ++runs;
    }
    EXPECT_LE(runs, grouping.numGroups());
  }
}

TEST(GroupedLomcds, OptimalDpVariantRuns) {
  const Grid g(3, 3);
  const CostModel model(g);
  testutil::Rng rng(72);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 3, 3, 12, 15);
  const WindowedRefs refs = refsFromTrace(t, g, 6);
  const Cost greedy =
      evaluateSchedule(scheduleGroupedLomcds(refs, model, {},
                                             GroupingMethod::kGreedy),
                       refs, model)
          .aggregate.total();
  const Cost optimal =
      evaluateSchedule(scheduleGroupedLomcds(refs, model, {},
                                             GroupingMethod::kOptimalDp),
                       refs, model)
          .aggregate.total();
  EXPECT_LE(optimal, greedy);
}

}  // namespace
}  // namespace pimsched

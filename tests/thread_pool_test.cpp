#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace pimsched {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const unsigned threads : {0u, 1u, 2u, 4u, 9u}) {
    const std::int64_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    parallelFor(n, threads, [&](std::int64_t i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (std::int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "i=" << i << " threads=" << threads;
    }
  }
}

TEST(ParallelFor, EmptyAndSingleItemRanges) {
  std::atomic<int> calls{0};
  parallelFor(0, 4, [&](std::int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  parallelFor(1, 4, [&](std::int64_t i) {
    EXPECT_EQ(i, 0);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelFor, PropagatesException) {
  EXPECT_THROW(
      parallelFor(64, 4,
                  [](std::int64_t i) {
                    if (i == 17) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

TEST(ParallelFor, ReusableAfterException) {
  // An exception must not wedge the shared pool: later calls still run
  // every iteration and can still throw independently.
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(parallelFor(32, 4,
                             [](std::int64_t) {
                               throw std::logic_error("each round");
                             }),
                 std::logic_error);
    std::atomic<std::int64_t> sum{0};
    parallelFor(100, 4, [&](std::int64_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 4950);
  }
}

TEST(ParallelFor, ReuseAcrossManyCalls) {
  // The global pool's workers persist; hammering it with many small calls
  // must neither leak tasks nor lose iterations.
  std::int64_t expected = 0;
  std::atomic<std::int64_t> total{0};
  for (std::int64_t n = 1; n <= 64; ++n) {
    expected += n * (n - 1) / 2;
    parallelFor(n, 3, [&](std::int64_t i) { total.fetch_add(i); });
  }
  EXPECT_EQ(total.load(), expected);
}

TEST(ParallelFor, NestedCallsRunInline) {
  // A body that itself calls parallelFor must not deadlock on the shared
  // pool; the inner call degrades to a sequential loop on the worker.
  std::atomic<std::int64_t> sum{0};
  parallelFor(8, 4, [&](std::int64_t) {
    parallelFor(8, 4, [&](std::int64_t j) { sum.fetch_add(j); });
  });
  EXPECT_EQ(sum.load(), 8 * 28);
}

TEST(ParallelFor, ActuallyUsesMultipleThreads) {
  // With enough items and threads > 1 at least one helper from the pool
  // should execute a chunk. Thread ids are observed, not asserted per
  // item: on a single-core host the caller may legitimately win most of
  // the work, but the pool worker exists and can participate.
  std::mutex mutex;
  std::set<std::thread::id> seen;
  parallelFor(64, 0, [&](std::int64_t) {
    std::lock_guard<std::mutex> lock(mutex);
    seen.insert(std::this_thread::get_id());
  });
  EXPECT_GE(seen.size(), 1u);
}

TEST(ThreadPool, SubmitRunsTasks) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  std::mutex mutex;
  std::condition_variable cv;
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] {
      if (done.fetch_add(1) + 1 == 50) {
        std::lock_guard<std::mutex> lock(mutex);
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&] { return done.load() == 50; });
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&] { done.fetch_add(1); });
    }
  }  // ~ThreadPool joins after draining
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPool, ShutdownUnderLoadFromManySubmittersDrainsEverything) {
  // The serving daemon destroys its work while submitter threads have just
  // stopped: the destructor must run every task already submitted — no
  // hang, no lost task — even when the queue is deep and the submitters
  // were racing each other moments before.
  constexpr int kSubmitters = 8;
  constexpr int kTasksPerSubmitter = 200;
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> ran{0};
    {
      ThreadPool pool(2);
      std::vector<std::thread> submitters;
      submitters.reserve(kSubmitters);
      for (int s = 0; s < kSubmitters; ++s) {
        submitters.emplace_back([&] {
          for (int i = 0; i < kTasksPerSubmitter; ++i) {
            pool.submit([&] { ran.fetch_add(1); });
          }
        });
      }
      for (std::thread& s : submitters) s.join();
      // Destroy the pool immediately, with (almost certainly) a deep
      // backlog of queued tasks: 2 workers vs 1600 trivial submissions.
    }
    EXPECT_EQ(ran.load(), kSubmitters * kTasksPerSubmitter)
        << "round " << round;
  }
}

TEST(ThreadPool, ShutdownUnderLoadWithSlowTasksStillDrains) {
  // Same shape, but every task yields so workers are mid-task at destroy
  // time rather than racing through an empty queue.
  std::atomic<int> ran{0};
  constexpr int kTasks = 300;
  {
    ThreadPool pool(3);
    std::vector<std::thread> submitters;
    for (int s = 0; s < 3; ++s) {
      submitters.emplace_back([&] {
        for (int i = 0; i < kTasks / 3; ++i) {
          pool.submit([&] {
            std::this_thread::yield();
            ran.fetch_add(1);
          });
        }
      });
    }
    for (std::thread& s : submitters) s.join();
  }
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPool, GlobalPoolIsSingletonAndSized) {
  ThreadPool& a = ThreadPool::global();
  ThreadPool& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.workers(), 1u);
  EXPECT_FALSE(a.insidePool());  // the test thread is not a pool worker
}

}  // namespace
}  // namespace pimsched

// The paper's §3.3 worked example: one datum D on a 4x4 array over 4
// execution windows (Figure 1 gives per-processor reference counts; the
// digits are illegible in the available scan, so we use a reconstructed
// instance with the same structure — see DESIGN.md). The example's
// *relationships* are what we verify:
//   * SCDS places D at the single merged-window optimum;
//   * LOMCDS places D at each window's local optimum;
//   * the GOMCDS path costs no more than either, and its cost equals the
//     shortest path through the paper's explicit cost-graph (pseudo source
//     s, window x processor nodes, pseudo destination d).

#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "core/gomcds.hpp"
#include "core/lomcds.hpp"
#include "core/scds.hpp"
#include "cost/center_costs.hpp"
#include "graph/digraph.hpp"

namespace pimsched {
namespace {

/// Reconstructed Figure 1: reference counts for datum D per window,
/// 4x4 processor array, 4 windows. The hotspot moves across the array —
/// exactly the situation the example illustrates.
constexpr int kCounts[4][4][4] = {
    // window 0: concentrated near (1,0)
    {{2, 1, 0, 0}, {4, 1, 0, 0}, {2, 0, 0, 0}, {1, 0, 0, 0}},
    // window 1: near (1,3)
    {{0, 0, 1, 2}, {0, 0, 2, 5}, {0, 0, 0, 2}, {0, 0, 0, 0}},
    // window 2: back near (1,0)
    {{1, 1, 0, 0}, {5, 2, 0, 0}, {1, 1, 0, 0}, {0, 0, 0, 0}},
    // window 3: near (2,2)
    {{0, 0, 0, 0}, {0, 1, 1, 0}, {0, 2, 4, 1}, {0, 0, 1, 0}},
};

WindowedRefs exampleRefs(const Grid& g) {
  ReferenceTrace t(DataSpace::singleSquare(1));
  for (int w = 0; w < 4; ++w) {
    for (int r = 0; r < 4; ++r) {
      for (int c = 0; c < 4; ++c) {
        if (kCounts[w][r][c] > 0) {
          t.add(w, g.id(r, c), 0, kCounts[w][r][c]);
        }
      }
    }
  }
  t.finalize();
  return WindowedRefs(t, WindowPartition::perStep(4), g);
}

class Fig1Example : public ::testing::Test {
 protected:
  Grid grid_{4, 4};
  CostModel model_{grid_};
};

TEST_F(Fig1Example, ScdsUsesTheMergedCenter) {
  const WindowedRefs refs = exampleRefs(grid_);
  const DataSchedule s = scheduleScds(refs, model_);
  const BestCenter merged = bestCenter(model_, refs.mergedRefs(0, 0, 4));
  for (WindowId w = 0; w < 4; ++w) {
    EXPECT_EQ(s.center(0, w), merged.proc);
  }
  const EvalResult r = evaluateSchedule(s, refs, model_);
  EXPECT_EQ(r.aggregate.serve, merged.cost);
  EXPECT_EQ(r.aggregate.move, 0);
}

TEST_F(Fig1Example, LomcdsTracksTheHotspot) {
  const WindowedRefs refs = exampleRefs(grid_);
  const DataSchedule s = scheduleLomcds(refs, model_);
  // Local centers follow the drifting reference mass.
  EXPECT_EQ(s.center(0, 0), grid_.id(1, 0));
  EXPECT_EQ(s.center(0, 1), grid_.id(1, 3));
  EXPECT_EQ(s.center(0, 2), grid_.id(1, 0));
  EXPECT_EQ(s.center(0, 3), grid_.id(2, 2));
}

TEST_F(Fig1Example, GomcdsBeatsBothAndAvoidsThrashing) {
  const WindowedRefs refs = exampleRefs(grid_);
  const Cost scds =
      evaluateSchedule(scheduleScds(refs, model_), refs, model_)
          .aggregate.total();
  const Cost lomcds =
      evaluateSchedule(scheduleLomcds(refs, model_), refs, model_)
          .aggregate.total();
  const Cost gomcds =
      evaluateSchedule(scheduleGomcds(refs, model_), refs, model_)
          .aggregate.total();
  EXPECT_LE(gomcds, scds);
  EXPECT_LE(gomcds, lomcds);
}

TEST_F(Fig1Example, GomcdsEqualsExplicitCostGraphShortestPath) {
  // Build the paper's literal cost-graph: node v_{i,j} for window i and
  // processor j, pseudo source s and destination d, and apply the DAG
  // shortest-path algorithm. GOMCDS must return exactly this value.
  const WindowedRefs refs = exampleRefs(grid_);
  const int W = 4;
  const int m = grid_.size();

  std::vector<std::vector<Cost>> serve(static_cast<std::size_t>(W));
  for (int w = 0; w < W; ++w) {
    serve[static_cast<std::size_t>(w)] =
        bruteForceCenterCosts(model_, refs.refs(0, w));
  }

  const int source = W * m;
  const int dest = W * m + 1;
  Digraph g(W * m + 2);
  const auto node = [m](int w, int p) { return w * m + p; };
  for (int p = 0; p < m; ++p) {
    g.addEdge(source, node(0, p), serve[0][static_cast<std::size_t>(p)]);
    g.addEdge(node(W - 1, p), dest, 0);
  }
  for (int w = 0; w + 1 < W; ++w) {
    for (int j = 0; j < m; ++j) {
      for (int k = 0; k < m; ++k) {
        g.addEdge(node(w, j), node(w + 1, k),
                  model_.moveCost(static_cast<ProcId>(j),
                                  static_cast<ProcId>(k)) +
                      serve[static_cast<std::size_t>(w + 1)]
                           [static_cast<std::size_t>(k)]);
      }
    }
  }
  const DagShortestPaths sp = dagShortestPaths(g, source);

  const Cost gomcds =
      evaluateSchedule(scheduleGomcds(refs, model_), refs, model_)
          .aggregate.total();
  EXPECT_EQ(sp.dist[static_cast<std::size_t>(dest)], gomcds);
}

TEST_F(Fig1Example, GomcdsCollapsesRepeatedHotspotsWhenMovingIsCostly) {
  // When a datum is bulky (moveVolume 4), LOMCDS — which ignores movement —
  // keeps thrashing between the hotspots while GOMCDS compromises and moves
  // strictly less, ending up strictly cheaper overall.
  CostParams params;
  params.moveVolume = 4;
  const CostModel model(grid_, params);
  const WindowedRefs refs = exampleRefs(grid_);
  const EvalResult go =
      evaluateSchedule(scheduleGomcds(refs, model), refs, model);
  const EvalResult lo =
      evaluateSchedule(scheduleLomcds(refs, model), refs, model);
  EXPECT_LT(go.aggregate.move, lo.aggregate.move);
  EXPECT_LT(go.aggregate.total(), lo.aggregate.total());
}

}  // namespace
}  // namespace pimsched

#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "kernels/benchmarks.hpp"
#include "pim/memory.hpp"

namespace pimsched {
namespace {

TEST(Experiment, ResolvesPaperCapacity) {
  const Grid g(4, 4);
  const ReferenceTrace t =
      makePaperBenchmark(PaperBenchmark::kLu, g, 8);  // 64 data
  const Experiment exp(t, g);
  EXPECT_EQ(exp.capacity(), 8);  // 2 * ceil(64/16)
}

TEST(Experiment, UnlimitedCapacitySentinel) {
  const Grid g(4, 4);
  const ReferenceTrace t = makePaperBenchmark(PaperBenchmark::kLu, g, 8);
  PipelineConfig cfg;
  cfg.capacity = PipelineConfig::kUnlimited;
  const Experiment exp(t, g, cfg);
  EXPECT_EQ(exp.capacity(), -1);
}

TEST(Experiment, RejectsBadCapacitySentinel) {
  const Grid g(4, 4);
  const ReferenceTrace t = makePaperBenchmark(PaperBenchmark::kLu, g, 8);
  PipelineConfig cfg;
  cfg.capacity = -7;
  EXPECT_THROW(Experiment(t, g, cfg), std::invalid_argument);
}

TEST(Experiment, WindowCountHonoursConfig) {
  const Grid g(4, 4);
  const ReferenceTrace t = makePaperBenchmark(PaperBenchmark::kLu, g, 16);
  PipelineConfig cfg;
  cfg.numWindows = 5;
  const Experiment exp(t, g, cfg);
  EXPECT_EQ(exp.refs().numWindows(), 5);
}

TEST(Experiment, AllMethodsProduceValidSchedules) {
  const Grid g(4, 4);
  const ReferenceTrace t =
      makePaperBenchmark(PaperBenchmark::kMatSquare, g, 8);
  const Experiment exp(t, g);
  for (const Method m :
       {Method::kRowWise, Method::kColWise, Method::kBlock2D,
        Method::kCyclic2D, Method::kRandom, Method::kScds, Method::kLomcds,
        Method::kGomcds, Method::kGroupedLomcds, Method::kGroupedOptimal}) {
    const DataSchedule s = exp.schedule(m);
    EXPECT_TRUE(s.complete()) << toString(m);
    EXPECT_TRUE(s.respectsCapacity(g, exp.capacity())) << toString(m);
  }
}

// The paper's headline ordering on every benchmark: each proposed scheme
// beats the straight-forward distribution, and GOMCDS <= LOMCDS-with-
// grouping <= plain LOMCDS in total cost.
class PaperOrdering : public ::testing::TestWithParam<PaperBenchmark> {};

TEST_P(PaperOrdering, ProposedSchemesBeatStraightForward) {
  const Grid g(4, 4);
  const ReferenceTrace t = makePaperBenchmark(GetParam(), g, 8);
  const Experiment exp(t, g);
  const Cost sf = exp.evaluate(Method::kRowWise).aggregate.total();
  const Cost scds = exp.evaluate(Method::kScds).aggregate.total();
  const Cost lomcds = exp.evaluate(Method::kLomcds).aggregate.total();
  const Cost gomcds = exp.evaluate(Method::kGomcds).aggregate.total();
  EXPECT_LT(scds, sf) << toString(GetParam());
  EXPECT_LT(gomcds, sf);
  EXPECT_LE(gomcds, lomcds);
  EXPECT_LE(gomcds, scds);
}

TEST_P(PaperOrdering, GroupingImprovesLomcds) {
  const Grid g(4, 4);
  const ReferenceTrace t = makePaperBenchmark(GetParam(), g, 8);
  const Experiment exp(t, g);
  const Cost lomcds = exp.evaluate(Method::kLomcds).aggregate.total();
  const Cost grouped =
      exp.evaluate(Method::kGroupedLomcds).aggregate.total();
  const Cost gomcds = exp.evaluate(Method::kGomcds).aggregate.total();
  EXPECT_LE(grouped, lomcds) << toString(GetParam());
  EXPECT_LE(gomcds, grouped);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, PaperOrdering,
                         ::testing::ValuesIn(allPaperBenchmarks()),
                         [](const auto& info) {
                           std::string n = toString(info.param);
                           for (char& c : n) {
                             if (c == ':' || c == '+' || c == '-') c = '_';
                           }
                           return n;
                         });

TEST(ImprovementPct, Formula) {
  EXPECT_DOUBLE_EQ(improvementPct(200, 150), 25.0);
  EXPECT_DOUBLE_EQ(improvementPct(100, 100), 0.0);
  EXPECT_DOUBLE_EQ(improvementPct(100, 120), -20.0);
  EXPECT_DOUBLE_EQ(improvementPct(0, 5), 0.0);
}

TEST(Experiment, RejectsEmptyTrace) {
  const Grid g(2, 2);
  ReferenceTrace empty(DataSpace::singleSquare(2));
  empty.finalize();
  EXPECT_THROW(Experiment(empty, g), std::invalid_argument);
}

TEST(Experiment, ExplicitWindowsMustMatchTrace) {
  const Grid g(4, 4);
  const ReferenceTrace t = makePaperBenchmark(PaperBenchmark::kLu, g, 8);
  PipelineConfig cfg;
  cfg.explicitWindows = WindowPartition::whole(t.numSteps() + 5);
  EXPECT_THROW(Experiment(t, g, cfg), std::invalid_argument);
}

TEST(Experiment, RandomAndColwiseBaselinesEvaluate) {
  const Grid g(4, 4);
  const ReferenceTrace t = makePaperBenchmark(PaperBenchmark::kLu, g, 8);
  const Experiment exp(t, g);
  EXPECT_GT(exp.evaluate(Method::kRandom).aggregate.total(), 0);
  EXPECT_GT(exp.evaluate(Method::kColWise).aggregate.total(), 0);
  EXPECT_GT(exp.evaluate(Method::kCyclic2D).aggregate.total(), 0);
  EXPECT_GT(exp.evaluate(Method::kBlock2D).aggregate.total(), 0);
}

TEST(Experiment, EvaluateMatchesManualEvaluation) {
  const Grid g(4, 4);
  const ReferenceTrace t = makePaperBenchmark(PaperBenchmark::kLu, g, 8);
  const Experiment exp(t, g);
  const DataSchedule s = exp.schedule(Method::kScds);
  const EvalResult manual = evaluateSchedule(s, exp.refs(), exp.costModel());
  const EvalResult viaExp = exp.evaluate(Method::kScds);
  EXPECT_EQ(manual.aggregate.total(), viaExp.aggregate.total());
}

}  // namespace
}  // namespace pimsched

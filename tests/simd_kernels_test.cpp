#include "graph/simd/simd_kernels.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "test_util.hpp"

namespace pimsched {
namespace {

using simd::Kernels;
using simd::Tier;

// Every tier the host can execute beyond scalar; empty on a pure-scalar
// host, in which case the identity tests vacuously pass (the scalar tier
// is its own oracle).
std::vector<Tier> vectorTiers() {
  std::vector<Tier> out;
  for (const Tier t : {Tier::kSse2, Tier::kAvx2}) {
    if (simd::tierSupported(t)) out.push_back(t);
  }
  return out;
}

// Lengths chosen to hit every lane-count boundary: sub-vector, exact
// multiples, one-off either side, and the 4x4-block boundaries of the
// fused AVX2 chamfer strips.
const std::vector<std::size_t> kLengths = {1,  2,  3,  4,  5,  7,  8,  9,
                                           15, 16, 17, 31, 32, 33, 63, 65};

// Random cost with forbidden entries mixed in; `drift` additionally mixes
// in values just above kInfiniteCost (legal for the deferred-clamp passes).
Cost randomCost(testutil::Rng& rng, bool drift) {
  const std::uint64_t roll = rng.below(8);
  if (roll == 0) return kInfiniteCost;
  if (drift && roll == 1) {
    return kInfiniteCost + rng.range(1, 1000);
  }
  return rng.range(0, 5000);
}

std::vector<Cost> randomRow(testutil::Rng& rng, std::size_t n, bool drift) {
  std::vector<Cost> v(n);
  for (Cost& c : v) c = randomCost(rng, drift);
  return v;
}

std::string ctx(Tier t, std::size_t n) {
  return std::string(simd::tierName(t)) + " n=" + std::to_string(n);
}

TEST(SimdDispatch, TierNamesAndSupportAreConsistent) {
  EXPECT_STREQ(simd::tierName(Tier::kScalar), "scalar");
  EXPECT_STREQ(simd::tierName(Tier::kSse2), "sse2");
  EXPECT_STREQ(simd::tierName(Tier::kAvx2), "avx2");
  // Scalar is unconditionally supported; bestSupportedTier is supported by
  // definition and at least scalar.
  EXPECT_TRUE(simd::tierSupported(Tier::kScalar));
  EXPECT_TRUE(simd::tierSupported(simd::bestSupportedTier()));
  EXPECT_GE(static_cast<int>(simd::bestSupportedTier()), 0);
}

TEST(SimdDispatch, EveryTableHasAllKernels) {
  for (const Tier t : {Tier::kScalar, Tier::kSse2, Tier::kAvx2}) {
    const Kernels& k = simd::kernelsFor(t);
    EXPECT_NE(k.minPlusRow, nullptr);
    EXPECT_NE(k.addMinRow, nullptr);
    EXPECT_NE(k.satAddMinRow, nullptr);
    EXPECT_NE(k.chamferForwardStrip, nullptr);
    EXPECT_NE(k.chamferBackwardStrip, nullptr);
    EXPECT_NE(k.combineLayer, nullptr);
    EXPECT_NE(k.clampInf, nullptr);
    EXPECT_NE(k.maskInf, nullptr);
    EXPECT_NE(k.findPredecessor, nullptr);
  }
}

TEST(SimdDispatch, ForceTierInstallsAndRestores) {
  const Tier before = simd::activeTier();
  const Tier installed = simd::forceTier(Tier::kScalar);
  EXPECT_EQ(installed, Tier::kScalar);
  EXPECT_EQ(simd::activeTier(), Tier::kScalar);
  EXPECT_EQ(&simd::active(), &simd::kernelsFor(Tier::kScalar));
  // Unsupported requests clamp to a supported tier instead of crashing.
  const Tier clamped = simd::forceTier(Tier::kAvx2);
  EXPECT_TRUE(simd::tierSupported(clamped));
  EXPECT_EQ(simd::forceTier(before), before);
}

TEST(SimdKernelIdentity, MinPlusRow) {
  const Kernels& ref = simd::kernelsFor(Tier::kScalar);
  for (const Tier t : vectorTiers()) {
    const Kernels& k = simd::kernelsFor(t);
    testutil::Rng rng(7 + static_cast<std::uint64_t>(t));
    for (const std::size_t n : kLengths) {
      const std::vector<Cost> row = randomRow(rng, n, /*drift=*/false);
      const Cost add = rng.range(0, 3000);
      std::vector<Cost> a = randomRow(rng, n, /*drift=*/false);
      std::vector<Cost> b = a;
      ref.minPlusRow(row.data(), add, a.data(), n);
      k.minPlusRow(row.data(), add, b.data(), n);
      ASSERT_EQ(a, b) << ctx(t, n);
    }
  }
}

TEST(SimdKernelIdentity, AddMinRow) {
  const Kernels& ref = simd::kernelsFor(Tier::kScalar);
  for (const Tier t : vectorTiers()) {
    const Kernels& k = simd::kernelsFor(t);
    testutil::Rng rng(11 + static_cast<std::uint64_t>(t));
    for (const std::size_t n : kLengths) {
      // The chamfer vertical pass runs pre-clamp: sources and targets may
      // both sit above kInfiniteCost.
      const std::vector<Cost> src = randomRow(rng, n, /*drift=*/true);
      const Cost beta = rng.range(0, 100);
      std::vector<Cost> a = randomRow(rng, n, /*drift=*/true);
      std::vector<Cost> b = a;
      ref.addMinRow(src.data(), beta, a.data(), n);
      k.addMinRow(src.data(), beta, b.data(), n);
      ASSERT_EQ(a, b) << ctx(t, n);
    }
  }
}

TEST(SimdKernelIdentity, SatAddMinRow) {
  const Kernels& ref = simd::kernelsFor(Tier::kScalar);
  for (const Tier t : vectorTiers()) {
    const Kernels& k = simd::kernelsFor(t);
    testutil::Rng rng(13 + static_cast<std::uint64_t>(t));
    for (const std::size_t n : kLengths) {
      const std::vector<Cost> src = randomRow(rng, n, /*drift=*/false);
      // The huge-beta fallback: beta far beyond the branch-free guard.
      const Cost beta = rng.below(2) == 0 ? rng.range(0, 50)
                                          : INT64_MAX / 8 + rng.range(0, 99);
      std::vector<Cost> a = randomRow(rng, n, /*drift=*/false);
      std::vector<Cost> b = a;
      ref.satAddMinRow(src.data(), beta, a.data(), n);
      k.satAddMinRow(src.data(), beta, b.data(), n);
      ASSERT_EQ(a, b) << ctx(t, n);
    }
  }
}

TEST(SimdKernelIdentity, ChamferStripsForwardAndBackward) {
  const Kernels& ref = simd::kernelsFor(Tier::kScalar);
  for (const Tier t : vectorTiers()) {
    const Kernels& k = simd::kernelsFor(t);
    testutil::Rng rng(17 + static_cast<std::uint64_t>(t));
    for (const std::size_t n : kLengths) {
      for (const std::size_t rows : {1u, 2u, 3u, 4u}) {
        // Strips from grid interiors are stride-separated, not contiguous.
        for (const std::size_t stride : {n, n + 5}) {
          for (const Cost beta : {Cost{0}, Cost{1}, Cost{9}}) {
            std::vector<Cost> strip(rows * stride);
            for (Cost& c : strip) c = randomCost(rng, /*drift=*/false);
            const std::vector<Cost> edge = randomRow(rng, n, false);
            for (const bool hasEdge : {false, true}) {
              const Cost* up = hasEdge ? edge.data() : nullptr;
              std::vector<Cost> a = strip;
              std::vector<Cost> b = strip;
              ref.chamferForwardStrip(a.data(), up, rows, stride, beta, n);
              k.chamferForwardStrip(b.data(), up, rows, stride, beta, n);
              ASSERT_EQ(a, b) << "fwd " << ctx(t, n) << " rows=" << rows
                              << " stride=" << stride << " beta=" << beta
                              << " edge=" << hasEdge;
              a = strip;
              b = strip;
              ref.chamferBackwardStrip(a.data(), up, rows, stride, beta, n);
              k.chamferBackwardStrip(b.data(), up, rows, stride, beta, n);
              ASSERT_EQ(a, b) << "bwd " << ctx(t, n) << " rows=" << rows
                              << " stride=" << stride << " beta=" << beta
                              << " edge=" << hasEdge;
            }
          }
        }
      }
    }
  }
}

TEST(SimdKernelIdentity, CombineLayerAndClampInf) {
  const Kernels& ref = simd::kernelsFor(Tier::kScalar);
  for (const Tier t : vectorTiers()) {
    const Kernels& k = simd::kernelsFor(t);
    testutil::Rng rng(19 + static_cast<std::uint64_t>(t));
    for (const std::size_t n : kLengths) {
      const std::vector<Cost> relaxed = randomRow(rng, n, /*drift=*/true);
      const std::vector<Cost> own = randomRow(rng, n, /*drift=*/false);
      std::vector<Cost> a(n);
      std::vector<Cost> b(n);
      ref.combineLayer(relaxed.data(), own.data(), a.data(), n);
      k.combineLayer(relaxed.data(), own.data(), b.data(), n);
      ASSERT_EQ(a, b) << ctx(t, n);

      std::vector<Cost> c = randomRow(rng, n, /*drift=*/true);
      std::vector<Cost> d = c;
      ref.clampInf(c.data(), n);
      k.clampInf(d.data(), n);
      ASSERT_EQ(c, d) << ctx(t, n);
    }
  }
}

TEST(SimdKernelIdentity, MaskInf) {
  const Kernels& ref = simd::kernelsFor(Tier::kScalar);
  for (const Tier t : vectorTiers()) {
    const Kernels& k = simd::kernelsFor(t);
    testutil::Rng rng(23 + static_cast<std::uint64_t>(t));
    for (const std::size_t n : kLengths) {
      std::vector<unsigned char> forbidden(n);
      for (unsigned char& f : forbidden) {
        f = static_cast<unsigned char>(rng.below(2));
      }
      std::vector<Cost> a = randomRow(rng, n, /*drift=*/false);
      std::vector<Cost> b = a;
      ref.maskInf(forbidden.data(), a.data(), n);
      k.maskInf(forbidden.data(), b.data(), n);
      ASSERT_EQ(a, b) << ctx(t, n);
    }
  }
}

TEST(SimdKernelIdentity, FindPredecessor) {
  const Kernels& ref = simd::kernelsFor(Tier::kScalar);
  for (const Tier t : vectorTiers()) {
    const Kernels& k = simd::kernelsFor(t);
    testutil::Rng rng(29 + static_cast<std::uint64_t>(t));
    for (const std::size_t n : kLengths) {
      for (int trial = 0; trial < 8; ++trial) {
        std::vector<Cost> prev = randomRow(rng, n, /*drift=*/false);
        std::vector<Cost> trans(n);
        for (Cost& c : trans) c = rng.range(0, 200);
        const Cost tMax = rng.range(1, 250);
        // Half the trials probe a sum that actually occurs (planting a
        // duplicate ahead of it exercises the smallest-index tie-break);
        // the rest probe an unlikely value, usually returning -1.
        Cost need = rng.range(0, 400);
        if (trial % 2 == 0) {
          const std::size_t i = rng.below(n);
          prev[i] = rng.range(0, 100);
          trans[i] = rng.range(0, tMax - 1);
          need = prev[i] + trans[i];
          if (i + 1 < n && rng.below(2) == 0) {
            prev[i + 1] = prev[i];
            trans[i + 1] = trans[i];
          }
        }
        const std::ptrdiff_t a =
            ref.findPredecessor(prev.data(), trans.data(), need, tMax, n);
        const std::ptrdiff_t b =
            k.findPredecessor(prev.data(), trans.data(), need, tMax, n);
        ASSERT_EQ(a, b) << ctx(t, n) << " trial " << trial;
      }
    }
  }
}

}  // namespace
}  // namespace pimsched

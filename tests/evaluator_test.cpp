#include "core/evaluator.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace pimsched {
namespace {

/// Two windows on a 1x4 row: datum 0 referenced at proc 0 (w=2) in window 0
/// and proc 3 (w=1) in window 1.
WindowedRefs tinyRefs(const Grid& grid) {
  ReferenceTrace t(DataSpace::singleSquare(1));
  t.add(0, 0, 0, 2);
  t.add(1, 3, 0, 1);
  t.finalize();
  return WindowedRefs(t, WindowPartition::perStep(2), grid);
}

TEST(Evaluator, HandComputedStatic) {
  const Grid g(1, 4);
  const CostModel model(g);
  const WindowedRefs refs = tinyRefs(g);
  DataSchedule s(1, 2);
  s.setStatic(0, 1);  // distance 1 to proc 0, distance 2 to proc 3
  const CostBreakdown c = evaluateDatum(s, refs, model, 0);
  EXPECT_EQ(c.serve, 2 * 1 + 1 * 2);
  EXPECT_EQ(c.move, 0);
  EXPECT_EQ(c.total(), 4);
}

TEST(Evaluator, HandComputedWithMovement) {
  const Grid g(1, 4);
  const CostModel model(g);
  const WindowedRefs refs = tinyRefs(g);
  DataSchedule s(1, 2);
  s.setCenter(0, 0, 0);  // serve 0
  s.setCenter(0, 1, 3);  // serve 0, move 3 hops
  const CostBreakdown c = evaluateDatum(s, refs, model, 0);
  EXPECT_EQ(c.serve, 0);
  EXPECT_EQ(c.move, 3);
  EXPECT_EQ(c.total(), 3);
}

TEST(Evaluator, MoveVolumeScalesMovement) {
  const Grid g(1, 4);
  const CostModel model(g, CostParams{1, 5});
  const WindowedRefs refs = tinyRefs(g);
  DataSchedule s(1, 2);
  s.setCenter(0, 0, 0);
  s.setCenter(0, 1, 3);
  EXPECT_EQ(evaluateDatum(s, refs, model, 0).move, 15);
}

TEST(Evaluator, AggregateSumsPerData) {
  const Grid g(2, 2);
  testutil::Rng rng(21);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 3, 3, 8, 10);
  const WindowedRefs refs(t, WindowPartition::fixedSize(8, 2), g);
  const CostModel model(g);
  DataSchedule s(refs.numData(), refs.numWindows());
  for (DataId d = 0; d < refs.numData(); ++d) {
    for (WindowId w = 0; w < refs.numWindows(); ++w) {
      s.setCenter(d, w, static_cast<ProcId>((d + w) % g.size()));
    }
  }
  const EvalResult r = evaluateSchedule(s, refs, model);
  CostBreakdown sum;
  for (const CostBreakdown& c : r.perData) sum += c;
  EXPECT_EQ(sum.serve, r.aggregate.serve);
  EXPECT_EQ(sum.move, r.aggregate.move);
}

TEST(Evaluator, IncompleteScheduleThrows) {
  const Grid g(1, 4);
  const CostModel model(g);
  const WindowedRefs refs = tinyRefs(g);
  const DataSchedule s(1, 2);  // centers unset
  EXPECT_THROW((void)evaluateDatum(s, refs, model, 0),
               std::invalid_argument);
}

TEST(Evaluator, ShapeMismatchThrows) {
  const Grid g(1, 4);
  const CostModel model(g);
  const WindowedRefs refs = tinyRefs(g);
  DataSchedule wrong(2, 2);
  wrong.setStatic(0, 0);
  wrong.setStatic(1, 0);
  EXPECT_THROW(evaluateSchedule(wrong, refs, model), std::invalid_argument);
}

TEST(Evaluator, InitialPlacementIsFree) {
  // A datum placed far from everything in window 0 but never referenced
  // there pays nothing until it is referenced or moved.
  const Grid g(1, 4);
  const CostModel model(g);
  ReferenceTrace t(DataSpace::singleSquare(1));
  t.add(1, 0, 0, 1);  // only window 1 references it
  t.finalize();
  const WindowedRefs refs(t, WindowPartition::perStep(2), g);
  DataSchedule s(1, 2);
  s.setStatic(0, 3);
  const CostBreakdown c = evaluateDatum(s, refs, model, 0);
  EXPECT_EQ(c.move, 0);
  EXPECT_EQ(c.serve, 3);  // window 1 reference from proc 3 to proc 0
}

TEST(Evaluator, ParallelMatchesSequentialForEveryThreadCount) {
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(22);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 6, 6, 20, 30);
  const WindowedRefs refs(t, WindowPartition::evenCount(t.numSteps(), 8), g);
  DataSchedule s(refs.numData(), refs.numWindows());
  for (DataId d = 0; d < refs.numData(); ++d) {
    for (WindowId w = 0; w < refs.numWindows(); ++w) {
      s.setCenter(d, w, static_cast<ProcId>((3 * d + w) % g.size()));
    }
  }
  const EvalResult seq = evaluateSchedule(s, refs, model);
  for (const unsigned threads : {2u, 4u, 0u}) {
    const EvalResult par = evaluateSchedule(s, refs, model, threads);
    EXPECT_EQ(par.aggregate.serve, seq.aggregate.serve) << threads;
    EXPECT_EQ(par.aggregate.move, seq.aggregate.move) << threads;
    ASSERT_EQ(par.perData.size(), seq.perData.size());
    for (std::size_t d = 0; d < seq.perData.size(); ++d) {
      EXPECT_EQ(par.perData[d].serve, seq.perData[d].serve);
      EXPECT_EQ(par.perData[d].move, seq.perData[d].move);
    }
  }
}

TEST(Evaluator, ParallelPropagatesIncompleteScheduleError) {
  const Grid g(4, 4);
  testutil::Rng rng(23);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 4, 4, 8, 12);
  const WindowedRefs refs(t, WindowPartition::evenCount(t.numSteps(), 4), g);
  const CostModel model(g);
  const DataSchedule incomplete(refs.numData(), refs.numWindows());
  EXPECT_THROW((void)evaluateSchedule(incomplete, refs, model, 4),
               std::invalid_argument);
}

}  // namespace
}  // namespace pimsched

#include "sim/execution_model.hpp"

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "core/scds.hpp"
#include "kernels/benchmarks.hpp"
#include "test_util.hpp"

namespace pimsched {
namespace {

TEST(ExecutionModel, AllLocalScheduleIsComputeOnly) {
  // Every datum placed exactly where it is referenced: zero comm time.
  const Grid g(2, 2);
  const CostModel model(g);
  ReferenceTrace t(DataSpace::singleSquare(2));
  for (StepId s = 0; s < 3; ++s) {
    for (DataId d = 0; d < 4; ++d) t.add(s, static_cast<ProcId>(d), d, 2);
  }
  t.finalize();
  const WindowedRefs refs(t, WindowPartition::perStep(3), g);
  DataSchedule s(4, 3);
  for (DataId d = 0; d < 4; ++d) s.setStatic(d, static_cast<ProcId>(d));

  const ExecutionReport r = estimateExecutionTime(s, refs, model);
  EXPECT_EQ(r.commTime, 0);
  // Per window, every proc computes weight 2 -> max 2; 3 windows.
  EXPECT_EQ(r.computeTime, 6);
  EXPECT_EQ(r.totalTime, 6);
}

TEST(ExecutionModel, RemotePlacementAddsCommTime) {
  const Grid g(1, 4);
  const CostModel model(g);
  ReferenceTrace t(DataSpace::singleSquare(1));
  t.add(0, 0, 0, 4);
  t.finalize();
  const WindowedRefs refs(t, WindowPartition::whole(1), g);
  DataSchedule s(1, 1);
  s.setStatic(0, 3);  // 3 hops away

  const ExecutionReport r = estimateExecutionTime(s, refs, model);
  EXPECT_EQ(r.computeTime, 4);
  EXPECT_EQ(r.commTime, 4 * 3);  // store-and-forward: volume x hops
  EXPECT_EQ(r.totalTime, 4 + 12);
}

TEST(ExecutionModel, OverlapTakesMax) {
  const Grid g(1, 4);
  const CostModel model(g);
  ReferenceTrace t(DataSpace::singleSquare(1));
  t.add(0, 0, 0, 4);
  t.finalize();
  const WindowedRefs refs(t, WindowPartition::whole(1), g);
  DataSchedule s(1, 1);
  s.setStatic(0, 3);

  ExecutionParams params;
  params.overlapComputeWithComm = true;
  const ExecutionReport r = estimateExecutionTime(s, refs, model, params);
  EXPECT_EQ(r.totalTime, 12);  // max(4, 12)
}

TEST(ExecutionModel, CutThroughIsNeverSlower) {
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(141);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 4, 4, 12, 30);
  const WindowedRefs refs(
      t, WindowPartition::evenCount(t.numSteps(), 4), g);
  const DataSchedule s = scheduleScds(refs, model);

  ExecutionParams snf;
  ExecutionParams ct;
  ct.switching = SwitchingMode::kCutThrough;
  EXPECT_LE(estimateExecutionTime(s, refs, model, ct).totalTime,
            estimateExecutionTime(s, refs, model, snf).totalTime);
}

TEST(ExecutionModel, ComputeTimeIsScheduleIndependent) {
  const Grid g(4, 4);
  const ReferenceTrace trace =
      makePaperBenchmark(PaperBenchmark::kLu, g, 8);
  PipelineConfig cfg;
  cfg.numWindows = static_cast<int>(trace.numSteps());
  const Experiment exp(trace, g, cfg);
  const ExecutionReport a = estimateExecutionTime(
      exp.schedule(Method::kRowWise), exp.refs(), exp.costModel());
  const ExecutionReport b = estimateExecutionTime(
      exp.schedule(Method::kGomcds), exp.refs(), exp.costModel());
  EXPECT_EQ(a.computeTime, b.computeTime);
  EXPECT_LT(b.commTime, a.commTime);
  EXPECT_LT(b.totalTime, a.totalTime);
}

TEST(ExecutionModel, PerWindowSumsToTotal) {
  const Grid g(4, 4);
  const ReferenceTrace trace =
      makePaperBenchmark(PaperBenchmark::kMatSquare, g, 8);
  PipelineConfig cfg;
  cfg.numWindows = 4;
  const Experiment exp(trace, g, cfg);
  const ExecutionReport r = estimateExecutionTime(
      exp.schedule(Method::kScds), exp.refs(), exp.costModel());
  std::int64_t sum = 0;
  for (const std::int64_t w : r.perWindow) sum += w;
  EXPECT_EQ(sum, r.totalTime);
  EXPECT_EQ(r.perWindow.size(), 4u);
}

TEST(ExecutionModel, RejectsBadInput) {
  const Grid g(2, 2);
  const CostModel model(g);
  testutil::Rng rng(142);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 2, 2, 4, 8);
  const WindowedRefs refs(
      t, WindowPartition::evenCount(t.numSteps(), 2), g);
  const DataSchedule wrong(refs.numData(), refs.numWindows() + 1);
  EXPECT_THROW((void)estimateExecutionTime(wrong, refs, model),
               std::invalid_argument);

  DataSchedule ok(refs.numData(), refs.numWindows());
  for (DataId d = 0; d < refs.numData(); ++d) ok.setStatic(d, 0);
  ExecutionParams bad;
  bad.cyclesPerAccess = -1.0;
  EXPECT_THROW((void)estimateExecutionTime(ok, refs, model, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace pimsched

#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "core/schedule_io.hpp"
#include "obs/obs.hpp"
#include "pim/grid.hpp"
#include "util/thread_pool.hpp"

namespace pimsched::serve {
namespace {

/// A small but non-trivial trace: every datum of an n x n array referenced
/// by a drifting processor across `steps` steps.
ReferenceTrace makeTrace(int n, int steps, int weightSeed = 1) {
  ReferenceTrace trace(DataSpace::singleSquare(n));
  const int numData = n * n;
  for (int s = 0; s < steps; ++s) {
    for (int d = 0; d < numData; ++d) {
      trace.add(s, (d + s) % 16, d, 1 + (d + s * weightSeed) % 3);
    }
  }
  trace.finalize();
  return trace;
}

JobRequest makeRequest(int n = 4, int steps = 6,
                       Method method = Method::kGomcds) {
  JobRequest request;
  request.trace = makeTrace(n, steps);
  request.config.numWindows = 3;
  request.method = method;
  return request;
}

/// Parks every worker of the shared pool until release(), so a job the
/// service has dispatched provably cannot start (or finish) while a test
/// arranges the queue behind it — deterministic, not timing-based. Each
/// gtest case runs in its own process, so holding the global pool here
/// cannot starve unrelated tests.
class PoolGate {
 public:
  PoolGate() {
    const unsigned workers = ThreadPool::global().workers();
    for (unsigned i = 0; i < workers; ++i) {
      ThreadPool::global().submit([this] {
        std::unique_lock<std::mutex> lock(mutex_);
        ++held_;
        cv_.notify_all();
        cv_.wait(lock, [&] { return released_; });
      });
    }
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock,
             [&] { return held_ == ThreadPool::global().workers(); });
  }

  ~PoolGate() { release(); }

  void release() {
    std::lock_guard<std::mutex> lock(mutex_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  unsigned held_ = 0;
  bool released_ = false;
};

TEST(JobDigest, ContentFieldsChangeItSchedulingKnobsDoNot) {
  const Digest base = jobDigest(makeRequest());
  EXPECT_EQ(jobDigest(makeRequest()), base);  // deterministic

  JobRequest method = makeRequest();
  method.method = Method::kScds;
  EXPECT_NE(jobDigest(method), base);

  JobRequest grid = makeRequest();
  grid.gridRows = 2;
  grid.gridCols = 8;
  EXPECT_NE(jobDigest(grid), base);

  JobRequest trace = makeRequest(4, 7);
  EXPECT_NE(jobDigest(trace), base);

  // Priority, deadline and thread count affect how a job runs, never what
  // it computes, so they must share the content address (and the cache).
  JobRequest knobs = makeRequest();
  knobs.priority = 9;
  knobs.deadlineMs = 1000;
  knobs.config.threads = 8;
  EXPECT_EQ(jobDigest(knobs), base);
}

TEST(SchedulingService, ResultMatchesDirectPipelineEvaluation) {
  const JobRequest request = makeRequest();
  SchedulingService service;
  const SubmitOutcome outcome = service.submit(request);
  ASSERT_TRUE(outcome.accepted) << outcome.reason;
  EXPECT_FALSE(outcome.cached);
  const auto result = service.result(outcome.id);
  ASSERT_NE(result, nullptr);

  // Experiment keeps references to the trace and grid, so both need to
  // outlive it.
  ReferenceTrace trace = request.trace;
  trace.finalize();
  const Grid grid(request.gridRows, request.gridCols);
  const Experiment exp(trace, grid, request.config);
  const EvalResult direct = exp.evaluate(request.method);
  EXPECT_EQ(result->eval.aggregate.serve, direct.aggregate.serve);
  EXPECT_EQ(result->eval.aggregate.move, direct.aggregate.move);
  EXPECT_FALSE(result->cacheHit);
  EXPECT_FALSE(result->scheduleText.empty());
  EXPECT_EQ(result->digest, jobDigest(request));
  EXPECT_GE(result->runNs, 0);
  EXPECT_GE(result->waitNs, 0);

  const auto status = service.status(outcome.id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kDone);
  EXPECT_TRUE(status->error.empty());
}

TEST(SchedulingService, ResubmitIsServedFromTheResultCache) {
  SchedulingService service;
  const SubmitOutcome first = service.submit(makeRequest());
  ASSERT_TRUE(first.accepted);
  const auto firstResult = service.result(first.id);
  ASSERT_NE(firstResult, nullptr);

  const SubmitOutcome second = service.submit(makeRequest());
  ASSERT_TRUE(second.accepted);
  EXPECT_TRUE(second.cached);
  EXPECT_NE(second.id, first.id);  // a fresh job id, answered instantly
  const auto cached = service.result(second.id, /*wait=*/false);
  ASSERT_NE(cached, nullptr);
  EXPECT_TRUE(cached->cacheHit);
  EXPECT_EQ(cached->waitNs, 0);
  EXPECT_EQ(cached->runNs, 0);
  // The cached answer is the same answer.
  EXPECT_EQ(cached->eval.aggregate.total(),
            firstResult->eval.aggregate.total());
  EXPECT_EQ(cached->scheduleText, firstResult->scheduleText);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cacheHits, 1);
  EXPECT_EQ(stats.cacheMisses, 1);
  EXPECT_EQ(stats.completed, 2);
  EXPECT_EQ(stats.cacheEntries, 1u);
}

TEST(SchedulingService, BackpressureRejectsWithAReason) {
  SchedulingService::Config config;
  config.maxQueueDepth = 0;  // nothing may wait in the queue
  config.cacheEnabled = false;
  SchedulingService service(config);
  const SubmitOutcome outcome = service.submit(makeRequest());
  EXPECT_FALSE(outcome.accepted);
  EXPECT_EQ(outcome.id, -1);
  EXPECT_NE(outcome.reason.find("queue full"), std::string::npos)
      << outcome.reason;
  EXPECT_EQ(service.stats().rejected, 1);
}

TEST(SchedulingService, HigherPriorityJobsJumpTheQueue) {
  SchedulingService::Config config;
  config.concurrency = 1;
  config.cacheEnabled = false;
  SchedulingService service(config);

  // Occupy the single slot, then queue a low- and a high-priority job
  // while the pool gate guarantees the blocker has not finished.
  PoolGate gate;
  const SubmitOutcome blocker = service.submit(makeRequest(4, 8));
  ASSERT_TRUE(blocker.accepted);
  JobRequest low = makeRequest(4, 6);
  low.priority = 0;
  JobRequest high = makeRequest(4, 7);  // distinct content
  high.priority = 10;
  const SubmitOutcome lowOut = service.submit(low);
  const SubmitOutcome highOut = service.submit(high);
  ASSERT_TRUE(lowOut.accepted);
  ASSERT_TRUE(highOut.accepted);
  EXPECT_EQ(service.status(lowOut.id)->state, JobState::kQueued);
  EXPECT_EQ(service.status(highOut.id)->state, JobState::kQueued);
  gate.release();

  const auto lowResult = service.result(lowOut.id);
  const auto highResult = service.result(highOut.id);
  ASSERT_NE(lowResult, nullptr);
  ASSERT_NE(highResult, nullptr);
  // The high-priority job was dequeued first, so the low-priority one also
  // waited out its run time.
  EXPECT_GT(lowResult->waitNs, highResult->waitNs);
}

TEST(SchedulingService, ExpiredDeadlineIsReportedNotRun) {
  SchedulingService::Config config;
  config.concurrency = 1;
  config.cacheEnabled = false;
  SchedulingService service(config);

  PoolGate gate;
  const SubmitOutcome blocker = service.submit(makeRequest(4, 8));
  ASSERT_TRUE(blocker.accepted);
  JobRequest doomed = makeRequest();
  doomed.deadlineMs = 0;  // already past by the time the worker frees up
  const SubmitOutcome outcome = service.submit(doomed);
  ASSERT_TRUE(outcome.accepted);  // accepted, but expires at dequeue
  gate.release();

  EXPECT_EQ(service.result(outcome.id), nullptr);
  const auto status = service.status(outcome.id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kExpired);
  EXPECT_EQ(service.stats().expired, 1);
  // The blocker itself is unaffected.
  EXPECT_NE(service.result(blocker.id), nullptr);
}

TEST(SchedulingService, CancelHitsQueuedJobsOnly) {
  SchedulingService::Config config;
  config.concurrency = 1;
  config.cacheEnabled = false;
  SchedulingService service(config);

  PoolGate gate;
  const SubmitOutcome blocker = service.submit(makeRequest(4, 8));
  const SubmitOutcome queued = service.submit(makeRequest());
  ASSERT_TRUE(blocker.accepted);
  ASSERT_TRUE(queued.accepted);

  EXPECT_TRUE(service.cancel(queued.id));
  EXPECT_FALSE(service.cancel(queued.id));  // already terminal
  EXPECT_FALSE(service.cancel(9999));       // unknown id
  const auto status = service.status(queued.id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kCancelled);
  EXPECT_EQ(service.result(queued.id), nullptr);
  EXPECT_EQ(service.stats().cancelled, 1);

  // The dispatched blocker cannot be cancelled and still completes.
  EXPECT_FALSE(service.cancel(blocker.id));
  gate.release();
  EXPECT_NE(service.result(blocker.id), nullptr);
}

TEST(SchedulingService, PipelineFailureBecomesAFailedJobWithDetail) {
  JobRequest bad;
  bad.trace = ReferenceTrace(DataSpace::singleSquare(2));
  bad.trace.finalize();  // zero steps: the pipeline rejects it
  SchedulingService service;
  const SubmitOutcome outcome = service.submit(bad);
  ASSERT_TRUE(outcome.accepted);
  EXPECT_EQ(service.result(outcome.id), nullptr);
  const auto status = service.status(outcome.id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kFailed);
  EXPECT_FALSE(status->error.empty());
  EXPECT_EQ(status->errorKind, "invalid");
  EXPECT_EQ(status->attempts, 1);  // invalid requests are never retried
  EXPECT_EQ(service.stats().failed, 1);
}

TEST(SchedulingService, FaultedJobCompletesWithAFaultCleanSchedule) {
  JobRequest request = makeRequest();
  request.faults = {"proc:5", "link:0-1"};
  SchedulingService service;
  const SubmitOutcome outcome = service.submit(request);
  ASSERT_TRUE(outcome.accepted) << outcome.reason;
  const auto result = service.result(outcome.id);
  ASSERT_NE(result, nullptr);
  const auto status = service.status(outcome.id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kDone);
  EXPECT_TRUE(status->errorKind.empty());
  // The schedule must not place anything on the dead processor.
  std::istringstream is(result->scheduleText);
  const DataSchedule schedule = loadSchedule(is);
  for (DataId d = 0; d < schedule.numData(); ++d) {
    for (WindowId w = 0; w < schedule.numWindows(); ++w) {
      EXPECT_NE(schedule.center(d, w), 5);
    }
  }
}

TEST(JobDigest, FaultSpecsAreContentFields) {
  const JobRequest base = makeRequest();
  JobRequest faulted = makeRequest();
  faulted.faults = {"proc:5"};
  EXPECT_NE(jobDigest(faulted), jobDigest(base));
  // Splitting one spec across two must not alias with a differently-split
  // request (the digest length-prefixes each spec).
  JobRequest joined = makeRequest();
  joined.faults = {"proc:5link:0-1"};
  JobRequest split = makeRequest();
  split.faults = {"proc:5", "link:0-1"};
  EXPECT_NE(jobDigest(joined), jobDigest(split));

  // No cache aliasing: the healthy result must not answer the faulted
  // request.
  SchedulingService service;
  ASSERT_NE(service.result(service.submit(base).id), nullptr);
  const SubmitOutcome second = service.submit(faulted);
  ASSERT_TRUE(second.accepted);
  EXPECT_FALSE(second.cached);
}

TEST(SchedulingService, UnreachableFaultsFailWithKindAndNoRetry) {
  // makeTrace references every processor of the 4x4 grid; killing row 1
  // partitions it, so some datum is referenced from both sides of the cut.
  JobRequest request = makeRequest();
  request.faults = {"row:1"};
  SchedulingService service;
  const SubmitOutcome outcome = service.submit(request);
  ASSERT_TRUE(outcome.accepted);
  EXPECT_EQ(service.result(outcome.id), nullptr);
  const auto status = service.status(outcome.id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kFailed);
  EXPECT_EQ(status->errorKind, "unreachable");
  EXPECT_EQ(status->attempts, 1);  // deterministic failures are not retried
  EXPECT_FALSE(status->error.empty());
}

TEST(SchedulingService, TransientWorkerFailureIsRetriedOnce) {
  std::atomic<int> attemptsSeen{0};
  SchedulingService::Config config;
  config.onJobAttempt = [&](int attempt) {
    ++attemptsSeen;
    if (attempt == 0) throw std::runtime_error("injected transient fault");
  };
  SchedulingService service(config);
  const SubmitOutcome outcome = service.submit(makeRequest());
  ASSERT_TRUE(outcome.accepted);
  const auto result = service.result(outcome.id);
  ASSERT_NE(result, nullptr);  // the retry succeeded
  const auto status = service.status(outcome.id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kDone);
  EXPECT_TRUE(status->errorKind.empty());
  EXPECT_EQ(status->attempts, 2);
  EXPECT_EQ(attemptsSeen.load(), 2);
}

TEST(SchedulingService, SecondTransientFailureIsFinal) {
  SchedulingService::Config config;
  config.onJobAttempt = [](int) {
    throw std::runtime_error("worker keeps crashing");
  };
  SchedulingService service(config);
  const SubmitOutcome outcome = service.submit(makeRequest());
  ASSERT_TRUE(outcome.accepted);
  EXPECT_EQ(service.result(outcome.id), nullptr);
  const auto status = service.status(outcome.id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kFailed);
  EXPECT_EQ(status->errorKind, "internal");
  EXPECT_EQ(status->attempts, 2);  // first run + exactly one retry
  EXPECT_NE(status->error.find("worker keeps crashing"), std::string::npos);
  EXPECT_EQ(service.stats().failed, 1);
}

TEST(SchedulingService, UnknownIdsAreDistinguishable) {
  SchedulingService service;
  EXPECT_FALSE(service.status(1).has_value());
  EXPECT_EQ(service.result(1, /*wait=*/true), nullptr);
}

TEST(SchedulingService, DrainFinishesEverythingAndThenRejects) {
  SchedulingService::Config config;
  config.concurrency = 2;
  SchedulingService service(config);
  std::vector<JobId> ids;
  for (int i = 0; i < 6; ++i) {
    const SubmitOutcome outcome = service.submit(makeRequest(4, 5 + i));
    ASSERT_TRUE(outcome.accepted);
    ids.push_back(outcome.id);
  }
  service.drain();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queueDepth, 0u);
  EXPECT_EQ(stats.running, 0u);
  for (const JobId id : ids) {
    EXPECT_EQ(service.status(id)->state, JobState::kDone) << "id " << id;
  }
  const SubmitOutcome late = service.submit(makeRequest());
  EXPECT_FALSE(late.accepted);
  EXPECT_NE(late.reason.find("draining"), std::string::npos) << late.reason;
  service.drain();  // idempotent
}

TEST(SchedulingService, CacheEvictsOldestEntryPastTheBound) {
  SchedulingService::Config config;
  config.maxCacheEntries = 1;
  SchedulingService service(config);
  const JobRequest a = makeRequest(4, 5);
  const JobRequest b = makeRequest(4, 6);
  ASSERT_NE(service.result(service.submit(a).id), nullptr);
  ASSERT_NE(service.result(service.submit(b).id), nullptr);  // evicts a
  EXPECT_EQ(service.stats().cacheEntries, 1u);
  const SubmitOutcome aAgain = service.submit(a);
  EXPECT_FALSE(aAgain.cached);  // a was evicted, so it re-runs...
  ASSERT_NE(service.result(aAgain.id), nullptr);
  EXPECT_EQ(service.stats().cacheEntries, 1u);
  EXPECT_TRUE(service.submit(a).cached);    // ...and holds the single slot
  EXPECT_FALSE(service.submit(b).cached);   // ...which in turn evicted b
}

TEST(SchedulingService, DisabledCacheNeverServesCachedResults) {
  SchedulingService::Config config;
  config.cacheEnabled = false;
  SchedulingService service(config);
  ASSERT_NE(service.result(service.submit(makeRequest()).id), nullptr);
  const SubmitOutcome second = service.submit(makeRequest());
  ASSERT_TRUE(second.accepted);
  EXPECT_FALSE(second.cached);
  const auto result = service.result(second.id);
  ASSERT_NE(result, nullptr);
  EXPECT_FALSE(result->cacheHit);
  EXPECT_EQ(service.stats().cacheHits, 0);
  EXPECT_EQ(service.stats().cacheEntries, 0u);
}

TEST(SchedulingService, HundredsOfConcurrentSubmissionsAllGetAnAnswer) {
  // The e2e acceptance bar: >= 100 concurrent submissions of mixed
  // kernels, every one either rejected with a reason or driven to a
  // terminal state — nothing dropped without a reply.
  SchedulingService::Config config;
  config.concurrency = 4;
  config.maxQueueDepth = 16;  // small enough that backpressure triggers
  SchedulingService service(config);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 15;
  const Method methods[] = {Method::kGomcds, Method::kScds, Method::kLomcds,
                            Method::kRowWise};
  std::vector<std::vector<SubmitOutcome>> outcomes(kThreads);
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        JobRequest request =
            makeRequest(3 + (t + i) % 3, 4 + i % 5, methods[(t + i) % 4]);
        request.priority = i % 3;
        outcomes[static_cast<std::size_t>(t)].push_back(
            service.submit(request));
      }
    });
  }
  for (std::thread& s : submitters) s.join();

  int accepted = 0, rejected = 0;
  for (const auto& perThread : outcomes) {
    ASSERT_EQ(perThread.size(), static_cast<std::size_t>(kPerThread));
    for (const SubmitOutcome& outcome : perThread) {
      if (outcome.accepted) {
        ++accepted;
        (void)service.result(outcome.id);  // wait for terminal state
        const auto status = service.status(outcome.id);
        ASSERT_TRUE(status.has_value());
        EXPECT_TRUE(isTerminal(status->state));
        EXPECT_NE(status->state, JobState::kCancelled);
        EXPECT_NE(status->state, JobState::kExpired);
      } else {
        ++rejected;
        EXPECT_FALSE(outcome.reason.empty());
      }
    }
  }
  EXPECT_EQ(accepted + rejected, kThreads * kPerThread);
  EXPECT_GE(accepted, 1);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.accepted, accepted);
  EXPECT_EQ(stats.rejected, rejected);
  EXPECT_EQ(stats.completed + stats.failed, accepted);
  EXPECT_EQ(stats.failed, 0);
  service.drain();
}

TEST(SchedulingService, CacheHitPromotesEntryToMostRecentlyUsed) {
  // True-LRU pin: a hit must save an entry from eviction. Under the old
  // FIFO order, `a` would be the next victim regardless of the hit.
  SchedulingService::Config config;
  config.maxCacheEntries = 2;
  SchedulingService service(config);
  const JobRequest a = makeRequest(4, 5);
  const JobRequest b = makeRequest(4, 6);
  const JobRequest c = makeRequest(4, 7);
  ASSERT_NE(service.result(service.submit(a).id), nullptr);
  ASSERT_NE(service.result(service.submit(b).id), nullptr);  // order [a, b]
  EXPECT_TRUE(service.submit(a).cached);  // hit promotes a -> [b, a]
  ASSERT_NE(service.result(service.submit(c).id), nullptr);  // evicts b
  EXPECT_EQ(service.stats().cacheEntries, 2u);
  EXPECT_TRUE(service.submit(a).cached);   // the hit saved a
  EXPECT_TRUE(service.submit(c).cached);
  EXPECT_FALSE(service.submit(b).cached);  // b paid for a's survival
}

TEST(SchedulingService, RepeatedCacheHitsNeverDuplicateRecencyEntries) {
  // If hits appended duplicate recency entries, the first eviction after
  // five hits on `a` would pop a stale duplicate of `a` and drop it from
  // the cache even though it is the most recently used key.
  SchedulingService::Config config;
  config.maxCacheEntries = 2;
  SchedulingService service(config);
  const JobRequest a = makeRequest(4, 5);
  const JobRequest b = makeRequest(4, 6);
  ASSERT_NE(service.result(service.submit(a).id), nullptr);
  ASSERT_NE(service.result(service.submit(b).id), nullptr);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(service.submit(a).cached);
    EXPECT_EQ(service.stats().cacheEntries, 2u);  // never grows past bound
  }
  const JobRequest c = makeRequest(4, 7);
  ASSERT_NE(service.result(service.submit(c).id), nullptr);  // evicts b only
  EXPECT_EQ(service.stats().cacheEntries, 2u);
  EXPECT_TRUE(service.submit(a).cached);
  EXPECT_TRUE(service.submit(c).cached);
  EXPECT_FALSE(service.submit(b).cached);
}

TEST(SchedulingService, ConcurrentIdenticalSubmitsCoalesceToOneRun) {
  // K identical submits while the first is still in flight: exactly one
  // pipeline run, every waiter fanned the same result object.
  std::atomic<int> runs{0};
  SchedulingService::Config config;
  config.concurrency = 1;
  config.onJobAttempt = [&](int) { ++runs; };
  SchedulingService service(config);
#ifndef PIMSCHED_NO_OBS
  const std::int64_t coalescedBefore =
      obs::Registry::instance().counterValue("serve.jobs.coalesced");
#endif

  PoolGate gate;
  const SubmitOutcome blocker = service.submit(makeRequest(4, 8));
  ASSERT_TRUE(blocker.accepted);
  const SubmitOutcome leader = service.submit(makeRequest());
  ASSERT_TRUE(leader.accepted);
  EXPECT_FALSE(leader.cached);
  constexpr int kFollowers = 3;
  std::vector<JobId> followers;
  for (int i = 0; i < kFollowers; ++i) {
    const SubmitOutcome out = service.submit(makeRequest());
    ASSERT_TRUE(out.accepted);
    EXPECT_FALSE(out.cached);  // attached to the in-flight leader instead
    EXPECT_EQ(service.status(out.id)->state, JobState::kQueued);
    followers.push_back(out.id);
  }
  // Followers never entered the queue: only blocker (running) + leader.
  EXPECT_EQ(service.stats().queueDepth, 1u);
  gate.release();

  const auto leaderResult = service.result(leader.id);
  ASSERT_NE(leaderResult, nullptr);
  for (const JobId id : followers) {
    const auto result = service.result(id);
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(result.get(), leaderResult.get());  // the same object, shared
    EXPECT_EQ(service.status(id)->state, JobState::kDone);
  }
  EXPECT_EQ(runs.load(), 2);  // blocker + leader; followers never ran
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.coalesced, kFollowers);
  EXPECT_EQ(stats.completed, 2 + kFollowers);
#ifndef PIMSCHED_NO_OBS
  EXPECT_EQ(obs::Registry::instance().counterValue("serve.jobs.coalesced"),
            coalescedBefore + kFollowers);
#endif
}

TEST(SchedulingService, IdenticalSubmitStormRunsThePipelineOnce) {
  // Races submit against completion from real threads: every submit either
  // leads, coalesces, or hits the cache — the pipeline runs exactly once.
  std::atomic<int> runs{0};
  SchedulingService::Config config;
  config.onJobAttempt = [&](int) { ++runs; };
  SchedulingService service(config);

  constexpr int kThreads = 8;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<Cost> totals(kThreads, -1);
  std::vector<std::thread> storm;
  storm.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    storm.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      const SubmitOutcome out = service.submit(makeRequest());
      ASSERT_TRUE(out.accepted);
      const auto result = service.result(out.id);
      ASSERT_NE(result, nullptr);
      totals[static_cast<std::size_t>(t)] = result->eval.aggregate.total();
    });
  }
  while (ready.load() < kThreads) std::this_thread::yield();
  go.store(true, std::memory_order_release);
  for (std::thread& s : storm) s.join();

  EXPECT_EQ(runs.load(), 1);
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(totals[t], totals[0]);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, kThreads);
  // All K submits are accounted for: 1 leader + coalesced + late cache hits.
  EXPECT_EQ(1 + stats.coalesced + stats.cacheHits, kThreads);
}

TEST(SchedulingService, CancelledLeaderPromotesAFollower) {
  // Cancelling a queued leader must not strand its followers: the first
  // follower is promoted to a queued job and still produces the result.
  SchedulingService::Config config;
  config.concurrency = 1;
  config.cacheEnabled = false;
  SchedulingService service(config);

  PoolGate gate;
  const SubmitOutcome blocker = service.submit(makeRequest(4, 8));
  ASSERT_TRUE(blocker.accepted);
  const SubmitOutcome leader = service.submit(makeRequest());
  const SubmitOutcome follower = service.submit(makeRequest());
  ASSERT_TRUE(leader.accepted);
  ASSERT_TRUE(follower.accepted);

  EXPECT_TRUE(service.cancel(leader.id));
  EXPECT_EQ(service.status(leader.id)->state, JobState::kCancelled);
  EXPECT_EQ(service.status(follower.id)->state, JobState::kQueued);
  gate.release();

  EXPECT_EQ(service.result(leader.id), nullptr);
  const auto result = service.result(follower.id);
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(service.status(follower.id)->state, JobState::kDone);
  EXPECT_EQ(service.stats().cancelled, 1);
}

TEST(SchedulingService, CancelDetachesAFollowerWithoutKillingTheLeader) {
  SchedulingService::Config config;
  config.concurrency = 1;
  config.cacheEnabled = false;
  SchedulingService service(config);

  PoolGate gate;
  const SubmitOutcome blocker = service.submit(makeRequest(4, 8));
  ASSERT_TRUE(blocker.accepted);
  const SubmitOutcome leader = service.submit(makeRequest());
  const SubmitOutcome follower = service.submit(makeRequest());
  ASSERT_TRUE(leader.accepted);
  ASSERT_TRUE(follower.accepted);

  EXPECT_TRUE(service.cancel(follower.id));
  EXPECT_EQ(service.status(follower.id)->state, JobState::kCancelled);
  EXPECT_EQ(service.status(leader.id)->state, JobState::kQueued);
  gate.release();

  EXPECT_EQ(service.result(follower.id), nullptr);
  ASSERT_NE(service.result(leader.id), nullptr);
  EXPECT_EQ(service.status(leader.id)->state, JobState::kDone);
}

}  // namespace
}  // namespace pimsched::serve

#include "core/gomcds.hpp"

#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "core/exhaustive.hpp"
#include "core/lomcds.hpp"
#include "core/pipeline.hpp"
#include "core/scds.hpp"
#include "kernels/benchmarks.hpp"
#include "obs/obs.hpp"
#include "test_util.hpp"

namespace pimsched {
namespace {

WindowedRefs refsFromTrace(const ReferenceTrace& t, const Grid& g,
                           int windows) {
  return WindowedRefs(t, WindowPartition::evenCount(t.numSteps(), windows),
                      g);
}

TEST(Gomcds, StaysPutWhenMovementDominates) {
  const Grid g(1, 4);
  CostParams params;
  params.moveVolume = 100;  // migrating is prohibitively expensive
  const CostModel model(g, params);
  ReferenceTrace t(DataSpace::singleSquare(1));
  t.add(0, 0, 0, 1);
  t.add(1, 3, 0, 1);
  t.finalize();
  const WindowedRefs refs = refsFromTrace(t, g, 2);
  const DataSchedule s = scheduleGomcds(refs, model);
  EXPECT_EQ(s.center(0, 0), s.center(0, 1));
}

TEST(Gomcds, MovesWhenReferencesDominate) {
  const Grid g(1, 4);
  const CostModel model(g);  // moveVolume 1
  ReferenceTrace t(DataSpace::singleSquare(1));
  t.add(0, 0, 0, 10);
  t.add(1, 3, 0, 10);
  t.finalize();
  const WindowedRefs refs = refsFromTrace(t, g, 2);
  const DataSchedule s = scheduleGomcds(refs, model);
  EXPECT_EQ(s.center(0, 0), 0);
  EXPECT_EQ(s.center(0, 1), 3);
}

TEST(Gomcds, NeverWorseThanLomcdsOrScds) {
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(51);
  for (int trial = 0; trial < 8; ++trial) {
    const ReferenceTrace t = testutil::randomTrace(rng, g, 4, 4, 16, 25);
    const WindowedRefs refs = refsFromTrace(t, g, 4);
    const Cost go =
        evaluateSchedule(scheduleGomcds(refs, model), refs, model)
            .aggregate.total();
    const Cost lo =
        evaluateSchedule(scheduleLomcds(refs, model), refs, model)
            .aggregate.total();
    const Cost sc =
        evaluateSchedule(scheduleScds(refs, model), refs, model)
            .aggregate.total();
    EXPECT_LE(go, lo);
    EXPECT_LE(go, sc);
  }
}

TEST(Gomcds, MatchesExhaustiveOptimumUncapacitated) {
  // DESIGN.md invariant 4: on small instances GOMCDS equals the brute
  // force optimum per datum.
  const Grid g(2, 3);
  const CostModel model(g);
  testutil::Rng rng(52);
  for (int trial = 0; trial < 6; ++trial) {
    const ReferenceTrace t = testutil::randomTrace(rng, g, 2, 2, 8, 10);
    const WindowedRefs refs = refsFromTrace(t, g, 4);
    const EvalResult go =
        evaluateSchedule(scheduleGomcds(refs, model), refs, model);
    const EvalResult ex =
        evaluateSchedule(scheduleExhaustive(refs, model), refs, model);
    EXPECT_EQ(go.aggregate.total(), ex.aggregate.total());
  }
}

TEST(Gomcds, NaiveEngineProducesIdenticalSchedule) {
  const Grid g(3, 3);
  const CostModel model(g);
  testutil::Rng rng(53);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 3, 3, 12, 18);
  const WindowedRefs refs = refsFromTrace(t, g, 5);
  SchedulerOptions opts;
  opts.capacity = 4;
  const DataSchedule fast =
      scheduleGomcds(refs, model, opts, GomcdsEngine::kChamfer);
  const DataSchedule naive =
      scheduleGomcds(refs, model, opts, GomcdsEngine::kNaive);
  for (DataId d = 0; d < refs.numData(); ++d) {
    for (WindowId w = 0; w < refs.numWindows(); ++w) {
      ASSERT_EQ(fast.center(d, w), naive.center(d, w));
    }
  }
}

TEST(Gomcds, CapacityRespectedPerWindow) {
  const Grid g(2, 2);
  const CostModel model(g);
  testutil::Rng rng(54);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 3, 3, 8, 20);
  const WindowedRefs refs = refsFromTrace(t, g, 4);
  SchedulerOptions opts;
  opts.capacity = 3;
  const DataSchedule s = scheduleGomcds(refs, model, opts);
  EXPECT_TRUE(s.complete());
  EXPECT_TRUE(s.respectsCapacity(g, 3));
}

TEST(Gomcds, CapacityCannotImproveCost) {
  // Adding a capacity constraint can only increase the optimal cost.
  const Grid g(3, 3);
  const CostModel model(g);
  testutil::Rng rng(55);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 3, 3, 10, 20);
  const WindowedRefs refs = refsFromTrace(t, g, 3);
  const Cost unconstrained =
      evaluateSchedule(scheduleGomcds(refs, model), refs, model)
          .aggregate.total();
  SchedulerOptions opts;
  opts.capacity = 2;
  const Cost constrained =
      evaluateSchedule(scheduleGomcds(refs, model, opts), refs, model)
          .aggregate.total();
  EXPECT_GE(constrained, unconstrained);
}

TEST(Gomcds, ExactFitCapacityAccountingStaysConsistent) {
  // Regression for the tryPlace-result check: at the tightest feasible
  // capacity (data exactly fill the array) every slot is claimed, so any
  // drift between the solver's view and the occupancy maps would surface
  // as the scheduler's internal logic_error. A clean run proves the two
  // stay in lock-step.
  const Grid g(2, 2);
  const CostModel model(g);
  testutil::Rng rng(57);
  for (int trial = 0; trial < 3; ++trial) {
    const ReferenceTrace t = testutil::randomTrace(rng, g, 2, 2, 4, 16);
    const WindowedRefs refs = refsFromTrace(t, g, 3);
    SchedulerOptions opts;
    opts.capacity = 1;  // 4 data on 4 processors: exact fit
    const DataSchedule s = scheduleGomcds(refs, model, opts);
    EXPECT_TRUE(s.complete());
    EXPECT_TRUE(s.respectsCapacity(g, 1));
  }
}

TEST(Gomcds, InfeasibleCapacityThrows) {
  const Grid g(1, 2);
  const CostModel model(g);
  ReferenceTrace t(DataSpace::singleSquare(2));
  t.add(0, 0, 0, 1);
  t.finalize();
  const WindowedRefs refs = refsFromTrace(t, g, 1);
  SchedulerOptions opts;
  opts.capacity = 1;
  EXPECT_THROW(scheduleGomcds(refs, model, opts), std::runtime_error);
}

void expectIdenticalSchedules(const DataSchedule& a, const DataSchedule& b,
                              const char* what) {
  ASSERT_EQ(a.numData(), b.numData());
  ASSERT_EQ(a.numWindows(), b.numWindows());
  for (DataId d = 0; d < a.numData(); ++d) {
    for (WindowId w = 0; w < a.numWindows(); ++w) {
      ASSERT_EQ(a.center(d, w), b.center(d, w))
          << what << ": datum " << d << " window " << w;
    }
  }
}

TEST(Gomcds, DedupProducesIdenticalSchedulesOnMatmul) {
  // Matmul rows share reference strings, so the dedup layer collapses them
  // into equivalence classes; the schedule must stay bit-identical to a
  // run with dedup disabled, with and without capacity pressure, for both
  // the sequential and the parallel engine.
  const Grid g(4, 4);
  const ReferenceTrace t =
      makePaperBenchmark(PaperBenchmark::kMatSquare, g, 8);
  PipelineConfig cfg;
  cfg.numWindows = 8;
  const Experiment exp(t, g, cfg);
  for (const std::int64_t capacity : {std::int64_t{-1}, exp.capacity()}) {
    SchedulerOptions on{capacity, cfg.order};
    SchedulerOptions off = on;
    off.dedup = false;
    const DataSchedule withDedup =
        scheduleGomcds(exp.refs(), exp.costModel(), on);
    const DataSchedule without =
        scheduleGomcds(exp.refs(), exp.costModel(), off);
    expectIdenticalSchedules(withDedup, without,
                             capacity < 0 ? "uncapacitated" : "capacitated");
    const DataSchedule parallel =
        scheduleGomcdsParallel(exp.refs(), exp.costModel(), on, 4);
    expectIdenticalSchedules(withDedup, parallel,
                             capacity < 0 ? "parallel uncap" : "parallel cap");
  }
}

#ifdef PIMSCHED_NO_OBS
#define PIMSCHED_OBS_TEST_GUARD() \
  GTEST_SKIP() << "instrumentation compiled out (PIMSCHED_NO_OBS)"
#else
#define PIMSCHED_OBS_TEST_GUARD() \
  do {                            \
  } while (0)
#endif

TEST(Gomcds, DedupCountersTrackClassesAndTransTableBuiltOnce) {
  PIMSCHED_OBS_TEST_GUARD();
  const Grid g(4, 4);
  const ReferenceTrace t =
      makePaperBenchmark(PaperBenchmark::kMatSquare, g, 8);
  PipelineConfig cfg;
  cfg.numWindows = 8;
  const Experiment exp(t, g, cfg);

  obs::Registry& registry = obs::Registry::instance();
  registry.reset();
  (void)scheduleGomcds(exp.refs(), exp.costModel());
  const std::int64_t classes =
      registry.counterValue("gomcds.dedup.classes");
  const std::int64_t deduped = registry.counterValue("gomcds.dedup.data");
  EXPECT_GT(classes, 1);
  EXPECT_LT(classes, exp.refs().numData());  // matmul rows really collapse
  EXPECT_EQ(classes + deduped, exp.refs().numData());
  // Static forbidden set: one flat solve per class, not per datum.
  EXPECT_EQ(registry.counterValue("gomcds.flat.solves"), classes);

  // The naive engine materializes the transition matrix exactly once per
  // call — the per-datum transition-lambda path is gone.
  registry.reset();
  (void)scheduleGomcds(exp.refs(), exp.costModel(), SchedulerOptions{},
                       GomcdsEngine::kNaive);
  EXPECT_EQ(registry.counterValue("gomcds.trans_table.builds"), 1);
  registry.reset();
}

TEST(Gomcds, ZeroMoveVolumeDegeneratesToLomcdsServeCost) {
  // With free movement GOMCDS serves every window at its local optimum.
  const Grid g(3, 3);
  CostParams params;
  params.moveVolume = 0;
  const CostModel model(g, params);
  testutil::Rng rng(56);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 3, 3, 9, 15);
  const WindowedRefs refs = refsFromTrace(t, g, 3);
  const EvalResult go =
      evaluateSchedule(scheduleGomcds(refs, model), refs, model);
  const EvalResult lo =
      evaluateSchedule(scheduleLomcds(refs, model), refs, model);
  EXPECT_EQ(go.aggregate.serve, lo.aggregate.serve);
  EXPECT_EQ(go.aggregate.move, 0);
}

}  // namespace
}  // namespace pimsched

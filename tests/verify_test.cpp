#include "core/verify.hpp"

#include <gtest/gtest.h>

#include "core/gomcds.hpp"
#include "core/lomcds.hpp"
#include "test_util.hpp"

namespace pimsched {
namespace {

TEST(VerifySchedule, CleanScheduleHasNoIssues) {
  const Grid g(2, 2);
  DataSchedule s(2, 2);
  s.setStatic(0, 0);
  s.setStatic(1, 3);
  const VerifyReport r = verifySchedule(s, g, 1);
  EXPECT_TRUE(r.ok());
}

TEST(VerifySchedule, ReportsIncompleteCells) {
  const Grid g(2, 2);
  DataSchedule s(2, 2);
  s.setStatic(0, 0);  // datum 1 unset
  const VerifyReport r = verifySchedule(s, g, -1);
  ASSERT_EQ(r.issues.size(), 2u);  // two windows of datum 1
  EXPECT_EQ(r.issues[0].kind, ScheduleIssue::Kind::kIncompleteCell);
  EXPECT_EQ(r.issues[0].data, 1);
}

TEST(VerifySchedule, ReportsInvalidProcessors) {
  const Grid g(2, 2);
  DataSchedule s(1, 1);
  s.setCenter(0, 0, 99);
  const VerifyReport r = verifySchedule(s, g, -1);
  ASSERT_EQ(r.issues.size(), 1u);
  EXPECT_EQ(r.issues[0].kind, ScheduleIssue::Kind::kInvalidProcessor);
  EXPECT_EQ(r.issues[0].proc, 99);
}

TEST(VerifySchedule, ReportsCapacityViolationsPerWindow) {
  const Grid g(2, 2);
  DataSchedule s(3, 2);
  // Window 0: all three on proc 1 (violates capacity 2); window 1 spread.
  for (DataId d = 0; d < 3; ++d) s.setCenter(d, 0, 1);
  s.setCenter(0, 1, 0);
  s.setCenter(1, 1, 1);
  s.setCenter(2, 1, 2);
  const VerifyReport r = verifySchedule(s, g, 2);
  ASSERT_EQ(r.issues.size(), 1u);
  EXPECT_EQ(r.issues[0].kind, ScheduleIssue::Kind::kCapacityExceeded);
  EXPECT_EQ(r.issues[0].window, 0);
  EXPECT_EQ(r.issues[0].proc, 1);
}

TEST(VerifySchedule, SchedulersAlwaysVerifyClean) {
  const Grid g(3, 3);
  const CostModel model(g);
  testutil::Rng rng(181);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 3, 3, 8, 20);
  const WindowedRefs refs(
      t, WindowPartition::evenCount(t.numSteps(), 4), g);
  SchedulerOptions opts;
  opts.capacity = 2;
  EXPECT_TRUE(
      verifySchedule(scheduleGomcds(refs, model, opts), g, 2).ok());
  EXPECT_TRUE(
      verifySchedule(scheduleLomcds(refs, model, opts), g, 2).ok());
}

TEST(DiffSchedules, IdenticalSchedulesDiffZero) {
  DataSchedule a(2, 3);
  a.setStatic(0, 1);
  a.setStatic(1, 2);
  const ScheduleDiff d = diffSchedules(a, a);
  EXPECT_EQ(d.differingCells, 0);
  EXPECT_EQ(d.dataAffected, 0);
  EXPECT_EQ(d.migrationsA, d.migrationsB);
}

TEST(DiffSchedules, CountsCellsAndMigrations) {
  DataSchedule a(2, 3);
  a.setStatic(0, 1);
  a.setStatic(1, 2);
  DataSchedule b = a;
  b.setCenter(0, 1, 5);  // one differing cell, adds 2 migrations to B
  const ScheduleDiff d = diffSchedules(a, b);
  EXPECT_EQ(d.differingCells, 1);
  EXPECT_EQ(d.dataAffected, 1);
  EXPECT_EQ(d.migrationsA, 0);
  EXPECT_EQ(d.migrationsB, 2);
}

TEST(DiffSchedules, RejectsShapeMismatch) {
  DataSchedule a(1, 2);
  DataSchedule b(2, 2);
  EXPECT_THROW((void)diffSchedules(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace pimsched

#include "serve/server.hpp"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "serve/json.hpp"
#include "trace/trace_io.hpp"

namespace pimsched::serve {
namespace {

std::string uniqueSocketPath(const std::string& tag) {
  // Keep it short: sockaddr_un caps the path at ~107 bytes.
  return ::testing::TempDir() + "pimsched_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

/// A blocking test client on an already-connected fd.
class Client {
 public:
  explicit Client(const std::string& socketPath) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socketPath.c_str(), socketPath.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("socket() failed");
    connectWithRetry(reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  }

  /// TCP variant: connects to 127.0.0.1:port.
  explicit Client(int tcpPort) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(tcpPort));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("socket() failed");
    connectWithRetry(reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  void sendRaw(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::write(fd_, data.data() + off, data.size() - off);
      ASSERT_GE(n, 0) << std::strerror(errno);
      off += static_cast<std::size_t>(n);
    }
  }

  /// Half-closes the write side, leaving the read side open for a reply.
  void endOfInput() { ::shutdown(fd_, SHUT_WR); }

  /// Reads one newline-terminated reply; empty string on EOF first.
  std::string readLine() {
    while (buffer_.find('\n') == std::string::npos) {
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
    const std::size_t nl = buffer_.find('\n');
    std::string line = buffer_.substr(0, nl);
    buffer_.erase(0, nl + 1);
    return line;
  }

  Json request(const std::string& line) {
    sendRaw(line + "\n");
    const std::string reply = readLine();
    EXPECT_FALSE(reply.empty()) << "no reply to: " << line;
    return Json::parse(reply);
  }

 private:
  // The server may still be between start() and the accept loop; retry
  // briefly instead of flaking.
  void connectWithRetry(const sockaddr* addr, socklen_t len) {
    for (int attempt = 0;; ++attempt) {
      if (::connect(fd_, addr, len) == 0) return;
      if (attempt > 100) {
        ::close(fd_);
        throw std::runtime_error(std::string("connect() failed: ") +
                                 std::strerror(errno));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  int fd_ = -1;
  std::string buffer_;
};

/// Live OS threads of this process, via /proc/self/task.
int liveThreadCount() {
  int count = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator("/proc/self/task")) {
    ++count;
  }
  return count;
}

std::string submitLine(int steps = 4) {
  ReferenceTrace trace(DataSpace::singleSquare(3));
  for (int s = 0; s < steps; ++s) {
    for (int d = 0; d < 9; ++d) trace.add(s, (d + s) % 9, d);
  }
  trace.finalize();
  std::ostringstream os;
  saveTrace(trace, os);
  Json request;
  request.set("verb", "submit")
      .set("trace", std::move(os).str())
      .set("grid", "3x3")
      .set("windows", 2)
      .set("wait", true);
  return request.dump();
}

/// Runs the server on a background thread for the duration of one test.
class ServerFixture {
 public:
  explicit ServerFixture(const std::string& tag,
                         ProtocolOptions protocol = {},
                         bool withTcp = false) {
    SocketServer::Options options;
    options.socketPath = uniqueSocketPath(tag);
    options.protocol = protocol;
    if (withTcp) options.tcpPort = 0;  // ephemeral
    server = std::make_unique<SocketServer>(service, options);
    server->start();
    runner = std::thread([this] { exitCode = server->run(); });
  }

  ~ServerFixture() {
    if (runner.joinable()) {
      server->requestStop();
      runner.join();
    }
  }

  int join() {
    runner.join();
    return exitCode;
  }

  SchedulingService service;
  std::unique_ptr<SocketServer> server;
  std::thread runner;
  int exitCode = -1;
};

TEST(SocketServer, SubmitsResolveAndResubmitsHitTheCache) {
  ServerFixture fixture("e2e");
  Client client(fixture.server->socketPath());

  const Json first = client.request(submitLine());
  ASSERT_TRUE(first.find("ok")->asBool()) << submitLine();
  EXPECT_FALSE(first.find("cached")->asBool());
  EXPECT_EQ(first.find("state")->asString(), "done");
  const std::int64_t total = first.find("total")->asInt64();

  // Same connection, same job: answered from the result cache.
  const Json second = client.request(submitLine());
  ASSERT_TRUE(second.find("ok")->asBool());
  EXPECT_TRUE(second.find("cached")->asBool());
  EXPECT_EQ(second.find("total")->asInt64(), total);

  const Json stats = client.request(R"({"verb":"stats"})");
  EXPECT_EQ(stats.find("cache_hits")->asInt64(), 1);

  // The shutdown verb drains the server; run() returns the clean exit 0.
  const Json bye = client.request(R"({"verb":"shutdown"})");
  EXPECT_TRUE(bye.find("ok")->asBool());
  EXPECT_EQ(fixture.join(), 0);
}

TEST(SocketServer, MalformedRequestsGetRepliesAndTheConnectionSurvives) {
  ServerFixture fixture("malformed");
  Client client(fixture.server->socketPath());

  const Json garbage = client.request("not json at all");
  EXPECT_FALSE(garbage.find("ok")->asBool());
  EXPECT_FALSE(garbage.find("error")->asString().empty());

  const Json unknown = client.request(R"({"verb":"frobnicate"})");
  EXPECT_FALSE(unknown.find("ok")->asBool());

  // The same connection still serves well-formed requests afterwards.
  const Json stats = client.request(R"({"verb":"stats"})");
  EXPECT_TRUE(stats.find("ok")->asBool());
  EXPECT_EQ(stats.find("accepted")->asInt64(), 0);
}

TEST(SocketServer, TruncatedFinalLineStillGetsAStructuredReply) {
  ServerFixture fixture("truncated");
  Client client(fixture.server->socketPath());
  // A half-written frame with no newline, then EOF: the server answers the
  // remainder as a request so the client sees a structured error.
  client.sendRaw(R"({"verb":"stat)");
  client.endOfInput();
  const std::string reply = client.readLine();
  ASSERT_FALSE(reply.empty());
  const Json parsed = Json::parse(reply);
  EXPECT_FALSE(parsed.find("ok")->asBool());
  EXPECT_FALSE(parsed.find("error")->asString().empty());
}

TEST(SocketServer, OversizedFrameIsRejectedAndTheConnectionClosed) {
  ProtocolOptions protocol;
  protocol.maxFrameBytes = 128;
  ServerFixture fixture("oversize", protocol);
  Client client(fixture.server->socketPath());
  // No newline: the buffer outgrows the frame limit and cannot resync.
  client.sendRaw(std::string(1024, 'x'));
  const std::string reply = client.readLine();
  ASSERT_FALSE(reply.empty());
  const Json parsed = Json::parse(reply);
  EXPECT_FALSE(parsed.find("ok")->asBool());
  EXPECT_NE(parsed.find("error")->asString().find("frame too large"),
            std::string::npos);
  EXPECT_EQ(client.readLine(), "");  // server closed the stream

  // The daemon is not wedged: a fresh connection works.
  Client next(fixture.server->socketPath());
  EXPECT_TRUE(next.request(R"({"verb":"stats"})").find("ok")->asBool());
}

TEST(SocketServer, RequestStopDrainsAndReturnsZero) {
  ServerFixture fixture("stop");
  Client client(fixture.server->socketPath());
  const Json reply = client.request(submitLine());
  ASSERT_TRUE(reply.find("ok")->asBool());
  fixture.server->requestStop();  // what the SIGTERM handler calls
  EXPECT_EQ(fixture.join(), 0);
  // The socket file is unlinked on the way out.
  EXPECT_NE(::access(fixture.server->socketPath().c_str(), F_OK), 0);
}

TEST(SocketServer, RefusesToStartOnALiveSocket) {
  ServerFixture fixture("claimed");
  SocketServer::Options options;
  options.socketPath = fixture.server->socketPath();
  SchedulingService other;
  SocketServer second(other, options);
  EXPECT_THROW(second.start(), std::runtime_error);
}

TEST(SocketServer, TcpAndUnixEndpointsServeTheSameService) {
  ServerFixture fixture("dual", {}, /*withTcp=*/true);
  ASSERT_GT(fixture.server->tcpPort(), 0);  // ephemeral port was bound
  Client unixClient(fixture.server->socketPath());
  Client tcpClient(fixture.server->tcpPort());

  // Same request over both transports: byte-identical protocol, and one
  // shared service behind them — the TCP submit is answered from the
  // cache the Unix-socket submit warmed.
  const Json viaUnix = unixClient.request(submitLine());
  ASSERT_TRUE(viaUnix.find("ok")->asBool());
  const Json viaTcp = tcpClient.request(submitLine());
  ASSERT_TRUE(viaTcp.find("ok")->asBool());
  EXPECT_EQ(viaTcp.find("digest")->asString(),
            viaUnix.find("digest")->asString());
  EXPECT_EQ(viaTcp.find("total")->asInt64(),
            viaUnix.find("total")->asInt64());
  EXPECT_EQ(viaTcp.find("state")->asString(),
            viaUnix.find("state")->asString());
  EXPECT_TRUE(viaTcp.find("cached")->asBool());

  const Json stats = tcpClient.request(R"({"verb":"stats"})");
  EXPECT_EQ(stats.find("cache_hits")->asInt64(), 1);
  EXPECT_EQ(stats.find("completed")->asInt64(), 2);

  // Malformed input over TCP gets the same structured error as Unix.
  const Json bad = tcpClient.request("not json");
  EXPECT_FALSE(bad.find("ok")->asBool());
  EXPECT_FALSE(bad.find("error")->asString().empty());
}

TEST(SocketServer, TcpOnlyServerNeedsNoSocketFile) {
  SchedulingService service;
  SocketServer::Options options;
  options.socketPath.clear();
  options.tcpPort = 0;
  SocketServer server(service, options);
  server.start();
  ASSERT_GT(server.tcpPort(), 0);
  std::thread runner([&] { server.run(); });
  Client client(server.tcpPort());
  EXPECT_TRUE(client.request(R"({"verb":"stats"})").find("ok")->asBool());
  server.requestStop();
  runner.join();
}

TEST(SocketServer, SequentialConnectionsDoNotGrowTheThreadCount) {
  // Regression for the unjoined thread-per-connection leak: the fixed
  // handler pool means N connections never add a single live thread.
  ServerFixture fixture("threads");
  {
    // Warm up: handler pool spawned, one connection served and closed.
    Client warm(fixture.server->socketPath());
    EXPECT_TRUE(warm.request(R"({"verb":"stats"})").find("ok")->asBool());
  }
  const int before = liveThreadCount();
  ASSERT_GT(before, 0);
  for (int i = 0; i < 20; ++i) {
    Client client(fixture.server->socketPath());
    EXPECT_TRUE(
        client.request(R"({"verb":"stats"})").find("ok")->asBool());
  }
  EXPECT_LE(liveThreadCount(), before);
}

TEST(SocketServer, StartReplacesAStaleSocketFile) {
  const std::string path = uniqueSocketPath("stale");
  {
    // Bind and exit without unlinking, as a crashed daemon would.
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    ::close(fd);
  }
  ASSERT_EQ(::access(path.c_str(), F_OK), 0);
  SchedulingService service;
  SocketServer::Options options;
  options.socketPath = path;
  SocketServer server(service, options);
  EXPECT_NO_THROW(server.start());
  std::thread runner([&] { server.run(); });
  Client client(path);
  EXPECT_TRUE(client.request(R"({"verb":"stats"})").find("ok")->asBool());
  server.requestStop();
  runner.join();
}

}  // namespace
}  // namespace pimsched::serve

#include "serve/server.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "serve/json.hpp"
#include "trace/trace_io.hpp"

namespace pimsched::serve {
namespace {

std::string uniqueSocketPath(const std::string& tag) {
  // Keep it short: sockaddr_un caps the path at ~107 bytes.
  return ::testing::TempDir() + "pimsched_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

/// A blocking test client on an already-connected fd.
class Client {
 public:
  explicit Client(const std::string& socketPath) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socketPath.c_str(), socketPath.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("socket() failed");
    // The server may still be between start() and the accept loop; retry
    // briefly instead of flaking.
    for (int attempt = 0;; ++attempt) {
      if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        break;
      }
      if (attempt > 100) {
        ::close(fd_);
        throw std::runtime_error(std::string("connect() failed: ") +
                                 std::strerror(errno));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  void sendRaw(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::write(fd_, data.data() + off, data.size() - off);
      ASSERT_GE(n, 0) << std::strerror(errno);
      off += static_cast<std::size_t>(n);
    }
  }

  /// Half-closes the write side, leaving the read side open for a reply.
  void endOfInput() { ::shutdown(fd_, SHUT_WR); }

  /// Reads one newline-terminated reply; empty string on EOF first.
  std::string readLine() {
    while (buffer_.find('\n') == std::string::npos) {
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
    const std::size_t nl = buffer_.find('\n');
    std::string line = buffer_.substr(0, nl);
    buffer_.erase(0, nl + 1);
    return line;
  }

  Json request(const std::string& line) {
    sendRaw(line + "\n");
    const std::string reply = readLine();
    EXPECT_FALSE(reply.empty()) << "no reply to: " << line;
    return Json::parse(reply);
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

std::string submitLine(int steps = 4) {
  ReferenceTrace trace(DataSpace::singleSquare(3));
  for (int s = 0; s < steps; ++s) {
    for (int d = 0; d < 9; ++d) trace.add(s, (d + s) % 9, d);
  }
  trace.finalize();
  std::ostringstream os;
  saveTrace(trace, os);
  Json request;
  request.set("verb", "submit")
      .set("trace", std::move(os).str())
      .set("grid", "3x3")
      .set("windows", 2)
      .set("wait", true);
  return request.dump();
}

/// Runs the server on a background thread for the duration of one test.
class ServerFixture {
 public:
  explicit ServerFixture(const std::string& tag,
                         ProtocolOptions protocol = {}) {
    SocketServer::Options options;
    options.socketPath = uniqueSocketPath(tag);
    options.protocol = protocol;
    server = std::make_unique<SocketServer>(service, options);
    server->start();
    runner = std::thread([this] { exitCode = server->run(); });
  }

  ~ServerFixture() {
    if (runner.joinable()) {
      server->requestStop();
      runner.join();
    }
  }

  int join() {
    runner.join();
    return exitCode;
  }

  SchedulingService service;
  std::unique_ptr<SocketServer> server;
  std::thread runner;
  int exitCode = -1;
};

TEST(SocketServer, SubmitsResolveAndResubmitsHitTheCache) {
  ServerFixture fixture("e2e");
  Client client(fixture.server->socketPath());

  const Json first = client.request(submitLine());
  ASSERT_TRUE(first.find("ok")->asBool()) << submitLine();
  EXPECT_FALSE(first.find("cached")->asBool());
  EXPECT_EQ(first.find("state")->asString(), "done");
  const std::int64_t total = first.find("total")->asInt64();

  // Same connection, same job: answered from the result cache.
  const Json second = client.request(submitLine());
  ASSERT_TRUE(second.find("ok")->asBool());
  EXPECT_TRUE(second.find("cached")->asBool());
  EXPECT_EQ(second.find("total")->asInt64(), total);

  const Json stats = client.request(R"({"verb":"stats"})");
  EXPECT_EQ(stats.find("cache_hits")->asInt64(), 1);

  // The shutdown verb drains the server; run() returns the clean exit 0.
  const Json bye = client.request(R"({"verb":"shutdown"})");
  EXPECT_TRUE(bye.find("ok")->asBool());
  EXPECT_EQ(fixture.join(), 0);
}

TEST(SocketServer, MalformedRequestsGetRepliesAndTheConnectionSurvives) {
  ServerFixture fixture("malformed");
  Client client(fixture.server->socketPath());

  const Json garbage = client.request("not json at all");
  EXPECT_FALSE(garbage.find("ok")->asBool());
  EXPECT_FALSE(garbage.find("error")->asString().empty());

  const Json unknown = client.request(R"({"verb":"frobnicate"})");
  EXPECT_FALSE(unknown.find("ok")->asBool());

  // The same connection still serves well-formed requests afterwards.
  const Json stats = client.request(R"({"verb":"stats"})");
  EXPECT_TRUE(stats.find("ok")->asBool());
  EXPECT_EQ(stats.find("accepted")->asInt64(), 0);
}

TEST(SocketServer, TruncatedFinalLineStillGetsAStructuredReply) {
  ServerFixture fixture("truncated");
  Client client(fixture.server->socketPath());
  // A half-written frame with no newline, then EOF: the server answers the
  // remainder as a request so the client sees a structured error.
  client.sendRaw(R"({"verb":"stat)");
  client.endOfInput();
  const std::string reply = client.readLine();
  ASSERT_FALSE(reply.empty());
  const Json parsed = Json::parse(reply);
  EXPECT_FALSE(parsed.find("ok")->asBool());
  EXPECT_FALSE(parsed.find("error")->asString().empty());
}

TEST(SocketServer, OversizedFrameIsRejectedAndTheConnectionClosed) {
  ProtocolOptions protocol;
  protocol.maxFrameBytes = 128;
  ServerFixture fixture("oversize", protocol);
  Client client(fixture.server->socketPath());
  // No newline: the buffer outgrows the frame limit and cannot resync.
  client.sendRaw(std::string(1024, 'x'));
  const std::string reply = client.readLine();
  ASSERT_FALSE(reply.empty());
  const Json parsed = Json::parse(reply);
  EXPECT_FALSE(parsed.find("ok")->asBool());
  EXPECT_NE(parsed.find("error")->asString().find("frame too large"),
            std::string::npos);
  EXPECT_EQ(client.readLine(), "");  // server closed the stream

  // The daemon is not wedged: a fresh connection works.
  Client next(fixture.server->socketPath());
  EXPECT_TRUE(next.request(R"({"verb":"stats"})").find("ok")->asBool());
}

TEST(SocketServer, RequestStopDrainsAndReturnsZero) {
  ServerFixture fixture("stop");
  Client client(fixture.server->socketPath());
  const Json reply = client.request(submitLine());
  ASSERT_TRUE(reply.find("ok")->asBool());
  fixture.server->requestStop();  // what the SIGTERM handler calls
  EXPECT_EQ(fixture.join(), 0);
  // The socket file is unlinked on the way out.
  EXPECT_NE(::access(fixture.server->socketPath().c_str(), F_OK), 0);
}

TEST(SocketServer, RefusesToStartOnALiveSocket) {
  ServerFixture fixture("claimed");
  SocketServer::Options options;
  options.socketPath = fixture.server->socketPath();
  SchedulingService other;
  SocketServer second(other, options);
  EXPECT_THROW(second.start(), std::runtime_error);
}

TEST(SocketServer, StartReplacesAStaleSocketFile) {
  const std::string path = uniqueSocketPath("stale");
  {
    // Bind and exit without unlinking, as a crashed daemon would.
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    ::close(fd);
  }
  ASSERT_EQ(::access(path.c_str(), F_OK), 0);
  SchedulingService service;
  SocketServer::Options options;
  options.socketPath = path;
  SocketServer server(service, options);
  EXPECT_NO_THROW(server.start());
  std::thread runner([&] { server.run(); });
  Client client(path);
  EXPECT_TRUE(client.request(R"({"verb":"stats"})").find("ok")->asBool());
  server.requestStop();
  runner.join();
}

}  // namespace
}  // namespace pimsched::serve

#include "pim/memory.hpp"

#include <gtest/gtest.h>

namespace pimsched {
namespace {

TEST(OccupancyMap, StartsEmpty) {
  const Grid g(2, 2);
  const OccupancyMap occ(g, 3);
  for (ProcId p = 0; p < g.size(); ++p) {
    EXPECT_EQ(occ.used(p), 0);
    EXPECT_TRUE(occ.hasRoom(p));
  }
  EXPECT_EQ(occ.totalUsed(), 0);
}

TEST(OccupancyMap, FillsToCapacity) {
  const Grid g(2, 2);
  OccupancyMap occ(g, 2);
  EXPECT_TRUE(occ.tryPlace(0));
  EXPECT_TRUE(occ.tryPlace(0));
  EXPECT_FALSE(occ.hasRoom(0));
  EXPECT_FALSE(occ.tryPlace(0));
  EXPECT_EQ(occ.used(0), 2);
  EXPECT_TRUE(occ.hasRoom(1));
  EXPECT_EQ(occ.totalUsed(), 2);
}

TEST(OccupancyMap, ReleaseFreesSlot) {
  const Grid g(2, 2);
  OccupancyMap occ(g, 1);
  ASSERT_TRUE(occ.tryPlace(3));
  EXPECT_FALSE(occ.hasRoom(3));
  occ.release(3);
  EXPECT_TRUE(occ.hasRoom(3));
  EXPECT_EQ(occ.totalUsed(), 0);
}

TEST(OccupancyMap, UnlimitedCapacity) {
  const Grid g(1, 1);
  OccupancyMap occ(g, -1);
  EXPECT_TRUE(occ.unlimited());
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(occ.tryPlace(0));
  EXPECT_EQ(occ.used(0), 1000);
}

TEST(OccupancyMap, ZeroCapacityRejectsEverything) {
  const Grid g(2, 2);
  OccupancyMap occ(g, 0);
  EXPECT_FALSE(occ.tryPlace(0));
}

TEST(OccupancyMap, LimitCapacityTightensOneProcessor) {
  const Grid g(2, 2);
  OccupancyMap occ(g, 3);
  occ.limitCapacity(1, 1);
  EXPECT_EQ(occ.capacityOf(1), 1);
  EXPECT_EQ(occ.capacityOf(0), 3);  // others keep the uniform bound
  EXPECT_TRUE(occ.tryPlace(1));
  EXPECT_FALSE(occ.hasRoom(1));
  EXPECT_FALSE(occ.tryPlace(1));
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(occ.tryPlace(0));
  EXPECT_FALSE(occ.hasRoom(0));
}

TEST(OccupancyMap, LimitCapacityOnlyEverShrinks) {
  const Grid g(2, 2);
  OccupancyMap occ(g, 5);
  occ.limitCapacity(0, 2);
  occ.limitCapacity(0, 4);  // looser limit is ignored
  EXPECT_EQ(occ.capacityOf(0), 2);
  occ.limitCapacity(0, 1);  // tighter limit applies
  EXPECT_EQ(occ.capacityOf(0), 1);
}

TEST(OccupancyMap, LimitCapacityBoundsAnUnlimitedMap) {
  const Grid g(2, 2);
  OccupancyMap occ(g, -1);
  EXPECT_TRUE(occ.unlimited());
  occ.limitCapacity(2, 2);
  EXPECT_EQ(occ.capacityOf(2), 2);
  EXPECT_LT(occ.capacityOf(0), 0);  // untouched procs stay unlimited
  EXPECT_TRUE(occ.tryPlace(2));
  EXPECT_TRUE(occ.tryPlace(2));
  EXPECT_FALSE(occ.tryPlace(2));
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(occ.tryPlace(0));
}

TEST(OccupancyMap, ZeroLimitModelsADeadProcessor) {
  const Grid g(2, 2);
  OccupancyMap occ(g, 4);
  occ.limitCapacity(3, 0);
  EXPECT_FALSE(occ.hasRoom(3));
  EXPECT_FALSE(occ.tryPlace(3));
  EXPECT_EQ(occ.used(3), 0);
}

TEST(PaperCapacity, TwiceTheMinimum) {
  const Grid g(4, 4);
  // 8x8 data on 4x4 procs: minimum 4, paper memory size 8.
  EXPECT_EQ(paperCapacity(g, 64), 8);
  // 2 arrays of 8x8 (matmul): minimum 8 -> 16.
  EXPECT_EQ(paperCapacity(g, 128), 16);
  // Non-divisible: 65 data -> ceil = 5 -> 10.
  EXPECT_EQ(paperCapacity(g, 65), 10);
}

TEST(PaperCapacity, AlwaysFeasible) {
  const Grid g(3, 5);
  for (std::int64_t d = 1; d < 200; d += 7) {
    EXPECT_GE(paperCapacity(g, d) * g.size(), d);
  }
}

}  // namespace
}  // namespace pimsched

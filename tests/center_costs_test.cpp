#include "cost/center_costs.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "test_util.hpp"

namespace pimsched {
namespace {

TEST(AxisCosts, HandComputed) {
  // Weights 2 at 0, 1 at 3 on a 4-slot axis.
  const std::vector<Cost> hist = {2, 0, 0, 1};
  const std::vector<Cost> f = axisCosts(hist);
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[0], 3);   // 2*0 + 1*3
  EXPECT_EQ(f[1], 4);   // 2*1 + 1*2
  EXPECT_EQ(f[2], 5);
  EXPECT_EQ(f[3], 6);
}

TEST(AxisCosts, EmptyAndSingle) {
  EXPECT_TRUE(axisCosts({}).empty());
  const std::vector<Cost> one = {5};
  EXPECT_EQ(axisCosts(one)[0], 0);
}

TEST(AxisCosts, MinimumAtWeightedMedian) {
  // Heavy weight at position 2 dominates.
  const std::vector<Cost> hist = {1, 0, 10, 0, 1};
  const std::vector<Cost> f = axisCosts(hist);
  for (std::size_t x = 0; x < f.size(); ++x) {
    EXPECT_GE(f[x], f[2]);
  }
}

TEST(CenterCosts, SingleReferenceCostIsDistance) {
  const Grid g(4, 4);
  const CostModel model(g);
  const std::vector<ProcWeight> refs = {{g.id(1, 2), 3}};
  const std::vector<Cost> costs = separableCenterCosts(model, refs);
  for (ProcId p = 0; p < g.size(); ++p) {
    EXPECT_EQ(costs[static_cast<std::size_t>(p)],
              3 * g.manhattan(p, g.id(1, 2)));
  }
}

TEST(CenterCosts, EmptyRefsAreFreeEverywhere) {
  const Grid g(3, 3);
  const CostModel model(g);
  for (const Cost c : separableCenterCosts(model, {})) EXPECT_EQ(c, 0);
  const BestCenter best = bestCenter(model, {});
  EXPECT_EQ(best.proc, 0);  // tie toward smallest id
  EXPECT_EQ(best.cost, 0);
}

TEST(CenterCosts, HopCostScalesLinearly) {
  const Grid g(4, 4);
  const CostModel unit(g, CostParams{1, 1});
  const CostModel triple(g, CostParams{3, 1});
  const std::vector<ProcWeight> refs = {{0, 2}, {15, 1}, {5, 4}};
  const auto a = separableCenterCosts(unit, refs);
  const auto b = separableCenterCosts(triple, refs);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(b[i], 3 * a[i]);
}

// Property: the separable evaluation must match the brute-force Algorithm 1
// on every grid shape and any reference string.
class CenterCostEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CenterCostEquivalence, SeparableMatchesBruteForce) {
  const auto [rows, cols, seed] = GetParam();
  const Grid g(rows, cols);
  const CostModel model(g);
  testutil::Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 1);
  for (int trial = 0; trial < 20; ++trial) {
    const auto refs =
        testutil::randomRefs(rng, g, static_cast<int>(rng.below(30)) + 1);
    const auto brute = bruteForceCenterCosts(model, refs);
    const auto fast = separableCenterCosts(model, refs);
    ASSERT_EQ(brute.size(), fast.size());
    for (std::size_t p = 0; p < brute.size(); ++p) {
      ASSERT_EQ(brute[p], fast[p]) << "grid " << rows << "x" << cols
                                   << " proc " << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, CenterCostEquivalence,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 8, 2),
                      std::make_tuple(8, 1, 3), std::make_tuple(4, 4, 4),
                      std::make_tuple(3, 5, 5), std::make_tuple(7, 2, 6),
                      std::make_tuple(6, 6, 7)));

TEST(BestCenter, TieBreaksTowardSmallerId) {
  const Grid g(1, 3);
  const CostModel model(g);
  // Symmetric weights at both ends: positions 0..2 have costs 2,2,2.
  const std::vector<ProcWeight> refs = {{0, 1}, {2, 1}};
  const auto costs = separableCenterCosts(model, refs);
  EXPECT_EQ(costs[0], 2);
  EXPECT_EQ(costs[1], 2);
  EXPECT_EQ(costs[2], 2);
  EXPECT_EQ(bestCenter(model, refs).proc, 0);
}

TEST(BestCenter, MatchesExhaustiveArgmin) {
  const Grid g(5, 4);
  const CostModel model(g);
  testutil::Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const auto refs = testutil::randomRefs(rng, g, 12);
    const BestCenter best = bestCenter(model, refs);
    const auto costs = bruteForceCenterCosts(model, refs);
    for (ProcId p = 0; p < g.size(); ++p) {
      EXPECT_LE(best.cost, costs[static_cast<std::size_t>(p)]);
    }
    EXPECT_EQ(best.cost, costs[static_cast<std::size_t>(best.proc)]);
  }
}

TEST(BestCenter, CenterIsPerAxisWeightedMedian) {
  // DESIGN.md invariant 2: the optimal center is a weighted median on each
  // axis. With odd total weight the weighted median is unique.
  const Grid g(5, 5);
  const CostModel model(g);
  testutil::Rng rng(123);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<ProcWeight> refs = testutil::randomRefs(rng, g, 9);
    // Force odd total weight.
    Cost total = 0;
    for (const auto& pw : refs) total += pw.weight;
    if (total % 2 == 0) refs.front().weight += 1;
    total = 0;
    for (const auto& pw : refs) total += pw.weight;

    const BestCenter best = bestCenter(model, refs);
    const Coord bc = g.coord(best.proc);

    // Row axis: weight strictly below the median row < total/2 and weight
    // strictly above < total/2 (equivalently cumulative crosses half).
    Cost below = 0, above = 0;
    for (const auto& pw : refs) {
      const Coord c = g.coord(pw.proc);
      if (c.row < bc.row) below += pw.weight;
      if (c.row > bc.row) above += pw.weight;
    }
    EXPECT_LT(2 * below, total + 1);
    EXPECT_LT(2 * above, total + 1);
  }
}

}  // namespace
}  // namespace pimsched

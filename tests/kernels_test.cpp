#include <gtest/gtest.h>

#include "kernels/benchmarks.hpp"
#include "kernels/combinators.hpp"
#include "kernels/extra_kernels.hpp"
#include "kernels/irregular_code.hpp"
#include "kernels/lu.hpp"
#include "kernels/matmul.hpp"
#include "kernels/trace_builder.hpp"

namespace pimsched {
namespace {

constexpr int kN = 8;

ReferenceTrace makeLu(const Grid& g, int n) {
  TraceBuilder tb;
  const IterationMap map(g, n, n, PartitionKind::kBlock2D);
  emitLu(tb, map, n);
  return std::move(tb).build();
}

TEST(TraceBuilder, ArrayReuseByName) {
  TraceBuilder tb;
  const int a1 = tb.array("A", 4, 4);
  const int a2 = tb.array("A", 4, 4);
  EXPECT_EQ(a1, a2);
  EXPECT_THROW(tb.array("A", 2, 2), std::invalid_argument);
  EXPECT_NE(tb.array("B", 4, 4), a1);
}

TEST(TraceBuilder, AccessRequiresAllocatedStep) {
  TraceBuilder tb;
  const int a = tb.array("A", 2, 2);
  EXPECT_THROW(tb.access(0, 0, a, 0, 0), std::invalid_argument);
  const StepId s = tb.beginStep();
  tb.access(s, 0, a, 0, 0);
  EXPECT_THROW(tb.access(s + 1, 0, a, 0, 0), std::invalid_argument);
}

TEST(Lu, StepCountIsTwoPerPivot) {
  const Grid g(4, 4);
  const ReferenceTrace t = makeLu(g, kN);
  EXPECT_EQ(t.numSteps(), 2 * (kN - 1));
}

TEST(Lu, TotalWeightMatchesFlopStructure) {
  // Per pivot k with r = n-k-1 remaining rows: scale step touches
  // r*(2+1) weight; update step touches r*r*(2+1+1).
  const Grid g(4, 4);
  const ReferenceTrace t = makeLu(g, kN);
  Cost expect = 0;
  for (int k = 0; k + 1 < kN; ++k) {
    const Cost r = kN - k - 1;
    expect += r * 3 + r * r * 4;
  }
  EXPECT_EQ(t.totalWeight(), expect);
}

TEST(Lu, PivotElementHeavilyShared) {
  const Grid g(4, 4);
  const ReferenceTrace t = makeLu(g, kN);
  // A[0][0] is read by every row of the first scale step.
  const DataId pivot = t.dataSpace().id(0, 0, 0);
  Cost w = 0;
  for (const Access& a : t.accesses()) {
    if (a.data == pivot) w += a.weight;
  }
  EXPECT_EQ(w, kN - 1);
}

TEST(Lu, Deterministic) {
  const Grid g(4, 4);
  const ReferenceTrace a = makeLu(g, kN);
  const ReferenceTrace b = makeLu(g, kN);
  ASSERT_EQ(a.accesses().size(), b.accesses().size());
  for (std::size_t i = 0; i < a.accesses().size(); ++i) {
    EXPECT_EQ(a.accesses()[i], b.accesses()[i]);
  }
}

TEST(MatSquare, StepCountIsN) {
  const Grid g(4, 4);
  TraceBuilder tb;
  const IterationMap map(g, kN, kN, PartitionKind::kBlock2D);
  emitMatSquare(tb, map, kN);
  const ReferenceTrace t = std::move(tb).build();
  EXPECT_EQ(t.numSteps(), kN);
  EXPECT_EQ(t.numData(), 2 * kN * kN);  // arrays A and C
}

TEST(MatSquare, EveryStepTouchesWholeC) {
  const Grid g(4, 4);
  TraceBuilder tb;
  const IterationMap map(g, kN, kN, PartitionKind::kBlock2D);
  emitMatSquare(tb, map, kN);
  const ReferenceTrace t = std::move(tb).build();
  // Weight per step: n*n iterations * (1 + 1 + 2).
  EXPECT_EQ(t.totalWeight(), static_cast<Cost>(kN) * kN * kN * 4);
}

TEST(IrregularCode, DeterministicForFixedSeed) {
  const Grid g(4, 4);
  TraceBuilder tb1, tb2;
  const IterationMap map(g, kN, kN, PartitionKind::kBlock2D);
  emitIrregularCode(tb1, map, kN, 42);
  emitIrregularCode(tb2, map, kN, 42);
  const ReferenceTrace a = std::move(tb1).build();
  const ReferenceTrace b = std::move(tb2).build();
  ASSERT_EQ(a.accesses().size(), b.accesses().size());
  EXPECT_EQ(a.totalWeight(), b.totalWeight());
}

TEST(IrregularCode, DifferentSeedsDiffer) {
  const Grid g(4, 4);
  TraceBuilder tb1, tb2;
  const IterationMap map(g, kN, kN, PartitionKind::kBlock2D);
  emitIrregularCode(tb1, map, kN, 1);
  emitIrregularCode(tb2, map, kN, 2);
  const ReferenceTrace a = std::move(tb1).build();
  const ReferenceTrace b = std::move(tb2).build();
  bool differ = a.accesses().size() != b.accesses().size();
  for (std::size_t i = 0; !differ && i < a.accesses().size(); ++i) {
    differ = !(a.accesses()[i] == b.accesses()[i]);
  }
  EXPECT_TRUE(differ);
}

TEST(IrregularCode, HotspotDriftsAcrossWindows) {
  // The per-step mean referenced row must move from the top toward the
  // bottom of the array — the drifting-hotspot property the CODE
  // substitute exists for.
  const int n = 16;
  const Grid g(4, 4);
  TraceBuilder tb;
  const IterationMap map(g, n, n, PartitionKind::kBlock2D);
  emitIrregularCode(tb, map, n);
  const ReferenceTrace t = std::move(tb).build();

  std::vector<double> rowSum(static_cast<std::size_t>(t.numSteps()), 0);
  std::vector<double> weight(static_cast<std::size_t>(t.numSteps()), 0);
  for (const Access& a : t.accesses()) {
    const ElementRef e = t.dataSpace().element(a.data);
    rowSum[static_cast<std::size_t>(a.step)] +=
        static_cast<double>(e.row) * static_cast<double>(a.weight);
    weight[static_cast<std::size_t>(a.step)] += static_cast<double>(a.weight);
  }
  const double first = rowSum[0] / weight[0];
  const std::size_t lastIdx = static_cast<std::size_t>(t.numSteps() - 1);
  const double last = rowSum[lastIdx] / weight[lastIdx];
  EXPECT_LT(first, n / 4.0);
  EXPECT_GT(last, 3.0 * n / 4.0);
}

TEST(Combinators, ConcatShiftsSteps) {
  const Grid g(4, 4);
  const ReferenceTrace lu = makeLu(g, 4);
  const ReferenceTrace both = concatTraces(lu, lu);
  EXPECT_EQ(both.numSteps(), 2 * lu.numSteps());
  EXPECT_EQ(both.totalWeight(), 2 * lu.totalWeight());
  EXPECT_EQ(both.numData(), lu.numData());  // same array "A" unified
}

TEST(Combinators, ConcatUnifiesDistinctArrays) {
  const Grid g(2, 2);
  TraceBuilder tb1;
  const IterationMap map(g, 4, 4, PartitionKind::kBlock2D);
  emitMatSquare(tb1, map, 4);  // arrays A, C
  const ReferenceTrace mat = std::move(tb1).build();
  TraceBuilder tb2;
  emitIrregularCode(tb2, map, 4);  // array A only
  const ReferenceTrace code = std::move(tb2).build();

  const ReferenceTrace both = concatTraces(mat, code);
  EXPECT_EQ(both.numData(), 32);  // A (16) + C (16), A shared
  EXPECT_EQ(both.totalWeight(), mat.totalWeight() + code.totalWeight());
}

TEST(Combinators, ConcatRejectsShapeConflict) {
  DataSpace d1;
  d1.addArray("A", 2, 2);
  ReferenceTrace t1(d1);
  t1.add(0, 0, 0, 1);
  t1.finalize();
  DataSpace d2;
  d2.addArray("A", 3, 3);
  ReferenceTrace t2(d2);
  t2.add(0, 0, 0, 1);
  t2.finalize();
  EXPECT_THROW(concatTraces(t1, t2), std::invalid_argument);
}

TEST(Combinators, ReversePreservesPerStepContent) {
  const Grid g(4, 4);
  const ReferenceTrace lu = makeLu(g, 4);
  const ReferenceTrace rev = reverseTrace(lu);
  EXPECT_EQ(rev.numSteps(), lu.numSteps());
  EXPECT_EQ(rev.totalWeight(), lu.totalWeight());
  // Step s of rev equals step last-s of lu.
  const StepId last = lu.numSteps() - 1;
  for (const Access& a : lu.accesses()) {
    bool found = false;
    for (const Access& b : rev.accesses()) {
      if (b.step == last - a.step && b.proc == a.proc && b.data == a.data &&
          b.weight == a.weight) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(Combinators, DoubleReverseIsIdentity) {
  const Grid g(4, 4);
  const ReferenceTrace lu = makeLu(g, 6);
  const ReferenceTrace twice = reverseTrace(reverseTrace(lu));
  ASSERT_EQ(twice.accesses().size(), lu.accesses().size());
  for (std::size_t i = 0; i < lu.accesses().size(); ++i) {
    EXPECT_EQ(twice.accesses()[i], lu.accesses()[i]);
  }
}

TEST(PaperBenchmarks, AllFiveBuild) {
  const Grid g(4, 4);
  for (const PaperBenchmark b : allPaperBenchmarks()) {
    const ReferenceTrace t = makePaperBenchmark(b, g, kN);
    EXPECT_GT(t.numSteps(), 0) << toString(b);
    EXPECT_GT(t.totalWeight(), 0) << toString(b);
  }
}

TEST(PaperBenchmarks, CompositesAddUp) {
  const Grid g(4, 4);
  const ReferenceTrace lu =
      makePaperBenchmark(PaperBenchmark::kLu, g, kN);
  const ReferenceTrace luCode =
      makePaperBenchmark(PaperBenchmark::kLuCode, g, kN);
  EXPECT_GT(luCode.numSteps(), lu.numSteps());
  EXPECT_GT(luCode.totalWeight(), lu.totalWeight());
  EXPECT_EQ(luCode.numData(), lu.numData());  // both only use A
}

TEST(ExtraKernels, CholeskyTouchesLowerTriangleOnly) {
  const Grid g(4, 4);
  TraceBuilder tb;
  const IterationMap map(g, kN, kN, PartitionKind::kBlock2D);
  emitCholesky(tb, map, kN);
  const ReferenceTrace t = std::move(tb).build();
  for (const Access& a : t.accesses()) {
    const ElementRef e = t.dataSpace().element(a.data);
    EXPECT_GE(e.row, e.col);
  }
}

TEST(ExtraKernels, FloydWarshallStepPerVertex) {
  const Grid g(4, 4);
  TraceBuilder tb;
  const IterationMap map(g, kN, kN, PartitionKind::kBlock2D);
  emitFloydWarshall(tb, map, kN);
  const ReferenceTrace t = std::move(tb).build();
  EXPECT_EQ(t.numSteps(), kN);
  EXPECT_EQ(t.totalWeight(), static_cast<Cost>(kN) * kN * kN * 4);
}

TEST(ExtraKernels, JacobiAlternatesArrays) {
  const Grid g(4, 4);
  TraceBuilder tb;
  const IterationMap map(g, kN, kN, PartitionKind::kBlock2D);
  emitJacobi2D(tb, map, kN, 4);
  const ReferenceTrace t = std::move(tb).build();
  EXPECT_EQ(t.numSteps(), 4);
  EXPECT_EQ(t.numData(), 2 * kN * kN);
  // Even steps write V (array 1); check a sample access exists.
  bool sawVWrite = false;
  for (const Access& a : t.accesses()) {
    if (a.step == 0 && t.dataSpace().element(a.data).array == 1) {
      sawVWrite = true;
      break;
    }
  }
  EXPECT_TRUE(sawVWrite);
}

TEST(ExtraKernels, TransposeReadsAWritesB) {
  const Grid g(2, 2);
  TraceBuilder tb;
  const IterationMap map(g, 4, 4, PartitionKind::kBlock2D);
  emitTranspose(tb, map, 4);
  const ReferenceTrace t = std::move(tb).build();
  EXPECT_EQ(t.numSteps(), 4);
  // Every element of both arrays is touched exactly once.
  std::vector<int> touched(static_cast<std::size_t>(t.numData()), 0);
  for (const Access& a : t.accesses()) {
    ++touched[static_cast<std::size_t>(a.data)];
  }
  for (const int c : touched) EXPECT_EQ(c, 1);
}

}  // namespace
}  // namespace pimsched

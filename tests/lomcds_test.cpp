#include "core/lomcds.hpp"

#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "core/scds.hpp"
#include "cost/center_costs.hpp"
#include "test_util.hpp"

namespace pimsched {
namespace {

WindowedRefs refsFromTrace(const ReferenceTrace& t, const Grid& g,
                           int windows) {
  return WindowedRefs(t, WindowPartition::evenCount(t.numSteps(), windows),
                      g);
}

TEST(Lomcds, PicksLocalOptimumPerWindow) {
  const Grid g(4, 4);
  const CostModel model(g);
  ReferenceTrace t(DataSpace::singleSquare(1));
  t.add(0, g.id(0, 0), 0, 5);
  t.add(1, g.id(3, 3), 0, 5);
  t.finalize();
  const WindowedRefs refs = refsFromTrace(t, g, 2);
  const DataSchedule s = scheduleLomcds(refs, model);
  EXPECT_EQ(s.center(0, 0), g.id(0, 0));
  EXPECT_EQ(s.center(0, 1), g.id(3, 3));
}

TEST(Lomcds, PerWindowServeCostIsMinimal) {
  const Grid g(3, 3);
  const CostModel model(g);
  testutil::Rng rng(41);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 3, 3, 12, 18);
  const WindowedRefs refs = refsFromTrace(t, g, 4);
  const DataSchedule s = scheduleLomcds(refs, model);
  for (DataId d = 0; d < refs.numData(); ++d) {
    for (WindowId w = 0; w < refs.numWindows(); ++w) {
      if (refs.refs(d, w).empty()) continue;
      const BestCenter best = bestCenter(model, refs.refs(d, w));
      EXPECT_EQ(model.serveCost(refs.refs(d, w), s.center(d, w)),
                best.cost);
    }
  }
}

TEST(Lomcds, UnreferencedDatumStaysPut) {
  const Grid g(4, 4);
  const CostModel model(g);
  ReferenceTrace t(DataSpace::singleSquare(1));
  t.add(0, g.id(2, 2), 0, 3);
  t.add(2, g.id(2, 2), 0, 3);  // window 1 (middle) has no references
  t.finalize();
  const WindowedRefs refs =
      WindowedRefs(t, WindowPartition::perStep(3), g);
  const DataSchedule s = scheduleLomcds(refs, model);
  EXPECT_EQ(s.center(0, 1), s.center(0, 0));
}

TEST(Lomcds, ServeCostNeverWorseThanScds) {
  // LOMCDS minimises each window independently, so its total *serving*
  // cost is <= SCDS's (movement may make the total worse).
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(42);
  for (int trial = 0; trial < 5; ++trial) {
    const ReferenceTrace t = testutil::randomTrace(rng, g, 4, 4, 16, 30);
    const WindowedRefs refs = refsFromTrace(t, g, 4);
    const EvalResult lom =
        evaluateSchedule(scheduleLomcds(refs, model), refs, model);
    const EvalResult scds =
        evaluateSchedule(scheduleScds(refs, model), refs, model);
    EXPECT_LE(lom.aggregate.serve, scds.aggregate.serve);
  }
}

TEST(Lomcds, CapacityRespectedPerWindow) {
  const Grid g(2, 2);
  const CostModel model(g);
  testutil::Rng rng(43);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 3, 3, 8, 20);
  const WindowedRefs refs = refsFromTrace(t, g, 4);
  SchedulerOptions opts;
  opts.capacity = 3;  // 9 data over 4 procs: min 3
  const DataSchedule s = scheduleLomcds(refs, model, opts);
  EXPECT_TRUE(s.complete());
  EXPECT_TRUE(s.respectsCapacity(g, 3));
}

TEST(Lomcds, CapacityFallbackPicksNextBest) {
  const Grid g(1, 3);
  const CostModel model(g);
  DataSpace ds;
  ds.addArray("A", 1, 2);
  ReferenceTrace t(ds);
  t.add(0, 0, 0, 10);
  t.add(0, 0, 1, 5);
  t.finalize();
  const WindowedRefs refs = refsFromTrace(t, g, 1);
  SchedulerOptions opts;
  opts.capacity = 1;
  const DataSchedule s = scheduleLomcds(refs, model, opts);
  EXPECT_EQ(s.center(0, 0), 0);  // datum 0 first in id order
  EXPECT_EQ(s.center(1, 0), 1);  // next-cheapest slot
}

TEST(Lomcds, InfeasibleCapacityThrows) {
  const Grid g(1, 2);
  const CostModel model(g);
  ReferenceTrace t(DataSpace::singleSquare(2));
  t.add(0, 0, 0, 1);
  t.finalize();
  const WindowedRefs refs = refsFromTrace(t, g, 1);
  SchedulerOptions opts;
  opts.capacity = 1;  // 4 data, 2 slots
  EXPECT_THROW(scheduleLomcds(refs, model, opts), std::runtime_error);
}

}  // namespace
}  // namespace pimsched

#include "report/heatmap.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/evaluator.hpp"
#include "core/scds.hpp"
#include "sim/replay.hpp"
#include "test_util.hpp"

namespace pimsched {
namespace {

TEST(Heatmap, QuantizesAgainstMax) {
  const std::vector<double> v = {0.0, 4.5, 9.0};
  const std::vector<int> q = quantizeHeatmap(v);
  EXPECT_EQ(q, (std::vector<int>{0, 5, 9}));
}

TEST(Heatmap, AllZerosStayZero) {
  const std::vector<double> v = {0.0, 0.0};
  EXPECT_EQ(quantizeHeatmap(v), (std::vector<int>{0, 0}));
}

TEST(Heatmap, NegativeMeansNoData) {
  const std::vector<double> v = {-1.0, 2.0};
  const std::vector<int> q = quantizeHeatmap(v);
  EXPECT_EQ(q[0], -1);
  EXPECT_EQ(q[1], 9);
}

TEST(Heatmap, RendersGridWithTitle) {
  std::ostringstream os;
  renderHeatmap(os, {1.0, 2.0, 3.0, 4.0}, 2, 2, "t");
  const std::string out = os.str();
  EXPECT_EQ(out.substr(0, 2), "t\n");
  EXPECT_NE(out.find("9"), std::string::npos);
  // Two data rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(Heatmap, RejectsShapeMismatch) {
  std::ostringstream os;
  EXPECT_THROW(renderHeatmap(os, {1.0, 2.0, 3.0}, 2, 2),
               std::invalid_argument);
}

TEST(ProcTraffic, CountsEveryHopOfEveryMessage) {
  const Grid g(1, 4);
  const NocSimulator sim(g);
  // One message 0 -> 3 of volume 2: passes procs 0,1,2,3.
  const std::vector<Message> msgs = {{0, 3, 2}};
  const auto traffic = sim.procTraffic(msgs);
  EXPECT_EQ(traffic, (std::vector<std::int64_t>{2, 2, 2, 2}));
}

TEST(ProcTraffic, SelfMessagesCountOnce) {
  const Grid g(2, 2);
  const NocSimulator sim(g);
  const std::vector<Message> msgs = {{1, 1, 5}};
  const auto traffic = sim.procTraffic(msgs);
  EXPECT_EQ(traffic[1], 5);
  EXPECT_EQ(traffic[0] + traffic[2] + traffic[3], 0);
}

TEST(WindowMessages, MatchesReplayWindowByWindow) {
  const Grid g(3, 3);
  const CostModel model(g);
  testutil::Rng rng(171);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 3, 3, 8, 20);
  const WindowedRefs refs(
      t, WindowPartition::evenCount(t.numSteps(), 4), g);
  const DataSchedule s = scheduleScds(refs, model);
  const ReplayReport r = replaySchedule(s, refs, model);
  const NocSimulator sim(g);
  for (WindowId w = 0; w < refs.numWindows(); ++w) {
    const auto msgs = windowMessages(s, refs, model, w);
    const SimReport direct = sim.simulate(msgs);
    EXPECT_EQ(direct.totalHopVolume,
              r.perWindow[static_cast<std::size_t>(w)].totalHopVolume);
    EXPECT_EQ(direct.makespan,
              r.perWindow[static_cast<std::size_t>(w)].makespan);
  }
}

}  // namespace
}  // namespace pimsched

// Allocation accounting for the flat GOMCDS kernels: global operator
// new/delete are replaced with counting versions, and the tests assert the
// zero-alloc steady state the scratch-arena design promises — a warm
// solver call performs no heap allocations at all, and a scheduling call's
// allocation count depends on the number of equivalence classes, not the
// number of data.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/gomcds.hpp"
#include "graph/layered_dag.hpp"
#include "trace/trace.hpp"
#include "trace/windowed_refs.hpp"

namespace {

std::atomic<std::int64_t> g_newCalls{0};

void* countedAlloc(std::size_t size) {
  g_newCalls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return countedAlloc(size); }
void* operator new[](std::size_t size) { return countedAlloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_newCalls.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_newCalls.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace pimsched {
namespace {

std::int64_t allocCount() {
  return g_newCalls.load(std::memory_order_relaxed);
}

TEST(GomcdsAlloc, WarmFlatSolveAllocatesNothing) {
  const Grid grid(4, 4);
  const int layers = 6;
  std::vector<Cost> nodeCosts(
      static_cast<std::size_t>(layers) * static_cast<std::size_t>(grid.size()));
  for (std::size_t i = 0; i < nodeCosts.size(); ++i) {
    nodeCosts[i] = static_cast<Cost>((i * 7) % 23);
  }
  LayeredDagScratch scratch;
  LayeredPath path;
  // First call grows the scratch buffers (and resolves the obs handles).
  LayeredDagSolver::solveManhattanFlatInto(grid, layers, nodeCosts, 2,
                                           scratch, path);
  const std::int64_t before = allocCount();
  for (int i = 0; i < 10; ++i) {
    LayeredDagSolver::solveManhattanFlatInto(grid, layers, nodeCosts, 2,
                                             scratch, path);
  }
  EXPECT_EQ(allocCount(), before)
      << "warm solveManhattanFlatInto must not touch the heap";

  std::vector<Cost> trans(static_cast<std::size_t>(grid.size()) *
                          static_cast<std::size_t>(grid.size()));
  for (std::size_t i = 0; i < trans.size(); ++i) {
    trans[i] = static_cast<Cost>(i % 5);
  }
  LayeredDagSolver::solveFlatInto(layers, grid.size(), nodeCosts, trans,
                                  scratch, path);
  const std::int64_t beforeTable = allocCount();
  for (int i = 0; i < 10; ++i) {
    LayeredDagSolver::solveFlatInto(layers, grid.size(), nodeCosts, trans,
                                    scratch, path);
  }
  EXPECT_EQ(allocCount(), beforeTable)
      << "warm solveFlatInto must not touch the heap";
}

/// A trace whose data all share one reference string per window, so the
/// dedup layer collapses everything into a single class.
WindowedRefs singleClassRefs(const Grid& grid, DataId numData, int windows,
                             ReferenceTrace& traceOut) {
  DataSpace ds;
  ds.addArray("A", 1, numData);
  ReferenceTrace t(ds);
  for (StepId s = 0; s < static_cast<StepId>(windows); ++s) {
    for (DataId d = 0; d < numData; ++d) {
      t.add(s, static_cast<ProcId>(s % grid.size()), d, 2);
    }
  }
  t.finalize();
  traceOut = std::move(t);
  return WindowedRefs(
      traceOut,
      WindowPartition::evenCount(static_cast<StepId>(windows), windows), grid);
}

TEST(GomcdsAlloc, ScheduleAllocationsIndependentOfDataCount) {
  const Grid grid(4, 4);
  const CostModel model(grid);
  const int windows = 4;
  ReferenceTrace smallTrace{DataSpace::singleSquare(1)};
  ReferenceTrace bigTrace{DataSpace::singleSquare(1)};
  const WindowedRefs smallRefs =
      singleClassRefs(grid, 8, windows, smallTrace);
  const WindowedRefs bigRefs = singleClassRefs(grid, 64, windows, bigTrace);

  // Warm run resolves metric handles and grows the per-thread scratch.
  (void)scheduleGomcds(smallRefs, model);

  const std::int64_t beforeSmall = allocCount();
  (void)scheduleGomcds(smallRefs, model);
  const std::int64_t smallAllocs = allocCount() - beforeSmall;

  const std::int64_t beforeBig = allocCount();
  (void)scheduleGomcds(bigRefs, model);
  const std::int64_t bigAllocs = allocCount() - beforeBig;

  // Both runs have one equivalence class; 56 extra data must not buy extra
  // allocations beyond noise (the steady-state loop is allocation-free).
  EXPECT_LE(bigAllocs, smallAllocs + 4)
      << "per-datum steady state is supposed to be allocation-free: "
      << smallAllocs << " allocations for 8 data vs " << bigAllocs
      << " for 64";
}

}  // namespace
}  // namespace pimsched

#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace pimsched {
namespace {

ReferenceTrace sample() {
  DataSpace ds;
  ds.addArray("A", 2, 2);
  ds.addArray("B", 1, 3);
  ReferenceTrace t(ds);
  t.add(0, 3, 0, 2);
  t.add(1, 1, 5, 1);
  t.add(0, 0, 2, 7);
  t.finalize();
  return t;
}

TEST(TraceIo, RoundTripPreservesEverything) {
  const ReferenceTrace original = sample();
  std::stringstream ss;
  saveTrace(original, ss);
  const ReferenceTrace loaded = loadTrace(ss);

  EXPECT_EQ(loaded.numData(), original.numData());
  EXPECT_EQ(loaded.numSteps(), original.numSteps());
  EXPECT_EQ(loaded.totalWeight(), original.totalWeight());
  ASSERT_EQ(loaded.accesses().size(), original.accesses().size());
  for (std::size_t i = 0; i < loaded.accesses().size(); ++i) {
    EXPECT_EQ(loaded.accesses()[i], original.accesses()[i]);
  }
  ASSERT_EQ(loaded.dataSpace().numArrays(), 2);
  EXPECT_EQ(loaded.dataSpace().arrays()[1].name, "B");
  EXPECT_EQ(loaded.dataSpace().arrays()[1].cols, 3);
}

TEST(TraceIo, IgnoresCommentsAndBlankLines) {
  std::stringstream ss(
      "pimtrace v1\n"
      "# a comment\n"
      "array A 2 2\n"
      "\n"
      "access 0 1 2 3\n");
  const ReferenceTrace t = loadTrace(ss);
  EXPECT_EQ(t.accesses().size(), 1u);
  EXPECT_EQ(t.accesses()[0].weight, 3);
}

TEST(TraceIo, RejectsMissingHeader) {
  std::stringstream ss("array A 2 2\n");
  EXPECT_THROW(loadTrace(ss), std::runtime_error);
}

TEST(TraceIo, RejectsUnknownRecord) {
  std::stringstream ss("pimtrace v1\nbogus 1 2 3\n");
  EXPECT_THROW(loadTrace(ss), std::runtime_error);
}

TEST(TraceIo, RejectsMalformedAccess) {
  std::stringstream ss("pimtrace v1\narray A 2 2\naccess 0 1\n");
  EXPECT_THROW(loadTrace(ss), std::runtime_error);
}

TEST(TraceIo, RejectsArrayAfterAccess) {
  std::stringstream ss(
      "pimtrace v1\narray A 2 2\naccess 0 0 0 1\narray B 2 2\n");
  EXPECT_THROW(loadTrace(ss), std::runtime_error);
}

TEST(TraceIo, EmptyTraceRoundTrip) {
  DataSpace ds;
  ds.addArray("A", 1, 1);
  ReferenceTrace t(ds);
  t.finalize();
  std::stringstream ss;
  saveTrace(t, ss);
  const ReferenceTrace loaded = loadTrace(ss);
  EXPECT_EQ(loaded.numSteps(), 0);
  EXPECT_EQ(loaded.numData(), 1);
}

TEST(TraceIo, FileRoundTrip) {
  const ReferenceTrace original = sample();
  const std::string path = ::testing::TempDir() + "/pimsched_trace_test.txt";
  saveTraceFile(original, path);
  const ReferenceTrace loaded = loadTraceFile(path);
  EXPECT_EQ(loaded.totalWeight(), original.totalWeight());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(loadTraceFile("/nonexistent/definitely/missing.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace pimsched

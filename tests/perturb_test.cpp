#include "trace/perturb.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace pimsched {
namespace {

TEST(PerturbTrace, ZeroFractionIsIdentity) {
  const Grid g(3, 3);
  testutil::Rng rng(201);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 3, 3, 6, 15);
  const ReferenceTrace p = perturbTrace(t, g, 0.0);
  ASSERT_EQ(p.accesses().size(), t.accesses().size());
  for (std::size_t i = 0; i < t.accesses().size(); ++i) {
    EXPECT_EQ(p.accesses()[i], t.accesses()[i]);
  }
}

TEST(PerturbTrace, PreservesVolumeStepsAndData) {
  const Grid g(4, 4);
  testutil::Rng rng(202);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 4, 4, 10, 30);
  const ReferenceTrace p = perturbTrace(t, g, 0.5);
  EXPECT_EQ(p.totalWeight(), t.totalWeight());
  EXPECT_EQ(p.numSteps(), t.numSteps());
  EXPECT_EQ(p.numData(), t.numData());
}

TEST(PerturbTrace, FullFractionChangesMostProcs) {
  const Grid g(4, 4);
  testutil::Rng rng(203);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 4, 4, 10, 40);
  const ReferenceTrace p = perturbTrace(t, g, 1.0);
  // With 16 processors a uniformly redrawn proc collides ~1/16 of the
  // time; the weight distribution over procs must differ substantially.
  std::vector<Cost> before(16, 0), after(16, 0);
  for (const Access& a : t.accesses()) {
    before[static_cast<std::size_t>(a.proc)] += a.weight;
  }
  for (const Access& a : p.accesses()) {
    after[static_cast<std::size_t>(a.proc)] += a.weight;
  }
  Cost l1 = 0;
  for (int i = 0; i < 16; ++i) l1 += std::abs(before[i] - after[i]);
  EXPECT_GT(l1, 0);
}

TEST(PerturbTrace, DeterministicPerSeed) {
  const Grid g(3, 3);
  testutil::Rng rng(204);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 3, 3, 6, 20);
  const ReferenceTrace a = perturbTrace(t, g, 0.3, 9);
  const ReferenceTrace b = perturbTrace(t, g, 0.3, 9);
  const ReferenceTrace c = perturbTrace(t, g, 0.3, 10);
  ASSERT_EQ(a.accesses().size(), b.accesses().size());
  bool sameAsB = true, sameAsC = a.accesses().size() == c.accesses().size();
  for (std::size_t i = 0; i < a.accesses().size(); ++i) {
    sameAsB = sameAsB && a.accesses()[i] == b.accesses()[i];
    if (sameAsC && i < c.accesses().size()) {
      sameAsC = a.accesses()[i] == c.accesses()[i];
    }
  }
  EXPECT_TRUE(sameAsB);
  EXPECT_FALSE(sameAsC);
}

TEST(PerturbTrace, RejectsBadInput) {
  const Grid g(2, 2);
  ReferenceTrace unfinalized(DataSpace::singleSquare(1));
  unfinalized.add(0, 0, 0, 1);
  EXPECT_THROW((void)perturbTrace(unfinalized, g, 0.1),
               std::invalid_argument);
  unfinalized.finalize();
  EXPECT_THROW((void)perturbTrace(unfinalized, g, -0.1),
               std::invalid_argument);
  EXPECT_THROW((void)perturbTrace(unfinalized, g, 1.1),
               std::invalid_argument);
}

}  // namespace
}  // namespace pimsched

// Property tests for the paper's §4.1 structure results:
//   Lemma 1  (1-D): between the closest pair of local-optimal centers of two
//            windows, the serving cost of window 0 increases strictly
//            monotonically along the axis from its center toward the other.
//   Theorem 2 (2-D): the same along any shortest grid path between the two
//            centers.
// These underpin Theorem 3 (merging exactly two such windows never helps),
// which is tested in grouping_test.cpp.

#include <gtest/gtest.h>

#include "cost/center_costs.hpp"
#include "test_util.hpp"

namespace pimsched {
namespace {

/// All local optima (argmin set) of a cost surface.
std::vector<ProcId> argminSet(const std::vector<Cost>& costs) {
  const Cost best = *std::min_element(costs.begin(), costs.end());
  std::vector<ProcId> out;
  for (ProcId p = 0; p < static_cast<ProcId>(costs.size()); ++p) {
    if (costs[static_cast<std::size_t>(p)] == best) out.push_back(p);
  }
  return out;
}

/// The closest pair between two argmin sets (ties: smallest ids).
std::pair<ProcId, ProcId> closestPair(const Grid& g,
                                      const std::vector<ProcId>& a,
                                      const std::vector<ProcId>& b) {
  std::pair<ProcId, ProcId> best = {a.front(), b.front()};
  int bestDist = g.manhattan(best.first, best.second);
  for (const ProcId pa : a) {
    for (const ProcId pb : b) {
      const int d = g.manhattan(pa, pb);
      if (d < bestDist) {
        bestDist = d;
        best = {pa, pb};
      }
    }
  }
  return best;
}

TEST(Lemma1, OneDimensionalMonotoneCostAwayFromCenter) {
  // In 1-D the weighted-L1 cost is convex, so away from the argmin plateau
  // it increases monotonically; strictly when total weight > 0.
  const Grid g(1, 12);
  const CostModel model(g);
  testutil::Rng rng(81);
  for (int trial = 0; trial < 100; ++trial) {
    const auto refs = testutil::randomRefs(rng, g, 8);
    if (refs.empty()) continue;
    const auto costs = separableCenterCosts(model, refs);
    const auto centers = argminSet(costs);
    const ProcId lo = centers.front();
    const ProcId hi = centers.back();
    // Strictly increasing left of the plateau and right of it.
    for (ProcId p = lo; p > 0; --p) {
      EXPECT_GT(costs[static_cast<std::size_t>(p - 1)],
                costs[static_cast<std::size_t>(p)]);
    }
    for (ProcId p = hi; p + 1 < g.size(); ++p) {
      EXPECT_GT(costs[static_cast<std::size_t>(p + 1)],
                costs[static_cast<std::size_t>(p)]);
    }
  }
}

TEST(Lemma1, CostIncreasesFromCenterTowardOtherWindowCenter) {
  // The literal statement: walk from window T0's center toward window T1's
  // center (closest pair); cost(D, T0, .) increases monotonically.
  const Grid g(1, 16);
  const CostModel model(g);
  testutil::Rng rng(82);
  for (int trial = 0; trial < 100; ++trial) {
    const auto refs0 = testutil::randomRefs(rng, g, 6);
    const auto refs1 = testutil::randomRefs(rng, g, 6);
    if (refs0.empty() || refs1.empty()) continue;
    const auto costs0 = separableCenterCosts(model, refs0);
    const auto costs1 = separableCenterCosts(model, refs1);
    const auto [c0, c1] = closestPair(g, argminSet(costs0), argminSet(costs1));
    const int dir = (c1 > c0) ? 1 : (c1 < c0 ? -1 : 0);
    Cost prev = costs0[static_cast<std::size_t>(c0)];
    for (ProcId p = c0 + dir; dir != 0 && p != c1 + dir; p += dir) {
      EXPECT_GT(costs0[static_cast<std::size_t>(p)], prev);
      prev = costs0[static_cast<std::size_t>(p)];
    }
  }
}

TEST(Theorem2, TwoDimensionalMonotoneAlongShortestPath) {
  // 2-D: cost separates into f_row + f_col; any monotone (staircase)
  // shortest path from c0 toward c1 sees non-decreasing cost, strictly
  // increasing once outside c0's argmin plateau. We verify on the
  // dimension-ordered shortest path.
  const Grid g(8, 8);
  const CostModel model(g);
  testutil::Rng rng(83);
  for (int trial = 0; trial < 100; ++trial) {
    const auto refs0 = testutil::randomRefs(rng, g, 10);
    const auto refs1 = testutil::randomRefs(rng, g, 10);
    if (refs0.empty() || refs1.empty()) continue;
    const auto costs0 = separableCenterCosts(model, refs0);
    const auto costs1 = separableCenterCosts(model, refs1);
    const auto [c0, c1] = closestPair(g, argminSet(costs0), argminSet(costs1));

    // Walk column-first then row-first (the x-y shortest path).
    Coord cur = g.coord(c0);
    const Coord dst = g.coord(c1);
    Cost prev = costs0[static_cast<std::size_t>(c0)];
    const auto stepCheck = [&](Coord next) {
      const Cost c = costs0[static_cast<std::size_t>(g.id(next))];
      EXPECT_GE(c, prev) << "cost dipped along shortest path";
      prev = c;
      cur = next;
    };
    while (cur.col != dst.col) {
      stepCheck(Coord{cur.row, cur.col + (dst.col > cur.col ? 1 : -1)});
    }
    while (cur.row != dst.row) {
      stepCheck(Coord{cur.row + (dst.row > cur.row ? 1 : -1), cur.col});
    }
    // Endpoint: strictly more expensive than c0 unless c1 is also optimal
    // for window 0.
    const Cost atC0 = costs0[static_cast<std::size_t>(c0)];
    const Cost atC1 = costs0[static_cast<std::size_t>(c1)];
    EXPECT_GE(atC1, atC0);
  }
}

TEST(Theorem2, AxisCostsAreConvex) {
  // Convexity of the per-axis cost (second difference >= 0) is the
  // mechanism behind both monotonicity results.
  testutil::Rng rng(84);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Cost> hist;
    const int n = 3 + static_cast<int>(rng.below(12));
    for (int i = 0; i < n; ++i) hist.push_back(rng.range(0, 6));
    const auto f = axisCosts(hist);
    for (std::size_t x = 1; x + 1 < f.size(); ++x) {
      EXPECT_GE(f[x + 1] - f[x], f[x] - f[x - 1]);
    }
  }
}

}  // namespace
}  // namespace pimsched

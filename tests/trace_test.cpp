#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pimsched {
namespace {

ReferenceTrace smallTrace() {
  ReferenceTrace t(DataSpace::singleSquare(2));
  t.add(0, 1, 0, 2);
  t.add(0, 0, 0, 1);
  t.add(1, 2, 3, 1);
  t.finalize();
  return t;
}

TEST(ReferenceTrace, FinalizeSortsByStepDataProc) {
  const ReferenceTrace t = smallTrace();
  ASSERT_EQ(t.accesses().size(), 3u);
  EXPECT_EQ(t.accesses()[0].proc, 0);
  EXPECT_EQ(t.accesses()[1].proc, 1);
  EXPECT_EQ(t.accesses()[2].step, 1);
}

TEST(ReferenceTrace, MergesDuplicateTriples) {
  ReferenceTrace t(DataSpace::singleSquare(2));
  t.add(0, 1, 2, 3);
  t.add(0, 1, 2, 4);
  t.finalize();
  ASSERT_EQ(t.accesses().size(), 1u);
  EXPECT_EQ(t.accesses()[0].weight, 7);
  EXPECT_EQ(t.totalWeight(), 7);
}

TEST(ReferenceTrace, StepAndWeightAccounting) {
  const ReferenceTrace t = smallTrace();
  EXPECT_EQ(t.numSteps(), 2);
  EXPECT_EQ(t.totalWeight(), 4);
  EXPECT_EQ(t.numData(), 4);
}

TEST(ReferenceTrace, EmptyTrace) {
  ReferenceTrace t(DataSpace::singleSquare(2));
  t.finalize();
  EXPECT_EQ(t.numSteps(), 0);
  EXPECT_EQ(t.totalWeight(), 0);
  EXPECT_TRUE(t.accesses().empty());
}

TEST(ReferenceTrace, FinalizeIsIdempotent) {
  ReferenceTrace t(DataSpace::singleSquare(2));
  t.add(0, 0, 0, 1);
  t.finalize();
  t.finalize();
  EXPECT_EQ(t.accesses().size(), 1u);
}

TEST(ReferenceTrace, RejectsInvalidAccesses) {
  ReferenceTrace t(DataSpace::singleSquare(2));
  EXPECT_THROW(t.add(-1, 0, 0, 1), std::invalid_argument);
  EXPECT_THROW(t.add(0, -1, 0, 1), std::invalid_argument);
  EXPECT_THROW(t.add(0, 0, 4, 1), std::invalid_argument);   // data out of range
  EXPECT_THROW(t.add(0, 0, -1, 1), std::invalid_argument);
  EXPECT_THROW(t.add(0, 0, 0, 0), std::invalid_argument);   // zero weight
}

TEST(ReferenceTrace, AddAfterFinalizeUnfinalizes) {
  ReferenceTrace t(DataSpace::singleSquare(2));
  t.add(0, 0, 0, 1);
  t.finalize();
  EXPECT_TRUE(t.finalized());
  t.add(1, 0, 0, 1);
  EXPECT_FALSE(t.finalized());
  t.finalize();
  EXPECT_EQ(t.numSteps(), 2);
}

}  // namespace
}  // namespace pimsched

#include "kernels/extra_kernels.hpp"

#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "core/gomcds.hpp"
#include "core/scds.hpp"

namespace pimsched {
namespace {

constexpr int kN = 12;

TEST(Spmv, VectorsOnlyAndDeterministic) {
  const Grid g(4, 4);
  TraceBuilder tb;
  const IterationMap map(g, kN, kN, PartitionKind::kBlock2D);
  emitSpmv(tb, map, kN, 3);
  const ReferenceTrace t = std::move(tb).build();
  EXPECT_EQ(t.numSteps(), 3);
  EXPECT_EQ(t.numData(), 2 * kN);  // X and Y vectors
  // Same seed reproduces exactly.
  TraceBuilder tb2;
  emitSpmv(tb2, map, kN, 3);
  const ReferenceTrace t2 = std::move(tb2).build();
  EXPECT_EQ(t.totalWeight(), t2.totalWeight());
  EXPECT_EQ(t.accesses().size(), t2.accesses().size());
}

TEST(Spmv, EveryRowReadsItsDiagonal) {
  const Grid g(2, 2);
  TraceBuilder tb;
  const IterationMap map(g, kN, kN, PartitionKind::kBlock2D);
  emitSpmv(tb, map, kN, 1, 4);
  const ReferenceTrace t = std::move(tb).build();
  // X[r] (array 0) must be read at step 0 for every r (diagonal entry).
  std::vector<bool> seen(static_cast<std::size_t>(kN), false);
  for (const Access& a : t.accesses()) {
    const ElementRef e = t.dataSpace().element(a.data);
    if (e.array == 0) seen[static_cast<std::size_t>(e.row)] = true;
  }
  for (const bool b : seen) EXPECT_TRUE(b);
}

TEST(Spmv, SweepsRepeatTheSamePattern) {
  const Grid g(2, 2);
  TraceBuilder tb;
  const IterationMap map(g, kN, kN, PartitionKind::kBlock2D);
  emitSpmv(tb, map, kN, 2, 5);
  const ReferenceTrace t = std::move(tb).build();
  Cost w0 = 0, w1 = 0;
  for (const Access& a : t.accesses()) {
    (a.step == 0 ? w0 : w1) += a.weight;
  }
  EXPECT_EQ(w0, w1);
}

TEST(Wavefront, StepPerAntiDiagonal) {
  const Grid g(4, 4);
  TraceBuilder tb;
  const IterationMap map(g, kN, kN, PartitionKind::kBlock2D);
  emitWavefront(tb, map, kN, 2);
  const ReferenceTrace t = std::move(tb).build();
  EXPECT_EQ(t.numSteps(), 2 * (2 * kN - 1));
}

TEST(Wavefront, DependenciesPointBackward) {
  // Every read of a neighbour happens on the step after that neighbour's
  // write within a sweep (anti-diagonal order).
  const int n = 6;
  const Grid g(2, 2);
  TraceBuilder tb;
  const IterationMap map(g, n, n, PartitionKind::kBlock2D);
  emitWavefront(tb, map, n, 1);
  const ReferenceTrace t = std::move(tb).build();
  for (const Access& a : t.accesses()) {
    const ElementRef e = t.dataSpace().element(a.data);
    const int diag = e.row + e.col;
    // The write lands on the element's own anti-diagonal step; neighbour
    // reads come exactly one step later (weights can merge when both
    // readers share a processor, so only the step is checked).
    EXPECT_TRUE(a.step == diag || a.step == diag + 1)
        << "element (" << e.row << "," << e.col << ") touched at step "
        << a.step;
  }
}

TEST(BandedElimination, StaysInsideTheBand) {
  const int n = 12, band = 3;
  const Grid g(4, 4);
  TraceBuilder tb;
  const IterationMap map(g, n, n, PartitionKind::kBlock2D);
  emitBandedElimination(tb, map, n, band);
  const ReferenceTrace t = std::move(tb).build();
  EXPECT_EQ(t.numSteps(), n - 1);
  for (const Access& a : t.accesses()) {
    const ElementRef e = t.dataSpace().element(a.data);
    EXPECT_LE(std::abs(e.row - e.col), band)
        << "element outside the band was touched";
  }
}

TEST(BandedElimination, MovingBandRewardsDataMovement) {
  // The active region slides down the diagonal; GOMCDS must beat SCDS.
  const int n = 16;
  const Grid g(4, 4);
  TraceBuilder tb;
  const IterationMap map(g, n, n, PartitionKind::kBlock2D);
  emitBandedElimination(tb, map, n, 2);
  const ReferenceTrace t = std::move(tb).build();
  const WindowedRefs refs(t, WindowPartition::perStep(t.numSteps()), g);
  const CostModel model(g);
  const Cost go =
      evaluateSchedule(scheduleGomcds(refs, model), refs, model)
          .aggregate.total();
  const Cost sc =
      evaluateSchedule(scheduleScds(refs, model), refs, model)
          .aggregate.total();
  EXPECT_LT(go, sc);
}

TEST(ExtraKernels, AllBuildOnRectangularGrids) {
  const Grid g(2, 5);
  TraceBuilder tb;
  const IterationMap map(g, kN, kN, PartitionKind::kBlock2D);
  emitSpmv(tb, map, kN, 2);
  emitWavefront(tb, map, kN, 1);
  emitBandedElimination(tb, map, kN, 2);
  const ReferenceTrace t = std::move(tb).build();
  EXPECT_GT(t.numSteps(), 0);
  for (const Access& a : t.accesses()) {
    EXPECT_TRUE(g.contains(a.proc));
  }
}

}  // namespace
}  // namespace pimsched

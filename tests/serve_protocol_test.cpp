#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "serve/json.hpp"
#include "trace/trace_io.hpp"

namespace pimsched::serve {
namespace {

// ---------------------------------------------------------------- Json --

TEST(Json, ParsesScalarsExactly) {
  EXPECT_TRUE(Json::parse("null").isNull());
  EXPECT_EQ(Json::parse("true").asBool(), true);
  EXPECT_EQ(Json::parse("false").asBool(), false);
  EXPECT_EQ(Json::parse("42").asInt64(), 42);
  EXPECT_EQ(Json::parse("-7").asInt64(), -7);
  // Large ids stay exact instead of being squeezed through a double.
  EXPECT_EQ(Json::parse("9007199254740993").asInt64(), 9007199254740993LL);
  EXPECT_DOUBLE_EQ(Json::parse("2.5").asDouble(), 2.5);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").asDouble(), 1000.0);
  EXPECT_EQ(Json::parse("\"hi\"").asString(), "hi");
}

TEST(Json, ParsesEscapesIncludingSurrogatePairs) {
  EXPECT_EQ(Json::parse(R"("a\nb\t\"\\")").asString(), "a\nb\t\"\\");
  EXPECT_EQ(Json::parse(R"("A")").asString(), "A");
  EXPECT_EQ(Json::parse(R"("é")").asString(), "\xc3\xa9");
  // U+1F600 as a surrogate pair -> 4-byte UTF-8.
  EXPECT_EQ(Json::parse(R"("😀")").asString(),
            "\xf0\x9f\x98\x80");
  EXPECT_THROW((void)Json::parse(R"("\ud83d")"), JsonError);  // lone high
}

TEST(Json, ParsesNestedStructures) {
  const Json v = Json::parse(R"({"a": [1, {"b": true}], "c": "x"})");
  ASSERT_TRUE(v.isObject());
  const Json* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->isArray());
  EXPECT_EQ(a->asArray().at(0).asInt64(), 1);
  EXPECT_EQ(a->asArray().at(1).find("b")->asBool(), true);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW((void)Json::parse(""), JsonError);
  EXPECT_THROW((void)Json::parse("{"), JsonError);
  EXPECT_THROW((void)Json::parse("{\"a\":}"), JsonError);
  EXPECT_THROW((void)Json::parse("[1,]"), JsonError);
  EXPECT_THROW((void)Json::parse("nul"), JsonError);
  EXPECT_THROW((void)Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW((void)Json::parse("{} trailing"), JsonError);
  EXPECT_THROW((void)Json::parse("\xff\xfe"), JsonError);
}

TEST(Json, DepthLimitStopsHostileNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  EXPECT_THROW((void)Json::parse(deep, /*maxDepth=*/64), JsonError);
  EXPECT_NO_THROW((void)Json::parse(deep, /*maxDepth=*/128));
}

TEST(Json, AccessorsRejectKindMismatches) {
  const Json v = Json::parse("\"text\"");
  EXPECT_THROW((void)v.asInt64(), JsonError);
  EXPECT_THROW((void)v.asBool(), JsonError);
  EXPECT_THROW((void)v.asObject(), JsonError);
  // A fractional double has no exact integer value.
  EXPECT_THROW((void)Json::parse("2.5").asInt64(), JsonError);
  EXPECT_EQ(Json::parse("2").asDouble(), 2.0);  // int widens fine
}

TEST(Json, DumpIsOneLineAndRoundTrips) {
  Json v;
  v.set("b", 1).set("a", "two\nlines").set("c", Json::Array{Json(true)});
  const std::string text = v.dump();
  EXPECT_EQ(text.find('\n'), std::string::npos);  // NDJSON-safe
  EXPECT_EQ(text, Json::parse(text).dump());      // stable round trip
  // Ordered map => deterministic member order.
  EXPECT_LT(text.find("\"a\""), text.find("\"b\""));
}

// ------------------------------------------------------------ protocol --

std::string sampleTraceText() {
  ReferenceTrace trace(DataSpace::singleSquare(3));
  for (int s = 0; s < 4; ++s) {
    for (int d = 0; d < 9; ++d) trace.add(s, (d + s) % 9, d);
  }
  trace.finalize();
  std::ostringstream os;
  saveTrace(trace, os);
  return std::move(os).str();
}

Json submitRequest() {
  Json request;
  request.set("verb", "submit")
      .set("trace", sampleTraceText())
      .set("grid", "3x3")
      .set("method", "gomcds")
      .set("windows", 2)
      .set("wait", true);
  return request;
}

/// Sends one request line and parses the reply, asserting it is an object.
Json call(ProtocolHandler& handler, const std::string& line,
          bool* shutdown = nullptr) {
  const std::string reply = handler.handleLine(line, shutdown);
  const Json parsed = Json::parse(reply);
  EXPECT_TRUE(parsed.isObject()) << reply;
  return parsed;
}

/// Asserts the reply is {ok:false, error:...} and returns the error text.
std::string expectError(ProtocolHandler& handler, const std::string& line) {
  const Json reply = call(handler, line);
  const Json* ok = reply.find("ok");
  EXPECT_TRUE(ok != nullptr && ok->isBool() && !ok->asBool())
      << reply.dump();
  const Json* error = reply.find("error");
  EXPECT_TRUE(error != nullptr && error->isString());
  EXPECT_FALSE(error->asString().empty());
  return error->asString();
}

TEST(Protocol, SubmitStatusResultCancelStatsWork) {
  SchedulingService service;
  ProtocolHandler handler(service);

  const Json reply = call(handler, submitRequest().dump());
  EXPECT_TRUE(reply.find("ok")->asBool());
  EXPECT_FALSE(reply.find("cached")->asBool());
  EXPECT_EQ(reply.find("state")->asString(), "done");  // wait:true
  EXPECT_GT(reply.find("total")->asInt64(), 0);
  EXPECT_EQ(reply.find("digest")->asString().size(), 32u);
  const std::int64_t id = reply.find("id")->asInt64();

  Json statusRequest;
  statusRequest.set("verb", "status").set("id", id);
  const Json status = call(handler, statusRequest.dump());
  EXPECT_TRUE(status.find("ok")->asBool());
  EXPECT_EQ(status.find("state")->asString(), "done");

  Json resultRequest;
  resultRequest.set("verb", "result").set("id", id).set("schedule", true);
  const Json result = call(handler, resultRequest.dump());
  EXPECT_TRUE(result.find("ok")->asBool());
  EXPECT_EQ(result.find("total")->asInt64(), reply.find("total")->asInt64());
  ASSERT_NE(result.find("schedule"), nullptr);
  EXPECT_NE(result.find("schedule")->asString().find("pimsched v1"),
            std::string::npos);

  // A finished job can no longer be cancelled, but the verb still replies.
  Json cancelRequest;
  cancelRequest.set("verb", "cancel").set("id", id);
  const Json cancel = call(handler, cancelRequest.dump());
  EXPECT_TRUE(cancel.find("ok")->asBool());
  EXPECT_FALSE(cancel.find("cancelled")->asBool());

  const Json stats = call(handler, R"({"verb":"stats"})");
  EXPECT_TRUE(stats.find("ok")->asBool());
  EXPECT_EQ(stats.find("accepted")->asInt64(), 1);
  EXPECT_EQ(stats.find("completed")->asInt64(), 1);
}

TEST(Protocol, ResubmitReportsTheCacheHit) {
  SchedulingService service;
  ProtocolHandler handler(service);
  (void)call(handler, submitRequest().dump());
  const Json second = call(handler, submitRequest().dump());
  EXPECT_TRUE(second.find("ok")->asBool());
  EXPECT_TRUE(second.find("cached")->asBool());
  EXPECT_TRUE(second.find("cache_hit")->asBool());
  const Json stats = call(handler, R"({"verb":"stats"})");
  EXPECT_EQ(stats.find("cache_hits")->asInt64(), 1);
}

TEST(Protocol, MalformedJsonGetsAStructuredErrorReply) {
  SchedulingService service;
  ProtocolHandler handler(service);
  EXPECT_NE(expectError(handler, "this is not json").find("parse error"),
            std::string::npos);
  (void)expectError(handler, "{\"verb\": \"stats\"");   // truncated frame
  (void)expectError(handler, "");                        // empty line
  (void)expectError(handler, std::string("\xff\xfe bad bytes"));
  // The handler survives garbage: the next well-formed request succeeds.
  EXPECT_TRUE(call(handler, R"({"verb":"stats"})").find("ok")->asBool());
}

TEST(Protocol, NonObjectRequestsAreRejected) {
  SchedulingService service;
  ProtocolHandler handler(service);
  EXPECT_NE(expectError(handler, "42").find("object"), std::string::npos);
  (void)expectError(handler, "[1,2]");
  (void)expectError(handler, "\"stats\"");
}

TEST(Protocol, OversizedFramesAreRejectedWithTheLimit) {
  SchedulingService service;
  ProtocolOptions options;
  options.maxFrameBytes = 64;
  ProtocolHandler handler(service, options);
  const std::string big(65, 'x');
  const std::string error = expectError(handler, big);
  EXPECT_NE(error.find("frame too large"), std::string::npos) << error;
  EXPECT_NE(error.find("64"), std::string::npos) << error;
  // At exactly the limit the frame is parsed (and fails as JSON, not size).
  const std::string atLimit(64, 'x');
  EXPECT_EQ(expectError(handler, atLimit).find("frame too large"),
            std::string::npos);
}

TEST(Protocol, UnknownVerbsAndMissingFieldsAreRejected) {
  SchedulingService service;
  ProtocolHandler handler(service);
  EXPECT_NE(expectError(handler, R"({"verb":"frobnicate"})")
                .find("unknown verb"),
            std::string::npos);
  (void)expectError(handler, R"({})");                      // no verb
  (void)expectError(handler, R"({"verb":"status"})");       // no id
  (void)expectError(handler, R"({"verb":"status","id":"x"})");
  (void)expectError(handler, R"({"verb":"status","id":999})");  // unknown
  (void)expectError(handler, R"({"verb":"result","id":999})");
  (void)expectError(handler, R"({"verb":"cancel","id":999})");
}

TEST(Protocol, SubmitValidationNamesTheBadField) {
  SchedulingService service;
  ProtocolHandler handler(service);
  const std::string trace = sampleTraceText();

  // Exactly one trace source.
  (void)expectError(handler, R"({"verb":"submit"})");
  Json both = submitRequest();
  both.set("trace_file", "/tmp/x.pimtrace");
  (void)expectError(handler, both.dump());

  Json badGrid = submitRequest();
  badGrid.set("grid", "4y4");
  EXPECT_NE(expectError(handler, badGrid.dump()).find("grid"),
            std::string::npos);
  Json numericGrid = submitRequest();
  numericGrid.set("grid", 4);
  EXPECT_NE(expectError(handler, numericGrid.dump()).find("grid"),
            std::string::npos);
  Json zeroGrid = submitRequest();
  zeroGrid.set("grid", "0x4");
  (void)expectError(handler, zeroGrid.dump());

  Json badMethod = submitRequest();
  badMethod.set("method", "quantum");
  EXPECT_NE(expectError(handler, badMethod.dump()).find("unknown method"),
            std::string::npos);

  Json badWindows = submitRequest();
  badWindows.set("windows", 0);
  EXPECT_NE(expectError(handler, badWindows.dump()).find("windows"),
            std::string::npos);

  Json badCapacity = submitRequest();
  badCapacity.set("capacity", "infinite");
  EXPECT_NE(expectError(handler, badCapacity.dump()).find("capacity"),
            std::string::npos);
  Json negativeCapacity = submitRequest();
  negativeCapacity.set("capacity", -3);
  (void)expectError(handler, negativeCapacity.dump());

  Json badTrace = submitRequest();
  badTrace.set("trace", "bogus v9");
  EXPECT_NE(expectError(handler, badTrace.dump()).find("cannot load trace"),
            std::string::npos);

  Json badThreads = submitRequest();
  badThreads.set("threads", -1);
  (void)expectError(handler, badThreads.dump());

  // None of the rejects reached the service.
  EXPECT_EQ(service.stats().accepted, 0);
  (void)trace;
}

TEST(Protocol, TenantFieldIsValidatedAndFoldedIntoTheDigest) {
  SchedulingService service;
  ProtocolHandler handler(service);

  Json plain = submitRequest();
  const Json anonymous = call(handler, plain.dump());
  EXPECT_TRUE(anonymous.find("ok")->asBool());

  Json tenantA = submitRequest();
  tenantA.set("tenant", "team-a.prod_1");
  const Json a = call(handler, tenantA.dump());
  EXPECT_TRUE(a.find("ok")->asBool());
  // Same work, different tenant: the digest differs, so neither the
  // anonymous nor the other tenant's cache entry is served.
  EXPECT_FALSE(a.find("cached")->asBool());
  EXPECT_NE(a.find("digest")->asString(),
            anonymous.find("digest")->asString());

  Json tenantARepeat = submitRequest();
  tenantARepeat.set("tenant", "team-a.prod_1");
  const Json repeat = call(handler, tenantARepeat.dump());
  EXPECT_TRUE(repeat.find("cached")->asBool());
  EXPECT_EQ(repeat.find("digest")->asString(), a.find("digest")->asString());

  Json badChars = submitRequest();
  badChars.set("tenant", "team a");
  EXPECT_NE(expectError(handler, badChars.dump()).find("tenant"),
            std::string::npos);
  Json tooLong = submitRequest();
  tooLong.set("tenant", std::string(65, 'x'));
  EXPECT_NE(expectError(handler, tooLong.dump()).find("tenant"),
            std::string::npos);
  Json numericTenant = submitRequest();
  numericTenant.set("tenant", 7);
  EXPECT_NE(expectError(handler, numericTenant.dump()).find("tenant"),
            std::string::npos);
}

TEST(Protocol, BatchFlagIsAcceptedAndDoesNotChangeTheDigest) {
  SchedulingService service;
  ProtocolHandler handler(service);

  Json plain = submitRequest();
  const Json first = call(handler, plain.dump());
  EXPECT_TRUE(first.find("ok")->asBool());

  // Batch marks a dispatch class, not different work: outside a fleet the
  // flag is inert and the cached answer still matches.
  Json batched = submitRequest();
  batched.set("batch", true);
  const Json second = call(handler, batched.dump());
  EXPECT_TRUE(second.find("ok")->asBool());
  EXPECT_TRUE(second.find("cached")->asBool());
  EXPECT_EQ(second.find("digest")->asString(),
            first.find("digest")->asString());

  Json badBatch = submitRequest();
  badBatch.set("batch", "yes");
  EXPECT_NE(expectError(handler, badBatch.dump()).find("batch"),
            std::string::npos);
}

TEST(Protocol, OversizedGridsAreAProtocolErrorNotAnAllocation) {
  SchedulingService service;
  ProtocolHandler handler(service);

  Json hugeProduct = submitRequest();
  hugeProduct.set("grid", "100000x100000");
  EXPECT_NE(expectError(handler, hugeProduct.dump()).find("grid"),
            std::string::npos);
  Json hugeSide = submitRequest();
  hugeSide.set("grid", "5000x1");  // side above 4096
  EXPECT_NE(expectError(handler, hugeSide.dump()).find("too large"),
            std::string::npos);
  Json tooManyProcs = submitRequest();
  tooManyProcs.set("grid", "2048x1024");  // 2^21 > the 2^20 processor bound
  EXPECT_NE(expectError(handler, tooManyProcs.dump()).find("too large"),
            std::string::npos);
  // Nothing reached the service.
  EXPECT_EQ(service.stats().accepted, 0);
}

TEST(Protocol, FaultSpecsAreValidatedAtSubmitTime) {
  SchedulingService service;
  ProtocolHandler handler(service);

  // A valid fault list is accepted and the faulted job completes.
  Json faulted = submitRequest();
  faulted.set("faults", Json(Json::Array{Json("proc:0"), Json("link:1-2")}));
  const Json reply = call(handler, faulted.dump());
  EXPECT_TRUE(reply.find("ok")->asBool()) << reply.dump();
  EXPECT_EQ(reply.find("state")->asString(), "done");

  // Bad specs are submit-time errors naming the offending spec.
  Json badSpec = submitRequest();
  badSpec.set("faults", Json(Json::Array{Json("proc:99")}));
  EXPECT_NE(expectError(handler, badSpec.dump()).find("proc:99"),
            std::string::npos);
  Json badVerb = submitRequest();
  badVerb.set("faults", Json(Json::Array{Json("banana:1")}));
  EXPECT_NE(expectError(handler, badVerb.dump()).find("banana"),
            std::string::npos);
  Json notArray = submitRequest();
  notArray.set("faults", "proc:0");
  EXPECT_NE(expectError(handler, notArray.dump()).find("faults"),
            std::string::npos);
  Json notStrings = submitRequest();
  notStrings.set("faults", Json(Json::Array{Json(7)}));
  (void)expectError(handler, notStrings.dump());

  // Only the clean submission reached the service.
  EXPECT_EQ(service.stats().accepted, 1);
}

TEST(Protocol, UnreachableJobsReportTheErrorKind) {
  SchedulingService service;
  ProtocolHandler handler(service);
  // killing the middle row of the 3x3 grid partitions the sample trace's
  // references, so the job fails as unreachable rather than crashing.
  Json doomed = submitRequest();
  doomed.set("faults", Json(Json::Array{Json("row:1")}));
  const Json reply = call(handler, doomed.dump());
  EXPECT_TRUE(reply.find("ok")->asBool()) << reply.dump();
  EXPECT_EQ(reply.find("state")->asString(), "failed");
  ASSERT_NE(reply.find("error_kind"), nullptr);
  EXPECT_EQ(reply.find("error_kind")->asString(), "unreachable");
  ASSERT_NE(reply.find("error_detail"), nullptr);

  const std::int64_t id = reply.find("id")->asInt64();
  Json statusRequest;
  statusRequest.set("verb", "status").set("id", id);
  const Json status = call(handler, statusRequest.dump());
  EXPECT_EQ(status.find("state")->asString(), "failed");
  EXPECT_EQ(status.find("error_kind")->asString(), "unreachable");
  EXPECT_EQ(status.find("attempts")->asInt64(), 1);
}

TEST(Protocol, BadFaultSpecsPointAtTheOffendingToken) {
  SchedulingService service;
  ProtocolHandler handler(service);
  // The parse error names the bad token and its character offset, so a
  // client staring at a long spec learns which operand is wrong.
  Json bad = submitRequest();
  bad.set("faults", Json(Json::Array{Json("region:0,0,x,3")}));
  const std::string error = expectError(handler, bad.dump());
  EXPECT_NE(error.find("\"x\""), std::string::npos) << error;
  EXPECT_NE(error.find("offset 11"), std::string::npos) << error;
  // Unknown verbs point at offset 0, where the verb sits.
  Json badVerb = submitRequest();
  badVerb.set("faults", Json(Json::Array{Json("banana:1")}));
  const std::string verbError = expectError(handler, badVerb.dump());
  EXPECT_NE(verbError.find("unknown fault verb"), std::string::npos);
  EXPECT_NE(verbError.find("offset 0"), std::string::npos) << verbError;
}

TEST(Protocol, FaultDriftVerbsValidateTheirFields) {
  SchedulingService service;
  ProtocolHandler handler(service);

  Json noArray;
  noArray.set("verb", "fault-inject");
  EXPECT_NE(expectError(handler, noArray.dump()).find("array"),
            std::string::npos);

  Json noFaults;
  noFaults.set("verb", "fault-inject").set("array", "a0");
  EXPECT_NE(expectError(handler, noFaults.dump()).find("faults"),
            std::string::npos);

  Json notStrings;
  notStrings.set("verb", "fault-inject")
      .set("array", "a0")
      .set("faults", Json(Json::Array{Json(7)}));
  EXPECT_NE(expectError(handler, notStrings.dump()).find("spec strings"),
            std::string::npos);

  // A non-fleet service reports drift as unsupported — structured, not a
  // crash, and retrying verbatim cannot succeed.
  Json inject;
  inject.set("verb", "fault-inject")
      .set("array", "a0")
      .set("faults", Json(Json::Array{Json("proc:0")}));
  Json reply = call(handler, inject.dump());
  EXPECT_FALSE(reply.find("ok")->asBool());
  EXPECT_EQ(reply.find("error_kind")->asString(), "invalid");
  EXPECT_NE(reply.find("error")->asString().find("fleet"),
            std::string::npos);
  Json healRequest;
  healRequest.set("verb", "heal").set("array", "a0");
  reply = call(handler, healRequest.dump());
  EXPECT_FALSE(reply.find("ok")->asBool());
  EXPECT_EQ(reply.find("error_kind")->asString(), "invalid");
}

TEST(Protocol, FaultDriftVerbsCanBeDisabled) {
  SchedulingService service;
  ProtocolOptions options;
  options.allowFaultInject = false;
  ProtocolHandler handler(service, options);
  Json inject;
  inject.set("verb", "fault-inject")
      .set("array", "a0")
      .set("faults", Json(Json::Array{Json("proc:0")}));
  EXPECT_NE(expectError(handler, inject.dump()).find("disabled"),
            std::string::npos);
  Json healRequest;
  healRequest.set("verb", "heal").set("array", "a0");
  EXPECT_NE(expectError(handler, healRequest.dump()).find("disabled"),
            std::string::npos);
}

TEST(Protocol, TraceFileSubmissionsCanBeDisabled) {
  SchedulingService service;
  ProtocolOptions options;
  options.allowTraceFiles = false;
  ProtocolHandler handler(service, options);
  Json request;
  request.set("verb", "submit").set("trace_file", "examples/fig1.pimtrace");
  EXPECT_NE(expectError(handler, request.dump()).find("disabled"),
            std::string::npos);
}

TEST(Protocol, ShutdownSetsTheFlagOnlyWhenAllowed) {
  SchedulingService service;
  ProtocolHandler handler(service);
  bool shutdown = false;
  const Json reply = call(handler, R"({"verb":"shutdown"})", &shutdown);
  EXPECT_TRUE(reply.find("ok")->asBool());
  EXPECT_TRUE(reply.find("draining")->asBool());
  EXPECT_TRUE(shutdown);

  // The flag is reset per call.
  (void)call(handler, R"({"verb":"stats"})", &shutdown);
  EXPECT_FALSE(shutdown);

  ProtocolOptions locked;
  locked.allowShutdown = false;
  ProtocolHandler lockedHandler(service, locked);
  shutdown = false;
  const std::string error =
      lockedHandler.handleLine(R"({"verb":"shutdown"})", &shutdown);
  EXPECT_FALSE(shutdown);
  EXPECT_NE(error.find("disabled"), std::string::npos) << error;
}

}  // namespace
}  // namespace pimsched::serve

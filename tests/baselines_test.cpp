#include "core/baselines.hpp"

#include <gtest/gtest.h>

#include "pim/memory.hpp"

namespace pimsched {
namespace {

TEST(Baselines, RowWiseChunksInIdOrder) {
  const Grid g(4, 4);
  const DataSpace ds = DataSpace::singleSquare(8);  // 64 data, 4 per proc
  const DataSchedule s =
      baselineSchedule(BaselineKind::kRowWise, ds, g, 2);
  EXPECT_EQ(s.center(0, 0), 0);
  EXPECT_EQ(s.center(3, 0), 0);
  EXPECT_EQ(s.center(4, 0), 1);
  EXPECT_EQ(s.center(63, 0), 15);
  EXPECT_TRUE(s.isStatic());
}

TEST(Baselines, ColWiseChunksInColumnOrder) {
  const Grid g(2, 2);
  const DataSpace ds = DataSpace::singleSquare(4);  // 16 data, 4 per proc
  const DataSchedule s =
      baselineSchedule(BaselineKind::kColWise, ds, g, 1);
  // First column of A = ids 0,4,8,12 -> proc 0.
  EXPECT_EQ(s.center(0, 0), 0);
  EXPECT_EQ(s.center(4, 0), 0);
  EXPECT_EQ(s.center(8, 0), 0);
  EXPECT_EQ(s.center(12, 0), 0);
  EXPECT_EQ(s.center(1, 0), 1);
}

TEST(Baselines, Block2DMapsBlocksToProcs) {
  const Grid g(2, 2);
  const DataSpace ds = DataSpace::singleSquare(4);
  const DataSchedule s =
      baselineSchedule(BaselineKind::kBlock2D, ds, g, 1);
  EXPECT_EQ(s.center(ds.id(0, 0, 0), 0), g.id(0, 0));
  EXPECT_EQ(s.center(ds.id(0, 0, 3), 0), g.id(0, 1));
  EXPECT_EQ(s.center(ds.id(0, 3, 0), 0), g.id(1, 0));
  EXPECT_EQ(s.center(ds.id(0, 3, 3), 0), g.id(1, 1));
}

TEST(Baselines, Cyclic2DWraps) {
  const Grid g(2, 2);
  const DataSpace ds = DataSpace::singleSquare(4);
  const DataSchedule s =
      baselineSchedule(BaselineKind::kCyclic2D, ds, g, 1);
  EXPECT_EQ(s.center(ds.id(0, 0, 0), 0), g.id(0, 0));
  EXPECT_EQ(s.center(ds.id(0, 2, 2), 0), g.id(0, 0));
  EXPECT_EQ(s.center(ds.id(0, 1, 3), 0), g.id(1, 1));
}

class BaselineProperties : public ::testing::TestWithParam<BaselineKind> {};

TEST_P(BaselineProperties, StaticCompleteAndBalanced) {
  const Grid g(4, 4);
  DataSpace ds;
  ds.addArray("A", 8, 8);
  ds.addArray("C", 8, 8);
  const DataSchedule s = baselineSchedule(GetParam(), ds, g, 4);
  EXPECT_TRUE(s.complete());
  EXPECT_TRUE(s.isStatic());
  // The paper's capacity (2x the minimum) always holds for baselines.
  EXPECT_TRUE(s.respectsCapacity(g, paperCapacity(g, ds.numData())));
}

INSTANTIATE_TEST_SUITE_P(AllKinds, BaselineProperties,
                         ::testing::Values(BaselineKind::kRowWise,
                                           BaselineKind::kColWise,
                                           BaselineKind::kBlock2D,
                                           BaselineKind::kCyclic2D,
                                           BaselineKind::kRandom));

TEST(Baselines, RandomIsSeedDeterministic) {
  const Grid g(4, 4);
  const DataSpace ds = DataSpace::singleSquare(8);
  const DataSchedule a =
      baselineSchedule(BaselineKind::kRandom, ds, g, 1, 77);
  const DataSchedule b =
      baselineSchedule(BaselineKind::kRandom, ds, g, 1, 77);
  const DataSchedule c =
      baselineSchedule(BaselineKind::kRandom, ds, g, 1, 78);
  bool same = true, sameAsC = true;
  for (DataId d = 0; d < ds.numData(); ++d) {
    same = same && a.center(d, 0) == b.center(d, 0);
    sameAsC = sameAsC && a.center(d, 0) == c.center(d, 0);
  }
  EXPECT_TRUE(same);
  EXPECT_FALSE(sameAsC);
}

TEST(Baselines, RandomIsPerfectlyBalanced) {
  const Grid g(4, 4);
  const DataSpace ds = DataSpace::singleSquare(8);  // 64 = 4 per proc
  const DataSchedule s =
      baselineSchedule(BaselineKind::kRandom, ds, g, 1, 5);
  EXPECT_EQ(s.maxOccupancy(g), 4);
}

}  // namespace
}  // namespace pimsched

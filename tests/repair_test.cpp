#include "core/repair.hpp"

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "core/verify.hpp"
#include "fault/fault_map.hpp"
#include "sim/replay.hpp"
#include "test_util.hpp"

namespace pimsched {
namespace {

using testutil::Rng;

ReferenceTrace makeTrace(std::uint64_t seed, const Grid& grid) {
  Rng rng(seed);
  return testutil::randomTrace(rng, grid, 5, 5, /*numSteps=*/12,
                               /*refsPerStep=*/8);
}

TEST(Repair, FaultObliviousModelReturnsInputUnchanged) {
  const Grid grid(4, 4);
  const ReferenceTrace trace = makeTrace(3, grid);
  PipelineConfig cfg;
  cfg.numWindows = 4;
  const Experiment exp(trace, grid, cfg);
  const DataSchedule schedule = exp.schedule(Method::kGomcds);
  const RepairResult rep =
      repairSchedule(schedule, exp.refs(), exp.costModel());
  EXPECT_EQ(rep.cellsRepaired, 0);
  EXPECT_EQ(rep.dataRepaired, 0);
  EXPECT_EQ(rep.migrationCost, 0);
  for (DataId d = 0; d < schedule.numData(); ++d) {
    for (WindowId w = 0; w < schedule.numWindows(); ++w) {
      ASSERT_EQ(rep.schedule.center(d, w), schedule.center(d, w));
    }
  }
}

TEST(Repair, MovesBrokenDataOffDeadProcessor) {
  const Grid grid(4, 4);
  const ReferenceTrace trace = makeTrace(7, grid);
  PipelineConfig cfg;
  cfg.numWindows = 4;
  const Experiment healthy(trace, grid, cfg);
  const DataSchedule stale = healthy.schedule(Method::kGomcds);

  FaultMap faults(grid);
  faults.killProc(5);
  const Experiment faulted(trace, grid, faults, cfg);
  RepairOptions opts;
  opts.capacity = faulted.capacity();
  const RepairResult rep =
      repairSchedule(stale, faulted.refs(), faulted.costModel(), opts);

  // faultWindow = 0: the whole schedule is repaired, so the fault verifier
  // must pass on every window.
  const VerifyReport report =
      verifyScheduleFaults(rep.schedule, faulted.refs(), faulted.costModel());
  EXPECT_TRUE(report.ok())
      << report.issues.size() << " issues, first: "
      << (report.issues.empty() ? "" : report.issues.front().detail);
  for (DataId d = 0; d < rep.schedule.numData(); ++d) {
    for (WindowId w = 0; w < rep.schedule.numWindows(); ++w) {
      EXPECT_NE(rep.schedule.center(d, w), 5);
    }
  }
  EXPECT_LT(rep.suffixCost, kInfiniteCost);
}

TEST(Repair, PrefixBeforeFaultWindowIsUntouched) {
  const Grid grid(4, 4);
  const ReferenceTrace trace = makeTrace(13, grid);
  PipelineConfig cfg;
  cfg.numWindows = 6;
  const Experiment healthy(trace, grid, cfg);
  const DataSchedule stale = healthy.schedule(Method::kLomcds);

  FaultMap faults(grid);
  faults.killProc(9);
  faults.killLink(2, 3);
  const Experiment faulted(trace, grid, faults, cfg);
  RepairOptions opts;
  opts.faultWindow = 3;
  opts.capacity = faulted.capacity();
  const RepairResult rep =
      repairSchedule(stale, faulted.refs(), faulted.costModel(), opts);

  for (DataId d = 0; d < stale.numData(); ++d) {
    for (WindowId w = 0; w < 3; ++w) {
      ASSERT_EQ(rep.schedule.center(d, w), stale.center(d, w))
          << "prefix cell touched: datum " << d << " window " << w;
    }
    for (WindowId w = 3; w < stale.numWindows(); ++w) {
      EXPECT_NE(rep.schedule.center(d, w), 9);
    }
  }
}

TEST(Repair, UnaffectedDataKeepTheirPlacements) {
  const Grid grid(4, 4);
  const ReferenceTrace trace = makeTrace(17, grid);
  PipelineConfig cfg;
  cfg.numWindows = 4;
  cfg.capacity = PipelineConfig::kUnlimited;
  const Experiment healthy(trace, grid, cfg);
  const DataSchedule stale = healthy.schedule(Method::kGomcds);

  FaultMap faults(grid);
  faults.killProc(0);
  const Experiment faulted(trace, grid, faults, cfg);
  const RepairResult rep =
      repairSchedule(stale, faulted.refs(), faulted.costModel());

  // Unlimited capacity: only placements actually broken by the dead
  // processor may change.
  for (DataId d = 0; d < stale.numData(); ++d) {
    for (WindowId w = 0; w < stale.numWindows(); ++w) {
      if (rep.schedule.center(d, w) == stale.center(d, w)) continue;
      // This cell changed: its stale placement (or the migration into it)
      // must have been broken.
      bool broken = stale.center(d, w) == 0;
      if (w > 0 && rep.schedule.center(d, w - 1) != stale.center(d, w - 1)) {
        broken = true;  // upstream repair may cascade into this window
      }
      if (w > 0 && stale.center(d, w - 1) == 0) broken = true;
      EXPECT_TRUE(broken) << "datum " << d << " window " << w;
    }
  }
  EXPECT_EQ(rep.evictions, 0);
}

TEST(Repair, SuffixCostMatchesStandaloneComputation) {
  const Grid grid(4, 4);
  const ReferenceTrace trace = makeTrace(29, grid);
  PipelineConfig cfg;
  cfg.numWindows = 5;
  const Experiment healthy(trace, grid, cfg);
  const DataSchedule stale = healthy.schedule(Method::kGomcds);

  FaultMap faults(grid);
  faults.injectUniformProcs(2, 4);
  const Experiment faulted(trace, grid, faults, cfg);
  RepairOptions opts;
  opts.faultWindow = 2;
  opts.capacity = faulted.capacity();
  const RepairResult rep =
      repairSchedule(stale, faulted.refs(), faulted.costModel(), opts);
  EXPECT_EQ(rep.suffixCost,
            repairSuffixCost(rep.schedule, faulted.refs(),
                             faulted.costModel(), 2));
}

TEST(Repair, ReducedCapacityForcesEvictions) {
  const Grid grid(2, 2);
  // 9 data spread round-robin over the 4 processors by reference.
  ReferenceTrace trace(DataSpace::singleSquare(3, "A"));
  for (StepId s = 0; s < 4; ++s) {
    for (DataId d = 0; d < 9; ++d) {
      trace.add(s, static_cast<ProcId>(d % 4), d, 2);
    }
  }
  trace.finalize();
  PipelineConfig cfg;
  cfg.numWindows = 1;
  cfg.capacity = 3;  // 4 procs x 3 slots = 12 >= 9: feasible when healthy
  const Experiment healthy(trace, grid, cfg);
  const DataSchedule stale = healthy.schedule(Method::kScds);

  FaultMap faults(grid);
  faults.limitCapacity(0, 1);  // proc 0 loses slots but stays alive
  const Experiment faulted(trace, grid, faults, cfg);
  RepairOptions opts;
  opts.capacity = 3;
  const RepairResult rep =
      repairSchedule(stale, faulted.refs(), faulted.costModel(), opts);
  std::int64_t onProc0 = 0;
  for (DataId d = 0; d < 9; ++d) {
    if (rep.schedule.center(d, 0) == 0) ++onProc0;
  }
  // The healthy schedule put data 0, 4, 8 on their referencing proc 0; the
  // reduced limit keeps the first and evicts the other two.
  EXPECT_EQ(onProc0, 1);
  EXPECT_EQ(rep.evictions, 2);
  EXPECT_EQ(rep.cellsRepaired, 2);
}

TEST(Repair, NoFeasibleCenterThrowsUnreachable) {
  const Grid grid(4, 4);
  ReferenceTrace trace(DataSpace::singleSquare(2, "A"));
  trace.add(0, grid.id(0, 0), 0, 3);
  trace.add(0, grid.id(3, 3), 0, 3);
  trace.finalize();
  PipelineConfig cfg;
  cfg.numWindows = 1;
  cfg.capacity = PipelineConfig::kUnlimited;
  const Experiment healthy(trace, grid, cfg);
  const DataSchedule stale = healthy.schedule(Method::kScds);

  FaultMap faults(grid);
  faults.killRow(1);  // row 0 cut off from rows 2-3
  const Experiment faulted(trace, grid, faults, cfg);
  EXPECT_THROW(
      (void)repairSchedule(stale, faulted.refs(), faulted.costModel()),
      UnreachableError);
}

TEST(Repair, RecoveredMigrationsAreChargedZero) {
  const Grid grid(1, 4);
  // Datum 0 lives on proc 0 in window 0 and is referenced by proc 3 in
  // window 1; killing proc 0 after window 0 forces a migration whose
  // source is dead -> out-of-band recovery, charged 0.
  ReferenceTrace trace(DataSpace::singleSquare(1, "A"));
  trace.add(0, 0, 0, 5);
  trace.add(1, 3, 0, 5);
  trace.finalize();
  PipelineConfig cfg;
  cfg.numWindows = 2;
  cfg.capacity = PipelineConfig::kUnlimited;
  const Experiment healthy(trace, grid, cfg);
  const DataSchedule stale = healthy.schedule(Method::kLomcds);
  ASSERT_EQ(stale.center(0, 0), 0);  // optimal center = sole referencing proc
  ASSERT_EQ(stale.center(0, 1), 3);

  FaultMap faults(grid);
  faults.killProc(0);
  const Experiment faulted(trace, grid, faults, cfg);
  RepairOptions opts;
  opts.faultWindow = 1;  // window 0 already executed
  const RepairResult rep =
      repairSchedule(stale, faulted.refs(), faulted.costModel(), opts);
  // The suffix placement (proc 3) survives, but its migration source is
  // dead: suffix cost charges serve only, and the recovery is counted.
  std::int64_t recovered = 0;
  const Cost suffix = repairSuffixCost(rep.schedule, faulted.refs(),
                                       faulted.costModel(), 1, &recovered);
  EXPECT_EQ(suffix, 0);  // datum sits on its only referencing proc
  EXPECT_EQ(recovered, 1);

  // Replay agrees: the migration message is dropped, not routed.
  ReplayOptions ropts;
  const ReplayReport replay = replaySchedule(
      rep.schedule, faulted.refs(), faulted.costModel(), ropts);
  EXPECT_EQ(replay.total.totalHopVolume, 0);
}

TEST(Repair, InvalidArgumentsAreRejected) {
  const Grid grid(2, 2);
  const ReferenceTrace trace = makeTrace(1, grid);
  PipelineConfig cfg;
  cfg.numWindows = 2;
  const Experiment exp(trace, grid, cfg);
  const DataSchedule schedule = exp.schedule(Method::kScds);
  RepairOptions opts;
  opts.faultWindow = 99;
  EXPECT_THROW(
      (void)repairSchedule(schedule, exp.refs(), exp.costModel(), opts),
      std::invalid_argument);
  const DataSchedule wrongShape(schedule.numData() + 1, 2);
  EXPECT_THROW(
      (void)repairSchedule(wrongShape, exp.refs(), exp.costModel()),
      std::invalid_argument);
}

}  // namespace
}  // namespace pimsched

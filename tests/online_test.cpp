#include "core/online.hpp"

#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "core/gomcds.hpp"
#include "core/lomcds.hpp"
#include "test_util.hpp"

namespace pimsched {
namespace {

WindowedRefs refsFromTrace(const ReferenceTrace& t, const Grid& g,
                           int windows) {
  return WindowedRefs(t, WindowPartition::evenCount(t.numSteps(), windows),
                      g);
}

TEST(Online, FullLookaheadEqualsGomcds) {
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(151);
  for (int trial = 0; trial < 6; ++trial) {
    const ReferenceTrace t = testutil::randomTrace(rng, g, 4, 4, 12, 20);
    const WindowedRefs refs = refsFromTrace(t, g, 6);
    OnlineOptions opts;
    opts.lookahead = refs.numWindows();  // beyond W-1 is clamped by horizon
    const Cost online =
        evaluateSchedule(scheduleOnline(refs, model, opts), refs, model)
            .aggregate.total();
    const Cost gomcds =
        evaluateSchedule(scheduleGomcds(refs, model), refs, model)
            .aggregate.total();
    EXPECT_EQ(online, gomcds);
  }
}

TEST(Online, NeverBeatsGomcds) {
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(152);
  for (int trial = 0; trial < 4; ++trial) {
    const ReferenceTrace t = testutil::randomTrace(rng, g, 4, 4, 12, 20);
    const WindowedRefs refs = refsFromTrace(t, g, 6);
    const Cost gomcds =
        evaluateSchedule(scheduleGomcds(refs, model), refs, model)
            .aggregate.total();
    for (const int lookahead : {0, 1, 2, 4}) {
      OnlineOptions opts;
      opts.lookahead = lookahead;
      const Cost online =
          evaluateSchedule(scheduleOnline(refs, model, opts), refs, model)
              .aggregate.total();
      EXPECT_GE(online, gomcds) << "lookahead " << lookahead;
    }
  }
}

TEST(Online, ZeroLookaheadIsMovementAwareGreedy) {
  // Two equal-weight pulls in consecutive windows: the greedy must weigh
  // movement against serving (unlike LOMCDS).
  const Grid g(1, 8);
  const CostModel model(g);
  ReferenceTrace t(DataSpace::singleSquare(1));
  t.add(0, 0, 0, 2);
  t.add(1, 1, 0, 1);  // 1 hop away, weight 1: moving (1) == serving (1)
  t.finalize();
  const WindowedRefs refs =
      WindowedRefs(t, WindowPartition::perStep(2), g);
  OnlineOptions opts;
  opts.lookahead = 0;
  const DataSchedule s = scheduleOnline(refs, model, opts);
  EXPECT_EQ(s.center(0, 0), 0);
  // Tie between staying (serve 1) and moving (move 1 + serve 0): the DP's
  // smaller-id tie-break keeps it at processor 0.
  EXPECT_EQ(s.center(0, 1), 0);
}

TEST(Online, LookaheadAvoidsGreedyTrap) {
  // Window 0 pulls weakly near, window 1 pulls hard toward the far end,
  // and the datum is bulky (moveVolume 2). A 0-lookahead greedy parks at
  // window 0's optimum and pays the expensive migration; lookahead 1
  // starts where the future needs it and only eats window 0's small
  // remote-serving cost.
  const Grid g(1, 8);
  const CostModel model(g, CostParams{1, 2});
  ReferenceTrace t(DataSpace::singleSquare(1));
  t.add(0, 0, 0, 1);
  t.add(1, 7, 0, 8);
  t.finalize();
  const WindowedRefs refs =
      WindowedRefs(t, WindowPartition::perStep(2), g);

  OnlineOptions greedy;
  greedy.lookahead = 0;
  OnlineOptions informed;
  informed.lookahead = 1;
  const Cost g0 =
      evaluateSchedule(scheduleOnline(refs, model, greedy), refs, model)
          .aggregate.total();
  const Cost g1 =
      evaluateSchedule(scheduleOnline(refs, model, informed), refs, model)
          .aggregate.total();
  EXPECT_LT(g1, g0);
}

TEST(Online, MovementAwareGreedyBeatsLomcdsOnThrashingTrace) {
  // A reference pattern bouncing between two corners: LOMCDS chases it
  // and pays full movement; the movement-aware greedy stays put once the
  // move costs more than remote serving.
  const Grid g(4, 4);
  CostParams params;
  params.moveVolume = 8;
  const CostModel model(g, params);
  ReferenceTrace t(DataSpace::singleSquare(1));
  for (StepId s = 0; s < 8; ++s) {
    t.add(s, (s % 2 == 0) ? g.id(0, 0) : g.id(3, 3), 0, 1);
  }
  t.finalize();
  const WindowedRefs refs =
      WindowedRefs(t, WindowPartition::perStep(8), g);
  OnlineOptions opts;
  opts.lookahead = 0;
  const Cost online =
      evaluateSchedule(scheduleOnline(refs, model, opts), refs, model)
          .aggregate.total();
  const Cost lomcds =
      evaluateSchedule(scheduleLomcds(refs, model), refs, model)
          .aggregate.total();
  EXPECT_LT(online, lomcds);
}

TEST(Online, RespectsCapacity) {
  const Grid g(2, 2);
  const CostModel model(g);
  testutil::Rng rng(153);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 3, 3, 8, 20);
  const WindowedRefs refs = refsFromTrace(t, g, 4);
  OnlineOptions opts;
  opts.lookahead = 2;
  opts.capacity = 3;
  const DataSchedule s = scheduleOnline(refs, model, opts);
  EXPECT_TRUE(s.complete());
  EXPECT_TRUE(s.respectsCapacity(g, 3));
}

TEST(Online, RejectsNegativeLookahead) {
  const Grid g(2, 2);
  const CostModel model(g);
  testutil::Rng rng(154);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 2, 2, 4, 8);
  const WindowedRefs refs = refsFromTrace(t, g, 2);
  OnlineOptions opts;
  opts.lookahead = -1;
  EXPECT_THROW((void)scheduleOnline(refs, model, opts),
               std::invalid_argument);
}

}  // namespace
}  // namespace pimsched

#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "core/gomcds.hpp"
#include "core/pipeline.hpp"
#include "core/scds.hpp"
#include "kernels/benchmarks.hpp"
#include "sim/replay.hpp"
#include "test_util.hpp"

namespace pimsched {
namespace {

TEST(NocSimulator, SingleMessageLatencyIsVolumeTimesHops) {
  const Grid g(4, 4);
  const NocSimulator sim(g);
  const std::vector<Message> msgs = {{g.id(0, 0), g.id(2, 3), 4}};
  const SimReport r = sim.simulate(msgs);
  EXPECT_EQ(r.numMessages, 1);
  EXPECT_EQ(r.totalHopVolume, 4 * 5);
  // Store-and-forward: volume cycles per hop, 5 hops.
  EXPECT_EQ(r.makespan, 4 * 5);
  EXPECT_EQ(r.maxLinkLoad, 4);
}

TEST(NocSimulator, SelfMessageIsFree) {
  const Grid g(2, 2);
  const NocSimulator sim(g);
  const std::vector<Message> msgs = {{0, 0, 10}};
  const SimReport r = sim.simulate(msgs);
  EXPECT_EQ(r.totalHopVolume, 0);
  EXPECT_EQ(r.makespan, 0);
}

TEST(NocSimulator, ContentionSerialisesSharedLink) {
  // Two messages over the same single link must serialise.
  const Grid g(1, 2);
  const NocSimulator sim(g);
  const std::vector<Message> msgs = {{0, 1, 3}, {0, 1, 3}};
  const SimReport r = sim.simulate(msgs);
  EXPECT_EQ(r.totalHopVolume, 6);
  EXPECT_EQ(r.makespan, 6);     // second waits for the first
  EXPECT_EQ(r.maxLinkLoad, 6);
}

TEST(NocSimulator, DisjointPathsRunInParallel) {
  const Grid g(2, 2);
  const NocSimulator sim(g);
  // (0,0)->(0,1) and (1,0)->(1,1) use different links.
  const std::vector<Message> msgs = {{g.id(0, 0), g.id(0, 1), 5},
                                     {g.id(1, 0), g.id(1, 1), 5}};
  const SimReport r = sim.simulate(msgs);
  EXPECT_EQ(r.makespan, 5);
  EXPECT_EQ(r.maxLinkLoad, 5);
}

TEST(NocSimulator, RejectsNonPositiveVolume) {
  const Grid g(2, 2);
  const NocSimulator sim(g);
  const std::vector<Message> msgs = {{0, 1, 0}};
  EXPECT_THROW((void)sim.simulate(msgs), std::invalid_argument);
}

TEST(NocSimulator, EmptyBatch) {
  const Grid g(2, 2);
  const NocSimulator sim(g);
  const SimReport r = sim.simulate({});
  EXPECT_EQ(r.numMessages, 0);
  EXPECT_EQ(r.makespan, 0);
  EXPECT_EQ(r.avgLatency, 0.0);
}

TEST(SimReport, AggregationAveragesLatency) {
  SimReport a;
  a.numMessages = 2;
  a.avgLatency = 4.0;
  a.makespan = 10;
  SimReport b;
  b.numMessages = 2;
  b.avgLatency = 8.0;
  b.makespan = 5;
  b.maxLinkLoad = 9;
  a += b;
  EXPECT_EQ(a.numMessages, 4);
  EXPECT_DOUBLE_EQ(a.avgLatency, 6.0);
  EXPECT_EQ(a.makespan, 15);  // windows run back to back
  EXPECT_EQ(a.maxLinkLoad, 9);
}

TEST(Replay, TrafficEqualsAnalyticCost) {
  // DESIGN.md invariant 10: the DES replay's hop-volume equals the
  // analytic evaluator's total, schedule by schedule.
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(91);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 4, 4, 16, 30);
  const WindowedRefs refs(
      t, WindowPartition::evenCount(t.numSteps(), 4), g);
  for (const auto makeSchedule :
       {+[](const WindowedRefs& r, const CostModel& m) {
          return scheduleScds(r, m);
        },
        +[](const WindowedRefs& r, const CostModel& m) {
          return scheduleGomcds(r, m);
        }}) {
    const DataSchedule s = makeSchedule(refs, model);
    const EvalResult analytic = evaluateSchedule(s, refs, model);
    const ReplayReport replay = replaySchedule(s, refs, model);
    EXPECT_EQ(replay.total.totalHopVolume, analytic.aggregate.total());
  }
}

TEST(Replay, PerWindowBreakdownSumsToTotal) {
  const Grid g(4, 4);
  const CostModel model(g);
  const ReferenceTrace t =
      makePaperBenchmark(PaperBenchmark::kMatSquare, g, 8);
  const Experiment exp(t, g);
  const DataSchedule s = exp.schedule(Method::kGomcds);
  const ReplayReport replay = replaySchedule(s, exp.refs(), exp.costModel());
  Cost hopVolume = 0;
  for (const SimReport& w : replay.perWindow) {
    hopVolume += w.totalHopVolume;
  }
  EXPECT_EQ(hopVolume, replay.total.totalHopVolume);
  EXPECT_EQ(static_cast<int>(replay.perWindow.size()),
            exp.refs().numWindows());
}

TEST(Replay, BetterSchedulesAlsoWinUnderContention) {
  // The analytic model ignores contention; check that on a real kernel
  // the GOMCDS schedule still beats row-wise on simulated makespan.
  const Grid g(4, 4);
  const ReferenceTrace t = makePaperBenchmark(PaperBenchmark::kLu, g, 16);
  const Experiment exp(t, g);
  const ReplayReport sf = replaySchedule(exp.schedule(Method::kRowWise),
                                         exp.refs(), exp.costModel());
  const ReplayReport go = replaySchedule(exp.schedule(Method::kGomcds),
                                         exp.refs(), exp.costModel());
  EXPECT_LT(go.total.totalHopVolume, sf.total.totalHopVolume);
  EXPECT_LT(go.total.makespan, sf.total.makespan);
}

TEST(CutThrough, UncontendedLatencyIsHopsPlusVolume) {
  const Grid g(4, 4);
  const NocSimulator sim(g, SwitchingMode::kCutThrough);
  const std::vector<Message> msgs = {{g.id(0, 0), g.id(2, 3), 4}};
  const SimReport r = sim.simulate(msgs);
  // 5 hops, volume 4: head pipeline = hops + volume - 1 ... arrival is
  // start of last link (4) + volume = 8.
  EXPECT_EQ(r.makespan, 5 + 4 - 1);
  EXPECT_EQ(r.totalHopVolume, 4 * 5);  // loads unchanged vs S&F
  EXPECT_EQ(r.maxLinkLoad, 4);
}

TEST(CutThrough, NeverSlowerThanStoreAndForward) {
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(93);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 4, 4, 12, 30);
  const WindowedRefs refs(
      t, WindowPartition::evenCount(t.numSteps(), 4), g);
  const DataSchedule s = scheduleScds(refs, model);
  const ReplayReport snf =
      replaySchedule(s, refs, model, SwitchingMode::kStoreAndForward);
  const ReplayReport ct =
      replaySchedule(s, refs, model, SwitchingMode::kCutThrough);
  EXPECT_LE(ct.total.makespan, snf.total.makespan);
  EXPECT_EQ(ct.total.totalHopVolume, snf.total.totalHopVolume);
}

TEST(CutThrough, SingleHopMatchesStoreAndForward) {
  const Grid g(1, 2);
  const NocSimulator ct(g, SwitchingMode::kCutThrough);
  const NocSimulator snf(g, SwitchingMode::kStoreAndForward);
  const std::vector<Message> msgs = {{0, 1, 7}};
  EXPECT_EQ(ct.simulate(msgs).makespan, snf.simulate(msgs).makespan);
}

TEST(NocSession, FirstWindowMatchesStatelessSimulate) {
  const Grid g(4, 4);
  const NocSimulator sim(g);
  const std::vector<Message> msgs = {{g.id(0, 0), g.id(2, 3), 4},
                                     {g.id(1, 1), g.id(1, 3), 2}};
  NocSession session(sim);
  const SimReport fresh = sim.simulate(msgs);
  const SimReport first = session.simulateWindow(msgs);
  EXPECT_EQ(first.makespan, fresh.makespan);
  EXPECT_EQ(first.totalHopVolume, fresh.totalHopVolume);
  EXPECT_EQ(first.maxLinkLoad, fresh.maxLinkLoad);
  EXPECT_EQ(session.elapsed(), fresh.makespan);
}

TEST(NocSession, DisjointWindowPipelinesIntoIdleLinks) {
  // 1x3 row: links 0-1 and 1-2 are distinct. Window 1 only occupies
  // link 0->1; window 2's traffic on link 1->2 streams concurrently, so
  // carrying link state adds nothing to the completion time.
  const Grid g(1, 3);
  const NocSimulator sim(g);
  NocSession session(sim);
  const std::vector<Message> left = {{0, 1, 5}};
  const std::vector<Message> right = {{1, 2, 3}};
  const SimReport w1 = session.simulateWindow(left);
  EXPECT_EQ(w1.makespan, 5);
  const SimReport w2 = session.simulateWindow(right);
  EXPECT_EQ(w2.makespan, 0);  // fully hidden behind window 1
  EXPECT_EQ(session.elapsed(), 5);
  // Independent windows would have charged 5 + 3.
  EXPECT_EQ(sim.simulate(left).makespan + sim.simulate(right).makespan, 8);
}

TEST(NocSession, SharedLinkSerialisesAcrossWindows) {
  const Grid g(1, 2);
  const NocSimulator sim(g);
  NocSession session(sim);
  const std::vector<Message> big = {{0, 1, 5}};
  const std::vector<Message> small = {{0, 1, 3}};
  EXPECT_EQ(session.simulateWindow(big).makespan, 5);
  // The single link is busy until t=5; the next window queues behind it.
  EXPECT_EQ(session.simulateWindow(small).makespan, 3);
  EXPECT_EQ(session.elapsed(), 8);
}

TEST(Replay, CarryLinkStateNeverSlowerAndPreservesVolume) {
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(94);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 5, 5, 16, 40);
  const WindowedRefs refs(
      t, WindowPartition::evenCount(t.numSteps(), 4), g);
  const DataSchedule s = scheduleGomcds(refs, model);
  const ReplayReport independent = replaySchedule(s, refs, model);
  ReplayOptions options;
  options.carryLinkState = true;
  const ReplayReport carried = replaySchedule(s, refs, model, options);
  // Continuous streaming can only hide latency, never add it, and the
  // traffic itself is mode-independent.
  EXPECT_LE(carried.total.makespan, independent.total.makespan);
  EXPECT_EQ(carried.total.totalHopVolume, independent.total.totalHopVolume);
  EXPECT_EQ(carried.total.numMessages, independent.total.numMessages);
  EXPECT_EQ(carried.perWindow.size(), independent.perWindow.size());
  // Summed per-window makespans equal the aggregate in both modes.
  for (const ReplayReport* r : {&independent, &carried}) {
    std::int64_t sum = 0;
    for (const SimReport& w : r->perWindow) sum += w.makespan;
    EXPECT_EQ(sum, r->total.makespan);
  }
}

TEST(Replay, OptionsDefaultMatchesLegacyOverload) {
  const Grid g(2, 2);
  const CostModel model(g);
  testutil::Rng rng(95);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 3, 3, 6, 16);
  const WindowedRefs refs(
      t, WindowPartition::evenCount(t.numSteps(), 3), g);
  const DataSchedule s = scheduleScds(refs, model);
  const ReplayReport legacy =
      replaySchedule(s, refs, model, SwitchingMode::kStoreAndForward);
  const ReplayReport viaOptions = replaySchedule(s, refs, model, ReplayOptions{});
  EXPECT_EQ(legacy.total.makespan, viaOptions.total.makespan);
  EXPECT_EQ(legacy.total.totalHopVolume, viaOptions.total.totalHopVolume);
}

TEST(Replay, ParallelWindowsMatchSequentialExactly) {
  // Per-window NoC replay is embarrassingly parallel; the report — including
  // the double-valued avgLatency, which is aggregated sequentially in window
  // order — must not depend on the thread count.
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(96);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 5, 5, 16, 40);
  const WindowedRefs refs(
      t, WindowPartition::evenCount(t.numSteps(), 8), g);
  const DataSchedule s = scheduleGomcds(refs, model);
  const ReplayReport seq = replaySchedule(s, refs, model);
  for (const unsigned threads : {2u, 4u, 0u}) {
    ReplayOptions options;
    options.threads = threads;
    const ReplayReport par = replaySchedule(s, refs, model, options);
    EXPECT_EQ(par.total.makespan, seq.total.makespan) << threads;
    EXPECT_EQ(par.total.totalHopVolume, seq.total.totalHopVolume);
    EXPECT_EQ(par.total.numMessages, seq.total.numMessages);
    EXPECT_EQ(par.total.maxLinkLoad, seq.total.maxLinkLoad);
    EXPECT_DOUBLE_EQ(par.total.avgLatency, seq.total.avgLatency);
    ASSERT_EQ(par.perWindow.size(), seq.perWindow.size());
    for (std::size_t w = 0; w < seq.perWindow.size(); ++w) {
      EXPECT_EQ(par.perWindow[w].makespan, seq.perWindow[w].makespan);
      EXPECT_EQ(par.perWindow[w].totalHopVolume,
                seq.perWindow[w].totalHopVolume);
    }
  }
}

TEST(Replay, ShapeMismatchThrows) {
  const Grid g(2, 2);
  const CostModel model(g);
  testutil::Rng rng(92);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 2, 2, 4, 8);
  const WindowedRefs refs(
      t, WindowPartition::evenCount(t.numSteps(), 2), g);
  DataSchedule wrong(refs.numData(), refs.numWindows() + 1);
  EXPECT_THROW((void)replaySchedule(wrong, refs, model),
               std::invalid_argument);
}

}  // namespace
}  // namespace pimsched

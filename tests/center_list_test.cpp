#include "cost/center_list.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace pimsched {
namespace {

TEST(CenterList, SortsAscendingByCost) {
  const std::vector<Cost> costs = {5, 1, 3, 1};
  const CenterList list(costs);
  ASSERT_EQ(list.order().size(), 4u);
  EXPECT_EQ(list.order()[0], 1);  // cost 1, smaller id first on tie
  EXPECT_EQ(list.order()[1], 3);  // cost 1
  EXPECT_EQ(list.order()[2], 2);  // cost 3
  EXPECT_EQ(list.order()[3], 0);  // cost 5
}

TEST(CenterList, CostLookup) {
  const std::vector<Cost> costs = {5, 1, 3, 1};
  const CenterList list(costs);
  EXPECT_EQ(list.costAt(0), 5);
  EXPECT_EQ(list.costAt(3), 1);
}

TEST(CenterList, FirstAvailableSkipsFullProcessors) {
  const Grid g(2, 2);
  const std::vector<Cost> costs = {5, 1, 3, 1};
  const CenterList list(costs);
  OccupancyMap occ(g, 1);
  EXPECT_EQ(list.firstAvailable(occ), 1);
  occ.tryPlace(1);
  EXPECT_EQ(list.firstAvailable(occ), 3);
  occ.tryPlace(3);
  EXPECT_EQ(list.firstAvailable(occ), 2);
}

TEST(CenterList, ReturnsNoProcWhenEverythingFull) {
  const Grid g(1, 2);
  const CenterList list(std::vector<Cost>{1, 2});
  OccupancyMap occ(g, 0);
  EXPECT_EQ(list.firstAvailable(occ), kNoProc);
}

TEST(CenterList, OrderIsAPermutation) {
  testutil::Rng rng(5);
  std::vector<Cost> costs;
  for (int i = 0; i < 25; ++i) costs.push_back(rng.range(0, 9));
  const CenterList list(costs);
  std::vector<bool> seen(costs.size(), false);
  for (const ProcId p : list.order()) {
    EXPECT_FALSE(seen[static_cast<std::size_t>(p)]);
    seen[static_cast<std::size_t>(p)] = true;
  }
  // Ascending costs.
  for (std::size_t i = 1; i < list.order().size(); ++i) {
    EXPECT_LE(list.costAt(list.order()[i - 1]),
              list.costAt(list.order()[i]));
  }
}

}  // namespace
}  // namespace pimsched

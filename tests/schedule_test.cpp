#include "core/schedule.hpp"

#include <gtest/gtest.h>

namespace pimsched {
namespace {

TEST(DataSchedule, StartsIncomplete) {
  const DataSchedule s(3, 2);
  EXPECT_FALSE(s.complete());
  EXPECT_EQ(s.center(0, 0), kNoProc);
}

TEST(DataSchedule, SetStaticFillsAllWindows) {
  DataSchedule s(2, 4);
  s.setStatic(0, 5);
  s.setStatic(1, 7);
  EXPECT_TRUE(s.complete());
  EXPECT_TRUE(s.isStatic());
  for (WindowId w = 0; w < 4; ++w) {
    EXPECT_EQ(s.center(0, w), 5);
    EXPECT_EQ(s.center(1, w), 7);
  }
}

TEST(DataSchedule, IsStaticDetectsMovement) {
  DataSchedule s(1, 3);
  s.setStatic(0, 2);
  EXPECT_TRUE(s.isStatic());
  s.setCenter(0, 1, 3);
  EXPECT_FALSE(s.isStatic());
}

TEST(DataSchedule, MaxOccupancyPerWindow) {
  const Grid g(2, 2);
  DataSchedule s(3, 2);
  // Window 0: data 0,1 on proc 0; window 1 spread out.
  s.setCenter(0, 0, 0);
  s.setCenter(1, 0, 0);
  s.setCenter(2, 0, 1);
  s.setCenter(0, 1, 0);
  s.setCenter(1, 1, 1);
  s.setCenter(2, 1, 2);
  EXPECT_EQ(s.maxOccupancy(g), 2);
  EXPECT_TRUE(s.respectsCapacity(g, 2));
  EXPECT_FALSE(s.respectsCapacity(g, 1));
  EXPECT_TRUE(s.respectsCapacity(g, -1));  // unlimited
}

TEST(DataSchedule, RejectsDegenerateShape) {
  EXPECT_THROW(DataSchedule(-1, 2), std::invalid_argument);
  EXPECT_THROW(DataSchedule(3, 0), std::invalid_argument);
}

TEST(DataSchedule, ZeroDataScheduleIsComplete) {
  const Grid g(2, 2);
  const DataSchedule s(0, 3);
  EXPECT_TRUE(s.complete());
  EXPECT_EQ(s.maxOccupancy(g), 0);
}

}  // namespace
}  // namespace pimsched

#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>

#include "core/gomcds.hpp"
#include "report/obs_report.hpp"
#include "test_util.hpp"

namespace pimsched {
namespace {

/// Minimal recursive-descent JSON syntax checker, enough to prove the
/// chrome-trace export round-trips through a parse.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skipWs();
    if (!value()) return false;
    skipWs();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skipWs();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skipWs();
      if (!string()) return false;
      skipWs();
      if (peek() != ':') return false;
      ++pos_;
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skipWs();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::string w(word);
    if (s_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }

  [[nodiscard]] char peek() const {
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }
  void skipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(Obs, EmptyTraceIsValidJson) {
  obs::Registry::instance().reset();
  std::stringstream ss;
  obs::Registry::instance().writeChromeTrace(ss);
  EXPECT_TRUE(JsonChecker(ss.str()).valid()) << ss.str();
}

TEST(Obs, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(obs::jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(obs::jsonEscape(std::string(1, '\x01')), "\\u0001");
}

#ifdef PIMSCHED_NO_OBS
#define PIMSCHED_OBS_TEST_GUARD() \
  GTEST_SKIP() << "instrumentation compiled out (PIMSCHED_NO_OBS)"
#else
#define PIMSCHED_OBS_TEST_GUARD() \
  do {                            \
  } while (0)
#endif

TEST(Obs, CountersAccumulate) {
  PIMSCHED_OBS_TEST_GUARD();
  obs::Registry& registry = obs::Registry::instance();
  registry.reset();
  PIMSCHED_COUNTER_ADD("obs_test.counter", 2);
  PIMSCHED_COUNTER_ADD("obs_test.counter", 3);
  EXPECT_EQ(registry.counterValue("obs_test.counter"), 5);
  EXPECT_EQ(registry.counterValue("obs_test.never_touched"), 0);
}

TEST(Obs, TimersNest) {
  PIMSCHED_OBS_TEST_GUARD();
  obs::Registry& registry = obs::Registry::instance();
  registry.reset();
  {
    PIMSCHED_SCOPED_TIMER("obs_test.outer");
    for (int i = 0; i < 3; ++i) {
      PIMSCHED_SCOPED_TIMER("obs_test.inner");
    }
  }
  obs::TimerSample outer, inner;
  for (const obs::TimerSample& t : registry.timerSamples()) {
    if (t.name == "obs_test.outer") outer = t;
    if (t.name == "obs_test.inner") inner = t;
  }
  EXPECT_EQ(outer.count, 1);
  EXPECT_EQ(inner.count, 3);
  // The outer scope encloses every inner scope.
  EXPECT_GE(outer.totalNs, inner.totalNs);
  EXPECT_GE(inner.minNs, 0);
  EXPECT_GE(inner.maxNs, inner.minNs);
}

TEST(Obs, TraceJsonRoundTripsThroughAParse) {
  PIMSCHED_OBS_TEST_GUARD();
  obs::Registry& registry = obs::Registry::instance();
  registry.reset();
  registry.enableTracing(true);
  {
    PIMSCHED_SCOPED_TIMER("obs_test.scope \"quoted\"");
    registry.recordInstant("obs_test.instant", "{\"window\":1,\"volume\":7}");
  }
  registry.enableTracing(false);
  std::stringstream ss;
  registry.writeChromeTrace(ss);
  const std::string json = ss.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("obs_test.instant"), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  registry.reset();
}

TEST(Obs, EventsAreDroppedWhileTracingDisabled) {
  PIMSCHED_OBS_TEST_GUARD();
  obs::Registry& registry = obs::Registry::instance();
  registry.reset();
  registry.recordInstant("obs_test.ghost", "");
  {
    PIMSCHED_SCOPED_TIMER("obs_test.untraced");
  }
  EXPECT_TRUE(registry.traceEvents().empty());
}

TEST(Obs, SummaryRendersRecordedMetrics) {
  PIMSCHED_OBS_TEST_GUARD();
  obs::Registry& registry = obs::Registry::instance();
  registry.reset();
  PIMSCHED_COUNTER_ADD("obs_test.render", 42);
  std::stringstream ss;
  renderObsSummary(ss);
  EXPECT_NE(ss.str().find("obs_test.render"), std::string::npos);
  EXPECT_NE(ss.str().find("42"), std::string::npos);
  std::stringstream csv;
  writeObsCsv(csv);
  EXPECT_NE(csv.str().find("counter,obs_test.render,42"), std::string::npos);
  registry.reset();
}

TEST(Obs, ParallelGomcdsMergedMetricsEqualPerThreadSum) {
  PIMSCHED_OBS_TEST_GUARD();
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(517);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 6, 6, 24, 40);
  const WindowedRefs refs(t, WindowPartition::evenCount(t.numSteps(), 6), g);

  obs::Registry& registry = obs::Registry::instance();
  registry.reset();
  (void)scheduleGomcdsParallel(refs, model, 4);
  // The totals must equal the whole problem regardless of how the pool
  // split the plan phase: every (datum, window) table went through the
  // cache exactly once (hit or miss), and each miss is one evaluation.
  const std::int64_t tables =
      static_cast<std::int64_t>(refs.numData()) * refs.numWindows();
  EXPECT_EQ(registry.counterValue("sched.gomcds.data"), refs.numData());
  EXPECT_EQ(registry.counterValue("cost.center_cache.hit") +
                registry.counterValue("cost.center_cache.miss"),
            tables);
  EXPECT_EQ(registry.counterValue("cost.center_eval_calls"),
            registry.counterValue("cost.center_cache.miss"));
  EXPECT_EQ(registry.counterValue("solver.runs"), refs.numData());

  // And the totals match a sequential run of the same problem: the cache
  // is deterministic, so hit/miss splits are identical too.
  const std::int64_t parallelMisses =
      registry.counterValue("cost.center_cache.miss");
  registry.reset();
  (void)scheduleGomcds(refs, model);
  EXPECT_EQ(registry.counterValue("sched.gomcds.data"), refs.numData());
  EXPECT_EQ(registry.counterValue("cost.center_cache.hit") +
                registry.counterValue("cost.center_cache.miss"),
            tables);
  EXPECT_EQ(registry.counterValue("cost.center_cache.miss"), parallelMisses);
  registry.reset();
}

}  // namespace
}  // namespace pimsched

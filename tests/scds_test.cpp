#include "core/scds.hpp"

#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "cost/center_costs.hpp"
#include "test_util.hpp"

namespace pimsched {
namespace {

WindowedRefs refsFromTrace(const ReferenceTrace& t, const Grid& g,
                           int windows) {
  return WindowedRefs(t, WindowPartition::evenCount(t.numSteps(), windows),
                      g);
}

TEST(Scds, PlacesDatumAtMergedOptimum) {
  const Grid g(4, 4);
  const CostModel model(g);
  ReferenceTrace t(DataSpace::singleSquare(1));
  t.add(0, g.id(0, 0), 0, 1);
  t.add(1, g.id(0, 2), 0, 1);
  t.add(2, g.id(2, 1), 0, 1);
  t.finalize();
  const WindowedRefs refs = refsFromTrace(t, g, 3);
  const DataSchedule s = scheduleScds(refs, model);
  // Unconstrained: the single center must equal bestCenter of the merged
  // string.
  const BestCenter best = bestCenter(model, refs.mergedRefs(0, 0, 3));
  EXPECT_EQ(s.center(0, 0), best.proc);
  EXPECT_TRUE(s.isStatic());
}

TEST(Scds, IsOptimalAmongStaticPlacements) {
  const Grid g(3, 3);
  const CostModel model(g);
  testutil::Rng rng(31);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 3, 3, 10, 15);
  const WindowedRefs refs = refsFromTrace(t, g, 5);
  const DataSchedule s = scheduleScds(refs, model);
  const EvalResult r = evaluateSchedule(s, refs, model);
  // Per datum, no other static center is cheaper.
  for (DataId d = 0; d < refs.numData(); ++d) {
    for (ProcId p = 0; p < g.size(); ++p) {
      DataSchedule alt = s;
      alt.setStatic(d, p);
      const CostBreakdown c = evaluateDatum(alt, refs, model, d);
      EXPECT_GE(c.total(), r.perData[static_cast<std::size_t>(d)].total());
    }
  }
}

TEST(Scds, NoMovementEver) {
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(32);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 4, 4, 12, 20);
  const WindowedRefs refs = refsFromTrace(t, g, 4);
  const EvalResult r =
      evaluateSchedule(scheduleScds(refs, model), refs, model);
  EXPECT_EQ(r.aggregate.move, 0);
}

TEST(Scds, CapacityForcesFallback) {
  const Grid g(1, 3);
  const CostModel model(g);
  // Three data all pulled toward proc 0.
  DataSpace ds;
  ds.addArray("A", 1, 3);
  ReferenceTrace t(ds);
  for (DataId d = 0; d < 3; ++d) t.add(0, 0, d, 10);
  t.finalize();
  const WindowedRefs refs = refsFromTrace(t, g, 1);
  SchedulerOptions opts;
  opts.capacity = 1;
  const DataSchedule s = scheduleScds(refs, model, opts);
  EXPECT_TRUE(s.respectsCapacity(g, 1));
  // Id order: datum 0 gets proc 0, datum 1 falls back to proc 1, etc.
  EXPECT_EQ(s.center(0, 0), 0);
  EXPECT_EQ(s.center(1, 0), 1);
  EXPECT_EQ(s.center(2, 0), 2);
}

TEST(Scds, WeightOrderGivesHeavyDataPriority) {
  const Grid g(1, 2);
  const CostModel model(g);
  DataSpace ds;
  ds.addArray("A", 1, 2);
  ReferenceTrace t(ds);
  t.add(0, 0, 0, 1);   // light datum wants proc 0
  t.add(0, 0, 1, 10);  // heavy datum wants proc 0 too
  t.finalize();
  const WindowedRefs refs = refsFromTrace(t, g, 1);
  SchedulerOptions opts;
  opts.capacity = 1;
  opts.order = DataOrder::kByWeightDesc;
  const DataSchedule s = scheduleScds(refs, model, opts);
  EXPECT_EQ(s.center(1, 0), 0);  // heavy datum won the contested slot
  EXPECT_EQ(s.center(0, 0), 1);
}

TEST(Scds, InfeasibleCapacityThrows) {
  const Grid g(1, 2);
  const CostModel model(g);
  ReferenceTrace t(DataSpace::singleSquare(2));  // 4 data, 2 slots
  t.add(0, 0, 0, 1);
  t.finalize();
  const WindowedRefs refs = refsFromTrace(t, g, 1);
  SchedulerOptions opts;
  opts.capacity = 1;
  EXPECT_THROW(scheduleScds(refs, model, opts), std::runtime_error);
}

TEST(Scds, RespectsPaperCapacityOnRealKernel) {
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(33);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 8, 8, 16, 64);
  const WindowedRefs refs = refsFromTrace(t, g, 4);
  SchedulerOptions opts;
  opts.capacity = 8;  // 2x the 4-per-proc minimum
  const DataSchedule s = scheduleScds(refs, model, opts);
  EXPECT_TRUE(s.complete());
  EXPECT_TRUE(s.respectsCapacity(g, 8));
}

}  // namespace
}  // namespace pimsched

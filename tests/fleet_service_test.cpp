#include "fleet/fleet_service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/json.hpp"
#include "serve/service.hpp"
#include "trace/trace.hpp"

namespace pimsched::fleet {
namespace {

using pimsched::Method;
using serve::JobRequest;
using serve::JobState;
using serve::SubmitOutcome;

ReferenceTrace makeTrace(int n, int steps, int weightSeed = 1) {
  ReferenceTrace trace(DataSpace::singleSquare(n));
  const int numData = n * n;
  for (int s = 0; s < steps; ++s) {
    for (int d = 0; d < numData; ++d) {
      trace.add(s, (d + s) % (n * n), d, 1 + (d + s * weightSeed) % 3);
    }
  }
  trace.finalize();
  return trace;
}

JobRequest makeRequest(int n = 4, int steps = 6,
                       Method method = Method::kGomcds) {
  JobRequest request;
  request.trace = makeTrace(n, steps);
  request.gridRows = n;
  request.gridCols = n;
  request.config.numWindows = 3;
  request.method = method;
  return request;
}

FleetService::Config healthySingleArray() {
  FleetService::Config config;
  config.arrays = parseFleetSpec("only=4x4");
  config.policyFromEnv = false;
  return config;
}

/// Records the dispatch order (array, tenant) under the service lock.
struct DispatchLog {
  std::mutex mutex;
  std::vector<std::pair<std::string, std::string>> order;

  auto hook() {
    return [this](serve::JobId, const std::string& array,
                  const std::string& tenant) {
      const std::lock_guard<std::mutex> lock(mutex);
      order.emplace_back(array, tenant);
    };
  }
  std::vector<std::pair<std::string, std::string>> snapshot() {
    const std::lock_guard<std::mutex> lock(mutex);
    return order;
  }
};

/// Holds every job run at its start until release() — deterministic queue
/// shaping without timing assumptions. With concurrencyPerArray=1 on a
/// single array at most one run blocks, so the shared pool never starves.
struct RunGate {
  std::promise<void> promise;
  std::shared_future<void> future{promise.get_future().share()};

  auto hook() {
    auto shared = future;
    return [shared](int) { shared.wait(); };
  }
  void release() { promise.set_value(); }
};

// ---------------------------------------------------------------------------
// Acceptance gate: a fleet of one healthy array is bit-identical to the
// plain SchedulingService for the same requests.
// ---------------------------------------------------------------------------

TEST(FleetIdentity, SingleHealthyArrayMatchesSchedulingServiceExactly) {
  FleetService fleetService(healthySingleArray());
  serve::SchedulingService plain;

  for (const Method method :
       {Method::kGomcds, Method::kScds, Method::kGroupedGomcds}) {
    JobRequest request = makeRequest(4, 6, method);
    const SubmitOutcome viaFleet = fleetService.submit(request);
    const SubmitOutcome viaPlain = plain.submit(makeRequest(4, 6, method));
    ASSERT_TRUE(viaFleet.accepted);
    ASSERT_TRUE(viaPlain.accepted);
    const auto fleetResult = fleetService.result(viaFleet.id);
    const auto plainResult = plain.result(viaPlain.id);
    ASSERT_NE(fleetResult, nullptr);
    ASSERT_NE(plainResult, nullptr);
    // Same digest (content addressing agrees), same schedule text (the
    // pipeline ran identically) and same evaluated costs.
    EXPECT_EQ(fleetResult->digest.hex(), plainResult->digest.hex());
    EXPECT_EQ(fleetResult->scheduleText, plainResult->scheduleText);
    EXPECT_EQ(fleetResult->eval.aggregate.serve,
              plainResult->eval.aggregate.serve);
    EXPECT_EQ(fleetResult->eval.aggregate.move,
              plainResult->eval.aggregate.move);
  }
}

TEST(FleetIdentity, RequestFaultsBehaveIdenticallyOnAHealthyArray) {
  FleetService fleetService(healthySingleArray());
  serve::SchedulingService plain;

  JobRequest request = makeRequest();
  request.faults = {"proc:5", "link:0-1"};
  JobRequest same = makeRequest();
  same.faults = request.faults;

  const SubmitOutcome viaFleet = fleetService.submit(std::move(request));
  const SubmitOutcome viaPlain = plain.submit(std::move(same));
  ASSERT_TRUE(viaFleet.accepted);
  ASSERT_TRUE(viaPlain.accepted);
  const auto fleetResult = fleetService.result(viaFleet.id);
  const auto plainResult = plain.result(viaPlain.id);
  ASSERT_NE(fleetResult, nullptr);
  ASSERT_NE(plainResult, nullptr);
  EXPECT_EQ(fleetResult->digest.hex(), plainResult->digest.hex());
  EXPECT_EQ(fleetResult->scheduleText, plainResult->scheduleText);
  EXPECT_EQ(fleetResult->eval.aggregate.total(),
            plainResult->eval.aggregate.total());
}

TEST(FleetIdentity, StandingArrayFaultsEqualRequestFaults) {
  // A job on an array with standing faults must produce exactly what the
  // non-fleet path produces when the same specs ride on the request.
  FleetService::Config config;
  config.arrays = parseFleetSpec("hurt=4x4:proc:5+link:0-1");
  config.policyFromEnv = false;
  FleetService fleetService(std::move(config));
  serve::SchedulingService plain;

  const SubmitOutcome viaFleet = fleetService.submit(makeRequest());
  JobRequest withFaults = makeRequest();
  withFaults.faults = {"proc:5", "link:0-1"};
  const SubmitOutcome viaPlain = plain.submit(std::move(withFaults));
  ASSERT_TRUE(viaFleet.accepted);
  ASSERT_TRUE(viaPlain.accepted);
  const auto fleetResult = fleetService.result(viaFleet.id);
  const auto plainResult = plain.result(viaPlain.id);
  ASSERT_NE(fleetResult, nullptr);
  ASSERT_NE(plainResult, nullptr);
  // Digests differ (the fleet job carries no request faults); the work —
  // the schedule and its cost — is identical.
  EXPECT_EQ(fleetResult->scheduleText, plainResult->scheduleText);
  EXPECT_EQ(fleetResult->eval.aggregate.total(),
            plainResult->eval.aggregate.total());
}

// ---------------------------------------------------------------------------
// Admission and placement.
// ---------------------------------------------------------------------------

TEST(FleetService, RejectsShapesNoArrayCanHost) {
  FleetService fleetService(healthySingleArray());
  const SubmitOutcome outcome = fleetService.submit(makeRequest(8, 2));
  EXPECT_FALSE(outcome.accepted);
  EXPECT_NE(outcome.reason.find("no array in the fleet matches grid 8x8"),
            std::string::npos);
}

TEST(FleetService, CostPolicyRoutesAroundTheFaultedArray) {
  DispatchLog log;
  FleetService::Config config;
  config.arrays = parseFleetSpec("bad=4x4:proc:5+proc:6+proc:9;good=4x4");
  config.policyFromEnv = false;
  config.onDispatch = log.hook();
  FleetService fleetService(std::move(config));

  const SubmitOutcome outcome = fleetService.submit(makeRequest());
  ASSERT_TRUE(outcome.accepted);
  const auto result = fleetService.result(outcome.id);
  ASSERT_NE(result, nullptr);
  const auto order = log.snapshot();
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0].first, "good");
}

TEST(FleetService, TenantQuotaRejectsWithoutStarvingOtherTenants) {
  RunGate gate;
  FleetService::Config config = healthySingleArray();
  config.tenantQueueDepth = 2;
  config.onJobAttempt = gate.hook();
  FleetService fleetService(std::move(config));

  // Occupy the single slot so subsequent submissions stay queued.
  JobRequest blocker = makeRequest();
  blocker.tenant = "other";
  ASSERT_TRUE(fleetService.submit(std::move(blocker)).accepted);

  for (int i = 0; i < 2; ++i) {
    JobRequest request = makeRequest(4, 6 + i + 1);
    request.tenant = "greedy";
    ASSERT_TRUE(fleetService.submit(std::move(request)).accepted);
  }
  JobRequest overQuota = makeRequest(4, 12);
  overQuota.tenant = "greedy";
  const SubmitOutcome rejected = fleetService.submit(std::move(overQuota));
  EXPECT_FALSE(rejected.accepted);
  EXPECT_NE(rejected.reason.find("tenant quota exceeded"),
            std::string::npos);
  EXPECT_NE(rejected.reason.find("greedy"), std::string::npos);

  // The quota is per tenant: another tenant keeps submitting.
  JobRequest fine = makeRequest(4, 12);
  fine.tenant = "polite";
  EXPECT_TRUE(fleetService.submit(std::move(fine)).accepted);

  gate.release();
  fleetService.drain();
}

TEST(FleetService, FleetWideQueueBoundStillApplies) {
  RunGate gate;
  FleetService::Config config = healthySingleArray();
  config.maxQueueDepth = 2;
  config.tenantQueueDepth = 64;
  config.onJobAttempt = gate.hook();
  FleetService fleetService(std::move(config));

  ASSERT_TRUE(fleetService.submit(makeRequest()).accepted);  // runs
  ASSERT_TRUE(fleetService.submit(makeRequest(4, 7)).accepted);
  ASSERT_TRUE(fleetService.submit(makeRequest(4, 8)).accepted);
  const SubmitOutcome rejected = fleetService.submit(makeRequest(4, 9));
  EXPECT_FALSE(rejected.accepted);
  EXPECT_NE(rejected.reason.find("queue full"), std::string::npos);

  gate.release();
  fleetService.drain();
}

// ---------------------------------------------------------------------------
// Weighted fair shares and priority aging.
// ---------------------------------------------------------------------------

TEST(FleetFairness, StrideSchedulingHonoursFourToOneWeights) {
  DispatchLog log;
  RunGate gate;
  FleetService::Config config = healthySingleArray();
  config.tenantWeights = {{"alpha", 4.0}, {"beta", 1.0}};
  config.tenantQueueDepth = 64;
  config.maxQueueDepth = 256;
  config.agingMs = 3'600'000;  // no aging interference at test timescales
  config.onDispatch = log.hook();
  config.onJobAttempt = gate.hook();
  FleetService fleetService(std::move(config));

  constexpr int kPerTenant = 10;
  for (int i = 0; i < kPerTenant; ++i) {
    for (const char* tenant : {"alpha", "beta"}) {
      JobRequest request = makeRequest(4, 4, Method::kScds);
      request.trace = makeTrace(4, 4, 2 + i);  // distinct digests
      request.tenant = tenant;
      ASSERT_TRUE(fleetService.submit(std::move(request)).accepted);
    }
  }
  gate.release();
  fleetService.drain();

  // Walk the recorded dispatch order while both tenants still had
  // undispatched jobs; stride scheduling must split that contended
  // window close to the 4:1 weights.
  int alpha = 0, beta = 0;
  for (const auto& [array, tenant] : log.snapshot()) {
    if (tenant == "alpha") ++alpha;
    if (tenant == "beta") ++beta;
    if (alpha == kPerTenant || beta == kPerTenant) break;
  }
  ASSERT_GT(beta, 0);
  const double ratio = static_cast<double>(alpha) / beta;
  EXPECT_GE(ratio, 3.0) << "alpha=" << alpha << " beta=" << beta;
  EXPECT_LE(ratio, 5.0) << "alpha=" << alpha << " beta=" << beta;

  const FleetService::FleetStats stats = fleetService.fleetStats();
  ASSERT_EQ(stats.tenants.size(), 2u);
  EXPECT_EQ(stats.tenants[0].name, "alpha");
  EXPECT_EQ(stats.tenants[0].weight, 4.0);
  EXPECT_EQ(stats.tenants[0].dispatched, kPerTenant);
  EXPECT_GT(stats.tenants[0].contended, 0);
  EXPECT_EQ(stats.tenants[1].name, "beta");
  EXPECT_EQ(stats.tenants[1].dispatched, kPerTenant);
}

TEST(FleetFairness, AgingLiftsAStarvedLowPriorityJob) {
  DispatchLog log;
  RunGate gate;
  FleetService::Config config = healthySingleArray();
  config.agingMs = 50;
  config.agingLimit = 8;
  config.onDispatch = log.hook();
  config.onJobAttempt = gate.hook();
  FleetService fleetService(std::move(config));

  // Blocker occupies the slot; the low-priority job queues and ages well
  // past the +8 cap while the high-priority flood arrives fresh (a fresh
  // job would need to wait 350ms to tie — far longer than any dispatch
  // decision takes after the gate opens).
  ASSERT_TRUE(fleetService.submit(makeRequest(4, 6, Method::kScds)).accepted);
  JobRequest starved = makeRequest(4, 7, Method::kScds);
  starved.tenant = "low";
  starved.priority = 0;
  ASSERT_TRUE(fleetService.submit(std::move(starved)).accepted);
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  for (int i = 0; i < 5; ++i) {
    JobRequest fresh = makeRequest(4, 8 + i, Method::kScds);
    fresh.tenant = "hi";
    fresh.priority = 1;
    ASSERT_TRUE(fleetService.submit(std::move(fresh)).accepted);
  }
  gate.release();
  fleetService.drain();

  const auto order = log.snapshot();
  ASSERT_EQ(order.size(), 7u);
  // The aged job (effective priority 0+8) outranks the fresh priority-1
  // flood and goes right after the blocker — not last.
  EXPECT_EQ(order[1].second, "low");
}

TEST(FleetFairness, WithoutAgingTheSameLowPriorityJobGoesLast) {
  DispatchLog log;
  RunGate gate;
  FleetService::Config config = healthySingleArray();
  config.agingMs = 0;  // aging disabled: the starvation this PR prevents
  config.onDispatch = log.hook();
  config.onJobAttempt = gate.hook();
  FleetService fleetService(std::move(config));

  ASSERT_TRUE(fleetService.submit(makeRequest(4, 6, Method::kScds)).accepted);
  JobRequest starved = makeRequest(4, 7, Method::kScds);
  starved.tenant = "low";
  starved.priority = 0;
  ASSERT_TRUE(fleetService.submit(std::move(starved)).accepted);
  for (int i = 0; i < 5; ++i) {
    JobRequest fresh = makeRequest(4, 8 + i, Method::kScds);
    fresh.tenant = "hi";
    fresh.priority = 1;
    ASSERT_TRUE(fleetService.submit(std::move(fresh)).accepted);
  }
  gate.release();
  fleetService.drain();

  const auto order = log.snapshot();
  ASSERT_EQ(order.size(), 7u);
  EXPECT_EQ(order.back().second, "low");
}

// ---------------------------------------------------------------------------
// Batch/serve mode switch.
// ---------------------------------------------------------------------------

TEST(FleetMode, BatchWaitsForTheServeBacklogToDrain) {
  DispatchLog log;
  RunGate gate;
  FleetService::Config config = healthySingleArray();
  config.drainThreshold = 0;
  config.onDispatch = log.hook();
  config.onJobAttempt = gate.hook();
  FleetService fleetService(std::move(config));

  ASSERT_TRUE(fleetService.submit(makeRequest()).accepted);  // runs, gated
  JobRequest bulk = makeRequest(4, 7);
  bulk.tenant = "bulk";
  bulk.batch = true;
  bulk.priority = 100;  // priority must not let batch jump the serve queue
  ASSERT_TRUE(fleetService.submit(std::move(bulk)).accepted);
  for (int i = 0; i < 2; ++i) {
    JobRequest interactive = makeRequest(4, 8 + i);
    interactive.tenant = "ux";
    ASSERT_TRUE(fleetService.submit(std::move(interactive)).accepted);
  }
  gate.release();
  fleetService.drain();

  const auto order = log.snapshot();
  ASSERT_EQ(order.size(), 4u);
  // Despite its priority and earlier submission, the batch job dispatches
  // only after the serve backlog drained to the threshold.
  EXPECT_EQ(order.back().second, "bulk");

  const FleetService::FleetStats stats = fleetService.fleetStats();
  EXPECT_EQ(stats.serveDispatches, 3);
  EXPECT_EQ(stats.batchDispatches, 1);
  EXPECT_GE(stats.modeSwitches, 1);
  EXPECT_TRUE(stats.batchMode);  // the last dispatch flipped to batch mode
}

// ---------------------------------------------------------------------------
// Result cache keyed by digest | array fault signature.
// ---------------------------------------------------------------------------

TEST(FleetCache, ResubmitIsServedFromTheCache) {
  FleetService fleetService(healthySingleArray());
  const SubmitOutcome first = fleetService.submit(makeRequest());
  ASSERT_TRUE(first.accepted);
  EXPECT_FALSE(first.cached);
  const auto firstResult = fleetService.result(first.id);
  ASSERT_NE(firstResult, nullptr);

  const SubmitOutcome second = fleetService.submit(makeRequest());
  ASSERT_TRUE(second.accepted);
  EXPECT_TRUE(second.cached);
  const auto secondResult = fleetService.result(second.id);
  ASSERT_NE(secondResult, nullptr);
  EXPECT_TRUE(secondResult->cacheHit);
  EXPECT_EQ(secondResult->scheduleText, firstResult->scheduleText);
  EXPECT_EQ(fleetService.stats().cacheHits, 1);
}

TEST(FleetCache, TenantsNeverShareCacheEntries) {
  FleetService fleetService(healthySingleArray());
  JobRequest a = makeRequest();
  a.tenant = "a";
  JobRequest b = makeRequest();
  b.tenant = "b";
  const SubmitOutcome first = fleetService.submit(std::move(a));
  ASSERT_TRUE(first.accepted);
  ASSERT_NE(fleetService.result(first.id), nullptr);
  // Identical work, different tenant: a fresh run, not the cached answer.
  const SubmitOutcome second = fleetService.submit(std::move(b));
  ASSERT_TRUE(second.accepted);
  EXPECT_FALSE(second.cached);
  ASSERT_NE(fleetService.result(second.id), nullptr);
  EXPECT_EQ(fleetService.stats().cacheHits, 0);
}

TEST(FleetCache, FaultedArrayResultsAreKeyedByTheirSignature) {
  // Same job on a degraded single-array fleet: the second submit hits the
  // cache under the faulted signature (a healthy-fleet entry would be a
  // different key entirely).
  FleetService::Config config;
  config.arrays = parseFleetSpec("hurt=4x4:proc:5");
  config.policyFromEnv = false;
  FleetService fleetService(std::move(config));

  const SubmitOutcome first = fleetService.submit(makeRequest());
  ASSERT_TRUE(first.accepted);
  ASSERT_NE(fleetService.result(first.id), nullptr);
  const SubmitOutcome second = fleetService.submit(makeRequest());
  ASSERT_TRUE(second.accepted);
  EXPECT_TRUE(second.cached);
}

TEST(FleetCache, DisabledCacheAlwaysRecomputes) {
  FleetService::Config config = healthySingleArray();
  config.cacheEnabled = false;
  FleetService fleetService(std::move(config));
  const SubmitOutcome first = fleetService.submit(makeRequest());
  ASSERT_TRUE(first.accepted);
  ASSERT_NE(fleetService.result(first.id), nullptr);
  const SubmitOutcome second = fleetService.submit(makeRequest());
  ASSERT_TRUE(second.accepted);
  EXPECT_FALSE(second.cached);
}

// ---------------------------------------------------------------------------
// Lifecycle, stats and the protocol surface.
// ---------------------------------------------------------------------------

TEST(FleetService, CancelHitsQueuedJobsOnly) {
  RunGate gate;
  FleetService::Config config = healthySingleArray();
  config.onJobAttempt = gate.hook();
  FleetService fleetService(std::move(config));

  const SubmitOutcome running = fleetService.submit(makeRequest());
  ASSERT_TRUE(running.accepted);
  const SubmitOutcome queued = fleetService.submit(makeRequest(4, 7));
  ASSERT_TRUE(queued.accepted);

  EXPECT_TRUE(fleetService.cancel(queued.id));
  EXPECT_FALSE(fleetService.cancel(running.id));
  EXPECT_FALSE(fleetService.cancel(queued.id));  // already cancelled

  gate.release();
  fleetService.drain();
  const auto status = fleetService.status(queued.id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kCancelled);
  EXPECT_EQ(fleetService.result(queued.id, /*wait=*/false), nullptr);
}

TEST(FleetService, DrainFinishesEverythingThenRejects) {
  FleetService fleetService(healthySingleArray());
  std::vector<serve::JobId> ids;
  for (int i = 0; i < 4; ++i) {
    const SubmitOutcome outcome = fleetService.submit(makeRequest(4, 5 + i));
    ASSERT_TRUE(outcome.accepted);
    ids.push_back(outcome.id);
  }
  fleetService.drain();
  for (const serve::JobId id : ids) {
    const auto status = fleetService.status(id);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->state, JobState::kDone);
  }
  EXPECT_FALSE(fleetService.submit(makeRequest()).accepted);
}

TEST(FleetService, StatsExtraEmitsTheFleetBreakdown) {
  FleetService::Config config;
  config.arrays = parseFleetSpec("a=4x4;b=4x4:proc:5");
  config.policyFromEnv = false;
  FleetService fleetService(std::move(config));

  JobRequest request = makeRequest();
  request.tenant = "team1";
  const SubmitOutcome outcome = fleetService.submit(std::move(request));
  ASSERT_TRUE(outcome.accepted);
  ASSERT_NE(fleetService.result(outcome.id), nullptr);

  serve::Json reply = serve::Json(serve::Json::Object{});
  fleetService.statsExtra(reply);
  const serve::Json* fleetObj = reply.find("fleet");
  ASSERT_NE(fleetObj, nullptr);
  EXPECT_EQ(fleetObj->find("policy")->asString(), "cost");

  const auto& arrays = fleetObj->find("arrays")->asArray();
  ASSERT_EQ(arrays.size(), 2u);
  EXPECT_EQ(arrays[0].find("name")->asString(), "a");
  EXPECT_TRUE(arrays[0].find("healthy")->asBool());
  EXPECT_FALSE(arrays[1].find("healthy")->asBool());
  EXPECT_EQ(arrays[1].find("dead_procs")->asInt64(), 1);

  const auto& tenants = fleetObj->find("tenants")->asArray();
  ASSERT_EQ(tenants.size(), 1u);
  EXPECT_EQ(tenants[0].find("name")->asString(), "team1");
  EXPECT_EQ(tenants[0].find("completed")->asInt64(), 1);
}

TEST(FleetService, UnknownIdsAreDistinguishable) {
  FleetService fleetService(healthySingleArray());
  EXPECT_FALSE(fleetService.status(999).has_value());
  EXPECT_EQ(fleetService.result(999, /*wait=*/false), nullptr);
  EXPECT_FALSE(fleetService.cancel(999));
}

// ---------------------------------------------------------------------------
// Live fault drift against the cache and the bit-identity invariant.
// ---------------------------------------------------------------------------

TEST(FleetCache, DriftInvalidatesEntriesNoLiveArrayCanServe) {
  FleetService fleetService(healthySingleArray());

  // Warm the cache with the healthy-mesh answer.
  const SubmitOutcome first = fleetService.submit(makeRequest());
  ASSERT_TRUE(first.accepted);
  const auto healthyResult = fleetService.result(first.id);
  ASSERT_NE(healthyResult, nullptr);
  ASSERT_TRUE(fleetService.submit(makeRequest()).cached);

  // Injecting a fault retires the healthy signature: the cached entry
  // must not answer for the now-degraded array.
  const serve::DriftOutcome drift =
      fleetService.applyDrift("only", {"proc:5"}, false);
  ASSERT_TRUE(drift.ok) << drift.error;
  EXPECT_GE(drift.cacheInvalidated, 1);

  const SubmitOutcome faulted = fleetService.submit(makeRequest());
  ASSERT_TRUE(faulted.accepted);
  EXPECT_FALSE(faulted.cached);
  const auto faultedResult = fleetService.result(faulted.id);
  ASSERT_NE(faultedResult, nullptr);
  // The recomputed answer is the fault-aware solve, not the stale one.
  const auto expected = serve::executeJobRequest(makeRequest(), {"proc:5"});
  EXPECT_EQ(faultedResult->scheduleText, expected->scheduleText);

  // Healing retires the faulted signature in turn.
  const serve::DriftOutcome heal = fleetService.applyDrift("only", {}, true);
  ASSERT_TRUE(heal.ok) << heal.error;
  EXPECT_GE(heal.cacheInvalidated, 1);
  EXPECT_EQ(fleetService.fleetStats().rebalance.cacheInvalidated,
            drift.cacheInvalidated + heal.cacheInvalidated);
}

TEST(FleetIdentity, InjectHealCycleRestoresBitIdenticalResults) {
  FleetService fleetService(healthySingleArray());
  serve::SchedulingService plain;

  ASSERT_TRUE(fleetService.applyDrift("only", {"proc:5"}, false).ok);
  ASSERT_TRUE(fleetService.applyDrift("only", {}, true).ok);

  // After a full inject/heal round trip the fleet is indistinguishable
  // from a service that never drifted.
  const SubmitOutcome viaFleet = fleetService.submit(makeRequest());
  const SubmitOutcome viaPlain = plain.submit(makeRequest());
  ASSERT_TRUE(viaFleet.accepted);
  ASSERT_TRUE(viaPlain.accepted);
  const auto fleetResult = fleetService.result(viaFleet.id);
  const auto plainResult = plain.result(viaPlain.id);
  ASSERT_NE(fleetResult, nullptr);
  ASSERT_NE(plainResult, nullptr);
  EXPECT_EQ(fleetResult->digest.hex(), plainResult->digest.hex());
  EXPECT_EQ(fleetResult->scheduleText, plainResult->scheduleText);
  EXPECT_EQ(fleetResult->eval.aggregate.total(),
            plainResult->eval.aggregate.total());
}

}  // namespace
}  // namespace pimsched::fleet

#include "trace/windowed_refs.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace pimsched {
namespace {

WindowedRefs makeRefs(const Grid& grid) {
  ReferenceTrace t(DataSpace::singleSquare(2));  // 4 data
  // datum 0: referenced in steps 0,1 (window 0) and step 2 (window 1)
  t.add(0, 1, 0, 2);
  t.add(1, 1, 0, 3);
  t.add(1, 2, 0, 1);
  t.add(2, 3, 0, 4);
  // datum 3: only step 3 (window 1)
  t.add(3, 0, 3, 1);
  t.finalize();
  return WindowedRefs(t, WindowPartition::fixedSize(4, 2), grid);
}

TEST(WindowedRefs, AggregatesPerWindowPerProc) {
  const Grid grid(2, 2);
  const WindowedRefs refs = makeRefs(grid);
  EXPECT_EQ(refs.numData(), 4);
  EXPECT_EQ(refs.numWindows(), 2);
  EXPECT_EQ(refs.numProcs(), 4);

  const auto w0 = refs.refs(0, 0);
  ASSERT_EQ(w0.size(), 2u);
  EXPECT_EQ(w0[0], (ProcWeight{1, 5}));  // steps 0+1 on proc 1 merged
  EXPECT_EQ(w0[1], (ProcWeight{2, 1}));

  const auto w1 = refs.refs(0, 1);
  ASSERT_EQ(w1.size(), 1u);
  EXPECT_EQ(w1[0], (ProcWeight{3, 4}));
}

TEST(WindowedRefs, UnreferencedDataHaveEmptyStrings) {
  const Grid grid(2, 2);
  const WindowedRefs refs = makeRefs(grid);
  EXPECT_TRUE(refs.refs(1, 0).empty());
  EXPECT_TRUE(refs.refs(1, 1).empty());
  EXPECT_TRUE(refs.unreferenced(1));
  EXPECT_FALSE(refs.unreferenced(0));
}

TEST(WindowedRefs, WeightAccounting) {
  const Grid grid(2, 2);
  const WindowedRefs refs = makeRefs(grid);
  EXPECT_EQ(refs.windowWeight(0, 0), 6);
  EXPECT_EQ(refs.windowWeight(0, 1), 4);
  EXPECT_EQ(refs.dataWeight(0), 10);
  EXPECT_EQ(refs.dataWeight(3), 1);
}

TEST(WindowedRefs, MergedRefsSumAcrossWindows) {
  const Grid grid(2, 2);
  const WindowedRefs refs = makeRefs(grid);
  const auto merged = refs.mergedRefs(0, 0, 2);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0], (ProcWeight{1, 5}));
  EXPECT_EQ(merged[1], (ProcWeight{2, 1}));
  EXPECT_EQ(merged[2], (ProcWeight{3, 4}));
}

TEST(WindowedRefs, MergedRefsSingleWindowEqualsRefs) {
  const Grid grid(3, 3);
  testutil::Rng rng(7);
  const ReferenceTrace t = testutil::randomTrace(rng, grid, 4, 4, 12, 20);
  const WindowedRefs refs(t, WindowPartition::fixedSize(12, 3), grid);
  for (DataId d = 0; d < refs.numData(); ++d) {
    for (WindowId w = 0; w < refs.numWindows(); ++w) {
      const auto merged = refs.mergedRefs(d, w, w + 1);
      const auto direct = refs.refs(d, w);
      ASSERT_EQ(merged.size(), direct.size());
      for (std::size_t i = 0; i < merged.size(); ++i) {
        EXPECT_EQ(merged[i], direct[i]);
      }
    }
  }
}

TEST(WindowedRefs, TotalWeightConserved) {
  const Grid grid(4, 4);
  testutil::Rng rng(11);
  const ReferenceTrace t = testutil::randomTrace(rng, grid, 6, 6, 20, 30);
  const WindowedRefs refs(t, WindowPartition::evenCount(20, 5), grid);
  Cost sum = 0;
  for (DataId d = 0; d < refs.numData(); ++d) sum += refs.dataWeight(d);
  EXPECT_EQ(sum, t.totalWeight());
}

TEST(WindowedRefs, RejectsMismatchedInputs) {
  const Grid grid(2, 2);
  ReferenceTrace t(DataSpace::singleSquare(2));
  t.add(0, 0, 0, 1);
  EXPECT_THROW(
      WindowedRefs(t, WindowPartition::whole(1), grid),
      std::invalid_argument);  // not finalized
  t.finalize();
  EXPECT_THROW(WindowedRefs(t, WindowPartition::whole(2), grid),
               std::invalid_argument);  // wrong step count
}

TEST(WindowedRefs, RejectsProcOutsideGrid) {
  const Grid grid(1, 2);
  ReferenceTrace t(DataSpace::singleSquare(2));
  t.add(0, 5, 0, 1);
  t.finalize();
  EXPECT_THROW(WindowedRefs(t, WindowPartition::whole(1), grid),
               std::invalid_argument);
}

TEST(WindowedRefs, MergedRefsRejectsBadRange) {
  const Grid grid(2, 2);
  const WindowedRefs refs = makeRefs(grid);
  EXPECT_THROW(refs.mergedRefs(0, 1, 1), std::invalid_argument);
  EXPECT_THROW(refs.mergedRefs(0, 0, 3), std::invalid_argument);
}

TEST(WindowedRefs, RefsSignatureAgreesWithSameRefs) {
  // Two data with identical per-window reference strings must share a
  // signature and compare equal; the dedup layer in GOMCDS relies on both.
  const Grid grid(2, 2);
  ReferenceTrace t(DataSpace::singleSquare(2));
  t.add(0, 0, 0, 3);
  t.add(0, 0, 1, 3);  // datum 1 mirrors datum 0 in every window
  t.add(1, 2, 0, 1);
  t.add(1, 2, 1, 1);
  t.add(1, 3, 2, 5);  // datum 2 differs
  t.finalize();
  const WindowedRefs refs(t, WindowPartition::evenCount(2, 2), grid);
  EXPECT_EQ(refs.refsSignature(0), refs.refsSignature(1));
  EXPECT_TRUE(refs.sameRefs(0, 1));
  EXPECT_TRUE(refs.sameRefs(0, 0));
  EXPECT_FALSE(refs.sameRefs(0, 2));
  EXPECT_NE(refs.refsSignature(0), refs.refsSignature(2));
}

TEST(WindowedRefs, RefsSignatureSeparatesWeightAndProcessor) {
  // Same processors with different weights, and same weights on different
  // processors, must both change the signature (FNV mixes each field).
  const Grid grid(1, 4);
  ReferenceTrace t(DataSpace::singleSquare(2));
  t.add(0, 1, 0, 2);
  t.add(0, 1, 1, 7);  // weight differs from datum 0
  t.add(0, 2, 2, 2);  // processor differs from datum 0
  t.add(0, 1, 3, 2);  // identical to datum 0
  t.finalize();
  const WindowedRefs refs(t, WindowPartition::whole(1), grid);
  EXPECT_FALSE(refs.sameRefs(0, 1));
  EXPECT_FALSE(refs.sameRefs(0, 2));
  EXPECT_TRUE(refs.sameRefs(0, 3));
  EXPECT_NE(refs.refsSignature(0), refs.refsSignature(1));
  EXPECT_NE(refs.refsSignature(0), refs.refsSignature(2));
  EXPECT_EQ(refs.refsSignature(0), refs.refsSignature(3));
}

}  // namespace
}  // namespace pimsched

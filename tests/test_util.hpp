#pragma once

#include <cstdint>
#include <vector>

#include "cost/cost_model.hpp"
#include "trace/trace.hpp"
#include "trace/windowed_refs.hpp"

namespace pimsched::testutil {

/// Deterministic 64-bit LCG for property tests (no <random> so sequences
/// are identical across standard libraries).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 33;
  }

  /// Uniform in [0, bound).
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform in [lo, hi].
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

 private:
  std::uint64_t state_;
};

/// A random reference string on a grid: `count` entries with weights in
/// [1, maxWeight], duplicate processors merged.
inline std::vector<ProcWeight> randomRefs(Rng& rng, const Grid& grid,
                                          int count, Cost maxWeight = 5) {
  std::vector<Cost> acc(static_cast<std::size_t>(grid.size()), 0);
  for (int i = 0; i < count; ++i) {
    acc[rng.below(static_cast<std::uint64_t>(grid.size()))] +=
        rng.range(1, maxWeight);
  }
  std::vector<ProcWeight> refs;
  for (ProcId p = 0; p < grid.size(); ++p) {
    if (acc[static_cast<std::size_t>(p)] > 0) {
      refs.push_back(ProcWeight{p, acc[static_cast<std::size_t>(p)]});
    }
  }
  return refs;
}

/// A random finalized trace: numData data over numSteps steps; each step
/// references a random subset.
inline ReferenceTrace randomTrace(Rng& rng, const Grid& grid, int dataRows,
                                  int dataCols, StepId numSteps,
                                  int refsPerStep) {
  ReferenceTrace trace(DataSpace::singleSquare(dataRows > dataCols ? dataRows
                                                                   : dataRows,
                                               "A"));
  // DataSpace::singleSquare is square; rebuild properly for rectangles.
  if (dataRows != dataCols) {
    DataSpace ds;
    ds.addArray("A", dataRows, dataCols);
    trace = ReferenceTrace(ds);
  }
  const DataId numData = trace.dataSpace().numData();
  for (StepId s = 0; s < numSteps; ++s) {
    for (int r = 0; r < refsPerStep; ++r) {
      trace.add(s,
                static_cast<ProcId>(
                    rng.below(static_cast<std::uint64_t>(grid.size()))),
                static_cast<DataId>(
                    rng.below(static_cast<std::uint64_t>(numData))),
                rng.range(1, 4));
    }
  }
  trace.finalize();
  return trace;
}

}  // namespace pimsched::testutil

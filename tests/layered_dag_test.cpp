#include "graph/layered_dag.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "test_util.hpp"

namespace pimsched {
namespace {

TEST(SatAdd, Saturates) {
  EXPECT_EQ(satAdd(1, 2), 3);
  EXPECT_EQ(satAdd(kInfiniteCost, 1), kInfiniteCost);
  EXPECT_EQ(satAdd(5, kInfiniteCost), kInfiniteCost);
  EXPECT_EQ(satAdd(kInfiniteCost, kInfiniteCost), kInfiniteCost);
}

TEST(ManhattanMinPlus, ZeroBetaGivesGlobalMin) {
  const Grid g(4, 5);
  testutil::Rng rng(3);
  std::vector<Cost> in;
  for (int i = 0; i < g.size(); ++i) in.push_back(rng.range(0, 100));
  const Cost globalMin = *std::min_element(in.begin(), in.end());
  for (const Cost v : manhattanMinPlus(g, in, 0)) EXPECT_EQ(v, globalMin);
}

TEST(ManhattanMinPlus, MatchesBruteForce) {
  testutil::Rng rng(17);
  for (const auto& [rows, cols] : {std::pair{1, 1}, {1, 6}, {6, 1}, {4, 4},
                                  {3, 7}, {5, 5}}) {
    const Grid g(rows, cols);
    for (const Cost beta : {Cost{0}, Cost{1}, Cost{3}}) {
      std::vector<Cost> in;
      for (int i = 0; i < g.size(); ++i) {
        // Mix in a few forbidden nodes.
        in.push_back(rng.below(5) == 0 ? kInfiniteCost : rng.range(0, 50));
      }
      const auto fast = manhattanMinPlus(g, in, beta);
      for (ProcId p = 0; p < g.size(); ++p) {
        Cost expect = kInfiniteCost;
        for (ProcId q = 0; q < g.size(); ++q) {
          expect = std::min(
              expect,
              satAdd(in[static_cast<std::size_t>(q)], beta * g.manhattan(p, q)));
        }
        ASSERT_EQ(fast[static_cast<std::size_t>(p)], expect)
            << rows << "x" << cols << " beta " << beta << " p " << p;
      }
    }
  }
}

TEST(ManhattanMinPlus, AllInfiniteStaysInfinite) {
  const Grid g(3, 3);
  const std::vector<Cost> in(9, kInfiniteCost);
  for (const Cost v : manhattanMinPlus(g, in, 2)) {
    EXPECT_EQ(v, kInfiniteCost);
  }
}

TEST(LayeredDagSolver, SingleLayerPicksMinNode) {
  const auto nodeCost = [](int, int n) -> Cost { return (n == 2) ? 1 : 5; };
  const auto trans = [](int, int) -> Cost { return 0; };
  const LayeredPath path = LayeredDagSolver::solve(1, 4, nodeCost, trans);
  ASSERT_TRUE(path.feasible());
  EXPECT_EQ(path.total, 1);
  EXPECT_EQ(path.nodes, (std::vector<int>{2}));
}

TEST(LayeredDagSolver, TradesNodeCostAgainstTransition) {
  // Two layers, two nodes. Node 0 is cheap in both layers, node 1 cheap in
  // layer 1 only; transition cost 10 forbids switching.
  const auto nodeCost = [](int layer, int n) -> Cost {
    if (layer == 0) return n == 0 ? 0 : 4;
    return n == 0 ? 3 : 0;
  };
  const auto trans = [](int a, int b) -> Cost { return a == b ? 0 : 10; };
  const LayeredPath path = LayeredDagSolver::solve(2, 2, nodeCost, trans);
  EXPECT_EQ(path.total, 3);  // stay at node 0: 0 + 3
  EXPECT_EQ(path.nodes, (std::vector<int>{0, 0}));
}

TEST(LayeredDagSolver, SwitchesWhenWorthIt) {
  const auto nodeCost = [](int layer, int n) -> Cost {
    if (layer == 0) return n == 0 ? 0 : 100;
    return n == 0 ? 100 : 0;
  };
  const auto trans = [](int a, int b) -> Cost { return a == b ? 0 : 1; };
  const LayeredPath path = LayeredDagSolver::solve(2, 2, nodeCost, trans);
  EXPECT_EQ(path.total, 1);
  EXPECT_EQ(path.nodes, (std::vector<int>{0, 1}));
}

TEST(LayeredDagSolver, InfeasibleWhenLayerFullyForbidden) {
  const auto nodeCost = [](int layer, int) -> Cost {
    return layer == 1 ? kInfiniteCost : 0;
  };
  const auto trans = [](int, int) -> Cost { return 0; };
  const LayeredPath path = LayeredDagSolver::solve(3, 2, nodeCost, trans);
  EXPECT_FALSE(path.feasible());
  EXPECT_TRUE(path.nodes.empty());
}

TEST(LayeredDagSolver, RoutesAroundForbiddenNodes) {
  // Node 0 forbidden in layer 1 only; optimal path detours via node 1.
  const auto nodeCost = [](int layer, int n) -> Cost {
    if (layer == 1 && n == 0) return kInfiniteCost;
    return n == 0 ? 0 : 2;
  };
  const auto trans = [](int a, int b) -> Cost { return a == b ? 0 : 1; };
  const LayeredPath path = LayeredDagSolver::solve(3, 2, nodeCost, trans);
  ASSERT_TRUE(path.feasible());
  EXPECT_EQ(path.nodes, (std::vector<int>{0, 1, 0}));
  EXPECT_EQ(path.total, 0 + 1 + 2 + 1 + 0);
}

// Property: the chamfer engine must agree with the literal cost-graph
// relaxation — identical totals AND identical paths (shared tie-breaking).
class EngineEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(EngineEquivalence, ChamferMatchesNaive) {
  const auto [rows, cols, layers, seed] = GetParam();
  const Grid g(rows, cols);
  testutil::Rng rng(static_cast<std::uint64_t>(seed));
  for (const Cost beta : {Cost{0}, Cost{1}, Cost{2}}) {
    // Random node costs with some forbidden cells.
    std::vector<std::vector<Cost>> costs(
        static_cast<std::size_t>(layers),
        std::vector<Cost>(static_cast<std::size_t>(g.size())));
    for (auto& layer : costs) {
      for (auto& c : layer) {
        c = rng.below(6) == 0 ? kInfiniteCost : rng.range(0, 40);
      }
    }
    const auto nodeCost = [&costs](int w, int p) -> Cost {
      return costs[static_cast<std::size_t>(w)][static_cast<std::size_t>(p)];
    };
    const auto trans = [&g, beta](int a, int b) -> Cost {
      return beta * g.manhattan(static_cast<ProcId>(a),
                                static_cast<ProcId>(b));
    };
    const LayeredPath naive =
        LayeredDagSolver::solve(layers, g.size(), nodeCost, trans);
    const LayeredPath fast =
        LayeredDagSolver::solveManhattan(g, layers, nodeCost, beta);
    ASSERT_EQ(naive.total, fast.total);
    ASSERT_EQ(naive.nodes, fast.nodes);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, EngineEquivalence,
    ::testing::Values(std::make_tuple(2, 2, 1, 1), std::make_tuple(2, 2, 4, 2),
                      std::make_tuple(4, 4, 6, 3), std::make_tuple(1, 7, 5, 4),
                      std::make_tuple(5, 1, 5, 5), std::make_tuple(3, 4, 8, 6),
                      std::make_tuple(4, 4, 2, 7),
                      std::make_tuple(6, 3, 10, 8)));

}  // namespace
}  // namespace pimsched

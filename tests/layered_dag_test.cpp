#include "graph/layered_dag.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <tuple>

#include "graph/simd/simd_kernels.hpp"
#include "test_util.hpp"

namespace pimsched {
namespace {

/// The pre-flat solver algorithm, kept verbatim as the bit-identity oracle:
/// per-cell saturating dp (dp[w][p] = min_q satAdd(dp[w-1][q], trans(q,p))
/// + own) and the backward smallest-q reconstruction scan. The flat kernels
/// must reproduce its totals, node sequences, and tie-breaks exactly.
LayeredPath referenceSolve(int numLayers, int numNodes,
                           const std::function<Cost(int, int)>& nodeCost,
                           const std::function<Cost(int, int)>& transCost) {
  std::vector<std::vector<Cost>> dp(
      static_cast<std::size_t>(numLayers),
      std::vector<Cost>(static_cast<std::size_t>(numNodes)));
  for (int p = 0; p < numNodes; ++p) {
    dp[0][static_cast<std::size_t>(p)] = nodeCost(0, p);
  }
  for (int w = 1; w < numLayers; ++w) {
    for (int p = 0; p < numNodes; ++p) {
      Cost best = kInfiniteCost;
      for (int q = 0; q < numNodes; ++q) {
        best = std::min(
            best, satAdd(dp[static_cast<std::size_t>(w - 1)]
                           [static_cast<std::size_t>(q)],
                         transCost(q, p)));
      }
      dp[static_cast<std::size_t>(w)][static_cast<std::size_t>(p)] =
          satAdd(best, nodeCost(w, p));
    }
  }
  LayeredPath out;
  const auto& last = dp[static_cast<std::size_t>(numLayers - 1)];
  const auto best = std::min_element(last.begin(), last.end());
  out.total = *best;
  if (out.total >= kInfiniteCost) return out;
  out.nodes.assign(static_cast<std::size_t>(numLayers), 0);
  int cur = static_cast<int>(best - last.begin());
  out.nodes[static_cast<std::size_t>(numLayers - 1)] = cur;
  for (int w = numLayers - 1; w > 0; --w) {
    const Cost target =
        dp[static_cast<std::size_t>(w)][static_cast<std::size_t>(cur)];
    const Cost own = nodeCost(w, cur);
    int prev = -1;
    for (int q = 0; q < numNodes; ++q) {
      if (satAdd(satAdd(dp[static_cast<std::size_t>(w - 1)]
                          [static_cast<std::size_t>(q)],
                        transCost(q, cur)),
                 own) == target) {
        prev = q;
        break;
      }
    }
    if (prev < 0) throw std::logic_error("referenceSolve: no predecessor");
    cur = prev;
    out.nodes[static_cast<std::size_t>(w - 1)] = cur;
  }
  return out;
}

/// Random node-cost table with forbidden (kInfiniteCost) entries mixed in.
std::vector<Cost> randomNodeTable(testutil::Rng& rng, int layers, int nodes,
                                  Cost maxCost = 40) {
  std::vector<Cost> t(static_cast<std::size_t>(layers) *
                      static_cast<std::size_t>(nodes));
  for (Cost& c : t) {
    c = rng.below(6) == 0 ? kInfiniteCost : rng.range(0, maxCost);
  }
  return t;
}

TEST(SatAdd, Saturates) {
  EXPECT_EQ(satAdd(1, 2), 3);
  EXPECT_EQ(satAdd(kInfiniteCost, 1), kInfiniteCost);
  EXPECT_EQ(satAdd(5, kInfiniteCost), kInfiniteCost);
  EXPECT_EQ(satAdd(kInfiniteCost, kInfiniteCost), kInfiniteCost);
}

TEST(ManhattanMinPlus, ZeroBetaGivesGlobalMin) {
  const Grid g(4, 5);
  testutil::Rng rng(3);
  std::vector<Cost> in;
  for (int i = 0; i < g.size(); ++i) in.push_back(rng.range(0, 100));
  const Cost globalMin = *std::min_element(in.begin(), in.end());
  for (const Cost v : manhattanMinPlus(g, in, 0)) EXPECT_EQ(v, globalMin);
}

TEST(ManhattanMinPlus, MatchesBruteForce) {
  testutil::Rng rng(17);
  for (const auto& [rows, cols] : {std::pair{1, 1}, {1, 6}, {6, 1}, {4, 4},
                                  {3, 7}, {5, 5}}) {
    const Grid g(rows, cols);
    for (const Cost beta : {Cost{0}, Cost{1}, Cost{3}}) {
      std::vector<Cost> in;
      for (int i = 0; i < g.size(); ++i) {
        // Mix in a few forbidden nodes.
        in.push_back(rng.below(5) == 0 ? kInfiniteCost : rng.range(0, 50));
      }
      const auto fast = manhattanMinPlus(g, in, beta);
      for (ProcId p = 0; p < g.size(); ++p) {
        Cost expect = kInfiniteCost;
        for (ProcId q = 0; q < g.size(); ++q) {
          expect = std::min(
              expect,
              satAdd(in[static_cast<std::size_t>(q)], beta * g.manhattan(p, q)));
        }
        ASSERT_EQ(fast[static_cast<std::size_t>(p)], expect)
            << rows << "x" << cols << " beta " << beta << " p " << p;
      }
    }
  }
}

TEST(ManhattanMinPlus, AllInfiniteStaysInfinite) {
  const Grid g(3, 3);
  const std::vector<Cost> in(9, kInfiniteCost);
  for (const Cost v : manhattanMinPlus(g, in, 2)) {
    EXPECT_EQ(v, kInfiniteCost);
  }
}

TEST(LayeredDagSolver, SingleLayerPicksMinNode) {
  const auto nodeCost = [](int, int n) -> Cost { return (n == 2) ? 1 : 5; };
  const auto trans = [](int, int) -> Cost { return 0; };
  const LayeredPath path = LayeredDagSolver::solve(1, 4, nodeCost, trans);
  ASSERT_TRUE(path.feasible());
  EXPECT_EQ(path.total, 1);
  EXPECT_EQ(path.nodes, (std::vector<int>{2}));
}

TEST(LayeredDagSolver, TradesNodeCostAgainstTransition) {
  // Two layers, two nodes. Node 0 is cheap in both layers, node 1 cheap in
  // layer 1 only; transition cost 10 forbids switching.
  const auto nodeCost = [](int layer, int n) -> Cost {
    if (layer == 0) return n == 0 ? 0 : 4;
    return n == 0 ? 3 : 0;
  };
  const auto trans = [](int a, int b) -> Cost { return a == b ? 0 : 10; };
  const LayeredPath path = LayeredDagSolver::solve(2, 2, nodeCost, trans);
  EXPECT_EQ(path.total, 3);  // stay at node 0: 0 + 3
  EXPECT_EQ(path.nodes, (std::vector<int>{0, 0}));
}

TEST(LayeredDagSolver, SwitchesWhenWorthIt) {
  const auto nodeCost = [](int layer, int n) -> Cost {
    if (layer == 0) return n == 0 ? 0 : 100;
    return n == 0 ? 100 : 0;
  };
  const auto trans = [](int a, int b) -> Cost { return a == b ? 0 : 1; };
  const LayeredPath path = LayeredDagSolver::solve(2, 2, nodeCost, trans);
  EXPECT_EQ(path.total, 1);
  EXPECT_EQ(path.nodes, (std::vector<int>{0, 1}));
}

TEST(LayeredDagSolver, InfeasibleWhenLayerFullyForbidden) {
  const auto nodeCost = [](int layer, int) -> Cost {
    return layer == 1 ? kInfiniteCost : 0;
  };
  const auto trans = [](int, int) -> Cost { return 0; };
  const LayeredPath path = LayeredDagSolver::solve(3, 2, nodeCost, trans);
  EXPECT_FALSE(path.feasible());
  EXPECT_TRUE(path.nodes.empty());
}

TEST(LayeredDagSolver, RoutesAroundForbiddenNodes) {
  // Node 0 forbidden in layer 1 only; optimal path detours via node 1.
  const auto nodeCost = [](int layer, int n) -> Cost {
    if (layer == 1 && n == 0) return kInfiniteCost;
    return n == 0 ? 0 : 2;
  };
  const auto trans = [](int a, int b) -> Cost { return a == b ? 0 : 1; };
  const LayeredPath path = LayeredDagSolver::solve(3, 2, nodeCost, trans);
  ASSERT_TRUE(path.feasible());
  EXPECT_EQ(path.nodes, (std::vector<int>{0, 1, 0}));
  EXPECT_EQ(path.total, 0 + 1 + 2 + 1 + 0);
}

// Property: the chamfer engine must agree with the literal cost-graph
// relaxation — identical totals AND identical paths (shared tie-breaking).
class EngineEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(EngineEquivalence, ChamferMatchesNaive) {
  const auto [rows, cols, layers, seed] = GetParam();
  const Grid g(rows, cols);
  testutil::Rng rng(static_cast<std::uint64_t>(seed));
  for (const Cost beta : {Cost{0}, Cost{1}, Cost{2}}) {
    // Random node costs with some forbidden cells.
    std::vector<std::vector<Cost>> costs(
        static_cast<std::size_t>(layers),
        std::vector<Cost>(static_cast<std::size_t>(g.size())));
    for (auto& layer : costs) {
      for (auto& c : layer) {
        c = rng.below(6) == 0 ? kInfiniteCost : rng.range(0, 40);
      }
    }
    const auto nodeCost = [&costs](int w, int p) -> Cost {
      return costs[static_cast<std::size_t>(w)][static_cast<std::size_t>(p)];
    };
    const auto trans = [&g, beta](int a, int b) -> Cost {
      return beta * g.manhattan(static_cast<ProcId>(a),
                                static_cast<ProcId>(b));
    };
    const LayeredPath naive =
        LayeredDagSolver::solve(layers, g.size(), nodeCost, trans);
    const LayeredPath fast =
        LayeredDagSolver::solveManhattan(g, layers, nodeCost, beta);
    ASSERT_EQ(naive.total, fast.total);
    ASSERT_EQ(naive.nodes, fast.nodes);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, EngineEquivalence,
    ::testing::Values(std::make_tuple(2, 2, 1, 1), std::make_tuple(2, 2, 4, 2),
                      std::make_tuple(4, 4, 6, 3), std::make_tuple(1, 7, 5, 4),
                      std::make_tuple(5, 1, 5, 5), std::make_tuple(3, 4, 8, 6),
                      std::make_tuple(4, 4, 2, 7),
                      std::make_tuple(6, 3, 10, 8)));

// Property: the flat table kernel is bit-identical — totals, node
// sequences, tie-breaks — to the pre-flat saturating dp on random
// instances, including asymmetric transition tables with forbidden edges
// (the fault-aware regime, where trans(q,p) != trans(p,q)).
TEST(FlatSolver, TableKernelMatchesReferenceOnRandomInstances) {
  testutil::Rng rng(101);
  for (int trial = 0; trial < 40; ++trial) {
    const int nodes = static_cast<int>(rng.range(1, 9));
    const int layers = static_cast<int>(rng.range(1, 8));
    const std::vector<Cost> nodeTable = randomNodeTable(rng, layers, nodes);
    std::vector<Cost> trans(static_cast<std::size_t>(nodes) *
                            static_cast<std::size_t>(nodes));
    for (Cost& c : trans) {
      c = rng.below(8) == 0 ? kInfiniteCost : rng.range(0, 20);
    }
    const auto nodeCost = [&](int w, int p) -> Cost {
      return nodeTable[static_cast<std::size_t>(w) *
                           static_cast<std::size_t>(nodes) +
                       static_cast<std::size_t>(p)];
    };
    const auto transCost = [&](int q, int p) -> Cost {
      return trans[static_cast<std::size_t>(q) *
                       static_cast<std::size_t>(nodes) +
                   static_cast<std::size_t>(p)];
    };
    const LayeredPath expect =
        referenceSolve(layers, nodes, nodeCost, transCost);
    const LayeredPath flat =
        LayeredDagSolver::solveFlat(layers, nodes, nodeTable, trans);
    ASSERT_EQ(flat.total, expect.total) << "trial " << trial;
    ASSERT_EQ(flat.nodes, expect.nodes) << "trial " << trial;
    // The std::function overload must stay a thin wrapper over the same
    // kernel: identical output again.
    const LayeredPath wrapped =
        LayeredDagSolver::solve(layers, nodes, nodeCost, transCost);
    ASSERT_EQ(wrapped.total, expect.total) << "trial " << trial;
    ASSERT_EQ(wrapped.nodes, expect.nodes) << "trial " << trial;
  }
}

// Property: the Manhattan flat kernel (branch-free chamfer sweeps +
// division-free reconstruction scan) is bit-identical to the reference dp
// with trans(q, p) = beta * manhattan(q, p) — the fault-free regime.
TEST(FlatSolver, ManhattanKernelMatchesReferenceOnRandomInstances) {
  testutil::Rng rng(202);
  for (const auto& [rows, cols] : {std::pair{1, 1}, {1, 6}, {4, 4}, {3, 5}}) {
    const Grid g(rows, cols);
    for (const Cost beta : {Cost{0}, Cost{1}, Cost{3}}) {
      for (int trial = 0; trial < 6; ++trial) {
        const int layers = static_cast<int>(rng.range(1, 8));
        const std::vector<Cost> nodeTable =
            randomNodeTable(rng, layers, g.size());
        const auto nodeCost = [&](int w, int p) -> Cost {
          return nodeTable[static_cast<std::size_t>(w) *
                               static_cast<std::size_t>(g.size()) +
                           static_cast<std::size_t>(p)];
        };
        const auto transCost = [&](int q, int p) -> Cost {
          return beta * g.manhattan(static_cast<ProcId>(q),
                                    static_cast<ProcId>(p));
        };
        const LayeredPath expect =
            referenceSolve(layers, g.size(), nodeCost, transCost);
        const LayeredPath flat =
            LayeredDagSolver::solveManhattanFlat(g, layers, nodeTable, beta);
        ASSERT_EQ(flat.total, expect.total)
            << rows << "x" << cols << " beta " << beta << " trial " << trial;
        ASSERT_EQ(flat.nodes, expect.nodes)
            << rows << "x" << cols << " beta " << beta << " trial " << trial;
        const LayeredPath wrapped =
            LayeredDagSolver::solveManhattan(g, layers, nodeCost, beta);
        ASSERT_EQ(wrapped.total, expect.total);
        ASSERT_EQ(wrapped.nodes, expect.nodes);
      }
    }
  }
}

// A beta past the branch-free guard must take the saturating fallbacks
// (sweeps and reconstruction scan) and still match the reference exactly.
TEST(FlatSolver, HugeBetaFallbackMatchesReference) {
  const Grid g(3, 3);
  // Just above the overflow guard beta > (INT64_MAX - kInf) / (2(R+C)+2),
  // yet small enough that beta * manhattan stays representable.
  const Cost steps = 2 * Cost{3 + 3} + 2;
  const Cost beta = (INT64_MAX - kInfiniteCost) / steps + 1;
  testutil::Rng rng(303);
  const std::vector<Cost> nodeTable = randomNodeTable(rng, 5, g.size());
  const auto nodeCost = [&](int w, int p) -> Cost {
    return nodeTable[static_cast<std::size_t>(w) *
                         static_cast<std::size_t>(g.size()) +
                     static_cast<std::size_t>(p)];
  };
  const auto transCost = [&](int q, int p) -> Cost {
    return beta *
           g.manhattan(static_cast<ProcId>(q), static_cast<ProcId>(p));
  };
  const LayeredPath expect =
      referenceSolve(5, g.size(), nodeCost, transCost);
  const LayeredPath flat =
      LayeredDagSolver::solveManhattanFlat(g, 5, nodeTable, beta);
  EXPECT_EQ(flat.total, expect.total);
  EXPECT_EQ(flat.nodes, expect.nodes);
}

// The Into variant reuses caller scratch without reallocating between
// calls and may alias input and output in manhattanMinPlusInto.
TEST(FlatSolver, IntoVariantsReuseBuffersAndSupportAliasing) {
  const Grid g(3, 4);
  testutil::Rng rng(404);
  std::vector<Cost> in;
  for (int i = 0; i < g.size(); ++i) {
    in.push_back(rng.below(5) == 0 ? kInfiniteCost : rng.range(0, 30));
  }
  const std::vector<Cost> expect = manhattanMinPlus(g, in, 2);

  std::vector<Cost> out(in.size());
  manhattanMinPlusInto(g, in, 2, out);
  EXPECT_EQ(out, expect);

  std::vector<Cost> aliased = in;
  manhattanMinPlusInto(g, aliased, 2, aliased);  // in-place
  EXPECT_EQ(aliased, expect);

  LayeredDagScratch scratch;
  LayeredPath path;
  const std::vector<Cost> nodeTable = randomNodeTable(rng, 6, g.size());
  LayeredDagSolver::solveManhattanFlatInto(g, 6, nodeTable, 1, scratch, path);
  const LayeredPath once = path;
  LayeredDagSolver::solveManhattanFlatInto(g, 6, nodeTable, 1, scratch, path);
  EXPECT_EQ(path.total, once.total);
  EXPECT_EQ(path.nodes, once.nodes);
}

// Restores the dispatched SIMD tier on scope exit so cross-tier tests
// cannot leak a forced tier into later tests in this binary.
class TierGuard {
 public:
  TierGuard() : saved_(simd::activeTier()) {}
  ~TierGuard() { simd::forceTier(saved_); }
  TierGuard(const TierGuard&) = delete;
  TierGuard& operator=(const TierGuard&) = delete;

 private:
  simd::Tier saved_;
};

std::vector<simd::Tier> supportedTiers() {
  std::vector<simd::Tier> out = {simd::Tier::kScalar};
  for (const simd::Tier t : {simd::Tier::kSse2, simd::Tier::kAvx2}) {
    if (simd::tierSupported(t)) out.push_back(t);
  }
  return out;
}

// The odd-shaped grids the SIMD tails must handle: degenerate single
// row/column strips, a non-multiple-of-4 rectangle, and a 33x33 whose rows
// are one past the AVX2 block width.
const std::vector<std::pair<int, int>> kOddGrids = {
    {1, 9}, {9, 1}, {5, 7}, {33, 33}};

// Property: every supported SIMD tier produces bit-identical solver output
// — totals, node sequences, tie-breaks — on odd grid shapes whose column
// counts exercise the vector tails. The scalar tier is the oracle.
TEST(SimdTierIdentity, ManhattanSolveBitIdenticalAcrossTiersOnOddGrids) {
  const TierGuard guard;
  testutil::Rng rng(505);
  for (const auto& [rows, cols] : kOddGrids) {
    const Grid g(rows, cols);
    const int layers = 4;
    const std::vector<Cost> nodeTable =
        randomNodeTable(rng, layers, g.size());
    for (const Cost beta : {Cost{0}, Cost{1}, Cost{3}}) {
      simd::forceTier(simd::Tier::kScalar);
      const LayeredPath expect =
          LayeredDagSolver::solveManhattanFlat(g, layers, nodeTable, beta);
      for (const simd::Tier t : supportedTiers()) {
        simd::forceTier(t);
        const LayeredPath got =
            LayeredDagSolver::solveManhattanFlat(g, layers, nodeTable, beta);
        ASSERT_EQ(got.total, expect.total)
            << rows << "x" << cols << " beta " << beta << " tier "
            << simd::tierName(t);
        ASSERT_EQ(got.nodes, expect.nodes)
            << rows << "x" << cols << " beta " << beta << " tier "
            << simd::tierName(t);
      }
    }
  }
}

// Same property through the generic flat solver with asymmetric faulted
// transition tables — trans(q,p) != trans(p,q), forbidden edges mixed in —
// the regime fault-aware scheduling feeds the solver.
TEST(SimdTierIdentity, AsymmetricFaultedTablesBitIdenticalAcrossTiers) {
  const TierGuard guard;
  testutil::Rng rng(606);
  for (const auto& [rows, cols] : kOddGrids) {
    const Grid g(rows, cols);
    const int nodes = g.size();
    // 33x33 has 1089 nodes; a dense asymmetric table is ~1.2M entries,
    // which the generic kernel sweeps fine but one trial suffices there.
    const int trials = nodes > 256 ? 1 : 4;
    for (int trial = 0; trial < trials; ++trial) {
      const int layers = static_cast<int>(rng.range(2, 5));
      const std::vector<Cost> nodeTable =
          randomNodeTable(rng, layers, nodes);
      std::vector<Cost> trans(static_cast<std::size_t>(nodes) *
                              static_cast<std::size_t>(nodes));
      for (Cost& c : trans) {
        c = rng.below(7) == 0 ? kInfiniteCost : rng.range(0, 25);
      }
      simd::forceTier(simd::Tier::kScalar);
      const LayeredPath expect =
          LayeredDagSolver::solveFlat(layers, nodes, nodeTable, trans);
      for (const simd::Tier t : supportedTiers()) {
        simd::forceTier(t);
        const LayeredPath got =
            LayeredDagSolver::solveFlat(layers, nodes, nodeTable, trans);
        ASSERT_EQ(got.total, expect.total)
            << rows << "x" << cols << " trial " << trial << " tier "
            << simd::tierName(t);
        ASSERT_EQ(got.nodes, expect.nodes)
            << rows << "x" << cols << " trial " << trial << " tier "
            << simd::tierName(t);
      }
    }
  }
}

// The saturating huge-beta fallback must also be tier-invariant: beta past
// the branch-free overflow guard routes the sweep through satAddMinRow and
// the saturating reconstruction on every tier.
TEST(SimdTierIdentity, HugeBetaSaturatingPathBitIdenticalAcrossTiers) {
  const TierGuard guard;
  testutil::Rng rng(707);
  for (const auto& [rows, cols] : kOddGrids) {
    const Grid g(rows, cols);
    const Cost steps = 2 * static_cast<Cost>(rows + cols) + 2;
    const Cost beta = (INT64_MAX - kInfiniteCost) / steps + 1;
    const int layers = 3;
    const std::vector<Cost> nodeTable =
        randomNodeTable(rng, layers, g.size());
    simd::forceTier(simd::Tier::kScalar);
    const LayeredPath expect =
        LayeredDagSolver::solveManhattanFlat(g, layers, nodeTable, beta);
    for (const simd::Tier t : supportedTiers()) {
      simd::forceTier(t);
      const LayeredPath got =
          LayeredDagSolver::solveManhattanFlat(g, layers, nodeTable, beta);
      ASSERT_EQ(got.total, expect.total)
          << rows << "x" << cols << " tier " << simd::tierName(t);
      ASSERT_EQ(got.nodes, expect.nodes)
          << rows << "x" << cols << " tier " << simd::tierName(t);
    }
  }
}

}  // namespace
}  // namespace pimsched

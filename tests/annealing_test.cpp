#include "core/annealing.hpp"

#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "core/gomcds.hpp"
#include "core/scds.hpp"
#include "test_util.hpp"

namespace pimsched {
namespace {

WindowedRefs refsFromTrace(const ReferenceTrace& t, const Grid& g,
                           int windows) {
  return WindowedRefs(t, WindowPartition::evenCount(t.numSteps(), windows),
                      g);
}

AnnealParams quickParams() {
  AnnealParams p;
  p.iterations = 20'000;
  return p;
}

TEST(Annealing, NeverWorseThanItsInitialSchedule) {
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(131);
  for (int trial = 0; trial < 4; ++trial) {
    const ReferenceTrace t = testutil::randomTrace(rng, g, 4, 4, 12, 25);
    const WindowedRefs refs = refsFromTrace(t, g, 4);
    const DataSchedule init = scheduleScds(refs, model);
    const Cost before =
        evaluateSchedule(init, refs, model).aggregate.total();
    const DataSchedule annealed =
        scheduleAnnealed(refs, model, init, {}, quickParams());
    const Cost after =
        evaluateSchedule(annealed, refs, model).aggregate.total();
    EXPECT_LE(after, before);
  }
}

TEST(Annealing, CannotBeatGomcdsUncapacitated) {
  // GOMCDS is per-datum optimal without capacity, so annealing from it
  // must return the same cost.
  const Grid g(3, 3);
  const CostModel model(g);
  testutil::Rng rng(132);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 3, 3, 9, 15);
  const WindowedRefs refs = refsFromTrace(t, g, 3);
  const DataSchedule init = scheduleGomcds(refs, model);
  const Cost optimal = evaluateSchedule(init, refs, model).aggregate.total();
  const DataSchedule annealed =
      scheduleAnnealed(refs, model, init, {}, quickParams());
  EXPECT_EQ(evaluateSchedule(annealed, refs, model).aggregate.total(),
            optimal);
}

TEST(Annealing, RejectsNonPositiveStepsPerCooling) {
  const Grid g(2, 2);
  const CostModel model(g);
  testutil::Rng rng(135);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 2, 2, 4, 8);
  const WindowedRefs refs = refsFromTrace(t, g, 2);
  const DataSchedule init = scheduleScds(refs, model);
  for (const int steps : {0, -1, -64}) {
    AnnealParams p = quickParams();
    p.stepsPerCooling = steps;
    EXPECT_THROW((void)scheduleAnnealed(refs, model, init, {}, p),
                 std::invalid_argument)
        << "stepsPerCooling=" << steps;
  }
}

TEST(Annealing, DeferredSnapshotReturnsTheBestVisitedCost) {
  // The journal-replay reconstruction must return a schedule whose cost
  // equals the best incremental cost the loop tracked — i.e. evaluating
  // the returned schedule from scratch reproduces a cost no worse than
  // both the initial and the final accepted state.
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(136);
  for (int trial = 0; trial < 3; ++trial) {
    const ReferenceTrace t = testutil::randomTrace(rng, g, 4, 4, 10, 20);
    const WindowedRefs refs = refsFromTrace(t, g, 5);
    const DataSchedule init = scheduleScds(refs, model);
    AnnealParams p = quickParams();
    p.initialTemperature = 64.0;  // hot: accepts uphill, so best != last
    const DataSchedule annealed =
        scheduleAnnealed(refs, model, init, {}, p);
    EXPECT_TRUE(annealed.complete());
    EXPECT_LE(evaluateSchedule(annealed, refs, model).aggregate.total(),
              evaluateSchedule(init, refs, model).aggregate.total());
  }
}

TEST(Annealing, RespectsCapacityThroughout) {
  const Grid g(2, 2);
  const CostModel model(g);
  testutil::Rng rng(133);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 3, 3, 8, 20);
  const WindowedRefs refs = refsFromTrace(t, g, 4);
  SchedulerOptions opts;
  opts.capacity = 3;
  const DataSchedule init = scheduleGomcds(refs, model, opts);
  const DataSchedule annealed =
      scheduleAnnealed(refs, model, init, opts, quickParams());
  EXPECT_TRUE(annealed.respectsCapacity(g, 3));
}

TEST(Annealing, DeterministicForFixedSeed) {
  const Grid g(3, 3);
  const CostModel model(g);
  testutil::Rng rng(134);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 3, 3, 9, 15);
  const WindowedRefs refs = refsFromTrace(t, g, 3);
  const DataSchedule init = scheduleScds(refs, model);
  const DataSchedule a =
      scheduleAnnealed(refs, model, init, {}, quickParams());
  const DataSchedule b =
      scheduleAnnealed(refs, model, init, {}, quickParams());
  for (DataId d = 0; d < refs.numData(); ++d) {
    for (WindowId w = 0; w < refs.numWindows(); ++w) {
      ASSERT_EQ(a.center(d, w), b.center(d, w));
    }
  }
}

TEST(Annealing, RejectsBadInitialSchedules) {
  const Grid g(2, 2);
  const CostModel model(g);
  testutil::Rng rng(135);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 2, 2, 4, 8);
  const WindowedRefs refs = refsFromTrace(t, g, 2);

  const DataSchedule incomplete(refs.numData(), refs.numWindows());
  EXPECT_THROW(
      (void)scheduleAnnealed(refs, model, incomplete, {}, quickParams()),
      std::invalid_argument);

  DataSchedule overfull(refs.numData(), refs.numWindows());
  for (DataId d = 0; d < refs.numData(); ++d) overfull.setStatic(d, 0);
  SchedulerOptions opts;
  opts.capacity = 1;
  EXPECT_THROW(
      (void)scheduleAnnealed(refs, model, overfull, opts, quickParams()),
      std::invalid_argument);
}

TEST(Annealing, ImprovesABadStartSubstantially) {
  // Start from everything parked on processor 0 and let annealing spread
  // the data out; it must recover most of the gap to GOMCDS.
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(136);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 4, 4, 12, 30);
  const WindowedRefs refs = refsFromTrace(t, g, 4);

  DataSchedule bad(refs.numData(), refs.numWindows());
  for (DataId d = 0; d < refs.numData(); ++d) bad.setStatic(d, 0);
  const Cost badCost = evaluateSchedule(bad, refs, model).aggregate.total();
  const Cost optimal =
      evaluateSchedule(scheduleGomcds(refs, model), refs, model)
          .aggregate.total();

  AnnealParams params;
  params.iterations = 150'000;
  const DataSchedule annealed =
      scheduleAnnealed(refs, model, bad, {}, params);
  const Cost after =
      evaluateSchedule(annealed, refs, model).aggregate.total();
  EXPECT_GE(after, optimal);
  // Recovers at least 75% of the gap.
  EXPECT_LE(after - optimal, (badCost - optimal) / 4);
}

}  // namespace
}  // namespace pimsched

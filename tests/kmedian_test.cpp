#include "cost/kmedian.hpp"

#include <gtest/gtest.h>

#include "cost/center_costs.hpp"
#include "test_util.hpp"

namespace pimsched {
namespace {

TEST(NearestCenterCost, SingleCenterMatchesServeCost) {
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(111);
  for (int trial = 0; trial < 20; ++trial) {
    const auto refs = testutil::randomRefs(rng, g, 10);
    for (ProcId p = 0; p < g.size(); p += 3) {
      const std::vector<ProcId> centers = {p};
      EXPECT_EQ(nearestCenterCost(model, refs, centers),
                model.serveCost(refs, p));
    }
  }
}

TEST(NearestCenterCost, PicksNearestPerReference) {
  const Grid g(1, 5);
  const CostModel model(g);
  const std::vector<ProcWeight> refs = {{0, 1}, {4, 1}};
  const std::vector<ProcId> centers = {0, 4};
  EXPECT_EQ(nearestCenterCost(model, refs, centers), 0);
  const std::vector<ProcId> mid = {2};
  EXPECT_EQ(nearestCenterCost(model, refs, mid), 4);
}

TEST(NearestCenterCost, EmptyRefsCostZero) {
  const Grid g(2, 2);
  const CostModel model(g);
  const std::vector<ProcId> centers = {0};
  EXPECT_EQ(nearestCenterCost(model, {}, centers), 0);
}

TEST(NearestCenterCost, NoCentersThrows) {
  const Grid g(2, 2);
  const CostModel model(g);
  const std::vector<ProcWeight> refs = {{0, 1}};
  EXPECT_THROW((void)nearestCenterCost(model, refs, {}),
               std::invalid_argument);
}

TEST(KMedian, KOneIsExactWeightedMedian) {
  const Grid g(5, 5);
  const CostModel model(g);
  testutil::Rng rng(112);
  for (int trial = 0; trial < 30; ++trial) {
    const auto refs = testutil::randomRefs(rng, g, 8);
    const KMedianResult r = kMedian(model, refs, 1);
    const BestCenter exact = bestCenter(model, refs);
    ASSERT_EQ(r.centers.size(), 1u);
    EXPECT_EQ(r.cost, exact.cost);
  }
}

TEST(KMedian, CostIsMonotoneNonIncreasingInK) {
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(113);
  for (int trial = 0; trial < 10; ++trial) {
    const auto refs = testutil::randomRefs(rng, g, 20);
    Cost prev = kInfiniteCost;
    for (int k = 1; k <= 6; ++k) {
      const KMedianResult r = kMedian(model, refs, k);
      EXPECT_LE(r.cost, prev);
      prev = r.cost;
    }
  }
}

TEST(KMedian, EnoughCentersReachZero) {
  const Grid g(4, 4);
  const CostModel model(g);
  const std::vector<ProcWeight> refs = {{1, 3}, {7, 2}, {12, 5}};
  const KMedianResult r = kMedian(model, refs, 3);
  EXPECT_EQ(r.cost, 0);
  EXPECT_EQ(r.centers, (std::vector<ProcId>{1, 7, 12}));
}

TEST(KMedian, ReportedCostMatchesEvaluation) {
  const Grid g(6, 6);
  const CostModel model(g);
  testutil::Rng rng(114);
  for (int trial = 0; trial < 10; ++trial) {
    const auto refs = testutil::randomRefs(rng, g, 15);
    for (int k = 1; k <= 4; ++k) {
      const KMedianResult r = kMedian(model, refs, k);
      EXPECT_EQ(r.cost, nearestCenterCost(model, refs, r.centers));
    }
  }
}

TEST(KMedian, MatchesExhaustiveOnSmallGrid) {
  // 2x3 grid, k = 2: enumerate all 15 center pairs.
  const Grid g(2, 3);
  const CostModel model(g);
  testutil::Rng rng(115);
  for (int trial = 0; trial < 30; ++trial) {
    const auto refs = testutil::randomRefs(rng, g, 8);
    Cost best = kInfiniteCost;
    for (ProcId a = 0; a < g.size(); ++a) {
      for (ProcId b = a + 1; b < g.size(); ++b) {
        const std::vector<ProcId> centers = {a, b};
        best = std::min(best, nearestCenterCost(model, refs, centers));
      }
    }
    const KMedianResult r = kMedian(model, refs, 2);
    // The greedy + swap heuristic is exact on instances this small in
    // practice; require it not to be worse than 10% off, and never better
    // than the optimum.
    EXPECT_GE(r.cost, best);
    EXPECT_LE(r.cost, best + best / 10 + 1);
  }
}

TEST(KMedian, EmptyRefsAndBadK) {
  const Grid g(2, 2);
  const CostModel model(g);
  const KMedianResult r = kMedian(model, {}, 3);
  EXPECT_EQ(r.cost, 0);
  EXPECT_THROW((void)kMedian(model, {}, 0), std::invalid_argument);
}

TEST(KMedian, Deterministic) {
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(116);
  const auto refs = testutil::randomRefs(rng, g, 25);
  const KMedianResult a = kMedian(model, refs, 3);
  const KMedianResult b = kMedian(model, refs, 3);
  EXPECT_EQ(a.centers, b.centers);
  EXPECT_EQ(a.cost, b.cost);
}

}  // namespace
}  // namespace pimsched

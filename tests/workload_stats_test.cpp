#include "cost/workload_stats.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "kernels/benchmarks.hpp"

namespace pimsched {
namespace {

TEST(WorkloadStats, PerfectlyLocalStaticWorkload) {
  // Every datum referenced by exactly one processor in every window.
  const Grid g(2, 2);
  const CostModel model(g);
  ReferenceTrace t(DataSpace::singleSquare(2));
  for (StepId s = 0; s < 4; ++s) {
    for (DataId d = 0; d < 4; ++d) t.add(s, static_cast<ProcId>(d), d, 2);
  }
  t.finalize();
  const WindowedRefs refs(t, WindowPartition::perStep(4), g);
  const TraceStats stats = computeTraceStats(refs, model);
  EXPECT_EQ(stats.numData, 4);
  EXPECT_EQ(stats.numWindows, 4);
  EXPECT_EQ(stats.totalWeight, 32);
  EXPECT_DOUBLE_EQ(stats.unreferencedFraction, 0.0);
  EXPECT_DOUBLE_EQ(stats.meanProcsPerWindow, 1.0);
  EXPECT_DOUBLE_EQ(stats.meanCenterDrift, 0.0);
}

TEST(WorkloadStats, DriftingHotspot) {
  // One datum whose sole referencing processor walks the diagonal: the
  // local center moves 2 hops per window.
  const Grid g(4, 4);
  const CostModel model(g);
  ReferenceTrace t(DataSpace::singleSquare(1));
  for (int k = 0; k < 4; ++k) t.add(k, g.id(k, k), 0, 1);
  t.finalize();
  const WindowedRefs refs(t, WindowPartition::perStep(4), g);
  const TraceStats stats = computeTraceStats(refs, model);
  EXPECT_DOUBLE_EQ(stats.meanCenterDrift, 2.0);
}

TEST(WorkloadStats, UnreferencedFraction) {
  const Grid g(2, 2);
  const CostModel model(g);
  ReferenceTrace t(DataSpace::singleSquare(2));  // 4 data
  t.add(0, 0, 0, 1);
  t.finalize();
  const WindowedRefs refs(t, WindowPartition::whole(1), g);
  const TraceStats stats = computeTraceStats(refs, model);
  EXPECT_DOUBLE_EQ(stats.unreferencedFraction, 0.75);
}

TEST(WorkloadStats, SkewCapturesHotData) {
  const Grid g(2, 2);
  const CostModel model(g);
  DataSpace ds;
  ds.addArray("A", 2, 10);  // 20 data -> decile of 2
  ReferenceTrace t(ds);
  t.add(0, 0, 0, 98);  // one hot datum
  t.add(0, 0, 1, 1);
  t.add(0, 0, 2, 1);
  t.finalize();
  const WindowedRefs refs(t, WindowPartition::whole(1), g);
  const TraceStats stats = computeTraceStats(refs, model);
  EXPECT_DOUBLE_EQ(stats.topDecileWeightShare, 0.99);
}

TEST(WorkloadStats, CodeBenchmarkDriftsMoreThanMatmul) {
  // The CODE substitute exists because its reference pattern is irregular
  // and drifting; the stats must rank it above the static matmul.
  const Grid g(4, 4);
  const CostModel model(g);
  const int n = 16;
  const ReferenceTrace mat =
      makePaperBenchmark(PaperBenchmark::kMatSquare, g, n);
  const ReferenceTrace codeRev =
      makePaperBenchmark(PaperBenchmark::kCodeRev, g, n);
  const WindowedRefs matRefs(
      mat, WindowPartition::perStep(mat.numSteps()), g);
  const WindowedRefs codeRefs(
      codeRev, WindowPartition::perStep(codeRev.numSteps()), g);
  const TraceStats matStats = computeTraceStats(matRefs, model);
  const TraceStats codeStats = computeTraceStats(codeRefs, model);
  EXPECT_GT(codeStats.meanCenterDrift, matStats.meanCenterDrift);
}

TEST(WorkloadStats, StreamOutput) {
  const Grid g(2, 2);
  const CostModel model(g);
  ReferenceTrace t(DataSpace::singleSquare(1));
  t.add(0, 0, 0, 1);
  t.finalize();
  const WindowedRefs refs(t, WindowPartition::whole(1), g);
  std::ostringstream os;
  os << computeTraceStats(refs, model);
  EXPECT_NE(os.str().find("drift="), std::string::npos);
}

}  // namespace
}  // namespace pimsched

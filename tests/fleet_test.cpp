#include "fleet/fleet.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "fleet/fleet_service.hpp"
#include "fleet/selector.hpp"
#include "trace/trace.hpp"

namespace pimsched::fleet {
namespace {

ReferenceTrace makeTrace(int n, int steps) {
  ReferenceTrace trace(DataSpace::singleSquare(n));
  const int numData = n * n;
  for (int s = 0; s < steps; ++s) {
    for (int d = 0; d < numData; ++d) {
      trace.add(s, (d + s) % (n * n), d, 1 + (d + s) % 3);
    }
  }
  trace.finalize();
  return trace;
}

TEST(FleetSpec, ParsesNamesShapesAndFaultLists) {
  const auto specs =
      parseFleetSpec("a0=4x4;a1=4x4:proc:5+link:0-1;8x8:row:2");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].name, "a0");
  EXPECT_EQ(specs[0].rows, 4);
  EXPECT_EQ(specs[0].cols, 4);
  EXPECT_TRUE(specs[0].faults.empty());
  EXPECT_EQ(specs[1].name, "a1");
  ASSERT_EQ(specs[1].faults.size(), 2u);
  EXPECT_EQ(specs[1].faults[0], "proc:5");
  EXPECT_EQ(specs[1].faults[1], "link:0-1");
  // Unnamed arrays are auto-named by position.
  EXPECT_EQ(specs[2].name, "array2");
  EXPECT_EQ(specs[2].rows, 8);
  ASSERT_EQ(specs[2].faults.size(), 1u);
  EXPECT_EQ(specs[2].faults[0], "row:2");
}

TEST(FleetSpec, RejectsMalformedEntries) {
  EXPECT_THROW(parseFleetSpec(""), std::invalid_argument);
  EXPECT_THROW(parseFleetSpec("4x4;;4x4"), std::invalid_argument);
  EXPECT_THROW(parseFleetSpec("4"), std::invalid_argument);
  EXPECT_THROW(parseFleetSpec("0x4"), std::invalid_argument);
  EXPECT_THROW(parseFleetSpec("4xx4"), std::invalid_argument);
  EXPECT_THROW(parseFleetSpec("5000x5000"), std::invalid_argument);
  EXPECT_THROW(parseFleetSpec("2048x2048"), std::invalid_argument);
  EXPECT_THROW(parseFleetSpec("1no=4x4"), std::invalid_argument);
  EXPECT_THROW(parseFleetSpec("=4x4"), std::invalid_argument);
  EXPECT_THROW(parseFleetSpec("a=4x4;a=4x4"), std::invalid_argument);
  EXPECT_THROW(parseFleetSpec("4x4:"), std::invalid_argument);
  EXPECT_THROW(parseFleetSpec("4x4:proc:5++link:0-1"), std::invalid_argument);
  // Fault specs are validated against the declared grid at parse time.
  EXPECT_THROW(parseFleetSpec("4x4:proc:99"), std::invalid_argument);
  EXPECT_THROW(parseFleetSpec("4x4:nonsense"), std::invalid_argument);
}

TEST(FleetSpec, UnnamedCollisionWithExplicitNameIsRejected) {
  // "array0" is the auto-name of position 0.
  EXPECT_THROW(parseFleetSpec("4x4;array0=4x4"), std::invalid_argument);
}

TEST(FleetArrayState, HealthyArrayHasEmptySignature) {
  ArrayState state(ArraySpec{"a", 4, 4, {}});
  EXPECT_TRUE(state.healthy());
  EXPECT_TRUE(state.canonicalFaults().empty());
  EXPECT_EQ(state.faultSignature(), "");
  EXPECT_EQ(state.aliveProcs(), 16);
  EXPECT_EQ(state.deadProcs(), 0);
}

TEST(FleetArrayState, DuplicateSpecsDropFromTheCanonicalList) {
  // The second proc:5 is a no-op (already dead); the canonical health
  // descriptor keeps only effective specs.
  ArrayState state(ArraySpec{"a", 4, 4, {"proc:5", "proc:5", "link:0-1"}});
  EXPECT_FALSE(state.healthy());
  ASSERT_EQ(state.canonicalFaults().size(), 2u);
  EXPECT_EQ(state.canonicalFaults()[0], "proc:5");
  EXPECT_EQ(state.canonicalFaults()[1], "link:0-1");

  // Same effective health -> same signature, so the two arrays share one
  // result-cache partition.
  ArrayState clean(ArraySpec{"b", 4, 4, {"proc:5", "link:0-1"}});
  EXPECT_EQ(state.faultSignature(), clean.faultSignature());
  EXPECT_NE(state.faultSignature(), "");

  ArrayState other(ArraySpec{"c", 4, 4, {"proc:6"}});
  EXPECT_NE(state.faultSignature(), other.faultSignature());
}

TEST(FleetArrayState, EstimateDropsReferencesFromDeadProcessors) {
  // The pipeline drops references issued by dead processors, so the
  // estimator must too — otherwise any trace touching proc 5 would price
  // infinite on this array even though the job is feasible there.
  ArrayState faulted(ArraySpec{"a", 4, 4, {"proc:5"}});
  std::vector<ProcWeight> refs = {{1, 10}, {5, 10}, {6, 10}};
  std::vector<Cost> scratch;
  const Cost est = faulted.estimateCost(refs, scratch);
  EXPECT_LT(est, kInfiniteCost);

  // A healthy array pricing the full string can only be >= the faulted
  // array pricing the filtered one minus the dropped weight; the real
  // invariant worth pinning: both finite, and the all-dead string is free.
  std::vector<ProcWeight> onlyDead = {{5, 10}};
  EXPECT_EQ(faulted.estimateCost(onlyDead, scratch), 0);
}

TEST(FleetArrayState, CapacityHonoursDeadProcsAndFaultLimits) {
  ArrayState healthy(ArraySpec{"a", 4, 4, {}});
  EXPECT_EQ(healthy.capacitySlots(2), 32);
  ArrayState faulted(ArraySpec{"b", 4, 4, {"proc:5", "cap:0=1"}});
  // 14 procs at 2 slots + proc 0 capped at 1.
  EXPECT_EQ(faulted.capacitySlots(2), 29);
}

TEST(FleetRegistry, LookupAndShapeEligibility) {
  ArrayFleet fleet(parseFleetSpec("a=4x4;b=8x8;c=4x4:proc:5"));
  EXPECT_EQ(fleet.size(), 3u);
  EXPECT_EQ(fleet.find("b"), 1);
  EXPECT_EQ(fleet.find("nope"), -1);
  const auto eligible = fleet.eligibleFor(4, 4);
  ASSERT_EQ(eligible.size(), 2u);
  EXPECT_EQ(eligible[0], 0u);
  EXPECT_EQ(eligible[1], 2u);
  EXPECT_TRUE(fleet.eligibleFor(2, 2).empty());
}

TEST(FleetRegistry, FullyDeadArrayIsNeverEligible) {
  ArrayFleet fleet(parseFleetSpec("a=2x2:region:0,0,1,1;b=2x2"));
  const auto eligible = fleet.eligibleFor(2, 2);
  ASSERT_EQ(eligible.size(), 1u);
  EXPECT_EQ(eligible[0], 1u);
}

TEST(FleetAggregate, SumsWeightsPerProcessorSorted) {
  ReferenceTrace trace(DataSpace::singleSquare(2));
  trace.add(0, 3, 0, 2);
  trace.add(0, 1, 1, 1);
  trace.add(1, 3, 2, 5);
  trace.add(1, 1, 3, 4);
  trace.finalize();
  const auto refs = aggregateTraceRefs(trace);
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_EQ(refs[0].proc, 1);
  EXPECT_EQ(refs[0].weight, 5);
  EXPECT_EQ(refs[1].proc, 3);
  EXPECT_EQ(refs[1].weight, 7);
}

TEST(FleetPolicyNames, RoundTripAndRejectUnknown) {
  for (const FleetPolicy p : {FleetPolicy::kCost, FleetPolicy::kRoundRobin,
                              FleetPolicy::kLeastLoaded}) {
    const auto back = fleetPolicyFromString(toString(p));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, p);
  }
  EXPECT_FALSE(fleetPolicyFromString("fastest").has_value());
}

TEST(FleetPolicyNames, EnvOverrideWinsOnlyWhenValid) {
  ::unsetenv("PIMSCHED_FLEET_POLICY");
  EXPECT_EQ(fleetPolicyFromEnv(FleetPolicy::kCost), FleetPolicy::kCost);
  ::setenv("PIMSCHED_FLEET_POLICY", "leastloaded", 1);
  EXPECT_EQ(fleetPolicyFromEnv(FleetPolicy::kCost),
            FleetPolicy::kLeastLoaded);
  ::setenv("PIMSCHED_FLEET_POLICY", "bogus", 1);
  EXPECT_EQ(fleetPolicyFromEnv(FleetPolicy::kRoundRobin),
            FleetPolicy::kRoundRobin);
  ::unsetenv("PIMSCHED_FLEET_POLICY");
}

TEST(FleetSelector, RoundRobinRotatesOverTheEligibleSet) {
  ArrayFleet fleet(parseFleetSpec("a=4x4;b=4x4;c=4x4"));
  ArraySelector selector(fleet, FleetPolicy::kRoundRobin);
  const std::vector<std::size_t> eligible = {0, 1, 2};
  const std::vector<ArrayLoad> loads(3);
  std::vector<int> picks;
  for (int i = 0; i < 6; ++i) {
    picks.push_back(selector.select({}, 16, -1, eligible, loads, nullptr));
  }
  EXPECT_EQ(picks, (std::vector<int>{0, 1, 2, 0, 1, 2}));
}

TEST(FleetSelector, LeastLoadedPicksMinWithIndexTieBreak) {
  ArrayFleet fleet(parseFleetSpec("a=4x4;b=4x4;c=4x4"));
  ArraySelector selector(fleet, FleetPolicy::kLeastLoaded);
  const std::vector<std::size_t> eligible = {0, 1, 2};
  std::vector<ArrayLoad> loads(3);
  loads[0].running = 2;
  loads[1].running = 1;
  loads[2].queued = 1;
  EXPECT_EQ(selector.select({}, 16, -1, eligible, loads, nullptr), 1);
  loads[2].queued = 0;  // ties 1 and 2 at... no: 2 now has 0, strictly least
  EXPECT_EQ(selector.select({}, 16, -1, eligible, loads, nullptr), 2);
  loads[1].running = 0;  // 1 and 2 tie at 0 -> lower index wins
  EXPECT_EQ(selector.select({}, 16, -1, eligible, loads, nullptr), 1);
}

TEST(FleetSelector, CostPrefersTheHealthyArrayAndChargesTheEstimate) {
  // Heavy references around proc 5: the faulted array both drops that
  // demand and routes around the hole, so the healthy array's direct
  // serving is cheaper for traffic it can see.
  ArrayFleet fleet(parseFleetSpec("bad=4x4:proc:5;good=4x4"));
  ArraySelector selector(fleet, FleetPolicy::kCost);
  const std::vector<std::size_t> eligible = {0, 1};
  const std::vector<ArrayLoad> loads(2);
  const auto refs = aggregateTraceRefs(makeTrace(4, 6));
  Cost est = -1;
  const int pick = selector.select(refs, 16, -1, eligible, loads, &est);
  ASSERT_GE(pick, 0);
  EXPECT_GE(est, 0);
  // The pick must be the argmin of est+outstanding over both arrays.
  std::vector<Cost> scratch;
  const Cost est0 = fleet.at(0).estimateCost(refs, scratch);
  const Cost est1 = fleet.at(1).estimateCost(refs, scratch);
  EXPECT_EQ(pick, est1 <= est0 ? 1 : 0);
}

TEST(FleetSelector, CostRespectsOutstandingWorkBacklog) {
  ArrayFleet fleet(parseFleetSpec("a=4x4;b=4x4"));
  ArraySelector selector(fleet, FleetPolicy::kCost);
  const std::vector<std::size_t> eligible = {0, 1};
  const auto refs = aggregateTraceRefs(makeTrace(4, 4));
  std::vector<ArrayLoad> loads(2);
  Cost est = 0;
  // Identical arrays: dead-proc tie-break is a wash, index 0 wins.
  EXPECT_EQ(selector.select(refs, 16, -1, eligible, loads, &est), 0);
  // A huge backlog on 0 flips the choice even though 0 is listed first.
  loads[0].outstandingWork = 1e12;
  EXPECT_EQ(selector.select(refs, 16, -1, eligible, loads, &est), 1);
}

TEST(FleetSelector, CostSkipsArraysWithoutResidualCapacity) {
  // 32 data at 2 slots/proc need all 16 processors: the array with a dead
  // proc (30 slots) cannot host the job, the healthy one (32) just can.
  ArrayFleet fleet(parseFleetSpec("tight=4x4:proc:5;free=4x4"));
  ArraySelector selector(fleet, FleetPolicy::kCost);
  const std::vector<std::size_t> eligible = {0, 1};
  const std::vector<ArrayLoad> loads(2);
  const auto refs = aggregateTraceRefs(makeTrace(4, 4));
  Cost est = 0;
  EXPECT_EQ(selector.select(refs, 32, 2, eligible, loads, &est), 1);
  // Under the sentinel capacity rule (always fits) both stay in play.
  EXPECT_GE(selector.select(refs, 32, -1, eligible, loads, &est), 0);
}

TEST(FleetSelector, CostReturnsNoneWhenNothingFits) {
  ArrayFleet fleet(parseFleetSpec("tight=4x4:proc:5"));
  ArraySelector selector(fleet, FleetPolicy::kCost);
  const std::vector<ArrayLoad> loads(1);
  const auto refs = aggregateTraceRefs(makeTrace(4, 4));
  Cost est = 7;
  EXPECT_EQ(selector.select(refs, 32, 2, {0}, loads, &est), -1);
  EXPECT_EQ(est, 0);
}

TEST(FleetSelector, CostTieBreaksByFewerDeadProcessors) {
  // Two arrays, both pricing the empty reference string at 0: the one
  // with fewer dead processors wins even though it has the higher index.
  ArrayFleet fleet(parseFleetSpec("worse=4x4:proc:5+proc:6;better=4x4:proc:9"));
  ArraySelector selector(fleet, FleetPolicy::kCost);
  const std::vector<ArrayLoad> loads(2);
  Cost est = 0;
  EXPECT_EQ(selector.select({}, 16, -1, {0, 1}, loads, &est), 1);
}

}  // namespace
}  // namespace pimsched::fleet

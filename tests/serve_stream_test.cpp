#include "serve/stream.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/incremental.hpp"
#include "core/pipeline.hpp"
#include "fleet/fleet_service.hpp"
#include "serve/service.hpp"
#include "serve/sharded.hpp"

namespace pimsched::serve {
namespace {

/// The CI matrix runs every test under PIMSCHED_INCREMENTAL=0 and =1, so
/// warm-path expectations (incremental flags, reuse counts) must be gated
/// on what the toggle actually resolves to. Identity expectations never
/// are.
bool warmPathOn() { return incrementalEnabled(SchedulerOptions{}); }

/// One streaming window: the shared prefix plus a per-window tail step, so
/// consecutive windows of a session share everything but the suffix.
ReferenceTrace windowTrace(int n, int steps, int tailWeight) {
  ReferenceTrace trace(DataSpace::singleSquare(n));
  const int numData = n * n;
  for (int s = 0; s < steps; ++s) {
    for (int d = 0; d < numData; ++d) {
      const int weight =
          s + 1 == steps ? tailWeight + d % 3 : 1 + (d + s) % 3;
      trace.add(s, (d + s) % 16, d, weight);
    }
  }
  trace.finalize();
  return trace;
}

StreamRequest makeStreamRequest(const std::string& session,
                                int tailWeight = 1) {
  StreamRequest request;
  request.session = session;
  request.job.trace = windowTrace(4, 6, tailWeight);
  request.job.config.numWindows = 3;
  request.job.config.capacity = PipelineConfig::kUnlimited;
  request.job.method = Method::kGomcds;
  return request;
}

// ---------------------------------------------------------------------------
// Session basics: warm second window, identity with the one-shot path.
// ---------------------------------------------------------------------------

TEST(StreamSessionManagerTest, SecondWindowOfUnchangedTraceIsWarm) {
  StreamSessionManager manager;
  const StreamOutcome first = manager.submit(makeStreamRequest("s"));
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_EQ(first.window, 0);
  EXPECT_TRUE(first.reset);  // newly created session
  EXPECT_FALSE(first.incremental);

  const StreamOutcome second = manager.submit(makeStreamRequest("s"));
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_EQ(second.window, 1);
  EXPECT_FALSE(second.reset);
  if (warmPathOn()) {
    EXPECT_TRUE(second.incremental);
    EXPECT_GT(second.reusedLayers, 0);
    EXPECT_EQ(second.relaxedLayers, 0);
  } else {
    EXPECT_FALSE(second.incremental);
  }
}

TEST(StreamSessionManagerTest, EveryWindowMatchesTheOneShotSubmitPath) {
  StreamSessionManager manager;
  SchedulingService oneShot;
  for (int tail = 1; tail <= 4; ++tail) {
    const StreamOutcome window =
        manager.submit(makeStreamRequest("s", tail));
    ASSERT_TRUE(window.ok) << window.error;
    ASSERT_NE(window.result, nullptr);

    StreamRequest fresh = makeStreamRequest("s", tail);
    const SubmitOutcome submitted = oneShot.submit(fresh.job);
    ASSERT_TRUE(submitted.accepted) << submitted.reason;
    const auto expected = oneShot.result(submitted.id);
    ASSERT_NE(expected, nullptr);

    EXPECT_EQ(window.result->scheduleText, expected->scheduleText)
        << "tail " << tail;
    EXPECT_EQ(window.result->eval.aggregate.total(),
              expected->eval.aggregate.total());
    EXPECT_EQ(window.result->digest, expected->digest);
  }
}

TEST(StreamSessionManagerTest, FaultedWindowsMatchTheOneShotSubmitPath) {
  StreamSessionManager manager;
  SchedulingService oneShot;
  for (int tail = 1; tail <= 3; ++tail) {
    StreamRequest request = makeStreamRequest("faulted", tail);
    request.job.faults = {"proc:5", "link:2-3"};
    const StreamOutcome window = manager.submit(request);
    ASSERT_TRUE(window.ok) << window.error;
    ASSERT_NE(window.result, nullptr);

    const SubmitOutcome submitted = oneShot.submit(request.job);
    ASSERT_TRUE(submitted.accepted) << submitted.reason;
    const auto expected = oneShot.result(submitted.id);
    ASSERT_NE(expected, nullptr);
    EXPECT_EQ(window.result->scheduleText, expected->scheduleText)
        << "tail " << tail;
  }
}

TEST(StreamSessionManagerTest, InvalidSessionNamesAreRejected) {
  StreamSessionManager manager;
  const std::vector<std::string> badNames = {"", "has space", "semi;colon",
                                             std::string(65, 'a')};
  for (const std::string& bad : badNames) {
    StreamRequest request = makeStreamRequest(bad);
    const StreamOutcome out = manager.submit(request);
    EXPECT_FALSE(out.ok) << "name '" << bad << "'";
    EXPECT_EQ(out.errorKind, "invalid");
  }
  EXPECT_EQ(manager.size(), 0u);
}

TEST(StreamSessionManagerTest, CloseDropsTheSession) {
  StreamSessionManager manager;
  ASSERT_TRUE(manager.submit(makeStreamRequest("s")).ok);
  EXPECT_EQ(manager.size(), 1u);
  EXPECT_TRUE(manager.close("s"));
  EXPECT_EQ(manager.size(), 0u);
  EXPECT_FALSE(manager.close("s"));  // already gone
  // A new window after close starts a fresh session at window 0.
  const StreamOutcome reopened = manager.submit(makeStreamRequest("s"));
  ASSERT_TRUE(reopened.ok);
  EXPECT_EQ(reopened.window, 0);
  EXPECT_TRUE(reopened.reset);
}

// ---------------------------------------------------------------------------
// Eviction and compatibility resets.
// ---------------------------------------------------------------------------

TEST(StreamSessionManagerTest, LruEvictionDropsTheColdestSession) {
  StreamSessionManager manager(/*maxSessions=*/2);
  ASSERT_TRUE(manager.submit(makeStreamRequest("a")).ok);
  ASSERT_TRUE(manager.submit(makeStreamRequest("b")).ok);
  ASSERT_TRUE(manager.submit(makeStreamRequest("a")).ok);  // touch a
  ASSERT_TRUE(manager.submit(makeStreamRequest("c")).ok);  // evicts b
  EXPECT_EQ(manager.size(), 2u);

  // a kept its state across the eviction of b; re-adding b afterwards
  // restarts it from scratch (and evicts the new LRU victim, c).
  const StreamOutcome a = manager.submit(makeStreamRequest("a"));
  ASSERT_TRUE(a.ok);
  EXPECT_EQ(a.window, 2);
  EXPECT_FALSE(a.reset);
  const StreamOutcome b = manager.submit(makeStreamRequest("b"));
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(b.window, 0);
  EXPECT_TRUE(b.reset);
}

TEST(StreamSessionManagerTest, ConfigChangeResetsTheSessionInPlace) {
  StreamSessionManager manager;
  ASSERT_TRUE(manager.submit(makeStreamRequest("s")).ok);
  ASSERT_TRUE(manager.submit(makeStreamRequest("s")).ok);

  StreamRequest changed = makeStreamRequest("s");
  changed.job.config.numWindows = 5;  // different solve shape
  const StreamOutcome out = manager.submit(changed);
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_TRUE(out.reset);
  EXPECT_EQ(out.window, 0);
  EXPECT_FALSE(out.incremental);  // warm state was dropped

  // And the reset session matches a fresh one-shot solve of the new shape.
  SchedulingService oneShot;
  StreamRequest fresh = makeStreamRequest("s");
  fresh.job.config.numWindows = 5;
  const SubmitOutcome submitted = oneShot.submit(fresh.job);
  ASSERT_TRUE(submitted.accepted);
  const auto expected = oneShot.result(submitted.id);
  ASSERT_NE(expected, nullptr);
  ASSERT_NE(out.result, nullptr);
  EXPECT_EQ(out.result->scheduleText, expected->scheduleText);
}

TEST(StreamSessionManagerTest, InvalidateByTagDropsOnlyMatchingSessions) {
  StreamSessionManager manager;
  StreamPin pinA{"arrayA", {}};
  StreamPin pinB{"arrayB", {}};
  ASSERT_TRUE(manager.submit(makeStreamRequest("s1"), pinA).ok);
  ASSERT_TRUE(manager.submit(makeStreamRequest("s2"), pinA).ok);
  ASSERT_TRUE(manager.submit(makeStreamRequest("s3"), pinB).ok);
  EXPECT_EQ(manager.invalidateByTag("arrayA"), 2);
  EXPECT_EQ(manager.size(), 1u);
  const StreamOutcome s3 = manager.submit(makeStreamRequest("s3"), pinB);
  ASSERT_TRUE(s3.ok);
  EXPECT_EQ(s3.window, 1);  // untouched by the other tag's invalidation
}

// ---------------------------------------------------------------------------
// Service integration: default unsupported, scheduling, sharded, fleet.
// ---------------------------------------------------------------------------

TEST(StreamServiceTest, BaseJobServiceReportsStreamingUnsupported) {
  class Minimal final : public JobService {
   public:
    SubmitOutcome submit(JobRequest) override { return {}; }
    std::optional<JobStatus> status(JobId) const override { return {}; }
    std::shared_ptr<const JobResult> result(JobId, bool) override {
      return nullptr;
    }
    bool cancel(JobId) override { return false; }
    ServiceStats stats() const override { return {}; }
    void drain() override {}
  };
  Minimal service;
  const StreamOutcome out =
      service.submitStream(makeStreamRequest("s"));
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.errorKind, "invalid");
  EXPECT_FALSE(service.closeStream("s"));
}

TEST(StreamServiceTest, SchedulingServiceStreamsAndEvicts) {
  SchedulingService::Config config;
  config.maxStreamSessions = 1;
  SchedulingService service(config);
  ASSERT_TRUE(service.submitStream(makeStreamRequest("a")).ok);
  ASSERT_TRUE(service.submitStream(makeStreamRequest("b")).ok);  // evicts a
  const StreamOutcome a = service.submitStream(makeStreamRequest("a"));
  ASSERT_TRUE(a.ok);
  EXPECT_EQ(a.window, 0);
  EXPECT_TRUE(a.reset);
  EXPECT_TRUE(service.closeStream("a"));
}

TEST(StreamServiceTest, ShardedRoutingIsStickyPerSessionName) {
  ShardedService::Config config;
  config.shards = 4;
  ShardedService service(config);
  // The window counter advancing proves every submit reached the same
  // shard-local session even as the trace (and so the job digest) changes.
  for (int tail = 1; tail <= 6; ++tail) {
    const StreamOutcome out =
        service.submitStream(makeStreamRequest("sticky", tail));
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_EQ(out.window, tail - 1);
  }
  EXPECT_TRUE(service.closeStream("sticky"));
  EXPECT_FALSE(service.closeStream("sticky"));
}

TEST(StreamFleetTest, FleetStreamsMatchTheOneShotPath) {
  fleet::FleetService::Config config;
  config.arrays = fleet::parseFleetSpec("only=4x4");
  config.policyFromEnv = false;
  fleet::FleetService fleet(std::move(config));
  SchedulingService oneShot;
  for (int tail = 1; tail <= 3; ++tail) {
    const StreamOutcome window =
        fleet.submitStream(makeStreamRequest("s", tail));
    ASSERT_TRUE(window.ok) << window.error;
    ASSERT_NE(window.result, nullptr);

    StreamRequest fresh = makeStreamRequest("s", tail);
    const SubmitOutcome submitted = oneShot.submit(fresh.job);
    ASSERT_TRUE(submitted.accepted);
    const auto expected = oneShot.result(submitted.id);
    ASSERT_NE(expected, nullptr);
    EXPECT_EQ(window.result->scheduleText, expected->scheduleText);
  }
  EXPECT_TRUE(fleet.closeStream("s"));
}

TEST(StreamFleetTest, GridWithNoMatchingArrayIsRejected) {
  fleet::FleetService::Config config;
  config.arrays = fleet::parseFleetSpec("only=4x4");
  config.policyFromEnv = false;
  fleet::FleetService fleet(std::move(config));
  StreamRequest request = makeStreamRequest("s");
  request.job.gridRows = 8;
  request.job.gridCols = 8;
  const StreamOutcome out = fleet.submitStream(request);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.errorKind, "invalid");
}

TEST(StreamFleetTest, DriftOnTheHostingArrayInvalidatesTheSession) {
  fleet::FleetService::Config config;
  config.arrays = fleet::parseFleetSpec("only=4x4");
  config.policyFromEnv = false;
  fleet::FleetService fleet(std::move(config));
  ASSERT_TRUE(fleet.submitStream(makeStreamRequest("s", 1)).ok);
  ASSERT_TRUE(fleet.submitStream(makeStreamRequest("s", 2)).ok);

  const DriftOutcome drift = fleet.applyDrift("only", {"proc:5"}, false);
  ASSERT_TRUE(drift.ok) << drift.error;

  // The warm state died with the drift; the next window starts a fresh
  // session whose solve sees the array's NEW fault set, and matches the
  // one-shot path under those faults.
  const StreamOutcome after = fleet.submitStream(makeStreamRequest("s", 3));
  ASSERT_TRUE(after.ok) << after.error;
  EXPECT_EQ(after.window, 0);
  EXPECT_TRUE(after.reset);

  SchedulingService oneShot;
  StreamRequest fresh = makeStreamRequest("s", 3);
  fresh.job.faults = {"proc:5"};
  const SubmitOutcome submitted = oneShot.submit(fresh.job);
  ASSERT_TRUE(submitted.accepted);
  const auto expected = oneShot.result(submitted.id);
  ASSERT_NE(expected, nullptr);
  ASSERT_NE(after.result, nullptr);
  EXPECT_EQ(after.result->scheduleText, expected->scheduleText);

  // Healing drifts again: the re-created session is invalidated too.
  ASSERT_TRUE(fleet.applyDrift("only", {}, true).ok);
  const StreamOutcome healed =
      fleet.submitStream(makeStreamRequest("s", 4));
  ASSERT_TRUE(healed.ok);
  EXPECT_EQ(healed.window, 0);
  EXPECT_TRUE(healed.reset);
}

// ---------------------------------------------------------------------------
// Compat digest unit coverage.
// ---------------------------------------------------------------------------

TEST(StreamCompatDigestTest, TraceContentDoesNotChangeIt) {
  const Digest base = streamCompatDigest(makeStreamRequest("s").job);
  EXPECT_EQ(streamCompatDigest(makeStreamRequest("s", 7).job), base);

  StreamRequest grid = makeStreamRequest("s");
  grid.job.gridRows = 2;
  grid.job.gridCols = 8;
  EXPECT_NE(streamCompatDigest(grid.job), base);

  StreamRequest method = makeStreamRequest("s");
  method.job.method = Method::kScds;
  EXPECT_NE(streamCompatDigest(method.job), base);

  StreamRequest faults = makeStreamRequest("s");
  faults.job.faults = {"proc:5"};
  EXPECT_NE(streamCompatDigest(faults.job), base);

  StreamRequest tenant = makeStreamRequest("s");
  tenant.job.tenant = "acme";
  EXPECT_NE(streamCompatDigest(tenant.job), base);

  StreamRequest windows = makeStreamRequest("s");
  windows.job.config.numWindows = 7;
  EXPECT_NE(streamCompatDigest(windows.job), base);
}

TEST(StreamCompatDigestTest, SessionNameValidation) {
  EXPECT_TRUE(validSessionName("a"));
  EXPECT_TRUE(validSessionName("user-7.stream_A"));
  EXPECT_TRUE(validSessionName(std::string(64, 'x')));
  EXPECT_FALSE(validSessionName(""));
  EXPECT_FALSE(validSessionName(std::string(65, 'x')));
  EXPECT_FALSE(validSessionName("no spaces"));
  EXPECT_FALSE(validSessionName("no/slash"));
}

}  // namespace
}  // namespace pimsched::serve

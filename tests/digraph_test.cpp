#include "graph/digraph.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace pimsched {
namespace {

TEST(Digraph, TopologicalOrderOfChain) {
  Digraph g(4);
  g.addEdge(0, 1, 1);
  g.addEdge(1, 2, 1);
  g.addEdge(2, 3, 1);
  const auto order = g.topologicalOrder();
  ASSERT_TRUE(order.has_value());
  ASSERT_EQ(order->size(), 4u);
  EXPECT_EQ((*order)[0], 0);
  EXPECT_EQ((*order)[3], 3);
}

TEST(Digraph, DetectsCycle) {
  Digraph g(3);
  g.addEdge(0, 1, 1);
  g.addEdge(1, 2, 1);
  g.addEdge(2, 0, 1);
  EXPECT_FALSE(g.topologicalOrder().has_value());
}

TEST(Digraph, SelfLoopIsACycle) {
  Digraph g(2);
  g.addEdge(0, 0, 1);
  EXPECT_FALSE(g.topologicalOrder().has_value());
}

TEST(Digraph, EdgeValidation) {
  Digraph g(2);
  EXPECT_THROW(g.addEdge(0, 2, 1), std::out_of_range);
  EXPECT_THROW(g.addEdge(-1, 0, 1), std::out_of_range);
}

TEST(DagShortestPaths, DiamondPicksCheaperBranch) {
  //   0 -> 1 (1), 0 -> 2 (5), 1 -> 3 (1), 2 -> 3 (1)
  Digraph g(4);
  g.addEdge(0, 1, 1);
  g.addEdge(0, 2, 5);
  g.addEdge(1, 3, 1);
  g.addEdge(2, 3, 1);
  const auto sp = dagShortestPaths(g, 0);
  EXPECT_EQ(sp.dist[3], 2);
  const auto path = sp.pathTo(3);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[1], 1);
}

TEST(DagShortestPaths, UnreachableNodes) {
  Digraph g(3);
  g.addEdge(0, 1, 2);
  const auto sp = dagShortestPaths(g, 0);
  EXPECT_EQ(sp.dist[2], kInfiniteCost);
  EXPECT_TRUE(sp.pathTo(2).empty());
}

TEST(DagShortestPaths, NegativeWeightsOnDagAreFine) {
  Digraph g(3);
  g.addEdge(0, 1, 5);
  g.addEdge(1, 2, -3);
  g.addEdge(0, 2, 4);
  const auto sp = dagShortestPaths(g, 0);
  EXPECT_EQ(sp.dist[2], 2);
}

TEST(DagShortestPaths, ThrowsOnCycle) {
  Digraph g(2);
  g.addEdge(0, 1, 1);
  g.addEdge(1, 0, 1);
  EXPECT_THROW(dagShortestPaths(g, 0), std::invalid_argument);
}

TEST(DagShortestPaths, SourceDistanceZero) {
  Digraph g(1);
  const auto sp = dagShortestPaths(g, 0);
  EXPECT_EQ(sp.dist[0], 0);
  EXPECT_EQ(sp.pathTo(0).size(), 1u);
}

TEST(DagShortestPaths, MatchesBellmanFordOnRandomDags) {
  // Random DAGs (edges only from lower to higher index) with negative
  // weights allowed; cross-check against |V| rounds of Bellman-Ford.
  testutil::Rng rng(221);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 3 + static_cast<int>(rng.below(15));
    Digraph g(n);
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        if (rng.below(3) == 0) {
          g.addEdge(u, v, rng.range(-5, 20));
        }
      }
    }
    const auto sp = dagShortestPaths(g, 0);

    std::vector<Cost> dist(static_cast<std::size_t>(n), kInfiniteCost);
    dist[0] = 0;
    for (int round = 0; round < n; ++round) {
      for (int u = 0; u < n; ++u) {
        if (dist[static_cast<std::size_t>(u)] >= kInfiniteCost) continue;
        for (const Digraph::Edge& e : g.edgesFrom(u)) {
          dist[static_cast<std::size_t>(e.to)] =
              std::min(dist[static_cast<std::size_t>(e.to)],
                       dist[static_cast<std::size_t>(u)] + e.weight);
        }
      }
    }
    for (int v = 0; v < n; ++v) {
      ASSERT_EQ(sp.dist[static_cast<std::size_t>(v)],
                dist[static_cast<std::size_t>(v)]);
    }
    // Path consistency: the reconstructed path's edge weights sum to dist.
    for (int v = 0; v < n; ++v) {
      const auto path = sp.pathTo(v);
      if (path.empty()) continue;
      Cost sum = 0;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        Cost weight = kInfiniteCost;
        for (const Digraph::Edge& e : g.edgesFrom(path[i])) {
          if (e.to == path[i + 1]) weight = std::min(weight, e.weight);
        }
        sum += weight;
      }
      EXPECT_EQ(sum, sp.dist[static_cast<std::size_t>(v)]);
    }
  }
}

}  // namespace
}  // namespace pimsched

#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/pipeline.hpp"

namespace pimsched {
namespace {

ReferenceTrace sampleTrace() {
  DataSpace space;
  space.addArray("A", 2, 2);
  ReferenceTrace trace(space);
  trace.add(0, 0, 0, 3);
  trace.add(0, 1, 2);
  trace.add(1, 2, 3, 5);
  trace.finalize();
  return trace;
}

TEST(Digest, HexRendersHiWordFirst) {
  const Digest d{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  EXPECT_EQ(d.hex(), "0123456789abcdeffedcba9876543210");
  EXPECT_EQ((Digest{0, 0}).hex(), std::string(32, '0'));
}

TEST(Digest, FromHexRoundTripsAndRejectsMalformedInput) {
  const Digest d{0xdeadbeef00c0ffeeULL, 0x0011223344556677ULL};
  const auto parsed = Digest::fromHex(d.hex());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, d);
  EXPECT_FALSE(Digest::fromHex("").has_value());
  EXPECT_FALSE(Digest::fromHex("abc").has_value());                // short
  EXPECT_FALSE(Digest::fromHex(d.hex() + "0").has_value());       // long
  std::string bad = d.hex();
  bad[7] = 'g';
  EXPECT_FALSE(Digest::fromHex(bad).has_value());  // non-hex character
}

TEST(DigestBuilder, IsDeterministicAndWordsAreDecorrelated) {
  DigestBuilder a, b;
  a.str("hello");
  a.u64(42);
  b.str("hello");
  b.u64(42);
  EXPECT_EQ(a.digest(), b.digest());
  // The two words are independent FNV streams, not copies of each other.
  EXPECT_NE(a.digest().hi, a.digest().lo);
}

TEST(DigestBuilder, U64UsesDocumentedLittleEndianBytes) {
  // The byte stream is specified as little-endian so digests are stable
  // across platforms: u64(0x0102) must equal the explicit byte sequence.
  DigestBuilder viaInt, viaBytes;
  viaInt.u64(0x0102);
  const unsigned char raw[8] = {0x02, 0x01, 0, 0, 0, 0, 0, 0};
  viaBytes.bytes(raw, sizeof(raw));
  EXPECT_EQ(viaInt.digest(), viaBytes.digest());
}

TEST(DigestBuilder, StringFramingPreventsConcatenationCollisions) {
  DigestBuilder a, b;
  a.str("ab");
  a.str("c");
  b.str("a");
  b.str("bc");
  EXPECT_NE(a.digest(), b.digest());
}

TEST(DigestBuilder, SingleBytePerturbationChangesBothWords) {
  DigestBuilder a, b;
  a.str("payload0");
  b.str("payload1");
  EXPECT_NE(a.digest().hi, b.digest().hi);
  EXPECT_NE(a.digest().lo, b.digest().lo);
}

TEST(TraceDigest, EqualForLogicallyEqualTraces) {
  // finalize() sorts and merges, so add order and duplicate splitting must
  // not change the digest.
  DataSpace space;
  space.addArray("A", 2, 2);
  ReferenceTrace shuffled(space);
  shuffled.add(1, 2, 3, 5);
  shuffled.add(0, 1, 2);
  shuffled.add(0, 0, 0, 1);
  shuffled.add(0, 0, 0, 2);  // merges with the previous access
  shuffled.finalize();
  EXPECT_EQ(traceDigest(shuffled), traceDigest(sampleTrace()));
}

TEST(TraceDigest, SensitiveToEveryInputComponent) {
  const Digest base = traceDigest(sampleTrace());

  DataSpace renamed;
  renamed.addArray("B", 2, 2);
  ReferenceTrace t1(renamed);
  t1.add(0, 0, 0, 3);
  t1.add(0, 1, 2);
  t1.add(1, 2, 3, 5);
  t1.finalize();
  EXPECT_NE(traceDigest(t1), base);  // array name

  DataSpace space;
  space.addArray("A", 2, 2);
  ReferenceTrace t2(space);
  t2.add(0, 0, 0, 4);  // weight changed
  t2.add(0, 1, 2);
  t2.add(1, 2, 3, 5);
  t2.finalize();
  EXPECT_NE(traceDigest(t2), base);

  ReferenceTrace t3(space);
  t3.add(0, 0, 0, 3);
  t3.add(0, 1, 2);
  t3.add(2, 2, 3, 5);  // step changed
  t3.finalize();
  EXPECT_NE(traceDigest(t3), base);
}

TEST(TraceDigest, ThrowsOnUnfinalizedTrace) {
  ReferenceTrace trace(DataSpace::singleSquare(2));
  trace.add(0, 0, 0);
  EXPECT_THROW((void)traceDigest(trace), std::invalid_argument);
}

TEST(ConfigDigest, SensitiveToSchedulingKnobs) {
  const Digest base = configDigest(PipelineConfig{});

  PipelineConfig windows;
  windows.numWindows = 4;
  EXPECT_NE(configDigest(windows), base);

  PipelineConfig capacity;
  capacity.capacity = PipelineConfig::kUnlimited;
  EXPECT_NE(configDigest(capacity), base);

  PipelineConfig order;
  order.order = DataOrder::kById;
  EXPECT_NE(configDigest(order), base);

  PipelineConfig costs;
  costs.costParams.hopCost += 1;
  EXPECT_NE(configDigest(costs), base);

  PipelineConfig explicitWindows;
  explicitWindows.explicitWindows = WindowPartition::perStep(8);
  EXPECT_NE(configDigest(explicitWindows), base);
  PipelineConfig otherBoundaries;
  otherBoundaries.explicitWindows = WindowPartition::evenCount(8, 2);
  EXPECT_NE(configDigest(otherBoundaries), configDigest(explicitWindows));
}

TEST(ConfigDigest, ThreadCountDoesNotSplitTheCache) {
  // Results are bit-identical for every thread count, so thread count is
  // deliberately excluded from the content address.
  PipelineConfig sequential, parallel;
  sequential.threads = 1;
  parallel.threads = 8;
  EXPECT_EQ(configDigest(sequential), configDigest(parallel));
}

TEST(MethodFromString, RoundTripsTheSharedVocabulary) {
  EXPECT_EQ(methodFromString("gomcds"), Method::kGomcds);
  EXPECT_EQ(methodFromString("scds"), Method::kScds);
  EXPECT_EQ(methodFromString("rowwise"), Method::kRowWise);
  EXPECT_EQ(methodFromString("grouped"), Method::kGroupedLomcds);
  EXPECT_FALSE(methodFromString("").has_value());
  EXPECT_FALSE(methodFromString("GOMCDS").has_value());
  EXPECT_FALSE(methodFromString("nope").has_value());
}

}  // namespace
}  // namespace pimsched

// Cross-product integration properties: every scheduler on every grid
// shape, window granularity and cost parameterisation must uphold the
// library-wide invariants simultaneously (DESIGN.md §3). These sweeps are
// the safety net for interactions the per-module tests cannot see.

#include <gtest/gtest.h>

#include <tuple>

#include "core/evaluator.hpp"
#include "core/exhaustive.hpp"
#include "core/gomcds.hpp"
#include "core/grouping.hpp"
#include "core/lomcds.hpp"
#include "core/scds.hpp"
#include "kernels/benchmarks.hpp"
#include "sim/replay.hpp"
#include "test_util.hpp"

namespace pimsched {
namespace {

struct Instance {
  Grid grid;
  WindowedRefs refs;
  CostParams params;

  /// A CostModel must reference the Instance's own grid (it stores a
  /// pointer), so it is derived on demand rather than stored.
  [[nodiscard]] CostModel model() const { return CostModel(grid, params); }
};

Instance makeInstance(int rows, int cols, int windows, int seed,
                      CostParams params = {}) {
  Grid grid(rows, cols);
  testutil::Rng rng(static_cast<std::uint64_t>(seed) * 2654435761u + 17);
  const int steps = windows * 3;
  ReferenceTrace trace =
      testutil::randomTrace(rng, grid, 4, 4, steps, 4 * grid.size());
  WindowedRefs refs(trace, WindowPartition::evenCount(steps, windows), grid);
  return Instance{grid, std::move(refs), params};
}

// ---------------------------------------------------------------------
// Sweep: (rows, cols, windows, seed).
class SchedulerCrossProduct
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(SchedulerCrossProduct, AllInvariantsHold) {
  const auto [rows, cols, windows, seed] = GetParam();
  const Instance inst = makeInstance(rows, cols, windows, seed);
  const WindowedRefs& refs = inst.refs;
  const CostModel model = inst.model();

  const DataSchedule scds = scheduleScds(refs, model);
  const DataSchedule lomcds = scheduleLomcds(refs, model);
  const DataSchedule gomcds = scheduleGomcds(refs, model);
  const DataSchedule grouped = scheduleGroupedLomcds(refs, model);

  for (const DataSchedule* s : {&scds, &lomcds, &gomcds, &grouped}) {
    EXPECT_TRUE(s->complete());
  }
  EXPECT_TRUE(scds.isStatic());

  const Cost cScds = evaluateSchedule(scds, refs, model).aggregate.total();
  const Cost cLom = evaluateSchedule(lomcds, refs, model).aggregate.total();
  const Cost cGom = evaluateSchedule(gomcds, refs, model).aggregate.total();
  const Cost cGrp = evaluateSchedule(grouped, refs, model).aggregate.total();

  // Invariant 3 + 6 (uncapacitated): GOMCDS dominates everything.
  EXPECT_LE(cGom, cScds);
  EXPECT_LE(cGom, cLom);
  EXPECT_LE(cGom, cGrp);
  // Grouping never loses to per-window LOMCDS.
  EXPECT_LE(cGrp, cLom);

  // Invariant 10: replay traffic == analytic cost, for each scheme.
  for (const DataSchedule* s : {&scds, &lomcds, &gomcds, &grouped}) {
    const Cost analytic =
        evaluateSchedule(*s, refs, model).aggregate.total();
    EXPECT_EQ(replaySchedule(*s, refs, model).total.totalHopVolume,
              analytic);
  }
}

INSTANTIATE_TEST_SUITE_P(
    GridShapes, SchedulerCrossProduct,
    ::testing::Values(std::make_tuple(1, 1, 3, 1),   // degenerate
                      std::make_tuple(1, 8, 4, 2),   // 1-D row
                      std::make_tuple(8, 1, 4, 3),   // 1-D column
                      std::make_tuple(2, 2, 6, 4),
                      std::make_tuple(4, 4, 5, 5),
                      std::make_tuple(3, 5, 4, 6),   // rectangular
                      std::make_tuple(5, 3, 7, 7),
                      std::make_tuple(6, 6, 3, 8),
                      std::make_tuple(2, 7, 8, 9),
                      std::make_tuple(7, 2, 2, 10)));

// ---------------------------------------------------------------------
// Capacity sweep: the same orderings that are theorems uncapacitated are
// checked as schedule-validity + S.F.-dominance facts under pressure.
class CapacityCrossProduct
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CapacityCrossProduct, SchedulesStayFeasible) {
  const auto [capacity, seed] = GetParam();
  const Instance inst = makeInstance(3, 3, 4, seed);
  const WindowedRefs& refs = inst.refs;
  const CostModel model = inst.model();
  SchedulerOptions opts;
  opts.capacity = capacity;  // 16 data over 9 procs: >= 2 is feasible

  for (const auto& schedule :
       {scheduleScds(refs, model, opts), scheduleLomcds(refs, model, opts),
        scheduleGomcds(refs, model, opts),
        scheduleGroupedLomcds(refs, model, opts)}) {
    EXPECT_TRUE(schedule.complete());
    EXPECT_TRUE(schedule.respectsCapacity(inst.grid, capacity));
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, CapacityCrossProduct,
                         ::testing::Combine(::testing::Values(2, 3, 4, 16),
                                            ::testing::Values(11, 12, 13)));

// ---------------------------------------------------------------------
// Cost-parameter properties.
TEST(CostParamSweep, HopCostScalesEveryScheduleCostLinearly) {
  const Instance base = makeInstance(4, 4, 4, 21);
  const CostModel unit = base.model();
  const CostModel scaled(base.grid, CostParams{5, 1});
  const DataSchedule a = scheduleGomcds(base.refs, unit);
  const DataSchedule b = scheduleGomcds(base.refs, scaled);
  // Scaling every edge uniformly preserves the argmin...
  const Cost costA =
      evaluateSchedule(a, base.refs, unit).aggregate.total();
  const Cost costB = evaluateSchedule(b, base.refs, scaled).aggregate.total();
  EXPECT_EQ(costB, 5 * costA);
  // ...and the schedule itself.
  for (DataId d = 0; d < base.refs.numData(); ++d) {
    for (WindowId w = 0; w < base.refs.numWindows(); ++w) {
      ASSERT_EQ(a.center(d, w), b.center(d, w));
    }
  }
}

TEST(CostParamSweep, GomcdsMovementDecreasesAsMoveVolumeGrows) {
  const Instance base = makeInstance(4, 4, 6, 22);
  Cost prevMoves = kInfiniteCost;
  for (const Cost volume : {Cost{0}, Cost{1}, Cost{4}, Cost{16}, Cost{64}}) {
    const CostModel model(base.grid, CostParams{1, volume});
    const DataSchedule s = scheduleGomcds(base.refs, model);
    // Count migrations (hops moved), independent of the charged volume.
    Cost hops = 0;
    for (DataId d = 0; d < base.refs.numData(); ++d) {
      for (WindowId w = 1; w < base.refs.numWindows(); ++w) {
        hops += base.grid.manhattan(s.center(d, w - 1), s.center(d, w));
      }
    }
    EXPECT_LE(hops, prevMoves)
        << "raising moveVolume must not increase migration";
    prevMoves = hops;
  }
}

TEST(CostParamSweep, InfiniteMoveVolumeMakesGomcdsStatic) {
  const Instance base = makeInstance(4, 4, 5, 23);
  const CostModel model(base.grid, CostParams{1, 1'000'000});
  const DataSchedule s = scheduleGomcds(base.refs, model);
  EXPECT_TRUE(s.isStatic());
  // And then it must equal SCDS's cost (both are optimal static).
  const CostModel unit(base.grid);
  const Cost gomcdsServe =
      evaluateSchedule(s, base.refs, unit).aggregate.serve;
  const Cost scdsServe =
      evaluateSchedule(scheduleScds(base.refs, unit), base.refs, unit)
          .aggregate.serve;
  EXPECT_EQ(gomcdsServe, scdsServe);
}

// ---------------------------------------------------------------------
// The paper benchmarks across partitions: orderings hold everywhere.
class PartitionBenchmarkSweep
    : public ::testing::TestWithParam<std::tuple<PaperBenchmark, PartitionKind>> {};

TEST_P(PartitionBenchmarkSweep, GomcdsDominates) {
  const auto [bench, part] = GetParam();
  const Grid grid(4, 4);
  const ReferenceTrace trace = makePaperBenchmark(bench, grid, 8, part);
  const WindowedRefs refs(
      trace, WindowPartition::evenCount(trace.numSteps(), 6), grid);
  const CostModel model(grid);
  const Cost go =
      evaluateSchedule(scheduleGomcds(refs, model), refs, model)
          .aggregate.total();
  const Cost sc =
      evaluateSchedule(scheduleScds(refs, model), refs, model)
          .aggregate.total();
  const Cost lo =
      evaluateSchedule(scheduleLomcds(refs, model), refs, model)
          .aggregate.total();
  EXPECT_LE(go, sc);
  EXPECT_LE(go, lo);
}

INSTANTIATE_TEST_SUITE_P(
    All, PartitionBenchmarkSweep,
    ::testing::Combine(::testing::ValuesIn(allPaperBenchmarks()),
                       ::testing::Values(PartitionKind::kRowBlock,
                                         PartitionKind::kColBlock,
                                         PartitionKind::kBlock2D,
                                         PartitionKind::kCyclic2D)),
    [](const auto& info) {
      std::string n = toString(std::get<0>(info.param)) + "_" +
                      toString(std::get<1>(info.param));
      for (char& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

// ---------------------------------------------------------------------
// GOMCDS == exhaustive on every tiny grid shape (not just square).
class TinyExhaustiveSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TinyExhaustiveSweep, GomcdsIsOptimal) {
  const auto [rows, cols, seed] = GetParam();
  const Grid grid(rows, cols);
  testutil::Rng rng(static_cast<std::uint64_t>(seed) + 100);
  const ReferenceTrace trace =
      testutil::randomTrace(rng, grid, 2, 2, 8, 2 * grid.size());
  const WindowedRefs refs(trace, WindowPartition::fixedSize(8, 2), grid);
  const CostModel model(grid);
  EXPECT_EQ(
      evaluateSchedule(scheduleGomcds(refs, model), refs, model)
          .aggregate.total(),
      evaluateSchedule(scheduleExhaustive(refs, model), refs, model)
          .aggregate.total());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TinyExhaustiveSweep,
    ::testing::Values(std::make_tuple(1, 4, 1), std::make_tuple(4, 1, 2),
                      std::make_tuple(2, 2, 3), std::make_tuple(2, 3, 4),
                      std::make_tuple(3, 2, 5), std::make_tuple(1, 6, 6)));

}  // namespace
}  // namespace pimsched

#include "core/exhaustive.hpp"

#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "test_util.hpp"

namespace pimsched {
namespace {

TEST(Exhaustive, SolvesTrivialInstanceExactly) {
  const Grid g(1, 3);
  const CostModel model(g);
  ReferenceTrace t(DataSpace::singleSquare(1));
  t.add(0, 0, 0, 1);
  t.add(1, 2, 0, 1);
  t.finalize();
  const WindowedRefs refs(t, WindowPartition::perStep(2), g);
  const DataSchedule s = scheduleExhaustive(refs, model);
  const Cost total = evaluateSchedule(s, refs, model).aggregate.total();
  // Options: stay at 0 (0+2), stay at 2 (2+0), stay at 1 (1+1), move
  // 0->2 (0+0+move 2). All cost 2.
  EXPECT_EQ(total, 2);
}

TEST(Exhaustive, BeatsOrMatchesAnyFixedSchedule) {
  const Grid g(2, 2);
  const CostModel model(g);
  testutil::Rng rng(101);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 2, 2, 6, 8);
  const WindowedRefs refs(
      t, WindowPartition::evenCount(t.numSteps(), 3), g);
  const DataSchedule best = scheduleExhaustive(refs, model);
  const EvalResult bestEval = evaluateSchedule(best, refs, model);
  // Compare against a handful of arbitrary schedules.
  for (int trial = 0; trial < 20; ++trial) {
    DataSchedule other(refs.numData(), refs.numWindows());
    for (DataId d = 0; d < refs.numData(); ++d) {
      for (WindowId w = 0; w < refs.numWindows(); ++w) {
        other.setCenter(
            d, w,
            static_cast<ProcId>(rng.below(
                static_cast<std::uint64_t>(g.size()))));
      }
    }
    const EvalResult otherEval = evaluateSchedule(other, refs, model);
    EXPECT_LE(bestEval.aggregate.total(), otherEval.aggregate.total());
  }
}

TEST(Exhaustive, RefusesHugeInstances) {
  const Grid g(4, 4);
  const CostModel model(g);
  testutil::Rng rng(102);
  const ReferenceTrace t = testutil::randomTrace(rng, g, 2, 2, 16, 8);
  const WindowedRefs refs(t, WindowPartition::perStep(16), g);
  // 16^16 sequences per datum: must refuse.
  EXPECT_THROW((void)scheduleExhaustive(refs, model),
               std::invalid_argument);
}

}  // namespace
}  // namespace pimsched

#include "trace/window.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pimsched {
namespace {

TEST(WindowPartition, FixedSizeEvenSplit) {
  const auto wp = WindowPartition::fixedSize(12, 3);
  EXPECT_EQ(wp.numWindows(), 4);
  EXPECT_EQ(wp.window(0), (StepRange{0, 3}));
  EXPECT_EQ(wp.window(3), (StepRange{9, 12}));
}

TEST(WindowPartition, FixedSizeRaggedTail) {
  const auto wp = WindowPartition::fixedSize(10, 4);
  EXPECT_EQ(wp.numWindows(), 3);
  EXPECT_EQ(wp.window(2), (StepRange{8, 10}));
}

TEST(WindowPartition, PerStepAndWhole) {
  const auto per = WindowPartition::perStep(5);
  EXPECT_EQ(per.numWindows(), 5);
  EXPECT_EQ(per.window(4), (StepRange{4, 5}));

  const auto whole = WindowPartition::whole(5);
  EXPECT_EQ(whole.numWindows(), 1);
  EXPECT_EQ(whole.window(0), (StepRange{0, 5}));
}

TEST(WindowPartition, EvenCountCoversAllSteps) {
  for (StepId steps : {1, 2, 7, 8, 9, 100}) {
    for (int count : {1, 2, 3, 8, 16}) {
      const auto wp = WindowPartition::evenCount(steps, count);
      // Windows tile [0, steps) without gaps.
      StepId cursor = 0;
      for (WindowId w = 0; w < wp.numWindows(); ++w) {
        EXPECT_EQ(wp.window(w).begin, cursor);
        EXPECT_GT(wp.window(w).length(), 0);
        cursor = wp.window(w).end;
      }
      EXPECT_EQ(cursor, steps);
      EXPECT_LE(wp.numWindows(), count);
    }
  }
}

TEST(WindowPartition, EvenCountClampsToSteps) {
  const auto wp = WindowPartition::evenCount(3, 10);
  EXPECT_EQ(wp.numWindows(), 3);
}

TEST(WindowPartition, WindowOfLocatesSteps) {
  const auto wp = WindowPartition::fixedSize(10, 3);
  EXPECT_EQ(wp.windowOf(0), 0);
  EXPECT_EQ(wp.windowOf(2), 0);
  EXPECT_EQ(wp.windowOf(3), 1);
  EXPECT_EQ(wp.windowOf(9), 3);
  EXPECT_THROW((void)wp.windowOf(10), std::out_of_range);
  EXPECT_THROW((void)wp.windowOf(-1), std::out_of_range);
}

TEST(WindowPartition, RejectsMalformedStarts) {
  EXPECT_THROW(WindowPartition({1, 2}, 5), std::invalid_argument);  // no 0
  EXPECT_THROW(WindowPartition({0, 3, 3}, 5), std::invalid_argument);
  EXPECT_THROW(WindowPartition({0, 6}, 5), std::invalid_argument);
  EXPECT_THROW(WindowPartition({0}, 0), std::invalid_argument);
}

TEST(WindowPartition, EmptyTraceHasNoWindows) {
  const auto wp = WindowPartition::whole(0);
  EXPECT_EQ(wp.numWindows(), 0);
  EXPECT_EQ(wp.numSteps(), 0);
}

TEST(WindowPartition, WindowOfMatchesRanges) {
  const auto wp = WindowPartition::evenCount(23, 5);
  for (StepId s = 0; s < 23; ++s) {
    const WindowId w = wp.windowOf(s);
    EXPECT_GE(s, wp.window(w).begin);
    EXPECT_LT(s, wp.window(w).end);
  }
}

}  // namespace
}  // namespace pimsched

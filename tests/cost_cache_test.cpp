#include "cost/cost_cache.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "cost/center_costs.hpp"
#include "util/thread_pool.hpp"

namespace pimsched {
namespace {

std::vector<ProcWeight> makeRefs(std::initializer_list<ProcWeight> pws) {
  return {pws};
}

TEST(CenterCostCache, MissComputesHitReuses) {
  const Grid g(4, 4);
  const CostModel model(g);
  CenterCostCache cache(model);
  const std::vector<ProcWeight> refs =
      makeRefs({{0, 3}, {5, 1}, {12, 7}});

  std::vector<Cost> out;
  EXPECT_FALSE(cache.costsInto(refs, out));
  EXPECT_EQ(out, separableCenterCosts(model, refs));
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.size(), 1u);

  std::vector<Cost> again;
  EXPECT_TRUE(cache.costsInto(refs, again));
  EXPECT_EQ(again, out);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(CenterCostCache, DistinctStringsAreDistinctEntries) {
  const Grid g(4, 4);
  const CostModel model(g);
  CenterCostCache cache(model);

  // Same processors, different weights — and a permuted-weight variant
  // whose total weight matches: all must resolve to their own tables.
  const auto a = makeRefs({{1, 2}, {6, 4}});
  const auto b = makeRefs({{1, 4}, {6, 2}});
  const auto c = makeRefs({{1, 2}, {6, 4}, {9, 1}});
  std::vector<Cost> outA, outB, outC;
  cache.costsInto(a, outA);
  cache.costsInto(b, outB);
  cache.costsInto(c, outC);
  EXPECT_EQ(outA, separableCenterCosts(model, a));
  EXPECT_EQ(outB, separableCenterCosts(model, b));
  EXPECT_EQ(outC, separableCenterCosts(model, c));
  EXPECT_EQ(cache.misses(), 3);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(CenterCostCache, CorrectUnderForcedHashCollisions) {
  const Grid g(4, 4);
  const CostModel model(g);
  // hashMask 0 collapses every reference string onto hash 0: all entries
  // collide in one bucket and correctness rests entirely on the full-key
  // comparison.
  CenterCostCache cache(model, /*hashMask=*/0);

  std::vector<std::vector<ProcWeight>> strings;
  for (ProcId p = 0; p < g.size(); ++p) {
    strings.push_back(makeRefs({{p, Cost{1} + p}}));
  }
  std::vector<Cost> out;
  for (const auto& s : strings) {
    EXPECT_FALSE(cache.costsInto(s, out));
    EXPECT_EQ(out, separableCenterCosts(model, s)) << "insert pass";
  }
  EXPECT_EQ(cache.size(), strings.size());
  for (const auto& s : strings) {
    EXPECT_TRUE(cache.costsInto(s, out));
    EXPECT_EQ(out, separableCenterCosts(model, s)) << "hit pass";
  }
  EXPECT_EQ(cache.hits(), static_cast<std::int64_t>(strings.size()));
}

TEST(CenterCostCache, NarrowMaskKeepsAdjacentHashesApart) {
  const Grid g(4, 4);
  const CostModel model(g);
  // A 4-bit mask: plenty of distinct strings share a masked hash, while
  // others differ only in the low bits — "hash-adjacent" keys must still
  // round-trip to their own tables.
  CenterCostCache cache(model, /*hashMask=*/0xF);
  std::vector<Cost> out;
  for (Cost w = 1; w <= 64; ++w) {
    const auto s = makeRefs({{static_cast<ProcId>(w % g.size()), w}});
    cache.costsInto(s, out);
    EXPECT_EQ(out, separableCenterCosts(model, s)) << "w=" << w;
  }
}

TEST(CenterCostCache, ClearResetsEverything) {
  const Grid g(2, 2);
  const CostModel model(g);
  CenterCostCache cache(model);
  std::vector<Cost> out;
  cache.costsInto(makeRefs({{0, 1}}), out);
  cache.costsInto(makeRefs({{0, 1}}), out);
  EXPECT_EQ(cache.size(), 1u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 0);
  EXPECT_FALSE(cache.costsInto(makeRefs({{0, 1}}), out));
}

TEST(CenterCostCache, ThreadSafeUnderConcurrentMixedAccess) {
  const Grid g(4, 4);
  const CostModel model(g);
  CenterCostCache cache(model);

  // 8 distinct strings hammered from concurrent workers; every lookup must
  // return the correct table regardless of who inserted it first.
  std::vector<std::vector<ProcWeight>> strings;
  std::vector<std::vector<Cost>> expected;
  for (int k = 0; k < 8; ++k) {
    strings.push_back(makeRefs({{static_cast<ProcId>(k), Cost{k} + 1},
                                {static_cast<ProcId>(15 - k), 3}}));
    expected.push_back(separableCenterCosts(model, strings.back()));
  }
  parallelFor(512, 0, [&](std::int64_t i) {
    const std::size_t k = static_cast<std::size_t>(i) % strings.size();
    std::vector<Cost> out;
    cache.costsInto(strings[k], out);
    ASSERT_EQ(out, expected[k]);
  });
  EXPECT_EQ(cache.size(), strings.size());
  EXPECT_EQ(cache.hits() + cache.misses(), 512);
}

TEST(ReferenceStringHash, SensitiveToOrderProcAndWeight) {
  const auto a = makeRefs({{1, 2}, {3, 4}});
  const auto b = makeRefs({{3, 4}, {1, 2}});
  const auto c = makeRefs({{1, 4}, {3, 2}});
  const auto d = makeRefs({{1, 2}, {3, 4}, {5, 0}});
  EXPECT_NE(referenceStringHash(a), referenceStringHash(b));
  EXPECT_NE(referenceStringHash(a), referenceStringHash(c));
  EXPECT_NE(referenceStringHash(a), referenceStringHash(d));
  EXPECT_EQ(referenceStringHash(a), referenceStringHash(makeRefs({{1, 2}, {3, 4}})));
}

}  // namespace
}  // namespace pimsched

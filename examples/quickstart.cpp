// Quickstart: schedule the data of a small matrix-square kernel on a 4x4
// PIM array and compare every scheduling scheme the library offers.
//
//   1. describe the machine (Grid) and generate a data reference trace by
//      symbolically executing a kernel (TraceBuilder + emitMatSquare);
//   2. wrap trace + grid + config into an Experiment;
//   3. ask for schedules / costs per Method.

#include <iostream>

#include "core/pipeline.hpp"
#include "kernels/iteration_map.hpp"
#include "kernels/matmul.hpp"
#include "kernels/trace_builder.hpp"
#include "report/table.hpp"

int main() {
  using namespace pimsched;

  // The PIM array: a 4x4 mesh, x-y routing, unit hop cost.
  const Grid grid(4, 4);

  // Symbolically execute C = A * A for an 8x8 matrix. The iteration map
  // decides which processor executes iteration (i, j) — here contiguous
  // 2-D blocks.
  const int n = 8;
  TraceBuilder tb;
  const IterationMap map(grid, n, n, PartitionKind::kBlock2D);
  emitMatSquare(tb, map, n);
  const ReferenceTrace trace = std::move(tb).build();

  std::cout << "trace: " << trace.numSteps() << " steps, "
            << trace.numData() << " data, total reference volume "
            << trace.totalWeight() << "\n\n";

  // One execution window per k-step; per-processor memory = 2x minimum.
  PipelineConfig cfg;
  cfg.numWindows = static_cast<int>(trace.numSteps());
  const Experiment exp(trace, grid, cfg);

  TextTable table({"method", "serve", "move", "total", "vs row-wise %"});
  const Cost sf = exp.evaluate(Method::kRowWise).aggregate.total();
  for (const Method m : {Method::kRowWise, Method::kColWise, Method::kScds,
                         Method::kLomcds, Method::kGroupedLomcds,
                         Method::kGomcds}) {
    const EvalResult r = exp.evaluate(m);
    table.addRow({toString(m), std::to_string(r.aggregate.serve),
                  std::to_string(r.aggregate.move),
                  std::to_string(r.aggregate.total()),
                  formatFixed(improvementPct(sf, r.aggregate.total()), 1)});
  }
  table.print(std::cout);

  // Individual placements are available too: where does datum C[0][0]
  // live in each window under GOMCDS?
  const DataSchedule s = exp.schedule(Method::kGomcds);
  const DataId c00 = trace.dataSpace().id(1, 0, 0);  // array 1 == "C"
  std::cout << "\nGOMCDS centers of C[0][0] per window:";
  for (WindowId w = 0; w < exp.refs().numWindows(); ++w) {
    const Coord c = grid.coord(s.center(c00, w));
    std::cout << " (" << c.row << "," << c.col << ")";
  }
  std::cout << '\n';
  return 0;
}

// Full-system walkthrough: every stage of the library composed end to
// end, the way a compiler + runtime would use it.
//
//   kernel          -> reference trace          (kernels/)
//   stage 1         -> processor remapping      (core/placement_opt)
//   windows         -> adaptive boundaries      (core/adaptive_window)
//   stage 2         -> GOMCDS data scheduling   (core/gomcds)
//   check           -> verification             (core/verify)
//   deploy artifact -> schedule file            (core/schedule_io)
//   what-if         -> NoC replay + exec time   (sim/)

#include <iostream>

#include "core/adaptive_window.hpp"
#include "core/pipeline.hpp"
#include "core/placement_opt.hpp"
#include "core/schedule_io.hpp"
#include "core/verify.hpp"
#include "report/table.hpp"
#include "kernels/extra_kernels.hpp"
#include "sim/execution_model.hpp"
#include "trace/remap.hpp"

int main() {
  using namespace pimsched;
  const Grid grid(4, 4);
  const int n = 16;

  // 1. Symbolically execute the kernel (Cholesky here) under a block
  //    partition whose processor labels were assigned carelessly — the
  //    kind of layout a naive code generator produces.
  TraceBuilder tb;
  const IterationMap map(grid, n, n, PartitionKind::kBlock2D);
  emitCholesky(tb, map, n);
  ReferenceTrace trace = std::move(tb).build();
  std::vector<ProcId> careless(static_cast<std::size_t>(grid.size()));
  for (ProcId p = 0; p < grid.size(); ++p) {
    careless[static_cast<std::size_t>(p)] =
        static_cast<ProcId>((p * 7 + 3) % grid.size());
  }
  trace = applyProcPermutation(trace, careless);
  std::cout << "1. trace: " << trace.numSteps() << " steps, "
            << trace.numData() << " data, volume " << trace.totalWeight()
            << "\n";

  // 2. Stage-1 repair: processor remapping on dispersion.
  {
    const WindowedRefs coarse(
        trace, WindowPartition::evenCount(trace.numSteps(), 8), grid);
    const CostModel model(grid);
    const PlacementOptResult opt = optimizeProcPlacement(coarse, model);
    std::cout << "2. remap: dispersion " << opt.before << " -> "
              << opt.after << " (" << opt.swapsApplied << " swaps)\n";
    trace = applyProcPermutation(trace, opt.perm);
  }

  // 3. Execution windows from the trace's own phase structure.
  PipelineConfig cfg;
  cfg.explicitWindows = adaptiveWindows(trace, grid);
  const Experiment exp(trace, grid, cfg);
  std::cout << "3. windows: " << exp.refs().numWindows()
            << " adaptive windows over " << trace.numSteps() << " steps\n";

  // 4. Stage-2 data scheduling.
  const DataSchedule schedule = exp.schedule(Method::kGomcds);
  const EvalResult cost =
      evaluateSchedule(schedule, exp.refs(), exp.costModel());
  const Cost baseline = exp.evaluate(Method::kRowWise).aggregate.total();
  std::cout << "4. GOMCDS: " << cost.aggregate.total() << " vs row-wise "
            << baseline << " ("
            << formatFixed(improvementPct(baseline, cost.aggregate.total()),
                           1)
            << "% better)\n";

  // 5. Verify before deploying.
  const VerifyReport verify =
      verifySchedule(schedule, grid, exp.capacity());
  std::cout << "5. verify: "
            << (verify.ok() ? "clean"
                            : std::to_string(verify.issues.size()) +
                                  " issues")
            << "\n";

  // 6. Export the deployable artifact.
  const std::string path = "/tmp/pimsched_full_system.schedule";
  saveScheduleFile(schedule, path);
  std::cout << "6. export: " << path << "\n";

  // 7. What the machine would actually do.
  ExecutionParams params;
  params.switching = SwitchingMode::kCutThrough;
  const ExecutionReport exec = estimateExecutionTime(
      schedule, exp.refs(), exp.costModel(), params);
  const ExecutionReport execSf = estimateExecutionTime(
      exp.schedule(Method::kRowWise), exp.refs(), exp.costModel(), params);
  std::cout << "7. execution time: " << exec.totalTime << " cycles vs "
            << execSf.totalTime << " (compute " << exec.computeTime
            << " + comm " << exec.commTime << ")\n";
  return verify.ok() ? 0 : 1;
}

// pimsched_served — the persistent scheduling daemon. Wraps one
// SchedulingService (bounded priority queue + content-addressed result
// cache over the shared thread pool) behind the NDJSON-over-Unix-socket
// protocol, so repeated schedule requests reuse warm state instead of
// paying a full pimsched_cli process start per trace. See docs/serving.md.
//
//   pimsched_served --socket PATH [options]
//     --queue N           queued-job bound; submissions past it are
//                         rejected with a reason        (default 64)
//     --concurrency N     jobs run at once on the shared pool (default 2)
//     --cache-entries N   result-cache entry bound      (default 1024)
//     --no-cache          disable the result cache
//     --max-frame BYTES   per-request frame size bound  (default 4 MiB)
//     --no-trace-files    reject trace_file submissions (inline only)
//
// SIGTERM / SIGINT (or a client `shutdown` verb) drain gracefully: every
// accepted job finishes, waiting clients get their replies, and the
// daemon exits 0. Exit code 1 on runtime failure, 2 on bad usage.

#include <csignal>
#include <cstring>
#include <iostream>
#include <string>

#include "serve/server.hpp"

namespace {

pimsched::serve::SocketServer* gServer = nullptr;

void onSignal(int) {
  if (gServer != nullptr) gServer->requestStop();  // one atomic store
}

void printUsage(std::ostream& os) {
  os << "usage: pimsched_served --socket PATH [--queue N] "
        "[--concurrency N]\n"
        "       [--cache-entries N] [--no-cache] [--max-frame BYTES] "
        "[--no-trace-files]\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pimsched::serve;

  SchedulingService::Config serviceConfig;
  SocketServer::Options serverOptions;
  std::string parseError;

  for (int i = 1; i < argc && parseError.empty(); ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        parseError = "missing value for " + arg;
        return "";
      }
      return argv[++i];
    };
    try {
      if (arg == "--socket") {
        serverOptions.socketPath = value();
      } else if (arg == "--queue") {
        serviceConfig.maxQueueDepth = std::stoul(value());
      } else if (arg == "--concurrency") {
        serviceConfig.concurrency =
            static_cast<unsigned>(std::stoul(value()));
      } else if (arg == "--cache-entries") {
        serviceConfig.maxCacheEntries = std::stoul(value());
      } else if (arg == "--no-cache") {
        serviceConfig.cacheEnabled = false;
      } else if (arg == "--max-frame") {
        serverOptions.protocol.maxFrameBytes = std::stoul(value());
      } else if (arg == "--no-trace-files") {
        serverOptions.protocol.allowTraceFiles = false;
      } else {
        parseError = "unknown option " + arg;
      }
    } catch (const std::exception&) {
      parseError = "invalid value for " + arg;
    }
  }
  if (parseError.empty() && serverOptions.socketPath.empty()) {
    parseError = "missing --socket PATH";
  }
  if (!parseError.empty()) {
    std::cerr << "error: " << parseError << "\n\n";
    printUsage(std::cerr);
    return 2;
  }

  try {
    pimsched::serve::SchedulingService service(serviceConfig);
    pimsched::serve::SocketServer server(service, serverOptions);
    server.start();

    gServer = &server;
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);

    std::cout << "pimsched_served listening on " << server.socketPath()
              << " (queue " << serviceConfig.maxQueueDepth
              << ", concurrency " << serviceConfig.concurrency << ", cache "
              << (serviceConfig.cacheEnabled
                      ? std::to_string(serviceConfig.maxCacheEntries) +
                            " entries"
                      : std::string("off"))
              << ")" << std::endl;
    const int rc = server.run();
    gServer = nullptr;
    std::cout << "pimsched_served drained, exiting" << std::endl;
    return rc;
  } catch (const std::exception& e) {
    gServer = nullptr;
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}

// pimsched_served — the persistent scheduling daemon. Wraps a sharded
// pool of scheduling services (bounded priority queues + content-addressed
// LRU result caches over the shared thread pool, jobs routed to shards by
// consistent hash of their content digest) behind the NDJSON protocol on a
// Unix socket and/or a TCP listener, so repeated schedule requests reuse
// warm state instead of paying a full pimsched_cli process start per
// trace. See docs/serving.md.
//
//   pimsched_served [--socket PATH] [--tcp [HOST:]PORT] [options]
//     --socket PATH       Unix socket to listen on
//     --tcp [HOST:]PORT   TCP endpoint (default host 127.0.0.1; port 0
//                         binds an ephemeral port, printed on startup)
//     --shards N          worker shards; identical jobs always land on
//                         the same shard               (default 4)
//     --io-threads N      connection-handler pool size (default 8)
//     --queue N           queued-job bound per shard; submissions past it
//                         are rejected with a reason   (default 64)
//     --concurrency N     jobs run at once per shard   (default 2)
//     --cache-entries N   result-cache entries per shard (default 1024)
//     --no-cache          disable the result cache
//     --max-frame BYTES   per-request frame size bound (default 4 MiB)
//     --no-trace-files    reject trace_file submissions (inline only)
//
// Fleet mode (mutually exclusive with --shards) serves a set of PIM
// arrays with tenant-aware fair admission — see docs/fleet.md:
//     --fleet SPEC        fleet topology: ';'-separated
//                         [NAME=]RxC[:FAULT[+FAULT...]] entries
//     --fleet-policy P    array selector: cost | roundrobin | leastloaded
//                         (default cost; PIMSCHED_FLEET_POLICY overrides)
//     --tenant-weight T=W fair-share weight of tenant T (repeatable;
//                         unlisted tenants get weight 1)
//     --tenant-quota N    queued jobs allowed per tenant   (default 64)
//     --aging-ms MS       one priority level gained per MS queued
//                         (default 1000; 0 disables aging)
//     --aging-limit N     aging boost cap in levels        (default 8)
//     --drain-threshold N batch jobs start while the serve backlog is
//                         <= N                             (default 0)
//     --health-cooldown-ms MS
//                         a quarantined array is re-admitted only after
//                         MS of quiet with acceptable facts (default
//                         2000; hysteresis against flapping arrays)
//     --no-fault-inject   reject the fault-inject / heal admin verbs
// In fleet mode --queue bounds the fleet-wide queue and --concurrency is
// per array. Live fault drift: the fault-inject and heal verbs change an
// array's fault state at runtime; the fleet migrates queued work,
// reconciles in-flight results and invalidates stale cache entries — see
// docs/fault-tolerance.md.
//
// At least one of --socket / --tcp is required; both may be given, and
// the two endpoints serve the same shard pool (a job submitted over TCP
// is cache-hit and coalesce-visible to Unix-socket clients and vice
// versa).
//
// SIGTERM / SIGINT (or a client `shutdown` verb) drain gracefully: every
// accepted job finishes, waiting clients get their replies, and the
// daemon exits 0. Exit code 1 on runtime failure, 2 on bad usage.

#include <csignal>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "fleet/fleet_service.hpp"
#include "serve/server.hpp"
#include "serve/sharded.hpp"

namespace {

pimsched::serve::SocketServer* gServer = nullptr;

void onSignal(int) {
  if (gServer != nullptr) gServer->requestStop();  // one atomic store
}

void printUsage(std::ostream& os) {
  os << "usage: pimsched_served [--socket PATH] [--tcp [HOST:]PORT]\n"
        "       [--shards N] [--io-threads N] [--queue N] "
        "[--concurrency N]\n"
        "       [--cache-entries N] [--no-cache] [--max-frame BYTES] "
        "[--no-trace-files]\n"
        "       [--fleet SPEC] [--fleet-policy cost|roundrobin|leastloaded]\n"
        "       [--tenant-weight T=W]... [--tenant-quota N] [--aging-ms MS]\n"
        "       [--aging-limit N] [--drain-threshold N]\n"
        "       [--health-cooldown-ms MS] [--no-fault-inject]\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pimsched::serve;

  ShardedService::Config serviceConfig;
  pimsched::fleet::FleetService::Config fleetConfig;
  std::string fleetSpec;
  bool shardsGiven = false;
  bool queueGiven = false;
  bool concurrencyGiven = false;
  SocketServer::Options serverOptions;
  std::string parseError;

  for (int i = 1; i < argc && parseError.empty(); ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        parseError = "missing value for " + arg;
        return "";
      }
      return argv[++i];
    };
    try {
      if (arg == "--socket") {
        serverOptions.socketPath = value();
      } else if (arg == "--tcp") {
        const std::string endpoint = value();
        const auto colon = endpoint.rfind(':');
        if (colon == std::string::npos) {
          serverOptions.tcpPort = std::stoi(endpoint);
        } else {
          serverOptions.tcpBindAddress = endpoint.substr(0, colon);
          serverOptions.tcpPort = std::stoi(endpoint.substr(colon + 1));
        }
        if (serverOptions.tcpPort < 0 || serverOptions.tcpPort > 65535) {
          parseError = "TCP port out of range";
        }
      } else if (arg == "--shards") {
        serviceConfig.shards = static_cast<unsigned>(std::stoul(value()));
        if (serviceConfig.shards == 0) serviceConfig.shards = 1;
        shardsGiven = true;
      } else if (arg == "--io-threads") {
        serverOptions.ioThreads =
            static_cast<unsigned>(std::stoul(value()));
      } else if (arg == "--queue") {
        serviceConfig.shard.maxQueueDepth = std::stoul(value());
        queueGiven = true;
      } else if (arg == "--concurrency") {
        serviceConfig.shard.concurrency =
            static_cast<unsigned>(std::stoul(value()));
        concurrencyGiven = true;
      } else if (arg == "--cache-entries") {
        serviceConfig.shard.maxCacheEntries = std::stoul(value());
        fleetConfig.maxCacheEntries = serviceConfig.shard.maxCacheEntries;
      } else if (arg == "--no-cache") {
        serviceConfig.shard.cacheEnabled = false;
        fleetConfig.cacheEnabled = false;
      } else if (arg == "--fleet") {
        fleetSpec = value();
      } else if (arg == "--fleet-policy") {
        const std::string name = value();
        const auto policy = pimsched::fleet::fleetPolicyFromString(name);
        if (policy.has_value()) {
          fleetConfig.policy = *policy;
        } else {
          parseError = "unknown fleet policy '" + name + "'";
        }
      } else if (arg == "--tenant-weight") {
        const std::string pair = value();
        const std::size_t eq = pair.rfind('=');
        double weight = 0;
        if (eq != std::string::npos && eq > 0) {
          weight = std::stod(pair.substr(eq + 1));
        }
        if (weight > 0) {
          fleetConfig.tenantWeights[pair.substr(0, eq)] = weight;
        } else {
          parseError = "--tenant-weight expects NAME=W with W > 0";
        }
      } else if (arg == "--tenant-quota") {
        fleetConfig.tenantQueueDepth = std::stoul(value());
      } else if (arg == "--aging-ms") {
        fleetConfig.agingMs = std::stoll(value());
      } else if (arg == "--aging-limit") {
        fleetConfig.agingLimit = std::stoi(value());
      } else if (arg == "--drain-threshold") {
        fleetConfig.drainThreshold = std::stoul(value());
      } else if (arg == "--health-cooldown-ms") {
        fleetConfig.health.cooldownNs = std::stoll(value()) * 1'000'000;
      } else if (arg == "--max-frame") {
        serverOptions.protocol.maxFrameBytes = std::stoul(value());
      } else if (arg == "--no-trace-files") {
        serverOptions.protocol.allowTraceFiles = false;
      } else if (arg == "--no-fault-inject") {
        serverOptions.protocol.allowFaultInject = false;
      } else {
        parseError = "unknown option " + arg;
      }
    } catch (const std::exception&) {
      parseError = "invalid value for " + arg;
    }
  }
  if (parseError.empty() && serverOptions.socketPath.empty() &&
      serverOptions.tcpPort < 0) {
    parseError = "need at least one of --socket PATH / --tcp PORT";
  }
  if (parseError.empty() && !fleetSpec.empty() && shardsGiven) {
    parseError = "--fleet and --shards are mutually exclusive";
  }
  if (!parseError.empty()) {
    std::cerr << "error: " << parseError << "\n\n";
    printUsage(std::cerr);
    return 2;
  }

  try {
    std::unique_ptr<JobService> service;
    if (fleetSpec.empty()) {
      service = std::make_unique<ShardedService>(serviceConfig);
    } else {
      fleetConfig.arrays = pimsched::fleet::parseFleetSpec(fleetSpec);
      // --queue / --concurrency carry their sharded meanings over:
      // fleet-wide queue bound, jobs in flight per array.
      if (queueGiven) {
        fleetConfig.maxQueueDepth = serviceConfig.shard.maxQueueDepth;
      }
      if (concurrencyGiven) {
        fleetConfig.concurrencyPerArray = serviceConfig.shard.concurrency;
      }
      service = std::make_unique<pimsched::fleet::FleetService>(
          std::move(fleetConfig));
    }
    SocketServer server(*service, serverOptions);
    server.start();

    gServer = &server;
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);

    std::cout << "pimsched_served listening on";
    if (!server.socketPath().empty()) {
      std::cout << " " << server.socketPath();
    }
    if (server.tcpPort() >= 0) {
      std::cout << (server.socketPath().empty() ? " " : " and ")
                << "tcp:" << serverOptions.tcpBindAddress << ":"
                << server.tcpPort();
    }
    if (const auto* fleetService =
            dynamic_cast<const pimsched::fleet::FleetService*>(
                service.get())) {
      std::cout << " (fleet of " << fleetService->fleet().size()
                << " arrays, policy "
                << pimsched::fleet::toString(fleetService->policy()) << ")"
                << std::endl;
    } else {
      std::cout << " (shards " << service->stats().shards << ", queue "
                << serviceConfig.shard.maxQueueDepth
                << "/shard, concurrency "
                << serviceConfig.shard.concurrency << "/shard, cache "
                << (serviceConfig.shard.cacheEnabled
                        ? std::to_string(
                              serviceConfig.shard.maxCacheEntries) +
                              " entries/shard"
                        : std::string("off"))
                << ")" << std::endl;
    }
    const int rc = server.run();
    gServer = nullptr;
    std::cout << "pimsched_served drained, exiting" << std::endl;
    return rc;
  } catch (const std::exception& e) {
    gServer = nullptr;
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}

// pimsched_submit — command-line client for the pimsched_served daemon.
// Builds one NDJSON request, sends it over the daemon's Unix socket or
// TCP endpoint, prints the daemon's JSON reply on stdout and exits 0 when
// the reply says ok.
//
//   pimsched_submit (--socket PATH | --tcp HOST:PORT)
//                   [--retries N] [--backoff MS] VERB [args]
//     submit TRACE_FILE [--grid RxC] [--method NAME] [--windows N]
//                       [--capacity N|paper|unlimited] [--threads N]
//                       [--priority N] [--deadline-ms N] [--fault SPEC]...
//                       [--tenant NAME] [--batch]
//                       [--wait] [--schedule] [--inline]
//         --tenant    submit as this tenant (fleet daemons apply weighted
//                     fair shares and per-tenant quotas; see docs/fleet.md)
//         --batch     mark as bulk work: a fleet daemon only starts it
//                     while the latency-sensitive backlog is drained
//         --fault     add one fault spec (proc:P, link:A-B, row:R, col:C,
//                     region:R0,C0,R1,C1, cap:P=N, uniform-procs:N@SEED,
//                     uniform-links:N@SEED); repeatable
//         --wait      block until the job finishes and include its result
//         --schedule  include the scheduled placements in the reply
//         --inline    send the trace text inline instead of a server-side
//                     path (required when the daemon runs elsewhere or
//                     with --no-trace-files)
//     status ID
//     result ID [--no-wait] [--schedule]
//     cancel ID
//     stats
//     shutdown
//     inject ARRAY --fault SPEC [--fault SPEC]...
//         live fault drift: injects the specs into the named array of a
//         fleet daemon (wire verb "fault-inject"; "--inject" also
//         accepted). The daemon migrates queued work, reconciles in-
//         flight results and invalidates stale cache entries atomically.
//     heal ARRAY
//         rebuilds the named array from its boot spec, clearing every
//         injected fault ("--heal" also accepted)
//     stream FILE --session NAME [--grid RxC] [--method NAME]
//                 [--windows N] [--capacity N|paper|unlimited]
//                 [--threads N] [--fault SPEC]... [--tenant NAME]
//                 [--schedule] [--close]
//         replays an NDJSON window file over ONE persistent connection
//         using the submit-stream verb ("--stream" also accepted): each
//         line of FILE is a JSON object holding this window's "trace"
//         (inline pimtrace text) or "trace_file" (server-side path), plus
//         optional per-window overrides of any submit field. Session-level
//         options from the command line form the base request each line is
//         merged over. One reply is printed per window; --close sends
//         stream-close at the end. Exits 0 only when every reply was ok.
//
// --retries N retries transport failures (connect/read/write, e.g. the
// daemon is still starting) up to N times with exponential backoff
// starting at --backoff MS (default 100), with deterministic per-attempt
// jitter. Error replies from the daemon are never retried — the daemon
// already owns job-level retry.
//
// Exit codes: 0 = ok reply, 1 = error reply or transport failure,
// 2 = bad usage.

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "serve/json.hpp"

namespace {

using pimsched::serve::Json;

void printUsage(std::ostream& os) {
  os << "usage: pimsched_submit (--socket PATH | --tcp HOST:PORT)\n"
        "       [--retries N] [--backoff MS] VERB [args]\n"
        "  submit TRACE_FILE [--grid RxC] [--method NAME] [--windows N]\n"
        "         [--capacity N|paper|unlimited] [--threads N] "
        "[--priority N]\n"
        "         [--deadline-ms N] [--fault SPEC]... [--tenant NAME] "
        "[--batch]\n"
        "         [--wait] [--schedule] [--inline]\n"
        "  status ID | result ID [--no-wait] [--schedule] | cancel ID\n"
        "  stats | shutdown\n"
        "  inject ARRAY --fault SPEC [--fault SPEC]... | heal ARRAY\n"
        "  stream FILE --session NAME [--grid RxC] [--method NAME]\n"
        "         [--windows N] [--capacity N|paper|unlimited] "
        "[--threads N]\n"
        "         [--fault SPEC]... [--tenant NAME] [--schedule] "
        "[--close]\n";
}

/// Where to reach the daemon: a Unix socket path or a TCP host:port.
struct Endpoint {
  std::string socketPath;  ///< non-empty for AF_UNIX
  std::string tcpHost;     ///< non-empty for TCP
  int tcpPort = -1;
};

int connectUnix(const std::string& socketPath) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socketPath.empty() || socketPath.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path empty or too long: " + socketPath);
  }
  std::memcpy(addr.sun_path, socketPath.c_str(), socketPath.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("socket(): ") +
                             std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string what = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("cannot connect to " + socketPath + ": " +
                             what);
  }
  return fd;
}

int connectTcp(const std::string& host, int port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* list = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &list);
  if (rc != 0) {
    throw std::runtime_error("cannot resolve " + host + ": " +
                             ::gai_strerror(rc));
  }
  int fd = -1;
  std::string what = "no addresses";
  for (const addrinfo* ai = list; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                  ai->ai_protocol);
    if (fd < 0) {
      what = std::strerror(errno);
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    what = std::strerror(errno);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(list);
  if (fd < 0) {
    throw std::runtime_error("cannot connect to " + host + ":" +
                             std::to_string(port) + ": " + what);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// One round-trip: connect, send `request` + newline, read one reply line.
std::string roundTrip(const Endpoint& endpoint,
                      const std::string& request) {
  const int fd = endpoint.socketPath.empty()
                     ? connectTcp(endpoint.tcpHost, endpoint.tcpPort)
                     : connectUnix(endpoint.socketPath);

  const std::string frame = request + "\n";
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::write(fd, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string what = std::strerror(errno);
      ::close(fd);
      throw std::runtime_error("write failed: " + what);
    }
    off += static_cast<std::size_t>(n);
  }

  std::string reply;
  char chunk[4096];
  while (reply.find('\n') == std::string::npos) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string what = std::strerror(errno);
      ::close(fd);
      throw std::runtime_error("read failed: " + what);
    }
    if (n == 0) break;  // daemon closed without a full line
    reply.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t nl = reply.find('\n');
  if (nl == std::string::npos && reply.empty()) {
    throw std::runtime_error("daemon closed the connection without a reply");
  }
  return nl == std::string::npos ? reply : reply.substr(0, nl);
}

/// Sends one already-framed line over an open connection.
void sendLine(int fd, const std::string& request) {
  const std::string frame = request + "\n";
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::write(fd, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("write failed: ") +
                               std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

/// Reads the next reply line from an open connection, buffering any bytes
/// of the following reply in `buffer` between calls.
std::string readLine(int fd, std::string& buffer) {
  char chunk[4096];
  std::size_t nl;
  while ((nl = buffer.find('\n')) == std::string::npos) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("read failed: ") +
                               std::strerror(errno));
    }
    if (n == 0) {
      throw std::runtime_error("daemon closed the connection mid-stream");
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  std::string line = buffer.substr(0, nl);
  buffer.erase(0, nl + 1);
  return line;
}

/// The `stream` verb: replays an NDJSON window file over one persistent
/// connection. Throws std::invalid_argument on usage errors (exit 2);
/// returns the process exit code otherwise.
int runStream(const Endpoint& endpoint, int argc, char** argv, int i) {
  if (i >= argc || argv[i][0] == '-') {
    throw std::invalid_argument("stream needs a window FILE");
  }
  const std::string windowFile = argv[i++];

  Json base;
  base.set("verb", "submit-stream");
  Json::Array faults;
  std::string session;
  bool closeAtEnd = false;
  const auto needValue = [&](const std::string& arg) -> std::string {
    if (i + 1 >= argc) {
      throw std::invalid_argument("missing value for " + arg);
    }
    return argv[++i];
  };
  const auto parseInt = [](const std::string& arg,
                           const std::string& v) -> std::int64_t {
    try {
      std::size_t parsed = 0;
      const std::int64_t out = std::stoll(v, &parsed);
      if (parsed != v.size()) throw std::invalid_argument(v);
      return out;
    } catch (const std::exception&) {
      throw std::invalid_argument("invalid integer for " + arg);
    }
  };
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--session") session = needValue(arg);
    else if (arg == "--grid") base.set("grid", needValue(arg));
    else if (arg == "--method") base.set("method", needValue(arg));
    else if (arg == "--windows") {
      base.set("windows", parseInt(arg, needValue(arg)));
    } else if (arg == "--capacity") {
      const std::string v = needValue(arg);
      if (v == "paper" || v == "unlimited") base.set("capacity", v);
      else base.set("capacity", parseInt(arg, v));
    } else if (arg == "--threads") {
      base.set("threads", parseInt(arg, needValue(arg)));
    } else if (arg == "--tenant") {
      base.set("tenant", needValue(arg));
    } else if (arg == "--fault") {
      faults.push_back(Json(needValue(arg)));
    } else if (arg == "--schedule") {
      base.set("schedule", true);
    } else if (arg == "--close") {
      closeAtEnd = true;
    } else {
      throw std::invalid_argument("unknown option " + arg);
    }
  }
  if (session.empty()) {
    throw std::invalid_argument("stream needs --session NAME");
  }
  base.set("session", session);
  if (!faults.empty()) base.set("faults", Json(std::move(faults)));

  std::ifstream is(windowFile);
  if (!is) {
    std::cerr << "error: cannot open window file " << windowFile << '\n';
    return 1;
  }

  // One connection for the whole replay: windows of a session must run
  // back to back against the shard/array holding the warm solver state.
  const int fd = endpoint.socketPath.empty()
                     ? connectTcp(endpoint.tcpHost, endpoint.tcpPort)
                     : connectUnix(endpoint.socketPath);
  bool allOk = true;
  std::string buffer;
  std::string line;
  long lineNo = 0;
  try {
    while (std::getline(is, line)) {
      ++lineNo;
      if (line.empty()) continue;
      Json window;
      try {
        window = Json::parse(line);
      } catch (const std::exception& e) {
        std::cerr << "error: " << windowFile << ":" << lineNo
                  << ": bad JSON: " << e.what() << '\n';
        ::close(fd);
        return 1;
      }
      if (!window.isObject()) {
        std::cerr << "error: " << windowFile << ":" << lineNo
                  << ": window must be a JSON object\n";
        ::close(fd);
        return 1;
      }
      // Per-window fields override the session-level base request.
      Json request = base;
      for (const auto& [key, value] : window.asObject()) {
        request.set(key, value);
      }
      sendLine(fd, request.dump());
      const std::string reply = readLine(fd, buffer);
      std::cout << reply << '\n';
      const Json parsed = Json::parse(reply);
      const Json* ok = parsed.find("ok");
      if (ok == nullptr || !ok->isBool() || !ok->asBool()) allOk = false;
    }
    if (closeAtEnd) {
      Json closeReq;
      closeReq.set("verb", "stream-close").set("session", session);
      sendLine(fd, closeReq.dump());
      const std::string reply = readLine(fd, buffer);
      std::cout << reply << '\n';
      const Json parsed = Json::parse(reply);
      const Json* ok = parsed.find("ok");
      if (ok == nullptr || !ok->isBool() || !ok->asBool()) allOk = false;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    ::close(fd);
    return 1;
  }
  ::close(fd);
  return allOk ? 0 : 1;
}

/// Builds the request object from the verb-specific arguments; throws
/// std::invalid_argument on usage errors.
Json buildRequest(const std::string& verb, int argc, char** argv, int i) {
  const auto needValue = [&](const std::string& arg) -> std::string {
    if (i + 1 >= argc) {
      throw std::invalid_argument("missing value for " + arg);
    }
    return argv[++i];
  };
  const auto parseInt = [](const std::string& arg,
                           const std::string& v) -> std::int64_t {
    try {
      std::size_t parsed = 0;
      const std::int64_t out = std::stoll(v, &parsed);
      if (parsed != v.size()) throw std::invalid_argument(v);
      return out;
    } catch (const std::exception&) {
      throw std::invalid_argument("invalid integer for " + arg);
    }
  };

  Json request;
  request.set("verb", verb);

  if (verb == "submit") {
    if (i >= argc) throw std::invalid_argument("submit needs a TRACE_FILE");
    const std::string traceFile = argv[i++];
    bool inlineTrace = false;
    Json::Array faults;
    for (; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--grid") request.set("grid", needValue(arg));
      else if (arg == "--method") request.set("method", needValue(arg));
      else if (arg == "--windows") {
        request.set("windows", parseInt(arg, needValue(arg)));
      } else if (arg == "--capacity") {
        const std::string v = needValue(arg);
        if (v == "paper" || v == "unlimited") request.set("capacity", v);
        else request.set("capacity", parseInt(arg, v));
      } else if (arg == "--threads") {
        request.set("threads", parseInt(arg, needValue(arg)));
      } else if (arg == "--priority") {
        request.set("priority", parseInt(arg, needValue(arg)));
      } else if (arg == "--deadline-ms") {
        request.set("deadline_ms", parseInt(arg, needValue(arg)));
      } else if (arg == "--tenant") {
        request.set("tenant", needValue(arg));
      } else if (arg == "--batch") {
        request.set("batch", true);
      } else if (arg == "--fault") {
        faults.push_back(Json(needValue(arg)));
      } else if (arg == "--wait") {
        request.set("wait", true);
      } else if (arg == "--schedule") {
        request.set("schedule", true);
      } else if (arg == "--inline") {
        inlineTrace = true;
      } else {
        throw std::invalid_argument("unknown option " + arg);
      }
    }
    if (!faults.empty()) request.set("faults", Json(std::move(faults)));
    if (inlineTrace) {
      std::ifstream is(traceFile);
      if (!is) {
        throw std::runtime_error("cannot open trace file " + traceFile);
      }
      std::ostringstream text;
      text << is.rdbuf();
      request.set("trace", std::move(text).str());
    } else {
      request.set("trace_file", traceFile);
    }
    return request;
  }

  if (verb == "status" || verb == "result" || verb == "cancel") {
    if (i >= argc) throw std::invalid_argument(verb + " needs a job ID");
    request.set("id", parseInt("ID", argv[i++]));
    for (; i < argc; ++i) {
      const std::string arg = argv[i];
      if (verb == "result" && arg == "--no-wait") request.set("wait", false);
      else if (verb == "result" && arg == "--schedule") {
        request.set("schedule", true);
      } else {
        throw std::invalid_argument("unknown option " + arg);
      }
    }
    return request;
  }

  if (verb == "stats" || verb == "shutdown") {
    if (i < argc) {
      throw std::invalid_argument(verb + " takes no arguments");
    }
    return request;
  }

  if (verb == "fault-inject" || verb == "heal") {
    if (i >= argc) {
      throw std::invalid_argument(verb + " needs an ARRAY name");
    }
    request.set("array", std::string(argv[i++]));
    Json::Array faults;
    for (; i < argc; ++i) {
      const std::string arg = argv[i];
      if (verb == "fault-inject" && arg == "--fault") {
        faults.push_back(Json(needValue(arg)));
      } else {
        throw std::invalid_argument("unknown option " + arg);
      }
    }
    if (verb == "fault-inject") {
      if (faults.empty()) {
        throw std::invalid_argument(
            "fault-inject needs at least one --fault SPEC");
      }
      request.set("faults", Json(std::move(faults)));
    }
    return request;
  }

  throw std::invalid_argument("unknown verb '" + verb + "'");
}

}  // namespace

int main(int argc, char** argv) {
  Endpoint endpoint;
  long retries = 0;
  long backoffMs = 100;
  bool endpointError = false;
  int i = 1;
  while (i + 1 < argc) {
    const std::string arg = argv[i];
    if (arg == "--socket") {
      endpoint.socketPath = argv[i + 1];
    } else if (arg == "--tcp") {
      const std::string ep = argv[i + 1];
      const auto colon = ep.rfind(':');
      if (colon == std::string::npos || colon == 0) {
        endpointError = true;
      } else {
        endpoint.tcpHost = ep.substr(0, colon);
        endpoint.tcpPort =
            static_cast<int>(std::strtol(ep.c_str() + colon + 1, nullptr,
                                         10));
        if (endpoint.tcpPort <= 0 || endpoint.tcpPort > 65535) {
          endpointError = true;
        }
      }
    } else if (arg == "--retries") {
      retries = std::strtol(argv[i + 1], nullptr, 10);
    } else if (arg == "--backoff") {
      backoffMs = std::strtol(argv[i + 1], nullptr, 10);
    } else {
      break;
    }
    i += 2;
  }
  const bool haveEndpoint =
      !endpoint.socketPath.empty() || endpoint.tcpPort > 0;
  if (endpointError || !haveEndpoint || i >= argc || retries < 0 ||
      backoffMs < 0) {
    std::cerr << "error: expected --socket PATH or --tcp HOST:PORT and a "
                 "verb\n\n";
    printUsage(std::cerr);
    return 2;
  }
  std::string verb = argv[i++];
  // CLI conveniences for the drift verbs: `inject` and the flag-style
  // spellings map onto the wire verbs.
  if (verb == "inject" || verb == "--inject") verb = "fault-inject";
  if (verb == "--heal") verb = "heal";

  // Streaming replays a whole file of windows over one connection, so it
  // bypasses the single-request round-trip (and its retry loop: retrying
  // mid-session would replay windows against already-advanced warm state).
  if (verb == "stream" || verb == "--stream") {
    try {
      return runStream(endpoint, argc, argv, i);
    } catch (const std::invalid_argument& e) {
      std::cerr << "error: " << e.what() << "\n\n";
      printUsage(std::cerr);
      return 2;
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << '\n';
      return 1;
    }
  }

  Json request;
  try {
    request = buildRequest(verb, argc, argv, i);
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n\n";
    printUsage(std::cerr);
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }

  // Transport retry with exponential backoff. Jitter is deterministic in
  // the attempt number and pid so concurrent clients still de-synchronise
  // without any wall-clock or PRNG dependency.
  const std::string wire = request.dump();
  for (long attempt = 0;; ++attempt) {
    try {
      const std::string reply = roundTrip(endpoint, wire);
      std::cout << reply << '\n';
      const Json parsed = Json::parse(reply);
      const Json* ok = parsed.find("ok");
      return (ok != nullptr && ok->isBool() && ok->asBool()) ? 0 : 1;
    } catch (const std::exception& e) {
      if (attempt >= retries) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
      }
      std::uint64_t state =
          (static_cast<std::uint64_t>(::getpid()) << 16) ^
          static_cast<std::uint64_t>(attempt + 1);
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      const long base = backoffMs << attempt;             // 1x, 2x, 4x, ...
      const long jitter =
          base > 0 ? static_cast<long>((state >> 33) %
                                       static_cast<std::uint64_t>(base + 1))
                   : 0;
      const long delayMs = base + jitter / 2;  // [base, 1.5 * base]
      std::cerr << "warn: " << e.what() << " (retry " << (attempt + 1)
                << "/" << retries << " in " << delayMs << " ms)\n";
      std::this_thread::sleep_for(std::chrono::milliseconds(delayMs));
    }
  }
}

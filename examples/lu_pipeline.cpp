// LU factorization walkthrough: the workload the paper's evaluation leads
// with. Shows how the scheduling decisions interact with the two knobs the
// paper leaves open — the iteration partition and the execution-window
// granularity — and prints the migration behaviour of a "hot" datum (a
// pivot-row element every trailing update reads).

#include <iostream>

#include "core/pipeline.hpp"
#include "kernels/benchmarks.hpp"
#include "kernels/iteration_map.hpp"
#include "kernels/lu.hpp"
#include "kernels/trace_builder.hpp"
#include "report/table.hpp"

namespace {

using namespace pimsched;

ReferenceTrace luTrace(const Grid& grid, int n, PartitionKind part) {
  TraceBuilder tb;
  const IterationMap map(grid, n, n, part);
  emitLu(tb, map, n);
  return std::move(tb).build();
}

}  // namespace

int main() {
  using namespace pimsched;
  const Grid grid(4, 4);
  const int n = 16;

  // 1. Iteration partition sweep at fixed (per-step) windows.
  std::cout << "LU " << n << "x" << n
            << " on 4x4 — GOMCDS total cost by iteration partition\n\n";
  TextTable parts({"partition", "S.F.", "GOMCDS", "improvement %"});
  for (const PartitionKind kind :
       {PartitionKind::kRowBlock, PartitionKind::kColBlock,
        PartitionKind::kBlock2D, PartitionKind::kCyclic2D}) {
    const ReferenceTrace trace = luTrace(grid, n, kind);
    PipelineConfig cfg;
    cfg.numWindows = static_cast<int>(trace.numSteps());
    const Experiment exp(trace, grid, cfg);
    const Cost sf = exp.evaluate(Method::kRowWise).aggregate.total();
    const Cost go = exp.evaluate(Method::kGomcds).aggregate.total();
    parts.addRow({toString(kind), std::to_string(sf), std::to_string(go),
                  formatFixed(improvementPct(sf, go), 1)});
  }
  parts.print(std::cout);

  // 2. Window granularity at a fixed partition.
  const ReferenceTrace trace = luTrace(grid, n, PartitionKind::kRowBlock);
  std::cout << "\nWindow granularity (row-block partition):\n\n";
  TextTable windows({"windows", "LOMCDS", "LOMCDS+grp", "GOMCDS"});
  for (const int w : {1, 3, 6, 10, 30}) {
    PipelineConfig cfg;
    cfg.numWindows = w;
    const Experiment exp(trace, grid, cfg);
    windows.addRow(
        {std::to_string(exp.refs().numWindows()),
         std::to_string(exp.evaluate(Method::kLomcds).aggregate.total()),
         std::to_string(
             exp.evaluate(Method::kGroupedLomcds).aggregate.total()),
         std::to_string(exp.evaluate(Method::kGomcds).aggregate.total())});
  }
  windows.print(std::cout);

  // 3. Migration trace of one pivot-row element under GOMCDS.
  PipelineConfig cfg;
  cfg.numWindows = static_cast<int>(trace.numSteps());
  const Experiment exp(trace, grid, cfg);
  const DataSchedule s = exp.schedule(Method::kGomcds);
  const DataId hot = trace.dataSpace().id(0, 0, n / 2);  // A[0][n/2]
  std::cout << "\nGOMCDS migration of A[0][" << n / 2
            << "] (a pivot-row element):\n  ";
  ProcId prev = kNoProc;
  for (WindowId w = 0; w < exp.refs().numWindows(); ++w) {
    const ProcId p = s.center(hot, w);
    if (p != prev) {
      const Coord c = grid.coord(p);
      std::cout << "w" << w << "->(" << c.row << "," << c.col << ") ";
      prev = p;
    }
  }
  std::cout << "\n(long runs without movement = the DP deciding the datum "
               "should stay put)\n";
  return 0;
}

// Beyond the paper's analytic metric: replay schedules through the
// discrete-event NoC simulator to see contention. The analytic model the
// paper optimises counts volume x distance; the simulator additionally
// serialises transfers on shared mesh links, exposing makespan and hot
// links. Good schedules win on both.

#include <iostream>

#include "core/pipeline.hpp"
#include "kernels/benchmarks.hpp"
#include "report/heatmap.hpp"
#include "report/table.hpp"
#include "sim/replay.hpp"

int main() {
  using namespace pimsched;
  const Grid grid(4, 4);
  const ReferenceTrace trace =
      makePaperBenchmark(PaperBenchmark::kMatCode, grid, 16);
  PipelineConfig cfg;
  cfg.numWindows = static_cast<int>(trace.numSteps());
  const Experiment exp(trace, grid, cfg);

  std::cout << "NoC replay of benchmark 4 (matrix square + CODE), 16x16 "
               "on 4x4\n\n";
  TextTable table({"method", "analytic cost", "sim makespan",
                   "busiest link", "avg msg latency"});
  for (const Method m : {Method::kRowWise, Method::kScds, Method::kLomcds,
                         Method::kGomcds}) {
    const DataSchedule s = exp.schedule(m);
    const Cost analytic =
        evaluateSchedule(s, exp.refs(), exp.costModel()).aggregate.total();
    const ReplayReport r = replaySchedule(s, exp.refs(), exp.costModel());
    table.addRow({toString(m), std::to_string(analytic),
                  std::to_string(r.total.makespan),
                  std::to_string(r.total.maxLinkLoad),
                  formatFixed(r.total.avgLatency, 1)});
  }
  table.print(std::cout);

  // Drill into the per-window profile of the winning schedule.
  const ReplayReport best = replaySchedule(exp.schedule(Method::kGomcds),
                                           exp.refs(), exp.costModel());
  std::int64_t worstWindow = 0;
  std::size_t worstIdx = 0;
  for (std::size_t w = 0; w < best.perWindow.size(); ++w) {
    if (best.perWindow[w].makespan > worstWindow) {
      worstWindow = best.perWindow[w].makespan;
      worstIdx = w;
    }
  }
  std::cout << "\nGOMCDS worst window: #" << worstIdx << " (makespan "
            << worstWindow << " cycles, "
            << best.perWindow[worstIdx].numMessages << " messages)\n";

  // Where does that window's traffic flow? Router-traffic heatmaps
  // (volume routed through each processor, 0-9 normalised) for the
  // straight-forward layout vs GOMCDS in the same window.
  const NocSimulator sim(grid);
  const auto heat = [&](Method m, const std::string& title) {
    const DataSchedule s = exp.schedule(m);
    const auto traffic = sim.procTraffic(windowMessages(
        s, exp.refs(), exp.costModel(), static_cast<WindowId>(worstIdx)));
    std::vector<double> values(traffic.begin(), traffic.end());
    std::cout << '\n';
    renderHeatmap(std::cout, values, grid.rows(), grid.cols(), title);
  };
  heat(Method::kRowWise, "router traffic, S.F. layout:");
  heat(Method::kGomcds, "router traffic, GOMCDS:");
  return 0;
}

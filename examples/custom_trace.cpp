// Scheduling a user-supplied workload: builds a reference trace by hand
// (the same thing a compiler pass or profiler would emit), round-trips it
// through the text serialisation format, and schedules it. Shows the
// lowest-level API — no kernel generators involved.
//
// The workload: a two-phase pipeline where a shared lookup table is read
// by the left half of the machine in phase 1 and by the right half in
// phase 2 — the textbook case where moving the data mid-run wins.

#include <iostream>
#include <sstream>

#include "core/evaluator.hpp"
#include "core/gomcds.hpp"
#include "core/scds.hpp"
#include "trace/trace_io.hpp"
#include "trace/windowed_refs.hpp"

int main() {
  using namespace pimsched;
  const Grid grid(4, 4);

  // One 2x4 "table" array: 8 data.
  DataSpace space;
  const int table = space.addArray("table", 2, 4);

  ReferenceTrace trace(space);
  // Phase 1 (steps 0-3): processors in columns 0-1 read the whole table.
  for (StepId s = 0; s < 4; ++s) {
    for (int r = 0; r < 4; ++r) {
      for (int c = 0; c < 2; ++c) {
        for (DataId d = 0; d < space.numData(); ++d) {
          trace.add(s, grid.id(r, c), d, 1);
        }
      }
    }
  }
  // Phase 2 (steps 4-7): columns 2-3 read it.
  for (StepId s = 4; s < 8; ++s) {
    for (int r = 0; r < 4; ++r) {
      for (int c = 2; c < 4; ++c) {
        for (DataId d = 0; d < space.numData(); ++d) {
          trace.add(s, grid.id(r, c), d, 1);
        }
      }
    }
  }
  trace.finalize();

  // Persist + reload through the text format (what an external tool would
  // hand us).
  std::stringstream buffer;
  saveTrace(trace, buffer);
  const ReferenceTrace loaded = loadTrace(buffer);
  std::cout << "trace round-tripped: " << loaded.accesses().size()
            << " aggregated accesses, volume " << loaded.totalWeight()
            << "\n\n";

  // Two windows: one per phase.
  const WindowedRefs refs(
      loaded, WindowPartition::fixedSize(loaded.numSteps(), 4), grid);
  const CostModel model(grid);

  const DataSchedule single = scheduleScds(refs, model);
  const DataSchedule moving = scheduleGomcds(refs, model);
  const CostBreakdown singleCost =
      evaluateSchedule(single, refs, model).aggregate;
  const CostBreakdown movingCost =
      evaluateSchedule(moving, refs, model).aggregate;

  std::cout << "single-center (SCDS):  serve " << singleCost.serve
            << " + move " << singleCost.move << " = "
            << singleCost.total() << '\n';
  std::cout << "multi-center (GOMCDS): serve " << movingCost.serve
            << " + move " << movingCost.move << " = "
            << movingCost.total() << "\n\n";

  std::cout << "table[0][0] placement:\n";
  const auto show = [&](const char* name, const DataSchedule& s) {
    const Coord w0 = grid.coord(s.center(space.id(table, 0, 0), 0));
    const Coord w1 = grid.coord(s.center(space.id(table, 0, 0), 1));
    std::cout << "  " << name << ": phase1 (" << w0.row << "," << w0.col
              << "), phase2 (" << w1.row << "," << w1.col << ")\n";
  };
  show("SCDS  ", single);
  show("GOMCDS", moving);
  std::cout << "\nGOMCDS parks the table among its phase-1 readers, then "
               "migrates it to the phase-2 side — the paper's data "
               "movement in action.\n";
  return 0;
}

// pimsched_cli — schedule an externally produced trace file from the
// command line. This is the tool a downstream user would wire behind a
// compiler pass or profiler:
//
//   pimsched_cli TRACE_FILE [options]
//     --grid RxC          processor array shape        (default 4x4)
//     --windows N         execution windows            (default: per step)
//     --adaptive T        adaptive windows, drift threshold T hops
//     --method NAME       rowwise|colwise|block|cyclic|random|scds|
//                         lomcds|gomcds|grouped|groupedgomcds
//                                                      (default gomcds)
//     --capacity N|paper|unlimited                     (default paper)
//     --lookahead L       online rolling-horizon scheduler with L windows
//                         of future knowledge (overrides --method)
//     --import FILE       evaluate an existing schedule (pimsched v1;
//                         processor ids validated against the grid)
//                         instead of computing one
//     --placement         dump the per-(datum,window) centers
//     --export FILE       write the schedule in the pimsched v1 format
//     --profile FILE      record counters/timers/trace events, replay the
//                         schedule through the NoC simulator, print the
//                         metrics summary and write chrome://tracing JSON
//     --threads N         worker threads for GOMCDS scheduling, schedule
//                         evaluation and NoC replay (0 = hardware
//                         concurrency; default 1 = sequential; results
//                         are identical for every value)
//     --csv               machine-readable summary line
//
// Exit code 0 on success; 2 on bad usage.

#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "core/adaptive_window.hpp"
#include "core/online.hpp"
#include "core/schedule_io.hpp"
#include "core/pipeline.hpp"
#include "obs/obs.hpp"
#include "report/obs_report.hpp"
#include "sim/replay.hpp"
#include "trace/trace_io.hpp"

namespace {

using namespace pimsched;

[[noreturn]] void usage(const char* msg) {
  if (std::strlen(msg) > 0) std::cerr << "error: " << msg << "\n\n";
  std::cerr << "usage: pimsched_cli TRACE_FILE [--grid RxC] [--windows N]\n"
               "       [--adaptive T] [--method NAME] [--capacity N|paper|"
               "unlimited]\n"
               "       [--lookahead L] [--import FILE] [--placement] "
               "[--export FILE]\n"
               "       [--profile FILE] [--threads N] [--csv]\n";
  std::exit(2);
}

std::optional<Method> parseMethod(const std::string& name) {
  if (name == "rowwise") return Method::kRowWise;
  if (name == "colwise") return Method::kColWise;
  if (name == "block") return Method::kBlock2D;
  if (name == "cyclic") return Method::kCyclic2D;
  if (name == "random") return Method::kRandom;
  if (name == "scds") return Method::kScds;
  if (name == "lomcds") return Method::kLomcds;
  if (name == "gomcds") return Method::kGomcds;
  if (name == "grouped") return Method::kGroupedLomcds;
  if (name == "groupedgomcds") return Method::kGroupedGomcds;
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage("missing trace file");
  const std::string path = argv[1];

  int gridRows = 4, gridCols = 4;
  int windows = -1;  // -1: per step
  double adaptive = -1.0;
  Method method = Method::kGomcds;
  std::int64_t capacity = PipelineConfig::kPaperCapacity;
  bool dumpPlacement = false;
  bool csv = false;
  int lookahead = -1;  // -1: use --method
  std::string exportPath;
  std::string importPath;
  std::string profilePath;
  unsigned threads = 1;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--grid") {
      const std::string v = value();
      const auto x = v.find('x');
      if (x == std::string::npos) usage("--grid expects RxC");
      gridRows = std::stoi(v.substr(0, x));
      gridCols = std::stoi(v.substr(x + 1));
    } else if (arg == "--windows") {
      windows = std::stoi(value());
    } else if (arg == "--adaptive") {
      adaptive = std::stod(value());
    } else if (arg == "--method") {
      const auto m = parseMethod(value());
      if (!m.has_value()) usage("unknown method");
      method = *m;
    } else if (arg == "--capacity") {
      const std::string v = value();
      if (v == "paper") capacity = PipelineConfig::kPaperCapacity;
      else if (v == "unlimited") capacity = PipelineConfig::kUnlimited;
      else capacity = std::stoll(v);
    } else if (arg == "--placement") {
      dumpPlacement = true;
    } else if (arg == "--export") {
      exportPath = value();
    } else if (arg == "--import") {
      importPath = value();
    } else if (arg == "--profile") {
      profilePath = value();
    } else if (arg == "--lookahead") {
      lookahead = std::stoi(value());
    } else if (arg == "--threads") {
      const int t = std::stoi(value());
      if (t < 0) usage("--threads expects N >= 0");
      threads = static_cast<unsigned>(t);
    } else if (arg == "--csv") {
      csv = true;
    } else {
      usage(("unknown option " + arg).c_str());
    }
  }

  try {
    if (!profilePath.empty()) {
      obs::Registry::instance().enableTracing(true);
    }
    const ReferenceTrace trace = loadTraceFile(path);
    const Grid grid(gridRows, gridCols);

    // Windowing: explicit count, adaptive, or one window per step.
    WindowPartition partition = WindowPartition::perStep(trace.numSteps());
    if (adaptive >= 0.0) {
      AdaptiveWindowOptions opts;
      opts.driftThreshold = adaptive;
      partition = adaptiveWindows(trace, grid, opts);
    } else if (windows > 0) {
      partition = WindowPartition::evenCount(trace.numSteps(), windows);
    }

    PipelineConfig cfg;
    cfg.explicitWindows = partition;
    cfg.capacity = capacity;
    cfg.threads = threads;
    const Experiment exp(trace, grid, cfg);
    const std::int64_t cap = exp.capacity();
    const std::string methodName =
        !importPath.empty() ? "import " + importPath
        : lookahead >= 0    ? "online L=" + std::to_string(lookahead)
                            : toString(method);
    const DataSchedule schedule = [&] {
      if (!importPath.empty()) {
        // The grid bound rejects schedules whose processor ids the chosen
        // grid cannot hold (they would index out of bounds downstream).
        return loadScheduleFile(importPath, static_cast<ProcId>(grid.size()));
      }
      if (lookahead < 0) return exp.schedule(method);
      OnlineOptions online;
      online.lookahead = lookahead;
      online.capacity = cap;
      online.order = DataOrder::kByWeightDesc;
      return scheduleOnline(exp.refs(), exp.costModel(), online);
    }();
    const EvalResult result =
        evaluateSchedule(schedule, exp.refs(), exp.costModel(), threads);

    if (csv) {
      std::cout << "method,windows,capacity,serve,move,total\n"
                << methodName << ',' << exp.refs().numWindows() << ','
                << cap << ',' << result.aggregate.serve << ','
                << result.aggregate.move << ','
                << result.aggregate.total() << '\n';
    } else {
      std::cout << "trace   : " << path << " (" << trace.numData()
                << " data, " << trace.numSteps() << " steps)\n"
                << "grid    : " << gridRows << "x" << gridCols
                << ", capacity " << cap << "\n"
                << "windows : " << exp.refs().numWindows() << "\n"
                << "method  : " << methodName << "\n"
                << "serve   : " << result.aggregate.serve << "\n"
                << "move    : " << result.aggregate.move << "\n"
                << "total   : " << result.aggregate.total() << "\n";
    }
    if (!exportPath.empty()) {
      saveScheduleFile(schedule, exportPath);
      if (!csv) std::cout << "exported : " << exportPath << "\n";
    }
    if (dumpPlacement) {
      for (DataId d = 0; d < exp.refs().numData(); ++d) {
        std::cout << "data " << d << ':';
        for (WindowId w = 0; w < exp.refs().numWindows(); ++w) {
          std::cout << ' ' << schedule.center(d, w);
        }
        std::cout << '\n';
      }
    }
    if (!profilePath.empty()) {
      // Replay through the NoC simulator so the profile covers the full
      // pipeline: scheduler + solver + per-window network traffic.
      ReplayOptions replayOptions;
      replayOptions.threads = threads;
      const ReplayReport replay =
          replaySchedule(schedule, exp.refs(), exp.costModel(),
                         replayOptions);
      if (!csv) {
        std::cout << "replay  : makespan " << replay.total.makespan
                  << " cycles, " << replay.total.numMessages
                  << " messages, max link load " << replay.total.maxLinkLoad
                  << "\n\n";
      }
      renderObsSummary(std::cout);
      std::ofstream os(profilePath);
      if (!os) {
        throw std::runtime_error("cannot open profile output " + profilePath);
      }
      obs::Registry::instance().writeChromeTrace(os);
      if (!csv) std::cout << "profile : " << profilePath << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}

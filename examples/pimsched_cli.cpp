// pimsched_cli — schedule an externally produced trace file from the
// command line. This is the tool a downstream user would wire behind a
// compiler pass or profiler:
//
//   pimsched_cli TRACE_FILE [options]
//     --grid RxC          processor array shape        (default 4x4)
//     --windows N         execution windows            (default: per step)
//     --adaptive T        adaptive windows, drift threshold T hops
//     --method NAME       rowwise|colwise|block|cyclic|random|scds|
//                         lomcds|gomcds|grouped|groupedgomcds
//                                                      (default gomcds)
//     --capacity N|paper|unlimited                     (default paper)
//     --lookahead L       online rolling-horizon scheduler with L windows
//                         of future knowledge (overrides --method)
//     --import FILE       evaluate an existing schedule (pimsched v1;
//                         processor ids validated against the grid)
//                         instead of computing one
//     --placement         dump the per-(datum,window) centers
//     --export FILE       write the schedule in the pimsched v1 format
//     --profile FILE      record counters/timers/trace events, replay the
//                         schedule through the NoC simulator, print the
//                         metrics summary and write chrome://tracing JSON
//     --threads N         worker threads for GOMCDS scheduling, schedule
//                         evaluation and NoC replay (0 = hardware
//                         concurrency; default 1 = sequential; results
//                         are identical for every value)
//     --csv               machine-readable summary line
//
// Exit codes: 0 = success, 1 = runtime failure (unreadable trace, solver
// error, ...), 2 = bad usage. Argument errors return through main — no
// helper calls std::exit — so the parser and runner are embeddable and
// testable as ordinary functions.

#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "core/adaptive_window.hpp"
#include "core/online.hpp"
#include "core/schedule_io.hpp"
#include "core/pipeline.hpp"
#include "obs/obs.hpp"
#include "report/obs_report.hpp"
#include "sim/replay.hpp"
#include "trace/trace_io.hpp"

namespace {

using namespace pimsched;

void printUsage(std::ostream& os) {
  os << "usage: pimsched_cli TRACE_FILE [--grid RxC] [--windows N]\n"
        "       [--adaptive T] [--method NAME] [--capacity N|paper|"
        "unlimited]\n"
        "       [--lookahead L] [--import FILE] [--placement] "
        "[--export FILE]\n"
        "       [--profile FILE] [--threads N] [--csv]\n";
}

struct CliOptions {
  std::string tracePath;
  int gridRows = 4, gridCols = 4;
  int windows = -1;  // -1: per step
  double adaptive = -1.0;
  Method method = Method::kGomcds;
  std::int64_t capacity = PipelineConfig::kPaperCapacity;
  bool dumpPlacement = false;
  bool csv = false;
  int lookahead = -1;  // -1: use method
  std::string exportPath;
  std::string importPath;
  std::string profilePath;
  unsigned threads = 1;
};

/// Parses argv into options. Returns nullopt and fills `error` on any
/// usage mistake (missing values, unknown flags, unparsable numbers) —
/// the caller decides how to report and which exit code to use.
std::optional<CliOptions> parseArgs(int argc, char** argv,
                                    std::string& error) {
  if (argc < 2) {
    error = "missing trace file";
    return std::nullopt;
  }
  CliOptions opts;
  opts.tracePath = argv[1];

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) {
        error = "missing value for " + arg;
        return std::nullopt;
      }
      return argv[++i];
    };
    try {
      if (arg == "--grid") {
        const auto v = value();
        if (!v.has_value()) return std::nullopt;
        const auto x = v->find('x');
        if (x == std::string::npos) {
          error = "--grid expects RxC";
          return std::nullopt;
        }
        opts.gridRows = std::stoi(v->substr(0, x));
        opts.gridCols = std::stoi(v->substr(x + 1));
      } else if (arg == "--windows") {
        const auto v = value();
        if (!v.has_value()) return std::nullopt;
        opts.windows = std::stoi(*v);
      } else if (arg == "--adaptive") {
        const auto v = value();
        if (!v.has_value()) return std::nullopt;
        opts.adaptive = std::stod(*v);
      } else if (arg == "--method") {
        const auto v = value();
        if (!v.has_value()) return std::nullopt;
        const auto m = methodFromString(*v);
        if (!m.has_value()) {
          error = "unknown method " + *v;
          return std::nullopt;
        }
        opts.method = *m;
      } else if (arg == "--capacity") {
        const auto v = value();
        if (!v.has_value()) return std::nullopt;
        if (*v == "paper") opts.capacity = PipelineConfig::kPaperCapacity;
        else if (*v == "unlimited") {
          opts.capacity = PipelineConfig::kUnlimited;
        } else {
          opts.capacity = std::stoll(*v);
        }
      } else if (arg == "--placement") {
        opts.dumpPlacement = true;
      } else if (arg == "--export") {
        const auto v = value();
        if (!v.has_value()) return std::nullopt;
        opts.exportPath = *v;
      } else if (arg == "--import") {
        const auto v = value();
        if (!v.has_value()) return std::nullopt;
        opts.importPath = *v;
      } else if (arg == "--profile") {
        const auto v = value();
        if (!v.has_value()) return std::nullopt;
        opts.profilePath = *v;
      } else if (arg == "--lookahead") {
        const auto v = value();
        if (!v.has_value()) return std::nullopt;
        opts.lookahead = std::stoi(*v);
      } else if (arg == "--threads") {
        const auto v = value();
        if (!v.has_value()) return std::nullopt;
        const int t = std::stoi(*v);
        if (t < 0) {
          error = "--threads expects N >= 0";
          return std::nullopt;
        }
        opts.threads = static_cast<unsigned>(t);
      } else if (arg == "--csv") {
        opts.csv = true;
      } else {
        error = "unknown option " + arg;
        return std::nullopt;
      }
    } catch (const std::exception&) {
      error = "invalid value for " + arg;
      return std::nullopt;
    }
  }
  return opts;
}

/// The whole run after argument parsing; throws on runtime failures.
void runCli(const CliOptions& opts) {
  if (!opts.profilePath.empty()) {
    obs::Registry::instance().enableTracing(true);
  }
  const ReferenceTrace trace = loadTraceFile(opts.tracePath);
  const Grid grid(opts.gridRows, opts.gridCols);

  // Windowing: explicit count, adaptive, or one window per step.
  WindowPartition partition = WindowPartition::perStep(trace.numSteps());
  if (opts.adaptive >= 0.0) {
    AdaptiveWindowOptions adaptiveOpts;
    adaptiveOpts.driftThreshold = opts.adaptive;
    partition = adaptiveWindows(trace, grid, adaptiveOpts);
  } else if (opts.windows > 0) {
    partition = WindowPartition::evenCount(trace.numSteps(), opts.windows);
  }

  PipelineConfig cfg;
  cfg.explicitWindows = partition;
  cfg.capacity = opts.capacity;
  cfg.threads = opts.threads;
  const Experiment exp(trace, grid, cfg);
  const std::int64_t cap = exp.capacity();
  const std::string methodName =
      !opts.importPath.empty() ? "import " + opts.importPath
      : opts.lookahead >= 0 ? "online L=" + std::to_string(opts.lookahead)
                            : toString(opts.method);
  const DataSchedule schedule = [&] {
    if (!opts.importPath.empty()) {
      // The grid bound rejects schedules whose processor ids the chosen
      // grid cannot hold (they would index out of bounds downstream).
      return loadScheduleFile(opts.importPath,
                              static_cast<ProcId>(grid.size()));
    }
    if (opts.lookahead < 0) return exp.schedule(opts.method);
    OnlineOptions online;
    online.lookahead = opts.lookahead;
    online.capacity = cap;
    online.order = DataOrder::kByWeightDesc;
    return scheduleOnline(exp.refs(), exp.costModel(), online);
  }();
  const EvalResult result =
      evaluateSchedule(schedule, exp.refs(), exp.costModel(), opts.threads);

  if (opts.csv) {
    std::cout << "method,windows,capacity,serve,move,total\n"
              << methodName << ',' << exp.refs().numWindows() << ',' << cap
              << ',' << result.aggregate.serve << ','
              << result.aggregate.move << ',' << result.aggregate.total()
              << '\n';
  } else {
    std::cout << "trace   : " << opts.tracePath << " (" << trace.numData()
              << " data, " << trace.numSteps() << " steps)\n"
              << "grid    : " << opts.gridRows << "x" << opts.gridCols
              << ", capacity " << cap << "\n"
              << "windows : " << exp.refs().numWindows() << "\n"
              << "method  : " << methodName << "\n"
              << "serve   : " << result.aggregate.serve << "\n"
              << "move    : " << result.aggregate.move << "\n"
              << "total   : " << result.aggregate.total() << "\n";
  }
  if (!opts.exportPath.empty()) {
    saveScheduleFile(schedule, opts.exportPath);
    if (!opts.csv) std::cout << "exported : " << opts.exportPath << "\n";
  }
  if (opts.dumpPlacement) {
    for (DataId d = 0; d < exp.refs().numData(); ++d) {
      std::cout << "data " << d << ':';
      for (WindowId w = 0; w < exp.refs().numWindows(); ++w) {
        std::cout << ' ' << schedule.center(d, w);
      }
      std::cout << '\n';
    }
  }
  if (!opts.profilePath.empty()) {
    // Replay through the NoC simulator so the profile covers the full
    // pipeline: scheduler + solver + per-window network traffic.
    ReplayOptions replayOptions;
    replayOptions.threads = opts.threads;
    const ReplayReport replay = replaySchedule(
        schedule, exp.refs(), exp.costModel(), replayOptions);
    if (!opts.csv) {
      std::cout << "replay  : makespan " << replay.total.makespan
                << " cycles, " << replay.total.numMessages
                << " messages, max link load " << replay.total.maxLinkLoad
                << "\n\n";
    }
    renderObsSummary(std::cout);
    std::ofstream os(opts.profilePath);
    if (!os) {
      throw std::runtime_error("cannot open profile output " +
                               opts.profilePath);
    }
    obs::Registry::instance().writeChromeTrace(os);
    if (!opts.csv) std::cout << "profile : " << opts.profilePath << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string parseError;
  const std::optional<CliOptions> opts = parseArgs(argc, argv, parseError);
  if (!opts.has_value()) {
    std::cerr << "error: " << parseError << "\n\n";
    printUsage(std::cerr);
    return 2;
  }
  try {
    runCli(*opts);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}

#include "obs/obs.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>
#include <ostream>

namespace pimsched::obs {

std::int64_t nowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point anchor = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              anchor)
      .count();
}

int threadId() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void TimerStat::record(std::int64_t ns) {
  count_.fetch_add(1, std::memory_order_relaxed);
  totalNs_.fetch_add(ns, std::memory_order_relaxed);
  std::int64_t prev = minNs_.load(std::memory_order_relaxed);
  while (ns < prev &&
         !minNs_.compare_exchange_weak(prev, ns, std::memory_order_relaxed)) {
  }
  prev = maxNs_.load(std::memory_order_relaxed);
  while (ns > prev &&
         !maxNs_.compare_exchange_weak(prev, ns, std::memory_order_relaxed)) {
  }
}

void TimerStat::reset() {
  count_.store(0, std::memory_order_relaxed);
  totalNs_.store(0, std::memory_order_relaxed);
  minNs_.store(INT64_MAX, std::memory_order_relaxed);
  maxNs_.store(0, std::memory_order_relaxed);
}

ScopedTimer::~ScopedTimer() {
  const std::int64_t end = nowNs();
  const std::int64_t dur = end - startNs_;
  stat_->record(dur);
  Registry& registry = Registry::instance();
  if (registry.tracingEnabled()) {
    registry.recordEvent(
        TraceEvent{name_, 'X', startNs_, dur, threadId(), {}});
  }
}

// Node-based maps keep metric addresses stable across insertions, which is
// what lets the macros cache references in function-local statics.
struct Registry::Impl {
  mutable std::mutex metricsMutex;
  std::map<std::string, Counter, std::less<>> counters;
  std::map<std::string, TimerStat, std::less<>> timers;
  mutable std::mutex eventsMutex;
  std::vector<TraceEvent> events;
};

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Registry::Impl& Registry::impl() const {
  static Impl impl;
  return impl;
}

Counter& Registry::counter(std::string_view name) {
  Impl& i = impl();
  const std::scoped_lock lock(i.metricsMutex);
  const auto it = i.counters.find(name);
  if (it != i.counters.end()) return it->second;
  return i.counters.try_emplace(std::string(name)).first->second;
}

TimerStat& Registry::timer(std::string_view name) {
  Impl& i = impl();
  const std::scoped_lock lock(i.metricsMutex);
  const auto it = i.timers.find(name);
  if (it != i.timers.end()) return it->second;
  return i.timers.try_emplace(std::string(name)).first->second;
}

std::int64_t Registry::counterValue(std::string_view name) const {
  Impl& i = impl();
  const std::scoped_lock lock(i.metricsMutex);
  const auto it = i.counters.find(name);
  return it == i.counters.end() ? 0 : it->second.value();
}

void Registry::enableTracing(bool on) {
#ifdef PIMSCHED_NO_OBS
  (void)on;  // the compile-time kill switch pins tracing off
#else
  tracing_.store(on, std::memory_order_relaxed);
#endif
}

void Registry::recordEvent(TraceEvent event) {
  if (!tracingEnabled()) return;
  Impl& i = impl();
  const std::scoped_lock lock(i.eventsMutex);
  i.events.push_back(std::move(event));
}

void Registry::recordInstant(std::string name, std::string argsJson) {
  recordEvent(TraceEvent{std::move(name), 'i', nowNs(), 0, threadId(),
                         std::move(argsJson)});
}

std::vector<CounterSample> Registry::counterSamples() const {
  Impl& i = impl();
  const std::scoped_lock lock(i.metricsMutex);
  std::vector<CounterSample> out;
  out.reserve(i.counters.size());
  for (const auto& [name, counter] : i.counters) {
    out.push_back(CounterSample{name, counter.value()});
  }
  return out;
}

std::vector<TimerSample> Registry::timerSamples() const {
  Impl& i = impl();
  const std::scoped_lock lock(i.metricsMutex);
  std::vector<TimerSample> out;
  out.reserve(i.timers.size());
  for (const auto& [name, timer] : i.timers) {
    const std::int64_t count = timer.count();
    out.push_back(TimerSample{name, count, timer.totalNs(),
                              count > 0 ? timer.minNs() : 0, timer.maxNs()});
  }
  return out;
}

std::vector<TraceEvent> Registry::traceEvents() const {
  Impl& i = impl();
  const std::scoped_lock lock(i.eventsMutex);
  return i.events;
}

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Nanoseconds as a chrome-trace microsecond timestamp ("123.456").
void writeUs(std::ostream& os, std::int64_t ns) {
  os << ns / 1000 << '.';
  const int frac = static_cast<int>(ns % 1000);
  os << static_cast<char>('0' + frac / 100)
     << static_cast<char>('0' + (frac / 10) % 10)
     << static_cast<char>('0' + frac % 10);
}

}  // namespace

void Registry::writeChromeTrace(std::ostream& os) const {
  std::vector<TraceEvent> events = traceEvents();
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.startNs < b.startNs;
                   });
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "{\"name\":\"" << jsonEscape(e.name)
       << "\",\"cat\":\"pimsched\",\"ph\":\"" << e.phase << "\",\"ts\":";
    writeUs(os, e.startNs);
    os << ",\"pid\":0,\"tid\":" << e.tid;
    if (e.phase == 'X') {
      os << ",\"dur\":";
      writeUs(os, e.durNs);
    }
    if (e.phase == 'i') os << ",\"s\":\"t\"";
    if (!e.args.empty()) os << ",\"args\":" << e.args;
    os << '}';
  }
  os << "\n]}\n";
}

void Registry::reset() {
  Impl& i = impl();
  {
    const std::scoped_lock lock(i.metricsMutex);
    for (auto& [name, counter] : i.counters) counter.reset();
    for (auto& [name, timer] : i.timers) timer.reset();
  }
  const std::scoped_lock lock(i.eventsMutex);
  i.events.clear();
}

}  // namespace pimsched::obs

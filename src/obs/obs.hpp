#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

/// Low-overhead observability layer: named monotonic counters, RAII scoped
/// timers and a structured event recorder that exports a human-readable
/// summary (report/obs_report.hpp) and chrome://tracing JSON.
///
/// Instrumentation happens through the PIMSCHED_COUNTER_ADD /
/// PIMSCHED_SCOPED_TIMER macros at the bottom of this header; each call
/// site resolves its metric handle once (function-local static) and then
/// pays one relaxed atomic add (counters) or two steady_clock reads plus a
/// few relaxed atomics (timers) per hit. Trace events are only recorded
/// while tracing is enabled (Registry::enableTracing, wired to the CLI's
/// --profile flag).
///
/// Compiling with -DPIMSCHED_NO_OBS (CMake option PIMSCHED_NO_OBS) turns
/// both macros into no-ops and pins tracing off; the registry API itself
/// stays available so consumers compile unchanged and simply observe an
/// empty registry. docs/observability.md lists the metric names the
/// library emits.
namespace pimsched::obs {

/// Nanoseconds since the first obs clock read in this process (steady).
[[nodiscard]] std::int64_t nowNs();

/// Small dense id for the calling thread (0 for the first caller).
[[nodiscard]] int threadId();

/// A named monotonic counter. Thread-safe; add() is one relaxed atomic.
class Counter {
 public:
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Aggregated durations of one named scope: count / total / min / max.
class TimerStat {
 public:
  void record(std::int64_t ns);
  [[nodiscard]] std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t totalNs() const {
    return totalNs_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t minNs() const {
    return minNs_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t maxNs() const {
    return maxNs_.load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> totalNs_{0};
  std::atomic<std::int64_t> minNs_{INT64_MAX};
  std::atomic<std::int64_t> maxNs_{0};
};

/// One chrome://tracing event. phase 'X' = complete (has durNs),
/// 'i' = instant. `args` is either empty or a serialised JSON object.
struct TraceEvent {
  std::string name;
  char phase = 'X';
  std::int64_t startNs = 0;
  std::int64_t durNs = 0;
  int tid = 0;
  std::string args;
};

/// Point-in-time copies for reporting.
struct CounterSample {
  std::string name;
  std::int64_t value = 0;
};
struct TimerSample {
  std::string name;
  std::int64_t count = 0;
  std::int64_t totalNs = 0;
  std::int64_t minNs = 0;
  std::int64_t maxNs = 0;
};

/// Process-global metric registry. Metric creation takes a mutex; metric
/// updates afterwards are lock-free through the returned stable reference.
class Registry {
 public:
  static Registry& instance();

  /// Finds or creates a metric. References stay valid for the process
  /// lifetime (node-based storage), so call sites may cache them.
  Counter& counter(std::string_view name);
  TimerStat& timer(std::string_view name);

  /// Current value of a counter, 0 if it was never touched.
  [[nodiscard]] std::int64_t counterValue(std::string_view name) const;

  /// Structured event recording; record* are no-ops unless tracing is on.
  void enableTracing(bool on);
  [[nodiscard]] bool tracingEnabled() const {
    return tracing_.load(std::memory_order_relaxed);
  }
  void recordEvent(TraceEvent event);
  /// Convenience: an instant event stamped now on the calling thread.
  void recordInstant(std::string name, std::string argsJson);

  /// Sorted-by-name snapshots for the summary renderers.
  [[nodiscard]] std::vector<CounterSample> counterSamples() const;
  [[nodiscard]] std::vector<TimerSample> timerSamples() const;
  [[nodiscard]] std::vector<TraceEvent> traceEvents() const;

  /// Writes every recorded event as chrome://tracing "traceEvents" JSON
  /// (load via chrome://tracing or https://ui.perfetto.dev).
  void writeChromeTrace(std::ostream& os) const;

  /// Zeroes all metrics and drops recorded events (tests, benchmarks).
  void reset();

 private:
  Registry() = default;
  struct Impl;
  [[nodiscard]] Impl& impl() const;
  std::atomic<bool> tracing_{false};
};

/// Escapes a string for embedding in a JSON string literal (no quotes).
[[nodiscard]] std::string jsonEscape(std::string_view s);

/// RAII timer: records the scope's duration into `stat` and, while tracing
/// is enabled, a complete event named `name`.
class ScopedTimer {
 public:
  ScopedTimer(TimerStat& stat, const char* name)
      : stat_(&stat), name_(name), startNs_(nowNs()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer();

 private:
  TimerStat* stat_;
  const char* name_;
  std::int64_t startNs_;
};

}  // namespace pimsched::obs

#define PIMSCHED_OBS_CONCAT_INNER(a, b) a##b
#define PIMSCHED_OBS_CONCAT(a, b) PIMSCHED_OBS_CONCAT_INNER(a, b)

#ifndef PIMSCHED_NO_OBS

/// Adds `delta` to the named counter. `name` must be a string literal (the
/// handle is resolved once per call site).
#define PIMSCHED_COUNTER_ADD(name, delta)                          \
  do {                                                             \
    static ::pimsched::obs::Counter& pimschedObsCounterHandle =    \
        ::pimsched::obs::Registry::instance().counter(name);       \
    pimschedObsCounterHandle.add(delta);                           \
  } while (0)

/// Times the enclosing scope under `name` (a string literal).
#define PIMSCHED_SCOPED_TIMER(name)                                      \
  static ::pimsched::obs::TimerStat& PIMSCHED_OBS_CONCAT(                \
      pimschedObsTimerHandle, __LINE__) =                                \
      ::pimsched::obs::Registry::instance().timer(name);                 \
  const ::pimsched::obs::ScopedTimer PIMSCHED_OBS_CONCAT(                \
      pimschedObsTimerScope,                                             \
      __LINE__)(PIMSCHED_OBS_CONCAT(pimschedObsTimerHandle, __LINE__),   \
                name)

#else  // PIMSCHED_NO_OBS

// Kill switch: evaluate nothing but keep the operands "used" so builds
// with -Werror stay clean whether or not the layer is compiled in.
#define PIMSCHED_COUNTER_ADD(name, delta) \
  do {                                    \
    (void)(delta);                        \
  } while (0)

#define PIMSCHED_SCOPED_TIMER(name) \
  do {                              \
  } while (0)

#endif  // PIMSCHED_NO_OBS

#include "core/exhaustive.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "cost/center_costs.hpp"

namespace pimsched {

DataSchedule scheduleExhaustive(const WindowedRefs& refs,
                                const CostModel& model,
                                std::uint64_t maxCombinations) {
  const int W = refs.numWindows();
  const int m = refs.numProcs();

  std::uint64_t combos = 1;
  for (int w = 0; w < W; ++w) {
    combos *= static_cast<std::uint64_t>(m);
    if (combos > maxCombinations) {
      throw std::invalid_argument(
          "scheduleExhaustive: instance too large to enumerate");
    }
  }

  DataSchedule schedule(refs.numData(), W);
  std::vector<ProcId> seq(static_cast<std::size_t>(W), 0);
  for (DataId d = 0; d < refs.numData(); ++d) {
    // Precompute serving costs once per datum.
    std::vector<std::vector<Cost>> serve(static_cast<std::size_t>(W));
    for (WindowId w = 0; w < W; ++w) {
      serve[static_cast<std::size_t>(w)] =
          centerCosts(model, refs.refs(d, w));
    }

    Cost best = kInfiniteCost;
    std::vector<ProcId> bestSeq;
    std::fill(seq.begin(), seq.end(), 0);
    while (true) {
      Cost total = 0;
      for (WindowId w = 0; w < W; ++w) {
        total += serve[static_cast<std::size_t>(w)]
                      [static_cast<std::size_t>(seq[static_cast<std::size_t>(w)])];
        if (w > 0) {
          total += model.moveCost(seq[static_cast<std::size_t>(w - 1)],
                                  seq[static_cast<std::size_t>(w)]);
        }
      }
      if (total < best) {
        best = total;
        bestSeq = seq;
      }
      // Odometer increment.
      int w = W - 1;
      while (w >= 0 && ++seq[static_cast<std::size_t>(w)] == m) {
        seq[static_cast<std::size_t>(w)] = 0;
        --w;
      }
      if (w < 0) break;
    }
    for (WindowId w = 0; w < W; ++w) {
      schedule.setCenter(d, w, bestSeq[static_cast<std::size_t>(w)]);
    }
  }
  return schedule;
}

}  // namespace pimsched

#pragma once

// Internal machinery shared by the cold GOMCDS engines (core/gomcds.cpp)
// and the incremental warm-start solver (core/incremental.cpp). Not part of
// the public scheduling API — include only from core/ implementation files
// and tests that need the injectable-signature seams.

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cost/cost_model.hpp"
#include "core/scheduler_options.hpp"
#include "graph/layered_dag.hpp"
#include "pim/memory.hpp"
#include "trace/windowed_refs.hpp"
#include "util/aligned.hpp"

namespace pimsched::detail {

[[noreturn]] void throwGomcdsInfeasible(const CostModel& model);
[[noreturn]] void throwGomcdsSlotDisagreement(DataId d, ProcId p, WindowId w,
                                              const OccupancyMap& occ);

/// Per-thread arena for the flat solve path: every buffer is grow-only, so
/// after the first datum on a thread the steady-state loop performs zero
/// heap allocations per datum.
struct GomcdsScratch {
  LayeredDagScratch dag;  ///< dp + relaxed layers of the flat solver
  LayeredPath path;       ///< reused per-datum solution
  CostBuffer serve;       ///< flat W x P node-cost table fed to the solver
};

/// True when the forbidden (window, processor) set cannot change while data
/// are placed: capacity is unlimited and no *alive* processor carries a
/// fault capacity limit (dead processors are already forbidden through
/// their infinite serving cost). With a static forbidden set, data of the
/// same equivalence class share one solved path, not just cost tables.
[[nodiscard]] bool staticForbiddenSet(const CostModel& model,
                                      const SchedulerOptions& options);

/// Equivalence classes of data whose windowed reference strings are
/// byte-identical — they pose the same per-datum DAG subproblem, so the
/// serving-cost tables (and, under a static forbidden set, the solved
/// path) are computed once per class. With dedup disabled every datum is
/// its own (singleton) class.
struct DedupClasses {
  std::vector<int> classOf;  ///< datum -> class index
  std::vector<DataId> rep;   ///< class -> representative (lowest-id) datum
  std::vector<int> size;     ///< class -> member count
};

/// Generic equivalence-class construction over n items. `sig(d)` is a
/// 64-bit prescreen signature bucketing candidates; `same(rep, d)` is the
/// authoritative full comparison run against each bucketed class
/// representative, so signature collisions can never merge distinct
/// classes. Exposed as a template seam: crafting genuine 64-bit FNV-1a
/// collisions is computationally infeasible, so the collision regression
/// test injects a forced-colliding `sig` against the real comparator and
/// exercises the exact production code path.
template <class SigFn, class SameFn>
DedupClasses buildEquivalenceClasses(DataId n, const SigFn& sig,
                                     const SameFn& same) {
  DedupClasses out;
  out.classOf.resize(static_cast<std::size_t>(n));
  std::unordered_map<std::uint64_t, std::vector<int>> bySig;
  for (DataId d = 0; d < n; ++d) {
    std::vector<int>& bucket = bySig[sig(d)];
    int cls = -1;
    for (const int c : bucket) {
      if (same(out.rep[static_cast<std::size_t>(c)], d)) {
        cls = c;
        break;
      }
    }
    if (cls < 0) {
      cls = static_cast<int>(out.rep.size());
      out.rep.push_back(d);
      out.size.push_back(0);
      bucket.push_back(cls);
    }
    out.classOf[static_cast<std::size_t>(d)] = cls;
    ++out.size[static_cast<std::size_t>(cls)];
  }
  return out;
}

/// The production class computation: FNV-1a whole-datum signatures
/// prescreen, WindowedRefs::sameRefs confirms. Emits the gomcds.dedup.*
/// counters. With dedup disabled every datum is its own singleton class.
[[nodiscard]] DedupClasses computeDedupClasses(const WindowedRefs& refs,
                                               bool enabled);

/// The shared beta * distance transition table of the faulted / naive
/// engines: trans[q * P + p] = model.moveCost(q, p), built once per
/// scheduling call and reused by every datum (fault distances can be
/// asymmetric, so rows are indexed by source).
void buildTransTable(const CostModel& model, std::vector<Cost>& trans);

}  // namespace pimsched::detail

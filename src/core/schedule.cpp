#include "core/schedule.hpp"

#include <algorithm>
#include <stdexcept>

namespace pimsched {

DataSchedule::DataSchedule(DataId numData, int numWindows)
    : numData_(numData), numWindows_(numWindows) {
  if (numData < 0 || numWindows < 1) {
    throw std::invalid_argument(
        "DataSchedule: need numData >= 0 and numWindows >= 1");
  }
  centers_.assign(static_cast<std::size_t>(numData) *
                      static_cast<std::size_t>(numWindows),
                  kNoProc);
}

void DataSchedule::setStatic(DataId d, ProcId p) {
  for (WindowId w = 0; w < numWindows_; ++w) setCenter(d, w, p);
}

bool DataSchedule::complete() const {
  return std::none_of(centers_.begin(), centers_.end(),
                      [](ProcId p) { return p == kNoProc; });
}

bool DataSchedule::isStatic() const {
  for (DataId d = 0; d < numData_; ++d) {
    for (WindowId w = 1; w < numWindows_; ++w) {
      if (center(d, w) != center(d, 0)) return false;
    }
  }
  return true;
}

std::int64_t DataSchedule::maxOccupancy(const Grid& grid) const {
  std::int64_t worst = 0;
  std::vector<std::int64_t> counts(static_cast<std::size_t>(grid.size()));
  for (WindowId w = 0; w < numWindows_; ++w) {
    std::fill(counts.begin(), counts.end(), 0);
    for (DataId d = 0; d < numData_; ++d) {
      const ProcId p = center(d, w);
      if (p == kNoProc) continue;
      worst = std::max(worst, ++counts[static_cast<std::size_t>(p)]);
    }
  }
  return worst;
}

bool DataSchedule::respectsCapacity(const Grid& grid,
                                    std::int64_t capacity) const {
  return capacity < 0 || maxOccupancy(grid) <= capacity;
}

}  // namespace pimsched

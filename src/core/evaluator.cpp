#include "core/evaluator.hpp"

#include <stdexcept>

namespace pimsched {

CostBreakdown evaluateDatum(const DataSchedule& schedule,
                            const WindowedRefs& refs, const CostModel& model,
                            DataId d) {
  CostBreakdown out;
  for (WindowId w = 0; w < refs.numWindows(); ++w) {
    const ProcId c = schedule.center(d, w);
    if (c == kNoProc) {
      throw std::invalid_argument("evaluateDatum: incomplete schedule");
    }
    out.serve += model.serveCost(refs.refs(d, w), c);
    if (w > 0) out.move += model.moveCost(schedule.center(d, w - 1), c);
  }
  return out;
}

EvalResult evaluateSchedule(const DataSchedule& schedule,
                            const WindowedRefs& refs,
                            const CostModel& model) {
  if (schedule.numData() != refs.numData() ||
      schedule.numWindows() != refs.numWindows()) {
    throw std::invalid_argument("evaluateSchedule: shape mismatch");
  }
  EvalResult result;
  result.perData.reserve(static_cast<std::size_t>(refs.numData()));
  for (DataId d = 0; d < refs.numData(); ++d) {
    result.perData.push_back(evaluateDatum(schedule, refs, model, d));
    result.aggregate += result.perData.back();
  }
  return result;
}

}  // namespace pimsched

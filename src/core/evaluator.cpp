#include "core/evaluator.hpp"

#include <stdexcept>

#include "util/thread_pool.hpp"

namespace pimsched {

CostBreakdown evaluateDatum(const DataSchedule& schedule,
                            const WindowedRefs& refs, const CostModel& model,
                            DataId d) {
  CostBreakdown out;
  for (WindowId w = 0; w < refs.numWindows(); ++w) {
    const ProcId c = schedule.center(d, w);
    if (c == kNoProc) {
      throw std::invalid_argument("evaluateDatum: incomplete schedule");
    }
    out.serve += model.serveCost(refs.refs(d, w), c);
    if (w > 0) out.move += model.moveCost(schedule.center(d, w - 1), c);
  }
  return out;
}

EvalResult evaluateSchedule(const DataSchedule& schedule,
                            const WindowedRefs& refs, const CostModel& model,
                            unsigned threads) {
  if (schedule.numData() != refs.numData() ||
      schedule.numWindows() != refs.numWindows()) {
    throw std::invalid_argument("evaluateSchedule: shape mismatch");
  }
  EvalResult result;
  result.perData.resize(static_cast<std::size_t>(refs.numData()));
  parallelFor(refs.numData(), threads, [&](std::int64_t d) {
    result.perData[static_cast<std::size_t>(d)] =
        evaluateDatum(schedule, refs, model, static_cast<DataId>(d));
  });
  // Integer costs: the sequential reduction keeps the aggregate exact and
  // thread-count independent.
  for (const CostBreakdown& b : result.perData) result.aggregate += b;
  return result;
}

EvalResult evaluateSchedule(const DataSchedule& schedule,
                            const WindowedRefs& refs,
                            const CostModel& model) {
  return evaluateSchedule(schedule, refs, model, /*threads=*/1);
}

}  // namespace pimsched

#pragma once

#include <string>
#include <vector>

#include "core/schedule.hpp"
#include "cost/cost_model.hpp"
#include "trace/windowed_refs.hpp"

namespace pimsched {

/// Structured schedule diagnostics — what a runtime or CI check would run
/// on a schedule before deploying it. Collects every violation instead of
/// failing on the first.
struct ScheduleIssue {
  enum class Kind {
    kIncompleteCell,     ///< center unset for a (datum, window)
    kInvalidProcessor,   ///< center outside the grid
    kCapacityExceeded,   ///< a (window, processor) over its slot budget
    kDeadCenter,         ///< a datum placed on a dead processor
    kUnreachableServe,   ///< a referencing processor cannot reach the center
    kUnreachableMove,    ///< a window-to-window migration has no alive route
  };
  Kind kind;
  DataId data = -1;     ///< -1 when not datum-specific
  WindowId window = -1;
  ProcId proc = kNoProc;
  std::string detail;
};

struct VerifyReport {
  std::vector<ScheduleIssue> issues;
  [[nodiscard]] bool ok() const { return issues.empty(); }
};

/// Checks shape, completeness, processor validity and per-window capacity
/// (capacity < 0 = unlimited).
[[nodiscard]] VerifyReport verifySchedule(const DataSchedule& schedule,
                                          const Grid& grid,
                                          std::int64_t capacity);

/// Fault-side checks of a schedule against a fault-aware cost model: no
/// datum on a dead processor (kDeadCenter), every referencing processor
/// can reach its window's center over the alive sub-mesh
/// (kUnreachableServe), and every migration between consecutive windows
/// has an alive route (kUnreachableMove). A model without a DistanceMap
/// trivially passes. This is what the serving daemon runs on schedules
/// produced against a faulted topology before replying `completed`.
[[nodiscard]] VerifyReport verifyScheduleFaults(const DataSchedule& schedule,
                                                const WindowedRefs& refs,
                                                const CostModel& model);

/// Differences between two schedules over the same shape: how many
/// (datum, window) cells differ and how the migration behaviour changes.
struct ScheduleDiff {
  std::int64_t differingCells = 0;
  std::int64_t migrationsA = 0;  ///< center changes between windows in A
  std::int64_t migrationsB = 0;
  std::int64_t dataAffected = 0;  ///< data with at least one differing cell
};

[[nodiscard]] ScheduleDiff diffSchedules(const DataSchedule& a,
                                         const DataSchedule& b);

}  // namespace pimsched

#pragma once

#include <string>
#include <vector>

#include "core/schedule.hpp"
#include "cost/cost_model.hpp"
#include "trace/windowed_refs.hpp"

namespace pimsched {

/// Structured schedule diagnostics — what a runtime or CI check would run
/// on a schedule before deploying it. Collects every violation instead of
/// failing on the first.
struct ScheduleIssue {
  enum class Kind {
    kIncompleteCell,     ///< center unset for a (datum, window)
    kInvalidProcessor,   ///< center outside the grid
    kCapacityExceeded,   ///< a (window, processor) over its slot budget
  };
  Kind kind;
  DataId data = -1;     ///< -1 when not datum-specific
  WindowId window = -1;
  ProcId proc = kNoProc;
  std::string detail;
};

struct VerifyReport {
  std::vector<ScheduleIssue> issues;
  [[nodiscard]] bool ok() const { return issues.empty(); }
};

/// Checks shape, completeness, processor validity and per-window capacity
/// (capacity < 0 = unlimited).
[[nodiscard]] VerifyReport verifySchedule(const DataSchedule& schedule,
                                          const Grid& grid,
                                          std::int64_t capacity);

/// Differences between two schedules over the same shape: how many
/// (datum, window) cells differ and how the migration behaviour changes.
struct ScheduleDiff {
  std::int64_t differingCells = 0;
  std::int64_t migrationsA = 0;  ///< center changes between windows in A
  std::int64_t migrationsB = 0;
  std::int64_t dataAffected = 0;  ///< data with at least one differing cell
};

[[nodiscard]] ScheduleDiff diffSchedules(const DataSchedule& a,
                                         const DataSchedule& b);

}  // namespace pimsched

#include "core/data_order.hpp"

#include <algorithm>
#include <numeric>

namespace pimsched {

std::vector<DataId> dataVisitOrder(const WindowedRefs& refs,
                                   DataOrder order) {
  std::vector<DataId> out(static_cast<std::size_t>(refs.numData()));
  std::iota(out.begin(), out.end(), 0);
  if (order == DataOrder::kByWeightDesc) {
    std::stable_sort(out.begin(), out.end(), [&refs](DataId a, DataId b) {
      return refs.dataWeight(a) > refs.dataWeight(b);
    });
  }
  return out;
}

}  // namespace pimsched

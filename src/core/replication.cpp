#include "core/replication.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/data_order.hpp"
#include "cost/center_list.hpp"
#include "cost/kmedian.hpp"
#include "pim/memory.hpp"

namespace pimsched {

std::int64_t ReplicatedSchedule::totalReplicas() const {
  std::int64_t total = 0;
  for (const auto& r : replicas_) total += static_cast<std::int64_t>(r.size());
  return total;
}

ReplicatedSchedule scheduleReplicated(const WindowedRefs& refs,
                                      const CostModel& model,
                                      const ReplicationOptions& options) {
  if (options.maxReplicasPerDatum < 1) {
    throw std::invalid_argument(
        "scheduleReplicated: maxReplicasPerDatum must be >= 1");
  }
  ReplicatedSchedule schedule(refs.numData());
  OccupancyMap occupancy(model.grid(), options.capacity);
  const std::vector<DataId> order = dataVisitOrder(refs, options.order);

  // Phase 1: every datum gets its primary copy (the SCDS placement with
  // the capacity fallback) before any replica may claim a slot — replicas
  // are strictly optional and must not starve later primaries.
  for (const DataId d : order) {
    const std::vector<ProcWeight> merged =
        refs.mergedRefs(d, 0, refs.numWindows());
    const std::vector<Cost> costs = centerCosts(model, merged);
    const CenterList list(costs);
    const ProcId primary = list.firstAvailable(occupancy);
    if (primary == kNoProc) {
      throw std::runtime_error(
          "scheduleReplicated: capacity infeasible for primary copies");
    }
    occupancy.tryPlace(primary);
    schedule.setReplicas(d, {primary});
  }

  // Phase 2: grow replica sets with the remaining slots.
  for (const DataId d : order) {
    const std::vector<ProcWeight> merged =
        refs.mergedRefs(d, 0, refs.numWindows());
    std::vector<ProcId> replicas(schedule.replicas(d).begin(),
                                 schedule.replicas(d).end());
    Cost current = nearestCenterCost(model, merged, replicas);

    // Grow the replica set while each copy pays for itself. kMedian gives
    // the target set; we re-derive the incremental copy so that capacity
    // can veto individual replicas.
    for (int k = 2; k <= options.maxReplicasPerDatum; ++k) {
      const KMedianResult target = kMedian(model, merged, k);
      if (current - target.cost < options.minGainPerReplica) break;
      // Add the target's centers we do not hold yet, best-gain first.
      ProcId bestProc = kNoProc;
      Cost bestCost = current;
      for (const ProcId c : target.centers) {
        if (std::find(replicas.begin(), replicas.end(), c) !=
            replicas.end()) {
          continue;
        }
        if (!occupancy.hasRoom(c)) continue;
        std::vector<ProcId> candidate = replicas;
        candidate.push_back(c);
        const Cost cost = nearestCenterCost(model, merged, candidate);
        if (cost < bestCost) {
          bestCost = cost;
          bestProc = c;
        }
      }
      if (bestProc == kNoProc ||
          current - bestCost < options.minGainPerReplica) {
        break;
      }
      occupancy.tryPlace(bestProc);
      replicas.push_back(bestProc);
      current = bestCost;
    }
    std::sort(replicas.begin(), replicas.end());
    schedule.setReplicas(d, std::move(replicas));
  }
  return schedule;
}

Cost evaluateReplicated(const ReplicatedSchedule& schedule,
                        const WindowedRefs& refs, const CostModel& model) {
  if (schedule.numData() != refs.numData()) {
    throw std::invalid_argument("evaluateReplicated: shape mismatch");
  }
  Cost total = 0;
  for (DataId d = 0; d < refs.numData(); ++d) {
    const std::span<const ProcId> reps = schedule.replicas(d);
    for (WindowId w = 0; w < refs.numWindows(); ++w) {
      total += nearestCenterCost(model, refs.refs(d, w), reps);
    }
  }
  return total;
}

}  // namespace pimsched

#include "core/lomcds.hpp"

#include <stdexcept>
#include <string>

#include "core/data_order.hpp"
#include "cost/center_costs.hpp"
#include "cost/center_list.hpp"
#include "fault/fault_map.hpp"
#include "obs/obs.hpp"
#include "pim/memory.hpp"

namespace pimsched {

DataSchedule scheduleLomcds(const WindowedRefs& refs, const CostModel& model,
                            const SchedulerOptions& options) {
  PIMSCHED_SCOPED_TIMER("sched.lomcds");
  DataSchedule schedule(refs.numData(), refs.numWindows());
  const Grid& grid = model.grid();
  const std::vector<DataId> order = dataVisitOrder(refs, options.order);

  // Buffered locally and merged once on exit to keep the placement loop
  // free of atomic traffic.
  std::int64_t placements = 0;
  for (WindowId w = 0; w < refs.numWindows(); ++w) {
    OccupancyMap occupancy(grid, options.capacity);
    if (const FaultMap* faults = model.faults()) {
      applyFaultCapacity(occupancy, *faults);
    }
    for (const DataId d : order) {
      const std::span<const ProcWeight> rs = refs.refs(d, w);
      std::vector<Cost> costs;
      if (!rs.empty()) {
        costs = centerCosts(model, rs);
      } else if (w > 0) {
        // Unreferenced: prefer staying put; otherwise the cheapest move.
        const ProcId prev = schedule.center(d, w - 1);
        costs.resize(static_cast<std::size_t>(grid.size()));
        for (ProcId p = 0; p < grid.size(); ++p) {
          costs[static_cast<std::size_t>(p)] = model.moveCost(prev, p);
        }
      } else {
        // First window, no references: any processor does — except dead
        // ones, which cost zero like everything else here and so must be
        // forbidden explicitly.
        costs.assign(static_cast<std::size_t>(grid.size()), 0);
        if (model.faultAware()) {
          for (ProcId p = 0; p < grid.size(); ++p) {
            if (model.centerForbidden(p)) {
              costs[static_cast<std::size_t>(p)] = kInfiniteCost;
            }
          }
        }
      }
      const CenterList list(costs);
      const ProcId p = list.firstAvailable(occupancy);
      if (p == kNoProc) {
        if (!list.hasFeasible()) {
          throw UnreachableError(
              "scheduleLomcds: no feasible center for datum " +
              std::to_string(d) + " in window " + std::to_string(w) +
              " on faulted mesh");
        }
        throw std::runtime_error(
            "scheduleLomcds: capacity infeasible (all processors full)");
      }
      if (!occupancy.tryPlace(p)) {
        // firstAvailable only returns processors with room; a failure here
        // means the occupancy accounting itself went wrong.
        throw std::logic_error(
            "scheduleLomcds: tryPlace failed for datum " + std::to_string(d) +
            " window " + std::to_string(w) + " on processor " +
            std::to_string(p) + " (used " + std::to_string(occupancy.used(p)) +
            "/" + std::to_string(occupancy.capacity()) + ")");
      }
      schedule.setCenter(d, w, p);
      ++placements;
    }
  }
  PIMSCHED_COUNTER_ADD("sched.lomcds.placements", placements);
  return schedule;
}

}  // namespace pimsched

#include "core/lomcds.hpp"

#include <stdexcept>

#include "core/data_order.hpp"
#include "cost/center_costs.hpp"
#include "cost/center_list.hpp"
#include "pim/memory.hpp"

namespace pimsched {

DataSchedule scheduleLomcds(const WindowedRefs& refs, const CostModel& model,
                            const SchedulerOptions& options) {
  DataSchedule schedule(refs.numData(), refs.numWindows());
  const Grid& grid = model.grid();
  const std::vector<DataId> order = dataVisitOrder(refs, options.order);

  for (WindowId w = 0; w < refs.numWindows(); ++w) {
    OccupancyMap occupancy(grid, options.capacity);
    for (const DataId d : order) {
      const std::span<const ProcWeight> rs = refs.refs(d, w);
      std::vector<Cost> costs;
      if (!rs.empty()) {
        costs = centerCosts(model, rs);
      } else if (w > 0) {
        // Unreferenced: prefer staying put; otherwise the cheapest move.
        const ProcId prev = schedule.center(d, w - 1);
        costs.resize(static_cast<std::size_t>(grid.size()));
        for (ProcId p = 0; p < grid.size(); ++p) {
          costs[static_cast<std::size_t>(p)] = model.moveCost(prev, p);
        }
      } else {
        costs.assign(static_cast<std::size_t>(grid.size()), 0);
      }
      const CenterList list(costs);
      const ProcId p = list.firstAvailable(occupancy);
      if (p == kNoProc) {
        throw std::runtime_error(
            "scheduleLomcds: capacity infeasible (all processors full)");
      }
      occupancy.tryPlace(p);
      schedule.setCenter(d, w, p);
    }
  }
  return schedule;
}

}  // namespace pimsched

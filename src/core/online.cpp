#include "core/online.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/data_order.hpp"
#include "cost/center_costs.hpp"
#include "graph/layered_dag.hpp"
#include "pim/memory.hpp"

namespace pimsched {

DataSchedule scheduleOnline(const WindowedRefs& refs, const CostModel& model,
                            const OnlineOptions& options) {
  if (options.lookahead < 0) {
    throw std::invalid_argument("scheduleOnline: negative lookahead");
  }
  const Grid& grid = model.grid();
  const int W = refs.numWindows();
  const Cost beta = model.params().hopCost * model.params().moveVolume;
  DataSchedule schedule(refs.numData(), W);

  std::vector<OccupancyMap> occupancy(
      static_cast<std::size_t>(W), OccupancyMap(grid, options.capacity));

  for (const DataId d : dataVisitOrder(refs, options.order)) {
    // Serving costs per window are reused across horizons.
    std::vector<std::vector<Cost>> serve(static_cast<std::size_t>(W));
    for (WindowId w = 0; w < W; ++w) {
      serve[static_cast<std::size_t>(w)] =
          centerCosts(model, refs.refs(d, w));
    }

    ProcId prev = kNoProc;
    for (WindowId w = 0; w < W; ++w) {
      const int horizon =
          std::min<int>(W - w, options.lookahead + 1);
      // Layer l of the horizon DP is window w + l; the committed previous
      // center enters as a movement term on layer 0. Capacity: only the
      // window being committed must have room — future windows' slots are
      // not reserved (they will be re-checked when committed), matching
      // an online system that cannot reserve the future.
      const auto nodeCost = [&](int l, int p) -> Cost {
        const WindowId win = w + static_cast<WindowId>(l);
        Cost c = serve[static_cast<std::size_t>(win)]
                      [static_cast<std::size_t>(p)];
        if (l == 0) {
          if (!occupancy[static_cast<std::size_t>(win)].hasRoom(
                  static_cast<ProcId>(p))) {
            return kInfiniteCost;
          }
          if (prev != kNoProc) {
            c = satAdd(c, model.moveCost(prev, static_cast<ProcId>(p)));
          }
        }
        return c;
      };
      const LayeredPath path =
          LayeredDagSolver::solveManhattan(grid, horizon, nodeCost, beta);
      if (!path.feasible()) {
        throw std::runtime_error(
            "scheduleOnline: capacity infeasible (window full)");
      }
      const auto chosen = static_cast<ProcId>(path.nodes[0]);
      occupancy[static_cast<std::size_t>(w)].tryPlace(chosen);
      schedule.setCenter(d, w, chosen);
      prev = chosen;
    }
  }
  return schedule;
}

}  // namespace pimsched

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/gomcds.hpp"
#include "core/schedule.hpp"
#include "core/scheduler_options.hpp"
#include "cost/cost_model.hpp"
#include "graph/layered_dag.hpp"
#include "trace/windowed_refs.hpp"
#include "util/aligned.hpp"

namespace pimsched {

namespace detail {

/// Core of the incremental change detector, parameterized on the signature
/// prescreen and the authoritative row comparison. Returns the first window
/// w where either the per-window FNV-1a signatures differ or — signatures
/// equal — the full row comparison disagrees (an FNV collision, which must
/// still be detected as "changed"); numWindows when every window matches.
/// Exposed as a template seam for the collision regression test: genuine
/// 64-bit FNV-1a collisions are computationally infeasible to craft, so the
/// test injects forced-equal signatures against the real comparator and
/// exercises the exact production code path.
template <class SigEqFn, class RowEqFn>
int firstChangedWindowImpl(int numWindows, const SigEqFn& sigEqual,
                           const RowEqFn& rowEqual) {
  for (int w = 0; w < numWindows; ++w) {
    if (!sigEqual(w)) return w;
    if (!rowEqual(w)) return w;  // signature collision — full compare decides
  }
  return numWindows;
}

}  // namespace detail

/// First window where datum d's reference string differs between `now` and
/// `prev` (same datum-id domain): per-window signature prescreen, full
/// compare on signature match to rule out collisions. Returns numWindows
/// when the datum's refs are identical in every window, and 0 when the
/// shapes disagree (nothing can be reused).
[[nodiscard]] int firstChangedWindow(const WindowedRefs& now,
                                     const WindowedRefs& prev, DataId d);

/// Resolves the effective incremental toggle: SchedulerOptions::incremental
/// gated by the PIMSCHED_INCREMENTAL environment variable ("0"/"off"/
/// "false" force-disables the warm path process-wide; anything else, or
/// unset, defers to the option).
[[nodiscard]] bool incrementalEnabled(const SchedulerOptions& options);

/// Warm-start GOMCDS solver for long-running streams whose traces evolve at
/// the tail. Each solve() retains the per-equivalence-class serving-cost
/// tables, dp tables, predecessor caches, and solved paths; the next
/// solve() detects the first changed window per datum (direct row
/// comparison — authoritative, and in the CSR layout cheaper than
/// recomputing either side's signature), reuses the retained prefix rows
/// untouched, and re-relaxes only the changed suffix through the same
/// SIMD-dispatched flat kernels. The shared beta x distance transition
/// table of the faulted engine is retained across solves as well.
///
/// Warm solves also skip the full reference-string rehash of the cold
/// dedup classing: the new partition is derived from the previous one by
/// subdividing each retained class on (first changed window, changed
/// suffix) — suffix FNV-1a signatures prescreen, a full suffix comparison
/// confirms on match, the same collision discipline as the cold classing.
/// The result is a *refinement* of the cold partition (classes may split
/// when members' suffixes diverge, and two classes whose contents converge
/// are not re-merged until the next cold solve). Refinement is sound here
/// because classes only share work: under the static forbidden set every
/// datum's path is a deterministic function of its own reference string,
/// so a split costs duplicate solves but cannot change any schedule cell.
///
/// The result is bit-identical to scheduleGomcds(refs, model, options,
/// engine) on every call — warm-start is purely a speed/memory trade. The
/// solver falls back to a cold solve (counter gomcds.incremental.cold_falls)
/// whenever reuse would be unsound or unprofitable: no retained state, a
/// changed model/options/shape fingerprint, a capacity-constrained solve
/// (the forbidden set then grows per datum, so per-class paths cannot be
/// shared), or the incremental toggle off.
///
/// Not thread-safe: one IncrementalSolver per stream, externally
/// serialized. Memory: retains O(numClasses * numWindows * numProcs) costs
/// between solves — see retainedBytes().
class IncrementalSolver {
 public:
  struct Stats {
    std::int64_t reusedLayers = 0;   ///< per-class dp rows reused verbatim
    std::int64_t relaxedLayers = 0;  ///< per-class dp rows re-relaxed
    bool cold = true;                ///< this solve ran without warm state
  };

  IncrementalSolver() = default;

  /// Drop-in replacement for scheduleGomcds with state retention.
  [[nodiscard]] DataSchedule solve(const WindowedRefs& refs,
                                   const CostModel& model,
                                   const SchedulerOptions& options = {},
                                   GomcdsEngine engine = GomcdsEngine::kChamfer);

  /// Stats of the most recent solve().
  [[nodiscard]] const Stats& lastStats() const { return stats_; }

  /// Epoch invalidation: drops all retained state so the next solve runs
  /// cold. Streaming callers invoke this on fault drift; the solver also
  /// detects model changes itself via a content fingerprint, so this is a
  /// belt-and-braces fast path, not the only line of defense.
  void invalidate();

  /// Bytes held by retained cost tables and paths (shared class states
  /// counted once).
  [[nodiscard]] std::size_t retainedBytes() const;

 private:
  /// Retained per-equivalence-class solve state. shared_ptr because a class
  /// whose refs are fully unchanged keeps sharing the previous generation's
  /// state with zero copying.
  struct ClassState {
    CostBuffer serve;  ///< flat W x P serving-cost table
    CostBuffer dp;     ///< flat W x P dp table of the layered DAG
    LayeredParentCache parents;  ///< memoized predecessor scans for `dp`
    LayeredPath path;  ///< solved path (static forbidden set only)
  };

  DataSchedule coldFall(const WindowedRefs& refs, const CostModel& model,
                        const SchedulerOptions& options, GomcdsEngine engine);

  Stats stats_;
  bool retainedValid_ = false;
  std::uint64_t fingerprint_ = 0;
  std::optional<WindowedRefs> prevRefs_;
  std::vector<int> prevClassOf_;  ///< datum -> previous class index
  std::vector<std::shared_ptr<ClassState>> prevStates_;
  std::vector<Cost> trans_;  ///< retained transition table (naive engine)
  bool transValid_ = false;
  LayeredDagScratch scratch_;
};

}  // namespace pimsched

#include "core/adaptive_window.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <vector>

namespace pimsched {

namespace {

struct Centroid {
  double row = 0.0;
  double col = 0.0;
  double weight = 0.0;

  void add(const Coord& c, Cost w) {
    const double dw = static_cast<double>(w);
    row += c.row * dw;
    col += c.col * dw;
    weight += dw;
  }

  [[nodiscard]] double distanceTo(const Centroid& o) const {
    if (weight == 0.0 || o.weight == 0.0) return 0.0;
    return std::abs(row / weight - o.row / o.weight) +
           std::abs(col / weight - o.col / o.weight);
  }

  void merge(const Centroid& o) {
    row += o.row;
    col += o.col;
    weight += o.weight;
  }
};

}  // namespace

WindowPartition adaptiveWindows(const ReferenceTrace& trace, const Grid& grid,
                                const AdaptiveWindowOptions& options) {
  if (!trace.finalized()) {
    throw std::invalid_argument("adaptiveWindows: trace must be finalized");
  }
  if (options.driftThreshold < 0.0) {
    throw std::invalid_argument("adaptiveWindows: negative threshold");
  }
  const StepId steps = trace.numSteps();
  if (steps == 0) return WindowPartition({}, 0);

  // Per-step reference centroids.
  std::vector<Centroid> perStep(static_cast<std::size_t>(steps));
  for (const Access& a : trace.accesses()) {
    perStep[static_cast<std::size_t>(a.step)].add(grid.coord(a.proc),
                                                  a.weight);
  }

  std::vector<StepId> starts = {0};
  Centroid window = perStep[0];
  StepId windowLen = 1;
  for (StepId s = 1; s < steps; ++s) {
    const bool tooLong =
        options.maxWindowSteps > 0 && windowLen >= options.maxWindowSteps;
    const bool drifted =
        perStep[static_cast<std::size_t>(s)].distanceTo(window) >
        options.driftThreshold;
    if (tooLong || drifted) {
      starts.push_back(s);
      window = perStep[static_cast<std::size_t>(s)];
      windowLen = 1;
    } else {
      window.merge(perStep[static_cast<std::size_t>(s)]);
      ++windowLen;
    }
  }
  return WindowPartition(std::move(starts), steps);
}

}  // namespace pimsched

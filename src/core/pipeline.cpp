#include "core/pipeline.hpp"

#include <stdexcept>
#include <utility>

#include "fault/fault_trace.hpp"
#include "obs/obs.hpp"
#include "pim/memory.hpp"

namespace pimsched {

std::string toString(Method m) {
  switch (m) {
    case Method::kRowWise: return "S.F.(row-wise)";
    case Method::kColWise: return "col-wise";
    case Method::kBlock2D: return "block-2d";
    case Method::kCyclic2D: return "cyclic-2d";
    case Method::kRandom: return "random";
    case Method::kScds: return "SCDS";
    case Method::kLomcds: return "LOMCDS";
    case Method::kGomcds: return "GOMCDS";
    case Method::kGroupedLomcds: return "LOMCDS+group";
    case Method::kGroupedGomcds: return "GOMCDS+group";
    case Method::kGroupedOptimal: return "LOMCDS+group*";
  }
  return "unknown";
}

std::optional<Method> methodFromString(const std::string& name) {
  if (name == "rowwise") return Method::kRowWise;
  if (name == "colwise") return Method::kColWise;
  if (name == "block") return Method::kBlock2D;
  if (name == "cyclic") return Method::kCyclic2D;
  if (name == "random") return Method::kRandom;
  if (name == "scds") return Method::kScds;
  if (name == "lomcds") return Method::kLomcds;
  if (name == "gomcds") return Method::kGomcds;
  if (name == "grouped") return Method::kGroupedLomcds;
  if (name == "groupedgomcds") return Method::kGroupedGomcds;
  if (name == "groupedoptimal") return Method::kGroupedOptimal;
  return std::nullopt;
}

Digest configDigest(const PipelineConfig& config) {
  DigestBuilder b;
  b.str("pimconfig");
  if (config.explicitWindows.has_value()) {
    const WindowPartition& p = *config.explicitWindows;
    b.u64(1);
    b.i64(p.numSteps());
    b.u64(static_cast<std::uint64_t>(p.numWindows()));
    for (WindowId w = 0; w < p.numWindows(); ++w) b.i64(p.window(w).begin);
  } else {
    b.u64(0);
    b.i64(config.numWindows);
  }
  b.i64(config.capacity);
  b.i64(config.costParams.hopCost);
  b.i64(config.costParams.moveVolume);
  b.i64(static_cast<std::int64_t>(config.order));
  return b.digest();
}

namespace {

void resolveCapacity(std::int64_t& capacity, std::int64_t numData,
                     std::int64_t procs) {
  if (capacity == PipelineConfig::kPaperCapacity) {
    // The paper's "twice the minimum" rule; over a faulted mesh the
    // minimum counts only alive processors.
    capacity = 2 * ((numData + procs - 1) / procs);
  } else if (capacity == PipelineConfig::kUnlimited) {
    capacity = -1;
  } else if (capacity < 0) {
    throw std::invalid_argument("Experiment: invalid capacity sentinel");
  }
}

const FaultMap& checkFaultGrid(const FaultMap& faults, const Grid& grid) {
  if (&faults.grid() != &grid) {
    throw std::invalid_argument(
        "Experiment: FaultMap built over a different grid");
  }
  return faults;
}

}  // namespace

Experiment::Experiment(const ReferenceTrace& trace, const Grid& grid,
                       PipelineConfig config)
    : space_(&trace.dataSpace()),
      grid_(&grid),
      config_(config),
      windows_(config.explicitWindows.has_value()
                   ? *config.explicitWindows
                   : WindowPartition::evenCount(trace.numSteps(),
                                                config.numWindows)),
      refs_(trace, windows_, grid),
      model_(grid, config.costParams),
      capacity_(config.capacity) {
  if (trace.numSteps() == 0) {
    throw std::invalid_argument(
        "Experiment: trace has no steps (nothing to schedule)");
  }
  resolveCapacity(capacity_, trace.numData(), grid.size());
}

Experiment::Experiment(const ReferenceTrace& trace, const Grid& grid,
                       const FaultMap& faults, PipelineConfig config)
    : space_(&trace.dataSpace()),
      grid_(&grid),
      config_(config),
      windows_(config.explicitWindows.has_value()
                   ? *config.explicitWindows
                   : WindowPartition::evenCount(trace.numSteps(),
                                                config.numWindows)),
      faults_(checkFaultGrid(faults, grid)),
      distances_(std::in_place, grid, *faults_),
      refs_(WindowedRefs(trace, windows_, grid)
                .withProcsMasked(faults_->deadProcMask())),
      model_(grid, *distances_, config.costParams),
      capacity_(config.capacity) {
  if (trace.numSteps() == 0) {
    throw std::invalid_argument(
        "Experiment: trace has no steps (nothing to schedule)");
  }
  if (faults_->aliveProcCount() == 0) {
    throw UnreachableError("Experiment: every processor is dead (" +
                           faults_->summary() + ")");
  }
  resolveCapacity(capacity_, trace.numData(), faults_->aliveProcCount());
}

DataSchedule Experiment::schedule(Method m) const {
  const SchedulerOptions opts{capacity_, config_.order};
  switch (m) {
    case Method::kRowWise:
      return baselineSchedule(BaselineKind::kRowWise, *space_, *grid_,
                              refs_.numWindows());
    case Method::kColWise:
      return baselineSchedule(BaselineKind::kColWise, *space_, *grid_,
                              refs_.numWindows());
    case Method::kBlock2D:
      return baselineSchedule(BaselineKind::kBlock2D, *space_, *grid_,
                              refs_.numWindows());
    case Method::kCyclic2D:
      return baselineSchedule(BaselineKind::kCyclic2D, *space_, *grid_,
                              refs_.numWindows());
    case Method::kRandom:
      return baselineSchedule(BaselineKind::kRandom, *space_, *grid_,
                              refs_.numWindows());
    case Method::kScds:
      return scheduleScds(refs_, model_, opts);
    case Method::kLomcds:
      return scheduleLomcds(refs_, model_, opts);
    case Method::kGomcds:
      return config_.threads == 1
                 ? scheduleGomcds(refs_, model_, opts)
                 : scheduleGomcdsParallel(refs_, model_, opts,
                                          config_.threads);
    case Method::kGroupedLomcds:
      return scheduleGroupedLomcds(refs_, model_, opts,
                                   GroupingMethod::kGreedy);
    case Method::kGroupedGomcds:
      return scheduleGroupedGomcds(refs_, model_, opts);
    case Method::kGroupedOptimal:
      return scheduleGroupedLomcds(refs_, model_, opts,
                                   GroupingMethod::kOptimalDp);
  }
  throw std::invalid_argument("Experiment::schedule: unknown method");
}

EvalResult Experiment::evaluate(Method m) const {
  return evaluateSchedule(schedule(m), refs_, model_, config_.threads);
}

StreamSession::StreamSession(int gridRows, int gridCols,
                             PipelineConfig config, Method method,
                             const std::vector<std::string>& faultSpecs)
    : grid_(gridRows, gridCols),
      config_(config),
      method_(method),
      faults_(grid_) {
  if (!faultSpecs.empty()) {
    for (const std::string& spec : faultSpecs) {
      if (!applyFaultSpec(faults_, spec)) {
        throw std::invalid_argument("StreamSession: bad fault spec \"" +
                                    spec + "\"");
      }
    }
    faultAware_ = true;
    distances_.emplace(grid_, faults_);
  }
}

StreamStepResult StreamSession::step(const ReferenceTrace& trace) {
  PIMSCHED_SCOPED_TIMER("stream.step");
  if (trace.numSteps() == 0) {
    throw std::invalid_argument(
        "StreamSession: trace has no steps (nothing to schedule)");
  }
  if (faultAware_ && faults_.aliveProcCount() == 0) {
    throw UnreachableError("StreamSession: every processor is dead (" +
                           faults_.summary() + ")");
  }
  const WindowPartition windows =
      config_.explicitWindows.has_value()
          ? *config_.explicitWindows
          : WindowPartition::evenCount(trace.numSteps(), config_.numWindows);
  WindowedRefs baseRefs(trace, windows, grid_);
  const WindowedRefs refs =
      faultAware_ ? baseRefs.withProcsMasked(faults_.deadProcMask())
                  : baseRefs;
  const CostModel model =
      faultAware_ ? CostModel(grid_, *distances_, config_.costParams)
                  : CostModel(grid_, config_.costParams);
  std::int64_t capacity = config_.capacity;
  resolveCapacity(capacity, trace.numData(),
                  faultAware_ ? faults_.aliveProcCount() : grid_.size());

  const bool warmPath = method_ == Method::kGomcds;
  DataSchedule schedule = [&]() -> DataSchedule {
    if (warmPath) {
      // The warm path: identical to scheduleGomcds on every step, reusing
      // every dp row before the first changed window of each class.
      const SchedulerOptions opts{capacity, config_.order};
      return solver_.solve(refs, model, opts);
    }
    // Any other method is supported but never warm: one cold Experiment
    // per revision.
    PipelineConfig stepConfig = config_;
    stepConfig.capacity = capacity;
    return faultAware_
               ? Experiment(trace, grid_, faults_, stepConfig).schedule(method_)
               : Experiment(trace, grid_, stepConfig).schedule(method_);
  }();
  EvalResult eval = evaluateSchedule(schedule, refs, model, config_.threads);
  StreamStepResult out{std::move(schedule), std::move(eval)};
  if (warmPath) {
    const IncrementalSolver::Stats& stats = solver_.lastStats();
    out.incremental = !stats.cold;
    out.reusedLayers = stats.reusedLayers;
    out.relaxedLayers = stats.relaxedLayers;
  }

  lastSchedule_ = out.schedule;
  lastBaseRefs_ = std::move(baseRefs);
  lastCapacity_ = capacity;
  ++steps_;
  PIMSCHED_COUNTER_ADD("stream.steps", 1);
  if (out.incremental) PIMSCHED_COUNTER_ADD("stream.warm_steps", 1);
  return out;
}

void StreamSession::applyDrift(const std::vector<std::string>& specs,
                               bool heal) {
  if (heal) faults_.clear();
  for (const std::string& spec : specs) {
    if (!applyFaultSpec(faults_, spec)) {
      throw std::invalid_argument("StreamSession: bad fault spec \"" + spec +
                                  "\"");
    }
  }
  faultAware_ = true;
  distances_.emplace(grid_, faults_);
  // One epoch invalidation covers both the solver's warm state and any
  // caller-side warm assumptions (the fingerprint would catch the model
  // change anyway; dropping state now frees the memory immediately).
  solver_.invalidate();
  ++driftEpoch_;
  PIMSCHED_COUNTER_ADD("stream.drift", 1);
}

StreamRepairResult StreamSession::repairLast(WindowId faultWindow) {
  if (!lastSchedule_.has_value() || !lastBaseRefs_.has_value()) {
    throw std::logic_error("StreamSession: no schedule to repair yet");
  }
  if (!faultAware_) {
    // Repair under a fault-oblivious model is the identity; normalize
    // through an (empty) fault-aware model so the RepairResult fields are
    // meaningful either way.
    faultAware_ = true;
    distances_.emplace(grid_, faults_);
  }
  const WindowedRefs refs =
      lastBaseRefs_->withProcsMasked(faults_.deadProcMask());
  const CostModel model(grid_, *distances_, config_.costParams);
  RepairOptions options;
  options.faultWindow = faultWindow;
  options.capacity = lastCapacity_;
  StreamRepairResult out{repairSchedule(*lastSchedule_, refs, model, options),
                         {}};
  out.eval = evaluateSchedule(out.repair.schedule, refs, model,
                              config_.threads);
  lastSchedule_ = out.repair.schedule;
  PIMSCHED_COUNTER_ADD("stream.repairs", 1);
  return out;
}

double improvementPct(Cost base, Cost cost) {
  if (base == 0) return 0.0;
  return 100.0 * static_cast<double>(base - cost) /
         static_cast<double>(base);
}

}  // namespace pimsched

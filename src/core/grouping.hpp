#pragma once

#include <vector>

#include "core/schedule.hpp"
#include "core/scheduler_options.hpp"
#include "cost/center_costs.hpp"
#include "cost/cost_model.hpp"
#include "trace/windowed_refs.hpp"

namespace pimsched {

/// Per-datum cumulative serving costs: segment(b, e, p) is the cost of
/// serving windows [b, e) of one datum from processor p, in O(1) after an
/// O(numWindows * numProcs) prefix build. This is what makes Algorithm 3's
/// repeated regrouping cheap.
class WindowCostPrefix {
 public:
  WindowCostPrefix(const WindowedRefs& refs, DataId d, const CostModel& model);

  [[nodiscard]] int numWindows() const { return numWindows_; }
  [[nodiscard]] int numProcs() const { return numProcs_; }

  [[nodiscard]] Cost segment(WindowId begin, WindowId end, ProcId p) const {
    return at(end, p) - at(begin, p);
  }

  /// Total reference volume of the merged window [begin, end).
  [[nodiscard]] Cost segmentWeight(WindowId begin, WindowId end) const {
    return weightPrefix_[static_cast<std::size_t>(end)] -
           weightPrefix_[static_cast<std::size_t>(begin)];
  }

  /// Min-cost center of a merged window [begin, end), ties to smaller id.
  [[nodiscard]] BestCenter bestSegmentCenter(WindowId begin,
                                             WindowId end) const;

 private:
  [[nodiscard]] Cost at(WindowId w, ProcId p) const {
    return prefix_[static_cast<std::size_t>(w) *
                       static_cast<std::size_t>(numProcs_) +
                   static_cast<std::size_t>(p)];
  }

  int numWindows_;
  int numProcs_;
  std::vector<Cost> prefix_;        ///< (numWindows + 1) x numProcs
  std::vector<Cost> weightPrefix_;  ///< numWindows + 1
};

/// A partition of one datum's windows into consecutive groups, each with a
/// single center — the output of the paper's Algorithm 3.
struct DataGrouping {
  std::vector<WindowId> starts;  ///< first window of each group; starts[0]==0
  std::vector<ProcId> centers;   ///< center of each group

  [[nodiscard]] int numGroups() const {
    return static_cast<int>(starts.size());
  }
};

/// Total cost of a grouping: serving every group from its center plus
/// movement between consecutive group centers (the paper's COST(T)).
[[nodiscard]] Cost groupingCost(const DataGrouping& grouping,
                                const WindowCostPrefix& prefix,
                                const CostModel& model);

/// One singleton group per window with its local-optimal center — the
/// LOMCDS starting point of Algorithm 3. Windows without references keep
/// the previous window's center (a leading run of empty windows adopts the
/// first referenced window's center), matching LOMCDS's stay-put rule so
/// that no phantom movement is charged.
[[nodiscard]] DataGrouping singletonGrouping(const WindowCostPrefix& prefix);

/// Paper Algorithm 3: walk the windows left to right, extending the current
/// group by the next window whenever the total cost does not increase,
/// otherwise starting a new group there. Centers are recomputed per merged
/// window ("using LOMCDS to compute centers").
[[nodiscard]] DataGrouping greedyGrouping(const WindowCostPrefix& prefix,
                                          const CostModel& model);

/// Exact minimum over all groupings (ablation A3): dynamic program over
/// (last window of group, group center) with the same Manhattan chamfer
/// relaxation GOMCDS uses; O(numWindows^2 * numProcs).
[[nodiscard]] DataGrouping optimalGrouping(const WindowCostPrefix& prefix,
                                           const CostModel& model);

enum class GroupingMethod { kGreedy, kOptimalDp };

/// Applies per-datum window grouping and materialises the result as a full
/// schedule (each window of a group gets the group's center), honouring the
/// capacity constraint per window with the processor-list fallback. This is
/// the configuration behind the paper's Table 2.
[[nodiscard]] DataSchedule scheduleGroupedLomcds(
    const WindowedRefs& refs, const CostModel& model,
    const SchedulerOptions& options = {},
    GroupingMethod method = GroupingMethod::kGreedy);

/// The paper's Table 2 GOMCDS column: Algorithm 3 merges each datum's
/// windows (greedy, capacity-aware), then the GOMCDS shortest-path DP
/// re-optimises the center of every *group* jointly with the movement
/// between groups. Never worse than scheduleGroupedLomcds on the same
/// groups; never better than plain GOMCDS (coarser decisions). The
/// practical payoff is speed: the DP runs over groups instead of windows.
[[nodiscard]] DataSchedule scheduleGroupedGomcds(
    const WindowedRefs& refs, const CostModel& model,
    const SchedulerOptions& options = {});

}  // namespace pimsched

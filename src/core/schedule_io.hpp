#pragma once

#include <iosfwd>
#include <string>

#include "core/schedule.hpp"

namespace pimsched {

/// Text serialisation of a DataSchedule — the artifact a PIM runtime would
/// consume to drive initial placement and per-window migrations. Format:
///
///   pimsched v1 <numData> <numWindows>
///   <center(d,0)> <center(d,1)> ... <center(d,W-1)>     (one line per datum)
///
/// Blank lines and lines starting with '#' are ignored on load.
void saveSchedule(const DataSchedule& schedule, std::ostream& os);
void saveScheduleFile(const DataSchedule& schedule, const std::string& path);

/// `numProcs`, when >= 0, bounds every center: a row naming a processor id
/// >= numProcs is rejected (std::runtime_error) instead of flowing into
/// Grid::coord / evaluateSchedule and indexing out of bounds later. Pass
/// the consuming grid's size(); the default skips the check for callers
/// that validate elsewhere.
[[nodiscard]] DataSchedule loadSchedule(std::istream& is,
                                        ProcId numProcs = kNoProc);
[[nodiscard]] DataSchedule loadScheduleFile(const std::string& path,
                                            ProcId numProcs = kNoProc);

}  // namespace pimsched

#pragma once

#include <iosfwd>
#include <string>

#include "core/schedule.hpp"
#include "trace/trace_io.hpp"

namespace pimsched {

/// Canonical digest of a schedule's placement matrix. Byte stream
/// (DigestBuilder rules): str("pimsched"), i64(numData), i64(numWindows),
/// then i64(center(d, w)) for every datum in id order, windows innermost.
[[nodiscard]] Digest scheduleDigest(const DataSchedule& schedule);

/// Text serialisation of a DataSchedule — the artifact a PIM runtime would
/// consume to drive initial placement and per-window migrations. Format:
///
///   pimsched v1 <numData> <numWindows>
///   # digest <32 hex chars>                             (integrity line)
///   <center(d,0)> <center(d,1)> ... <center(d,W-1)>     (one line per datum)
///
/// Blank lines and lines starting with '#' are ignored on load, with one
/// exception: a `# digest <hex>` line (written by saveSchedule) is checked
/// against scheduleDigest() of the loaded placements, and a mismatch is
/// rejected as corruption. Files without the line load as before.
void saveSchedule(const DataSchedule& schedule, std::ostream& os);
void saveScheduleFile(const DataSchedule& schedule, const std::string& path);

/// `numProcs`, when >= 0, bounds every center: a row naming a processor id
/// >= numProcs is rejected (std::runtime_error) instead of flowing into
/// Grid::coord / evaluateSchedule and indexing out of bounds later. Pass
/// the consuming grid's size(); the default skips the check for callers
/// that validate elsewhere.
[[nodiscard]] DataSchedule loadSchedule(std::istream& is,
                                        ProcId numProcs = kNoProc);
[[nodiscard]] DataSchedule loadScheduleFile(const std::string& path,
                                            ProcId numProcs = kNoProc);

}  // namespace pimsched

#pragma once

#include <optional>
#include <string>

#include "core/baselines.hpp"
#include "core/evaluator.hpp"
#include "core/gomcds.hpp"
#include "core/grouping.hpp"
#include "core/lomcds.hpp"
#include "core/scds.hpp"
#include "fault/distance_map.hpp"
#include "fault/fault_map.hpp"
#include "trace/trace_io.hpp"
#include "trace/window.hpp"

namespace pimsched {

/// Every scheduling method the experiments compare.
enum class Method {
  kRowWise,         ///< the paper's "straight-forward" S.F. column
  kColWise,
  kBlock2D,
  kCyclic2D,
  kRandom,
  kScds,
  kLomcds,
  kGomcds,
  kGroupedLomcds,   ///< Algorithm 3 (greedy) on LOMCDS centers — Table 2
  kGroupedGomcds,   ///< Algorithm 3 groups + GOMCDS DP over groups — Table 2's GOMCDS column
  kGroupedOptimal,  ///< optimal-DP grouping ablation
};

[[nodiscard]] std::string toString(Method m);

/// Inverse of the CLI/protocol method spelling: rowwise|colwise|block|
/// cyclic|random|scds|lomcds|gomcds|grouped|groupedgomcds|groupedoptimal.
/// nullopt on anything else. (Shared by pimsched_cli and the serving
/// protocol so both accept the same vocabulary.)
[[nodiscard]] std::optional<Method> methodFromString(const std::string& name);

/// Knobs of one experiment run.
struct PipelineConfig {
  /// Number of execution windows the step sequence is split into
  /// (WindowPartition::evenCount); clamped to the step count. Ignored
  /// when explicitWindows is set.
  int numWindows = 8;

  /// Use these window boundaries verbatim (e.g. from adaptiveWindows)
  /// instead of an even split.
  std::optional<WindowPartition> explicitWindows;

  /// Per-processor capacity: kPaperCapacity applies the paper's "twice the
  /// minimum" rule, kUnlimited disables the constraint, any value >= 0 is
  /// used verbatim.
  static constexpr std::int64_t kPaperCapacity = -2;
  static constexpr std::int64_t kUnlimited = -1;
  std::int64_t capacity = kPaperCapacity;

  CostParams costParams = {};

  /// Data are scheduled heaviest-first by default: the paper's Algorithm 1
  /// visits "each data i" in an unspecified order, and letting data with
  /// the most reference traffic claim their optimal centers first is the
  /// natural processor-list behaviour under memory contention (ablated in
  /// bench/grouping_ablation).
  DataOrder order = DataOrder::kByWeightDesc;

  /// Worker threads for the parallel paths (GOMCDS plan/commit scheduling
  /// and schedule evaluation): 1 = sequential (default), 0 = hardware
  /// concurrency, N = at most N concurrent workers. Results are identical
  /// for every value.
  unsigned threads = 1;
};

/// Binds a trace to a grid + config and runs any Method on it. Windowing,
/// reference aggregation and capacity resolution happen once in the
/// constructor; schedules and costs are computed per call.
///
/// The fault-aware constructor layers a FaultMap over the grid: references
/// issued by dead processors are dropped (dead processors make no
/// requests), all costs use fault-aware hop distances, the paper-capacity
/// rule counts only alive processors, and the scheduling methods refuse
/// dead centers. With an empty FaultMap every result is bit-identical to
/// the fault-oblivious constructor.
class Experiment {
 public:
  Experiment(const ReferenceTrace& trace, const Grid& grid,
             PipelineConfig config = {});

  /// Fault-aware experiment. `faults` must be built over `grid`, and
  /// `grid` must outlive the experiment (the fault state is copied).
  Experiment(const ReferenceTrace& trace, const Grid& grid,
             const FaultMap& faults, PipelineConfig config = {});

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  [[nodiscard]] const Grid& grid() const { return *grid_; }
  [[nodiscard]] const WindowedRefs& refs() const { return refs_; }
  [[nodiscard]] const WindowPartition& windows() const { return windows_; }
  [[nodiscard]] const CostModel& costModel() const { return model_; }
  [[nodiscard]] const DataSpace& dataSpace() const { return *space_; }
  /// Resolved per-processor capacity (>= 0, or -1 for unlimited).
  [[nodiscard]] std::int64_t capacity() const { return capacity_; }
  /// The fault state, or nullptr for a fault-oblivious experiment.
  [[nodiscard]] const FaultMap* faults() const {
    return faults_.has_value() ? &*faults_ : nullptr;
  }

  /// Builds the schedule a method produces.
  [[nodiscard]] DataSchedule schedule(Method m) const;

  /// Schedule + evaluation in one step.
  [[nodiscard]] EvalResult evaluate(Method m) const;

 private:
  const DataSpace* space_;
  const Grid* grid_;
  PipelineConfig config_;
  WindowPartition windows_;
  std::optional<FaultMap> faults_;        ///< owned copy of the fault state
  std::optional<DistanceMap> distances_;  ///< built over faults_
  WindowedRefs refs_;
  CostModel model_;  ///< points at distances_ when fault-aware
  std::int64_t capacity_;
};

/// Percentage improvement of `cost` over `base` (the paper's "%"
/// columns): 100 * (base - cost) / base. Returns 0 when base is 0.
[[nodiscard]] double improvementPct(Cost base, Cost cost);

/// Canonical digest of every config field that can change a schedule or
/// its cost: windowing (explicit boundaries when set, else numWindows),
/// capacity sentinel/value, cost params and data order. `threads` is
/// deliberately excluded — results are bit-identical for every thread
/// count, so thread count must not split the serving result cache.
/// Byte stream (DigestBuilder rules): str("pimconfig"), u64(0|1) for
/// explicitWindows, then either i64(numSteps) + u64(numWindows) +
/// i64(each window start) or i64(numWindows); then i64(capacity),
/// i64(hopCost), i64(moveVolume), i64(order).
[[nodiscard]] Digest configDigest(const PipelineConfig& config);

}  // namespace pimsched

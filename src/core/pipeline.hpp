#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/baselines.hpp"
#include "core/evaluator.hpp"
#include "core/gomcds.hpp"
#include "core/grouping.hpp"
#include "core/incremental.hpp"
#include "core/lomcds.hpp"
#include "core/repair.hpp"
#include "core/scds.hpp"
#include "fault/distance_map.hpp"
#include "fault/fault_map.hpp"
#include "trace/trace_io.hpp"
#include "trace/window.hpp"

namespace pimsched {

/// Every scheduling method the experiments compare.
enum class Method {
  kRowWise,         ///< the paper's "straight-forward" S.F. column
  kColWise,
  kBlock2D,
  kCyclic2D,
  kRandom,
  kScds,
  kLomcds,
  kGomcds,
  kGroupedLomcds,   ///< Algorithm 3 (greedy) on LOMCDS centers — Table 2
  kGroupedGomcds,   ///< Algorithm 3 groups + GOMCDS DP over groups — Table 2's GOMCDS column
  kGroupedOptimal,  ///< optimal-DP grouping ablation
};

[[nodiscard]] std::string toString(Method m);

/// Inverse of the CLI/protocol method spelling: rowwise|colwise|block|
/// cyclic|random|scds|lomcds|gomcds|grouped|groupedgomcds|groupedoptimal.
/// nullopt on anything else. (Shared by pimsched_cli and the serving
/// protocol so both accept the same vocabulary.)
[[nodiscard]] std::optional<Method> methodFromString(const std::string& name);

/// Knobs of one experiment run.
struct PipelineConfig {
  /// Number of execution windows the step sequence is split into
  /// (WindowPartition::evenCount); clamped to the step count. Ignored
  /// when explicitWindows is set.
  int numWindows = 8;

  /// Use these window boundaries verbatim (e.g. from adaptiveWindows)
  /// instead of an even split.
  std::optional<WindowPartition> explicitWindows;

  /// Per-processor capacity: kPaperCapacity applies the paper's "twice the
  /// minimum" rule, kUnlimited disables the constraint, any value >= 0 is
  /// used verbatim.
  static constexpr std::int64_t kPaperCapacity = -2;
  static constexpr std::int64_t kUnlimited = -1;
  std::int64_t capacity = kPaperCapacity;

  CostParams costParams = {};

  /// Data are scheduled heaviest-first by default: the paper's Algorithm 1
  /// visits "each data i" in an unspecified order, and letting data with
  /// the most reference traffic claim their optimal centers first is the
  /// natural processor-list behaviour under memory contention (ablated in
  /// bench/grouping_ablation).
  DataOrder order = DataOrder::kByWeightDesc;

  /// Worker threads for the parallel paths (GOMCDS plan/commit scheduling
  /// and schedule evaluation): 1 = sequential (default), 0 = hardware
  /// concurrency, N = at most N concurrent workers. Results are identical
  /// for every value.
  unsigned threads = 1;
};

/// Binds a trace to a grid + config and runs any Method on it. Windowing,
/// reference aggregation and capacity resolution happen once in the
/// constructor; schedules and costs are computed per call.
///
/// The fault-aware constructor layers a FaultMap over the grid: references
/// issued by dead processors are dropped (dead processors make no
/// requests), all costs use fault-aware hop distances, the paper-capacity
/// rule counts only alive processors, and the scheduling methods refuse
/// dead centers. With an empty FaultMap every result is bit-identical to
/// the fault-oblivious constructor.
class Experiment {
 public:
  Experiment(const ReferenceTrace& trace, const Grid& grid,
             PipelineConfig config = {});

  /// Fault-aware experiment. `faults` must be built over `grid`, and
  /// `grid` must outlive the experiment (the fault state is copied).
  Experiment(const ReferenceTrace& trace, const Grid& grid,
             const FaultMap& faults, PipelineConfig config = {});

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  [[nodiscard]] const Grid& grid() const { return *grid_; }
  [[nodiscard]] const WindowedRefs& refs() const { return refs_; }
  [[nodiscard]] const WindowPartition& windows() const { return windows_; }
  [[nodiscard]] const CostModel& costModel() const { return model_; }
  [[nodiscard]] const DataSpace& dataSpace() const { return *space_; }
  /// Resolved per-processor capacity (>= 0, or -1 for unlimited).
  [[nodiscard]] std::int64_t capacity() const { return capacity_; }
  /// The fault state, or nullptr for a fault-oblivious experiment.
  [[nodiscard]] const FaultMap* faults() const {
    return faults_.has_value() ? &*faults_ : nullptr;
  }

  /// Builds the schedule a method produces.
  [[nodiscard]] DataSchedule schedule(Method m) const;

  /// Schedule + evaluation in one step.
  [[nodiscard]] EvalResult evaluate(Method m) const;

 private:
  const DataSpace* space_;
  const Grid* grid_;
  PipelineConfig config_;
  WindowPartition windows_;
  std::optional<FaultMap> faults_;        ///< owned copy of the fault state
  std::optional<DistanceMap> distances_;  ///< built over faults_
  WindowedRefs refs_;
  CostModel model_;  ///< points at distances_ when fault-aware
  std::int64_t capacity_;
};

/// Result of one StreamSession step: the schedule of the submitted trace
/// revision, its evaluation, and how much solver state the warm path
/// reused.
struct StreamStepResult {
  DataSchedule schedule;
  EvalResult eval;
  bool incremental = false;        ///< warm-start path reused retained state
  std::int64_t reusedLayers = 0;   ///< per-class dp rows reused verbatim
  std::int64_t relaxedLayers = 0;  ///< per-class dp rows re-relaxed
};

/// Result of StreamSession::repairLast: the repaired previous schedule plus
/// its evaluation under the post-drift model.
struct StreamRepairResult {
  RepairResult repair;
  EvalResult eval;
};

/// A long-lived scheduling session over an evolving trace — the streaming
/// window API of the pipeline. Where an Experiment binds one immutable
/// trace, a StreamSession persists the grid, fault state, distance map,
/// and an IncrementalSolver across successive trace revisions: each step()
/// re-solves the full problem, but the solver reuses every per-class dp
/// row up to the first changed window, so steady-state steps whose traces
/// evolve only at the tail cost a fraction of a cold solve. Results are
/// bit-identical to a fresh Experiment::schedule on every step.
///
/// Fault drift and trace drift flow through the same entry point:
/// applyDrift mutates the session's fault state, rebuilds distances,
/// and epoch-invalidates the warm solver state (the next step runs cold
/// under the new model); repairLast additionally runs core/repair over the
/// last emitted schedule so serving callers can hand back a prefix-
/// preserving repaired schedule without waiting for the next trace
/// revision.
///
/// Not thread-safe: one StreamSession per stream, externally serialized.
class StreamSession {
 public:
  /// `faultSpecs` seed the session's fault state (applyFaultSpec syntax);
  /// an empty list starts a fault-oblivious session, which turns fault-
  /// aware on the first applyDrift.
  StreamSession(int gridRows, int gridCols, PipelineConfig config = {},
                Method method = Method::kGomcds,
                const std::vector<std::string>& faultSpecs = {});

  StreamSession(const StreamSession&) = delete;
  StreamSession& operator=(const StreamSession&) = delete;

  /// Schedules the next revision of the evolving trace. Method kGomcds
  /// runs through the retained IncrementalSolver; every other method cold-
  /// solves via a per-step Experiment (supported, never warm).
  [[nodiscard]] StreamStepResult step(const ReferenceTrace& trace);

  /// Applies fault drift: `heal` first resets the fault state, then every
  /// spec is applied in order (applyFaultSpec syntax; throws
  /// std::invalid_argument on a bad spec, leaving already-applied specs in
  /// place like the fleet's drift path). Rebuilds distances, marks the
  /// session fault-aware, and epoch-invalidates all warm solver state.
  void applyDrift(const std::vector<std::string>& specs, bool heal);

  /// True once step() has produced a schedule repairLast can start from.
  [[nodiscard]] bool hasSchedule() const { return lastSchedule_.has_value(); }

  /// Repairs the last emitted schedule under the current (post-drift)
  /// fault state: windows before `faultWindow` are preserved bit-identical,
  /// later cells are re-centered only where faults broke them. The repaired
  /// schedule replaces the retained one. Throws std::logic_error when no
  /// schedule has been emitted yet.
  [[nodiscard]] StreamRepairResult repairLast(WindowId faultWindow = 0);

  [[nodiscard]] const Grid& grid() const { return grid_; }
  [[nodiscard]] const FaultMap& faults() const { return faults_; }
  [[nodiscard]] bool faultAware() const { return faultAware_; }
  [[nodiscard]] Method method() const { return method_; }
  [[nodiscard]] std::int64_t steps() const { return steps_; }
  /// Bumped by every applyDrift — serving layers surface this so clients
  /// can see warm state was invalidated.
  [[nodiscard]] std::uint64_t driftEpoch() const { return driftEpoch_; }
  /// Bytes of warm solver state retained between steps.
  [[nodiscard]] std::size_t retainedBytes() const {
    return solver_.retainedBytes();
  }

 private:
  Grid grid_;
  PipelineConfig config_;
  Method method_;
  FaultMap faults_;  ///< built over grid_; empty until specs/drift arrive
  bool faultAware_ = false;
  std::optional<DistanceMap> distances_;  ///< rebuilt on every drift
  IncrementalSolver solver_;
  std::optional<DataSchedule> lastSchedule_;
  std::optional<WindowedRefs> lastBaseRefs_;  ///< unmasked refs of last step
  std::int64_t lastCapacity_ = -1;
  std::int64_t steps_ = 0;
  std::uint64_t driftEpoch_ = 0;
};

/// Percentage improvement of `cost` over `base` (the paper's "%"
/// columns): 100 * (base - cost) / base. Returns 0 when base is 0.
[[nodiscard]] double improvementPct(Cost base, Cost cost);

/// Canonical digest of every config field that can change a schedule or
/// its cost: windowing (explicit boundaries when set, else numWindows),
/// capacity sentinel/value, cost params and data order. `threads` is
/// deliberately excluded — results are bit-identical for every thread
/// count, so thread count must not split the serving result cache.
/// Byte stream (DigestBuilder rules): str("pimconfig"), u64(0|1) for
/// explicitWindows, then either i64(numSteps) + u64(numWindows) +
/// i64(each window start) or i64(numWindows); then i64(capacity),
/// i64(hopCost), i64(moveVolume), i64(order).
[[nodiscard]] Digest configDigest(const PipelineConfig& config);

}  // namespace pimsched

#include "core/repair.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "cost/center_costs.hpp"
#include "cost/center_list.hpp"
#include "fault/fault_map.hpp"
#include "graph/layered_dag.hpp"
#include "obs/obs.hpp"
#include "pim/memory.hpp"

namespace pimsched {

namespace {

/// Migration charge from `prev` to `p` under the recovery rule: a dead or
/// unroutable source means out-of-band restoration — no mesh traffic.
/// Sets `recovered` when the rule fired (and the datum actually moved).
Cost chargedMove(const CostModel& model, ProcId prev, ProcId p,
                 bool& recovered) {
  recovered = false;
  if (prev == kNoProc || prev == p) return 0;
  if (model.centerForbidden(prev)) {
    recovered = true;
    return 0;
  }
  const Cost m = model.moveCost(prev, p);
  if (m >= kInfiniteCost) {
    recovered = true;
    return 0;
  }
  return m;
}

/// True when the placement (d, w) -> p no longer works under the model's
/// fault state: dead center, a referencing processor that cannot reach it,
/// or an unroutable migration from the (already-final) previous center.
bool placementBroken(const DataSchedule& schedule, const WindowedRefs& refs,
                     const CostModel& model, DataId d, WindowId w, ProcId p) {
  if (model.centerForbidden(p)) return true;
  for (const ProcWeight& pw : refs.refs(d, w)) {
    if (model.hopDistance(p, pw.proc) >= kInfiniteCost) return true;
  }
  if (w > 0) {
    const ProcId prev = schedule.center(d, w - 1);
    if (prev != kNoProc && prev != p && !model.centerForbidden(prev) &&
        model.hopDistance(prev, p) >= kInfiniteCost) {
      return true;
    }
  }
  return false;
}

}  // namespace

RepairResult repairSchedule(const DataSchedule& schedule,
                            const WindowedRefs& refs, const CostModel& model,
                            const RepairOptions& options) {
  PIMSCHED_SCOPED_TIMER("repair.schedule");
  if (schedule.numData() != refs.numData() ||
      schedule.numWindows() != refs.numWindows()) {
    throw std::invalid_argument("repairSchedule: schedule/refs shape mismatch");
  }
  if (options.faultWindow < 0 || options.faultWindow > schedule.numWindows()) {
    throw std::invalid_argument("repairSchedule: faultWindow out of range");
  }

  RepairResult result{schedule};
  if (!model.faultAware()) {
    result.suffixCost =
        repairSuffixCost(result.schedule, refs, model, options.faultWindow);
    return result;
  }

  const Grid& grid = model.grid();
  const DataId numData = schedule.numData();
  std::vector<char> repaired(static_cast<std::size_t>(numData), 0);
  std::vector<DataId> broken;
  std::vector<Cost> costs;

  for (WindowId w = options.faultWindow; w < schedule.numWindows(); ++w) {
    OccupancyMap occupancy(grid, options.capacity);
    applyFaultCapacity(occupancy, *model.faults());

    // Surviving placements keep their slots; anything dead, cut off or
    // squeezed out by reduced capacity queues for re-centering.
    broken.clear();
    for (DataId d = 0; d < numData; ++d) {
      const ProcId p = result.schedule.center(d, w);
      if (placementBroken(result.schedule, refs, model, d, w, p)) {
        broken.push_back(d);
        continue;
      }
      if (!occupancy.tryPlace(p)) {
        ++result.evictions;
        broken.push_back(d);
      }
    }

    for (const DataId d : broken) {
      separableCenterCostsInto(model, refs.refs(d, w), costs);
      const ProcId prev =
          w > 0 ? result.schedule.center(d, w - 1) : kNoProc;
      for (ProcId p = 0; p < grid.size(); ++p) {
        bool recovered = false;
        costs[static_cast<std::size_t>(p)] =
            satAdd(costs[static_cast<std::size_t>(p)],
                   chargedMove(model, prev, p, recovered));
      }
      const CenterList list(costs);
      const ProcId p = list.firstAvailable(occupancy);
      if (p == kNoProc) {
        if (!list.hasFeasible()) {
          throw UnreachableError(
              "repairSchedule: no feasible center for datum " +
              std::to_string(d) + " in window " + std::to_string(w) +
              " on faulted mesh");
        }
        throw std::runtime_error(
            "repairSchedule: capacity infeasible in window " +
            std::to_string(w));
      }
      occupancy.tryPlace(p);
      if (p != result.schedule.center(d, w)) {
        ++result.cellsRepaired;
        repaired[static_cast<std::size_t>(d)] = 1;
      }
      bool recovered = false;
      result.migrationCost += chargedMove(model, prev, p, recovered);
      if (recovered) ++result.recoveredMigrations;
      result.schedule.setCenter(d, w, p);
    }
  }

  for (const char r : repaired) result.dataRepaired += r;
  result.suffixCost =
      repairSuffixCost(result.schedule, refs, model, options.faultWindow,
                       nullptr);
  PIMSCHED_COUNTER_ADD("repair.data_repaired", result.dataRepaired);
  PIMSCHED_COUNTER_ADD("repair.cells_repaired", result.cellsRepaired);
  PIMSCHED_COUNTER_ADD("repair.recovered_migrations",
                       result.recoveredMigrations);
  return result;
}

Cost repairSuffixCost(const DataSchedule& schedule, const WindowedRefs& refs,
                      const CostModel& model, WindowId fromWindow,
                      std::int64_t* recoveredOut) {
  if (fromWindow < 0 || fromWindow > schedule.numWindows()) {
    throw std::invalid_argument("repairSuffixCost: fromWindow out of range");
  }
  Cost total = 0;
  std::int64_t recoveredCount = 0;
  for (DataId d = 0; d < schedule.numData(); ++d) {
    for (WindowId w = fromWindow; w < schedule.numWindows(); ++w) {
      const ProcId p = schedule.center(d, w);
      total = satAdd(total, model.serveCost(refs.refs(d, w), p));
      if (w > 0) {
        bool recovered = false;
        total = satAdd(total,
                       chargedMove(model, schedule.center(d, w - 1), p,
                                   recovered));
        if (recovered) ++recoveredCount;
      }
    }
  }
  if (recoveredOut != nullptr) *recoveredOut = recoveredCount;
  return total;
}

}  // namespace pimsched

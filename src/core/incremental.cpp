#include "core/incremental.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string_view>
#include <unordered_set>

#include "core/data_order.hpp"
#include "core/gomcds_detail.hpp"
#include "cost/center_costs.hpp"
#include "fault/fault_map.hpp"
#include "obs/obs.hpp"
#include "pim/memory.hpp"

namespace pimsched {

namespace {

/// FNV-1a over a stream of u64 values, byte-wise — the same mixing scheme
/// as WindowedRefs::refsSignature.
struct Fnv {
  std::uint64_t h = 1469598103934665603ull;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
};

/// Content fingerprint of everything the retained solver state depends on:
/// problem shape, cost parameters, scheduler options, engine, and the full
/// fault state (dead processors, capacity limits, directed link faults —
/// link faults change the distance metric and therefore both serve costs
/// and the transition table). O(numProcs), negligible next to one layer
/// relaxation.
std::uint64_t solveFingerprint(const WindowedRefs& refs, const CostModel& model,
                               const SchedulerOptions& options,
                               GomcdsEngine engine) {
  Fnv f;
  f.mix(static_cast<std::uint64_t>(refs.numData()));
  f.mix(static_cast<std::uint64_t>(refs.numWindows()));
  f.mix(static_cast<std::uint64_t>(refs.numProcs()));
  const Grid& grid = model.grid();
  f.mix(static_cast<std::uint64_t>(grid.rows()));
  f.mix(static_cast<std::uint64_t>(grid.cols()));
  f.mix(static_cast<std::uint64_t>(model.params().hopCost));
  f.mix(static_cast<std::uint64_t>(model.params().moveVolume));
  f.mix(static_cast<std::uint64_t>(options.capacity));
  f.mix(static_cast<std::uint64_t>(options.order == DataOrder::kByWeightDesc));
  f.mix(static_cast<std::uint64_t>(options.dedup));
  f.mix(static_cast<std::uint64_t>(engine == GomcdsEngine::kNaive));
  f.mix(static_cast<std::uint64_t>(model.faultAware()));
  if (const FaultMap* faults = model.faults()) {
    const int R = grid.rows();
    const int C = grid.cols();
    for (ProcId p = 0; p < grid.size(); ++p) {
      std::uint64_t v = faults->procDead(p) ? 1 : 0;
      v |= static_cast<std::uint64_t>(faults->capacityLimit(p) + 1) << 1;
      f.mix(v);
      // Directed link faults toward the right and down neighbours cover
      // every mesh link in both directions.
      const int r = p / C;
      const int c = p % C;
      std::uint64_t links = 0;
      if (c + 1 < C) {
        links |= faults->linkDead(p, p + 1) ? 1u : 0u;
        links |= faults->linkDead(p + 1, p) ? 2u : 0u;
      }
      if (r + 1 < R) {
        links |= faults->linkDead(p, p + C) ? 4u : 0u;
        links |= faults->linkDead(p + C, p) ? 8u : 0u;
      }
      f.mix(links);
    }
  }
  return f.h;
}

/// First changed window of datum d between two same-shaped generations by
/// direct row comparison. Authoritative (no collision risk to rule out),
/// and in the CSR layout both rows are short and contiguous, so comparing
/// them outright costs less than recomputing even one side's FNV-1a
/// prescreen signature — this is the bulk path the solver runs per datum
/// per solve. firstChangedWindow() below keeps the signature-prescreened
/// form as the public reference implementation; the two always agree
/// (asserted by the incremental tests).
int firstChangedWindowDirect(const WindowedRefs& now, const WindowedRefs& prev,
                             DataId d) {
  const int W = now.numWindows();
  for (int w = 0; w < W; ++w) {
    const std::span<const ProcWeight> a = now.refs(d, w);
    const std::span<const ProcWeight> b = prev.refs(d, w);
    if (a.size() != b.size() || !std::equal(a.begin(), a.end(), b.begin())) {
      return w;
    }
  }
  return W;
}

/// FNV-1a signature over datum d's reference strings in windows [from, W),
/// same mixing scheme as WindowedRefs::refsSignature (row length first,
/// then each (proc, weight) pair, so window boundaries count). Prescreen
/// for the warm-path suffix classing; a full suffix comparison confirms on
/// match, so collisions can never merge distinct classes.
std::uint64_t suffixSignature(const WindowedRefs& refs, DataId d, int from) {
  Fnv f;
  const int W = refs.numWindows();
  for (int w = from; w < W; ++w) {
    const std::span<const ProcWeight> row = refs.refs(d, w);
    f.mix(static_cast<std::uint64_t>(row.size()));
    for (const ProcWeight& pw : row) {
      f.mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(pw.proc)));
      f.mix(static_cast<std::uint64_t>(pw.weight));
    }
  }
  return f.h;
}

/// True if data a and b have byte-identical reference strings in every
/// window of [from, W).
bool sameSuffix(const WindowedRefs& refs, DataId a, DataId b, int from) {
  const int W = refs.numWindows();
  for (int w = from; w < W; ++w) {
    const std::span<const ProcWeight> ra = refs.refs(a, w);
    const std::span<const ProcWeight> rb = refs.refs(b, w);
    if (ra.size() != rb.size() ||
        !std::equal(ra.begin(), ra.end(), rb.begin())) {
      return false;
    }
  }
  return true;
}

/// Warm-path equivalence classes: a refinement of computeDedupClasses'
/// partition derived from the previous generation instead of rehashing
/// every reference string. Members of one previous class share their full
/// previous string, so their unchanged prefixes agree byte-for-byte; the
/// new partition therefore subdivides each previous class on (first
/// changed window, changed suffix), and a previous class with a single
/// member — the common case once a stream's classes have split — passes
/// through with no hashing at all. classFrom[c] receives the first changed
/// window shared by all of class c's members. Classes are numbered in
/// first-member order and represented by their lowest-id member, like the
/// cold classing.
detail::DedupClasses warmClasses(const WindowedRefs& refs,
                                 const WindowedRefs& prev,
                                 const std::vector<int>& prevClassOf,
                                 std::size_t numPrevClasses, bool dedup,
                                 std::vector<int>& classFrom) {
  const DataId n = refs.numData();
  const int W = refs.numWindows();
  detail::DedupClasses out;
  out.classOf.resize(static_cast<std::size_t>(n));
  classFrom.clear();

  if (!dedup) {
    // Mirror the cold classing's disabled branch: singleton per datum.
    out.rep.resize(static_cast<std::size_t>(n));
    out.size.assign(static_cast<std::size_t>(n), 1);
    classFrom.resize(static_cast<std::size_t>(n));
    for (DataId d = 0; d < n; ++d) {
      out.classOf[static_cast<std::size_t>(d)] = d;
      out.rep[static_cast<std::size_t>(d)] = d;
      classFrom[static_cast<std::size_t>(d)] =
          firstChangedWindowDirect(refs, prev, d);
    }
    return out;
  }

  std::vector<int> prevSize(numPrevClasses, 0);
  for (DataId d = 0; d < n; ++d) {
    ++prevSize[static_cast<std::size_t>(prevClassOf[static_cast<std::size_t>(d)])];
  }

  // Per previous class, the subclasses carved out of it so far. Visiting
  // data in ascending id keeps class numbering and representatives
  // identical to a first-occurrence scan.
  struct Sub {
    std::uint64_t sig;
    int from;
    int cls;
  };
  std::vector<std::vector<Sub>> subs(numPrevClasses);
  for (DataId d = 0; d < n; ++d) {
    const std::size_t pc =
        static_cast<std::size_t>(prevClassOf[static_cast<std::size_t>(d)]);
    const int from = firstChangedWindowDirect(refs, prev, d);
    if (prevSize[pc] == 1) {
      const int cls = static_cast<int>(out.rep.size());
      out.rep.push_back(d);
      out.size.push_back(1);
      classFrom.push_back(from);
      out.classOf[static_cast<std::size_t>(d)] = cls;
      continue;
    }
    const std::uint64_t sig =
        from >= W ? 0 : suffixSignature(refs, d, from);
    int cls = -1;
    for (const Sub& s : subs[pc]) {
      if (s.sig != sig || s.from != from) continue;
      if (from >= W ||
          sameSuffix(refs, out.rep[static_cast<std::size_t>(s.cls)], d,
                     from)) {
        cls = s.cls;
        break;
      }
    }
    if (cls < 0) {
      cls = static_cast<int>(out.rep.size());
      out.rep.push_back(d);
      out.size.push_back(0);
      classFrom.push_back(from);
      subs[pc].push_back(Sub{sig, from, cls});
    }
    out.classOf[static_cast<std::size_t>(d)] = cls;
    ++out.size[static_cast<std::size_t>(cls)];
  }
  return out;
}

}  // namespace

int firstChangedWindow(const WindowedRefs& now, const WindowedRefs& prev,
                       DataId d) {
  if (now.numWindows() != prev.numWindows() ||
      now.numProcs() != prev.numProcs() || d >= now.numData() ||
      d >= prev.numData()) {
    return 0;
  }
  return detail::firstChangedWindowImpl(
      now.numWindows(),
      [&](int w) { return now.refsSignature(d, w) == prev.refsSignature(d, w); },
      [&](int w) { return now.sameRefsAs(prev, d, w, d, w); });
}

bool incrementalEnabled(const SchedulerOptions& options) {
  if (!options.incremental) return false;
  if (const char* env = std::getenv("PIMSCHED_INCREMENTAL")) {
    const std::string_view v(env);
    if (v == "0" || v == "off" || v == "false") return false;
  }
  return true;
}

void IncrementalSolver::invalidate() {
  retainedValid_ = false;
  prevRefs_.reset();
  prevClassOf_.clear();
  prevStates_.clear();
  trans_.clear();
  transValid_ = false;
}

std::size_t IncrementalSolver::retainedBytes() const {
  std::size_t bytes = trans_.size() * sizeof(Cost);
  std::unordered_set<const ClassState*> seen;
  for (const std::shared_ptr<ClassState>& st : prevStates_) {
    if (!st || !seen.insert(st.get()).second) continue;
    bytes += (st->serve.size() + st->dp.size()) * sizeof(Cost) +
             st->parents.size() * sizeof(std::int32_t) +
             st->path.nodes.size() * sizeof(int);
  }
  return bytes;
}

DataSchedule IncrementalSolver::coldFall(const WindowedRefs& refs,
                                         const CostModel& model,
                                         const SchedulerOptions& options,
                                         GomcdsEngine engine) {
  invalidate();
  stats_ = Stats{};
  PIMSCHED_COUNTER_ADD("gomcds.incremental.cold_falls", 1);
  return scheduleGomcds(refs, model, options, engine);
}

DataSchedule IncrementalSolver::solve(const WindowedRefs& refs,
                                      const CostModel& model,
                                      const SchedulerOptions& options,
                                      GomcdsEngine engine) {
  // Retention requires a static forbidden set: under capacity pressure the
  // mask grows between data, so per-class dp tables and paths from one
  // datum are unsound for the next — cold solve, retain nothing.
  if (!incrementalEnabled(options) ||
      !detail::staticForbiddenSet(model, options) || refs.numWindows() < 1) {
    return coldFall(refs, model, options, engine);
  }

  PIMSCHED_SCOPED_TIMER("sched.gomcds_incremental");
  const Grid& grid = model.grid();
  const int W = refs.numWindows();
  const int P = grid.size();
  const std::size_t pn = static_cast<std::size_t>(P);
  const Cost beta = model.params().hopCost * model.params().moveVolume;
  const bool useChamfer =
      engine == GomcdsEngine::kChamfer && !model.faultAware();

  const std::uint64_t fp = solveFingerprint(refs, model, options, engine);
  const bool warm = retainedValid_ && fp == fingerprint_ && prevRefs_ &&
                    prevClassOf_.size() == static_cast<std::size_t>(refs.numData());
  stats_ = Stats{};
  stats_.cold = !warm;

  try {
    if (!useChamfer && (!transValid_ || !warm)) {
      detail::buildTransTable(model, trans_);
      transValid_ = true;
    }

    // Cold generations rehash every reference string; warm generations
    // refine the previous partition touching only churned suffix bytes.
    std::vector<int> classFrom;
    const detail::DedupClasses classes =
        warm ? warmClasses(refs, *prevRefs_, prevClassOf_,
                           prevStates_.size(), options.dedup, classFrom)
             : detail::computeDedupClasses(refs, options.dedup);
    std::vector<std::shared_ptr<ClassState>> newStates(classes.rep.size());

    // How many new classes reuse each previous class: a uniquely-claimed
    // previous state can be recycled in place (pointer steal, suffix
    // overwrite); a multiply-claimed one (old classmates diverged) must be
    // prefix-copied per claimant.
    std::vector<int> claims;
    if (warm) {
      claims.assign(prevStates_.size(), 0);
      for (const DataId rep : classes.rep) {
        ++claims[static_cast<std::size_t>(
            prevClassOf_[static_cast<std::size_t>(rep)])];
      }
    }

    std::int64_t flatSolves = 0;
    std::vector<Cost> rowBuf;
    for (std::size_t c = 0; c < classes.rep.size(); ++c) {
      const DataId rep = classes.rep[c];
      int from = 0;
      int oldCls = -1;
      if (warm) {
        oldCls = prevClassOf_[static_cast<std::size_t>(rep)];
        from = classFrom[c];
      }
      if (from >= W) {
        // Entire per-class subproblem unchanged: share the previous state
        // (serve table, dp table, and path) with zero copying.
        newStates[c] = prevStates_[static_cast<std::size_t>(oldCls)];
        stats_.reusedLayers += W;
        continue;
      }

      std::shared_ptr<ClassState> st;
      if (oldCls >= 0 && claims[static_cast<std::size_t>(oldCls)] == 1) {
        // Sole claimant: recycle the previous buffers in place (rows
        // [0, from) are already valid, the suffix is overwritten below).
        st = std::move(prevStates_[static_cast<std::size_t>(oldCls)]);
      } else {
        st = std::make_shared<ClassState>();
        st->serve.resize(static_cast<std::size_t>(W) * pn);
        st->dp.resize(static_cast<std::size_t>(W) * pn);
        if (oldCls >= 0 && from > 0) {
          const ClassState& old = *prevStates_[static_cast<std::size_t>(oldCls)];
          const std::size_t prefix = static_cast<std::size_t>(from) * pn;
          std::copy(old.serve.data(), old.serve.data() + prefix,
                    st->serve.data());
          std::copy(old.dp.data(), old.dp.data() + prefix, st->dp.data());
          // Copy the predecessor cache wholesale — its prefix entries are
          // valid for the copied dp prefix, and the solver invalidates the
          // suffix entries on entry anyway.
          st->parents = old.parents;
        }
      }

      // Rebuild only the changed serving-cost rows; rows [0, from) are
      // byte-identical to what a cold solve would compute (same refs, same
      // model, same deterministic cost function), which is what makes the
      // resumed dp — and therefore the reconstructed path — bit-identical.
      // Computed directly rather than through a CenterCostCache: the churn
      // rows of one stream step rarely repeat within the step, so the
      // cache's per-row hash + shard lock + insert would cost more than
      // the separable computation itself.
      for (WindowId w = from; w < W; ++w) {
        separableCenterCostsInto(model, refs.refs(rep, w), rowBuf);
        std::copy(rowBuf.begin(), rowBuf.end(),
                  st->serve.data() + static_cast<std::size_t>(w) * pn);
      }
      if (useChamfer) {
        LayeredDagSolver::solveManhattanFlatResumeInto(
            grid, W, std::span<const Cost>(st->serve.data(), st->serve.size()),
            beta, from, st->dp, scratch_, st->path, &st->parents);
      } else {
        LayeredDagSolver::solveFlatResumeInto(
            W, P, std::span<const Cost>(st->serve.data(), st->serve.size()),
            trans_, from, st->dp, scratch_, st->path, &st->parents);
      }
      ++flatSolves;
      stats_.reusedLayers += from;
      stats_.relaxedLayers += W - from;
      newStates[c] = std::move(st);
    }
    PIMSCHED_COUNTER_ADD("gomcds.flat.solves", flatSolves);
    PIMSCHED_COUNTER_ADD("gomcds.incremental.reused_layers",
                         stats_.reusedLayers);
    PIMSCHED_COUNTER_ADD("gomcds.incremental.relaxed_layers",
                         stats_.relaxedLayers);
    if (warm) {
      PIMSCHED_COUNTER_ADD("gomcds.incremental.warm_solves", 1);
    } else {
      PIMSCHED_COUNTER_ADD("gomcds.incremental.cold_falls", 1);
    }

    // Placement mirrors the sequential cold engine's static-mask branch
    // exactly: visit order, feasibility checks, occupancy accounting.
    DataSchedule schedule(refs.numData(), W);
    std::vector<OccupancyMap> occupancy(
        static_cast<std::size_t>(W), OccupancyMap(grid, options.capacity));
    if (const FaultMap* faults = model.faults()) {
      for (OccupancyMap& occ : occupancy) applyFaultCapacity(occ, *faults);
    }
    for (const DataId d : dataVisitOrder(refs, options.order)) {
      const int cls = classes.classOf[static_cast<std::size_t>(d)];
      const LayeredPath& path = newStates[static_cast<std::size_t>(cls)]->path;
      if (!path.feasible()) detail::throwGomcdsInfeasible(model);
      for (WindowId w = 0; w < W; ++w) {
        const auto p =
            static_cast<ProcId>(path.nodes[static_cast<std::size_t>(w)]);
        if (!occupancy[static_cast<std::size_t>(w)].tryPlace(p)) {
          detail::throwGomcdsSlotDisagreement(
              d, p, w, occupancy[static_cast<std::size_t>(w)]);
        }
        schedule.setCenter(d, w, p);
      }
      PIMSCHED_COUNTER_ADD("sched.gomcds.data", 1);
    }

    prevRefs_.emplace(refs);
    prevClassOf_ = classes.classOf;
    prevStates_ = std::move(newStates);
    fingerprint_ = fp;
    retainedValid_ = true;
    return schedule;
  } catch (...) {
    // Retained buffers may have been stolen mid-build; never resume from a
    // half-updated generation.
    invalidate();
    throw;
  }
}

}  // namespace pimsched

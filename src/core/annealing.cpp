#include "core/annealing.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/evaluator.hpp"
#include "obs/obs.hpp"

namespace pimsched {

namespace {

class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 33;
  }
  double uniform() {  // in [0, 1)
    return static_cast<double>(next() & 0x7FFFFFFF) /
           static_cast<double>(0x80000000u);
  }

 private:
  std::uint64_t state_;
};

}  // namespace

DataSchedule scheduleAnnealed(const WindowedRefs& refs,
                              const CostModel& model,
                              const DataSchedule& initial,
                              const SchedulerOptions& options,
                              const AnnealParams& params) {
  const Grid& grid = model.grid();
  const int W = refs.numWindows();
  const int m = grid.size();
  if (initial.numData() != refs.numData() || initial.numWindows() != W) {
    throw std::invalid_argument("scheduleAnnealed: shape mismatch");
  }
  if (!initial.complete()) {
    throw std::invalid_argument("scheduleAnnealed: incomplete initial");
  }
  if (!initial.respectsCapacity(grid, options.capacity)) {
    throw std::invalid_argument(
        "scheduleAnnealed: initial schedule violates capacity");
  }
  if (params.stepsPerCooling <= 0) {
    // `it % stepsPerCooling` below is UB for 0 and nonsense for negatives.
    throw std::invalid_argument(
        "scheduleAnnealed: stepsPerCooling must be > 0");
  }

  DataSchedule current = initial;
  Cost currentCost = evaluateSchedule(current, refs, model).aggregate.total();
  Cost bestCost = currentCost;

  // Deferred best snapshot: copying the full schedule on every improvement
  // dominates the hot loop, so accepted moves are journaled and the best
  // state is reconstructed once, by replaying the journal prefix that led
  // to the lowest cost.
  struct Move {
    DataId d;
    WindowId w;
    ProcId p;
  };
  std::vector<Move> journal;
  std::size_t bestLen = 0;  // journal prefix reproducing the best state

  // Per-(window, processor) occupancy for O(1) capacity checks.
  std::vector<std::int64_t> occ(
      static_cast<std::size_t>(W) * static_cast<std::size_t>(m), 0);
  const auto occAt = [&](WindowId w, ProcId p) -> std::int64_t& {
    return occ[static_cast<std::size_t>(w) * static_cast<std::size_t>(m) +
               static_cast<std::size_t>(p)];
  };
  for (DataId d = 0; d < refs.numData(); ++d) {
    for (WindowId w = 0; w < W; ++w) ++occAt(w, current.center(d, w));
  }

  Lcg rng(params.seed);
  double temperature = params.initialTemperature;

  PIMSCHED_SCOPED_TIMER("sched.annealing");
  // Buffered locally: one registry merge after the loop keeps the
  // million-iteration hot path free of shared-cacheline traffic.
  std::int64_t proposals = 0;
  std::int64_t accepted = 0;

  for (std::int64_t it = 0; it < params.iterations; ++it) {
    const auto d = static_cast<DataId>(
        rng.next() % static_cast<std::uint64_t>(refs.numData()));
    const auto w =
        static_cast<WindowId>(rng.next() % static_cast<std::uint64_t>(W));
    const auto p =
        static_cast<ProcId>(rng.next() % static_cast<std::uint64_t>(m));
    const ProcId old = current.center(d, w);
    if (p == old) continue;
    if (options.capacity >= 0 && occAt(w, p) >= options.capacity) continue;
    ++proposals;

    // Incremental cost: serving of (d, w) plus the movement edges into and
    // out of window w.
    Cost delta = model.serveCost(refs.refs(d, w), p) -
                 model.serveCost(refs.refs(d, w), old);
    if (w > 0) {
      const ProcId prev = current.center(d, w - 1);
      delta += model.moveCost(prev, p) - model.moveCost(prev, old);
    }
    if (w + 1 < W) {
      const ProcId next = current.center(d, w + 1);
      delta += model.moveCost(p, next) - model.moveCost(old, next);
    }

    const bool accept =
        delta <= 0 ||
        rng.uniform() <
            std::exp(-static_cast<double>(delta) / temperature);
    if (accept) {
      ++accepted;
      current.setCenter(d, w, p);
      --occAt(w, old);
      ++occAt(w, p);
      currentCost += delta;
      journal.push_back(Move{d, w, p});
      if (currentCost < bestCost) {
        bestCost = currentCost;
        bestLen = journal.size();
      }
    }
    if (it % params.stepsPerCooling == 0) {
      temperature = std::max(1e-3, temperature * params.coolingFactor);
    }
  }
  PIMSCHED_COUNTER_ADD("anneal.proposals", proposals);
  PIMSCHED_COUNTER_ADD("anneal.accepted", accepted);

  DataSchedule best = initial;
  for (std::size_t i = 0; i < bestLen; ++i) {
    best.setCenter(journal[i].d, journal[i].w, journal[i].p);
  }
  return best;
}

}  // namespace pimsched

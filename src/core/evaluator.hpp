#pragma once

#include <vector>

#include "core/schedule.hpp"
#include "cost/cost_model.hpp"
#include "trace/windowed_refs.hpp"

namespace pimsched {

/// Communication cost split into reference traffic and data movement.
struct CostBreakdown {
  Cost serve = 0;  ///< references served from centers
  Cost move = 0;   ///< datum migrations between window centers

  [[nodiscard]] Cost total() const { return serve + move; }

  CostBreakdown& operator+=(const CostBreakdown& o) {
    serve += o.serve;
    move += o.move;
    return *this;
  }
};

/// Total + per-datum communication cost of a schedule. This is the paper's
/// evaluation metric: "the total communication cost for an application is
/// the summation of the total communication cost of every processor".
struct EvalResult {
  CostBreakdown aggregate;
  std::vector<CostBreakdown> perData;
};

/// Cost of one datum's center sequence (serve over all windows + movement
/// between consecutive centers; the initial load is not charged).
[[nodiscard]] CostBreakdown evaluateDatum(const DataSchedule& schedule,
                                          const WindowedRefs& refs,
                                          const CostModel& model, DataId d);

/// Cost of the whole schedule. The schedule must be complete and match the
/// refs' (numData, numWindows) shape. Per-datum costs are independent, so
/// `threads` > 1 (or 0 = hardware concurrency) evaluates them on the
/// shared thread pool; the result is identical for every thread count.
[[nodiscard]] EvalResult evaluateSchedule(const DataSchedule& schedule,
                                          const WindowedRefs& refs,
                                          const CostModel& model,
                                          unsigned threads);

/// Sequential convenience overload.
[[nodiscard]] EvalResult evaluateSchedule(const DataSchedule& schedule,
                                          const WindowedRefs& refs,
                                          const CostModel& model);

}  // namespace pimsched

#pragma once

#include "core/schedule.hpp"
#include "core/scheduler_options.hpp"
#include "cost/cost_model.hpp"
#include "trace/windowed_refs.hpp"

namespace pimsched {

/// Online multiple-center scheduling with bounded lookahead — a practical
/// variant the paper leaves open: GOMCDS assumes the *entire* sequence of
/// execution windows is known before execution; a run-time system may only
/// know the next few. This scheduler commits one window at a time using a
/// rolling-horizon version of the GOMCDS DP over the next
/// `lookahead + 1` windows.
///
///  * lookahead = 0   — movement-aware greedy: each window picks
///    argmin_p move(prev, p) + serve(w, p). (Plain LOMCDS is the same
///    minus the movement term.)
///  * lookahead >= numWindows - 1 — identical total cost to GOMCDS.
struct OnlineOptions {
  int lookahead = 1;
  std::int64_t capacity = -1;
  DataOrder order = DataOrder::kById;
};

[[nodiscard]] DataSchedule scheduleOnline(const WindowedRefs& refs,
                                          const CostModel& model,
                                          const OnlineOptions& options = {});

}  // namespace pimsched

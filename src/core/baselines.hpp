#pragma once

#include <cstdint>
#include <string>

#include "core/schedule.hpp"
#include "pim/grid.hpp"
#include "trace/data_space.hpp"

namespace pimsched {

/// The "straight-forward" static data distributions the paper compares
/// against. All are static (no run-time movement) and fill processors with
/// exactly ceil(numData / numProcs) data, so they satisfy any capacity >=
/// the minimum by construction.
enum class BaselineKind {
  kRowWise,     ///< the paper's S.F. column: row-major order, block chunks
  kColWise,     ///< column-major order (per array), block chunks
  kBlock2D,     ///< element (i,j) -> the grid block containing (i,j)
  kCyclic2D,    ///< element (i,j) -> (i mod gridRows, j mod gridCols)
  kRandom,      ///< seeded uniform placement balanced to the minimum
};

[[nodiscard]] std::string toString(BaselineKind kind);

/// Builds a static baseline schedule over `numWindows` windows.
[[nodiscard]] DataSchedule baselineSchedule(BaselineKind kind,
                                            const DataSpace& space,
                                            const Grid& grid, int numWindows,
                                            std::uint64_t seed = 1);

}  // namespace pimsched

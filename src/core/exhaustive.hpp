#pragma once

#include "core/schedule.hpp"
#include "cost/cost_model.hpp"
#include "trace/windowed_refs.hpp"

namespace pimsched {

/// Brute-force reference: enumerates every center sequence of every datum
/// (numProcs ^ numWindows combinations per datum, data independent when
/// capacity is unlimited) and keeps the cheapest. Exists to certify GOMCDS
/// optimality in tests; refuses instances with more than `maxCombinations`
/// sequences per datum.
[[nodiscard]] DataSchedule scheduleExhaustive(
    const WindowedRefs& refs, const CostModel& model,
    std::uint64_t maxCombinations = 50'000'000);

}  // namespace pimsched

#pragma once

#include "core/schedule.hpp"
#include "core/scheduler_options.hpp"
#include "cost/cost_model.hpp"
#include "trace/windowed_refs.hpp"

namespace pimsched {

/// Local-Optimal Multiple-Center Data Scheduling (paper §3.2.1): Algorithm 1
/// is applied to every execution window independently, so each datum sits at
/// the locally optimal center of each window and migrates between windows at
/// run time. The movement cost is *not* part of the optimisation (that is
/// GOMCDS's refinement) but is charged by the evaluator.
///
/// A datum that is unreferenced in a window stays where it was (movement
/// would only cost); if its previous center has no free slot in this window
/// it falls back to the nearest processor with room.
[[nodiscard]] DataSchedule scheduleLomcds(
    const WindowedRefs& refs, const CostModel& model,
    const SchedulerOptions& options = {});

}  // namespace pimsched

#include "core/grouping.hpp"

#include <algorithm>
#include <optional>
#include <utility>
#include <stdexcept>

#include "core/data_order.hpp"
#include "cost/center_list.hpp"
#include "graph/layered_dag.hpp"
#include "pim/memory.hpp"

namespace pimsched {

WindowCostPrefix::WindowCostPrefix(const WindowedRefs& refs, DataId d,
                                   const CostModel& model)
    : numWindows_(refs.numWindows()), numProcs_(refs.numProcs()) {
  prefix_.assign(static_cast<std::size_t>(numWindows_ + 1) *
                     static_cast<std::size_t>(numProcs_),
                 0);
  weightPrefix_.assign(static_cast<std::size_t>(numWindows_ + 1), 0);
  for (WindowId w = 0; w < numWindows_; ++w) {
    const std::vector<Cost> costs = centerCosts(model, refs.refs(d, w));
    for (ProcId p = 0; p < numProcs_; ++p) {
      prefix_[static_cast<std::size_t>(w + 1) *
                  static_cast<std::size_t>(numProcs_) +
              static_cast<std::size_t>(p)] =
          at(w, p) + costs[static_cast<std::size_t>(p)];
    }
    weightPrefix_[static_cast<std::size_t>(w + 1)] =
        weightPrefix_[static_cast<std::size_t>(w)] +
        refs.windowWeight(d, w);
  }
}

BestCenter WindowCostPrefix::bestSegmentCenter(WindowId begin,
                                               WindowId end) const {
  BestCenter best{0, segment(begin, end, 0)};
  for (ProcId p = 1; p < numProcs_; ++p) {
    const Cost c = segment(begin, end, p);
    if (c < best.cost) best = BestCenter{p, c};
  }
  return best;
}

Cost groupingCost(const DataGrouping& grouping,
                  const WindowCostPrefix& prefix, const CostModel& model) {
  Cost total = 0;
  const int g = grouping.numGroups();
  for (int i = 0; i < g; ++i) {
    const WindowId begin = grouping.starts[static_cast<std::size_t>(i)];
    const WindowId end = (i + 1 < g)
                             ? grouping.starts[static_cast<std::size_t>(i + 1)]
                             : prefix.numWindows();
    total += prefix.segment(begin, end,
                            grouping.centers[static_cast<std::size_t>(i)]);
    if (i > 0) {
      total += model.moveCost(grouping.centers[static_cast<std::size_t>(i - 1)],
                              grouping.centers[static_cast<std::size_t>(i)]);
    }
  }
  return total;
}

namespace {

/// Empty (zero-weight) groups are served for free anywhere, so their best
/// center is wherever the datum already is: holding still costs nothing,
/// while the raw argmin (processor 0) would charge phantom movement. A
/// leading run of empty groups adopts the first referenced group's center.
void adoptNeighborCentersForEmptyGroups(DataGrouping& g,
                                        const WindowCostPrefix& prefix) {
  const int n = g.numGroups();
  int firstNonEmpty = -1;
  for (int i = 0; i < n; ++i) {
    const WindowId begin = g.starts[static_cast<std::size_t>(i)];
    const WindowId end = (i + 1 < n)
                             ? g.starts[static_cast<std::size_t>(i + 1)]
                             : prefix.numWindows();
    if (prefix.segmentWeight(begin, end) > 0) {
      firstNonEmpty = i;
      break;
    }
  }
  if (firstNonEmpty < 0) return;  // never referenced: any center works
  for (int i = firstNonEmpty - 1; i >= 0; --i) {
    g.centers[static_cast<std::size_t>(i)] =
        g.centers[static_cast<std::size_t>(i + 1)];
  }
  for (int i = firstNonEmpty + 1; i < n; ++i) {
    const WindowId begin = g.starts[static_cast<std::size_t>(i)];
    const WindowId end = (i + 1 < n)
                             ? g.starts[static_cast<std::size_t>(i + 1)]
                             : prefix.numWindows();
    if (prefix.segmentWeight(begin, end) == 0) {
      g.centers[static_cast<std::size_t>(i)] =
          g.centers[static_cast<std::size_t>(i - 1)];
    }
  }
}

/// Rebuilds group centers (argmin of each merged segment, empty groups
/// staying put) for a given set of group starts.
DataGrouping withRecomputedCenters(std::vector<WindowId> starts,
                                   const WindowCostPrefix& prefix) {
  DataGrouping g;
  g.starts = std::move(starts);
  const int n = g.numGroups();
  g.centers.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const WindowId begin = g.starts[static_cast<std::size_t>(i)];
    const WindowId end = (i + 1 < n)
                             ? g.starts[static_cast<std::size_t>(i + 1)]
                             : prefix.numWindows();
    g.centers[static_cast<std::size_t>(i)] =
        prefix.bestSegmentCenter(begin, end).proc;
  }
  adoptNeighborCentersForEmptyGroups(g, prefix);
  return g;
}

}  // namespace

DataGrouping singletonGrouping(const WindowCostPrefix& prefix) {
  std::vector<WindowId> starts;
  for (WindowId w = 0; w < prefix.numWindows(); ++w) starts.push_back(w);
  return withRecomputedCenters(std::move(starts), prefix);
}

DataGrouping greedyGrouping(const WindowCostPrefix& prefix,
                            const CostModel& model) {
  const int W = prefix.numWindows();
  DataGrouping current = singletonGrouping(prefix);
  Cost currentCost = groupingCost(current, prefix, model);
  if (W <= 1) return current;

  // Confirmed group starts strictly before `start`; the group under
  // construction covers [start, j]; windows after j are singletons.
  std::vector<WindowId> confirmed;  // starts of groups before `start`
  WindowId start = 0;
  for (WindowId j = 1; j < W; ++j) {
    std::vector<WindowId> proposal = confirmed;
    proposal.push_back(start);
    for (WindowId w = j + 1; w < W; ++w) proposal.push_back(w);
    const DataGrouping candidate =
        withRecomputedCenters(std::move(proposal), prefix);
    const Cost candidateCost = groupingCost(candidate, prefix, model);
    if (candidateCost <= currentCost) {
      current = candidate;
      currentCost = candidateCost;
    } else {
      confirmed.push_back(start);
      start = j;
    }
  }
  return current;
}

DataGrouping optimalGrouping(const WindowCostPrefix& prefix,
                             const CostModel& model) {
  const int W = prefix.numWindows();
  const int m = prefix.numProcs();
  const Grid& grid = model.grid();
  const Cost beta = model.params().hopCost * model.params().moveVolume;

  // dp[w][p]: min cost covering windows [0, w] with the last group ending
  // at w and centred at p. best[s][p] = min_q dp[s-1][q] + move(q, p)
  // (0 when s == 0), computed with the chamfer relaxation per s.
  std::vector<std::vector<Cost>> dp(
      static_cast<std::size_t>(W),
      std::vector<Cost>(static_cast<std::size_t>(m), kInfiniteCost));
  std::vector<std::vector<Cost>> best(
      static_cast<std::size_t>(W),
      std::vector<Cost>(static_cast<std::size_t>(m), 0));
  std::vector<std::vector<WindowId>> choice(
      static_cast<std::size_t>(W),
      std::vector<WindowId>(static_cast<std::size_t>(m), 0));

  for (int w = 0; w < W; ++w) {
    if (w > 0) {
      manhattanMinPlusInto(grid, dp[static_cast<std::size_t>(w - 1)], beta,
                           best[static_cast<std::size_t>(w)]);
    }
    for (ProcId p = 0; p < m; ++p) {
      Cost bestCost = kInfiniteCost;
      WindowId bestStart = 0;
      for (WindowId s = 0; s <= w; ++s) {
        const Cost entry = (s == 0) ? 0
                                    : best[static_cast<std::size_t>(s)]
                                          [static_cast<std::size_t>(p)];
        const Cost c = satAdd(entry, prefix.segment(s, w + 1, p));
        if (c < bestCost) {
          bestCost = c;
          bestStart = s;
        }
      }
      dp[static_cast<std::size_t>(w)][static_cast<std::size_t>(p)] = bestCost;
      choice[static_cast<std::size_t>(w)][static_cast<std::size_t>(p)] =
          bestStart;
    }
  }

  // Reconstruct backward.
  const std::vector<Cost>& last = dp[static_cast<std::size_t>(W - 1)];
  ProcId p = static_cast<ProcId>(
      std::min_element(last.begin(), last.end()) - last.begin());
  std::vector<WindowId> starts;
  std::vector<ProcId> centers;
  int w = W - 1;
  while (true) {
    const WindowId s =
        choice[static_cast<std::size_t>(w)][static_cast<std::size_t>(p)];
    starts.push_back(s);
    centers.push_back(p);
    if (s == 0) break;
    // Predecessor center: the q attaining best[s][p].
    const Cost target =
        best[static_cast<std::size_t>(s)][static_cast<std::size_t>(p)];
    ProcId q = kNoProc;
    for (ProcId cand = 0; cand < m; ++cand) {
      if (satAdd(dp[static_cast<std::size_t>(s - 1)]
                   [static_cast<std::size_t>(cand)],
                 beta * grid.manhattan(cand, p)) == target) {
        q = cand;
        break;
      }
    }
    if (q == kNoProc) {
      throw std::logic_error("optimalGrouping: reconstruction failed");
    }
    w = s - 1;
    p = q;
  }
  std::reverse(starts.begin(), starts.end());
  std::reverse(centers.begin(), centers.end());
  return DataGrouping{std::move(starts), std::move(centers)};
}

namespace {

/// Capacity-aware variant of the greedy grouper used by
/// scheduleGroupedLomcds: group centers are restricted to processors with
/// a free slot in every window of the group (given the occupancy left by
/// previously scheduled data), so Algorithm 3's merge decisions are made
/// against the costs that will actually be realised.
class CapacityAwareGrouper {
 public:
  CapacityAwareGrouper(const WindowCostPrefix& prefix, const CostModel& model,
                       const std::vector<OccupancyMap>& occupancy)
      : prefix_(prefix), model_(model), occupancy_(occupancy) {}

  /// First processor of the segment's ascending-cost list with room in
  /// every window of [begin, end); kNoProc when none exists.
  [[nodiscard]] ProcId availableSegmentCenter(WindowId begin,
                                              WindowId end) const {
    const int m = prefix_.numProcs();
    std::vector<Cost> costs(static_cast<std::size_t>(m));
    for (ProcId p = 0; p < m; ++p) {
      costs[static_cast<std::size_t>(p)] = prefix_.segment(begin, end, p);
    }
    const CenterList list(costs);
    for (const ProcId p : list.order()) {
      if (roomEverywhere(p, begin, end)) return p;
    }
    return kNoProc;
  }

  [[nodiscard]] bool roomEverywhere(ProcId p, WindowId begin,
                                    WindowId end) const {
    for (WindowId w = begin; w < end; ++w) {
      if (!occupancy_[static_cast<std::size_t>(w)].hasRoom(p)) return false;
    }
    return true;
  }

  /// Centers for a set of group starts; empty groups stay at a neighbour's
  /// center when it has room, otherwise take the nearest available
  /// processor. Returns nullopt if any group has no feasible center.
  [[nodiscard]] std::optional<DataGrouping> withCenters(
      std::vector<WindowId> starts) const {
    DataGrouping g;
    g.starts = std::move(starts);
    const int n = g.numGroups();
    g.centers.assign(static_cast<std::size_t>(n), kNoProc);
    for (int i = 0; i < n; ++i) {
      const auto [begin, end] = groupRange(g, i);
      if (prefix_.segmentWeight(begin, end) > 0) {
        g.centers[static_cast<std::size_t>(i)] =
            availableSegmentCenter(begin, end);
        if (g.centers[static_cast<std::size_t>(i)] == kNoProc) {
          return std::nullopt;
        }
      }
    }
    // Empty groups adopt the nearest feasible neighbour center: forward
    // pass from the previous group, then a backward pass for a leading
    // run of empty groups.
    for (int i = 0; i < n; ++i) {
      if (g.centers[static_cast<std::size_t>(i)] != kNoProc) continue;
      const ProcId neighbor =
          (i > 0) ? g.centers[static_cast<std::size_t>(i - 1)] : kNoProc;
      if (neighbor != kNoProc) {
        g.centers[static_cast<std::size_t>(i)] =
            nearestAvailable(neighbor, g, i);
        if (g.centers[static_cast<std::size_t>(i)] == kNoProc) {
          return std::nullopt;
        }
      }
    }
    for (int i = n - 1; i >= 0; --i) {
      if (g.centers[static_cast<std::size_t>(i)] != kNoProc) continue;
      const ProcId neighbor = (i + 1 < n)
                                  ? g.centers[static_cast<std::size_t>(i + 1)]
                                  : static_cast<ProcId>(0);
      g.centers[static_cast<std::size_t>(i)] =
          nearestAvailable(neighbor == kNoProc ? 0 : neighbor, g, i);
      if (g.centers[static_cast<std::size_t>(i)] == kNoProc) {
        return std::nullopt;
      }
    }
    return g;
  }

  /// Greedy Algorithm 3 against realised (capacity-restricted) costs.
  [[nodiscard]] std::optional<DataGrouping> run() const {
    const int W = prefix_.numWindows();
    std::vector<WindowId> singleton;
    for (WindowId w = 0; w < W; ++w) singleton.push_back(w);
    std::optional<DataGrouping> current = withCenters(std::move(singleton));
    if (!current.has_value()) return std::nullopt;
    Cost currentCost = groupingCost(*current, prefix_, model_);
    if (W <= 1) return current;

    std::vector<WindowId> confirmed;
    WindowId start = 0;
    for (WindowId j = 1; j < W; ++j) {
      std::vector<WindowId> proposal = confirmed;
      proposal.push_back(start);
      for (WindowId w = j + 1; w < W; ++w) proposal.push_back(w);
      const std::optional<DataGrouping> candidate =
          withCenters(std::move(proposal));
      if (candidate.has_value()) {
        const Cost candidateCost =
            groupingCost(*candidate, prefix_, model_);
        if (candidateCost <= currentCost) {
          current = candidate;
          currentCost = candidateCost;
          continue;
        }
      }
      confirmed.push_back(start);
      start = j;
    }
    return current;
  }

 private:
  [[nodiscard]] std::pair<WindowId, WindowId> groupRange(
      const DataGrouping& g, int i) const {
    const WindowId begin = g.starts[static_cast<std::size_t>(i)];
    const WindowId end =
        (i + 1 < g.numGroups()) ? g.starts[static_cast<std::size_t>(i + 1)]
                                : static_cast<WindowId>(prefix_.numWindows());
    return {begin, end};
  }

  [[nodiscard]] ProcId nearestAvailable(ProcId from, const DataGrouping& g,
                                        int i) const {
    const auto [begin, end] = groupRange(g, i);
    const int m = prefix_.numProcs();
    std::vector<Cost> costs(static_cast<std::size_t>(m));
    for (ProcId p = 0; p < m; ++p) {
      costs[static_cast<std::size_t>(p)] = model_.moveCost(from, p);
    }
    const CenterList list(costs);
    for (const ProcId p : list.order()) {
      if (roomEverywhere(p, begin, end)) return p;
    }
    return kNoProc;
  }

  const WindowCostPrefix& prefix_;
  const CostModel& model_;
  const std::vector<OccupancyMap>& occupancy_;
};

}  // namespace

DataSchedule scheduleGroupedGomcds(const WindowedRefs& refs,
                                   const CostModel& model,
                                   const SchedulerOptions& options) {
  const Grid& grid = model.grid();
  const int W = refs.numWindows();
  const Cost beta = model.params().hopCost * model.params().moveVolume;
  DataSchedule schedule(refs.numData(), W);
  std::vector<OccupancyMap> occupancy(
      static_cast<std::size_t>(W), OccupancyMap(grid, options.capacity));

  for (const DataId d : dataVisitOrder(refs, options.order)) {
    const WindowCostPrefix prefix(refs, d, model);
    const CapacityAwareGrouper grouper(prefix, model, occupancy);
    const std::optional<DataGrouping> grouping = grouper.run();
    if (!grouping.has_value()) {
      throw std::runtime_error(
          "scheduleGroupedGomcds: capacity infeasible for a datum");
    }
    const int g = grouping->numGroups();
    const auto groupEnd = [&](int i) -> WindowId {
      return (i + 1 < g) ? grouping->starts[static_cast<std::size_t>(i + 1)]
                         : static_cast<WindowId>(W);
    };

    // GOMCDS DP over groups: a node is (group, center); serving is the
    // merged segment's cost; a node is forbidden when the center lacks
    // room in any window of the group.
    const auto nodeCost = [&](int i, int p) -> Cost {
      const WindowId begin = grouping->starts[static_cast<std::size_t>(i)];
      const WindowId end = groupEnd(i);
      if (!grouper.roomEverywhere(static_cast<ProcId>(p), begin, end)) {
        return kInfiniteCost;
      }
      return prefix.segment(begin, end, static_cast<ProcId>(p));
    };
    const LayeredPath path =
        LayeredDagSolver::solveManhattan(grid, g, nodeCost, beta);
    if (!path.feasible()) {
      throw std::runtime_error(
          "scheduleGroupedGomcds: no feasible center path");
    }
    for (int i = 0; i < g; ++i) {
      const auto c =
          static_cast<ProcId>(path.nodes[static_cast<std::size_t>(i)]);
      for (WindowId w = grouping->starts[static_cast<std::size_t>(i)];
           w < groupEnd(i); ++w) {
        occupancy[static_cast<std::size_t>(w)].tryPlace(c);
        schedule.setCenter(d, w, c);
      }
    }
  }
  return schedule;
}

DataSchedule scheduleGroupedLomcds(const WindowedRefs& refs,
                                   const CostModel& model,
                                   const SchedulerOptions& options,
                                   GroupingMethod method) {
  const Grid& grid = model.grid();
  const int W = refs.numWindows();
  DataSchedule schedule(refs.numData(), W);
  std::vector<OccupancyMap> occupancy(
      static_cast<std::size_t>(W), OccupancyMap(grid, options.capacity));

  for (const DataId d : dataVisitOrder(refs, options.order)) {
    const WindowCostPrefix prefix(refs, d, model);

    if (method == GroupingMethod::kGreedy) {
      // Greedy Algorithm 3, evaluated against the capacity actually left
      // by the data scheduled so far; the chosen centers are feasible by
      // construction.
      const CapacityAwareGrouper grouper(prefix, model, occupancy);
      const std::optional<DataGrouping> grouping = grouper.run();
      if (!grouping.has_value()) {
        throw std::runtime_error(
            "scheduleGroupedLomcds: capacity infeasible for a datum");
      }
      const int g = grouping->numGroups();
      for (int i = 0; i < g; ++i) {
        const WindowId begin = grouping->starts[static_cast<std::size_t>(i)];
        const WindowId end =
            (i + 1 < g) ? grouping->starts[static_cast<std::size_t>(i + 1)]
                        : W;
        const ProcId c = grouping->centers[static_cast<std::size_t>(i)];
        for (WindowId w = begin; w < end; ++w) {
          occupancy[static_cast<std::size_t>(w)].tryPlace(c);
          schedule.setCenter(d, w, c);
        }
      }
      continue;
    }

    // kOptimalDp (ablation): optimal uncapacitated grouping, then a
    // processor-list fallback placement.
    const DataGrouping grouping = optimalGrouping(prefix, model);
    const int g = grouping.numGroups();
    for (int i = 0; i < g; ++i) {
      const WindowId begin = grouping.starts[static_cast<std::size_t>(i)];
      const WindowId end =
          (i + 1 < g) ? grouping.starts[static_cast<std::size_t>(i + 1)] : W;

      // The grouping's own center first (it already encodes stay-put for
      // empty groups); then fall back down the merged-segment processor
      // list to the best center with room in every window of the group.
      std::vector<Cost> segCosts(static_cast<std::size_t>(grid.size()));
      for (ProcId p = 0; p < grid.size(); ++p) {
        segCosts[static_cast<std::size_t>(p)] = prefix.segment(begin, end, p);
      }
      const CenterList list(segCosts);
      std::vector<ProcId> candidates;
      candidates.reserve(list.order().size() + 1);
      candidates.push_back(grouping.centers[static_cast<std::size_t>(i)]);
      candidates.insert(candidates.end(), list.order().begin(),
                        list.order().end());
      ProcId placed = kNoProc;
      for (const ProcId cand : candidates) {
        bool roomEverywhere = true;
        for (WindowId w = begin; w < end; ++w) {
          if (!occupancy[static_cast<std::size_t>(w)].hasRoom(cand)) {
            roomEverywhere = false;
            break;
          }
        }
        if (roomEverywhere) {
          placed = cand;
          break;
        }
      }
      if (placed != kNoProc) {
        for (WindowId w = begin; w < end; ++w) {
          occupancy[static_cast<std::size_t>(w)].tryPlace(placed);
          schedule.setCenter(d, w, placed);
        }
        continue;
      }
      // No single processor has room across the whole group: degrade
      // gracefully into per-window placement that tracks the intended
      // center — for each window, the cheapest processor with room,
      // charging both its serving cost and the detour from the group
      // center (this is plain LOMCDS with a movement-aware tie).
      const ProcId intended =
          grouping.centers[static_cast<std::size_t>(i)];
      for (WindowId w = begin; w < end; ++w) {
        std::vector<Cost> costs(static_cast<std::size_t>(grid.size()));
        for (ProcId p = 0; p < grid.size(); ++p) {
          costs[static_cast<std::size_t>(p)] =
              prefix.segment(w, w + 1, p) + model.moveCost(intended, p);
        }
        const CenterList perWindow(costs);
        const ProcId fallback =
            perWindow.firstAvailable(occupancy[static_cast<std::size_t>(w)]);
        if (fallback == kNoProc) {
          throw std::runtime_error(
              "scheduleGroupedLomcds: capacity infeasible for a group");
        }
        occupancy[static_cast<std::size_t>(w)].tryPlace(fallback);
        schedule.setCenter(d, w, fallback);
      }
    }
  }
  return schedule;
}

}  // namespace pimsched

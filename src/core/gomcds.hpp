#pragma once

#include "core/schedule.hpp"
#include "core/scheduler_options.hpp"
#include "cost/cost_model.hpp"
#include "trace/windowed_refs.hpp"

namespace pimsched {

/// Which engine solves the per-datum shortest-path problem. Both produce
/// identical schedules; kChamfer exploits the Manhattan structure of the
/// movement cost to relax each layer in O(numProcs) instead of
/// O(numProcs^2). kNaive exists for the A2 ablation and as the literal
/// reading of the paper's cost-graph.
enum class GomcdsEngine { kChamfer, kNaive };

/// Global-Optimal Multiple-Center Data Scheduling (paper Algorithm 2): for
/// each datum, build the layered cost-graph — one node per (execution
/// window, processor), edge weight = movement cost between the processors
/// plus the serving cost of the next window — and take the shortest
/// source-to-destination path as the center sequence. Without capacity
/// pressure this minimises each datum's total (serving + movement) cost
/// exactly.
///
/// Capacity is handled in the spirit of the paper's processor list: data
/// are scheduled sequentially and a (window, processor) slot that is full
/// becomes a forbidden node for later data.
[[nodiscard]] DataSchedule scheduleGomcds(
    const WindowedRefs& refs, const CostModel& model,
    const SchedulerOptions& options = {},
    GomcdsEngine engine = GomcdsEngine::kChamfer);

/// Multi-threaded GOMCDS for the uncapacitated case: each datum's
/// shortest-path problem is independent, so the data are striped across
/// `threads` worker threads (0 = hardware concurrency). Bit-identical to
/// scheduleGomcds with unlimited capacity. Capacity-constrained scheduling
/// is inherently sequential (slot claims order the data) and is rejected.
[[nodiscard]] DataSchedule scheduleGomcdsParallel(const WindowedRefs& refs,
                                                  const CostModel& model,
                                                  unsigned threads = 0);

}  // namespace pimsched

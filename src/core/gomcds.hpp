#pragma once

#include "core/schedule.hpp"
#include "core/scheduler_options.hpp"
#include "cost/cost_model.hpp"
#include "trace/windowed_refs.hpp"

namespace pimsched {

/// Which engine solves the per-datum shortest-path problem. Both produce
/// identical schedules; kChamfer exploits the Manhattan structure of the
/// movement cost to relax each layer in O(numProcs) instead of
/// O(numProcs^2). kNaive exists for the A2 ablation and as the literal
/// reading of the paper's cost-graph.
enum class GomcdsEngine { kChamfer, kNaive };

/// Global-Optimal Multiple-Center Data Scheduling (paper Algorithm 2): for
/// each datum, build the layered cost-graph — one node per (execution
/// window, processor), edge weight = movement cost between the processors
/// plus the serving cost of the next window — and take the shortest
/// source-to-destination path as the center sequence. Without capacity
/// pressure this minimises each datum's total (serving + movement) cost
/// exactly.
///
/// Capacity is handled in the spirit of the paper's processor list: data
/// are scheduled sequentially and a (window, processor) slot that is full
/// becomes a forbidden node for later data.
///
/// Serving-cost tables are memoized per call (cost/cost_cache.hpp): data
/// with identical per-window reference strings — common in matmul/LU
/// traces — share one table instead of recomputing it.
[[nodiscard]] DataSchedule scheduleGomcds(
    const WindowedRefs& refs, const CostModel& model,
    const SchedulerOptions& options = {},
    GomcdsEngine engine = GomcdsEngine::kChamfer);

/// Multi-threaded GOMCDS, bit-identical to scheduleGomcds(refs, model,
/// options) for any options, capacity included. Two-phase plan/commit:
/// workers solve the per-datum layered DAGs in parallel against a
/// read-only snapshot of the occupancy maps, then a sequential commit
/// pass walks the data in visit order (the deterministic tie-break) and
/// places every datum whose planned path still fits. The first datum
/// whose plan hits a slot filled after its snapshot stops the pass; only
/// plans invalidated by the new placements are re-solved in the next
/// round, so conflict-free workloads finish in a single parallel round.
///
/// Equality to the sequential engine holds because a planned path that
/// stays feasible under the (larger) commit-time forbidden set is still
/// the cost- and tie-break-minimal path the sequential scheduler would
/// pick. threads = 0 uses hardware concurrency; helper workers come from
/// the shared ThreadPool (util/thread_pool.hpp).
[[nodiscard]] DataSchedule scheduleGomcdsParallel(
    const WindowedRefs& refs, const CostModel& model,
    const SchedulerOptions& options, unsigned threads = 0);

/// Back-compat convenience: unlimited capacity, id order.
[[nodiscard]] DataSchedule scheduleGomcdsParallel(const WindowedRefs& refs,
                                                  const CostModel& model,
                                                  unsigned threads = 0);

}  // namespace pimsched

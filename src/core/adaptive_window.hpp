#pragma once

#include "pim/grid.hpp"
#include "trace/trace.hpp"
#include "trace/window.hpp"

namespace pimsched {

/// Extension of the paper's §4: instead of fixing the execution-window
/// size up front and repairing it per datum with Algorithm 3, derive the
/// window boundaries from the trace itself. The heuristic watches the
/// weighted centroid of each step's references and cuts a window whenever
/// the centroid has drifted more than `driftThreshold` hops from the
/// current window's running centroid — i.e. windows end where the
/// communication pattern moves.
struct AdaptiveWindowOptions {
  /// Manhattan distance the step centroid may stray from the window
  /// centroid before a cut (in hops).
  double driftThreshold = 1.0;
  /// Upper bound on steps per window (0 = unbounded).
  StepId maxWindowSteps = 0;
};

[[nodiscard]] WindowPartition adaptiveWindows(
    const ReferenceTrace& trace, const Grid& grid,
    const AdaptiveWindowOptions& options = {});

}  // namespace pimsched

#include "core/scds.hpp"

#include <stdexcept>

#include "core/data_order.hpp"
#include "cost/center_costs.hpp"
#include "cost/center_list.hpp"
#include "pim/memory.hpp"

namespace pimsched {

DataSchedule scheduleScds(const WindowedRefs& refs, const CostModel& model,
                          const SchedulerOptions& options) {
  DataSchedule schedule(refs.numData(), refs.numWindows());
  // A static placement occupies its slot for the whole run, so a single
  // occupancy map covers every window.
  OccupancyMap occupancy(model.grid(), options.capacity);

  for (const DataId d : dataVisitOrder(refs, options.order)) {
    const std::vector<ProcWeight> merged =
        refs.mergedRefs(d, 0, refs.numWindows());
    const std::vector<Cost> costs = centerCosts(model, merged);
    const CenterList list(costs);
    const ProcId p = list.firstAvailable(occupancy);
    if (p == kNoProc) {
      throw std::runtime_error(
          "scheduleScds: capacity infeasible (all processors full)");
    }
    occupancy.tryPlace(p);
    schedule.setStatic(d, p);
  }
  return schedule;
}

}  // namespace pimsched

#include "core/scds.hpp"

#include <stdexcept>
#include <string>

#include "core/data_order.hpp"
#include "cost/center_costs.hpp"
#include "cost/center_list.hpp"
#include "fault/fault_map.hpp"
#include "obs/obs.hpp"
#include "pim/memory.hpp"

namespace pimsched {

DataSchedule scheduleScds(const WindowedRefs& refs, const CostModel& model,
                          const SchedulerOptions& options) {
  PIMSCHED_SCOPED_TIMER("sched.scds");
  DataSchedule schedule(refs.numData(), refs.numWindows());
  // A static placement occupies its slot for the whole run, so a single
  // occupancy map covers every window.
  OccupancyMap occupancy(model.grid(), options.capacity);
  if (const FaultMap* faults = model.faults()) {
    applyFaultCapacity(occupancy, *faults);
  }

  // Buffered locally and merged once on exit to keep the placement loop
  // free of atomic traffic.
  std::int64_t placements = 0;
  for (const DataId d : dataVisitOrder(refs, options.order)) {
    const std::vector<ProcWeight> merged =
        refs.mergedRefs(d, 0, refs.numWindows());
    const std::vector<Cost> costs = centerCosts(model, merged);
    const CenterList list(costs);
    const ProcId p = list.firstAvailable(occupancy);
    if (p == kNoProc) {
      if (!list.hasFeasible()) {
        throw UnreachableError("scheduleScds: no feasible center for datum " +
                               std::to_string(d) + " on faulted mesh");
      }
      throw std::runtime_error(
          "scheduleScds: capacity infeasible (all processors full)");
    }
    if (!occupancy.tryPlace(p)) {
      // firstAvailable only returns processors with room; a failure here
      // means the occupancy accounting itself went wrong.
      throw std::logic_error("scheduleScds: tryPlace failed for datum " +
                             std::to_string(d) + " on processor " +
                             std::to_string(p) + " (used " +
                             std::to_string(occupancy.used(p)) + "/" +
                             std::to_string(occupancy.capacity()) + ")");
    }
    schedule.setStatic(d, p);
    ++placements;
  }
  PIMSCHED_COUNTER_ADD("sched.scds.placements", placements);
  return schedule;
}

}  // namespace pimsched

#pragma once

#include "core/schedule.hpp"
#include "core/scheduler_options.hpp"
#include "cost/cost_model.hpp"
#include "trace/windowed_refs.hpp"

namespace pimsched {

/// Single-Center Data Scheduling (paper Algorithm 1): every datum gets one
/// center for the whole execution. All execution windows are merged, the
/// serving cost of every candidate processor is computed, and the datum is
/// assigned to the first processor of the ascending-cost processor list
/// that still has a free memory slot.
///
/// Throws std::runtime_error if the capacity is infeasible
/// (numData > capacity * numProcs).
[[nodiscard]] DataSchedule scheduleScds(const WindowedRefs& refs,
                                        const CostModel& model,
                                        const SchedulerOptions& options = {});

}  // namespace pimsched

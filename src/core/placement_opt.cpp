#include "core/placement_opt.hpp"

#include <algorithm>
#include <numeric>

#include "cost/center_costs.hpp"

namespace pimsched {

namespace {

/// One (datum, window) reference string in logical processor ids.
struct Cell {
  std::vector<ProcWeight> refs;
  Cost cost = 0;
};

Cost cellCost(const CostModel& model, const Cell& cell,
              const std::vector<ProcId>& perm) {
  std::vector<ProcWeight> mapped;
  mapped.reserve(cell.refs.size());
  for (const ProcWeight& pw : cell.refs) {
    mapped.push_back(
        ProcWeight{perm[static_cast<std::size_t>(pw.proc)], pw.weight});
  }
  return bestCenter(model, mapped).cost;
}

}  // namespace

PlacementOptResult optimizeProcPlacement(const WindowedRefs& refs,
                                         const CostModel& model,
                                         const PlacementOptOptions& options) {
  const int m = refs.numProcs();
  PlacementOptResult result;
  result.perm.resize(static_cast<std::size_t>(m));
  std::iota(result.perm.begin(), result.perm.end(), 0);

  // Materialise the non-empty cells and a proc -> cells index.
  std::vector<Cell> cells;
  std::vector<std::vector<int>> touching(static_cast<std::size_t>(m));
  for (DataId d = 0; d < refs.numData(); ++d) {
    for (WindowId w = 0; w < refs.numWindows(); ++w) {
      const auto rs = refs.refs(d, w);
      if (rs.empty()) continue;
      Cell cell;
      cell.refs.assign(rs.begin(), rs.end());
      const int idx = static_cast<int>(cells.size());
      for (const ProcWeight& pw : cell.refs) {
        touching[static_cast<std::size_t>(pw.proc)].push_back(idx);
      }
      cells.push_back(std::move(cell));
    }
  }

  Cost total = 0;
  for (Cell& cell : cells) {
    cell.cost = cellCost(model, cell, result.perm);
    total += cell.cost;
  }
  result.before = total;

  std::vector<int> stamp(cells.size(), -1);
  int stampGen = 0;
  std::vector<int> affected;
  std::vector<Cost> savedCosts;

  for (int sweep = 0; sweep < options.maxSweeps; ++sweep) {
    bool improved = false;
    for (ProcId a = 0; a < m; ++a) {
      for (ProcId b = a + 1; b < m; ++b) {
        // Gather the cells touching either logical processor, once.
        ++stampGen;
        affected.clear();
        for (const ProcId p : {a, b}) {
          for (const int idx : touching[static_cast<std::size_t>(p)]) {
            if (stamp[static_cast<std::size_t>(idx)] != stampGen) {
              stamp[static_cast<std::size_t>(idx)] = stampGen;
              affected.push_back(idx);
            }
          }
        }
        if (affected.empty()) continue;

        std::swap(result.perm[static_cast<std::size_t>(a)],
                  result.perm[static_cast<std::size_t>(b)]);
        Cost delta = 0;
        savedCosts.clear();
        for (const int idx : affected) {
          const Cost fresh =
              cellCost(model, cells[static_cast<std::size_t>(idx)],
                       result.perm);
          savedCosts.push_back(fresh);
          delta += fresh - cells[static_cast<std::size_t>(idx)].cost;
        }
        if (delta < 0) {
          for (std::size_t i = 0; i < affected.size(); ++i) {
            cells[static_cast<std::size_t>(affected[i])].cost =
                savedCosts[i];
          }
          total += delta;
          ++result.swapsApplied;
          improved = true;
        } else {
          std::swap(result.perm[static_cast<std::size_t>(a)],
                    result.perm[static_cast<std::size_t>(b)]);
        }
      }
    }
    if (!improved) break;
  }
  result.after = total;
  return result;
}

}  // namespace pimsched

#include "core/baselines.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace pimsched {

std::string toString(BaselineKind kind) {
  switch (kind) {
    case BaselineKind::kRowWise: return "row-wise";
    case BaselineKind::kColWise: return "col-wise";
    case BaselineKind::kBlock2D: return "block-2d";
    case BaselineKind::kCyclic2D: return "cyclic-2d";
    case BaselineKind::kRandom: return "random";
  }
  return "unknown";
}

namespace {

/// Assigns data, enumerated in `order`, to processors in row-major grid
/// order in contiguous chunks of ceil(D / m).
void assignChunked(DataSchedule& schedule, const std::vector<DataId>& order,
                   const Grid& grid) {
  const std::int64_t total = static_cast<std::int64_t>(order.size());
  const std::int64_t chunk = (total + grid.size() - 1) / grid.size();
  for (std::int64_t k = 0; k < total; ++k) {
    const auto p = static_cast<ProcId>(
        std::min<std::int64_t>(k / chunk, grid.size() - 1));
    schedule.setStatic(order[static_cast<std::size_t>(k)], p);
  }
}

}  // namespace

DataSchedule baselineSchedule(BaselineKind kind, const DataSpace& space,
                              const Grid& grid, int numWindows,
                              std::uint64_t seed) {
  DataSchedule schedule(space.numData(), numWindows);
  switch (kind) {
    case BaselineKind::kRowWise: {
      // DataIds are already row-major per array, arrays concatenated.
      std::vector<DataId> order(static_cast<std::size_t>(space.numData()));
      std::iota(order.begin(), order.end(), 0);
      assignChunked(schedule, order, grid);
      break;
    }
    case BaselineKind::kColWise: {
      std::vector<DataId> order;
      order.reserve(static_cast<std::size_t>(space.numData()));
      for (int a = 0; a < space.numArrays(); ++a) {
        const auto& info = space.arrays()[static_cast<std::size_t>(a)];
        for (int j = 0; j < info.cols; ++j) {
          for (int i = 0; i < info.rows; ++i) {
            order.push_back(space.id(a, i, j));
          }
        }
      }
      assignChunked(schedule, order, grid);
      break;
    }
    case BaselineKind::kBlock2D: {
      for (DataId d = 0; d < space.numData(); ++d) {
        const ElementRef e = space.element(d);
        const auto& info =
            space.arrays()[static_cast<std::size_t>(e.array)];
        const int r = static_cast<int>(
            (static_cast<std::int64_t>(e.row) * grid.rows()) / info.rows);
        const int c = static_cast<int>(
            (static_cast<std::int64_t>(e.col) * grid.cols()) / info.cols);
        schedule.setStatic(d, grid.id(r, c));
      }
      break;
    }
    case BaselineKind::kCyclic2D: {
      for (DataId d = 0; d < space.numData(); ++d) {
        const ElementRef e = space.element(d);
        schedule.setStatic(
            d, grid.id(e.row % grid.rows(), e.col % grid.cols()));
      }
      break;
    }
    case BaselineKind::kRandom: {
      // Seeded Fisher-Yates over data ids, then chunked: uniform but
      // balanced, so it respects the paper's capacity.
      std::vector<DataId> order(static_cast<std::size_t>(space.numData()));
      std::iota(order.begin(), order.end(), 0);
      std::uint64_t state = seed;
      const auto next = [&state] {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return state >> 33;
      };
      for (std::size_t k = order.size(); k > 1; --k) {
        std::swap(order[k - 1], order[static_cast<std::size_t>(
                                    next() % k)]);
      }
      assignChunked(schedule, order, grid);
      break;
    }
  }
  return schedule;
}

}  // namespace pimsched

#include "core/schedule_io.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pimsched {

namespace {
constexpr const char* kMagic = "pimsched v1";
constexpr const char* kDigestPrefix = "# digest ";
}  // namespace

Digest scheduleDigest(const DataSchedule& schedule) {
  DigestBuilder b;
  b.str("pimsched");
  b.i64(schedule.numData());
  b.i64(schedule.numWindows());
  for (DataId d = 0; d < schedule.numData(); ++d) {
    for (WindowId w = 0; w < schedule.numWindows(); ++w) {
      b.i64(schedule.center(d, w));
    }
  }
  return b.digest();
}

void saveSchedule(const DataSchedule& schedule, std::ostream& os) {
  os << kMagic << ' ' << schedule.numData() << ' ' << schedule.numWindows()
     << '\n'
     << kDigestPrefix << scheduleDigest(schedule).hex() << '\n';
  for (DataId d = 0; d < schedule.numData(); ++d) {
    for (WindowId w = 0; w < schedule.numWindows(); ++w) {
      if (w > 0) os << ' ';
      os << schedule.center(d, w);
    }
    os << '\n';
  }
}

void saveScheduleFile(const DataSchedule& schedule, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("saveScheduleFile: cannot open " + path);
  saveSchedule(schedule, os);
}

DataSchedule loadSchedule(std::istream& is, ProcId numProcs) {
  std::string line;
  if (!std::getline(is, line)) {
    throw std::runtime_error("loadSchedule: empty input");
  }
  std::istringstream header(line);
  std::string word1, word2;
  DataId numData = 0;
  int numWindows = 0;
  if (!(header >> word1 >> word2 >> numData >> numWindows) ||
      word1 != "pimsched" || word2 != "v1") {
    throw std::runtime_error("loadSchedule: bad header");
  }
  DataSchedule schedule(numData, numWindows);
  std::optional<Digest> expected;
  DataId d = 0;
  while (std::getline(is, line)) {
    if (line.rfind(kDigestPrefix, 0) == 0) {
      expected = Digest::fromHex(line.substr(std::strlen(kDigestPrefix)));
      if (!expected.has_value()) {
        throw std::runtime_error("loadSchedule: malformed digest line");
      }
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    if (d >= numData) {
      throw std::runtime_error("loadSchedule: more rows than data");
    }
    std::istringstream row(line);
    for (WindowId w = 0; w < numWindows; ++w) {
      ProcId p = kNoProc;
      if (!(row >> p) || p < 0) {
        throw std::runtime_error("loadSchedule: malformed row for datum " +
                                 std::to_string(d));
      }
      if (numProcs >= 0 && p >= numProcs) {
        throw std::runtime_error(
            "loadSchedule: processor id " + std::to_string(p) +
            " for datum " + std::to_string(d) + " window " +
            std::to_string(w) + " is out of range (grid has " +
            std::to_string(numProcs) + " processors)");
      }
      schedule.setCenter(d, w, p);
    }
    ProcId extra;
    if (row >> extra) {
      throw std::runtime_error("loadSchedule: too many centers for datum " +
                               std::to_string(d));
    }
    ++d;
  }
  if (d != numData) {
    throw std::runtime_error("loadSchedule: expected " +
                             std::to_string(numData) + " rows, got " +
                             std::to_string(d));
  }
  if (expected.has_value() && *expected != scheduleDigest(schedule)) {
    throw std::runtime_error(
        "loadSchedule: digest mismatch — the placement rows do not match "
        "the file's integrity line (corrupted or hand-edited schedule)");
  }
  return schedule;
}

DataSchedule loadScheduleFile(const std::string& path, ProcId numProcs) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("loadScheduleFile: cannot open " + path);
  return loadSchedule(is, numProcs);
}

}  // namespace pimsched

#pragma once

#include <span>
#include <vector>

#include "core/scheduler_options.hpp"
#include "cost/cost_model.hpp"
#include "trace/windowed_refs.hpp"

namespace pimsched {

/// Extension beyond the paper: the paper fixes "one copy of data is
/// allowed in a system"; this module lifts that restriction for read-only
/// data by placing k static replicas per datum (weighted k-median over the
/// merged reference string) and serving every reference from the nearest
/// replica. No run-time movement — the replication analogue of SCDS.
///
/// The model treats all references as reads; for data that are written the
/// coherence traffic of a multi-copy scheme is not modelled (documented
/// future work, matching the paper's single-copy assumption).
class ReplicatedSchedule {
 public:
  ReplicatedSchedule(DataId numData) : replicas_(static_cast<std::size_t>(numData)) {}

  [[nodiscard]] DataId numData() const {
    return static_cast<DataId>(replicas_.size());
  }
  [[nodiscard]] std::span<const ProcId> replicas(DataId d) const {
    return replicas_[static_cast<std::size_t>(d)];
  }
  void setReplicas(DataId d, std::vector<ProcId> procs) {
    replicas_[static_cast<std::size_t>(d)] = std::move(procs);
  }

  /// Total replicas across all data (memory footprint in slots).
  [[nodiscard]] std::int64_t totalReplicas() const;

 private:
  std::vector<std::vector<ProcId>> replicas_;
};

struct ReplicationOptions {
  /// Hard cap on replicas per datum.
  int maxReplicasPerDatum = 4;
  /// A replica is only added while it reduces the serving cost by at least
  /// this much (models the storage/update cost of keeping an extra copy).
  Cost minGainPerReplica = 1;
  /// Per-processor slot capacity across all replicas; < 0 unlimited.
  std::int64_t capacity = -1;
  DataOrder order = DataOrder::kByWeightDesc;
};

/// Greedy replicated placement: per datum (heaviest first), grow the
/// replica set with kMedian while the marginal gain clears
/// minGainPerReplica and capacity slots remain.
[[nodiscard]] ReplicatedSchedule scheduleReplicated(
    const WindowedRefs& refs, const CostModel& model,
    const ReplicationOptions& options = {});

/// Serving cost of a replicated schedule (nearest replica per reference,
/// summed over windows; replicas are static so there is no movement term).
[[nodiscard]] Cost evaluateReplicated(const ReplicatedSchedule& schedule,
                                      const WindowedRefs& refs,
                                      const CostModel& model);

}  // namespace pimsched

#pragma once

#include <vector>

#include "core/scheduler_options.hpp"
#include "trace/windowed_refs.hpp"

namespace pimsched {

/// The sequence in which a scheduler visits data when claiming capacity
/// slots: plain id order, or descending total reference weight (heavier
/// data claim their optimal centers first), ties toward smaller id.
[[nodiscard]] std::vector<DataId> dataVisitOrder(const WindowedRefs& refs,
                                                 DataOrder order);

}  // namespace pimsched

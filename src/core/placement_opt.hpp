#pragma once

#include <vector>

#include "cost/cost_model.hpp"
#include "trace/windowed_refs.hpp"

namespace pimsched {

/// Stage-1 optimisation: improve the *iteration partition* by re-labelling
/// which physical processor executes each logical partition cell. The work
/// decomposition is untouched — only the mapping onto the mesh changes, so
/// spatially-close communication partners end up physically close.
///
/// Objective: sum over every (datum, window) cell of the reference
/// string's minimal serving cost (its dispersion around the weighted
/// median) — a scheduler-independent lower-bound proxy for what any data
/// scheduling can achieve afterwards.
///
/// Search: deterministic first-improvement pairwise-swap local search with
/// incremental re-evaluation (only the (datum, window) cells touching a
/// swapped processor are recosted).
struct PlacementOptResult {
  std::vector<ProcId> perm;  ///< logical proc -> physical proc
  Cost before = 0;           ///< objective of the identity mapping
  Cost after = 0;            ///< objective of perm
  int swapsApplied = 0;
};

struct PlacementOptOptions {
  /// Maximum full sweeps over all processor pairs.
  int maxSweeps = 8;
};

[[nodiscard]] PlacementOptResult optimizeProcPlacement(
    const WindowedRefs& refs, const CostModel& model,
    const PlacementOptOptions& options = {});

}  // namespace pimsched

#include "core/verify.hpp"

#include <stdexcept>

namespace pimsched {

VerifyReport verifySchedule(const DataSchedule& schedule, const Grid& grid,
                            std::int64_t capacity) {
  VerifyReport report;
  std::vector<std::int64_t> occupancy(
      static_cast<std::size_t>(grid.size()));

  for (WindowId w = 0; w < schedule.numWindows(); ++w) {
    std::fill(occupancy.begin(), occupancy.end(), 0);
    for (DataId d = 0; d < schedule.numData(); ++d) {
      const ProcId p = schedule.center(d, w);
      if (p == kNoProc) {
        report.issues.push_back(
            {ScheduleIssue::Kind::kIncompleteCell, d, w, p,
             "no center assigned"});
        continue;
      }
      if (!grid.contains(p)) {
        report.issues.push_back(
            {ScheduleIssue::Kind::kInvalidProcessor, d, w, p,
             "processor id outside the grid"});
        continue;
      }
      ++occupancy[static_cast<std::size_t>(p)];
    }
    if (capacity >= 0) {
      for (ProcId p = 0; p < grid.size(); ++p) {
        if (occupancy[static_cast<std::size_t>(p)] > capacity) {
          report.issues.push_back(
              {ScheduleIssue::Kind::kCapacityExceeded, -1, w, p,
               std::to_string(occupancy[static_cast<std::size_t>(p)]) +
                   " data in " + std::to_string(capacity) + " slots"});
        }
      }
    }
  }
  return report;
}

VerifyReport verifyScheduleFaults(const DataSchedule& schedule,
                                  const WindowedRefs& refs,
                                  const CostModel& model) {
  VerifyReport report;
  if (!model.faultAware()) return report;
  const DistanceMap& distances = model.distances();
  for (DataId d = 0; d < schedule.numData(); ++d) {
    for (WindowId w = 0; w < schedule.numWindows(); ++w) {
      const ProcId p = schedule.center(d, w);
      if (p == kNoProc || !model.grid().contains(p)) continue;  // verifySchedule's job
      if (!distances.alive(p)) {
        report.issues.push_back({ScheduleIssue::Kind::kDeadCenter, d, w, p,
                                 "datum placed on a dead processor"});
        continue;
      }
      for (const ProcWeight& pw : refs.refs(d, w)) {
        if (distances.hopDistance(p, pw.proc) >= kInfiniteCost) {
          report.issues.push_back(
              {ScheduleIssue::Kind::kUnreachableServe, d, w, p,
               "referencing processor " + std::to_string(pw.proc) +
                   " cannot reach the center"});
        }
      }
      if (w > 0) {
        const ProcId prev = schedule.center(d, w - 1);
        if (prev != kNoProc && prev != p && distances.alive(prev) &&
            distances.hopDistance(prev, p) >= kInfiniteCost) {
          report.issues.push_back(
              {ScheduleIssue::Kind::kUnreachableMove, d, w, p,
               "no alive route from previous center " + std::to_string(prev)});
        }
      }
    }
  }
  return report;
}

ScheduleDiff diffSchedules(const DataSchedule& a, const DataSchedule& b) {
  if (a.numData() != b.numData() || a.numWindows() != b.numWindows()) {
    throw std::invalid_argument("diffSchedules: shape mismatch");
  }
  ScheduleDiff diff;
  for (DataId d = 0; d < a.numData(); ++d) {
    bool affected = false;
    for (WindowId w = 0; w < a.numWindows(); ++w) {
      if (a.center(d, w) != b.center(d, w)) {
        ++diff.differingCells;
        affected = true;
      }
      if (w > 0) {
        if (a.center(d, w) != a.center(d, w - 1)) ++diff.migrationsA;
        if (b.center(d, w) != b.center(d, w - 1)) ++diff.migrationsB;
      }
    }
    if (affected) ++diff.dataAffected;
  }
  return diff;
}

}  // namespace pimsched

#include "core/verify.hpp"

#include <stdexcept>

namespace pimsched {

VerifyReport verifySchedule(const DataSchedule& schedule, const Grid& grid,
                            std::int64_t capacity) {
  VerifyReport report;
  std::vector<std::int64_t> occupancy(
      static_cast<std::size_t>(grid.size()));

  for (WindowId w = 0; w < schedule.numWindows(); ++w) {
    std::fill(occupancy.begin(), occupancy.end(), 0);
    for (DataId d = 0; d < schedule.numData(); ++d) {
      const ProcId p = schedule.center(d, w);
      if (p == kNoProc) {
        report.issues.push_back(
            {ScheduleIssue::Kind::kIncompleteCell, d, w, p,
             "no center assigned"});
        continue;
      }
      if (!grid.contains(p)) {
        report.issues.push_back(
            {ScheduleIssue::Kind::kInvalidProcessor, d, w, p,
             "processor id outside the grid"});
        continue;
      }
      ++occupancy[static_cast<std::size_t>(p)];
    }
    if (capacity >= 0) {
      for (ProcId p = 0; p < grid.size(); ++p) {
        if (occupancy[static_cast<std::size_t>(p)] > capacity) {
          report.issues.push_back(
              {ScheduleIssue::Kind::kCapacityExceeded, -1, w, p,
               std::to_string(occupancy[static_cast<std::size_t>(p)]) +
                   " data in " + std::to_string(capacity) + " slots"});
        }
      }
    }
  }
  return report;
}

ScheduleDiff diffSchedules(const DataSchedule& a, const DataSchedule& b) {
  if (a.numData() != b.numData() || a.numWindows() != b.numWindows()) {
    throw std::invalid_argument("diffSchedules: shape mismatch");
  }
  ScheduleDiff diff;
  for (DataId d = 0; d < a.numData(); ++d) {
    bool affected = false;
    for (WindowId w = 0; w < a.numWindows(); ++w) {
      if (a.center(d, w) != b.center(d, w)) {
        ++diff.differingCells;
        affected = true;
      }
      if (w > 0) {
        if (a.center(d, w) != a.center(d, w - 1)) ++diff.migrationsA;
        if (b.center(d, w) != b.center(d, w - 1)) ++diff.migrationsB;
      }
    }
    if (affected) ++diff.dataAffected;
  }
  return diff;
}

}  // namespace pimsched

#pragma once

#include <cstdint>

#include "core/schedule.hpp"
#include "core/scheduler_options.hpp"
#include "cost/cost_model.hpp"
#include "trace/windowed_refs.hpp"

namespace pimsched {

/// Simulated-annealing data scheduler — an ablation baseline the paper
/// does not consider. Unlike GOMCDS (per-datum optimal, but greedy across
/// data when capacity binds), annealing searches the joint schedule space:
/// a move re-homes one (datum, window) cell, respecting capacity, and is
/// accepted by the Metropolis rule on the exact incremental cost (serving
/// delta plus the two affected movement edges). Deterministic for a fixed
/// seed; returns the best schedule visited.
struct AnnealParams {
  std::int64_t iterations = 200'000;
  double initialTemperature = 32.0;
  double coolingFactor = 0.9995;  ///< applied every `stepsPerCooling` moves
  int stepsPerCooling = 64;
  std::uint64_t seed = 0xC0FFEE;
};

/// Starts from `initial` (commonly the GOMCDS schedule) and anneals. The
/// initial schedule must be complete and respect `options.capacity`.
[[nodiscard]] DataSchedule scheduleAnnealed(const WindowedRefs& refs,
                                            const CostModel& model,
                                            const DataSchedule& initial,
                                            const SchedulerOptions& options = {},
                                            const AnnealParams& params = {});

}  // namespace pimsched

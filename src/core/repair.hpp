#pragma once

#include <cstdint>

#include "core/schedule.hpp"
#include "cost/cost_model.hpp"
#include "trace/windowed_refs.hpp"

namespace pimsched {

/// Options for online schedule repair after faults arrive mid-execution.
struct RepairOptions {
  /// First window executed under the new fault state: windows before it
  /// already ran and are never touched; windows from it on are repaired.
  WindowId faultWindow = 0;
  /// Per-processor slot budget (< 0 = unlimited); the fault state's
  /// per-processor reductions are applied on top.
  std::int64_t capacity = -1;
};

/// Outcome of repairSchedule.
struct RepairResult {
  DataSchedule schedule;  ///< prefix [0, faultWindow) bit-identical to input

  std::int64_t dataRepaired = 0;   ///< distinct data with >= 1 changed cell
  std::int64_t cellsRepaired = 0;  ///< (datum, window) cells changed
  /// Re-centers forced by reduced capacity rather than a dead or
  /// unreachable center (surviving data evicted to make the window fit).
  std::int64_t evictions = 0;
  /// Migrations whose source center was dead or could not reach the new
  /// center: the datum is restored out-of-band (e.g. from backing store),
  /// so the mesh carries no traffic for it and the move is charged 0.
  std::int64_t recoveredMigrations = 0;
  /// Mesh traffic of the repair-induced migrations that *did* route
  /// (recovered migrations excluded).
  Cost migrationCost = 0;
  /// repairSuffixCost of the repaired schedule — the comparable
  /// "cost of the rest of the run" number.
  Cost suffixCost = 0;
};

/// Repairs a schedule in place of re-running a scheduler: every datum
/// whose center died, whose window's referencing processors can no longer
/// reach its center, or whose window-to-window migration lost its route is
/// re-centered onto the cheapest surviving feasible processor (fault-aware
/// serve cost + migration from its previous center, recovery rule above).
/// Unaffected data keep their placements — the point of repair is to move
/// as little as possible. Within a window, surviving placements claim
/// their slots first; repairs fill remaining capacity in DataId order.
///
/// `refs` and `model` must be the fault-aware pair of an Experiment built
/// over the new fault state (masked refs + DistanceMap distances); with a
/// fault-oblivious model nothing is broken and the input is returned
/// unchanged. Throws UnreachableError when some datum has no feasible
/// center at all, std::runtime_error when only capacity stands in the way.
[[nodiscard]] RepairResult repairSchedule(const DataSchedule& schedule,
                                          const WindowedRefs& refs,
                                          const CostModel& model,
                                          const RepairOptions& options = {});

/// Cost of executing windows [fromWindow, numWindows) of a schedule under
/// `model`: fault-aware serve cost of every cell plus migration between
/// consecutive centers, including the boundary migration from window
/// fromWindow - 1. Migrations from a dead source or with no alive route
/// are charged 0 (the out-of-band recovery rule — see RepairResult);
/// `recoveredOut`, when non-null, receives their count. This makes the
/// numbers of a repaired schedule, a from-scratch re-schedule and the
/// original schedule directly comparable over the same suffix.
[[nodiscard]] Cost repairSuffixCost(const DataSchedule& schedule,
                                    const WindowedRefs& refs,
                                    const CostModel& model,
                                    WindowId fromWindow,
                                    std::int64_t* recoveredOut = nullptr);

}  // namespace pimsched

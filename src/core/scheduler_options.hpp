#pragma once

#include <cstdint>

namespace pimsched {

/// Order in which data are considered when competing for capacity slots
/// (the paper's Algorithm 1 assigns "data i" in an unspecified order; id
/// order is the natural reading, heaviest-first is a common refinement).
enum class DataOrder { kById, kByWeightDesc };

/// Options shared by SCDS / LOMCDS / GOMCDS.
struct SchedulerOptions {
  /// Per-processor memory capacity (data slots) enforced in every window;
  /// negative means unlimited.
  std::int64_t capacity = -1;

  DataOrder order = DataOrder::kById;

  /// Deduplicate per-datum subproblems: data with byte-identical windowed
  /// reference strings share serving-cost tables (and, when the forbidden
  /// set is static, the solved path). Schedules are bit-identical either
  /// way; this is purely a speed knob for regular kernels.
  bool dedup = true;

  /// Allow the incremental (warm-start) GOMCDS path to reuse retained
  /// solver state across consecutive solves of an evolving trace, re-
  /// relaxing only from the first changed window forward. Schedules are
  /// bit-identical either way; this is purely a speed knob for streaming
  /// callers holding an IncrementalSolver. The PIMSCHED_INCREMENTAL
  /// environment variable (0/1) overrides this at process level.
  bool incremental = true;
};

}  // namespace pimsched

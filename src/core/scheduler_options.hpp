#pragma once

#include <cstdint>

namespace pimsched {

/// Order in which data are considered when competing for capacity slots
/// (the paper's Algorithm 1 assigns "data i" in an unspecified order; id
/// order is the natural reading, heaviest-first is a common refinement).
enum class DataOrder { kById, kByWeightDesc };

/// Options shared by SCDS / LOMCDS / GOMCDS.
struct SchedulerOptions {
  /// Per-processor memory capacity (data slots) enforced in every window;
  /// negative means unlimited.
  std::int64_t capacity = -1;

  DataOrder order = DataOrder::kById;

  /// Deduplicate per-datum subproblems: data with byte-identical windowed
  /// reference strings share serving-cost tables (and, when the forbidden
  /// set is static, the solved path). Schedules are bit-identical either
  /// way; this is purely a speed knob for regular kernels.
  bool dedup = true;
};

}  // namespace pimsched

#include "core/gomcds.hpp"

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/data_order.hpp"
#include "cost/center_costs.hpp"
#include "graph/layered_dag.hpp"
#include "obs/obs.hpp"
#include "pim/memory.hpp"

namespace pimsched {

DataSchedule scheduleGomcds(const WindowedRefs& refs, const CostModel& model,
                            const SchedulerOptions& options,
                            GomcdsEngine engine) {
  PIMSCHED_SCOPED_TIMER("sched.gomcds");
  DataSchedule schedule(refs.numData(), refs.numWindows());
  const Grid& grid = model.grid();
  const int W = refs.numWindows();
  const Cost beta = model.params().hopCost * model.params().moveVolume;

  std::vector<OccupancyMap> occupancy(
      static_cast<std::size_t>(W), OccupancyMap(grid, options.capacity));

  for (const DataId d : dataVisitOrder(refs, options.order)) {
    // Serving cost of every (window, processor) node of the cost-graph.
    std::vector<std::vector<Cost>> serve(static_cast<std::size_t>(W));
    for (WindowId w = 0; w < W; ++w) {
      serve[static_cast<std::size_t>(w)] =
          centerCosts(model, refs.refs(d, w));
    }
    const auto nodeCost = [&](int w, int p) -> Cost {
      if (!occupancy[static_cast<std::size_t>(w)].hasRoom(
              static_cast<ProcId>(p))) {
        return kInfiniteCost;
      }
      return serve[static_cast<std::size_t>(w)][static_cast<std::size_t>(p)];
    };

    LayeredPath path;
    if (engine == GomcdsEngine::kChamfer) {
      path = LayeredDagSolver::solveManhattan(grid, W, nodeCost, beta);
    } else {
      const auto trans = [&](int q, int p) -> Cost {
        return beta * grid.manhattan(static_cast<ProcId>(q),
                                     static_cast<ProcId>(p));
      };
      path = LayeredDagSolver::solve(W, grid.size(), nodeCost, trans);
    }
    if (!path.feasible()) {
      throw std::runtime_error(
          "scheduleGomcds: capacity infeasible (no placement path)");
    }
    for (WindowId w = 0; w < W; ++w) {
      const auto p = static_cast<ProcId>(path.nodes[static_cast<std::size_t>(w)]);
      if (!occupancy[static_cast<std::size_t>(w)].tryPlace(p)) {
        // nodeCost returned kInfiniteCost for full processors, so a path
        // through one means the solver and the occupancy maps disagree —
        // fail loudly instead of corrupting the capacity accounting.
        throw std::logic_error(
            "scheduleGomcds: solver placed datum " + std::to_string(d) +
            " on full processor " + std::to_string(p) + " in window " +
            std::to_string(w) + " (used " +
            std::to_string(occupancy[static_cast<std::size_t>(w)].used(p)) +
            "/" +
            std::to_string(occupancy[static_cast<std::size_t>(w)].capacity()) +
            ")");
      }
      schedule.setCenter(d, w, p);
    }
    PIMSCHED_COUNTER_ADD("sched.gomcds.data", 1);
  }
  return schedule;
}

DataSchedule scheduleGomcdsParallel(const WindowedRefs& refs,
                                    const CostModel& model,
                                    unsigned threads) {
  PIMSCHED_SCOPED_TIMER("sched.gomcds_parallel");
  const Grid& grid = model.grid();
  const int W = refs.numWindows();
  const Cost beta = model.params().hopCost * model.params().moveVolume;
  DataSchedule schedule(refs.numData(), W);

  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min<unsigned>(
      threads, static_cast<unsigned>(std::max<DataId>(refs.numData(), 1)));

  // Atomic work-stealing index: data are independent without capacity, so
  // workers write disjoint rows of the schedule.
  std::atomic<DataId> next{0};
  const auto worker = [&] {
    std::vector<std::vector<Cost>> serve(static_cast<std::size_t>(W));
    // Per-thread metric buffer: one atomic merge into the global registry
    // when the worker drains, instead of contending per datum.
    std::int64_t dataScheduled = 0;
    while (true) {
      const DataId d = next.fetch_add(1, std::memory_order_relaxed);
      if (d >= refs.numData()) break;
      for (WindowId w = 0; w < W; ++w) {
        serve[static_cast<std::size_t>(w)] =
            centerCosts(model, refs.refs(d, w));
      }
      const auto nodeCost = [&serve](int w, int p) -> Cost {
        return serve[static_cast<std::size_t>(w)]
                    [static_cast<std::size_t>(p)];
      };
      const LayeredPath path =
          LayeredDagSolver::solveManhattan(grid, W, nodeCost, beta);
      for (WindowId w = 0; w < W; ++w) {
        schedule.setCenter(
            d, w,
            static_cast<ProcId>(path.nodes[static_cast<std::size_t>(w)]));
      }
      ++dataScheduled;
    }
    PIMSCHED_COUNTER_ADD("sched.gomcds.data", dataScheduled);
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return schedule;
}

}  // namespace pimsched

#include "core/gomcds.hpp"

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/data_order.hpp"
#include "cost/center_costs.hpp"
#include "cost/cost_cache.hpp"
#include "fault/fault_map.hpp"
#include "graph/layered_dag.hpp"
#include "obs/obs.hpp"
#include "pim/memory.hpp"
#include "util/thread_pool.hpp"

namespace pimsched {

namespace {

[[noreturn]] void throwInfeasible(const CostModel& model) {
  // On a faulted mesh an infeasible cost-graph usually means the faults
  // severed every placement path (dead mesh, partition), which callers
  // handle differently from running out of slots.
  if (const FaultMap* faults = model.faults()) {
    if (faults->aliveProcCount() == 0 || model.distances().partitioned()) {
      throw UnreachableError(
          "scheduleGomcds: faulted mesh cannot host data (" +
          faults->summary() + ")");
    }
  }
  throw std::runtime_error(
      "scheduleGomcds: capacity infeasible (no placement path)");
}

[[noreturn]] void throwSlotDisagreement(DataId d, ProcId p, WindowId w,
                                        const OccupancyMap& occ) {
  // nodeCost returned kInfiniteCost for full processors, so a path through
  // one means the solver and the occupancy maps disagree — fail loudly
  // instead of corrupting the capacity accounting.
  throw std::logic_error(
      "scheduleGomcds: solver placed datum " + std::to_string(d) +
      " on full processor " + std::to_string(p) + " in window " +
      std::to_string(w) + " (used " + std::to_string(occ.used(p)) + "/" +
      std::to_string(occ.capacity()) + ")");
}

}  // namespace

DataSchedule scheduleGomcds(const WindowedRefs& refs, const CostModel& model,
                            const SchedulerOptions& options,
                            GomcdsEngine engine) {
  PIMSCHED_SCOPED_TIMER("sched.gomcds");
  DataSchedule schedule(refs.numData(), refs.numWindows());
  const Grid& grid = model.grid();
  const int W = refs.numWindows();
  const Cost beta = model.params().hopCost * model.params().moveVolume;

  std::vector<OccupancyMap> occupancy(
      static_cast<std::size_t>(W), OccupancyMap(grid, options.capacity));
  if (const FaultMap* faults = model.faults()) {
    for (OccupancyMap& occ : occupancy) applyFaultCapacity(occ, *faults);
  }

  // Serving-cost tables depend only on the reference string, so data with
  // identical strings (matmul, LU) share one memoized table.
  CenterCostCache cache(model);
  std::vector<std::vector<Cost>> serve(static_cast<std::size_t>(W));

  for (const DataId d : dataVisitOrder(refs, options.order)) {
    // Serving cost of every (window, processor) node of the cost-graph.
    for (WindowId w = 0; w < W; ++w) {
      cache.costsInto(refs.refs(d, w), serve[static_cast<std::size_t>(w)]);
    }
    const auto nodeCost = [&](int w, int p) -> Cost {
      if (!occupancy[static_cast<std::size_t>(w)].hasRoom(
              static_cast<ProcId>(p))) {
        return kInfiniteCost;
      }
      return serve[static_cast<std::size_t>(w)][static_cast<std::size_t>(p)];
    };

    LayeredPath path;
    if (engine == GomcdsEngine::kChamfer && !model.faultAware()) {
      path = LayeredDagSolver::solveManhattan(grid, W, nodeCost, beta);
    } else {
      // The chamfer min-plus transform assumes the metric is Manhattan,
      // which fault-aware distances are not; price transitions through the
      // model instead (moveCost == beta * distance, saturating).
      const auto trans = [&](int q, int p) -> Cost {
        return model.moveCost(static_cast<ProcId>(q), static_cast<ProcId>(p));
      };
      path = LayeredDagSolver::solve(W, grid.size(), nodeCost, trans);
    }
    if (!path.feasible()) throwInfeasible(model);
    for (WindowId w = 0; w < W; ++w) {
      const auto p = static_cast<ProcId>(path.nodes[static_cast<std::size_t>(w)]);
      if (!occupancy[static_cast<std::size_t>(w)].tryPlace(p)) {
        throwSlotDisagreement(d, p, w, occupancy[static_cast<std::size_t>(w)]);
      }
      schedule.setCenter(d, w, p);
    }
    PIMSCHED_COUNTER_ADD("sched.gomcds.data", 1);
  }
  return schedule;
}

DataSchedule scheduleGomcdsParallel(const WindowedRefs& refs,
                                    const CostModel& model,
                                    const SchedulerOptions& options,
                                    unsigned threads) {
  PIMSCHED_SCOPED_TIMER("sched.gomcds_parallel");
  const Grid& grid = model.grid();
  const int W = refs.numWindows();
  const Cost beta = model.params().hopCost * model.params().moveVolume;
  DataSchedule schedule(refs.numData(), W);

  const std::vector<DataId> order = dataVisitOrder(refs, options.order);
  const std::size_t n = order.size();

  std::vector<OccupancyMap> occupancy(
      static_cast<std::size_t>(W), OccupancyMap(grid, options.capacity));
  if (const FaultMap* faults = model.faults()) {
    for (OccupancyMap& occ : occupancy) applyFaultCapacity(occ, *faults);
  }
  CenterCostCache cache(model);

  // plans[i] is the layered-DAG solution for order[i]; planned[i] marks it
  // current (solved against a snapshot no newer placements invalidated).
  std::vector<LayeredPath> plans(n);
  std::vector<char> planned(n, 0);
  std::vector<std::size_t> toSolve;
  toSolve.reserve(n);

  const auto pathFits = [&](const LayeredPath& path) {
    for (WindowId w = 0; w < W; ++w) {
      if (!occupancy[static_cast<std::size_t>(w)].hasRoom(
              static_cast<ProcId>(path.nodes[static_cast<std::size_t>(w)]))) {
        return false;
      }
    }
    return true;
  };

  std::size_t committed = 0;  // order[0..committed) are placed
  while (committed < n) {
    PIMSCHED_COUNTER_ADD("sched.gomcds.rounds", 1);
    // Plan phase: solve every pending datum without a current plan against
    // the read-only occupancy snapshot. Pure per-datum work — safe to fan
    // out; the shared cache serves the cost tables.
    toSolve.clear();
    for (std::size_t i = committed; i < n; ++i) {
      if (!planned[i]) toSolve.push_back(i);
    }
    parallelFor(
        static_cast<std::int64_t>(toSolve.size()), threads,
        [&](std::int64_t k) {
          const std::size_t i = toSolve[static_cast<std::size_t>(k)];
          const DataId d = order[i];
          thread_local std::vector<std::vector<Cost>> serve;
          serve.resize(static_cast<std::size_t>(W));
          for (WindowId w = 0; w < W; ++w) {
            cache.costsInto(refs.refs(d, w),
                            serve[static_cast<std::size_t>(w)]);
          }
          const auto nodeCost = [&](int w, int p) -> Cost {
            if (!occupancy[static_cast<std::size_t>(w)].hasRoom(
                    static_cast<ProcId>(p))) {
              return kInfiniteCost;
            }
            return serve[static_cast<std::size_t>(w)]
                        [static_cast<std::size_t>(p)];
          };
          if (model.faultAware()) {
            const auto trans = [&](int q, int p) -> Cost {
              return model.moveCost(static_cast<ProcId>(q),
                                    static_cast<ProcId>(p));
            };
            plans[i] = LayeredDagSolver::solve(W, grid.size(), nodeCost, trans);
          } else {
            plans[i] =
                LayeredDagSolver::solveManhattan(grid, W, nodeCost, beta);
          }
          planned[i] = 1;
        });

    // Commit phase: sequential, in visit order — the deterministic
    // tie-break that makes the result thread-count independent and equal
    // to the sequential engine. Stops at the first datum whose planned
    // path lost a slot to a commit it did not see.
    std::size_t i = committed;
    for (; i < n; ++i) {
      // A plan infeasible against any snapshot stays infeasible under the
      // only-growing occupancy, exactly when the sequential engine throws.
      if (!plans[i].feasible()) throwInfeasible(model);
      if (!pathFits(plans[i])) break;
      const DataId d = order[i];
      for (WindowId w = 0; w < W; ++w) {
        const auto p =
            static_cast<ProcId>(plans[i].nodes[static_cast<std::size_t>(w)]);
        if (!occupancy[static_cast<std::size_t>(w)].tryPlace(p)) {
          throwSlotDisagreement(d, p, w,
                                occupancy[static_cast<std::size_t>(w)]);
        }
        schedule.setCenter(d, w, p);
      }
    }
    if (i < n) {
      // Conflict: keep still-fitting plans (they remain optimal under the
      // grown forbidden set), re-solve only the invalidated ones.
      PIMSCHED_COUNTER_ADD("sched.gomcds.conflicts", 1);
      for (std::size_t j = i; j < n; ++j) {
        // Infeasible plans stay "planned": occupancy only grows, so they
        // stay infeasible and throw when the commit pass reaches them.
        if (planned[j] && plans[j].feasible() && !pathFits(plans[j])) {
          planned[j] = 0;
        }
      }
    }
    committed = i;
  }
  PIMSCHED_COUNTER_ADD("sched.gomcds.data",
                       static_cast<std::int64_t>(refs.numData()));
  return schedule;
}

DataSchedule scheduleGomcdsParallel(const WindowedRefs& refs,
                                    const CostModel& model,
                                    unsigned threads) {
  return scheduleGomcdsParallel(refs, model, SchedulerOptions{}, threads);
}

}  // namespace pimsched

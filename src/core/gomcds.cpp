#include "core/gomcds.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/data_order.hpp"
#include "core/gomcds_detail.hpp"
#include "cost/cost_cache.hpp"
#include "fault/fault_map.hpp"
#include "graph/layered_dag.hpp"
#include "graph/simd/simd_kernels.hpp"
#include "obs/obs.hpp"
#include "pim/memory.hpp"
#include "util/aligned.hpp"
#include "util/thread_pool.hpp"

namespace pimsched {

namespace detail {

void throwGomcdsInfeasible(const CostModel& model) {
  // On a faulted mesh an infeasible cost-graph usually means the faults
  // severed every placement path (dead mesh, partition), which callers
  // handle differently from running out of slots.
  if (const FaultMap* faults = model.faults()) {
    if (faults->aliveProcCount() == 0 || model.distances().partitioned()) {
      throw UnreachableError(
          "scheduleGomcds: faulted mesh cannot host data (" +
          faults->summary() + ")");
    }
  }
  throw std::runtime_error(
      "scheduleGomcds: capacity infeasible (no placement path)");
}

void throwGomcdsSlotDisagreement(DataId d, ProcId p, WindowId w,
                                 const OccupancyMap& occ) {
  // nodeCost returned kInfiniteCost for full processors, so a path through
  // one means the solver and the occupancy maps disagree — fail loudly
  // instead of corrupting the capacity accounting.
  throw std::logic_error(
      "scheduleGomcds: solver placed datum " + std::to_string(d) +
      " on full processor " + std::to_string(p) + " in window " +
      std::to_string(w) + " (used " + std::to_string(occ.used(p)) + "/" +
      std::to_string(occ.capacity()) + ")");
}

bool staticForbiddenSet(const CostModel& model,
                        const SchedulerOptions& options) {
  if (options.capacity >= 0) return false;
  const FaultMap* faults = model.faults();
  if (!faults) return true;
  const int m = model.grid().size();
  for (ProcId p = 0; p < m; ++p) {
    if (faults->procAlive(p) && faults->capacityLimit(p) >= 0) return false;
  }
  return true;
}

DedupClasses computeDedupClasses(const WindowedRefs& refs, bool enabled) {
  const DataId n = refs.numData();
  if (!enabled) {
    DedupClasses out;
    out.classOf.resize(static_cast<std::size_t>(n));
    out.rep.resize(static_cast<std::size_t>(n));
    out.size.assign(static_cast<std::size_t>(n), 1);
    for (DataId d = 0; d < n; ++d) {
      out.classOf[static_cast<std::size_t>(d)] = d;
      out.rep[static_cast<std::size_t>(d)] = d;
    }
    return out;
  }
  // Signature buckets pre-screen; full row comparison against the class
  // representative confirms, so hash collisions cannot merge classes.
  DedupClasses out = buildEquivalenceClasses(
      n, [&](DataId d) { return refs.refsSignature(d); },
      [&](DataId rep, DataId d) { return refs.sameRefs(rep, d); });
  PIMSCHED_COUNTER_ADD("gomcds.dedup.classes",
                       static_cast<std::int64_t>(out.rep.size()));
  PIMSCHED_COUNTER_ADD("gomcds.dedup.data",
                       static_cast<std::int64_t>(n) -
                           static_cast<std::int64_t>(out.rep.size()));
  return out;
}

void buildTransTable(const CostModel& model, std::vector<Cost>& trans) {
  const int m = model.grid().size();
  trans.resize(static_cast<std::size_t>(m) * static_cast<std::size_t>(m));
  for (ProcId q = 0; q < m; ++q) {
    Cost* row = trans.data() +
                static_cast<std::size_t>(q) * static_cast<std::size_t>(m);
    for (ProcId p = 0; p < m; ++p) {
      row[static_cast<std::size_t>(p)] = model.moveCost(q, p);
    }
  }
  PIMSCHED_COUNTER_ADD("gomcds.trans_table.builds", 1);
}

}  // namespace detail

namespace {

using detail::DedupClasses;
using detail::GomcdsScratch;
using detail::buildTransTable;
using detail::computeDedupClasses;
using detail::staticForbiddenSet;

[[noreturn]] void throwInfeasible(const CostModel& model) {
  detail::throwGomcdsInfeasible(model);
}

[[noreturn]] void throwSlotDisagreement(DataId d, ProcId p, WindowId w,
                                        const OccupancyMap& occ) {
  detail::throwGomcdsSlotDisagreement(d, p, w, occ);
}

/// Flat W x P serving-cost tables per equivalence class. Tables of shared
/// classes (>= 2 members) are built once and retained; singleton classes
/// are materialized into caller scratch so an all-distinct trace never
/// retains per-datum tables.
class ClassServeTables {
 public:
  ClassServeTables(const WindowedRefs& refs, const CostModel& model,
                   const DedupClasses& classes)
      : refs_(&refs),
        classes_(&classes),
        cache_(model),
        tables_(classes.rep.size()) {}

  /// Serving-cost table of class `cls`. Shared classes build lazily into
  /// their retained slot; singletons build into `scratch`.
  std::span<const Cost> table(int cls, GomcdsScratch& scratch) {
    if (classes_->size[static_cast<std::size_t>(cls)] > 1) {
      std::vector<Cost>& t = tables_[static_cast<std::size_t>(cls)];
      if (t.empty()) buildInto(cls, t);
      return t;
    }
    buildInto(cls, scratch.serve);
    return scratch.serve;
  }

  /// Builds every shared-class table upfront (the parallel planner reads
  /// them concurrently, so they must not build lazily there).
  void buildShared(unsigned threads) {
    std::vector<int> shared;
    for (std::size_t c = 0; c < tables_.size(); ++c) {
      if (classes_->size[c] > 1) shared.push_back(static_cast<int>(c));
    }
    parallelFor(static_cast<std::int64_t>(shared.size()), threads,
                [&](std::int64_t k) {
                  const int cls = shared[static_cast<std::size_t>(k)];
                  buildInto(cls, tables_[static_cast<std::size_t>(cls)]);
                });
  }

 private:
  /// Fills the flat W x P table, each window row written in place by the
  /// cost cache (span overload) — no per-row staging copy.
  template <typename Buffer>
  void buildInto(int cls, Buffer& out) {
    const DataId d = classes_->rep[static_cast<std::size_t>(cls)];
    const int W = refs_->numWindows();
    const std::size_t p = static_cast<std::size_t>(refs_->numProcs());
    out.resize(static_cast<std::size_t>(W) * p);
    for (WindowId w = 0; w < W; ++w) {
      cache_.costsInto(
          refs_->refs(d, w),
          std::span<Cost>(out.data() + static_cast<std::size_t>(w) * p, p));
    }
  }

  const WindowedRefs* refs_;
  const DedupClasses* classes_;
  CenterCostCache cache_;
  std::vector<std::vector<Cost>> tables_;
};

/// Applies the forbidden mask to a class serve table: out = full ? inf :
/// serve, elementwise over the flat W x P layout, through the dispatched
/// SIMD mask kernel.
void maskServe(std::span<const Cost> serve, const std::vector<char>& full,
               CostBuffer& out) {
  out.resize(serve.size());
  std::copy(serve.begin(), serve.end(), out.begin());
  simd::active().maskInf(reinterpret_cast<const unsigned char*>(full.data()),
                         out.data(), out.size());
}

}  // namespace

DataSchedule scheduleGomcds(const WindowedRefs& refs, const CostModel& model,
                            const SchedulerOptions& options,
                            GomcdsEngine engine) {
  PIMSCHED_SCOPED_TIMER("sched.gomcds");
  DataSchedule schedule(refs.numData(), refs.numWindows());
  const Grid& grid = model.grid();
  const int W = refs.numWindows();
  const int P = grid.size();
  const Cost beta = model.params().hopCost * model.params().moveVolume;

  std::vector<OccupancyMap> occupancy(
      static_cast<std::size_t>(W), OccupancyMap(grid, options.capacity));
  if (const FaultMap* faults = model.faults()) {
    for (OccupancyMap& occ : occupancy) applyFaultCapacity(occ, *faults);
  }

  const bool useChamfer =
      engine == GomcdsEngine::kChamfer && !model.faultAware();
  std::vector<Cost> trans;
  if (!useChamfer) buildTransTable(model, trans);

  const DedupClasses classes = computeDedupClasses(refs, options.dedup);
  ClassServeTables tables(refs, model, classes);
  const bool staticMask = staticForbiddenSet(model, options);

  // Under a static forbidden set every member of a class takes the same
  // path; solve once per class on first use. Under capacity pressure the
  // mask grows between data, so each datum gets a masked solve (reusing
  // the class serve table); full[] mirrors !occupancy[w].hasRoom(p).
  std::vector<LayeredPath> classPaths(
      staticMask && options.dedup ? classes.rep.size() : 0);
  std::vector<char> classSolved(classPaths.size(), 0);
  std::vector<char> full;
  if (!staticMask) {
    full.resize(static_cast<std::size_t>(W) * static_cast<std::size_t>(P));
    for (WindowId w = 0; w < W; ++w) {
      for (ProcId p = 0; p < P; ++p) {
        full[static_cast<std::size_t>(w) * static_cast<std::size_t>(P) +
             static_cast<std::size_t>(p)] =
            !occupancy[static_cast<std::size_t>(w)].hasRoom(p);
      }
    }
  }

  GomcdsScratch& scratch = workerScratch<GomcdsScratch>();
  const auto solveInto = [&](std::span<const Cost> nodeCosts,
                             LayeredPath& out) {
    if (useChamfer) {
      LayeredDagSolver::solveManhattanFlatInto(grid, W, nodeCosts, beta,
                                               scratch.dag, out);
    } else {
      LayeredDagSolver::solveFlatInto(W, P, nodeCosts, trans, scratch.dag,
                                      out);
    }
    PIMSCHED_COUNTER_ADD("gomcds.flat.solves", 1);
  };

  for (const DataId d : dataVisitOrder(refs, options.order)) {
    const int cls = classes.classOf[static_cast<std::size_t>(d)];
    const LayeredPath* path = nullptr;
    if (staticMask) {
      const bool shared = !classPaths.empty() &&
                          classes.size[static_cast<std::size_t>(cls)] > 1;
      if (shared) {
        if (!classSolved[static_cast<std::size_t>(cls)]) {
          solveInto(tables.table(cls, scratch),
                    classPaths[static_cast<std::size_t>(cls)]);
          classSolved[static_cast<std::size_t>(cls)] = 1;
        }
        path = &classPaths[static_cast<std::size_t>(cls)];
      } else {
        solveInto(tables.table(cls, scratch), scratch.path);
        path = &scratch.path;
      }
    } else {
      const std::span<const Cost> serve = tables.table(cls, scratch);
      if (serve.data() == scratch.serve.data()) {
        // Singleton table already lives in scratch — mask it in place.
        simd::active().maskInf(
            reinterpret_cast<const unsigned char*>(full.data()),
            scratch.serve.data(), full.size());
      } else {
        maskServe(serve, full, scratch.serve);
      }
      solveInto(scratch.serve, scratch.path);
      path = &scratch.path;
    }

    if (!path->feasible()) throwInfeasible(model);
    for (WindowId w = 0; w < W; ++w) {
      const auto p =
          static_cast<ProcId>(path->nodes[static_cast<std::size_t>(w)]);
      if (!occupancy[static_cast<std::size_t>(w)].tryPlace(p)) {
        throwSlotDisagreement(d, p, w, occupancy[static_cast<std::size_t>(w)]);
      }
      if (!staticMask) {
        full[static_cast<std::size_t>(w) * static_cast<std::size_t>(P) +
             static_cast<std::size_t>(p)] =
            !occupancy[static_cast<std::size_t>(w)].hasRoom(p);
      }
      schedule.setCenter(d, w, p);
    }
    PIMSCHED_COUNTER_ADD("sched.gomcds.data", 1);
  }
  return schedule;
}

DataSchedule scheduleGomcdsParallel(const WindowedRefs& refs,
                                    const CostModel& model,
                                    const SchedulerOptions& options,
                                    unsigned threads) {
  PIMSCHED_SCOPED_TIMER("sched.gomcds_parallel");
  const Grid& grid = model.grid();
  const int W = refs.numWindows();
  const int P = grid.size();
  const Cost beta = model.params().hopCost * model.params().moveVolume;
  DataSchedule schedule(refs.numData(), W);

  const std::vector<DataId> order = dataVisitOrder(refs, options.order);
  const std::size_t n = order.size();

  std::vector<OccupancyMap> occupancy(
      static_cast<std::size_t>(W), OccupancyMap(grid, options.capacity));
  if (const FaultMap* faults = model.faults()) {
    for (OccupancyMap& occ : occupancy) applyFaultCapacity(occ, *faults);
  }

  const bool useChamfer = !model.faultAware();
  std::vector<Cost> trans;
  if (!useChamfer) buildTransTable(model, trans);

  const DedupClasses classes = computeDedupClasses(refs, options.dedup);
  ClassServeTables tables(refs, model, classes);
  tables.buildShared(threads);
  const bool staticMask = staticForbiddenSet(model, options);

  const auto solveInto = [&](std::span<const Cost> nodeCosts,
                             GomcdsScratch& scratch, LayeredPath& out) {
    if (useChamfer) {
      LayeredDagSolver::solveManhattanFlatInto(grid, W, nodeCosts, beta,
                                               scratch.dag, out);
    } else {
      LayeredDagSolver::solveFlatInto(W, P, nodeCosts, trans, scratch.dag,
                                      out);
    }
    // gomcds.flat.solves is accounted in bulk per fan-out below — a
    // per-solve add here would have every worker hammering one counter
    // cache line.
  };

  if (staticMask) {
    // The forbidden set never changes, so plans cannot conflict: one solve
    // per equivalence class, fanned out over the pool, then a single
    // sequential commit pass in visit order.
    PIMSCHED_COUNTER_ADD("sched.gomcds.rounds", 1);
    std::vector<LayeredPath> classPaths(classes.rep.size());
    parallelFor(static_cast<std::int64_t>(classes.rep.size()), threads,
                [&](std::int64_t k) {
                  GomcdsScratch& scratch = workerScratch<GomcdsScratch>();
                  solveInto(tables.table(static_cast<int>(k), scratch),
                            scratch, classPaths[static_cast<std::size_t>(k)]);
                });
    PIMSCHED_COUNTER_ADD("gomcds.flat.solves",
                         static_cast<std::int64_t>(classes.rep.size()));
    for (std::size_t i = 0; i < n; ++i) {
      const DataId d = order[i];
      const LayeredPath& path =
          classPaths[static_cast<std::size_t>(
              classes.classOf[static_cast<std::size_t>(d)])];
      if (!path.feasible()) throwInfeasible(model);
      for (WindowId w = 0; w < W; ++w) {
        const auto p =
            static_cast<ProcId>(path.nodes[static_cast<std::size_t>(w)]);
        if (!occupancy[static_cast<std::size_t>(w)].tryPlace(p)) {
          throwSlotDisagreement(d, p, w,
                                occupancy[static_cast<std::size_t>(w)]);
        }
        schedule.setCenter(d, w, p);
      }
    }
    PIMSCHED_COUNTER_ADD("sched.gomcds.data",
                         static_cast<std::int64_t>(refs.numData()));
    return schedule;
  }

  // Capacity-constrained plan/commit rounds. full[] snapshots the
  // forbidden set for the plan phase; the commit pass keeps it in sync.
  std::vector<char> full(static_cast<std::size_t>(W) *
                         static_cast<std::size_t>(P));
  for (WindowId w = 0; w < W; ++w) {
    for (ProcId p = 0; p < P; ++p) {
      full[static_cast<std::size_t>(w) * static_cast<std::size_t>(P) +
           static_cast<std::size_t>(p)] =
          !occupancy[static_cast<std::size_t>(w)].hasRoom(p);
    }
  }

  // plans[i] is the layered-DAG solution for order[i]; planned[i] marks it
  // current (solved against a snapshot no newer placements invalidated).
  std::vector<LayeredPath> plans(n);
  std::vector<char> planned(n, 0);
  std::vector<std::size_t> toSolve;
  toSolve.reserve(n);

  const auto pathFits = [&](const LayeredPath& path) {
    for (WindowId w = 0; w < W; ++w) {
      if (!occupancy[static_cast<std::size_t>(w)].hasRoom(
              static_cast<ProcId>(path.nodes[static_cast<std::size_t>(w)]))) {
        return false;
      }
    }
    return true;
  };

  std::size_t committed = 0;  // order[0..committed) are placed
  while (committed < n) {
    PIMSCHED_COUNTER_ADD("sched.gomcds.rounds", 1);
    // Plan phase: solve every pending datum without a current plan against
    // the read-only forbidden-set snapshot. Pure per-datum work — safe to
    // fan out; shared-class serve tables were prebuilt above.
    toSolve.clear();
    for (std::size_t i = committed; i < n; ++i) {
      if (!planned[i]) toSolve.push_back(i);
    }
    parallelFor(
        static_cast<std::int64_t>(toSolve.size()), threads,
        [&](std::int64_t k) {
          const std::size_t i = toSolve[static_cast<std::size_t>(k)];
          const DataId d = order[i];
          const int cls = classes.classOf[static_cast<std::size_t>(d)];
          GomcdsScratch& scratch = workerScratch<GomcdsScratch>();
          const std::span<const Cost> serve = tables.table(cls, scratch);
          if (serve.data() == scratch.serve.data()) {
            simd::active().maskInf(
                reinterpret_cast<const unsigned char*>(full.data()),
                scratch.serve.data(), full.size());
          } else {
            maskServe(serve, full, scratch.serve);
          }
          solveInto(scratch.serve, scratch, plans[i]);
        });
    // Marking plans current happens after the barrier: workers writing
    // adjacent planned[] bytes from different cores would false-share the
    // line for no benefit — every datum in toSolve was solved regardless.
    for (const std::size_t i : toSolve) planned[i] = 1;
    PIMSCHED_COUNTER_ADD("gomcds.flat.solves",
                         static_cast<std::int64_t>(toSolve.size()));

    // Commit phase: sequential, in visit order — the deterministic
    // tie-break that makes the result thread-count independent and equal
    // to the sequential engine. Stops at the first datum whose planned
    // path lost a slot to a commit it did not see.
    std::size_t i = committed;
    for (; i < n; ++i) {
      // A plan infeasible against any snapshot stays infeasible under the
      // only-growing occupancy, exactly when the sequential engine throws.
      if (!plans[i].feasible()) throwInfeasible(model);
      if (!pathFits(plans[i])) break;
      const DataId d = order[i];
      for (WindowId w = 0; w < W; ++w) {
        const auto p =
            static_cast<ProcId>(plans[i].nodes[static_cast<std::size_t>(w)]);
        if (!occupancy[static_cast<std::size_t>(w)].tryPlace(p)) {
          throwSlotDisagreement(d, p, w,
                                occupancy[static_cast<std::size_t>(w)]);
        }
        full[static_cast<std::size_t>(w) * static_cast<std::size_t>(P) +
             static_cast<std::size_t>(p)] =
            !occupancy[static_cast<std::size_t>(w)].hasRoom(p);
        schedule.setCenter(d, w, p);
      }
    }
    if (i < n) {
      // Conflict: keep still-fitting plans (they remain optimal under the
      // grown forbidden set), re-solve only the invalidated ones.
      PIMSCHED_COUNTER_ADD("sched.gomcds.conflicts", 1);
      for (std::size_t j = i; j < n; ++j) {
        // Infeasible plans stay "planned": occupancy only grows, so they
        // stay infeasible and throw when the commit pass reaches them.
        if (planned[j] && plans[j].feasible() && !pathFits(plans[j])) {
          planned[j] = 0;
        }
      }
    }
    committed = i;
  }
  PIMSCHED_COUNTER_ADD("sched.gomcds.data",
                       static_cast<std::int64_t>(refs.numData()));
  return schedule;
}

DataSchedule scheduleGomcdsParallel(const WindowedRefs& refs,
                                    const CostModel& model,
                                    unsigned threads) {
  return scheduleGomcdsParallel(refs, model, SchedulerOptions{}, threads);
}

}  // namespace pimsched

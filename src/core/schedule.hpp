#pragma once

#include <vector>

#include "pim/grid.hpp"
#include "pim/types.hpp"

namespace pimsched {

/// A complete data schedule: for every datum and every execution window, the
/// processor (*center*) that stores the datum during that window. Static
/// placements (baselines, SCDS) simply use the same center in every window.
class DataSchedule {
 public:
  DataSchedule(DataId numData, int numWindows);

  [[nodiscard]] DataId numData() const { return numData_; }
  [[nodiscard]] int numWindows() const { return numWindows_; }

  [[nodiscard]] ProcId center(DataId d, WindowId w) const {
    return centers_[index(d, w)];
  }
  void setCenter(DataId d, WindowId w, ProcId p) { centers_[index(d, w)] = p; }

  /// Assigns the same center in every window (a static placement).
  void setStatic(DataId d, ProcId p);

  /// True iff every (datum, window) cell has a valid center.
  [[nodiscard]] bool complete() const;

  /// True iff no datum ever migrates.
  [[nodiscard]] bool isStatic() const;

  /// Maximum number of data resident on any single processor in any window.
  [[nodiscard]] std::int64_t maxOccupancy(const Grid& grid) const;

  /// True iff maxOccupancy(grid) <= capacity (capacity < 0 = unlimited).
  [[nodiscard]] bool respectsCapacity(const Grid& grid,
                                      std::int64_t capacity) const;

 private:
  [[nodiscard]] std::size_t index(DataId d, WindowId w) const {
    return static_cast<std::size_t>(d) * static_cast<std::size_t>(numWindows_) +
           static_cast<std::size_t>(w);
  }

  DataId numData_;
  int numWindows_;
  std::vector<ProcId> centers_;
};

}  // namespace pimsched

#include "kernels/matmul.hpp"

namespace pimsched {

void emitMatSquare(TraceBuilder& tb, const IterationMap& map, int n) {
  const int a = tb.array("A", n, n);
  const int c = tb.array("C", n, n);
  for (int k = 0; k < n; ++k) {
    const StepId step = tb.beginStep();
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        const ProcId p = map.proc(i, j);
        tb.access(step, p, a, i, k, 1);
        tb.access(step, p, a, k, j, 1);
        tb.access(step, p, c, i, j, 2);
      }
    }
  }
}

}  // namespace pimsched

#pragma once

#include "trace/trace.hpp"

namespace pimsched {

/// Sequential composition: the steps of `second` follow the steps of
/// `first`. Arrays are unified by name (same-name arrays must have the same
/// shape and become the same data); distinct arrays are concatenated. Used
/// for the paper's benchmarks 3 (LU; CODE), 4 (matmul; CODE) and
/// 5 (CODE; reverse(CODE)).
[[nodiscard]] ReferenceTrace concatTraces(const ReferenceTrace& first,
                                          const ReferenceTrace& second);

/// Reverses the execution order of the steps ("the reverse execution order
/// of the CODE"): step s becomes numSteps-1-s. Reference strings per step
/// are preserved.
[[nodiscard]] ReferenceTrace reverseTrace(const ReferenceTrace& trace);

}  // namespace pimsched

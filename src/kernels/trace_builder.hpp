#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace pimsched {

/// Incrementally assembles a ReferenceTrace while a kernel is symbolically
/// executed. Owns the DataSpace (arrays are registered by name and shared
/// between kernels emitting into the same builder) and a running step
/// counter so kernels can be concatenated.
class TraceBuilder {
 public:
  TraceBuilder() = default;

  /// Returns the array index for `name`, creating the array on first use.
  /// Re-using a name with different dimensions is an error.
  int array(const std::string& name, int rows, int cols);

  /// DataId of element (row, col) of array index `a`.
  [[nodiscard]] DataId id(int a, int row, int col) const {
    return space_.id(a, row, col);
  }

  /// Records a reference at absolute step `step`.
  void access(StepId step, ProcId proc, int array, int row, int col,
              Cost weight = 1);

  /// Allocates the next execution step and returns its id.
  StepId beginStep() { return nextStep_++; }

  /// First step id not yet allocated.
  [[nodiscard]] StepId nextStep() const { return nextStep_; }

  [[nodiscard]] const DataSpace& space() const { return space_; }

  /// Finalizes and returns the trace. The builder is consumed.
  [[nodiscard]] ReferenceTrace build() &&;

 private:
  struct Raw {
    StepId step;
    ProcId proc;
    DataId data;
    Cost weight;
  };
  DataSpace space_;
  std::vector<Raw> raw_;
  StepId nextStep_ = 0;
};

}  // namespace pimsched

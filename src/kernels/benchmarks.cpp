#include "kernels/benchmarks.hpp"

#include <stdexcept>

#include "kernels/combinators.hpp"
#include "kernels/irregular_code.hpp"
#include "kernels/lu.hpp"
#include "kernels/matmul.hpp"

namespace pimsched {

std::string toString(PaperBenchmark b) {
  switch (b) {
    case PaperBenchmark::kLu: return "1:lu";
    case PaperBenchmark::kMatSquare: return "2:mat-square";
    case PaperBenchmark::kLuCode: return "3:lu+code";
    case PaperBenchmark::kMatCode: return "4:mat+code";
    case PaperBenchmark::kCodeRev: return "5:code+rev";
  }
  return "unknown";
}

const std::vector<PaperBenchmark>& allPaperBenchmarks() {
  static const std::vector<PaperBenchmark> all = {
      PaperBenchmark::kLu, PaperBenchmark::kMatSquare,
      PaperBenchmark::kLuCode, PaperBenchmark::kMatCode,
      PaperBenchmark::kCodeRev};
  return all;
}

namespace {

ReferenceTrace luTrace(const Grid& grid, int n, PartitionKind part) {
  TraceBuilder tb;
  const IterationMap map(grid, n, n, part);
  emitLu(tb, map, n);
  return std::move(tb).build();
}

ReferenceTrace matTrace(const Grid& grid, int n, PartitionKind part) {
  TraceBuilder tb;
  const IterationMap map(grid, n, n, part);
  emitMatSquare(tb, map, n);
  return std::move(tb).build();
}

ReferenceTrace codeTrace(const Grid& grid, int n, PartitionKind part) {
  TraceBuilder tb;
  const IterationMap map(grid, n, n, part);
  emitIrregularCode(tb, map, n);
  return std::move(tb).build();
}

}  // namespace

ReferenceTrace makePaperBenchmark(PaperBenchmark b, const Grid& grid, int n,
                                  PartitionKind partition) {
  switch (b) {
    case PaperBenchmark::kLu:
      return luTrace(grid, n, partition);
    case PaperBenchmark::kMatSquare:
      return matTrace(grid, n, partition);
    case PaperBenchmark::kLuCode:
      return concatTraces(luTrace(grid, n, partition),
                          codeTrace(grid, n, partition));
    case PaperBenchmark::kMatCode:
      return concatTraces(matTrace(grid, n, partition),
                          codeTrace(grid, n, partition));
    case PaperBenchmark::kCodeRev: {
      const ReferenceTrace code = codeTrace(grid, n, partition);
      return concatTraces(code, reverseTrace(code));
    }
  }
  throw std::invalid_argument("makePaperBenchmark: unknown benchmark");
}

}  // namespace pimsched

#pragma once

#include "kernels/iteration_map.hpp"
#include "kernels/trace_builder.hpp"

namespace pimsched {

/// Symbolically executes the matrix square C = A * A on n x n arrays "A"
/// and "C" (the paper's benchmark 2). The k loop is the step loop (one
/// parallel rank-1 accumulation per step); iteration (i, j) runs on the
/// owner of C[i][j] under `map`, reading A[i][k] and A[k][j] (weight 1
/// each) and accumulating into C[i][j] (weight 2).
void emitMatSquare(TraceBuilder& tb, const IterationMap& map, int n);

}  // namespace pimsched

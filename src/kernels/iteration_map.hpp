#pragma once

#include <string>

#include "pim/grid.hpp"

namespace pimsched {

/// How the (i, j) iteration space of a kernel is partitioned onto the
/// processor grid. The paper assumes the "iteration partition" happened in a
/// prior stage but never specifies it; these are the standard choices.
enum class PartitionKind {
  kRowBlock,   ///< row-major flattened iterations, contiguous chunks per proc
  kColBlock,   ///< column-major flattened, contiguous chunks per proc
  kBlock2D,    ///< 2-D contiguous blocks (default for experiments)
  kCyclic2D,   ///< (i mod gridRows, j mod gridCols)
};

[[nodiscard]] std::string toString(PartitionKind kind);

/// Maps iteration coordinates (i, j) of an iterRows x iterCols iteration
/// space onto processors of a grid.
class IterationMap {
 public:
  IterationMap(const Grid& grid, int iterRows, int iterCols,
               PartitionKind kind);

  [[nodiscard]] ProcId proc(int i, int j) const;

  [[nodiscard]] PartitionKind kind() const { return kind_; }
  [[nodiscard]] int iterRows() const { return iterRows_; }
  [[nodiscard]] int iterCols() const { return iterCols_; }
  [[nodiscard]] const Grid& grid() const { return *grid_; }

 private:
  const Grid* grid_;
  int iterRows_;
  int iterCols_;
  PartitionKind kind_;
  std::int64_t chunk_;  ///< flattened-block chunk size
};

}  // namespace pimsched

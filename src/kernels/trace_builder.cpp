#include "kernels/trace_builder.hpp"

#include <stdexcept>

namespace pimsched {

int TraceBuilder::array(const std::string& name, int rows, int cols) {
  const auto& arrays = space_.arrays();
  for (int a = 0; a < static_cast<int>(arrays.size()); ++a) {
    if (arrays[static_cast<std::size_t>(a)].name == name) {
      const auto& info = arrays[static_cast<std::size_t>(a)];
      if (info.rows != rows || info.cols != cols) {
        throw std::invalid_argument("TraceBuilder::array: '" + name +
                                    "' re-declared with different shape");
      }
      return a;
    }
  }
  return space_.addArray(name, rows, cols);
}

void TraceBuilder::access(StepId step, ProcId proc, int array, int row,
                          int col, Cost weight) {
  if (step < 0 || step >= nextStep_) {
    throw std::invalid_argument(
        "TraceBuilder::access: step not allocated via beginStep()");
  }
  raw_.push_back(Raw{step, proc, space_.id(array, row, col), weight});
}

ReferenceTrace TraceBuilder::build() && {
  ReferenceTrace trace(std::move(space_));
  for (const Raw& r : raw_) trace.add(r.step, r.proc, r.data, r.weight);
  trace.finalize();
  return trace;
}

}  // namespace pimsched

#pragma once

#include <cstdint>

#include "kernels/iteration_map.hpp"
#include "kernels/trace_builder.hpp"

namespace pimsched {

/// Kernels beyond the paper's benchmark set, used by the extended-evaluation
/// bench (A5 in DESIGN.md) and the examples. All follow the owner-computes
/// convention of emitLu/emitMatSquare: weight 1 per read, weight 2 per
/// read-modify-write or write of the updated element.

/// Right-looking Cholesky factorization (lower triangle) of n x n "A":
/// two steps per pivot k (column scale, trailing symmetric update).
void emitCholesky(TraceBuilder& tb, const IterationMap& map, int n);

/// Floyd-Warshall all-pairs shortest paths on n x n "D": one step per
/// intermediate vertex k; iteration (i, j) reads D[i][k], D[k][j] and
/// read-modify-writes D[i][j].
void emitFloydWarshall(TraceBuilder& tb, const IterationMap& map, int n);

/// `sweeps` iterations of a 5-point Jacobi stencil alternating between
/// n x n arrays "U" and "V": one step per sweep; iteration (i, j) reads the
/// 4 neighbours + center of the source array and writes the destination.
void emitJacobi2D(TraceBuilder& tb, const IterationMap& map, int n,
                  int sweeps);

/// Out-of-place transpose B = A^T, one step per source row i: iteration
/// (j, i) (the owner of B[j][i]) reads A[i][j] and writes B[j][i].
void emitTranspose(TraceBuilder& tb, const IterationMap& map, int n);

/// `iterations` sweeps of y = M*x for a synthetic sparse n x n matrix with
/// ~`nnzPerRow` entries per row (deterministic power-law-ish column
/// pattern: a diagonal band plus LCG-drawn far columns). The matrix
/// structure itself is not scheduled — only the n-element vectors "X" and
/// "Y" (each stored as an n x 1 array), making the reference string sparse
/// and irregular.
void emitSpmv(TraceBuilder& tb, const IterationMap& map, int n,
              int iterations, int nnzPerRow = 6,
              std::uint64_t seed = 0x5eedULL);

/// Gauss-Seidel wavefront over an n x n array "U": anti-diagonal d is one
/// execution step; iteration (i, j) on the wavefront reads its west and
/// north neighbours (already updated this sweep) and read-modify-writes
/// U[i][j]. `sweeps` full passes.
void emitWavefront(TraceBuilder& tb, const IterationMap& map, int n,
                   int sweeps);

/// Forward elimination on a banded n x n system "B" with semi-bandwidth
/// `band`: one step per pivot row; row r updates rows r+1..r+band within
/// the band.
void emitBandedElimination(TraceBuilder& tb, const IterationMap& map, int n,
                           int band);

}  // namespace pimsched

#include "kernels/irregular_code.hpp"

#include <algorithm>
#include <stdexcept>

namespace pimsched {

namespace {

/// Deterministic 64-bit LCG (Knuth constants); top bits are well mixed.
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 33;
  }

  /// Uniform in [0, bound).
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Triangular-ish offset in [-half, +half], peaked at 0.
  int offset(int half) {
    if (half <= 0) return 0;
    const auto h = static_cast<std::uint64_t>(half);
    const int a = static_cast<int>(below(h + 1));
    const int b = static_cast<int>(below(h + 1));
    return (a - b);
  }

 private:
  std::uint64_t state_;
};

int clampIdx(int v, int n) { return std::clamp(v, 0, n - 1); }

}  // namespace

void emitIrregularCodeVariant(TraceBuilder& tb, const IterationMap& map,
                              int n, const IrregularCodeOptions& options) {
  if (options.spreadDivisor < 1 || options.refsDivisor < 1) {
    throw std::invalid_argument(
        "emitIrregularCodeVariant: divisors must be >= 1");
  }
  const int a = tb.array("A", n, n);
  Lcg rng(options.seed);
  const int phases = n;
  const int refsPerPhase = std::max(1, (n * n) / options.refsDivisor);
  const int spread = std::max(1, n / options.spreadDivisor);

  // Random-walk state (only used by kRandomWalk); a separate generator so
  // the per-reference stream is identical across path kinds.
  Lcg walkRng(options.seed ^ 0xABCDEF12345ULL);
  int walkI = n / 2;
  int walkJ = n / 2;

  for (int t = 0; t < phases; ++t) {
    const StepId step = tb.beginStep();
    int hi = 0;
    int hj = 0;
    switch (options.path) {
      case HotspotPath::kDiagonalSwing: {
        // Wanders from the top-left to the bottom-right corner while the
        // column component also oscillates, so consecutive windows see
        // genuinely different reference centers.
        hi = (phases > 1) ? (t * (n - 1)) / (phases - 1) : 0;
        const int swing = (t % 4 < 2) ? t : (n - 1 - t % n);
        hj = clampIdx((hi + swing) % n, n);
        break;
      }
      case HotspotPath::kRandomWalk: {
        walkI = clampIdx(walkI + walkRng.offset(std::max(1, n / 3)), n);
        walkJ = clampIdx(walkJ + walkRng.offset(std::max(1, n / 3)), n);
        hi = walkI;
        hj = walkJ;
        break;
      }
      case HotspotPath::kTwoPhase:
        hi = (t < phases / 2) ? n / 4 : (3 * n) / 4;
        hj = hi;
        hi = clampIdx(hi, n);
        hj = clampIdx(hj, n);
        break;
      case HotspotPath::kOrbit: {
        // Walk the boundary: top edge, right edge, bottom, left.
        const int perimeter = std::max(1, 4 * (n - 1));
        const int pos = (t * perimeter) / phases;
        if (pos < n - 1) {
          hi = 0;
          hj = pos;
        } else if (pos < 2 * (n - 1)) {
          hi = pos - (n - 1);
          hj = n - 1;
        } else if (pos < 3 * (n - 1)) {
          hi = n - 1;
          hj = 3 * (n - 1) - pos;
        } else {
          hi = perimeter - pos;
          hj = 0;
        }
        break;
      }
    }

    for (int s = 0; s < refsPerPhase; ++s) {
      const int di = rng.offset(spread);
      const int dj = rng.offset(spread);
      const int ri = clampIdx(hi + di, n);
      const int rj = clampIdx(hj + dj, n);
      // Executing iteration point is jittered independently of the datum.
      const int xi = clampIdx(hi + rng.offset(spread), n);
      const int xj = clampIdx(hj + rng.offset(spread), n);
      tb.access(step, map.proc(xi, xj), a, ri, rj, 1);
    }
  }
}

void emitIrregularCode(TraceBuilder& tb, const IterationMap& map, int n,
                       std::uint64_t seed) {
  IrregularCodeOptions options;
  options.seed = seed;
  emitIrregularCodeVariant(tb, map, n, options);
}

}  // namespace pimsched

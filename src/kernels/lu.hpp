#pragma once

#include "kernels/iteration_map.hpp"
#include "kernels/trace_builder.hpp"

namespace pimsched {

/// Symbolically executes right-looking LU factorization without pivoting on
/// an n x n array "A" and records its data reference string (the paper's
/// benchmark 1).
///
/// For each pivot k there are two parallel execution steps:
///   * column scaling:   A[i][k] /= A[k][k]        for i in (k, n)
///   * trailing update:  A[i][j] -= A[i][k]*A[k][j] for i, j in (k, n)
/// Each iteration runs on the processor that owns the element it updates
/// (owner-computes under `map`); a read counts weight 1 and a
/// read-modify-write counts weight 2 (fetch + writeback).
void emitLu(TraceBuilder& tb, const IterationMap& map, int n);

}  // namespace pimsched

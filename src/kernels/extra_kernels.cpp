#include "kernels/extra_kernels.hpp"

#include <algorithm>
#include <vector>

namespace pimsched {

void emitCholesky(TraceBuilder& tb, const IterationMap& map, int n) {
  const int a = tb.array("A", n, n);
  for (int k = 0; k < n; ++k) {
    const StepId scale = tb.beginStep();
    // Diagonal sqrt + column scaling L[i][k] = A[i][k] / sqrt(A[k][k]).
    for (int i = k; i < n; ++i) {
      const ProcId p = map.proc(i, k);
      tb.access(scale, p, a, i, k, 2);
      if (i != k) tb.access(scale, p, a, k, k, 1);
    }
    if (k + 1 >= n) continue;
    const StepId update = tb.beginStep();
    // Trailing update on the lower triangle only.
    for (int i = k + 1; i < n; ++i) {
      for (int j = k + 1; j <= i; ++j) {
        const ProcId p = map.proc(i, j);
        tb.access(update, p, a, i, j, 2);
        tb.access(update, p, a, i, k, 1);
        tb.access(update, p, a, j, k, 1);
      }
    }
  }
}

void emitFloydWarshall(TraceBuilder& tb, const IterationMap& map, int n) {
  const int d = tb.array("D", n, n);
  for (int k = 0; k < n; ++k) {
    const StepId step = tb.beginStep();
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        const ProcId p = map.proc(i, j);
        tb.access(step, p, d, i, j, 2);
        tb.access(step, p, d, i, k, 1);
        tb.access(step, p, d, k, j, 1);
      }
    }
  }
}

void emitJacobi2D(TraceBuilder& tb, const IterationMap& map, int n,
                  int sweeps) {
  const int u = tb.array("U", n, n);
  const int v = tb.array("V", n, n);
  for (int t = 0; t < sweeps; ++t) {
    const StepId step = tb.beginStep();
    const int src = (t % 2 == 0) ? u : v;
    const int dst = (t % 2 == 0) ? v : u;
    for (int i = 1; i + 1 < n; ++i) {
      for (int j = 1; j + 1 < n; ++j) {
        const ProcId p = map.proc(i, j);
        tb.access(step, p, src, i, j, 1);
        tb.access(step, p, src, i - 1, j, 1);
        tb.access(step, p, src, i + 1, j, 1);
        tb.access(step, p, src, i, j - 1, 1);
        tb.access(step, p, src, i, j + 1, 1);
        tb.access(step, p, dst, i, j, 2);
      }
    }
  }
}

void emitTranspose(TraceBuilder& tb, const IterationMap& map, int n) {
  const int a = tb.array("A", n, n);
  const int b = tb.array("B", n, n);
  for (int i = 0; i < n; ++i) {
    const StepId step = tb.beginStep();
    for (int j = 0; j < n; ++j) {
      const ProcId p = map.proc(j, i);
      tb.access(step, p, a, i, j, 1);
      tb.access(step, p, b, j, i, 2);
    }
  }
}

void emitSpmv(TraceBuilder& tb, const IterationMap& map, int n,
              int iterations, int nnzPerRow, std::uint64_t seed) {
  const int x = tb.array("X", n, 1);
  const int y = tb.array("Y", n, 1);

  // Deterministic sparsity: per row, a short diagonal band plus far
  // columns drawn once from an LCG (the same structure every sweep, like
  // a real matrix).
  std::uint64_t state = seed;
  const auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  std::vector<std::vector<int>> cols(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    auto& row = cols[static_cast<std::size_t>(r)];
    row.push_back(r);
    if (r + 1 < n) row.push_back(r + 1);
    for (int k = static_cast<int>(row.size()); k < nnzPerRow; ++k) {
      row.push_back(static_cast<int>(next() % static_cast<std::uint64_t>(n)));
    }
  }

  for (int it = 0; it < iterations; ++it) {
    const StepId step = tb.beginStep();
    for (int r = 0; r < n; ++r) {
      // Row r is computed by the owner of Y[r] under the iteration map
      // (using the row index on both axes keeps 1-D data on a 2-D map).
      const ProcId p = map.proc(r % map.iterRows(), r % map.iterCols());
      tb.access(step, p, y, r, 0, 2);
      for (const int c : cols[static_cast<std::size_t>(r)]) {
        tb.access(step, p, x, c, 0, 1);
      }
    }
    // Pointer swap x <-> y is free; model the next sweep reading the new
    // vector by swapping roles every iteration via the same arrays: the
    // reference pattern is identical, which matches a stationary solver.
  }
}

void emitWavefront(TraceBuilder& tb, const IterationMap& map, int n,
                   int sweeps) {
  const int u = tb.array("U", n, n);
  for (int t = 0; t < sweeps; ++t) {
    for (int d = 0; d < 2 * n - 1; ++d) {
      const StepId step = tb.beginStep();
      for (int i = std::max(0, d - n + 1); i <= std::min(d, n - 1); ++i) {
        const int j = d - i;
        const ProcId p = map.proc(i, j);
        tb.access(step, p, u, i, j, 2);
        if (i > 0) tb.access(step, p, u, i - 1, j, 1);
        if (j > 0) tb.access(step, p, u, i, j - 1, 1);
      }
    }
  }
}

void emitBandedElimination(TraceBuilder& tb, const IterationMap& map, int n,
                           int band) {
  const int b = tb.array("B", n, n);
  for (int r = 0; r + 1 < n; ++r) {
    const StepId step = tb.beginStep();
    const int lastRow = std::min(n - 1, r + band);
    const int lastCol = std::min(n - 1, r + band);
    for (int i = r + 1; i <= lastRow; ++i) {
      for (int j = r; j <= lastCol; ++j) {
        const ProcId p = map.proc(i, j);
        tb.access(step, p, b, i, j, 2);
        tb.access(step, p, b, r, j, 1);  // pivot row
      }
    }
  }
}

}  // namespace pimsched

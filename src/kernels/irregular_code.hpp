#pragma once

#include <cstdint>

#include "kernels/iteration_map.hpp"
#include "kernels/trace_builder.hpp"

namespace pimsched {

/// Substitute for the paper's "CODE" kernel (University of Notre Dame CSE
/// TR 97-09, unavailable). The paper uses CODE purely as a source of a
/// complicated, non-uniform data reference string, combined with LU and
/// matmul in benchmarks 3-5.
///
/// This kernel reproduces those characteristics deterministically:
///  * irregular: accesses are driven by an indirection stream from a fixed
///    64-bit LCG (no linear or uniform dependence structure);
///  * clustered: accesses concentrate around a hotspot with a triangular
///    offset distribution, so a datum's reference string has a clear
///    per-window center;
///  * drifting: the hotspot wanders diagonally across the array over the n
///    execution steps, so the best center moves between windows — exactly
///    the situation where multiple-center scheduling beats single-center.
///
/// One step per phase t in [0, n); each phase issues n*n/4 single-weight
/// references into the n x n array "A"; the executing processor is the
/// owner of an independently jittered iteration point near the hotspot.
void emitIrregularCode(TraceBuilder& tb, const IterationMap& map, int n,
                       std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

/// How the hotspot of a CODE variant wanders over the phases. Since the
/// original CODE kernel is unavailable, the reproduction's conclusions
/// must not hinge on one reconstruction: bench/code_sensitivity re-runs
/// the evaluation across all of these.
enum class HotspotPath {
  kDiagonalSwing,  ///< the default emitIrregularCode behaviour
  kRandomWalk,     ///< LCG-driven bounded random walk
  kTwoPhase,       ///< parks in one corner, jumps to the other mid-run
  kOrbit,          ///< loops around the array boundary
};

struct IrregularCodeOptions {
  HotspotPath path = HotspotPath::kDiagonalSwing;
  /// Hotspot cluster radius = n / spreadDivisor (larger divisor = tighter
  /// clusters = stronger locality).
  int spreadDivisor = 4;
  /// References per phase = n * n / refsDivisor.
  int refsDivisor = 4;
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
};

/// Parameterised CODE family. With default options this produces exactly
/// the same trace as emitIrregularCode.
void emitIrregularCodeVariant(TraceBuilder& tb, const IterationMap& map,
                              int n, const IrregularCodeOptions& options);

}  // namespace pimsched

#pragma once

#include <string>
#include <vector>

#include "kernels/iteration_map.hpp"
#include "trace/trace.hpp"

namespace pimsched {

/// The five benchmarks of the paper's evaluation section:
///   1 — LU factorization
///   2 — matrix square (C = A * A)
///   3 — LU followed by CODE
///   4 — matrix square followed by CODE
///   5 — CODE followed by reverse(CODE)
/// (CODE is our irregular-kernel substitute; see DESIGN.md.)
enum class PaperBenchmark { kLu = 1, kMatSquare, kLuCode, kMatCode, kCodeRev };

[[nodiscard]] std::string toString(PaperBenchmark b);

/// All five benchmarks in paper order.
[[nodiscard]] const std::vector<PaperBenchmark>& allPaperBenchmarks();

/// Builds the reference trace of a paper benchmark with an n x n data array
/// on the given grid under the given iteration partition. Row-block is the
/// default: it matches the row-wise "straight-forward" data distribution
/// the paper compares against, and reproduces the paper's improvement
/// magnitudes (see DESIGN.md §5 and the extended_kernels bench for the
/// partition sensitivity).
[[nodiscard]] ReferenceTrace makePaperBenchmark(
    PaperBenchmark b, const Grid& grid, int n,
    PartitionKind partition = PartitionKind::kRowBlock);

}  // namespace pimsched

#include "kernels/combinators.hpp"

#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace pimsched {

ReferenceTrace concatTraces(const ReferenceTrace& first,
                            const ReferenceTrace& second) {
  if (!first.finalized() || !second.finalized()) {
    throw std::invalid_argument("concatTraces: traces must be finalized");
  }

  // Union of the two data spaces by array name.
  DataSpace merged;
  std::unordered_map<std::string, int> byName;
  for (const auto& a : first.dataSpace().arrays()) {
    byName[a.name] = merged.addArray(a.name, a.rows, a.cols);
  }
  for (const auto& a : second.dataSpace().arrays()) {
    const auto it = byName.find(a.name);
    if (it == byName.end()) {
      byName[a.name] = merged.addArray(a.name, a.rows, a.cols);
    } else {
      const auto& existing =
          merged.arrays()[static_cast<std::size_t>(it->second)];
      if (existing.rows != a.rows || existing.cols != a.cols) {
        throw std::invalid_argument("concatTraces: array '" + a.name +
                                    "' has conflicting shapes");
      }
    }
  }

  const auto remap = [&merged, &byName](const DataSpace& from, DataId d) {
    const ElementRef e = from.element(d);
    const std::string& name =
        from.arrays()[static_cast<std::size_t>(e.array)].name;
    return merged.id(byName.at(name), e.row, e.col);
  };

  ReferenceTrace out(merged);
  for (const Access& a : first.accesses()) {
    out.add(a.step, a.proc, remap(first.dataSpace(), a.data), a.weight);
  }
  const StepId shift = first.numSteps();
  for (const Access& a : second.accesses()) {
    out.add(a.step + shift, a.proc, remap(second.dataSpace(), a.data),
            a.weight);
  }
  out.finalize();
  return out;
}

ReferenceTrace reverseTrace(const ReferenceTrace& trace) {
  if (!trace.finalized()) {
    throw std::invalid_argument("reverseTrace: trace must be finalized");
  }
  ReferenceTrace out(trace.dataSpace());
  const StepId last = trace.numSteps() - 1;
  for (const Access& a : trace.accesses()) {
    out.add(last - a.step, a.proc, a.data, a.weight);
  }
  out.finalize();
  return out;
}

}  // namespace pimsched

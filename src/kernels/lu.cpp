#include "kernels/lu.hpp"

namespace pimsched {

void emitLu(TraceBuilder& tb, const IterationMap& map, int n) {
  const int a = tb.array("A", n, n);
  for (int k = 0; k + 1 < n; ++k) {
    const StepId scale = tb.beginStep();
    for (int i = k + 1; i < n; ++i) {
      const ProcId p = map.proc(i, k);
      tb.access(scale, p, a, i, k, 2);  // A[i][k] read-modify-write
      tb.access(scale, p, a, k, k, 1);  // pivot read
    }
    const StepId update = tb.beginStep();
    for (int i = k + 1; i < n; ++i) {
      for (int j = k + 1; j < n; ++j) {
        const ProcId p = map.proc(i, j);
        tb.access(update, p, a, i, j, 2);  // A[i][j] read-modify-write
        tb.access(update, p, a, i, k, 1);  // multiplier read
        tb.access(update, p, a, k, j, 1);  // pivot-row read
      }
    }
  }
}

}  // namespace pimsched

#include "kernels/iteration_map.hpp"

#include <algorithm>
#include <stdexcept>

namespace pimsched {

std::string toString(PartitionKind kind) {
  switch (kind) {
    case PartitionKind::kRowBlock: return "row-block";
    case PartitionKind::kColBlock: return "col-block";
    case PartitionKind::kBlock2D: return "block-2d";
    case PartitionKind::kCyclic2D: return "cyclic-2d";
  }
  return "unknown";
}

IterationMap::IterationMap(const Grid& grid, int iterRows, int iterCols,
                           PartitionKind kind)
    : grid_(&grid), iterRows_(iterRows), iterCols_(iterCols), kind_(kind) {
  if (iterRows < 1 || iterCols < 1) {
    throw std::invalid_argument("IterationMap: iteration space must be >= 1x1");
  }
  const std::int64_t total =
      static_cast<std::int64_t>(iterRows) * iterCols;
  chunk_ = (total + grid.size() - 1) / grid.size();
}

ProcId IterationMap::proc(int i, int j) const {
  if (i < 0 || i >= iterRows_ || j < 0 || j >= iterCols_) {
    throw std::out_of_range("IterationMap::proc: iteration out of range");
  }
  const Grid& g = *grid_;
  switch (kind_) {
    case PartitionKind::kRowBlock: {
      const std::int64_t e = static_cast<std::int64_t>(i) * iterCols_ + j;
      return static_cast<ProcId>(
          std::min<std::int64_t>(e / chunk_, g.size() - 1));
    }
    case PartitionKind::kColBlock: {
      const std::int64_t e = static_cast<std::int64_t>(j) * iterRows_ + i;
      return static_cast<ProcId>(
          std::min<std::int64_t>(e / chunk_, g.size() - 1));
    }
    case PartitionKind::kBlock2D: {
      const int r = static_cast<int>(
          (static_cast<std::int64_t>(i) * g.rows()) / iterRows_);
      const int c = static_cast<int>(
          (static_cast<std::int64_t>(j) * g.cols()) / iterCols_);
      return g.id(r, c);
    }
    case PartitionKind::kCyclic2D:
      return g.id(i % g.rows(), j % g.cols());
  }
  throw std::logic_error("IterationMap::proc: unknown kind");
}

}  // namespace pimsched

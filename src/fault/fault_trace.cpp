#include "fault/fault_trace.hpp"

#include <algorithm>
#include <cstddef>
#include <sstream>
#include <stdexcept>

#include "obs/obs.hpp"

namespace pimsched {

namespace {

struct ParsedSpec {
  std::string verb;
  std::vector<std::int64_t> args;
  std::uint64_t seed = 0;
  bool hasSeed = false;
};

[[noreturn]] void badSpec(const std::string& spec, const char* why) {
  throw std::invalid_argument("fault spec \"" + spec + "\": " + why);
}

/// Like badSpec, but points at the token that failed and where it sits in
/// the spec, so a client staring at "region:0,0,x,3" learns which of the
/// four operands is bad without counting commas.
[[noreturn]] void badSpecAt(const std::string& spec, const char* why,
                            const std::string& tok, std::size_t offset) {
  throw std::invalid_argument("fault spec \"" + spec + "\": " + why +
                              " at \"" + tok + "\" (offset " +
                              std::to_string(offset) + ")");
}

/// `offset` is the token's character position inside `spec` (for error
/// reporting only).
std::int64_t parseInt(const std::string& spec, const std::string& tok,
                      std::size_t offset) {
  try {
    std::size_t used = 0;
    const long long v = std::stoll(tok, &used);
    if (used != tok.size()) {
      badSpecAt(spec, "trailing characters in number", tok, offset);
    }
    return static_cast<std::int64_t>(v);
  } catch (const std::invalid_argument&) {
    badSpecAt(spec, "expected a number", tok, offset);
  } catch (const std::out_of_range&) {
    badSpecAt(spec, "number out of range", tok, offset);
  }
}

std::uint64_t parseSeed(const std::string& spec, const std::string& tok,
                        std::size_t offset) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(tok, &used);
    if (used != tok.size()) {
      badSpecAt(spec, "trailing characters in seed", tok, offset);
    }
    return static_cast<std::uint64_t>(v);
  } catch (const std::invalid_argument&) {
    badSpecAt(spec, "expected a seed", tok, offset);
  } catch (const std::out_of_range&) {
    badSpecAt(spec, "seed out of range", tok, offset);
  }
}

/// Splits `body` on `sep`, parsing each piece as an integer. `baseOffset`
/// is where `body` starts inside the full spec.
std::vector<std::int64_t> parseIntList(const std::string& spec,
                                       const std::string& body, char sep,
                                       std::size_t baseOffset) {
  std::vector<std::int64_t> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t end = body.find(sep, start);
    out.push_back(parseInt(spec, body.substr(start, end - start),
                           baseOffset + start));
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return out;
}

void expectArgs(const std::string& spec, const ParsedSpec& p,
                std::size_t count) {
  if (p.args.size() != count) badSpec(spec, "wrong operand count");
}

ParsedSpec parseSpec(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size()) {
    badSpec(spec, "expected verb:operands");
  }
  ParsedSpec p;
  p.verb = spec.substr(0, colon);
  const std::string body = spec.substr(colon + 1);
  const std::size_t bodyAt = colon + 1;

  if (p.verb == "proc" || p.verb == "row" || p.verb == "col") {
    p.args = parseIntList(spec, body, ',', bodyAt);
    expectArgs(spec, p, 1);
  } else if (p.verb == "link") {
    p.args = parseIntList(spec, body, '-', bodyAt);
    expectArgs(spec, p, 2);
  } else if (p.verb == "region") {
    p.args = parseIntList(spec, body, ',', bodyAt);
    expectArgs(spec, p, 4);
  } else if (p.verb == "cap") {
    const std::size_t eq = body.find('=');
    if (eq == std::string::npos) badSpec(spec, "expected cap:P=N");
    p.args.push_back(parseInt(spec, body.substr(0, eq), bodyAt));
    p.args.push_back(parseInt(spec, body.substr(eq + 1), bodyAt + eq + 1));
  } else if (p.verb == "uniform-procs" || p.verb == "uniform-links") {
    const std::size_t at = body.find('@');
    if (at == std::string::npos) badSpec(spec, "expected N@SEED");
    p.args.push_back(parseInt(spec, body.substr(0, at), bodyAt));
    p.seed = parseSeed(spec, body.substr(at + 1), bodyAt + at + 1);
    p.hasSeed = true;
  } else {
    badSpecAt(spec, "unknown fault verb", p.verb, 0);
  }
  return p;
}

ProcId checkedProc(const std::string& spec, std::int64_t v) {
  if (v < 0 || v > static_cast<std::int64_t>(INT32_MAX)) {
    badSpec(spec, "processor id out of range");
  }
  return static_cast<ProcId>(v);
}

int checkedInt(const std::string& spec, std::int64_t v) {
  if (v < static_cast<std::int64_t>(INT32_MIN) ||
      v > static_cast<std::int64_t>(INT32_MAX)) {
    badSpec(spec, "value out of range");
  }
  return static_cast<int>(v);
}

void applyParsed(FaultMap& map, const std::string& spec, const ParsedSpec& p) {
  if (p.verb == "proc") {
    map.killProc(checkedProc(spec, p.args[0]));
  } else if (p.verb == "link") {
    map.killLink(checkedProc(spec, p.args[0]), checkedProc(spec, p.args[1]));
  } else if (p.verb == "row") {
    map.killRow(checkedInt(spec, p.args[0]));
  } else if (p.verb == "col") {
    map.killCol(checkedInt(spec, p.args[0]));
  } else if (p.verb == "region") {
    map.killRegion(checkedInt(spec, p.args[0]), checkedInt(spec, p.args[1]),
                   checkedInt(spec, p.args[2]), checkedInt(spec, p.args[3]));
  } else if (p.verb == "cap") {
    map.limitCapacity(checkedProc(spec, p.args[0]), p.args[1]);
  } else if (p.verb == "uniform-procs") {
    map.injectUniformProcs(checkedInt(spec, p.args[0]), p.seed);
  } else if (p.verb == "uniform-links") {
    map.injectUniformLinks(checkedInt(spec, p.args[0]), p.seed);
  }
}

}  // namespace

bool applyFaultSpec(FaultMap& map, const std::string& spec) {
  const std::int64_t before = map.mutations();
  applyParsed(map, spec, parseSpec(spec));
  if (map.mutations() == before) {
    PIMSCHED_COUNTER_ADD("fault.spec.duplicates", 1);
    return false;
  }
  return true;
}

FaultTrace::FaultTrace(std::vector<FaultEvent> events)
    : events_(std::move(events)) {
  for (const FaultEvent& e : events_) {
    if (e.step < 0) {
      throw std::invalid_argument("FaultTrace: event step must be >= 0");
    }
    parseSpec(e.spec);  // validate grammar up front
  }
  std::stable_sort(
      events_.begin(), events_.end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.step < b.step; });
}

FaultTrace FaultTrace::parse(std::istream& in) {
  std::vector<FaultEvent> events;
  std::string line;
  int lineNo = 0;
  bool sawHeader = false;
  auto fail = [&](const char* why) -> void {
    throw std::invalid_argument("pimfault line " + std::to_string(lineNo) +
                                ": " + why);
  };
  while (std::getline(in, line)) {
    ++lineNo;
    if (lineNo == 1) {
      if (line.rfind("# pimfault v1", 0) != 0) {
        fail("missing \"# pimfault v1\" header");
      }
      sawHeader = true;
      continue;
    }
    const std::size_t hash = line.find('#');
    std::istringstream toks(
        hash == std::string::npos ? line : line.substr(0, hash));
    std::vector<std::string> words;
    std::string w;
    while (toks >> w) words.push_back(w);
    if (words.empty()) continue;
    if (words[0] != "step" || words.size() < 3) {
      fail("expected \"step N <verb> <operands>\"");
    }
    FaultEvent ev;
    try {
      ev.step = checkedInt(words[1], parseInt(words[1], words[1], 0));
    } catch (const std::invalid_argument&) {
      fail("step must be a number");
    }
    if (ev.step < 0) fail("step must be >= 0");
    const std::string& verb = words[2];
    const std::vector<std::string> ops(words.begin() + 3, words.end());
    auto need = [&](std::size_t n) {
      if (ops.size() != n) fail("wrong operand count");
    };
    if (verb == "proc" || verb == "row" || verb == "col") {
      need(1);
      ev.spec = verb + ":" + ops[0];
    } else if (verb == "link") {
      need(2);
      ev.spec = "link:" + ops[0] + "-" + ops[1];
    } else if (verb == "region") {
      need(4);
      ev.spec = "region:" + ops[0] + "," + ops[1] + "," + ops[2] + "," + ops[3];
    } else if (verb == "cap") {
      need(2);
      ev.spec = "cap:" + ops[0] + "=" + ops[1];
    } else if (verb == "uniform-procs" || verb == "uniform-links") {
      need(2);
      ev.spec = verb + ":" + ops[0] + "@" + ops[1];
    } else {
      fail("unknown fault verb");
    }
    try {
      parseSpec(ev.spec);
    } catch (const std::invalid_argument& e) {
      fail(e.what());
    }
    events.push_back(std::move(ev));
  }
  if (!sawHeader) {
    throw std::invalid_argument("pimfault: empty input (missing header)");
  }
  return FaultTrace(std::move(events));
}

FaultTrace FaultTrace::parse(const std::string& text) {
  std::istringstream in(text);
  return parse(in);
}

int FaultTrace::lastStep() const {
  return events_.empty() ? -1 : events_.back().step;
}

FaultMap FaultTrace::mapAtStep(const Grid& grid, int step) const {
  FaultMap map(grid);
  for (const FaultEvent& e : events_) {
    if (e.step > step) break;
    applyFaultSpec(map, e.spec);
  }
  return map;
}

std::string FaultTrace::toText() const {
  std::ostringstream out;
  out << "# pimfault v1\n";
  for (const FaultEvent& e : events_) {
    const ParsedSpec p = parseSpec(e.spec);
    out << "step " << e.step << ' ' << p.verb;
    for (const std::int64_t a : p.args) out << ' ' << a;
    if (p.hasSeed) out << ' ' << p.seed;
    out << '\n';
  }
  return out.str();
}

}  // namespace pimsched

#pragma once

#include <vector>

#include "fault/fault_map.hpp"
#include "pim/grid.hpp"
#include "pim/routing.hpp"

namespace pimsched {

/// Fault-aware routing: the x-y route when every hop of it is alive (so a
/// fault-free mesh routes bit-identically to xyRoute), otherwise a
/// deterministic BFS detour over the alive sub-mesh (shortest alive path;
/// ties resolved by the fixed N/S/W/E neighbor expansion order). Returns
/// the node sequence including both endpoints.
///
/// Throws UnreachableError when src or dst is dead or the alive sub-mesh
/// has no src -> dst path (the mesh is partitioned).
[[nodiscard]] std::vector<ProcId> faultRoute(const Grid& grid,
                                             const FaultMap& faults,
                                             ProcId src, ProcId dst);

/// The directed links traversed by faultRoute (empty when src == dst).
[[nodiscard]] std::vector<Link> faultLinks(const Grid& grid,
                                           const FaultMap& faults, ProcId src,
                                           ProcId dst);

}  // namespace pimsched

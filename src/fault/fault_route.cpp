#include "fault/fault_route.hpp"

#include <algorithm>
#include <deque>
#include <string>

#include "obs/obs.hpp"

namespace pimsched {

namespace {

[[noreturn]] void throwUnreachable(const FaultMap& faults, ProcId src,
                                   ProcId dst, const char* why) {
  PIMSCHED_COUNTER_ADD("fault.route.unreachable", 1);
  throw UnreachableError("faultRoute: no route " + std::to_string(src) +
                         " -> " + std::to_string(dst) + " (" + why +
                         "; faults: " + faults.summary() + ")");
}

}  // namespace

std::vector<ProcId> faultRoute(const Grid& grid, const FaultMap& faults,
                               ProcId src, ProcId dst) {
  if (faults.procDead(src) || faults.procDead(dst)) {
    throwUnreachable(faults, src, dst, "endpoint dead");
  }

  // Fast path: the x-y route, when every node and directed hop on it is
  // alive. This keeps fault-free routing bit-identical to xyRoute and
  // only falls back to BFS for traffic the faults actually block.
  std::vector<ProcId> xy = xyRoute(grid, src, dst);
  bool blocked = false;
  for (std::size_t i = 0; i < xy.size() && !blocked; ++i) {
    if (faults.procDead(xy[i])) blocked = true;
    if (!blocked && i + 1 < xy.size() && faults.linkDead(xy[i], xy[i + 1])) {
      blocked = true;
    }
  }
  if (!blocked) return xy;

  PIMSCHED_COUNTER_ADD("fault.route.bfs", 1);
  std::vector<ProcId> parent(static_cast<std::size_t>(grid.size()), kNoProc);
  std::vector<char> seen(static_cast<std::size_t>(grid.size()), 0);
  std::deque<ProcId> frontier;
  seen[static_cast<std::size_t>(src)] = 1;
  frontier.push_back(src);
  while (!frontier.empty() && seen[static_cast<std::size_t>(dst)] == 0) {
    const ProcId cur = frontier.front();
    frontier.pop_front();
    for (const ProcId next : grid.neighbors(cur)) {
      if (seen[static_cast<std::size_t>(next)] != 0 ||
          faults.procDead(next) || faults.linkDead(cur, next)) {
        continue;
      }
      seen[static_cast<std::size_t>(next)] = 1;
      parent[static_cast<std::size_t>(next)] = cur;
      frontier.push_back(next);
    }
  }
  if (seen[static_cast<std::size_t>(dst)] == 0) {
    throwUnreachable(faults, src, dst, "mesh partitioned");
  }

  std::vector<ProcId> path;
  for (ProcId p = dst; p != kNoProc; p = parent[static_cast<std::size_t>(p)]) {
    path.push_back(p);
    if (p == src) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<Link> faultLinks(const Grid& grid, const FaultMap& faults,
                             ProcId src, ProcId dst) {
  const std::vector<ProcId> path = faultRoute(grid, faults, src, dst);
  std::vector<Link> links;
  links.reserve(path.size() - 1);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    links.push_back(Link{path[i], path[i + 1]});
  }
  return links;
}

}  // namespace pimsched

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fault/fault_map.hpp"

namespace pimsched {

/// One fault event: a spec that fires at a given execution step (window
/// index). Step 0 events describe faults present before execution starts.
struct FaultEvent {
  int step = 0;
  std::string spec;  ///< "proc:5", "link:2-3", "row:1", ... see applyFaultSpec
};

/// Applies one fault spec string to a map. Accepted forms:
///
///   proc:P            kill processor P
///   link:A-B          kill the directed link A -> B
///   row:R             kill every processor in row R
///   col:C             kill every processor in column C
///   region:R0,C0,R1,C1  kill the inclusive rectangle
///   cap:P=N           cap processor P at N data slots
///   uniform-procs:N@SEED  kill N random alive processors (seeded)
///   uniform-links:N@SEED  kill N random alive directed links (seeded)
///
/// Throws std::invalid_argument on malformed specs or out-of-grid
/// targets. This is the grammar the serve protocol's "faults" job field
/// and pimsched_submit's --fault flag use.
///
/// Returns true when the spec changed the map, false when it was a
/// duplicate (every target already dead / capped at or below the
/// requested bound). Duplicates are counted in `fault.spec.duplicates`,
/// so fleet health descriptors built from spec lists stay canonical:
/// dropping every false-returning spec reproduces the same map.
bool applyFaultSpec(FaultMap& map, const std::string& spec);

/// A time-ordered fault scenario: events sorted by step, replayable to
/// the fault state as of any step. Text format ("# pimfault v1"):
///
///   # pimfault v1
///   step 0 proc 5
///   step 0 cap 7 1
///   step 3 link 2 3
///   step 4 region 1 1 2 2
///
/// Blank lines and '#' comments are ignored. Event verbs mirror the spec
/// grammar above with whitespace-separated operands (link A B,
/// region R0 C0 R1 C1, cap P N, row R, col C, proc P).
class FaultTrace {
 public:
  FaultTrace() = default;
  explicit FaultTrace(std::vector<FaultEvent> events);

  /// Parses the pimfault v1 text format. Throws std::invalid_argument on
  /// syntax errors (message carries the line number).
  static FaultTrace parse(std::istream& in);
  static FaultTrace parse(const std::string& text);

  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  /// Largest event step, or -1 when the trace is empty.
  [[nodiscard]] int lastStep() const;

  /// The cumulative fault state after every event with event.step <= step
  /// has fired.
  [[nodiscard]] FaultMap mapAtStep(const Grid& grid, int step) const;

  /// Serializes back to the pimfault v1 text format.
  [[nodiscard]] std::string toText() const;

 private:
  std::vector<FaultEvent> events_;  ///< sorted by step (stable)
};

}  // namespace pimsched

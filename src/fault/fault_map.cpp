#include "fault/fault_map.hpp"

#include <stdexcept>

#include "obs/obs.hpp"
#include "pim/memory.hpp"

namespace pimsched {

namespace {

/// Deterministic 64-bit LCG so injections are identical across platforms
/// and standard libraries (same recurrence as tests/test_util.hpp).
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 33;
  }
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

 private:
  std::uint64_t state_;
};

}  // namespace

FaultMap::FaultMap(const Grid& grid)
    : grid_(&grid),
      deadProc_(static_cast<std::size_t>(grid.size()), 0),
      deadLink_(static_cast<std::size_t>(grid.size()) * 4, 0),
      capLimit_(static_cast<std::size_t>(grid.size()), -1) {}

std::size_t FaultMap::linkSlot(ProcId from, ProcId to) const {
  const Coord a = grid_->coord(from);
  const Coord b = grid_->coord(to);
  int dir = -1;
  if (b.row == a.row - 1 && b.col == a.col) dir = 0;
  else if (b.row == a.row + 1 && b.col == a.col) dir = 1;
  else if (b.col == a.col - 1 && b.row == a.row) dir = 2;
  else if (b.col == a.col + 1 && b.row == a.row) dir = 3;
  if (dir < 0) {
    throw std::invalid_argument("FaultMap: not a mesh link");
  }
  return static_cast<std::size_t>(from) * 4 + static_cast<std::size_t>(dir);
}

void FaultMap::killProc(ProcId p) {
  if (!grid_->contains(p)) {
    throw std::invalid_argument("FaultMap::killProc: processor outside grid");
  }
  auto& dead = deadProc_[static_cast<std::size_t>(p)];
  if (dead == 0) {
    dead = 1;
    ++deadProcs_;
    ++mutations_;
    PIMSCHED_COUNTER_ADD("fault.injected.procs", 1);
  }
}

void FaultMap::killLink(ProcId from, ProcId to) {
  if (!grid_->contains(from) || !grid_->contains(to)) {
    throw std::invalid_argument("FaultMap::killLink: processor outside grid");
  }
  auto& dead = deadLink_[linkSlot(from, to)];
  if (dead == 0) {
    dead = 1;
    ++deadLinks_;
    ++mutations_;
    PIMSCHED_COUNTER_ADD("fault.injected.links", 1);
  }
}

void FaultMap::killRow(int row) {
  if (row < 0 || row >= grid_->rows()) {
    throw std::invalid_argument("FaultMap::killRow: row outside grid");
  }
  for (int c = 0; c < grid_->cols(); ++c) killProc(grid_->id(row, c));
}

void FaultMap::killCol(int col) {
  if (col < 0 || col >= grid_->cols()) {
    throw std::invalid_argument("FaultMap::killCol: column outside grid");
  }
  for (int r = 0; r < grid_->rows(); ++r) killProc(grid_->id(r, col));
}

void FaultMap::killRegion(int r0, int c0, int r1, int c1) {
  if (r0 > r1 || c0 > c1 || r0 < 0 || c0 < 0 || r1 >= grid_->rows() ||
      c1 >= grid_->cols()) {
    throw std::invalid_argument("FaultMap::killRegion: region outside grid");
  }
  for (int r = r0; r <= r1; ++r) {
    for (int c = c0; c <= c1; ++c) killProc(grid_->id(r, c));
  }
}

void FaultMap::limitCapacity(ProcId p, std::int64_t slots) {
  if (!grid_->contains(p)) {
    throw std::invalid_argument(
        "FaultMap::limitCapacity: processor outside grid");
  }
  if (slots < 0) {
    throw std::invalid_argument("FaultMap::limitCapacity: slots must be >= 0");
  }
  auto& limit = capLimit_[static_cast<std::size_t>(p)];
  if (limit < 0 || slots < limit) {
    limit = slots;
    anyCapLimit_ = true;
    ++mutations_;
    PIMSCHED_COUNTER_ADD("fault.injected.caps", 1);
  }
}

void FaultMap::clear() {
  if (anyFaults()) ++mutations_;
  std::fill(deadProc_.begin(), deadProc_.end(), 0);
  std::fill(deadLink_.begin(), deadLink_.end(), 0);
  std::fill(capLimit_.begin(), capLimit_.end(), -1);
  deadProcs_ = 0;
  deadLinks_ = 0;
  anyCapLimit_ = false;
}

void FaultMap::injectUniformProcs(int count, std::uint64_t seed) {
  if (count < 0 || count > aliveProcCount()) {
    throw std::invalid_argument(
        "FaultMap::injectUniformProcs: count exceeds alive processors");
  }
  Lcg rng(seed);
  for (int k = 0; k < count; ++k) {
    ProcId p;
    do {
      p = static_cast<ProcId>(
          rng.below(static_cast<std::uint64_t>(grid_->size())));
    } while (procDead(p));
    killProc(p);
  }
}

void FaultMap::injectUniformLinks(int count, std::uint64_t seed) {
  // Enumerate directed links whose endpoints are both alive and that are
  // not already dead, then sample without replacement.
  std::vector<std::pair<ProcId, ProcId>> candidates;
  for (ProcId p = 0; p < grid_->size(); ++p) {
    if (procDead(p)) continue;
    for (const ProcId q : grid_->neighbors(p)) {
      if (!procDead(q) && deadLink_[linkSlot(p, q)] == 0) {
        candidates.emplace_back(p, q);
      }
    }
  }
  if (count < 0 || static_cast<std::size_t>(count) > candidates.size()) {
    throw std::invalid_argument(
        "FaultMap::injectUniformLinks: count exceeds alive links");
  }
  Lcg rng(seed);
  for (int k = 0; k < count; ++k) {
    const std::size_t i = rng.below(candidates.size());
    killLink(candidates[i].first, candidates[i].second);
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(i));
  }
}

bool FaultMap::linkDead(ProcId from, ProcId to) const {
  return procDead(from) || procDead(to) || deadLink_[linkSlot(from, to)] != 0;
}

std::int64_t FaultMap::capacityLimit(ProcId p) const {
  if (procDead(p)) return 0;
  return capLimit_[static_cast<std::size_t>(p)];
}

std::string FaultMap::summary() const {
  int caps = 0;
  for (ProcId p = 0; p < grid_->size(); ++p) {
    if (procAlive(p) && capLimit_[static_cast<std::size_t>(p)] >= 0) ++caps;
  }
  return "procs=" + std::to_string(deadProcs_) +
         " links=" + std::to_string(deadLinks_) +
         " caps=" + std::to_string(caps);
}

void applyFaultCapacity(OccupancyMap& occupancy, const FaultMap& faults) {
  for (ProcId p = 0; p < faults.grid().size(); ++p) {
    const std::int64_t limit = faults.capacityLimit(p);
    if (limit >= 0) occupancy.limitCapacity(p, limit);
  }
}

}  // namespace pimsched

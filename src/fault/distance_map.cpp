#include "fault/distance_map.hpp"

#include <deque>

#include "obs/obs.hpp"

namespace pimsched {

DistanceMap::DistanceMap(const Grid& grid, const FaultMap& faults)
    : grid_(&grid),
      faults_(&faults),
      size_(grid.size()),
      alive_(static_cast<std::size_t>(grid.size()), 0),
      dist_(static_cast<std::size_t>(grid.size()) *
                static_cast<std::size_t>(grid.size()),
            -1) {
  PIMSCHED_SCOPED_TIMER("fault.distance_map.build");
  PIMSCHED_COUNTER_ADD("fault.distance_map.builds", 1);
  for (ProcId p = 0; p < size_; ++p) {
    alive_[static_cast<std::size_t>(p)] = faults.procAlive(p) ? 1 : 0;
  }

  std::deque<ProcId> frontier;
  for (ProcId src = 0; src < size_; ++src) {
    if (!alive(src)) continue;
    std::int32_t* row =
        dist_.data() + static_cast<std::size_t>(src) *
                           static_cast<std::size_t>(size_);
    row[src] = 0;
    frontier.clear();
    frontier.push_back(src);
    int reached = 1;
    while (!frontier.empty()) {
      const ProcId cur = frontier.front();
      frontier.pop_front();
      for (const ProcId next : grid.neighbors(cur)) {
        if (!alive(next) || row[next] >= 0 || faults.linkDead(cur, next)) {
          continue;
        }
        row[next] = row[cur] + 1;
        ++reached;
        frontier.push_back(next);
      }
    }
    if (reached < faults.aliveProcCount()) partitioned_ = true;
  }
}

}  // namespace pimsched

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "pim/grid.hpp"
#include "pim/routing.hpp"
#include "pim/types.hpp"

namespace pimsched {

class OccupancyMap;

/// Thrown when the faulted mesh cannot carry required traffic: a route
/// endpoint is dead, or the alive sub-mesh is partitioned between two
/// processors that must communicate. Derives std::runtime_error so
/// fault-oblivious callers degrade to a generic failure instead of
/// crashing; fault-aware callers catch the type to report structured
/// "unreachable" outcomes (see docs/fault-tolerance.md).
class UnreachableError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The fault state of a PIM array: dead processors, dead *directed* links
/// and optional reduced per-processor memory capacity, layered over a
/// Grid. A dead processor implicitly kills every link touching it.
///
/// Deterministic seeded injectors (uniform random, row/column kill,
/// region kill) build reproducible fault scenarios; fault_trace.hpp adds
/// a text format so faults can arrive at a given execution step.
class FaultMap {
 public:
  explicit FaultMap(const Grid& grid);

  [[nodiscard]] const Grid& grid() const { return *grid_; }

  /// --- mutation ---------------------------------------------------------
  void killProc(ProcId p);
  /// Kills the directed link from -> to (must be mesh-adjacent).
  void killLink(ProcId from, ProcId to);
  void killRow(int row);
  void killCol(int col);
  /// Kills every processor with r0 <= row <= r1 and c0 <= col <= c1.
  void killRegion(int r0, int c0, int r1, int c1);
  /// Caps processor p at `slots` data (>= 0); tightens only (the limit
  /// never grows back via this call).
  void limitCapacity(ProcId p, std::int64_t slots);
  /// Removes every fault.
  void clear();

  /// Kills `count` distinct still-alive processors chosen by a seeded
  /// deterministic generator. Throws std::invalid_argument if fewer than
  /// `count` alive processors remain.
  void injectUniformProcs(int count, std::uint64_t seed);
  /// Kills `count` distinct still-alive directed links (both endpoints
  /// alive at injection time) chosen by a seeded deterministic generator.
  void injectUniformLinks(int count, std::uint64_t seed);

  /// --- queries ----------------------------------------------------------
  [[nodiscard]] bool procDead(ProcId p) const {
    return deadProc_[static_cast<std::size_t>(p)] != 0;
  }
  [[nodiscard]] bool procAlive(ProcId p) const { return !procDead(p); }
  /// True when the directed hop from -> to is unusable (either endpoint
  /// dead, or the link itself killed). from/to must be mesh-adjacent.
  [[nodiscard]] bool linkDead(ProcId from, ProcId to) const;
  /// Per-processor slot bound: 0 for dead processors, the reduced limit
  /// where one was set, -1 (no fault bound) otherwise.
  [[nodiscard]] std::int64_t capacityLimit(ProcId p) const;

  [[nodiscard]] int deadProcCount() const { return deadProcs_; }
  [[nodiscard]] int deadLinkCount() const { return deadLinks_; }
  /// Monotonic count of state changes: bumps once per processor newly
  /// killed, link newly killed, capacity bound newly tightened, and per
  /// clear() that removed anything. A mutation call that leaves the map
  /// unchanged (re-killing a dead processor, capping above the current
  /// bound) does not bump it — applyFaultSpec uses this to detect
  /// duplicate specs.
  [[nodiscard]] std::int64_t mutations() const { return mutations_; }
  [[nodiscard]] int aliveProcCount() const { return grid_->size() - deadProcs_; }
  [[nodiscard]] bool anyFaults() const {
    return deadProcs_ > 0 || deadLinks_ > 0 || anyCapLimit_;
  }

  /// 0/1 per processor, indexed by ProcId — the mask WindowedRefs::
  /// withProcsMasked consumes to drop references issued by dead
  /// processors.
  [[nodiscard]] const std::vector<char>& deadProcMask() const {
    return deadProc_;
  }

  /// Canonical one-line summary ("procs=2 links=1 caps=0"), used in error
  /// messages and logs.
  [[nodiscard]] std::string summary() const;

 private:
  /// Dense slot of the directed link from `from` toward mesh direction
  /// 0=N 1=S 2=W 3=E (same convention as the NoC simulator).
  [[nodiscard]] std::size_t linkSlot(ProcId from, ProcId to) const;

  const Grid* grid_;
  std::vector<char> deadProc_;
  std::vector<char> deadLink_;       ///< grid.size() * 4, direction-indexed
  std::vector<std::int64_t> capLimit_;  ///< -1 = no fault bound
  int deadProcs_ = 0;
  int deadLinks_ = 0;
  bool anyCapLimit_ = false;
  std::int64_t mutations_ = 0;
};

/// Applies a FaultMap's per-processor bounds to an occupancy map: dead
/// processors get capacity 0, capacity-limited processors get their
/// reduced bound. Schedulers call this on every OccupancyMap they build
/// when scheduling against a faulted mesh.
void applyFaultCapacity(OccupancyMap& occupancy, const FaultMap& faults);

}  // namespace pimsched

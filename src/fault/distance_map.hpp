#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_map.hpp"
#include "pim/grid.hpp"
#include "pim/types.hpp"

namespace pimsched {

/// Memoized all-pairs hop distances over the *alive* sub-mesh of a
/// faulted grid: a BFS per source honoring dead processors and dead
/// directed links. This is the fault-aware generalization of the paper's
/// Manhattan metric — on a fault-free mesh every entry equals
/// grid.manhattan(a, b), so a CostModel carrying a DistanceMap of an
/// empty FaultMap reproduces the original cost model exactly.
///
/// Build cost is O(procs * (procs + links)) once per fault state; lookups
/// are one table read, so the table plugs into the existing serving-cost
/// memoization (cost/cost_cache.hpp) unchanged: a CenterCostCache is tied
/// to one CostModel, hence to one DistanceMap.
class DistanceMap {
 public:
  DistanceMap(const Grid& grid, const FaultMap& faults);

  [[nodiscard]] const Grid& grid() const { return *grid_; }
  [[nodiscard]] const FaultMap& faults() const { return *faults_; }

  [[nodiscard]] bool alive(ProcId p) const {
    return alive_[static_cast<std::size_t>(p)] != 0;
  }

  /// Fault-aware hop distance from a to b, or kInfiniteCost when either
  /// endpoint is dead or the alive sub-mesh has no a -> b path.
  [[nodiscard]] Cost hopDistance(ProcId a, ProcId b) const {
    const std::int32_t d =
        dist_[static_cast<std::size_t>(a) * static_cast<std::size_t>(size_) +
              static_cast<std::size_t>(b)];
    return d < 0 ? kInfiniteCost : static_cast<Cost>(d);
  }

  /// True when some alive pair cannot reach each other (the mesh is
  /// partitioned). Directed: a -> b unreachable counts even if b -> a is
  /// routable.
  [[nodiscard]] bool partitioned() const { return partitioned_; }

 private:
  const Grid* grid_;
  const FaultMap* faults_;
  int size_ = 0;
  std::vector<char> alive_;
  std::vector<std::int32_t> dist_;  ///< size*size, -1 = unreachable
  bool partitioned_ = false;
};

}  // namespace pimsched

#pragma once

#include <cstdint>

#include "pim/grid.hpp"
#include "trace/trace.hpp"

namespace pimsched {

/// Workload drift model: a schedule is computed against a *profiled* trace
/// but the production run differs. perturbTrace derives such a production
/// trace by re-assigning a fraction of the access records to a uniformly
/// random executing processor (deterministic for a fixed seed). Steps,
/// data and weights are untouched, so schedules stay shape-compatible.
///
/// `fraction` in [0, 1]: expected share of access records perturbed.
[[nodiscard]] ReferenceTrace perturbTrace(const ReferenceTrace& trace,
                                          const Grid& grid, double fraction,
                                          std::uint64_t seed = 42);

}  // namespace pimsched

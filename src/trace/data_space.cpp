#include "trace/data_space.hpp"

namespace pimsched {

int DataSpace::addArray(std::string name, int rows, int cols) {
  if (rows < 1 || cols < 1) {
    throw std::invalid_argument("DataSpace::addArray: dims must be >= 1");
  }
  arrays_.push_back(ArrayInfo{std::move(name), rows, cols, nextId_});
  nextId_ += static_cast<DataId>(rows) * static_cast<DataId>(cols);
  return static_cast<int>(arrays_.size()) - 1;
}

ElementRef DataSpace::element(DataId d) const {
  if (d < 0 || d >= nextId_) {
    throw std::out_of_range("DataSpace::element: id out of range");
  }
  // Arrays are registered with increasing baseId; linear scan is fine for
  // the handful of arrays a program declares.
  for (int a = numArrays() - 1; a >= 0; --a) {
    const ArrayInfo& info = arrays_[static_cast<std::size_t>(a)];
    if (d >= info.baseId) {
      const DataId off = d - info.baseId;
      return ElementRef{a, static_cast<int>(off) / info.cols,
                        static_cast<int>(off) % info.cols};
    }
  }
  throw std::logic_error("DataSpace::element: unreachable");
}

DataSpace DataSpace::singleSquare(int n, std::string name) {
  DataSpace ds;
  ds.addArray(std::move(name), n, n);
  return ds;
}

}  // namespace pimsched

#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace pimsched {

/// Text serialisation of a ReferenceTrace. Format (one record per line):
///
///   pimtrace v1
///   array <name> <rows> <cols>        (one per array, in id order)
///   access <step> <proc> <data> <weight>
///
/// Blank lines and lines starting with '#' are ignored. The loader
/// finalizes the trace.
void saveTrace(const ReferenceTrace& trace, std::ostream& os);
void saveTraceFile(const ReferenceTrace& trace, const std::string& path);

[[nodiscard]] ReferenceTrace loadTrace(std::istream& is);
[[nodiscard]] ReferenceTrace loadTraceFile(const std::string& path);

}  // namespace pimsched

#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "trace/trace.hpp"

namespace pimsched {

/// Text serialisation of a ReferenceTrace. Format (one record per line):
///
///   pimtrace v1
///   array <name> <rows> <cols>        (one per array, in id order)
///   access <step> <proc> <data> <weight>
///
/// Blank lines and lines starting with '#' are ignored. The loader
/// finalizes the trace.
void saveTrace(const ReferenceTrace& trace, std::ostream& os);
void saveTraceFile(const ReferenceTrace& trace, const std::string& path);

[[nodiscard]] ReferenceTrace loadTrace(std::istream& is);
[[nodiscard]] ReferenceTrace loadTraceFile(const std::string& path);

/// A 128-bit content digest. Used as the content-address of the serving
/// layer's result cache and as the integrity line in saved schedules.
/// Rendered as 32 lowercase hex characters, `hi` first.
struct Digest {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  [[nodiscard]] std::string hex() const;
  /// Parses the hex() rendering; nullopt on any malformed input.
  static std::optional<Digest> fromHex(std::string_view s);

  friend auto operator<=>(const Digest&, const Digest&) = default;
};

/// Canonical streaming digest over typed fields. The byte stream is fully
/// specified so digests are stable across platforms and releases:
///
///   * every integer is appended as 8 bytes, little-endian (signed values
///     in two's complement);
///   * a string is appended as its u64 length followed by its raw bytes;
///   * `lo` is FNV-1a (offset basis 0xcbf29ce484222325, prime
///     0x100000001b3) over the byte stream;
///   * `hi` is the same FNV-1a construction seeded with the offset basis
///     XOR 0x9e3779b97f4a7c15 and fed each byte XOR 0x5c, so the two words
///     disagree on any single-byte perturbation.
///
/// 128 bits keeps accidental collisions out of reach for a result cache;
/// this is not a cryptographic hash and offers no tamper resistance.
class DigestBuilder {
 public:
  DigestBuilder();

  void bytes(const void* data, std::size_t n);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void str(std::string_view s);

  [[nodiscard]] Digest digest() const { return Digest{hi_, lo_}; }

 private:
  std::uint64_t hi_ = 0;
  std::uint64_t lo_ = 0;
};

/// Canonical digest of a finalized trace (throws std::invalid_argument on
/// an unfinalized one — finalize() sorts and merges accesses, so logically
/// equal traces digest equally). Byte stream: str("pimtrace"),
/// u64(numArrays), then per array str(name), i64(rows), i64(cols); then
/// u64(numAccesses) and per access i64(step), i64(proc), i64(data),
/// i64(weight).
[[nodiscard]] Digest traceDigest(const ReferenceTrace& trace);

}  // namespace pimsched

#include "trace/windowed_refs.hpp"

#include <algorithm>
#include <stdexcept>

namespace pimsched {

WindowedRefs::WindowedRefs(const ReferenceTrace& trace,
                           const WindowPartition& windows, const Grid& grid)
    : numData_(trace.numData()),
      numWindows_(windows.numWindows()),
      numProcs_(grid.size()) {
  if (!trace.finalized()) {
    throw std::invalid_argument("WindowedRefs: trace must be finalized");
  }
  if (windows.numSteps() != trace.numSteps()) {
    throw std::invalid_argument(
        "WindowedRefs: window partition does not match trace step count");
  }

  // Tag each access with its window, then bucket by (data, window, proc).
  struct Tagged {
    DataId data;
    WindowId window;
    ProcId proc;
    Cost weight;
  };
  std::vector<Tagged> tagged;
  tagged.reserve(trace.accesses().size());
  for (const Access& a : trace.accesses()) {
    if (a.proc >= numProcs_) {
      throw std::invalid_argument(
          "WindowedRefs: access references a processor outside the grid");
    }
    tagged.push_back(Tagged{a.data, windows.windowOf(a.step), a.proc,
                            a.weight});
  }
  std::sort(tagged.begin(), tagged.end(),
            [](const Tagged& a, const Tagged& b) {
              if (a.data != b.data) return a.data < b.data;
              if (a.window != b.window) return a.window < b.window;
              return a.proc < b.proc;
            });

  const std::size_t numCells = static_cast<std::size_t>(numData_) *
                               static_cast<std::size_t>(numWindows_);
  offsets_.assign(numCells + 1, 0);
  dataWeight_.assign(static_cast<std::size_t>(numData_), 0);
  entries_.reserve(tagged.size());

  std::size_t i = 0;
  for (std::size_t cell = 0; cell < numCells; ++cell) {
    offsets_[cell] = entries_.size();
    const DataId d = static_cast<DataId>(cell / static_cast<std::size_t>(numWindows_));
    const WindowId w = static_cast<WindowId>(cell % static_cast<std::size_t>(numWindows_));
    while (i < tagged.size() && tagged[i].data == d &&
           tagged[i].window == w) {
      if (!entries_.empty() && entries_.size() > offsets_[cell] &&
          entries_.back().proc == tagged[i].proc) {
        entries_.back().weight += tagged[i].weight;
      } else {
        entries_.push_back(ProcWeight{tagged[i].proc, tagged[i].weight});
      }
      dataWeight_[static_cast<std::size_t>(d)] += tagged[i].weight;
      ++i;
    }
  }
  offsets_[numCells] = entries_.size();
}

WindowedRefs WindowedRefs::withProcsMasked(
    const std::vector<char>& deadMask) const {
  if (deadMask.size() != static_cast<std::size_t>(numProcs_)) {
    throw std::invalid_argument(
        "WindowedRefs::withProcsMasked: mask size must equal numProcs");
  }
  WindowedRefs out;
  out.numData_ = numData_;
  out.numWindows_ = numWindows_;
  out.numProcs_ = numProcs_;
  out.dataWeight_.assign(static_cast<std::size_t>(numData_), 0);
  const std::size_t numCells = static_cast<std::size_t>(numData_) *
                               static_cast<std::size_t>(numWindows_);
  out.offsets_.assign(numCells + 1, 0);
  out.entries_.reserve(entries_.size());
  for (std::size_t cell = 0; cell < numCells; ++cell) {
    out.offsets_[cell] = out.entries_.size();
    const DataId d =
        static_cast<DataId>(cell / static_cast<std::size_t>(numWindows_));
    for (std::size_t i = offsets_[cell]; i < offsets_[cell + 1]; ++i) {
      const ProcWeight& pw = entries_[i];
      if (deadMask[static_cast<std::size_t>(pw.proc)] != 0) continue;
      out.entries_.push_back(pw);
      out.dataWeight_[static_cast<std::size_t>(d)] += pw.weight;
    }
  }
  out.offsets_[numCells] = out.entries_.size();
  return out;
}

Cost WindowedRefs::windowWeight(DataId d, WindowId w) const {
  Cost sum = 0;
  for (const ProcWeight& pw : refs(d, w)) sum += pw.weight;
  return sum;
}

Cost WindowedRefs::dataWeight(DataId d) const {
  return dataWeight_[static_cast<std::size_t>(d)];
}

namespace {

// FNV-1a, mixed byte-wise (the same scheme as the cost-cache reference
// hash). A row contributes its length before its entries so that window
// boundaries are part of the digest.
void mixRow(std::uint64_t& h, std::span<const ProcWeight> row) {
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(row.size()));
  for (const ProcWeight& pw : row) {
    mix(static_cast<std::uint64_t>(pw.proc));
    mix(static_cast<std::uint64_t>(pw.weight));
  }
}

}  // namespace

std::uint64_t WindowedRefs::refsSignature(DataId d) const {
  std::uint64_t h = 1469598103934665603ull;
  for (WindowId w = 0; w < numWindows_; ++w) {
    mixRow(h, refs(d, w));
  }
  return h;
}

std::uint64_t WindowedRefs::refsSignature(DataId d, WindowId w) const {
  std::uint64_t h = 1469598103934665603ull;
  mixRow(h, refs(d, w));
  return h;
}

bool WindowedRefs::sameRefs(DataId a, DataId b) const {
  for (WindowId w = 0; w < numWindows_; ++w) {
    const std::span<const ProcWeight> ra = refs(a, w);
    const std::span<const ProcWeight> rb = refs(b, w);
    if (ra.size() != rb.size()) return false;
    if (!std::equal(ra.begin(), ra.end(), rb.begin())) return false;
  }
  return true;
}

bool WindowedRefs::sameRefsAs(const WindowedRefs& other, DataId d, WindowId w,
                              DataId od, WindowId ow) const {
  const std::span<const ProcWeight> ra = refs(d, w);
  const std::span<const ProcWeight> rb = other.refs(od, ow);
  if (ra.size() != rb.size()) return false;
  return std::equal(ra.begin(), ra.end(), rb.begin());
}

std::vector<ProcWeight> WindowedRefs::mergedRefs(DataId d, WindowId wBegin,
                                                 WindowId wEnd) const {
  if (wBegin < 0 || wEnd > numWindows_ || wBegin >= wEnd) {
    throw std::invalid_argument("WindowedRefs::mergedRefs: bad window range");
  }
  // k-way merge of sorted-by-proc lists via accumulation into a dense map;
  // the processor count is small (a grid), so a dense array is cheapest.
  std::vector<Cost> acc(static_cast<std::size_t>(numProcs_), 0);
  for (WindowId w = wBegin; w < wEnd; ++w) {
    for (const ProcWeight& pw : refs(d, w)) {
      acc[static_cast<std::size_t>(pw.proc)] += pw.weight;
    }
  }
  std::vector<ProcWeight> out;
  for (ProcId p = 0; p < numProcs_; ++p) {
    if (acc[static_cast<std::size_t>(p)] > 0) {
      out.push_back(ProcWeight{p, acc[static_cast<std::size_t>(p)]});
    }
  }
  return out;
}

}  // namespace pimsched

#pragma once

#include <vector>

#include "pim/types.hpp"

namespace pimsched {

/// Half-open range of execution steps [begin, end).
struct StepRange {
  StepId begin = 0;
  StepId end = 0;

  [[nodiscard]] StepId length() const { return end - begin; }
  friend auto operator<=>(const StepRange&, const StepRange&) = default;
};

/// A partition of the steps 0..numSteps-1 into consecutive execution
/// windows. The paper: "A sequence of parallel execution steps are grouped
/// into an execution window."
class WindowPartition {
 public:
  /// Builds from explicit window start steps. starts must begin with 0 and
  /// be strictly increasing; numSteps closes the last window.
  WindowPartition(std::vector<StepId> starts, StepId numSteps);

  /// Equal-size windows of `windowSize` steps (last may be shorter).
  static WindowPartition fixedSize(StepId numSteps, StepId windowSize);

  /// Exactly `count` windows of near-equal size.
  static WindowPartition evenCount(StepId numSteps, int count);

  /// One window per step.
  static WindowPartition perStep(StepId numSteps);

  /// One window covering everything.
  static WindowPartition whole(StepId numSteps);

  [[nodiscard]] int numWindows() const {
    return static_cast<int>(starts_.size());
  }
  [[nodiscard]] StepId numSteps() const { return numSteps_; }

  [[nodiscard]] StepRange window(WindowId w) const {
    const auto i = static_cast<std::size_t>(w);
    const StepId end =
        (i + 1 < starts_.size()) ? starts_[i + 1] : numSteps_;
    return StepRange{starts_[i], end};
  }

  /// Window containing a given step (binary search).
  [[nodiscard]] WindowId windowOf(StepId step) const;

 private:
  std::vector<StepId> starts_;
  StepId numSteps_ = 0;
};

}  // namespace pimsched

#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "pim/types.hpp"

namespace pimsched {

/// Location of a datum inside a named 2-D array.
struct ElementRef {
  int array = 0;  ///< index into DataSpace::arrays()
  int row = 0;
  int col = 0;

  friend auto operator<=>(const ElementRef&, const ElementRef&) = default;
};

/// Describes the set of program arrays whose elements are the schedulable
/// data. Every element of every array gets a dense DataId; multi-array
/// programs (e.g. C = A*A with arrays A and C) simply concatenate ranges.
class DataSpace {
 public:
  struct ArrayInfo {
    std::string name;
    int rows = 0;
    int cols = 0;
    DataId baseId = 0;  ///< id of element (0,0)
  };

  DataSpace() = default;

  /// Registers a rows x cols array; returns its array index.
  int addArray(std::string name, int rows, int cols);

  [[nodiscard]] const std::vector<ArrayInfo>& arrays() const {
    return arrays_;
  }
  [[nodiscard]] int numArrays() const {
    return static_cast<int>(arrays_.size());
  }

  /// Total number of data (sum of array sizes).
  [[nodiscard]] DataId numData() const { return nextId_; }

  /// DataId of element (row, col) of array `a`.
  [[nodiscard]] DataId id(int a, int row, int col) const {
    const ArrayInfo& info = arrays_.at(static_cast<std::size_t>(a));
    if (row < 0 || row >= info.rows || col < 0 || col >= info.cols) {
      throw std::out_of_range("DataSpace::id: element out of range");
    }
    return info.baseId + static_cast<DataId>(row * info.cols + col);
  }

  /// Inverse of id().
  [[nodiscard]] ElementRef element(DataId d) const;

  /// Convenience: a DataSpace with a single n x n array named "A".
  static DataSpace singleSquare(int n, std::string name = "A");

 private:
  std::vector<ArrayInfo> arrays_;
  DataId nextId_ = 0;
};

}  // namespace pimsched

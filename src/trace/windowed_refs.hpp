#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pim/grid.hpp"
#include "pim/types.hpp"
#include "trace/trace.hpp"
#include "trace/window.hpp"

namespace pimsched {

/// One entry of a processor reference string: processor `proc` references
/// the datum with aggregate volume `weight` inside one execution window.
struct ProcWeight {
  ProcId proc = 0;
  Cost weight = 0;

  friend auto operator<=>(const ProcWeight&, const ProcWeight&) = default;
};

/// The per-(datum, window) processor reference strings of an application —
/// the direct input of every scheduling algorithm in the paper. Stored in a
/// CSR layout: refs(d, w) is the sorted-by-proc list of (processor, weight)
/// pairs for datum d in window w.
class WindowedRefs {
 public:
  /// Aggregates a finalized trace under a window partition. The grid fixes
  /// the processor-id range; every access must reference a valid processor.
  WindowedRefs(const ReferenceTrace& trace, const WindowPartition& windows,
               const Grid& grid);

  [[nodiscard]] DataId numData() const { return numData_; }
  [[nodiscard]] int numWindows() const { return numWindows_; }
  [[nodiscard]] int numProcs() const { return numProcs_; }

  /// Reference string of datum d in window w (sorted by proc, weights > 0).
  [[nodiscard]] std::span<const ProcWeight> refs(DataId d, WindowId w) const {
    const std::size_t cell = cellIndex(d, w);
    return {entries_.data() + offsets_[cell],
            offsets_[cell + 1] - offsets_[cell]};
  }

  /// Total reference volume of datum d in window w.
  [[nodiscard]] Cost windowWeight(DataId d, WindowId w) const;

  /// Total reference volume of datum d across all windows.
  [[nodiscard]] Cost dataWeight(DataId d) const;

  /// Merged reference string of datum d over windows [wBegin, wEnd)
  /// (per-processor weights summed; sorted by proc). Used by SCDS (merge
  /// everything) and by window grouping.
  [[nodiscard]] std::vector<ProcWeight> mergedRefs(DataId d, WindowId wBegin,
                                                   WindowId wEnd) const;

  /// True if datum d is never referenced.
  [[nodiscard]] bool unreferenced(DataId d) const {
    return dataWeight(d) == 0;
  }

  /// FNV-1a digest over datum d's windowed reference strings (window
  /// boundaries included, so an access moving between windows changes the
  /// signature). Data with equal signatures are *candidates* for the same
  /// scheduling-equivalence class; confirm with sameRefs before merging.
  [[nodiscard]] std::uint64_t refsSignature(DataId d) const;

  /// FNV-1a digest over the single reference string of datum d in window w,
  /// using the same mixing scheme as the whole-datum signature (row length
  /// first, then each (proc, weight) pair). The incremental solver compares
  /// these per-window signatures across consecutive stream steps to locate
  /// the first changed layer; equal signatures are only *candidates* for
  /// equality — confirm with sameRefsAs before reusing solver state.
  [[nodiscard]] std::uint64_t refsSignature(DataId d, WindowId w) const;

  /// True if data a and b have byte-identical reference strings in every
  /// window — they pose the exact same per-datum scheduling subproblem.
  [[nodiscard]] bool sameRefs(DataId a, DataId b) const;

  /// True if datum d's reference string in window w is byte-identical to
  /// datum od's string in window ow of `other`. Cross-object variant of
  /// sameRefs used by the incremental change detector (signature prescreen,
  /// full compare on match to rule out FNV collisions).
  [[nodiscard]] bool sameRefsAs(const WindowedRefs& other, DataId d,
                                WindowId w, DataId od, WindowId ow) const;

  /// A copy with every reference issued by a masked processor dropped
  /// (deadMask[p] != 0 masks processor p; size must equal numProcs).
  /// Fault-aware scheduling feeds a FaultMap's dead-processor mask here:
  /// dead processors issue no references, so their demand must not steer
  /// center choice. An all-zero mask returns an identical copy.
  [[nodiscard]] WindowedRefs withProcsMasked(
      const std::vector<char>& deadMask) const;

 private:
  WindowedRefs() = default;

  [[nodiscard]] std::size_t cellIndex(DataId d, WindowId w) const {
    return static_cast<std::size_t>(d) * static_cast<std::size_t>(numWindows_) +
           static_cast<std::size_t>(w);
  }

  DataId numData_ = 0;
  int numWindows_ = 0;
  int numProcs_ = 0;
  std::vector<std::size_t> offsets_;  ///< numData*numWindows + 1 entries
  std::vector<ProcWeight> entries_;
  std::vector<Cost> dataWeight_;  ///< per-datum total volume
};

}  // namespace pimsched

#include "trace/trace.hpp"

#include <algorithm>
#include <stdexcept>

namespace pimsched {

void ReferenceTrace::add(StepId step, ProcId proc, DataId data, Cost weight) {
  if (step < 0) throw std::invalid_argument("Access step must be >= 0");
  if (proc < 0) throw std::invalid_argument("Access proc must be >= 0");
  if (data < 0 || data >= dataSpace_.numData()) {
    throw std::invalid_argument("Access data id out of DataSpace range");
  }
  if (weight <= 0) throw std::invalid_argument("Access weight must be > 0");
  accesses_.push_back(Access{step, proc, data, weight});
  finalized_ = false;
}

void ReferenceTrace::finalize() {
  if (finalized_) return;
  std::sort(accesses_.begin(), accesses_.end(),
            [](const Access& a, const Access& b) {
              if (a.step != b.step) return a.step < b.step;
              if (a.data != b.data) return a.data < b.data;
              return a.proc < b.proc;
            });
  // Merge duplicate (step, data, proc) triples by summing weights.
  std::size_t out = 0;
  for (std::size_t i = 0; i < accesses_.size(); ++i) {
    if (out > 0 && accesses_[out - 1].step == accesses_[i].step &&
        accesses_[out - 1].data == accesses_[i].data &&
        accesses_[out - 1].proc == accesses_[i].proc) {
      accesses_[out - 1].weight += accesses_[i].weight;
    } else {
      accesses_[out++] = accesses_[i];
    }
  }
  accesses_.resize(out);

  numSteps_ = accesses_.empty() ? 0 : accesses_.back().step + 1;
  totalWeight_ = 0;
  for (const Access& a : accesses_) totalWeight_ += a.weight;
  finalized_ = true;
}

}  // namespace pimsched

#include "trace/window.hpp"

#include <algorithm>
#include <stdexcept>

namespace pimsched {

WindowPartition::WindowPartition(std::vector<StepId> starts, StepId numSteps)
    : starts_(std::move(starts)), numSteps_(numSteps) {
  if (numSteps_ < 0) {
    throw std::invalid_argument("WindowPartition: numSteps must be >= 0");
  }
  if (numSteps_ == 0) {
    if (!starts_.empty()) {
      throw std::invalid_argument(
          "WindowPartition: empty trace cannot have windows");
    }
    return;
  }
  if (starts_.empty() || starts_.front() != 0) {
    throw std::invalid_argument("WindowPartition: first window must start at 0");
  }
  for (std::size_t i = 1; i < starts_.size(); ++i) {
    if (starts_[i] <= starts_[i - 1]) {
      throw std::invalid_argument(
          "WindowPartition: starts must be strictly increasing");
    }
  }
  if (starts_.back() >= numSteps_) {
    throw std::invalid_argument(
        "WindowPartition: last window start must precede numSteps");
  }
}

WindowPartition WindowPartition::fixedSize(StepId numSteps, StepId windowSize) {
  if (windowSize < 1) {
    throw std::invalid_argument("WindowPartition: windowSize must be >= 1");
  }
  std::vector<StepId> starts;
  for (StepId s = 0; s < numSteps; s += windowSize) starts.push_back(s);
  return WindowPartition(std::move(starts), numSteps);
}

WindowPartition WindowPartition::evenCount(StepId numSteps, int count) {
  if (count < 1) {
    throw std::invalid_argument("WindowPartition: count must be >= 1");
  }
  count = std::min<int>(count, std::max<StepId>(numSteps, 1));
  std::vector<StepId> starts;
  starts.reserve(static_cast<std::size_t>(count));
  for (int w = 0; w < count; ++w) {
    const StepId s = static_cast<StepId>(
        (static_cast<std::int64_t>(numSteps) * w) / count);
    if (starts.empty() || s > starts.back()) starts.push_back(s);
  }
  if (numSteps == 0) starts.clear();
  return WindowPartition(std::move(starts), numSteps);
}

WindowPartition WindowPartition::perStep(StepId numSteps) {
  return fixedSize(numSteps, 1);
}

WindowPartition WindowPartition::whole(StepId numSteps) {
  return numSteps == 0 ? WindowPartition({}, 0)
                       : WindowPartition({0}, numSteps);
}

WindowId WindowPartition::windowOf(StepId step) const {
  if (step < 0 || step >= numSteps_) {
    throw std::out_of_range("WindowPartition::windowOf: step out of range");
  }
  const auto it = std::upper_bound(starts_.begin(), starts_.end(), step);
  return static_cast<WindowId>(it - starts_.begin()) - 1;
}

}  // namespace pimsched

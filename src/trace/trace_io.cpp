#include "trace/trace_io.hpp"

#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

namespace pimsched {

namespace {

constexpr const char* kMagic = "pimtrace v1";

constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
/// Seed/byte perturbations decorrelating the hi word from the lo word.
constexpr std::uint64_t kHiSeedXor = 0x9e3779b97f4a7c15ull;
constexpr unsigned char kHiByteXor = 0x5c;

}  // namespace

std::string Digest::hex() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t word = i < 8 ? hi : lo;
    const int shift = 8 * (7 - (i % 8));
    const auto byte = static_cast<unsigned char>((word >> shift) & 0xFFu);
    out[static_cast<std::size_t>(2 * i)] = kHex[byte >> 4];
    out[static_cast<std::size_t>(2 * i + 1)] = kHex[byte & 0xF];
  }
  return out;
}

std::optional<Digest> Digest::fromHex(std::string_view s) {
  if (s.size() != 32) return std::nullopt;
  Digest d;
  for (int i = 0; i < 32; ++i) {
    const char c = s[static_cast<std::size_t>(i)];
    std::uint64_t nibble = 0;
    if (c >= '0' && c <= '9') nibble = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
    std::uint64_t& word = i < 16 ? d.hi : d.lo;
    word = (word << 4) | nibble;
  }
  return d;
}

DigestBuilder::DigestBuilder()
    : hi_(kFnvOffsetBasis ^ kHiSeedXor), lo_(kFnvOffsetBasis) {}

void DigestBuilder::bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    lo_ = (lo_ ^ p[i]) * kFnvPrime;
    hi_ = (hi_ ^ static_cast<unsigned char>(p[i] ^ kHiByteXor)) * kFnvPrime;
  }
}

void DigestBuilder::u64(std::uint64_t v) {
  unsigned char le[8];
  for (int i = 0; i < 8; ++i) {
    le[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFFu);
  }
  bytes(le, sizeof(le));
}

void DigestBuilder::str(std::string_view s) {
  u64(s.size());
  bytes(s.data(), s.size());
}

Digest traceDigest(const ReferenceTrace& trace) {
  if (!trace.finalized()) {
    throw std::invalid_argument(
        "traceDigest: trace must be finalized (finalize() canonicalises "
        "access order, making the digest content-addressed)");
  }
  DigestBuilder b;
  b.str("pimtrace");
  const auto& arrays = trace.dataSpace().arrays();
  b.u64(arrays.size());
  for (const DataSpace::ArrayInfo& a : arrays) {
    b.str(a.name);
    b.i64(a.rows);
    b.i64(a.cols);
  }
  b.u64(trace.accesses().size());
  for (const Access& acc : trace.accesses()) {
    b.i64(acc.step);
    b.i64(acc.proc);
    b.i64(acc.data);
    b.i64(acc.weight);
  }
  return b.digest();
}

void saveTrace(const ReferenceTrace& trace, std::ostream& os) {
  os << kMagic << '\n';
  for (const DataSpace::ArrayInfo& a : trace.dataSpace().arrays()) {
    os << "array " << a.name << ' ' << a.rows << ' ' << a.cols << '\n';
  }
  for (const Access& acc : trace.accesses()) {
    os << "access " << acc.step << ' ' << acc.proc << ' ' << acc.data << ' '
       << acc.weight << '\n';
  }
}

void saveTraceFile(const ReferenceTrace& trace, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("saveTraceFile: cannot open " + path);
  saveTrace(trace, os);
}

ReferenceTrace loadTrace(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kMagic) {
    throw std::runtime_error("loadTrace: missing 'pimtrace v1' header");
  }

  DataSpace ds;
  std::optional<ReferenceTrace> trace;
  int lineNo = 1;
  while (std::getline(is, line)) {
    ++lineNo;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "array") {
      if (trace.has_value()) {
        throw std::runtime_error(
            "loadTrace: 'array' after first 'access' (line " +
            std::to_string(lineNo) + ")");
      }
      std::string name;
      int rows = 0, cols = 0;
      if (!(ls >> name >> rows >> cols)) {
        throw std::runtime_error("loadTrace: malformed array line " +
                                 std::to_string(lineNo));
      }
      ds.addArray(name, rows, cols);
    } else if (kind == "access") {
      if (!trace.has_value()) trace.emplace(ds);
      StepId step = 0;
      ProcId proc = 0;
      DataId data = 0;
      Cost weight = 0;
      if (!(ls >> step >> proc >> data >> weight)) {
        throw std::runtime_error("loadTrace: malformed access line " +
                                 std::to_string(lineNo));
      }
      trace->add(step, proc, data, weight);
    } else {
      throw std::runtime_error("loadTrace: unknown record '" + kind +
                               "' at line " + std::to_string(lineNo));
    }
  }
  if (!trace.has_value()) trace.emplace(ds);
  trace->finalize();
  return std::move(*trace);
}

ReferenceTrace loadTraceFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("loadTraceFile: cannot open " + path);
  return loadTrace(is);
}

}  // namespace pimsched

#include "trace/trace_io.hpp"

#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

namespace pimsched {

namespace {
constexpr const char* kMagic = "pimtrace v1";
}  // namespace

void saveTrace(const ReferenceTrace& trace, std::ostream& os) {
  os << kMagic << '\n';
  for (const DataSpace::ArrayInfo& a : trace.dataSpace().arrays()) {
    os << "array " << a.name << ' ' << a.rows << ' ' << a.cols << '\n';
  }
  for (const Access& acc : trace.accesses()) {
    os << "access " << acc.step << ' ' << acc.proc << ' ' << acc.data << ' '
       << acc.weight << '\n';
  }
}

void saveTraceFile(const ReferenceTrace& trace, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("saveTraceFile: cannot open " + path);
  saveTrace(trace, os);
}

ReferenceTrace loadTrace(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kMagic) {
    throw std::runtime_error("loadTrace: missing 'pimtrace v1' header");
  }

  DataSpace ds;
  std::optional<ReferenceTrace> trace;
  int lineNo = 1;
  while (std::getline(is, line)) {
    ++lineNo;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "array") {
      if (trace.has_value()) {
        throw std::runtime_error(
            "loadTrace: 'array' after first 'access' (line " +
            std::to_string(lineNo) + ")");
      }
      std::string name;
      int rows = 0, cols = 0;
      if (!(ls >> name >> rows >> cols)) {
        throw std::runtime_error("loadTrace: malformed array line " +
                                 std::to_string(lineNo));
      }
      ds.addArray(name, rows, cols);
    } else if (kind == "access") {
      if (!trace.has_value()) trace.emplace(ds);
      StepId step = 0;
      ProcId proc = 0;
      DataId data = 0;
      Cost weight = 0;
      if (!(ls >> step >> proc >> data >> weight)) {
        throw std::runtime_error("loadTrace: malformed access line " +
                                 std::to_string(lineNo));
      }
      trace->add(step, proc, data, weight);
    } else {
      throw std::runtime_error("loadTrace: unknown record '" + kind +
                               "' at line " + std::to_string(lineNo));
    }
  }
  if (!trace.has_value()) trace.emplace(ds);
  trace->finalize();
  return std::move(*trace);
}

ReferenceTrace loadTraceFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("loadTraceFile: cannot open " + path);
  return loadTrace(is);
}

}  // namespace pimsched

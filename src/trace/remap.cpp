#include "trace/remap.hpp"

#include <stdexcept>

namespace pimsched {

bool isPermutation(const std::vector<ProcId>& perm) {
  std::vector<bool> seen(perm.size(), false);
  for (const ProcId p : perm) {
    if (p < 0 || p >= static_cast<ProcId>(perm.size()) ||
        seen[static_cast<std::size_t>(p)]) {
      return false;
    }
    seen[static_cast<std::size_t>(p)] = true;
  }
  return true;
}

ReferenceTrace applyProcPermutation(const ReferenceTrace& trace,
                                    const std::vector<ProcId>& perm) {
  if (!trace.finalized()) {
    throw std::invalid_argument("applyProcPermutation: trace not finalized");
  }
  if (!isPermutation(perm)) {
    throw std::invalid_argument("applyProcPermutation: not a permutation");
  }
  ReferenceTrace out(trace.dataSpace());
  for (const Access& a : trace.accesses()) {
    if (a.proc >= static_cast<ProcId>(perm.size())) {
      throw std::invalid_argument(
          "applyProcPermutation: trace references a processor outside the "
          "permutation");
    }
    out.add(a.step, perm[static_cast<std::size_t>(a.proc)], a.data,
            a.weight);
  }
  out.finalize();
  return out;
}

}  // namespace pimsched

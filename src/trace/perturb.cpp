#include "trace/perturb.hpp"

#include <stdexcept>

namespace pimsched {

ReferenceTrace perturbTrace(const ReferenceTrace& trace, const Grid& grid,
                            double fraction, std::uint64_t seed) {
  if (!trace.finalized()) {
    throw std::invalid_argument("perturbTrace: trace must be finalized");
  }
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("perturbTrace: fraction must be in [0, 1]");
  }
  std::uint64_t state = seed;
  const auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  const auto chance = [&next](double p) {
    return static_cast<double>(next() % 1'000'000) < p * 1'000'000.0;
  };

  ReferenceTrace out(trace.dataSpace());
  for (const Access& a : trace.accesses()) {
    ProcId proc = a.proc;
    if (chance(fraction)) {
      proc = static_cast<ProcId>(next() %
                                 static_cast<std::uint64_t>(grid.size()));
    }
    out.add(a.step, proc, a.data, a.weight);
  }
  out.finalize();
  return out;
}

}  // namespace pimsched

#pragma once

#include <vector>

#include "trace/trace.hpp"

namespace pimsched {

/// Re-labels the executing processors of a trace: access proc p becomes
/// perm[p]. perm must be a permutation of 0..numProcs-1 covering every
/// processor the trace references. Used to explore alternative iteration
/// partitions without regenerating the kernel (the paper's stage-1
/// "iteration partition" is exactly a choice of this labelling for a
/// fixed work decomposition).
[[nodiscard]] ReferenceTrace applyProcPermutation(
    const ReferenceTrace& trace, const std::vector<ProcId>& perm);

/// True iff perm is a permutation of 0..perm.size()-1.
[[nodiscard]] bool isPermutation(const std::vector<ProcId>& perm);

}  // namespace pimsched

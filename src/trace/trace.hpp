#pragma once

#include <vector>

#include "pim/types.hpp"
#include "trace/data_space.hpp"

namespace pimsched {

/// One aggregated data reference: at execution step `step`, processor `proc`
/// references datum `data` with total volume `weight` (number of accesses,
/// each moving one data unit). This is the unit of the paper's "processor
/// reference string".
struct Access {
  StepId step = 0;
  ProcId proc = 0;
  DataId data = 0;
  Cost weight = 1;

  friend auto operator<=>(const Access&, const Access&) = default;
};

/// A full data reference trace of an application: the multiset of accesses
/// over all execution steps, plus the DataSpace describing the data.
///
/// Invariants after finalize(): accesses sorted by (step, data, proc);
/// duplicate (step, data, proc) entries merged; numSteps() == max step + 1.
class ReferenceTrace {
 public:
  explicit ReferenceTrace(DataSpace dataSpace)
      : dataSpace_(std::move(dataSpace)) {}

  /// Appends a reference. Call finalize() before reading.
  void add(StepId step, ProcId proc, DataId data, Cost weight = 1);

  /// Sorts + merges duplicates; validates ids. Idempotent.
  void finalize();

  [[nodiscard]] bool finalized() const { return finalized_; }
  [[nodiscard]] const DataSpace& dataSpace() const { return dataSpace_; }
  [[nodiscard]] const std::vector<Access>& accesses() const {
    return accesses_;
  }
  [[nodiscard]] DataId numData() const { return dataSpace_.numData(); }
  [[nodiscard]] StepId numSteps() const { return numSteps_; }
  /// Sum of all access weights (total reference volume).
  [[nodiscard]] Cost totalWeight() const { return totalWeight_; }

 private:
  DataSpace dataSpace_;
  std::vector<Access> accesses_;
  StepId numSteps_ = 0;
  Cost totalWeight_ = 0;
  bool finalized_ = false;
};

}  // namespace pimsched

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "pim/grid.hpp"
#include "pim/types.hpp"

namespace pimsched {

/// Tracks how many data slots are in use on every processor, enforcing a
/// uniform per-processor capacity. This realises the paper's memory
/// constraint: "each processor in the processor array can hold a limited
/// number of data", with the experiments using capacity = 2x the minimum.
class OccupancyMap {
 public:
  /// capacityPerProc < 0 means unlimited.
  OccupancyMap(const Grid& grid, std::int64_t capacityPerProc);

  [[nodiscard]] std::int64_t capacity() const { return capacity_; }
  [[nodiscard]] bool unlimited() const { return capacity_ < 0; }

  /// Slots currently used on processor p.
  [[nodiscard]] std::int64_t used(ProcId p) const {
    return used_[static_cast<std::size_t>(p)];
  }

  /// Effective slot bound on processor p: the uniform capacity tightened
  /// by any per-processor limit. Negative means unlimited.
  [[nodiscard]] std::int64_t capacityOf(ProcId p) const {
    if (limits_.empty()) return capacity_;
    const std::int64_t limit = limits_[static_cast<std::size_t>(p)];
    if (limit < 0) return capacity_;
    return capacity_ < 0 ? limit : std::min(capacity_, limit);
  }

  /// Tightens the slot bound of processor p to `cap` (>= 0). Used by
  /// fault injection to model reduced (or zero, for dead processors)
  /// memory; the bound only ever shrinks via this call.
  void limitCapacity(ProcId p, std::int64_t cap);

  /// True if processor p can accept one more datum.
  [[nodiscard]] bool hasRoom(ProcId p) const {
    const std::int64_t cap = capacityOf(p);
    return cap < 0 || used(p) < cap;
  }

  /// Claims one slot on p. Returns false (and changes nothing) if full.
  bool tryPlace(ProcId p);

  /// Releases one slot on p. The slot must have been claimed.
  void release(ProcId p);

  /// Total slots claimed across all processors.
  [[nodiscard]] std::int64_t totalUsed() const { return totalUsed_; }

 private:
  std::int64_t capacity_;
  std::int64_t totalUsed_ = 0;
  std::vector<std::int64_t> used_;
  std::vector<std::int64_t> limits_;  ///< lazily sized; -1 = no per-proc bound
};

/// The experiment convention from the paper's evaluation: each processor's
/// memory is twice the minimum needed, i.e. 2 * ceil(numData / numProcs).
[[nodiscard]] std::int64_t paperCapacity(const Grid& grid,
                                         std::int64_t numData);

}  // namespace pimsched

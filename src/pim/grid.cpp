#include "pim/grid.hpp"

#include <ostream>
#include <stdexcept>
#include <string>

namespace pimsched {

std::ostream& operator<<(std::ostream& os, const Coord& c) {
  return os << '(' << c.row << ',' << c.col << ')';
}

Grid::Grid(int rows, int cols) : rows_(rows), cols_(cols) {
  if (rows < 1 || cols < 1) {
    throw std::invalid_argument("Grid dimensions must be >= 1");
  }
  // Validate the product in 64-bit before anyone computes size(): a grid
  // like 100000 x 100000 would overflow int (UB) and even a representable
  // product beyond kMaxProcs would make distance tables and occupancy
  // vectors attempt absurd allocations. Reject instead of crashing later.
  const long long procs =
      static_cast<long long>(rows) * static_cast<long long>(cols);
  if (procs > kMaxProcs) {
    throw std::invalid_argument(
        "Grid dimensions overflow: " + std::to_string(rows) + "x" +
        std::to_string(cols) + " exceeds the " + std::to_string(kMaxProcs) +
        " processor bound");
  }
}

std::vector<ProcId> Grid::neighbors(ProcId p) const {
  const Coord c = coord(p);
  std::vector<ProcId> out;
  out.reserve(4);
  if (c.row > 0) out.push_back(id(c.row - 1, c.col));
  if (c.row + 1 < rows_) out.push_back(id(c.row + 1, c.col));
  if (c.col > 0) out.push_back(id(c.row, c.col - 1));
  if (c.col + 1 < cols_) out.push_back(id(c.row, c.col + 1));
  return out;
}

}  // namespace pimsched

#include "pim/grid.hpp"

#include <ostream>
#include <stdexcept>

namespace pimsched {

std::ostream& operator<<(std::ostream& os, const Coord& c) {
  return os << '(' << c.row << ',' << c.col << ')';
}

Grid::Grid(int rows, int cols) : rows_(rows), cols_(cols) {
  if (rows < 1 || cols < 1) {
    throw std::invalid_argument("Grid dimensions must be >= 1");
  }
}

std::vector<ProcId> Grid::neighbors(ProcId p) const {
  const Coord c = coord(p);
  std::vector<ProcId> out;
  out.reserve(4);
  if (c.row > 0) out.push_back(id(c.row - 1, c.col));
  if (c.row + 1 < rows_) out.push_back(id(c.row + 1, c.col));
  if (c.col > 0) out.push_back(id(c.row, c.col - 1));
  if (c.col + 1 < cols_) out.push_back(id(c.row, c.col + 1));
  return out;
}

}  // namespace pimsched

#pragma once

#include <cassert>
#include <compare>
#include <cstdlib>
#include <iosfwd>
#include <vector>

#include "pim/types.hpp"

namespace pimsched {

/// A position in the 2-D processor grid.
struct Coord {
  int row = 0;
  int col = 0;

  friend auto operator<=>(const Coord&, const Coord&) = default;
};

std::ostream& operator<<(std::ostream& os, const Coord& c);

/// Upper bound on rows * cols. Keeps ProcId arithmetic comfortably inside
/// int32 and bounds the memory of per-processor tables; Grid's constructor
/// rejects larger products with std::invalid_argument.
inline constexpr long long kMaxProcs = 1LL << 24;

/// The PIM processor array: a rows x cols mesh with unit-cost links between
/// 4-neighbours and dimension-ordered (x-y) routing. This is the topology the
/// paper assumes throughout; the communication distance between two
/// processors is the Manhattan distance.
class Grid {
 public:
  /// Constructs a rows x cols grid. Both dimensions must be >= 1.
  Grid(int rows, int cols);

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  /// Number of processors.
  [[nodiscard]] int size() const { return rows_ * cols_; }

  /// Coordinate of a flattened processor id (row-major).
  [[nodiscard]] Coord coord(ProcId p) const {
    assert(contains(p));
    return Coord{p / cols_, p % cols_};
  }

  /// Flattened id of a coordinate.
  [[nodiscard]] ProcId id(Coord c) const {
    assert(contains(c));
    return static_cast<ProcId>(c.row * cols_ + c.col);
  }

  /// Flattened id of (row, col).
  [[nodiscard]] ProcId id(int row, int col) const {
    return id(Coord{row, col});
  }

  [[nodiscard]] bool contains(ProcId p) const { return p >= 0 && p < size(); }
  [[nodiscard]] bool contains(Coord c) const {
    return c.row >= 0 && c.row < rows_ && c.col >= 0 && c.col < cols_;
  }

  /// Hop distance under x-y routing: |dr| + |dc|.
  [[nodiscard]] int manhattan(ProcId a, ProcId b) const {
    const Coord ca = coord(a);
    const Coord cb = coord(b);
    return std::abs(ca.row - cb.row) + std::abs(ca.col - cb.col);
  }

  /// The 2-4 mesh neighbours of a processor, in N/S/W/E order.
  [[nodiscard]] std::vector<ProcId> neighbors(ProcId p) const;

 private:
  int rows_;
  int cols_;
};

}  // namespace pimsched

#include "pim/memory.hpp"

#include <cassert>

namespace pimsched {

OccupancyMap::OccupancyMap(const Grid& grid, std::int64_t capacityPerProc)
    : capacity_(capacityPerProc),
      used_(static_cast<std::size_t>(grid.size()), 0) {}

bool OccupancyMap::tryPlace(ProcId p) {
  if (!hasRoom(p)) return false;
  ++used_[static_cast<std::size_t>(p)];
  ++totalUsed_;
  return true;
}

void OccupancyMap::limitCapacity(ProcId p, std::int64_t cap) {
  assert(cap >= 0 && "per-processor limit must be >= 0");
  if (limits_.empty()) limits_.assign(used_.size(), -1);
  auto& limit = limits_[static_cast<std::size_t>(p)];
  if (limit < 0 || cap < limit) limit = cap;
}

void OccupancyMap::release(ProcId p) {
  auto& u = used_[static_cast<std::size_t>(p)];
  assert(u > 0 && "release without matching tryPlace");
  --u;
  --totalUsed_;
}

std::int64_t paperCapacity(const Grid& grid, std::int64_t numData) {
  const std::int64_t procs = grid.size();
  const std::int64_t minimum = (numData + procs - 1) / procs;
  return 2 * minimum;
}

}  // namespace pimsched

#pragma once

#include <cstdint>

/// Fundamental identifier and cost types shared across the library.
namespace pimsched {

/// Flattened (row-major) index of a processor in the PIM grid.
using ProcId = std::int32_t;

/// Identifier of one datum (one array element) in a DataSpace.
using DataId = std::int32_t;

/// Index of one parallel execution step.
using StepId = std::int32_t;

/// Index of one execution window (a contiguous run of steps).
using WindowId = std::int32_t;

/// Communication cost / data volume. 64-bit: costs are sums of
/// weight * distance over full traces and overflow 32 bits easily.
using Cost = std::int64_t;

/// Sentinel for "no processor".
inline constexpr ProcId kNoProc = -1;

/// Sentinel cost for unreachable / forbidden placements.
inline constexpr Cost kInfiniteCost = INT64_MAX / 4;

}  // namespace pimsched

#include "pim/routing.hpp"

namespace pimsched {

std::vector<ProcId> xyRoute(const Grid& grid, ProcId src, ProcId dst) {
  const Coord a = grid.coord(src);
  const Coord b = grid.coord(dst);
  std::vector<ProcId> path;
  path.reserve(static_cast<std::size_t>(grid.manhattan(src, dst)) + 1);

  Coord cur = a;
  path.push_back(grid.id(cur));
  while (cur.col != b.col) {
    cur.col += (b.col > cur.col) ? 1 : -1;
    path.push_back(grid.id(cur));
  }
  while (cur.row != b.row) {
    cur.row += (b.row > cur.row) ? 1 : -1;
    path.push_back(grid.id(cur));
  }
  return path;
}

std::vector<Link> xyLinks(const Grid& grid, ProcId src, ProcId dst) {
  const std::vector<ProcId> path = xyRoute(grid, src, dst);
  std::vector<Link> links;
  links.reserve(path.size() - 1);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    links.push_back(Link{path[i], path[i + 1]});
  }
  return links;
}

}  // namespace pimsched

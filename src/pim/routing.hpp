#pragma once

#include <vector>

#include "pim/grid.hpp"

namespace pimsched {

/// One directed hop between two adjacent processors.
struct Link {
  ProcId from = kNoProc;
  ProcId to = kNoProc;

  friend auto operator<=>(const Link&, const Link&) = default;
};

/// Enumerates the x-y (column first, then row) route from src to dst,
/// including both endpoints. Deterministic; length = manhattan + 1.
///
/// The paper's PIM array "uses the x-y routing method to communicate
/// between processors"; we route along the column axis first (the x axis of
/// a (row, col) coordinate), then the row axis.
[[nodiscard]] std::vector<ProcId> xyRoute(const Grid& grid, ProcId src,
                                          ProcId dst);

/// The directed links traversed by the x-y route from src to dst
/// (empty when src == dst).
[[nodiscard]] std::vector<Link> xyLinks(const Grid& grid, ProcId src,
                                        ProcId dst);

}  // namespace pimsched

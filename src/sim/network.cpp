#include "sim/network.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.hpp"

namespace pimsched {

SimReport& SimReport::operator+=(const SimReport& o) {
  // Latencies average over the combined message population.
  const double lat = avgLatency * static_cast<double>(numMessages) +
                     o.avgLatency * static_cast<double>(o.numMessages);
  totalHopVolume += o.totalHopVolume;
  makespan += o.makespan;  // windows execute back to back
  maxLinkLoad = std::max(maxLinkLoad, o.maxLinkLoad);
  numMessages += o.numMessages;
  avgLatency = numMessages > 0 ? lat / static_cast<double>(numMessages) : 0.0;
  return *this;
}

NocSimulator::NocSimulator(const Grid& grid, SwitchingMode mode)
    : grid_(&grid), mode_(mode) {}

NocSimulator::NocSimulator(const Grid& grid, const FaultMap& faults,
                           SwitchingMode mode)
    : grid_(&grid), faults_(&faults), mode_(mode) {}

std::vector<Link> NocSimulator::routeLinks(ProcId src, ProcId dst) const {
  if (faults_ == nullptr || !faults_->anyFaults()) {
    return xyLinks(*grid_, src, dst);
  }
  return faultLinks(*grid_, *faults_, src, dst);
}

std::vector<ProcId> NocSimulator::routeNodes(ProcId src, ProcId dst) const {
  if (faults_ == nullptr || !faults_->anyFaults()) {
    return xyRoute(*grid_, src, dst);
  }
  return faultRoute(*grid_, *faults_, src, dst);
}

std::size_t NocSimulator::linkIndex(const Link& link) const {
  // 4 direction slots per processor: 0=N 1=S 2=W 3=E relative to `from`.
  const Coord a = grid_->coord(link.from);
  const Coord b = grid_->coord(link.to);
  int dir = -1;
  if (b.row == a.row - 1 && b.col == a.col) dir = 0;
  else if (b.row == a.row + 1 && b.col == a.col) dir = 1;
  else if (b.col == a.col - 1 && b.row == a.row) dir = 2;
  else if (b.col == a.col + 1 && b.row == a.row) dir = 3;
  if (dir < 0) throw std::invalid_argument("linkIndex: not a mesh link");
  return static_cast<std::size_t>(link.from) * 4 +
         static_cast<std::size_t>(dir);
}

std::vector<std::int64_t> NocSimulator::procTraffic(
    std::span<const Message> messages) const {
  std::vector<std::int64_t> traffic(static_cast<std::size_t>(grid_->size()),
                                    0);
  for (const Message& msg : messages) {
    for (const ProcId p : routeNodes(msg.src, msg.dst)) {
      traffic[static_cast<std::size_t>(p)] += msg.volume;
    }
  }
  return traffic;
}

SimReport NocSimulator::run(std::span<const Message> messages,
                            std::vector<std::int64_t>& freeAt,
                            std::int64_t latencyOrigin) const {
  PIMSCHED_SCOPED_TIMER("noc.simulate");
  SimReport report;
  std::vector<std::int64_t> load(
      static_cast<std::size_t>(grid_->size()) * 4, 0);

  double latencySum = 0.0;
  for (const Message& msg : messages) {
    if (msg.volume <= 0) {
      throw std::invalid_argument("NocSimulator: message volume must be > 0");
    }
    const std::vector<Link> links = routeLinks(msg.src, msg.dst);
    report.totalHopVolume += msg.volume * static_cast<Cost>(links.size());
    // Zero-link (self) messages "arrive" at the batch origin.
    std::int64_t arrival = links.empty() ? latencyOrigin : 0;
    if (mode_ == SwitchingMode::kStoreAndForward) {
      std::int64_t t = 0;  // whole message per hop
      for (const Link& link : links) {
        const std::size_t li = linkIndex(link);
        const std::int64_t start = std::max(t, freeAt[li]);
        t = start + msg.volume;
        freeAt[li] = t;
        load[li] += msg.volume;
      }
      if (!links.empty()) arrival = t;
    } else {
      // Cut-through: the head advances one link per cycle once the link
      // is free; each link then streams the full volume.
      std::int64_t head = 0;  // earliest cycle the head can use next link
      for (const Link& link : links) {
        const std::size_t li = linkIndex(link);
        const std::int64_t start = std::max(head, freeAt[li]);
        freeAt[li] = start + msg.volume;
        load[li] += msg.volume;
        head = start + 1;
        arrival = start + msg.volume;
      }
    }
    report.makespan = std::max(report.makespan, arrival);
    latencySum += static_cast<double>(arrival - latencyOrigin);
    ++report.numMessages;
  }
  report.maxLinkLoad = *std::max_element(load.begin(), load.end());
  report.avgLatency =
      report.numMessages > 0
          ? latencySum / static_cast<double>(report.numMessages)
          : 0.0;
  PIMSCHED_COUNTER_ADD("noc.messages", report.numMessages);
  PIMSCHED_COUNTER_ADD("noc.hop_volume", report.totalHopVolume);
  return report;
}

SimReport NocSimulator::simulate(std::span<const Message> messages) const {
  std::vector<std::int64_t> freeAt(
      static_cast<std::size_t>(grid_->size()) * 4, 0);
  return run(messages, freeAt, 0);
}

NocSession::NocSession(const NocSimulator& sim)
    : sim_(&sim),
      freeAt_(static_cast<std::size_t>(sim.grid_->size()) * 4, 0) {}

SimReport NocSession::simulateWindow(std::span<const Message> messages) {
  SimReport report = sim_->run(messages, freeAt_, lastArrival_);
  // run() reports the absolute latest arrival; convert to this window's
  // increment of the global completion cycle (an early-finishing window
  // contributes 0 — it hid entirely behind earlier traffic).
  const std::int64_t completed = std::max(lastArrival_, report.makespan);
  report.makespan = completed - lastArrival_;
  lastArrival_ = completed;
  return report;
}

}  // namespace pimsched

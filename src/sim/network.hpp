#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pim/grid.hpp"
#include "pim/routing.hpp"
#include "pim/types.hpp"

namespace pimsched {

/// One point-to-point transfer injected into the mesh.
struct Message {
  ProcId src = 0;
  ProcId dst = 0;
  Cost volume = 1;  ///< data units; each unit takes one cycle per link
};

/// Outcome of simulating a batch of messages.
struct SimReport {
  Cost totalHopVolume = 0;   ///< sum of volume * hops — the analytic metric
  std::int64_t makespan = 0; ///< cycle the last unit arrives
  std::int64_t maxLinkLoad = 0;  ///< busiest link's total volume
  std::int64_t numMessages = 0;
  double avgLatency = 0.0;

  SimReport& operator+=(const SimReport& o);
};

/// How a message advances through the mesh.
enum class SwitchingMode {
  /// The whole message is received before the next hop begins; an
  /// uncontended transfer takes volume * hops cycles.
  kStoreAndForward,
  /// Virtual cut-through: the head flit advances one link per cycle and
  /// the body streams behind it; an uncontended transfer takes
  /// hops + volume - 1 cycles. Each link is still occupied for `volume`
  /// cycles, so loads and hop-volumes match store-and-forward.
  kCutThrough,
};

/// Discrete-event simulator of the PIM mesh with x-y routing and one data
/// unit per link per cycle. The paper evaluates only the analytic metric
/// (volume * Manhattan distance); this simulator reproduces that number
/// exactly as totalHopVolume and additionally exposes the contention
/// (makespan, link load) the analytic model hides.
class NocSimulator {
 public:
  explicit NocSimulator(const Grid& grid,
                        SwitchingMode mode = SwitchingMode::kStoreAndForward);

  /// Simulates one batch (all messages available at cycle 0, injected in
  /// the given order; each link serves transfers FIFO).
  [[nodiscard]] SimReport simulate(std::span<const Message> messages) const;

  [[nodiscard]] SwitchingMode mode() const { return mode_; }

  /// Total traffic volume each processor sources + sinks + forwards under
  /// x-y routing of `messages` (one entry per processor). Feed into
  /// renderHeatmap to visualise hot routers.
  [[nodiscard]] std::vector<std::int64_t> procTraffic(
      std::span<const Message> messages) const;

 private:
  const Grid* grid_;
  SwitchingMode mode_;
  /// Dense id for a directed link from `from` toward mesh direction d.
  [[nodiscard]] std::size_t linkIndex(const Link& link) const;
};

}  // namespace pimsched

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fault/fault_map.hpp"
#include "fault/fault_route.hpp"
#include "pim/grid.hpp"
#include "pim/routing.hpp"
#include "pim/types.hpp"

namespace pimsched {

/// One point-to-point transfer injected into the mesh.
struct Message {
  ProcId src = 0;
  ProcId dst = 0;
  Cost volume = 1;  ///< data units; each unit takes one cycle per link
};

/// Outcome of simulating a batch of messages.
struct SimReport {
  Cost totalHopVolume = 0;   ///< sum of volume * hops — the analytic metric
  std::int64_t makespan = 0; ///< cycle the last unit arrives
  std::int64_t maxLinkLoad = 0;  ///< busiest link's total volume
  std::int64_t numMessages = 0;
  double avgLatency = 0.0;

  SimReport& operator+=(const SimReport& o);
};

/// How a message advances through the mesh.
enum class SwitchingMode {
  /// The whole message is received before the next hop begins; an
  /// uncontended transfer takes volume * hops cycles.
  kStoreAndForward,
  /// Virtual cut-through: the head flit advances one link per cycle and
  /// the body streams behind it; an uncontended transfer takes
  /// hops + volume - 1 cycles. Each link is still occupied for `volume`
  /// cycles, so loads and hop-volumes match store-and-forward.
  kCutThrough,
};

class NocSession;

/// Discrete-event simulator of the PIM mesh with x-y routing and one data
/// unit per link per cycle. The paper evaluates only the analytic metric
/// (volume * Manhattan distance); this simulator reproduces that number
/// exactly as totalHopVolume and additionally exposes the contention
/// (makespan, link load) the analytic model hides.
class NocSimulator {
 public:
  explicit NocSimulator(const Grid& grid,
                        SwitchingMode mode = SwitchingMode::kStoreAndForward);

  /// Simulates over a faulted topology: messages route via faultRoute
  /// (x-y where alive, BFS detour otherwise), so traffic avoids dead
  /// processors and links. `faults` must outlive the simulator; with an
  /// empty FaultMap results are identical to the healthy-mesh simulator.
  /// simulate()/procTraffic throw UnreachableError when a message's
  /// endpoints cannot communicate.
  NocSimulator(const Grid& grid, const FaultMap& faults,
               SwitchingMode mode = SwitchingMode::kStoreAndForward);

  /// Simulates one batch (all messages available at cycle 0, injected in
  /// the given order; each link serves transfers FIFO) on an idle network.
  /// For continuous multi-window operation where link state must carry
  /// over, use NocSession instead.
  [[nodiscard]] SimReport simulate(std::span<const Message> messages) const;

  [[nodiscard]] SwitchingMode mode() const { return mode_; }

  /// Total traffic volume each processor sources + sinks + forwards under
  /// x-y routing of `messages` (one entry per processor). Feed into
  /// renderHeatmap to visualise hot routers.
  [[nodiscard]] std::vector<std::int64_t> procTraffic(
      std::span<const Message> messages) const;

 private:
  friend class NocSession;
  const Grid* grid_;
  const FaultMap* faults_ = nullptr;
  SwitchingMode mode_;
  /// Dense id for a directed link from `from` toward mesh direction d.
  [[nodiscard]] std::size_t linkIndex(const Link& link) const;
  /// The links a message traverses: x-y on a healthy mesh, fault-aware
  /// detour otherwise.
  [[nodiscard]] std::vector<Link> routeLinks(ProcId src, ProcId dst) const;
  /// Node sequence of the same route.
  [[nodiscard]] std::vector<ProcId> routeNodes(ProcId src, ProcId dst) const;
  /// Shared core: simulates one batch against the given per-link busy-until
  /// state (mutated in place). Message k is appended to each of its links'
  /// FIFO queues, so carried-in `freeAt` values delay it exactly like
  /// earlier messages of the same batch do. The returned report's makespan
  /// is the ABSOLUTE latest arrival cycle (0 for an empty batch); per-
  /// message latency is measured relative to `latencyOrigin`.
  SimReport run(std::span<const Message> messages,
                std::vector<std::int64_t>& freeAt,
                std::int64_t latencyOrigin) const;
};

/// Stateful multi-window simulation: link busy-state persists from window
/// to window, modelling continuous operation with no drain barrier between
/// windows. Later windows queue behind earlier traffic on shared links and
/// stream into idle capacity on free ones, so the summed per-window
/// makespans equal the true end-to-end completion cycle of the whole
/// message stream (<= the independent-windows sum, which assumes the NoC
/// fully drains at every boundary). See docs/trace-format.md.
class NocSession {
 public:
  explicit NocSession(const NocSimulator& sim);

  /// Simulates the next window's batch on top of the accumulated link
  /// state. makespan is this window's increment of the global completion
  /// cycle; avgLatency is measured from the window's nominal start (the
  /// previous completion cycle) and can be negative when the traffic was
  /// absorbed entirely by idle link capacity of earlier windows.
  SimReport simulateWindow(std::span<const Message> messages);

  /// Global completion cycle across every window simulated so far.
  [[nodiscard]] std::int64_t elapsed() const { return lastArrival_; }

 private:
  const NocSimulator* sim_;
  std::vector<std::int64_t> freeAt_;
  std::int64_t lastArrival_ = 0;
};

}  // namespace pimsched

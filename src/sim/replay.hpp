#pragma once

#include <vector>

#include "core/schedule.hpp"
#include "cost/cost_model.hpp"
#include "sim/network.hpp"
#include "trace/windowed_refs.hpp"

namespace pimsched {

/// Per-window simulation outcome plus the aggregate.
struct ReplayReport {
  SimReport total;
  std::vector<SimReport> perWindow;
};

/// How replaySchedule advances the network between windows.
struct ReplayOptions {
  SwitchingMode mode = SwitchingMode::kStoreAndForward;
  /// false (default): every window is simulated on an idle network and the
  /// summed makespan assumes the NoC fully drains at each boundary — the
  /// conservative, window-independent model matching the paper's analytic
  /// metric. true: link state carries across windows via NocSession
  /// (continuous operation, no drain barrier); the summed makespan is then
  /// the exact end-to-end completion cycle of the whole message stream.
  /// See docs/trace-format.md ("Replay window semantics").
  bool carryLinkState = false;
  /// Independent windows (carryLinkState == false) are simulated on the
  /// shared thread pool when threads != 1 (0 = hardware concurrency); the
  /// report is identical for every thread count. Carried link state is
  /// inherently sequential and ignores this knob.
  unsigned threads = 1;
};

/// Migration vs. reference breakdown of one window's injected traffic.
struct WindowTraffic {
  std::int64_t migrationMessages = 0;
  Cost migrationVolume = 0;
  std::int64_t referenceMessages = 0;
  Cost referenceVolume = 0;
  /// Migrations dropped under the out-of-band recovery rule (fault-aware
  /// models only): the source center is dead or has no alive route to the
  /// destination, so the datum is restored off-mesh and injects nothing.
  std::int64_t recoveredMigrations = 0;
};

/// Materialises a schedule's traffic and replays it through the NoC
/// simulator window by window:
///  * every reference (d, w, proc, weight) with proc != center(d, w)
///    becomes a message center -> proc of volume weight;
///  * every center change between windows w and w+1 becomes a migration
///    message of volume CostParams::moveVolume.
/// total.totalHopVolume therefore equals the analytic evaluator's total
/// cost exactly under the default hopCost = 1 (invariant 10 in DESIGN.md);
/// for other hop costs it equals total / hopCost.
///
/// A fault-aware model replays over the faulted topology: the simulator
/// routes around dead processors/links (NocSimulator's fault constructor),
/// migrations with no alive route are dropped under the out-of-band
/// recovery rule (see WindowTraffic::recoveredMigrations), and a schedule
/// that serves a reference across a partition makes the replay throw
/// UnreachableError — replay is the executable check that a schedule
/// actually runs on the faulted hardware.
[[nodiscard]] ReplayReport replaySchedule(const DataSchedule& schedule,
                                          const WindowedRefs& refs,
                                          const CostModel& model,
                                          const ReplayOptions& options);

/// Back-compat convenience: independent windows in the given mode.
[[nodiscard]] ReplayReport replaySchedule(
    const DataSchedule& schedule, const WindowedRefs& refs,
    const CostModel& model,
    SwitchingMode mode = SwitchingMode::kStoreAndForward);

/// The messages one window of a schedule injects (reference traffic plus
/// the migrations arriving into this window) — the exact batch
/// replaySchedule simulates, exposed for custom analyses (link heatmaps,
/// alternative network models). When `traffic` is non-null it receives the
/// migration/reference breakdown of the returned batch.
[[nodiscard]] std::vector<Message> windowMessages(const DataSchedule& schedule,
                                                  const WindowedRefs& refs,
                                                  const CostModel& model,
                                                  WindowId w,
                                                  WindowTraffic* traffic);

[[nodiscard]] std::vector<Message> windowMessages(const DataSchedule& schedule,
                                                  const WindowedRefs& refs,
                                                  const CostModel& model,
                                                  WindowId w);

}  // namespace pimsched

#pragma once

#include <vector>

#include "core/schedule.hpp"
#include "cost/cost_model.hpp"
#include "sim/network.hpp"
#include "trace/windowed_refs.hpp"

namespace pimsched {

/// Per-window simulation outcome plus the aggregate.
struct ReplayReport {
  SimReport total;
  std::vector<SimReport> perWindow;
};

/// Materialises a schedule's traffic and replays it through the NoC
/// simulator window by window:
///  * every reference (d, w, proc, weight) with proc != center(d, w)
///    becomes a message center -> proc of volume weight;
///  * every center change between windows w and w+1 becomes a migration
///    message of volume CostParams::moveVolume.
/// total.totalHopVolume therefore equals the analytic evaluator's total
/// cost exactly under the default hopCost = 1 (invariant 10 in DESIGN.md);
/// for other hop costs it equals total / hopCost.
[[nodiscard]] ReplayReport replaySchedule(
    const DataSchedule& schedule, const WindowedRefs& refs,
    const CostModel& model,
    SwitchingMode mode = SwitchingMode::kStoreAndForward);

/// The messages one window of a schedule injects (reference traffic plus
/// the migrations arriving into this window) — the exact batch
/// replaySchedule simulates, exposed for custom analyses (link heatmaps,
/// alternative network models).
[[nodiscard]] std::vector<Message> windowMessages(const DataSchedule& schedule,
                                                  const WindowedRefs& refs,
                                                  const CostModel& model,
                                                  WindowId w);

}  // namespace pimsched

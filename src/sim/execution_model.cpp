#include "sim/execution_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/replay.hpp"

namespace pimsched {

ExecutionReport estimateExecutionTime(const DataSchedule& schedule,
                                      const WindowedRefs& refs,
                                      const CostModel& model,
                                      const ExecutionParams& params) {
  if (schedule.numData() != refs.numData() ||
      schedule.numWindows() != refs.numWindows()) {
    throw std::invalid_argument("estimateExecutionTime: shape mismatch");
  }
  if (params.cyclesPerAccess < 0.0) {
    throw std::invalid_argument(
        "estimateExecutionTime: negative cyclesPerAccess");
  }

  const ReplayReport replay =
      replaySchedule(schedule, refs, model, params.switching);

  ExecutionReport report;
  report.perWindow.reserve(static_cast<std::size_t>(refs.numWindows()));
  std::vector<double> load(static_cast<std::size_t>(refs.numProcs()));

  for (WindowId w = 0; w < refs.numWindows(); ++w) {
    std::fill(load.begin(), load.end(), 0.0);
    for (DataId d = 0; d < refs.numData(); ++d) {
      for (const ProcWeight& pw : refs.refs(d, w)) {
        load[static_cast<std::size_t>(pw.proc)] +=
            static_cast<double>(pw.weight) * params.cyclesPerAccess;
      }
    }
    const auto compute = static_cast<std::int64_t>(
        std::llround(*std::max_element(load.begin(), load.end())));
    const std::int64_t comm =
        replay.perWindow[static_cast<std::size_t>(w)].makespan;
    const std::int64_t windowTime = params.overlapComputeWithComm
                                        ? std::max(compute, comm)
                                        : compute + comm;
    report.computeTime += compute;
    report.commTime += comm;
    report.totalTime += windowTime;
    report.perWindow.push_back(windowTime);
  }
  return report;
}

}  // namespace pimsched

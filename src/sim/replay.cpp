#include "sim/replay.hpp"

#include <stdexcept>
#include <string>

#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace pimsched {

ReplayReport replaySchedule(const DataSchedule& schedule,
                            const WindowedRefs& refs, const CostModel& model,
                            const ReplayOptions& options) {
  if (schedule.numData() != refs.numData() ||
      schedule.numWindows() != refs.numWindows()) {
    throw std::invalid_argument("replaySchedule: shape mismatch");
  }
  PIMSCHED_SCOPED_TIMER("replay.schedule");
  const NocSimulator sim =
      model.faults() != nullptr
          ? NocSimulator(model.grid(), *model.faults(), options.mode)
          : NocSimulator(model.grid(), options.mode);
  NocSession session(sim);
  const auto W = static_cast<std::size_t>(refs.numWindows());
  ReplayReport report;
  report.perWindow.resize(W);
  std::vector<WindowTraffic> traffic(W);

  if (options.carryLinkState) {
    // Link state flows across window boundaries: inherently sequential.
    for (WindowId w = 0; w < refs.numWindows(); ++w) {
      const std::vector<Message> messages = windowMessages(
          schedule, refs, model, w, &traffic[static_cast<std::size_t>(w)]);
      report.perWindow[static_cast<std::size_t>(w)] =
          session.simulateWindow(messages);
    }
  } else {
    // Independent windows replay on an idle network each — fan the message
    // build + simulation out per window.
    parallelFor(refs.numWindows(), options.threads, [&](std::int64_t w) {
      const std::vector<Message> messages =
          windowMessages(schedule, refs, model, static_cast<WindowId>(w),
                         &traffic[static_cast<std::size_t>(w)]);
      report.perWindow[static_cast<std::size_t>(w)] = sim.simulate(messages);
    });
  }

  // Aggregate + metrics in window order so totals (including the
  // avgLatency double arithmetic) are identical for every thread count.
  obs::Registry& registry = obs::Registry::instance();
  for (std::size_t w = 0; w < W; ++w) {
    report.total += report.perWindow[w];
    PIMSCHED_COUNTER_ADD("replay.windows", 1);
    PIMSCHED_COUNTER_ADD("replay.migration_msgs",
                         traffic[w].migrationMessages);
    PIMSCHED_COUNTER_ADD("replay.migration_volume",
                         traffic[w].migrationVolume);
    PIMSCHED_COUNTER_ADD("replay.reference_msgs",
                         traffic[w].referenceMessages);
    PIMSCHED_COUNTER_ADD("replay.reference_volume",
                         traffic[w].referenceVolume);
    PIMSCHED_COUNTER_ADD("replay.recovered_migrations",
                         traffic[w].recoveredMigrations);
    if (registry.tracingEnabled()) {
      // Per-window phase event: migration vs. reference traffic plus the
      // simulated outcome, visible on the chrome-trace timeline.
      registry.recordInstant(
          "replay.window",
          "{\"window\":" + std::to_string(w) +
              ",\"migration_msgs\":" +
              std::to_string(traffic[w].migrationMessages) +
              ",\"migration_volume\":" +
              std::to_string(traffic[w].migrationVolume) +
              ",\"reference_msgs\":" +
              std::to_string(traffic[w].referenceMessages) +
              ",\"reference_volume\":" +
              std::to_string(traffic[w].referenceVolume) + ",\"makespan\":" +
              std::to_string(report.perWindow[w].makespan) + "}");
    }
  }
  return report;
}

ReplayReport replaySchedule(const DataSchedule& schedule,
                            const WindowedRefs& refs, const CostModel& model,
                            SwitchingMode mode) {
  ReplayOptions options;
  options.mode = mode;
  return replaySchedule(schedule, refs, model, options);
}

std::vector<Message> windowMessages(const DataSchedule& schedule,
                                    const WindowedRefs& refs,
                                    const CostModel& model, WindowId w,
                                    WindowTraffic* traffic) {
  std::vector<Message> messages;
  for (DataId d = 0; d < refs.numData(); ++d) {
    const ProcId center = schedule.center(d, w);
    // Migration into this window happens before its references.
    if (w > 0) {
      const ProcId prev = schedule.center(d, w - 1);
      if (prev != center && model.params().moveVolume > 0) {
        if (model.faultAware() &&
            (model.centerForbidden(prev) ||
             model.hopDistance(prev, center) >= kInfiniteCost)) {
          // Out-of-band recovery: the source is dead or unroutable, so the
          // datum is restored off-mesh and injects no migration traffic.
          if (traffic != nullptr) ++traffic->recoveredMigrations;
        } else {
          messages.push_back(Message{prev, center, model.params().moveVolume});
          if (traffic != nullptr) {
            ++traffic->migrationMessages;
            traffic->migrationVolume += model.params().moveVolume;
          }
        }
      }
    }
    for (const ProcWeight& pw : refs.refs(d, w)) {
      if (pw.proc != center) {
        messages.push_back(Message{center, pw.proc, pw.weight});
        if (traffic != nullptr) {
          ++traffic->referenceMessages;
          traffic->referenceVolume += pw.weight;
        }
      }
    }
  }
  return messages;
}

std::vector<Message> windowMessages(const DataSchedule& schedule,
                                    const WindowedRefs& refs,
                                    const CostModel& model, WindowId w) {
  return windowMessages(schedule, refs, model, w, nullptr);
}

}  // namespace pimsched

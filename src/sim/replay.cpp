#include "sim/replay.hpp"

#include <stdexcept>
#include <string>

#include "obs/obs.hpp"

namespace pimsched {

ReplayReport replaySchedule(const DataSchedule& schedule,
                            const WindowedRefs& refs, const CostModel& model,
                            const ReplayOptions& options) {
  if (schedule.numData() != refs.numData() ||
      schedule.numWindows() != refs.numWindows()) {
    throw std::invalid_argument("replaySchedule: shape mismatch");
  }
  PIMSCHED_SCOPED_TIMER("replay.schedule");
  const NocSimulator sim(model.grid(), options.mode);
  NocSession session(sim);
  ReplayReport report;
  report.perWindow.reserve(static_cast<std::size_t>(refs.numWindows()));

  obs::Registry& registry = obs::Registry::instance();
  for (WindowId w = 0; w < refs.numWindows(); ++w) {
    WindowTraffic traffic;
    const std::vector<Message> messages =
        windowMessages(schedule, refs, model, w, &traffic);
    report.perWindow.push_back(options.carryLinkState
                                   ? session.simulateWindow(messages)
                                   : sim.simulate(messages));
    report.total += report.perWindow.back();

    PIMSCHED_COUNTER_ADD("replay.windows", 1);
    PIMSCHED_COUNTER_ADD("replay.migration_msgs", traffic.migrationMessages);
    PIMSCHED_COUNTER_ADD("replay.migration_volume", traffic.migrationVolume);
    PIMSCHED_COUNTER_ADD("replay.reference_msgs", traffic.referenceMessages);
    PIMSCHED_COUNTER_ADD("replay.reference_volume", traffic.referenceVolume);
    if (registry.tracingEnabled()) {
      // Per-window phase event: migration vs. reference traffic plus the
      // simulated outcome, visible on the chrome-trace timeline.
      registry.recordInstant(
          "replay.window",
          "{\"window\":" + std::to_string(w) +
              ",\"migration_msgs\":" +
              std::to_string(traffic.migrationMessages) +
              ",\"migration_volume\":" +
              std::to_string(traffic.migrationVolume) +
              ",\"reference_msgs\":" +
              std::to_string(traffic.referenceMessages) +
              ",\"reference_volume\":" +
              std::to_string(traffic.referenceVolume) + ",\"makespan\":" +
              std::to_string(report.perWindow.back().makespan) + "}");
    }
  }
  return report;
}

ReplayReport replaySchedule(const DataSchedule& schedule,
                            const WindowedRefs& refs, const CostModel& model,
                            SwitchingMode mode) {
  ReplayOptions options;
  options.mode = mode;
  return replaySchedule(schedule, refs, model, options);
}

std::vector<Message> windowMessages(const DataSchedule& schedule,
                                    const WindowedRefs& refs,
                                    const CostModel& model, WindowId w,
                                    WindowTraffic* traffic) {
  std::vector<Message> messages;
  for (DataId d = 0; d < refs.numData(); ++d) {
    const ProcId center = schedule.center(d, w);
    // Migration into this window happens before its references.
    if (w > 0) {
      const ProcId prev = schedule.center(d, w - 1);
      if (prev != center && model.params().moveVolume > 0) {
        messages.push_back(Message{prev, center, model.params().moveVolume});
        if (traffic != nullptr) {
          ++traffic->migrationMessages;
          traffic->migrationVolume += model.params().moveVolume;
        }
      }
    }
    for (const ProcWeight& pw : refs.refs(d, w)) {
      if (pw.proc != center) {
        messages.push_back(Message{center, pw.proc, pw.weight});
        if (traffic != nullptr) {
          ++traffic->referenceMessages;
          traffic->referenceVolume += pw.weight;
        }
      }
    }
  }
  return messages;
}

std::vector<Message> windowMessages(const DataSchedule& schedule,
                                    const WindowedRefs& refs,
                                    const CostModel& model, WindowId w) {
  return windowMessages(schedule, refs, model, w, nullptr);
}

}  // namespace pimsched

#include "sim/replay.hpp"

#include <stdexcept>

namespace pimsched {

ReplayReport replaySchedule(const DataSchedule& schedule,
                            const WindowedRefs& refs, const CostModel& model,
                            SwitchingMode mode) {
  if (schedule.numData() != refs.numData() ||
      schedule.numWindows() != refs.numWindows()) {
    throw std::invalid_argument("replaySchedule: shape mismatch");
  }
  const NocSimulator sim(model.grid(), mode);
  ReplayReport report;
  report.perWindow.reserve(static_cast<std::size_t>(refs.numWindows()));

  for (WindowId w = 0; w < refs.numWindows(); ++w) {
    report.perWindow.push_back(
        sim.simulate(windowMessages(schedule, refs, model, w)));
    report.total += report.perWindow.back();
  }
  return report;
}

std::vector<Message> windowMessages(const DataSchedule& schedule,
                                    const WindowedRefs& refs,
                                    const CostModel& model, WindowId w) {
  std::vector<Message> messages;
  for (DataId d = 0; d < refs.numData(); ++d) {
    const ProcId center = schedule.center(d, w);
    // Migration into this window happens before its references.
    if (w > 0) {
      const ProcId prev = schedule.center(d, w - 1);
      if (prev != center && model.params().moveVolume > 0) {
        messages.push_back(Message{prev, center, model.params().moveVolume});
      }
    }
    for (const ProcWeight& pw : refs.refs(d, w)) {
      if (pw.proc != center) {
        messages.push_back(Message{center, pw.proc, pw.weight});
      }
    }
  }
  return messages;
}

}  // namespace pimsched

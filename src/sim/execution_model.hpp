#pragma once

#include <vector>

#include "core/schedule.hpp"
#include "cost/cost_model.hpp"
#include "sim/network.hpp"
#include "trace/windowed_refs.hpp"

namespace pimsched {

/// Bulk-synchronous execution-time model: the paper's motivation is that
/// "interprocessor communications ... lengthen the total execution time of
/// an application". This model estimates that end-to-end time: each window
/// computes (every processor executes its references) and communicates
/// (the schedule's traffic is replayed through the NoC simulator); windows
/// run back to back.
struct ExecutionParams {
  /// Compute cycles per unit of reference weight on the executing
  /// processor (the trace's weights already count fetch + writeback).
  double cyclesPerAccess = 1.0;
  SwitchingMode switching = SwitchingMode::kStoreAndForward;
  /// When true, a window takes max(compute, comm) — perfectly overlapped
  /// prefetching; when false (default), compute + comm run back to back.
  bool overlapComputeWithComm = false;
};

struct ExecutionReport {
  std::int64_t totalTime = 0;
  std::int64_t computeTime = 0;  ///< sum over windows of max-per-proc compute
  std::int64_t commTime = 0;     ///< sum over windows of comm makespan
  std::vector<std::int64_t> perWindow;
};

/// Estimates the total execution time of a schedule. Compute load per
/// processor per window is the weight it references (independent of the
/// schedule); communication is the replayed traffic of this schedule, so
/// schedules differ exactly by their communication behaviour.
[[nodiscard]] ExecutionReport estimateExecutionTime(
    const DataSchedule& schedule, const WindowedRefs& refs,
    const CostModel& model, const ExecutionParams& params = {});

}  // namespace pimsched

#pragma once

#include <iosfwd>

#include "cost/cost_model.hpp"
#include "trace/windowed_refs.hpp"

namespace pimsched {

/// Quantitative summary of a workload's reference behaviour — the
/// properties that decide which scheduling scheme wins. The paper observes
/// that "considering the data movement can be more effective especially
/// for the benchmarks with complicate data reference patterns"; these
/// metrics make "complicated" measurable.
struct TraceStats {
  DataId numData = 0;
  int numWindows = 0;
  Cost totalWeight = 0;

  /// Fraction of data never referenced at all.
  double unreferencedFraction = 0.0;

  /// Mean number of distinct processors touching a datum within one
  /// window, over non-empty (datum, window) cells. 1.0 = perfectly local.
  double meanProcsPerWindow = 0.0;

  /// Mean Manhattan distance between the local-optimal centers of
  /// consecutive non-empty windows, weight-averaged over data. 0 = static
  /// placement is already optimal; large = the hotspot drifts and
  /// multiple-center scheduling pays off.
  double meanCenterDrift = 0.0;

  /// Weight share of the busiest decile of data (reference skew; 0.1 =
  /// uniform, 1.0 = one-sided).
  double topDecileWeightShare = 0.0;
};

[[nodiscard]] TraceStats computeTraceStats(const WindowedRefs& refs,
                                           const CostModel& model);

std::ostream& operator<<(std::ostream& os, const TraceStats& stats);

}  // namespace pimsched

#include "cost/center_list.hpp"

#include <algorithm>
#include <numeric>

namespace pimsched {

CenterList::CenterList(std::span<const Cost> costs)
    : costs_(costs.begin(), costs.end()),
      order_(costs.size()) {
  std::iota(order_.begin(), order_.end(), 0);
  std::stable_sort(order_.begin(), order_.end(),
                   [this](ProcId a, ProcId b) {
                     return costs_[static_cast<std::size_t>(a)] <
                            costs_[static_cast<std::size_t>(b)];
                   });
}

ProcId CenterList::firstAvailable(const OccupancyMap& occupancy) const {
  for (const ProcId p : order_) {
    if (costs_[static_cast<std::size_t>(p)] >= kInfiniteCost) return kNoProc;
    if (occupancy.hasRoom(p)) return p;
  }
  return kNoProc;
}

bool CenterList::hasFeasible() const {
  // order_ is sorted ascending, so feasibility is decided by the head.
  return !order_.empty() && costs_[static_cast<std::size_t>(order_.front())] <
                                kInfiniteCost;
}

}  // namespace pimsched

#include "cost/workload_stats.hpp"

#include <algorithm>
#include <ostream>
#include <vector>

#include "cost/center_costs.hpp"

namespace pimsched {

TraceStats computeTraceStats(const WindowedRefs& refs,
                             const CostModel& model) {
  const Grid& grid = model.grid();
  TraceStats stats;
  stats.numData = refs.numData();
  stats.numWindows = refs.numWindows();

  std::int64_t unreferenced = 0;
  std::int64_t nonEmptyCells = 0;
  std::int64_t procCount = 0;
  double driftWeighted = 0.0;
  Cost driftWeight = 0;
  std::vector<Cost> weights;
  weights.reserve(static_cast<std::size_t>(refs.numData()));

  for (DataId d = 0; d < refs.numData(); ++d) {
    const Cost w = refs.dataWeight(d);
    weights.push_back(w);
    stats.totalWeight += w;
    if (w == 0) {
      ++unreferenced;
      continue;
    }
    ProcId prevCenter = kNoProc;
    for (WindowId win = 0; win < refs.numWindows(); ++win) {
      const auto rs = refs.refs(d, win);
      if (rs.empty()) continue;
      ++nonEmptyCells;
      procCount += static_cast<std::int64_t>(rs.size());
      const ProcId center = bestCenter(model, rs).proc;
      if (prevCenter != kNoProc) {
        driftWeighted += static_cast<double>(w) *
                         grid.manhattan(prevCenter, center);
        driftWeight += w;
      }
      prevCenter = center;
    }
  }

  stats.unreferencedFraction =
      refs.numData() > 0
          ? static_cast<double>(unreferenced) / refs.numData()
          : 0.0;
  stats.meanProcsPerWindow =
      nonEmptyCells > 0
          ? static_cast<double>(procCount) / static_cast<double>(nonEmptyCells)
          : 0.0;
  stats.meanCenterDrift =
      driftWeight > 0 ? driftWeighted / static_cast<double>(driftWeight)
                      : 0.0;

  std::sort(weights.begin(), weights.end(), std::greater<>());
  const std::size_t decile = std::max<std::size_t>(1, weights.size() / 10);
  Cost top = 0;
  for (std::size_t i = 0; i < decile && i < weights.size(); ++i) {
    top += weights[i];
  }
  stats.topDecileWeightShare =
      stats.totalWeight > 0
          ? static_cast<double>(top) / static_cast<double>(stats.totalWeight)
          : 0.0;
  return stats;
}

std::ostream& operator<<(std::ostream& os, const TraceStats& stats) {
  return os << "data=" << stats.numData << " windows=" << stats.numWindows
            << " volume=" << stats.totalWeight
            << " unref=" << stats.unreferencedFraction
            << " procs/window=" << stats.meanProcsPerWindow
            << " drift=" << stats.meanCenterDrift
            << " top10%share=" << stats.topDecileWeightShare;
}

}  // namespace pimsched

#pragma once

#include <span>
#include <vector>

#include "cost/cost_model.hpp"

namespace pimsched {

/// Weighted k-median on the processor grid: choose k centers minimising
/// sum over references of weight * manhattan(nearest center, proc). This
/// generalises the paper's center finding (k = 1) and underpins the
/// replication extension in core/replication.hpp.
///
/// k = 1 is solved exactly (weighted median); k > 1 uses greedy insertion
/// followed by first-improvement swap local search — the standard k-median
/// heuristic, deterministic (ties toward smaller processor ids).
struct KMedianResult {
  std::vector<ProcId> centers;  ///< sorted ascending, size <= k
  Cost cost = 0;                ///< serving cost from the nearest centers
};

[[nodiscard]] KMedianResult kMedian(const CostModel& model,
                                    std::span<const ProcWeight> refs, int k);

/// Serving cost of a reference string from a fixed center set (each
/// reference served by its nearest center; empty set costs 0 only for an
/// empty string and is otherwise invalid).
[[nodiscard]] Cost nearestCenterCost(const CostModel& model,
                                     std::span<const ProcWeight> refs,
                                     std::span<const ProcId> centers);

}  // namespace pimsched

#include "cost/kmedian.hpp"

#include <algorithm>
#include <stdexcept>

#include "cost/center_costs.hpp"

namespace pimsched {

Cost nearestCenterCost(const CostModel& model,
                       std::span<const ProcWeight> refs,
                       std::span<const ProcId> centers) {
  if (refs.empty()) return 0;
  if (centers.empty()) {
    throw std::invalid_argument("nearestCenterCost: no centers");
  }
  const Grid& grid = model.grid();
  Cost total = 0;
  for (const ProcWeight& pw : refs) {
    int best = INT32_MAX;
    for (const ProcId c : centers) {
      best = std::min(best, grid.manhattan(c, pw.proc));
    }
    total += pw.weight * best;
  }
  return total * model.params().hopCost;
}

namespace {

/// Cost of serving each reference from min(current distance, dist to p).
Cost costWithExtra(const CostModel& model, std::span<const ProcWeight> refs,
                   const std::vector<int>& nearestDist, ProcId p) {
  const Grid& grid = model.grid();
  Cost total = 0;
  for (std::size_t i = 0; i < refs.size(); ++i) {
    total += refs[i].weight *
             std::min(nearestDist[i], grid.manhattan(p, refs[i].proc));
  }
  return total * model.params().hopCost;
}

void refreshNearest(const CostModel& model, std::span<const ProcWeight> refs,
                    const std::vector<ProcId>& centers,
                    std::vector<int>& nearestDist) {
  const Grid& grid = model.grid();
  for (std::size_t i = 0; i < refs.size(); ++i) {
    int best = INT32_MAX;
    for (const ProcId c : centers) {
      best = std::min(best, grid.manhattan(c, refs[i].proc));
    }
    nearestDist[i] = best;
  }
}

}  // namespace

KMedianResult kMedian(const CostModel& model,
                      std::span<const ProcWeight> refs, int k) {
  if (k < 1) throw std::invalid_argument("kMedian: k must be >= 1");
  const Grid& grid = model.grid();
  const int m = grid.size();
  KMedianResult result;

  if (refs.empty()) {
    result.centers = {0};
    result.cost = 0;
    return result;
  }

  // Exact k = 1 seed via the separable weighted median.
  const BestCenter single = bestCenter(model, refs);
  result.centers = {single.proc};
  result.cost = single.cost;

  std::vector<int> nearestDist(refs.size());
  refreshNearest(model, refs, result.centers, nearestDist);

  // Greedy insertion: add the center with the largest marginal gain.
  while (static_cast<int>(result.centers.size()) < k) {
    Cost bestCost = result.cost;
    ProcId bestProc = kNoProc;
    for (ProcId p = 0; p < m; ++p) {
      if (std::find(result.centers.begin(), result.centers.end(), p) !=
          result.centers.end()) {
        continue;
      }
      const Cost c = costWithExtra(model, refs, nearestDist, p);
      if (c < bestCost) {
        bestCost = c;
        bestProc = p;
      }
    }
    if (bestProc == kNoProc) break;  // no further improvement possible
    result.centers.push_back(bestProc);
    result.cost = bestCost;
    refreshNearest(model, refs, result.centers, nearestDist);
  }

  // First-improvement swap local search.
  bool improved = true;
  int guard = 16 * m;  // cheap convergence bound; each swap strictly improves
  while (improved && guard-- > 0) {
    improved = false;
    for (std::size_t ci = 0; ci < result.centers.size() && !improved; ++ci) {
      for (ProcId p = 0; p < m && !improved; ++p) {
        if (std::find(result.centers.begin(), result.centers.end(), p) !=
            result.centers.end()) {
          continue;
        }
        std::vector<ProcId> candidate = result.centers;
        candidate[ci] = p;
        const Cost c = nearestCenterCost(model, refs, candidate);
        if (c < result.cost) {
          result.centers = std::move(candidate);
          result.cost = c;
          improved = true;
        }
      }
    }
  }

  std::sort(result.centers.begin(), result.centers.end());
  return result;
}

}  // namespace pimsched

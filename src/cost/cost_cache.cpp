#include "cost/cost_cache.hpp"

#include <algorithm>

#include "cost/center_costs.hpp"
#include "obs/obs.hpp"

namespace pimsched {

std::uint64_t referenceStringHash(std::span<const ProcWeight> refs) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xFFu;
      h *= 1099511628211ull;  // FNV prime
    }
  };
  for (const ProcWeight& pw : refs) {
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(pw.proc)));
    mix(static_cast<std::uint64_t>(pw.weight));
  }
  return h;
}

CenterCostCache::CenterCostCache(const CostModel& model,
                                 std::uint64_t hashMask)
    : model_(&model), hashMask_(hashMask) {}

bool CenterCostCache::costsInto(std::span<const ProcWeight> refs,
                                std::vector<Cost>& out) {
  const std::uint64_t hash = referenceStringHash(refs) & hashMask_;
  Shard& shard = shards_[hash % kShards];
  std::lock_guard<std::mutex> lock(shard.mutex);
  std::vector<Entry>& bucket = shard.buckets[hash];
  for (const Entry& entry : bucket) {
    if (entry.key.size() == refs.size() &&
        std::equal(entry.key.begin(), entry.key.end(), refs.begin())) {
      out = entry.costs;
      hits_.fetch_add(1, std::memory_order_relaxed);
      PIMSCHED_COUNTER_ADD("cost.center_cache.hit", 1);
      return true;
    }
  }
  separableCenterCostsInto(*model_, refs, out);
  bucket.push_back(Entry{{refs.begin(), refs.end()}, out});
  misses_.fetch_add(1, std::memory_order_relaxed);
  PIMSCHED_COUNTER_ADD("cost.center_cache.miss", 1);
  return false;
}

std::size_t CenterCostCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    // const_cast: mutex locking is not logically const-breaking here.
    std::lock_guard<std::mutex> lock(const_cast<Shard&>(shard).mutex);
    for (const auto& [hash, bucket] : shard.buckets) total += bucket.size();
  }
  return total;
}

void CenterCostCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.buckets.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace pimsched

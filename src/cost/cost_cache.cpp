#include "cost/cost_cache.hpp"

#include <algorithm>

#include "cost/center_costs.hpp"
#include "obs/obs.hpp"

namespace pimsched {

std::uint64_t referenceStringHash(std::span<const ProcWeight> refs) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xFFu;
      h *= 1099511628211ull;  // FNV prime
    }
  };
  for (const ProcWeight& pw : refs) {
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(pw.proc)));
    mix(static_cast<std::uint64_t>(pw.weight));
  }
  return h;
}

CenterCostCache::CenterCostCache(const CostModel& model,
                                 std::uint64_t hashMask)
    : model_(&model), hashMask_(hashMask) {}

const CenterCostCache::Entry& CenterCostCache::lookupOrInsert(
    std::span<const ProcWeight> refs, bool& hit) {
  const std::uint64_t hash = referenceStringHash(refs) & hashMask_;
  Shard& shard = shards_[hash % kShards];
  const Entry* found = nullptr;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    std::vector<std::unique_ptr<Entry>>& bucket = shard.buckets[hash];
    for (const std::unique_ptr<Entry>& entry : bucket) {
      if (entry->key.size() == refs.size() &&
          std::equal(entry->key.begin(), entry->key.end(), refs.begin())) {
        found = entry.get();
        break;
      }
    }
    if (found == nullptr) {
      // Computing under the shard lock deduplicates concurrent misses of
      // the same string (the second worker waits, then hits).
      auto fresh = std::make_unique<Entry>();
      fresh->key.assign(refs.begin(), refs.end());
      separableCenterCostsInto(*model_, refs, fresh->costs);
      found = fresh.get();
      bucket.push_back(std::move(fresh));
      hit = false;
      misses_.fetch_add(1, std::memory_order_relaxed);
      PIMSCHED_COUNTER_ADD("cost.center_cache.miss", 1);
      return *found;
    }
  }
  hit = true;
  hits_.fetch_add(1, std::memory_order_relaxed);
  PIMSCHED_COUNTER_ADD("cost.center_cache.hit", 1);
  return *found;
}

bool CenterCostCache::costsInto(std::span<const ProcWeight> refs,
                                std::vector<Cost>& out) {
  bool hit = false;
  const Entry& entry = lookupOrInsert(refs, hit);
  // Published entries never move or change, so the copy-out needs no lock.
  out.assign(entry.costs.begin(), entry.costs.end());
  return hit;
}

bool CenterCostCache::costsInto(std::span<const ProcWeight> refs,
                                std::span<Cost> out) {
  bool hit = false;
  const Entry& entry = lookupOrInsert(refs, hit);
  std::copy(entry.costs.begin(), entry.costs.end(), out.begin());
  return hit;
}

std::size_t CenterCostCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    // const_cast: mutex locking is not logically const-breaking here.
    std::lock_guard<std::mutex> lock(const_cast<Shard&>(shard).mutex);
    for (const auto& [hash, bucket] : shard.buckets) total += bucket.size();
  }
  return total;
}

void CenterCostCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.buckets.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace pimsched

#include "cost/center_costs.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace pimsched {

std::vector<Cost> bruteForceCenterCosts(const CostModel& model,
                                        std::span<const ProcWeight> refs) {
  PIMSCHED_COUNTER_ADD("cost.center_eval_calls", 1);
  const int m = model.grid().size();
  std::vector<Cost> costs(static_cast<std::size_t>(m));
  for (ProcId p = 0; p < m; ++p) {
    costs[static_cast<std::size_t>(p)] = model.serveCost(refs, p);
  }
  return costs;
}

std::vector<Cost> axisCosts(std::span<const Cost> hist) {
  const std::size_t n = hist.size();
  std::vector<Cost> f(n, 0);
  if (n == 0) return f;

  // Left-to-right sweep: contribution of weights at positions <= x.
  Cost weightBelow = 0;  // total weight at positions < x
  Cost costBelow = 0;    // sum w_k * (x - k) over k < x
  for (std::size_t x = 0; x < n; ++x) {
    f[x] += costBelow;
    weightBelow += hist[x];
    costBelow += weightBelow;
  }
  // Right-to-left sweep: contribution of weights at positions > x.
  Cost weightAbove = 0;
  Cost costAbove = 0;
  for (std::size_t xi = n; xi-- > 0;) {
    f[xi] += costAbove;
    weightAbove += hist[xi];
    costAbove += weightAbove;
  }
  return f;
}

namespace {

/// Fault-aware table: serveCost per center read off the DistanceMap. Dead
/// centers are kInfiniteCost even for empty reference strings — a datum
/// may never be placed on a dead processor, whether or not anyone reads
/// it this window. On a DistanceMap of an empty FaultMap every distance
/// equals the Manhattan distance, so this produces the same integers the
/// separable sweep does.
void faultCenterCostsInto(const CostModel& model,
                          std::span<const ProcWeight> refs,
                          std::vector<Cost>& out) {
  const DistanceMap& distances = model.distances();
  const int m = model.grid().size();
  const Cost hop = model.params().hopCost;
  out.resize(static_cast<std::size_t>(m));
  for (ProcId p = 0; p < m; ++p) {
    if (!distances.alive(p)) {
      out[static_cast<std::size_t>(p)] = kInfiniteCost;
      continue;
    }
    Cost sum = 0;
    for (const ProcWeight& pw : refs) {
      const Cost d = distances.hopDistance(p, pw.proc);
      if (d >= kInfiniteCost) {
        sum = kInfiniteCost;
        break;
      }
      sum += pw.weight * d;
    }
    out[static_cast<std::size_t>(p)] =
        sum >= kInfiniteCost ? kInfiniteCost : sum * hop;
  }
}

}  // namespace

void separableCenterCostsInto(const CostModel& model,
                              std::span<const ProcWeight> refs,
                              std::vector<Cost>& out) {
  PIMSCHED_COUNTER_ADD("cost.center_eval_calls", 1);
  if (model.faultAware()) {
    faultCenterCostsInto(model, refs, out);
    return;
  }
  const Grid& grid = model.grid();
  std::vector<Cost> rowHist(static_cast<std::size_t>(grid.rows()), 0);
  std::vector<Cost> colHist(static_cast<std::size_t>(grid.cols()), 0);
  for (const ProcWeight& pw : refs) {
    const Coord c = grid.coord(pw.proc);
    rowHist[static_cast<std::size_t>(c.row)] += pw.weight;
    colHist[static_cast<std::size_t>(c.col)] += pw.weight;
  }
  const std::vector<Cost> fRow = axisCosts(rowHist);
  const std::vector<Cost> fCol = axisCosts(colHist);

  out.resize(static_cast<std::size_t>(grid.size()));
  const Cost hop = model.params().hopCost;
  for (int r = 0; r < grid.rows(); ++r) {
    for (int c = 0; c < grid.cols(); ++c) {
      out[static_cast<std::size_t>(grid.id(r, c))] =
          hop * (fRow[static_cast<std::size_t>(r)] +
                 fCol[static_cast<std::size_t>(c)]);
    }
  }
}

std::vector<Cost> separableCenterCosts(const CostModel& model,
                                       std::span<const ProcWeight> refs) {
  std::vector<Cost> costs;
  separableCenterCostsInto(model, refs, costs);
  return costs;
}

BestCenter bestCenter(const CostModel& model,
                      std::span<const ProcWeight> refs) {
  const std::vector<Cost> costs = separableCenterCosts(model, refs);
  const auto it = std::min_element(costs.begin(), costs.end());
  return BestCenter{static_cast<ProcId>(it - costs.begin()), *it};
}

}  // namespace pimsched

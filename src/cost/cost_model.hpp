#pragma once

#include <span>

#include "pim/grid.hpp"
#include "pim/types.hpp"
#include "trace/windowed_refs.hpp"

namespace pimsched {

/// Tunable constants of the paper's communication-cost metric.
struct CostParams {
  /// Cost of moving one data unit across one mesh link. The paper fixes the
  /// distance between adjacent processors to 1.
  Cost hopCost = 1;
  /// Volume (data units) transferred when a datum migrates between the
  /// centers of consecutive windows; one datum = one unit by default.
  Cost moveVolume = 1;
};

/// Evaluates the paper's cost metric on a grid:
///   serveCost = sum over references of weight * hopCost * manhattan,
///   moveCost  = moveVolume * hopCost * manhattan(from, to).
class CostModel {
 public:
  explicit CostModel(const Grid& grid, CostParams params = {})
      : grid_(&grid), params_(params) {}

  [[nodiscard]] const Grid& grid() const { return *grid_; }
  [[nodiscard]] const CostParams& params() const { return params_; }

  /// Cost of serving one window's reference string from `center`.
  [[nodiscard]] Cost serveCost(std::span<const ProcWeight> refs,
                               ProcId center) const {
    Cost sum = 0;
    for (const ProcWeight& pw : refs) {
      sum += pw.weight * grid_->manhattan(center, pw.proc);
    }
    return sum * params_.hopCost;
  }

  /// Cost of migrating one datum from processor `from` to `to` between
  /// consecutive windows.
  [[nodiscard]] Cost moveCost(ProcId from, ProcId to) const {
    return params_.moveVolume * params_.hopCost * grid_->manhattan(from, to);
  }

 private:
  const Grid* grid_;
  CostParams params_;
};

}  // namespace pimsched

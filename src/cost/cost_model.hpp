#pragma once

#include <cassert>
#include <span>

#include "fault/distance_map.hpp"
#include "fault/fault_map.hpp"
#include "pim/grid.hpp"
#include "pim/types.hpp"
#include "trace/windowed_refs.hpp"

namespace pimsched {

/// Tunable constants of the paper's communication-cost metric.
struct CostParams {
  /// Cost of moving one data unit across one mesh link. The paper fixes the
  /// distance between adjacent processors to 1.
  Cost hopCost = 1;
  /// Volume (data units) transferred when a datum migrates between the
  /// centers of consecutive windows; one datum = one unit by default.
  Cost moveVolume = 1;
};

/// Evaluates the paper's cost metric on a grid:
///   serveCost = sum over references of weight * hopCost * distance,
///   moveCost  = moveVolume * hopCost * distance(from, to),
/// where distance is the Manhattan distance on a healthy mesh, or the
/// fault-aware hop distance (shortest path over the alive sub-mesh) when
/// the model carries a DistanceMap. On a DistanceMap built from an empty
/// FaultMap every distance equals the Manhattan distance, so a fault-aware
/// model over a healthy mesh reproduces the original metric exactly.
///
/// A distance of kInfiniteCost (dead or unreachable endpoint) saturates:
/// serveCost/moveCost return kInfiniteCost rather than overflowing, and
/// such placements are forbidden rather than merely expensive.
class CostModel {
 public:
  explicit CostModel(const Grid& grid, CostParams params = {})
      : grid_(&grid), params_(params) {}

  /// Fault-aware model. `distances` must outlive the model and be built
  /// over the same grid.
  CostModel(const Grid& grid, const DistanceMap& distances,
            CostParams params = {})
      : grid_(&grid), distances_(&distances), params_(params) {
    assert(&distances.grid() == &grid &&
           "DistanceMap must be built over the model's grid");
  }

  [[nodiscard]] const Grid& grid() const { return *grid_; }
  [[nodiscard]] const CostParams& params() const { return params_; }

  [[nodiscard]] bool faultAware() const { return distances_ != nullptr; }
  /// The distance table; only valid when faultAware().
  [[nodiscard]] const DistanceMap& distances() const {
    assert(distances_ != nullptr);
    return *distances_;
  }
  /// The fault state the distances were built from, or nullptr.
  [[nodiscard]] const FaultMap* faults() const {
    return distances_ == nullptr ? nullptr : &distances_->faults();
  }

  /// Hop distance under the model's metric; kInfiniteCost when a or b is
  /// dead or unreachable on the faulted mesh.
  [[nodiscard]] Cost hopDistance(ProcId a, ProcId b) const {
    if (distances_ != nullptr) return distances_->hopDistance(a, b);
    return static_cast<Cost>(grid_->manhattan(a, b));
  }

  /// True when data must not be placed on p (p is dead).
  [[nodiscard]] bool centerForbidden(ProcId p) const {
    return distances_ != nullptr && !distances_->alive(p);
  }

  /// Cost of serving one window's reference string from `center`.
  [[nodiscard]] Cost serveCost(std::span<const ProcWeight> refs,
                               ProcId center) const {
    if (centerForbidden(center)) return kInfiniteCost;
    Cost sum = 0;
    for (const ProcWeight& pw : refs) {
      const Cost d = hopDistance(center, pw.proc);
      if (d >= kInfiniteCost) return kInfiniteCost;
      sum += pw.weight * d;
    }
    return sum * params_.hopCost;
  }

  /// Cost of migrating one datum from processor `from` to `to` between
  /// consecutive windows.
  [[nodiscard]] Cost moveCost(ProcId from, ProcId to) const {
    const Cost d = hopDistance(from, to);
    if (d >= kInfiniteCost) return kInfiniteCost;
    return params_.moveVolume * params_.hopCost * d;
  }

 private:
  const Grid* grid_;
  const DistanceMap* distances_ = nullptr;
  CostParams params_;
};

}  // namespace pimsched

#pragma once

#include <span>
#include <vector>

#include "cost/cost_model.hpp"

namespace pimsched {

/// Serving cost of a reference string at every candidate center, i.e. the
/// quantity Algorithm 1 computes for "each processor node j".
///
/// Two implementations with identical results:
///  * bruteForceCenterCosts — O(numProcs * |refs|), the literal reading of
///    Algorithm 1 lines 2-4;
///  * separableCenterCosts — O(|refs| + rows + cols + numProcs), exploiting
///    that Manhattan distance separates into row and column terms, so
///    cost(r, c) = f_row(r) + f_col(c) with each axis solvable by prefix
///    sums over a weight histogram (the 1-D weighted-median trick).
///
/// The *Into variants write into a caller-owned buffer (resized to the
/// grid size), so hot loops reuse one allocation per thread instead of
/// returning a fresh vector per (datum, window). Every variant counts one
/// `cost.center_eval_calls`; see CenterCostCache (cost/cost_cache.hpp) for
/// the memoized front end and its hit/miss counters.
///
/// When the model is fault-aware (carries a DistanceMap), every variant
/// instead prices centers by fault-aware hop distance; dead processors
/// and centers that cannot reach some referencing processor cost
/// kInfiniteCost, which downstream feasibility checks treat as forbidden.
[[nodiscard]] std::vector<Cost> bruteForceCenterCosts(
    const CostModel& model, std::span<const ProcWeight> refs);

[[nodiscard]] std::vector<Cost> separableCenterCosts(
    const CostModel& model, std::span<const ProcWeight> refs);

void separableCenterCostsInto(const CostModel& model,
                              std::span<const ProcWeight> refs,
                              std::vector<Cost>& out);

/// separableCenterCosts, the library default.
[[nodiscard]] inline std::vector<Cost> centerCosts(
    const CostModel& model, std::span<const ProcWeight> refs) {
  return separableCenterCosts(model, refs);
}

/// The minimum-cost center (ties -> smallest ProcId) and its cost.
struct BestCenter {
  ProcId proc = kNoProc;
  Cost cost = 0;
};
[[nodiscard]] BestCenter bestCenter(const CostModel& model,
                                    std::span<const ProcWeight> refs);

/// 1-D helper exposed for testing and for Lemma 1: the weighted L1 cost
/// f(x) = sum_k hist[k]-weighted |x - k| for every x in [0, n). `hist` maps
/// axis position -> total weight.
[[nodiscard]] std::vector<Cost> axisCosts(std::span<const Cost> hist);

}  // namespace pimsched

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "cost/cost_model.hpp"

namespace pimsched {

/// FNV-1a over the (proc, weight) pairs of a reference string. Serving
/// cost depends only on this string (plus the grid and hopCost fixed per
/// cache), so equal strings — which matmul / LU kernels produce for many
/// data — share one cost table.
[[nodiscard]] std::uint64_t referenceStringHash(
    std::span<const ProcWeight> refs);

/// Thread-safe memoization of separableCenterCosts keyed by the full
/// reference string. Workers of one scheduling call share a cache, so the
/// table for a reference string common to many (datum, window) cells is
/// computed once and copied out afterwards.
///
/// Collision-safe: entries bucket by hash but store the full key, and a
/// lookup compares the strings — two distinct strings landing on the same
/// hash both get correct tables. The cache is sharded 16 ways by hash;
/// a miss computes while holding only its shard, which also deduplicates
/// concurrent misses of the same string. Entries are heap-stable and
/// immutable once published, so the hit path copies the table out AFTER
/// dropping the shard lock — concurrent hits on one shard no longer
/// serialize on the memcpy. Shards are cache-line aligned so two shards'
/// mutexes never share a line.
///
/// Counters: `cost.center_cache.hit` / `cost.center_cache.miss` (global
/// obs registry) plus per-instance hits()/misses() for the bench reports.
class CenterCostCache {
 public:
  /// `hashMask` is AND-ed onto every computed hash. The default keeps the
  /// full 64 bits; tests pass a narrow mask to force distinct strings onto
  /// colliding hashes and exercise the full-key comparison.
  explicit CenterCostCache(const CostModel& model,
                           std::uint64_t hashMask = ~0ull);

  /// Writes the cost table of `refs` into `out` (resized to the grid
  /// size). Returns true on a cache hit, false when the table had to be
  /// computed (and was inserted).
  bool costsInto(std::span<const ProcWeight> refs, std::vector<Cost>& out);

  /// Same, writing into caller-owned memory of exactly the grid size —
  /// lets serve-table builders fill their rows in place with no staging
  /// copy. out.size() must equal the grid's processor count.
  bool costsInto(std::span<const ProcWeight> refs, std::span<Cost> out);

  [[nodiscard]] std::int64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Number of distinct reference strings stored.
  [[nodiscard]] std::size_t size() const;
  void clear();

 private:
  struct Entry {
    std::vector<ProcWeight> key;
    std::vector<Cost> costs;
  };
  struct alignas(64) Shard {
    std::mutex mutex;
    /// hash -> entries whose (masked) hash equals it; usually one. Held by
    /// pointer so a published Entry never moves — lookups may read it
    /// after releasing the shard lock.
    std::unordered_map<std::uint64_t, std::vector<std::unique_ptr<Entry>>>
        buckets;
  };
  static constexpr std::size_t kShards = 16;

  /// Finds or computes-and-inserts the entry for `refs`; sets `hit` and
  /// bumps the counters. The returned entry is immutable and outlives the
  /// call (stable heap storage), so callers copy from it lock-free.
  const Entry& lookupOrInsert(std::span<const ProcWeight> refs, bool& hit);

  const CostModel* model_;
  std::uint64_t hashMask_;
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
  std::array<Shard, kShards> shards_;
};

}  // namespace pimsched

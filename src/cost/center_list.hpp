#pragma once

#include <span>
#include <vector>

#include "cost/center_costs.hpp"
#include "pim/memory.hpp"

namespace pimsched {

/// The paper's "processor list": all processors sorted in ascending order of
/// the communication cost of hosting a datum (ties toward smaller id), so
/// that a datum can fall back to "the first available processor in the
/// processor list" when its optimal center is full (Algorithm 1, lines 5-7).
class CenterList {
 public:
  /// Builds the sorted list from per-processor costs.
  explicit CenterList(std::span<const Cost> costs);

  /// Processors in ascending cost order.
  [[nodiscard]] const std::vector<ProcId>& order() const { return order_; }

  /// Cost of hosting at processor p.
  [[nodiscard]] Cost costAt(ProcId p) const {
    return costs_[static_cast<std::size_t>(p)];
  }

  /// First *feasible* processor in the list with a free slot, or kNoProc
  /// when all are full (capacity made infeasible; callers treat that as an
  /// error). Processors priced kInfiniteCost — dead or unreachable on a
  /// faulted mesh — are never returned, no matter how empty they are.
  [[nodiscard]] ProcId firstAvailable(const OccupancyMap& occupancy) const;

  /// True when at least one processor has finite hosting cost. False means
  /// no feasible placement exists at all (e.g. the datum's readers are
  /// partitioned from every alive processor).
  [[nodiscard]] bool hasFeasible() const;

 private:
  std::vector<Cost> costs_;
  std::vector<ProcId> order_;
};

}  // namespace pimsched

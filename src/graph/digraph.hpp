#pragma once

#include <optional>
#include <vector>

#include "pim/types.hpp"

namespace pimsched {

/// A small edge-weighted directed graph with adjacency lists. Used to build
/// the paper's explicit "cost-graph" (pseudo source, window x processor
/// nodes, pseudo destination) and solve it by topological-order relaxation.
class Digraph {
 public:
  explicit Digraph(int numNodes);

  struct Edge {
    int to = 0;
    Cost weight = 0;
  };

  [[nodiscard]] int numNodes() const {
    return static_cast<int>(adj_.size());
  }
  [[nodiscard]] int numEdges() const { return numEdges_; }

  void addEdge(int from, int to, Cost weight);

  [[nodiscard]] const std::vector<Edge>& edgesFrom(int node) const {
    return adj_[static_cast<std::size_t>(node)];
  }

  /// Topological order, or nullopt if the graph has a cycle (Kahn).
  [[nodiscard]] std::optional<std::vector<int>> topologicalOrder() const;

 private:
  std::vector<std::vector<Edge>> adj_;
  int numEdges_ = 0;
};

/// Single-source shortest path on a DAG by relaxation in topological order.
/// Weights may be negative (it is a DAG). dist is kInfiniteCost for
/// unreachable nodes; parent reconstructs paths. Throws on cyclic input.
struct DagShortestPaths {
  std::vector<Cost> dist;
  std::vector<int> parent;  ///< -1 for source / unreachable

  /// The node sequence from `source` to `target` (inclusive); empty when
  /// target is unreachable.
  [[nodiscard]] std::vector<int> pathTo(int target) const;
};

[[nodiscard]] DagShortestPaths dagShortestPaths(const Digraph& g, int source);

}  // namespace pimsched

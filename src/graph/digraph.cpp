#include "graph/digraph.hpp"

#include <algorithm>
#include <stdexcept>

namespace pimsched {

Digraph::Digraph(int numNodes) {
  if (numNodes < 0) throw std::invalid_argument("Digraph: negative size");
  adj_.resize(static_cast<std::size_t>(numNodes));
}

void Digraph::addEdge(int from, int to, Cost weight) {
  if (from < 0 || from >= numNodes() || to < 0 || to >= numNodes()) {
    throw std::out_of_range("Digraph::addEdge: node out of range");
  }
  adj_[static_cast<std::size_t>(from)].push_back(Edge{to, weight});
  ++numEdges_;
}

std::optional<std::vector<int>> Digraph::topologicalOrder() const {
  const int n = numNodes();
  std::vector<int> indegree(static_cast<std::size_t>(n), 0);
  for (int u = 0; u < n; ++u) {
    for (const Edge& e : edgesFrom(u)) {
      ++indegree[static_cast<std::size_t>(e.to)];
    }
  }
  std::vector<int> ready;
  for (int u = 0; u < n; ++u) {
    if (indegree[static_cast<std::size_t>(u)] == 0) ready.push_back(u);
  }
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  while (!ready.empty()) {
    const int u = ready.back();
    ready.pop_back();
    order.push_back(u);
    for (const Edge& e : edgesFrom(u)) {
      if (--indegree[static_cast<std::size_t>(e.to)] == 0) {
        ready.push_back(e.to);
      }
    }
  }
  if (static_cast<int>(order.size()) != n) return std::nullopt;
  return order;
}

std::vector<int> DagShortestPaths::pathTo(int target) const {
  if (dist[static_cast<std::size_t>(target)] >= kInfiniteCost) return {};
  std::vector<int> path;
  for (int v = target; v != -1; v = parent[static_cast<std::size_t>(v)]) {
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

DagShortestPaths dagShortestPaths(const Digraph& g, int source) {
  const auto order = g.topologicalOrder();
  if (!order.has_value()) {
    throw std::invalid_argument("dagShortestPaths: graph has a cycle");
  }
  DagShortestPaths out;
  out.dist.assign(static_cast<std::size_t>(g.numNodes()), kInfiniteCost);
  out.parent.assign(static_cast<std::size_t>(g.numNodes()), -1);
  out.dist[static_cast<std::size_t>(source)] = 0;
  for (const int u : *order) {
    const Cost du = out.dist[static_cast<std::size_t>(u)];
    if (du >= kInfiniteCost) continue;
    for (const Digraph::Edge& e : g.edgesFrom(u)) {
      if (du + e.weight < out.dist[static_cast<std::size_t>(e.to)]) {
        out.dist[static_cast<std::size_t>(e.to)] = du + e.weight;
        out.parent[static_cast<std::size_t>(e.to)] = u;
      }
    }
  }
  return out;
}

}  // namespace pimsched

#include "graph/simd/kernels_impl.hpp"

/// Portable tier: the reference semantics every vector tier must reproduce
/// bit-for-bit. Loops are branch-free (single compare-select per element)
/// so compilers auto-vectorize them where profitable — this is also the
/// NEON-compatible path until an explicit ARM tier exists.
namespace pimsched::simd::detail {

namespace {

void minPlusRowScalar(const Cost* row, Cost add, Cost* acc, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const Cost cand = add + row[i];
    acc[i] = cand < acc[i] ? cand : acc[i];
  }
}

void addMinRowScalar(const Cost* src, Cost beta, Cost* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const Cost cand = src[i] + beta;
    dst[i] = cand < dst[i] ? cand : dst[i];
  }
}

void satAddMinRowScalar(const Cost* src, Cost beta, Cost* dst,
                        std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const Cost cand = (src[i] >= kInfiniteCost || beta >= kInfiniteCost)
                          ? kInfiniteCost
                          : src[i] + beta;
    dst[i] = cand < dst[i] ? cand : dst[i];
  }
}

// The in-row scans are serial dependency chains (add + compare-select per
// element), so a single row runs at the chain latency. After the vertical
// stage the rows are independent; interleaving four of them keeps four
// chains in flight and the core throughput-bound instead. Each chain is
// the exact sequential recurrence — element order within a row is
// unchanged — so results are bit-identical to scanning rows one at a time.

void prefixMinPlusRows(Cost* h, std::size_t rows, std::size_t stride,
                       Cost beta, std::size_t n) {
  std::size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    Cost* r0 = h + r * stride;
    Cost* r1 = r0 + stride;
    Cost* r2 = r1 + stride;
    Cost* r3 = r2 + stride;
    for (std::size_t i = 1; i < n; ++i) {
      const Cost c0 = r0[i - 1] + beta;
      const Cost c1 = r1[i - 1] + beta;
      const Cost c2 = r2[i - 1] + beta;
      const Cost c3 = r3[i - 1] + beta;
      r0[i] = c0 < r0[i] ? c0 : r0[i];
      r1[i] = c1 < r1[i] ? c1 : r1[i];
      r2[i] = c2 < r2[i] ? c2 : r2[i];
      r3[i] = c3 < r3[i] ? c3 : r3[i];
    }
  }
  for (; r < rows; ++r) {
    Cost* row = h + r * stride;
    for (std::size_t i = 1; i < n; ++i) {
      const Cost cand = row[i - 1] + beta;
      row[i] = cand < row[i] ? cand : row[i];
    }
  }
}

void suffixMinPlusRows(Cost* h, std::size_t rows, std::size_t stride,
                       Cost beta, std::size_t n) {
  std::size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    Cost* r0 = h + r * stride;
    Cost* r1 = r0 + stride;
    Cost* r2 = r1 + stride;
    Cost* r3 = r2 + stride;
    for (std::size_t i = n; i-- > 1;) {
      const Cost c0 = r0[i] + beta;
      const Cost c1 = r1[i] + beta;
      const Cost c2 = r2[i] + beta;
      const Cost c3 = r3[i] + beta;
      r0[i - 1] = c0 < r0[i - 1] ? c0 : r0[i - 1];
      r1[i - 1] = c1 < r1[i - 1] ? c1 : r1[i - 1];
      r2[i - 1] = c2 < r2[i - 1] ? c2 : r2[i - 1];
      r3[i - 1] = c3 < r3[i - 1] ? c3 : r3[i - 1];
    }
  }
  for (; r < rows; ++r) {
    Cost* row = h + r * stride;
    for (std::size_t i = n; i-- > 1;) {
      const Cost cand = row[i] + beta;
      row[i - 1] = cand < row[i - 1] ? cand : row[i - 1];
    }
  }
}

void chamferForwardStripScalar(Cost* h, const Cost* up, std::size_t rows,
                               std::size_t stride, Cost beta,
                               std::size_t n) {
  const Cost* above = up;
  for (std::size_t r = 0; r < rows; ++r) {
    Cost* row = h + r * stride;
    if (above != nullptr) addMinRowScalar(above, beta, row, n);
    above = row;
  }
  prefixMinPlusRows(h, rows, stride, beta, n);
}

void chamferBackwardStripScalar(Cost* h, const Cost* down, std::size_t rows,
                                std::size_t stride, Cost beta,
                                std::size_t n) {
  const Cost* below = down;
  for (std::size_t r = rows; r-- > 0;) {
    Cost* row = h + r * stride;
    if (below != nullptr) addMinRowScalar(below, beta, row, n);
    below = row;
  }
  suffixMinPlusRows(h, rows, stride, beta, n);
}

void combineLayerScalar(const Cost* relaxed, const Cost* own, Cost* out,
                        std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const Cost a = relaxed[i] < kInfiniteCost ? relaxed[i] : kInfiniteCost;
    const Cost b = own[i];
    const Cost sum = a + (b < kInfiniteCost ? b : 0);
    out[i] = (a >= kInfiniteCost || b >= kInfiniteCost) ? kInfiniteCost : sum;
  }
}

void clampInfScalar(Cost* v, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = v[i] < kInfiniteCost ? v[i] : kInfiniteCost;
  }
}

void maskInfScalar(const unsigned char* forbidden, Cost* v, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = forbidden[i] ? kInfiniteCost : v[i];
  }
}

std::ptrdiff_t findPredecessorScalar(const Cost* prev, const Cost* trans,
                                     Cost need, Cost tMax, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (prev[i] < kInfiniteCost && trans[i] < tMax &&
        prev[i] + trans[i] == need) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

}  // namespace

const Kernels& scalarKernels() {
  static const Kernels k{
      minPlusRowScalar,        addMinRowScalar,          satAddMinRowScalar,
      chamferForwardStripScalar, chamferBackwardStripScalar,
      combineLayerScalar,      clampInfScalar,           maskInfScalar,
      findPredecessorScalar,
  };
  return k;
}

}  // namespace pimsched::simd::detail

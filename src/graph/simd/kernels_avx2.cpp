#include "graph/simd/kernels_impl.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstring>

/// 256-bit tier (this file alone is compiled with -mavx2; the guard keeps a
/// baseline build linking). Four 64-bit lanes per op, native signed 64-bit
/// compare. The chamfer strips vectorize across four rows via 4x4
/// transposes, with the vertical relax fused into the same pass (see
/// chamferForwardStripAvx2); every relax consumes already-relaxed operands
/// only, so results are bit-identical to the scalar tier. Candidate
/// magnitudes are bounded exactly as in the sequential formulation, which
/// the caller's overflow guard keeps below INT64_MAX.
namespace pimsched::simd::detail {

namespace {

inline __m256i min64(__m256i a, __m256i b) {
  // Pick b in the lanes where a > b.
  return _mm256_blendv_epi8(a, b, _mm256_cmpgt_epi64(a, b));
}

inline __m256i infVec() { return _mm256_set1_epi64x(kInfiniteCost); }

void minPlusRowAvx2(const Cost* row, Cost add, Cost* acc, std::size_t n) {
  const __m256i vAdd = _mm256_set1_epi64x(add);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i r =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i));
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i),
                        min64(a, _mm256_add_epi64(r, vAdd)));
  }
  for (; i < n; ++i) {
    const Cost cand = add + row[i];
    acc[i] = cand < acc[i] ? cand : acc[i];
  }
}

void addMinRowAvx2(const Cost* src, Cost beta, Cost* dst, std::size_t n) {
  const __m256i vBeta = _mm256_set1_epi64x(beta);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        min64(d, _mm256_add_epi64(s, vBeta)));
  }
  for (; i < n; ++i) {
    const Cost cand = src[i] + beta;
    dst[i] = cand < dst[i] ? cand : dst[i];
  }
}

void satAddMinRowAvx2(const Cost* src, Cost beta, Cost* dst, std::size_t n) {
  if (beta >= kInfiniteCost) {
    // Every candidate saturates to kInf; dst <= kInf by precondition, so
    // the pass is the identity.
    return;
  }
  const __m256i vBeta = _mm256_set1_epi64x(beta);
  const __m256i vInf = infVec();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    // src <= kInf so src + beta cannot wrap; infinite lanes become kInf.
    const __m256i fin = _mm256_cmpgt_epi64(vInf, s);
    const __m256i cand =
        _mm256_blendv_epi8(vInf, _mm256_add_epi64(s, vBeta), fin);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), min64(d, cand));
  }
  for (; i < n; ++i) {
    const Cost cand = src[i] >= kInfiniteCost ? kInfiniteCost : src[i] + beta;
    dst[i] = cand < dst[i] ? cand : dst[i];
  }
}

/// 4x4 transpose of 64-bit lanes; an involution, so the same helper maps
/// row vectors to column vectors and back.
inline void transpose4(__m256i a, __m256i b, __m256i c, __m256i d,
                       __m256i& o0, __m256i& o1, __m256i& o2, __m256i& o3) {
  const __m256i t0 = _mm256_unpacklo_epi64(a, b);  // a0 b0 a2 b2
  const __m256i t1 = _mm256_unpackhi_epi64(a, b);  // a1 b1 a3 b3
  const __m256i t2 = _mm256_unpacklo_epi64(c, d);
  const __m256i t3 = _mm256_unpackhi_epi64(c, d);
  o0 = _mm256_permute2x128_si256(t0, t2, 0x20);
  o1 = _mm256_permute2x128_si256(t1, t3, 0x20);
  o2 = _mm256_permute2x128_si256(t0, t2, 0x31);
  o3 = _mm256_permute2x128_si256(t1, t3, 0x31);
}

// The chamfer strips fuse the vertical relax and the in-row sweep into a
// single pass over the strip: per 4x4 block the four row vectors are
// relaxed downward in registers (plain vector ops — lanes are columns),
// transposed so each vector holds one column of four rows, swept column by
// column with the carry from the previous block, and transposed back. A
// cell's candidate set is { v(r',c') + beta*(dr+dc) : r' <= r, c' <= c }
// under every such schedule — each relax only consumes already-relaxed
// operands — so values are bit-identical to the scalar reference order.

void chamferForwardStripAvx2(Cost* h, const Cost* up, std::size_t rows,
                             std::size_t stride, Cost beta, std::size_t n) {
  const __m256i vBeta = _mm256_set1_epi64x(beta);
  const __m256i vBeta2 = _mm256_set1_epi64x(2 * beta);
  const __m256i vBeta3 = _mm256_set1_epi64x(3 * beta);
  const __m256i vBeta4 = _mm256_set1_epi64x(4 * beta);
  if (rows == 4) {
    Cost* r0 = h;
    Cost* r1 = r0 + stride;
    Cost* r2 = r1 + stride;
    Cost* r3 = r2 + stride;
    std::size_t i = 0;
    __m256i carry{};
    for (; i + 4 <= n; i += 4) {
      __m256i a = _mm256_loadu_si256(reinterpret_cast<__m256i*>(r0 + i));
      __m256i b = _mm256_loadu_si256(reinterpret_cast<__m256i*>(r1 + i));
      __m256i c = _mm256_loadu_si256(reinterpret_cast<__m256i*>(r2 + i));
      __m256i d = _mm256_loadu_si256(reinterpret_cast<__m256i*>(r3 + i));
      if (up != nullptr) {
        const __m256i u =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(up + i));
        a = min64(a, _mm256_add_epi64(u, vBeta));
      }
      // Vertical relax in log depth: k*beta sums stay exact (integer
      // addition is associative), so candidates equal the sequential
      // chain's bit for bit.
      const __m256i b1 = min64(b, _mm256_add_epi64(a, vBeta));
      const __m256i d1 = min64(d, _mm256_add_epi64(c, vBeta));
      c = min64(c, _mm256_add_epi64(b1, vBeta));
      d = min64(d1, _mm256_add_epi64(b1, vBeta2));
      b = b1;
      __m256i t0, t1, t2, t3;
      transpose4(a, b, c, d, t0, t1, t2, t3);
      // Reduce-then-scan: block-internal prefixes first (off the critical
      // path), then one add+min per block on the carry chain — the chain's
      // latency, not memory, bounds this loop.
      const __m256i q1 = min64(t1, _mm256_add_epi64(t0, vBeta));
      const __m256i q3 = min64(t3, _mm256_add_epi64(t2, vBeta));
      const __m256i p2 = min64(t2, _mm256_add_epi64(q1, vBeta));
      const __m256i p3 = min64(q3, _mm256_add_epi64(q1, vBeta2));
      if (i > 0) {
        t0 = min64(t0, _mm256_add_epi64(carry, vBeta));
        t1 = min64(q1, _mm256_add_epi64(carry, vBeta2));
        t2 = min64(p2, _mm256_add_epi64(carry, vBeta3));
        t3 = min64(p3, _mm256_add_epi64(carry, vBeta4));
      } else {
        t1 = q1;
        t2 = p2;
        t3 = p3;
      }
      carry = t3;
      transpose4(t0, t1, t2, t3, a, b, c, d);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(r0 + i), a);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(r1 + i), b);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(r2 + i), c);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(r3 + i), d);
    }
    // Column tail in raster order: the row above a tail cell is fully
    // final by then, which per the candidate-set argument leaves values
    // unchanged.
    for (std::size_t r = 0; r < 4; ++r) {
      Cost* row = h + r * stride;
      const Cost* above = r == 0 ? up : row - stride;
      for (std::size_t j = i; j < n; ++j) {
        if (above != nullptr) {
          const Cost cand = above[j] + beta;
          row[j] = cand < row[j] ? cand : row[j];
        }
        if (j > 0) {
          const Cost cand = row[j - 1] + beta;
          row[j] = cand < row[j] ? cand : row[j];
        }
      }
    }
    return;
  }
  // Short strip (grid bottom when R % 4 != 0): vertical stage, then each
  // row's own chain.
  const Cost* above = up;
  for (std::size_t r = 0; r < rows; ++r) {
    Cost* row = h + r * stride;
    if (above != nullptr) addMinRowAvx2(above, beta, row, n);
    above = row;
  }
  for (std::size_t r = 0; r < rows; ++r) {
    Cost* row = h + r * stride;
    for (std::size_t j = 1; j < n; ++j) {
      const Cost cand = row[j - 1] + beta;
      row[j] = cand < row[j] ? cand : row[j];
    }
  }
}

void chamferBackwardStripAvx2(Cost* h, const Cost* down, std::size_t rows,
                              std::size_t stride, Cost beta, std::size_t n) {
  const __m256i vBeta = _mm256_set1_epi64x(beta);
  const __m256i vBeta2 = _mm256_set1_epi64x(2 * beta);
  const __m256i vBeta3 = _mm256_set1_epi64x(3 * beta);
  const __m256i vBeta4 = _mm256_set1_epi64x(4 * beta);
  if (rows == 4) {
    Cost* r0 = h;
    Cost* r1 = r0 + stride;
    Cost* r2 = r1 + stride;
    Cost* r3 = r2 + stride;
    // Vector blocks cover columns [rem, n) right to left; the head
    // [0, rem) finishes in reverse raster order below.
    const std::size_t rem = n % 4;
    const std::size_t nBlocks = n / 4;
    __m256i carry{};
    for (std::size_t blk = 0; blk < nBlocks; ++blk) {
      const std::size_t i = n - 4 - 4 * blk;
      __m256i a = _mm256_loadu_si256(reinterpret_cast<__m256i*>(r0 + i));
      __m256i b = _mm256_loadu_si256(reinterpret_cast<__m256i*>(r1 + i));
      __m256i c = _mm256_loadu_si256(reinterpret_cast<__m256i*>(r2 + i));
      __m256i d = _mm256_loadu_si256(reinterpret_cast<__m256i*>(r3 + i));
      if (down != nullptr) {
        const __m256i u =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(down + i));
        d = min64(d, _mm256_add_epi64(u, vBeta));
      }
      // Mirror of the forward strip: log-depth vertical relax upward.
      const __m256i c1 = min64(c, _mm256_add_epi64(d, vBeta));
      const __m256i a1 = min64(a, _mm256_add_epi64(b, vBeta));
      b = min64(b, _mm256_add_epi64(c1, vBeta));
      a = min64(a1, _mm256_add_epi64(c1, vBeta2));
      c = c1;
      __m256i t0, t1, t2, t3;
      transpose4(a, b, c, d, t0, t1, t2, t3);
      // Reduce-then-scan, right to left: internal suffixes, then one
      // add+min per block on the carry chain.
      const __m256i q2 = min64(t2, _mm256_add_epi64(t3, vBeta));
      const __m256i q0 = min64(t0, _mm256_add_epi64(t1, vBeta));
      const __m256i p1 = min64(t1, _mm256_add_epi64(q2, vBeta));
      const __m256i p0 = min64(q0, _mm256_add_epi64(q2, vBeta2));
      if (blk > 0) {
        t3 = min64(t3, _mm256_add_epi64(carry, vBeta));
        t2 = min64(q2, _mm256_add_epi64(carry, vBeta2));
        t1 = min64(p1, _mm256_add_epi64(carry, vBeta3));
        t0 = min64(p0, _mm256_add_epi64(carry, vBeta4));
      } else {
        t2 = q2;
        t1 = p1;
        t0 = p0;
      }
      carry = t0;
      transpose4(t0, t1, t2, t3, a, b, c, d);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(r0 + i), a);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(r1 + i), b);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(r2 + i), c);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(r3 + i), d);
    }
    const std::size_t head = nBlocks > 0 ? rem : n;
    for (std::size_t r = 4; r-- > 0;) {
      Cost* row = h + r * stride;
      const Cost* below = r == 3 ? down : row + stride;
      for (std::size_t j = head; j-- > 0;) {
        if (below != nullptr) {
          const Cost cand = below[j] + beta;
          row[j] = cand < row[j] ? cand : row[j];
        }
        if (j + 1 < n) {
          const Cost cand = row[j + 1] + beta;
          row[j] = cand < row[j] ? cand : row[j];
        }
      }
    }
    return;
  }
  const Cost* below = down;
  for (std::size_t r = rows; r-- > 0;) {
    Cost* row = h + r * stride;
    if (below != nullptr) addMinRowAvx2(below, beta, row, n);
    below = row;
  }
  for (std::size_t r = 0; r < rows; ++r) {
    Cost* row = h + r * stride;
    for (std::size_t j = n; j-- > 1;) {
      const Cost cand = row[j] + beta;
      row[j - 1] = cand < row[j - 1] ? cand : row[j - 1];
    }
  }
}

void combineLayerAvx2(const Cost* relaxed, const Cost* own, Cost* out,
                      std::size_t n) {
  const __m256i vInf = infVec();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i r =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(relaxed + i));
    const __m256i o =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(own + i));
    const __m256i bothFin = _mm256_and_si256(_mm256_cmpgt_epi64(vInf, r),
                                             _mm256_cmpgt_epi64(vInf, o));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i),
        _mm256_blendv_epi8(vInf, _mm256_add_epi64(r, o), bothFin));
  }
  for (; i < n; ++i) {
    const Cost a = relaxed[i] < kInfiniteCost ? relaxed[i] : kInfiniteCost;
    const Cost b = own[i];
    const Cost sum = a + (b < kInfiniteCost ? b : 0);
    out[i] = (a >= kInfiniteCost || b >= kInfiniteCost) ? kInfiniteCost : sum;
  }
}

void clampInfAvx2(Cost* v, std::size_t n) {
  const __m256i vInf = infVec();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(v + i), min64(x, vInf));
  }
  for (; i < n; ++i) v[i] = v[i] < kInfiniteCost ? v[i] : kInfiniteCost;
}

void maskInfAvx2(const unsigned char* forbidden, Cost* v, std::size_t n) {
  const __m256i vInf = infVec();
  const __m256i zero = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    std::uint32_t fourBytes;
    std::memcpy(&fourBytes, forbidden + i, sizeof fourBytes);
    const __m256i fb = _mm256_cvtepu8_epi64(
        _mm_cvtsi32_si128(static_cast<int>(fourBytes)));
    const __m256i allowed = _mm256_cmpeq_epi64(fb, zero);
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(v + i),
                        _mm256_blendv_epi8(vInf, x, allowed));
  }
  for (; i < n; ++i) v[i] = forbidden[i] ? kInfiniteCost : v[i];
}

std::ptrdiff_t findPredecessorAvx2(const Cost* prev, const Cost* trans,
                                   Cost need, Cost tMax, std::size_t n) {
  const __m256i vInf = infVec();
  const __m256i vMax = _mm256_set1_epi64x(tMax);
  const __m256i vNeed = _mm256_set1_epi64x(need);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i p =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(prev + i));
    const __m256i t =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(trans + i));
    const __m256i hit = _mm256_and_si256(
        _mm256_and_si256(_mm256_cmpgt_epi64(vInf, p),
                         _mm256_cmpgt_epi64(vMax, t)),
        _mm256_cmpeq_epi64(_mm256_add_epi64(p, t), vNeed));
    const int mask = _mm256_movemask_pd(_mm256_castsi256_pd(hit));
    if (mask != 0) {
      return static_cast<std::ptrdiff_t>(i) + __builtin_ctz(mask);
    }
  }
  for (; i < n; ++i) {
    if (prev[i] < kInfiniteCost && trans[i] < tMax &&
        prev[i] + trans[i] == need) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

}  // namespace

const Kernels* avx2Kernels() {
  static const Kernels k{
      minPlusRowAvx2,         addMinRowAvx2,           satAddMinRowAvx2,
      chamferForwardStripAvx2, chamferBackwardStripAvx2,
      combineLayerAvx2,       clampInfAvx2,            maskInfAvx2,
      findPredecessorAvx2,
  };
  return &k;
}

}  // namespace pimsched::simd::detail

#else  // built without AVX2 codegen

namespace pimsched::simd::detail {
const Kernels* avx2Kernels() { return nullptr; }
}  // namespace pimsched::simd::detail

#endif

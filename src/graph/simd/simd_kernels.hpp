#pragma once

#include <cstddef>

#include "pim/types.hpp"

/// SIMD implementations of the flat GOMCDS solver's hot element passes,
/// selected once per process by runtime CPU detection (overridable with the
/// PIMSCHED_SIMD environment variable — see activeTier() below).
///
/// Every kernel performs exact 64-bit integer arithmetic over the same
/// candidate sets as its scalar counterpart, so all tiers are bit-identical
/// by construction; the property tests in tests/simd_kernels_test.cpp and
/// tests/layered_dag_test.cpp enforce it, and CI re-runs them with the
/// dispatch forced to every tier. Kernels use unaligned vector loads —
/// the 64-byte buffer alignment from util/aligned.hpp is a performance
/// contract, never a correctness requirement, so odd grid widths and
/// interior row offsets need no special casing.
namespace pimsched::simd {

/// Instruction tiers in strength order. kSse2 covers any 128-bit x86
/// baseline; non-x86 hosts (NEON and friends) currently take the portable
/// scalar tier, whose loops are written branch-free so compilers
/// auto-vectorize them.
enum class Tier : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

[[nodiscard]] const char* tierName(Tier t);

/// The dispatched kernel table. All pointers are non-null in every table.
///
/// Shared preconditions (the solver cost contract, graph/layered_dag.hpp):
/// finite inputs are small enough that any candidate sum stays below
/// INT64_MAX; forbidden entries are exactly kInfiniteCost unless a kernel
/// says otherwise. Sweep values may drift above kInfiniteCost (deferred
/// clamp) only within the overflow guard of manhattanMinPlusInto.
struct Kernels {
  /// acc[i] = min(acc[i], add + row[i]) — one source row of the generic
  /// min-plus relaxation. Requires add < kInfiniteCost.
  void (*minPlusRow)(const Cost* row, Cost add, Cost* acc, std::size_t n);

  /// dst[i] = min(dst[i], src[i] + beta) — branch-free chamfer vertical
  /// pass (values may drift past kInfiniteCost; clamped later).
  void (*addMinRow)(const Cost* src, Cost beta, Cost* dst, std::size_t n);

  /// dst[i] = min(dst[i], satAdd(src[i], beta)) — saturating vertical pass
  /// of the huge-beta fallback. Requires src[i] <= kInfiniteCost and
  /// dst[i] <= kInfiniteCost; beta may be arbitrarily large.
  void (*satAddMinRow)(const Cost* src, Cost beta, Cost* dst, std::size_t n);

  /// One forward chamfer strip of `rows` rows (stride apart): every row is
  /// relaxed from the row above it — row[i] = min(row[i], above[i] + beta),
  /// where "above" is `up` for the strip's first row (skipped when up is
  /// nullptr, i.e. the grid's top row) — and then swept in-row forward,
  /// row[i] = min(row[i], row[i-1] + beta) for i = 1..n-1.
  ///
  /// Any interleaving of those relaxations that only consumes already-
  /// relaxed operands yields bit-identical values (each cell's candidate
  /// set is exactly { v(r',c') + beta*(dr+dc) : r' <= r, c' <= c } under
  /// exact arithmetic), which lets implementations pick their schedule: the
  /// scalar tier runs the vertical stage then four interleaved row chains;
  /// AVX2 fuses both stages per 4x4 block (vertical relax in registers,
  /// then a transposed column scan) so each strip is loaded and stored
  /// once. Implementations may form k*beta for k <= 4 (log-depth /
  /// reduce-then-scan schedules); the solver's overflow guard (steps >=
  /// 2*(R+C)+2 >= 6) keeps that in range whenever this path runs.
  void (*chamferForwardStrip)(Cost* h, const Cost* up, std::size_t rows,
                              std::size_t stride, Cost beta, std::size_t n);

  /// Mirror strip: rows relaxed bottom-to-top from the row below (`down`
  /// for the strip's last row, nullptr at the grid's bottom), then the
  /// backward in-row sweep row[i] = min(row[i], row[i+1] + beta).
  void (*chamferBackwardStrip)(Cost* h, const Cost* down, std::size_t rows,
                               std::size_t stride, Cost beta, std::size_t n);

  /// out[i] = (relaxed[i] >= kInf || own[i] >= kInf) ? kInf
  ///                                                 : relaxed[i] + own[i]
  /// — merges one relaxed layer with its node costs (satAdd semantics with
  /// the relaxed side clamped first). relaxed[] may sit above kInfiniteCost.
  void (*combineLayer)(const Cost* relaxed, const Cost* own, Cost* out,
                       std::size_t n);

  /// v[i] = min(v[i], kInfiniteCost) — the deferred clamp.
  void (*clampInf)(Cost* v, std::size_t n);

  /// v[i] = forbidden[i] ? kInfiniteCost : v[i] — applies a capacity
  /// forbidden-set mask to a serving-cost table.
  void (*maskInf)(const unsigned char* forbidden, Cost* v, std::size_t n);

  /// Smallest i with prev[i] < kInfiniteCost && trans[i] < tMax &&
  /// prev[i] + trans[i] == need, or -1 — the path-reconstruction argmin
  /// scan. Requires prev[i] <= kInfiniteCost and
  /// trans[i] <= INT64_MAX - kInfiniteCost so the probe sum cannot wrap.
  std::ptrdiff_t (*findPredecessor)(const Cost* prev, const Cost* trans,
                                    Cost need, Cost tMax, std::size_t n);
};

/// True when this build + CPU can execute tier `t`.
[[nodiscard]] bool tierSupported(Tier t);

/// Strongest supported tier on this host.
[[nodiscard]] Tier bestSupportedTier();

/// Kernel table of a specific tier. Unsupported tiers fall back to the
/// strongest supported tier below them (scalar floor).
[[nodiscard]] const Kernels& kernelsFor(Tier t);

/// The tier active() dispatches to. Resolved once on first use: the
/// strongest CPU-supported tier, unless the PIMSCHED_SIMD environment
/// variable (scalar|sse2|avx2) overrides it — an unsupported or unknown
/// override warns on stderr and falls back. The resolved tier is recorded
/// in the gomcds.simd.tier.<name> counter.
[[nodiscard]] Tier activeTier();

/// The dispatched kernel table (kernelsFor(activeTier())).
[[nodiscard]] const Kernels& active();

/// Re-points active() at tier `t` (clamped to support, like kernelsFor) and
/// returns the tier actually installed. Bench/test hook — not thread-safe
/// against concurrent solver calls.
Tier forceTier(Tier t);

}  // namespace pimsched::simd

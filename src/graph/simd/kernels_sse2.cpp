#include "graph/simd/kernels_impl.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <emmintrin.h>

#include <cstring>

/// 128-bit tier built on the x86-64 SSE2 baseline only — 64-bit signed
/// compare does not exist until SSE4.2, so it is emulated from 32-bit
/// compares. All arithmetic is exact 64-bit adds over the same candidates
/// as the scalar tier, so outputs are bit-identical. The in-row prefix /
/// suffix scans stay scalar here: with two lanes the log-step scan saves
/// nothing over the sequential recurrence.
namespace pimsched::simd::detail {

namespace {

/// Signed 64-bit a > b per lane, SSE2 only: high halves compare signed;
/// on high-half equality the low halves compare unsigned (bias by 2^31).
inline __m128i cmpgt64(__m128i a, __m128i b) {
  const __m128i bias = _mm_set1_epi32(INT32_MIN);
  const __m128i hiGt = _mm_cmpgt_epi32(a, b);
  const __m128i hiEq = _mm_cmpeq_epi32(a, b);
  const __m128i loGt =
      _mm_cmpgt_epi32(_mm_xor_si128(a, bias), _mm_xor_si128(b, bias));
  // Lift each 64-bit lane's low-half verdict into its high-half slot, then
  // combine and broadcast the high-half slots across the whole lane.
  const __m128i gt = _mm_or_si128(
      hiGt, _mm_and_si128(hiEq, _mm_shuffle_epi32(loGt, _MM_SHUFFLE(2, 2, 0, 0))));
  return _mm_shuffle_epi32(gt, _MM_SHUFFLE(3, 3, 1, 1));
}

/// 64-bit equality per lane from two 32-bit equalities.
inline __m128i cmpeq64(__m128i a, __m128i b) {
  const __m128i eq = _mm_cmpeq_epi32(a, b);
  return _mm_and_si128(eq, _mm_shuffle_epi32(eq, _MM_SHUFFLE(2, 3, 0, 1)));
}

/// min(a, b) per signed 64-bit lane: pick b where a > b.
inline __m128i min64(__m128i a, __m128i b) {
  const __m128i m = cmpgt64(a, b);
  return _mm_or_si128(_mm_and_si128(m, b), _mm_andnot_si128(m, a));
}

/// select(mask, a, b): a where mask lanes are all-ones, else b.
inline __m128i select(__m128i mask, __m128i a, __m128i b) {
  return _mm_or_si128(_mm_and_si128(mask, a), _mm_andnot_si128(mask, b));
}

inline __m128i infVec() { return _mm_set1_epi64x(kInfiniteCost); }

void minPlusRowSse2(const Cost* row, Cost add, Cost* acc, std::size_t n) {
  const __m128i vAdd = _mm_set1_epi64x(add);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i r =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + i));
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + i));
    const __m128i cand = _mm_add_epi64(r, vAdd);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + i), min64(a, cand));
  }
  for (; i < n; ++i) {
    const Cost cand = add + row[i];
    acc[i] = cand < acc[i] ? cand : acc[i];
  }
}

void addMinRowSse2(const Cost* src, Cost beta, Cost* dst, std::size_t n) {
  const __m128i vBeta = _mm_set1_epi64x(beta);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i cand = _mm_add_epi64(s, vBeta);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), min64(d, cand));
  }
  for (; i < n; ++i) {
    const Cost cand = src[i] + beta;
    dst[i] = cand < dst[i] ? cand : dst[i];
  }
}

void satAddMinRowSse2(const Cost* src, Cost beta, Cost* dst, std::size_t n) {
  if (beta >= kInfiniteCost) {
    // satAdd saturates every candidate to kInf; dst <= kInf by
    // precondition, so the pass is the identity.
    return;
  }
  const __m128i vBeta = _mm_set1_epi64x(beta);
  const __m128i vInf = infVec();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    // src <= kInf, so src + beta < 2*kInf never wraps; lanes with
    // src == kInf are replaced by kInf.
    const __m128i fin = cmpgt64(vInf, s);
    const __m128i cand = select(fin, _mm_add_epi64(s, vBeta), vInf);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), min64(d, cand));
  }
  for (; i < n; ++i) {
    const Cost cand = src[i] >= kInfiniteCost ? kInfiniteCost : src[i] + beta;
    dst[i] = cand < dst[i] ? cand : dst[i];
  }
}

void combineLayerSse2(const Cost* relaxed, const Cost* own, Cost* out,
                      std::size_t n) {
  const __m128i vInf = infVec();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i r =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(relaxed + i));
    const __m128i o =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(own + i));
    const __m128i bothFin =
        _mm_and_si128(cmpgt64(vInf, r), cmpgt64(vInf, o));
    // Sum only meaningful where both operands are finite; elsewhere the
    // (possibly wrapped) lanes are discarded by the select.
    const __m128i sum = _mm_add_epi64(r, o);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     select(bothFin, sum, vInf));
  }
  for (; i < n; ++i) {
    const Cost a = relaxed[i] < kInfiniteCost ? relaxed[i] : kInfiniteCost;
    const Cost b = own[i];
    const Cost sum = a + (b < kInfiniteCost ? b : 0);
    out[i] = (a >= kInfiniteCost || b >= kInfiniteCost) ? kInfiniteCost : sum;
  }
}

void clampInfSse2(Cost* v, std::size_t n) {
  const __m128i vInf = infVec();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(v + i), min64(x, vInf));
  }
  for (; i < n; ++i) v[i] = v[i] < kInfiniteCost ? v[i] : kInfiniteCost;
}

void maskInfSse2(const unsigned char* forbidden, Cost* v, std::size_t n) {
  const __m128i vInf = infVec();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    // Widen two mask bytes into the two 64-bit lanes.
    const __m128i fb = _mm_set_epi64x(forbidden[i + 1], forbidden[i]);
    const __m128i allowed = cmpeq64(fb, _mm_setzero_si128());
    const __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(v + i),
                     select(allowed, x, vInf));
  }
  for (; i < n; ++i) v[i] = forbidden[i] ? kInfiniteCost : v[i];
}

std::ptrdiff_t findPredecessorSse2(const Cost* prev, const Cost* trans,
                                   Cost need, Cost tMax, std::size_t n) {
  const __m128i vInf = infVec();
  const __m128i vMax = _mm_set1_epi64x(tMax);
  const __m128i vNeed = _mm_set1_epi64x(need);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i p =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(prev + i));
    const __m128i t =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(trans + i));
    const __m128i hitLanes = _mm_and_si128(
        _mm_and_si128(cmpgt64(vInf, p), cmpgt64(vMax, t)),
        cmpeq64(_mm_add_epi64(p, t), vNeed));
    const int mask = _mm_movemask_pd(_mm_castsi128_pd(hitLanes));
    if (mask != 0) {
      return static_cast<std::ptrdiff_t>(i) +
             (mask & 1 ? 0 : 1);
    }
  }
  for (; i < n; ++i) {
    if (prev[i] < kInfiniteCost && trans[i] < tMax &&
        prev[i] + trans[i] == need) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

}  // namespace

const Kernels* sse2Kernels() {
  // The chamfer strips come from the scalar tier: with two lanes and an
  // emulated 64-bit min, a transposed column scan loses to the plain
  // four-chain interleave.
  static const Kernels k = [] {
    Kernels t{
        minPlusRowSse2, addMinRowSse2, satAddMinRowSse2,
        nullptr,        nullptr,       combineLayerSse2,
        clampInfSse2,   maskInfSse2,   findPredecessorSse2,
    };
    t.chamferForwardStrip = scalarKernels().chamferForwardStrip;
    t.chamferBackwardStrip = scalarKernels().chamferBackwardStrip;
    return t;
  }();
  return &k;
}

}  // namespace pimsched::simd::detail

#else  // non-x86

namespace pimsched::simd::detail {
const Kernels* sse2Kernels() { return nullptr; }
}  // namespace pimsched::simd::detail

#endif

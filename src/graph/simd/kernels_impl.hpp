#pragma once

#include "graph/simd/simd_kernels.hpp"

/// Internal linkage between the per-tier translation units and the
/// dispatcher. The SSE2/AVX2 providers return nullptr when the build (or
/// target architecture) cannot produce that tier, so dispatch.cpp can fall
/// back without preprocessor conditionals of its own.
namespace pimsched::simd::detail {

[[nodiscard]] const Kernels& scalarKernels();
[[nodiscard]] const Kernels* sse2Kernels();  ///< nullptr off x86
[[nodiscard]] const Kernels* avx2Kernels();  ///< nullptr without AVX2 codegen

}  // namespace pimsched::simd::detail

#include "graph/simd/simd_kernels.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "graph/simd/kernels_impl.hpp"
#include "obs/obs.hpp"

namespace pimsched::simd {

namespace {

const Kernels* tierTable(Tier t) {
  switch (t) {
    case Tier::kAvx2:
      return detail::avx2Kernels();
    case Tier::kSse2:
      return detail::sse2Kernels();
    case Tier::kScalar:
      return &detail::scalarKernels();
  }
  return nullptr;
}

bool cpuSupports(Tier t) {
#if defined(__x86_64__) || defined(__i386__)
  switch (t) {
    case Tier::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case Tier::kSse2:
      return __builtin_cpu_supports("sse2") != 0;
    case Tier::kScalar:
      return true;
  }
#endif
  return t == Tier::kScalar;
}

/// PIMSCHED_SIMD override, or kAvx2+1 when unset/unrecognized (an
/// unrecognized name warns; resolution then proceeds as if unset).
Tier envOverride(bool* present) {
  *present = false;
  const char* raw = std::getenv("PIMSCHED_SIMD");
  if (raw == nullptr || raw[0] == '\0') return Tier::kScalar;
  if (std::strcmp(raw, "scalar") == 0) {
    *present = true;
    return Tier::kScalar;
  }
  if (std::strcmp(raw, "sse2") == 0) {
    *present = true;
    return Tier::kSse2;
  }
  if (std::strcmp(raw, "avx2") == 0) {
    *present = true;
    return Tier::kAvx2;
  }
  std::fprintf(stderr,
               "pimsched: PIMSCHED_SIMD=%s is not scalar|sse2|avx2; "
               "using CPU detection\n",
               raw);
  return Tier::kScalar;
}

/// Strongest tier <= `want` that both this build and this CPU can run.
Tier clampToSupported(Tier want) {
  for (int t = static_cast<int>(want); t > 0; --t) {
    const Tier tier = static_cast<Tier>(t);
    if (cpuSupports(tier) && tierTable(tier) != nullptr) return tier;
  }
  return Tier::kScalar;
}

Tier resolveInitialTier() {
  bool present = false;
  const Tier want = envOverride(&present);
  if (present) {
    const Tier got = clampToSupported(want);
    if (got != want) {
      std::fprintf(stderr,
                   "pimsched: PIMSCHED_SIMD=%s unsupported on this "
                   "host/build; falling back to %s\n",
                   tierName(want), tierName(got));
    }
    return got;
  }
  return clampToSupported(Tier::kAvx2);
}

/// Counter names are dynamic here, so go through the registry instead of
/// PIMSCHED_COUNTER_ADD (which caches one handle per call site).
void recordTierCounter(Tier t) {
#ifndef PIMSCHED_NO_OBS
  obs::Registry::instance()
      .counter(std::string("gomcds.simd.tier.") + tierName(t))
      .add(1);
#else
  (void)t;
#endif
}

/// The resolved tier, encoded as int(t)+1 so 0 means "not yet resolved".
std::atomic<int> g_activeTier{0};

Tier resolveOnce() {
  int cur = g_activeTier.load(std::memory_order_acquire);
  if (cur == 0) {
    const Tier resolved = resolveInitialTier();
    int expected = 0;
    if (g_activeTier.compare_exchange_strong(
            expected, static_cast<int>(resolved) + 1,
            std::memory_order_acq_rel)) {
      recordTierCounter(resolved);
      cur = static_cast<int>(resolved) + 1;
    } else {
      cur = expected;  // another thread resolved first
    }
  }
  return static_cast<Tier>(cur - 1);
}

}  // namespace

const char* tierName(Tier t) {
  switch (t) {
    case Tier::kAvx2:
      return "avx2";
    case Tier::kSse2:
      return "sse2";
    case Tier::kScalar:
      return "scalar";
  }
  return "scalar";
}

bool tierSupported(Tier t) {
  return cpuSupports(t) && tierTable(t) != nullptr;
}

Tier bestSupportedTier() { return clampToSupported(Tier::kAvx2); }

const Kernels& kernelsFor(Tier t) { return *tierTable(clampToSupported(t)); }

Tier activeTier() { return resolveOnce(); }

const Kernels& active() { return *tierTable(resolveOnce()); }

Tier forceTier(Tier t) {
  const Tier got = clampToSupported(t);
  g_activeTier.store(static_cast<int>(got) + 1, std::memory_order_release);
  recordTierCounter(got);
  return got;
}

}  // namespace pimsched::simd
